// Profile-attribution overhead benchmark: the E1 workload through
// finq.Eval with pprof labeling and allocation accounting on versus the
// prof toggle off. `make bench-prof` runs TestWriteBenchProf, which
// measures both and writes BENCH_prof.json; the acceptance bar is under
// 3% — the labeled path is one goroutine-label map swap plus two
// runtime/metrics reads per evaluation, amortized over an entire
// enumeration.
package finq

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/logic"
	"repro/internal/obs/prof"
	"repro/internal/presburger"
	"repro/internal/query"
)

// runProfBench drives the E1 enumeration (∃y (R(y) ∧ x < y) over
// Presburger ℕ, 34-row complete answer) through the public Eval
// entrypoint, which is where the pprof labels and the alloc meter attach.
func runProfBench(b *testing.B) {
	st := natStateB(b, 3, 5, 8, 13, 21, 34)
	f := logic.Exists("y", logic.And(
		logic.Atom("R", logic.Var("y")),
		logic.Atom(presburger.PredLt, logic.Var("x"), logic.Var("y"))))
	budget := query.EnumerationBudget{Rows: 64, Probe: 4096}
	req := Request{
		Domain: "presburger", State: st, Formula: f,
		Mode: ModeEnumerate, Budget: &budget,
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Eval(ctx, req)
		if err != nil || !res.Answer.Complete {
			b.Fatalf("bad answer: %+v %v", res, err)
		}
	}
}

func BenchmarkEvalE1ProfOn(b *testing.B) {
	prev := prof.SetEnabled(true)
	defer prof.SetEnabled(prev)
	runProfBench(b)
}

func BenchmarkEvalE1ProfOff(b *testing.B) {
	prev := prof.SetEnabled(false)
	defer prof.SetEnabled(prev)
	runProfBench(b)
}

// TestWriteBenchProf measures both modes and writes BENCH_prof.json.
// Gated behind BENCH_PROF=1 (the `make bench-prof` target) so plain
// `go test` stays fast and does not rewrite the checked-in measurement.
func TestWriteBenchProf(t *testing.T) {
	if os.Getenv("BENCH_PROF") == "" {
		t.Skip("set BENCH_PROF=1 (or run `make bench-prof`) to write BENCH_prof.json")
	}
	// Interleave modes in alternating order and keep each mode's fastest
	// measurement: the minimum is the least-noise cost estimate, and the
	// alternation gives both modes equal exposure to machine-load drift
	// (a min-of-ordered-pairs can attribute a fast patch to whichever mode
	// happened to run inside it).
	const rounds = 7
	prev := prof.Enabled()
	defer prof.SetEnabled(prev)
	measure := func(on bool) int64 {
		prof.SetEnabled(on)
		return testing.Benchmark(func(b *testing.B) { runProfBench(b) }).NsPerOp()
	}
	onNs, offNs := int64(0), int64(0)
	keepMin := func(best *int64, got int64) {
		if *best == 0 || got < *best {
			*best = got
		}
	}
	for r := 0; r < rounds; r++ {
		if r%2 == 0 {
			keepMin(&onNs, measure(true))
			keepMin(&offNs, measure(false))
		} else {
			keepMin(&offNs, measure(false))
			keepMin(&onNs, measure(true))
		}
	}
	overhead := 0.0
	if offNs > 0 {
		overhead = (float64(onNs) - float64(offNs)) / float64(offNs) * 100
	}
	out := map[string]any{
		"benchmark":          "finq.Eval, E1 enumeration (34 rows, Presburger), pprof labels + alloc meter on vs off",
		"ns_per_op_prof_on":  onNs,
		"ns_per_op_prof_off": offNs,
		"rounds":             rounds,
		"overhead_pct":       overhead,
		"note":               "min ns/op over interleaved rounds; on = one pprof.Do label swap (query_key, domain, mode) + two runtime/metrics reads per eval, off = the toggle short-circuits before any of it",
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_prof.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("BENCH_prof.json: prof on %d ns/op, off %d ns/op, overhead %.2f%%\n",
		onNs, offNs, overhead)
	if overhead >= 3.0 {
		t.Errorf("prof attribution overhead %.2f%% exceeds the 3%% budget", overhead)
	}
}
