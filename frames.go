package finq

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The compact binary row encoding for streaming delivery
// (application/x-finq-frames). A stream is a sequence of frames:
//
//	frame   := type(1 byte) | uvarint(len(payload)) | payload
//	'H'     header:  payload is the JSON of apiv1.StreamHeader
//	'R'     row:     payload is uvarint(cells) then per cell
//	                 uvarint(len) | bytes — constant names, exactly the
//	                 strings a JSON row would carry
//	'T'     trailer: payload is the JSON of apiv1.StreamTrailer
//
// Row frames skip JSON entirely on the hot path: no quoting, no escaping,
// no per-row reflection — one length-prefixed cell per column. Header and
// trailer are one-per-stream, so their JSON payloads cost nothing
// measurable and keep the metadata self-describing. JSON (NDJSON)
// remains the default wire encoding; frames are negotiated by Accept.

// Frame type bytes.
const (
	FrameHeader  = byte('H')
	FrameRow     = byte('R')
	FrameTrailer = byte('T')
)

// MaxFramePayload bounds a single frame's payload so a corrupt or
// malicious length prefix cannot force an unbounded allocation.
const MaxFramePayload = 1 << 24

// ErrFrameTooLarge reports a frame whose declared payload length exceeds
// MaxFramePayload.
var ErrFrameTooLarge = errors.New("finq: frame payload exceeds limit")

// AppendFrame appends one frame (type byte, uvarint length, payload) to
// dst and returns the extended slice.
func AppendFrame(dst []byte, typ byte, payload []byte) []byte {
	dst = append(dst, typ)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// AppendRowFrame appends a row frame carrying the cells and returns the
// extended slice. The payload is uvarint(len(cells)) then each cell as
// uvarint(len) | bytes.
func AppendRowFrame(dst []byte, cells []string) []byte {
	n := 0
	for _, c := range cells {
		n += len(c) + binary.MaxVarintLen64
	}
	payload := make([]byte, 0, n+binary.MaxVarintLen64)
	payload = binary.AppendUvarint(payload, uint64(len(cells)))
	for _, c := range cells {
		payload = binary.AppendUvarint(payload, uint64(len(c)))
		payload = append(payload, c...)
	}
	return AppendFrame(dst, FrameRow, payload)
}

// DecodeRowPayload inverts AppendRowFrame's payload encoding.
func DecodeRowPayload(payload []byte) ([]string, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, errors.New("finq: bad row frame: cell count")
	}
	if count > uint64(len(payload)) {
		// Each cell costs at least one length byte, so the count cannot
		// exceed the remaining payload size.
		return nil, fmt.Errorf("finq: bad row frame: %d cells in %d bytes", count, len(payload))
	}
	payload = payload[n:]
	cells := make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		sz, n := binary.Uvarint(payload)
		if n <= 0 || sz > uint64(len(payload[n:])) {
			return nil, fmt.Errorf("finq: bad row frame: cell %d length", i)
		}
		cells = append(cells, string(payload[n:n+int(sz)]))
		payload = payload[n+int(sz):]
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("finq: bad row frame: %d trailing bytes", len(payload))
	}
	return cells, nil
}

// ReadFrame reads one frame from the stream: its type byte and payload.
// io.EOF is returned exactly at a clean frame boundary;
// io.ErrUnexpectedEOF inside a frame.
func ReadFrame(r *bufio.Reader) (byte, []byte, error) {
	typ, err := r.ReadByte()
	if err != nil {
		return 0, nil, err // io.EOF at a boundary is the clean end
	}
	size, err := binary.ReadUvarint(r)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if size > MaxFramePayload {
		return 0, nil, ErrFrameTooLarge
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return typ, payload, nil
}
