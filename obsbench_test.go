// Observability-overhead benchmark: the same EvalActive workload with
// metric collection off, on, and on with the flight recorder armed under
// a distributed-trace position (so every span also mints a W3C span ID
// and records identity-carrying events). `make bench-obs` runs
// TestWriteBenchObs, which measures all three and writes BENCH_obs.json;
// the acceptance bar is total span overhead — including ID minting —
// under 3%, and disabled overhead indistinguishable from the seed (the
// off path is a single atomic load per would-be record).
package finq

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/domains/eqdom"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/obs/tracectx"
	"repro/internal/query"
)

// obsBenchWorkload is a two-variable join with a quantifier over an
// 8-element active domain — enough evalIn recursion that the workload is
// the evaluator, not the instrumentation boundary.
func obsBenchWorkload(tb testing.TB) (*db.State, *logic.Formula) {
	st := db.NewState(db.MustScheme(map[string]int{"F": 2}))
	words := []string{"adam", "abel", "cain", "eve", "seth", "enos", "noah", "shem"}
	for i, a := range words {
		b := words[(i+1)%len(words)]
		if err := st.Insert("F", domain.Word(a), domain.Word(b)); err != nil {
			tb.Fatal(err)
		}
	}
	f := logic.And(
		logic.Atom("F", logic.Var("x"), logic.Var("y")),
		logic.Exists("z", logic.And(
			logic.Atom("F", logic.Var("y"), logic.Var("z")),
			logic.Not(logic.Eq(logic.Var("z"), logic.Var("x"))))))
	return st, f
}

// Obs-bench modes: the seed path (one atomic load per would-be record),
// the instrumented path (spans + metric atomics, recorder disarmed — the
// always-on production posture), the armed path (a private flight
// recorder recording every span, no trace position — the pre-identity
// cost of a -trace-out run), and the traced path (armed recorder plus a
// W3C trace position on ctx, so each span additionally mints a child
// span ID and records begin/end events carrying TraceID/SpanID/ParentID
// — the full distributed-tracing posture).
const (
	obsOff = iota
	obsOn
	obsArmed
	obsTraced
)

func runObsBench(b *testing.B, mode int) {
	st, f := obsBenchWorkload(b)
	prev := obs.SetEnabled(mode != obsOff)
	defer obs.SetEnabled(prev)
	ctx := context.Background()
	if mode == obsArmed || mode == obsTraced {
		rec := trace.NewRecorder()
		rec.Arm(1 << 12)
		defer rec.Disarm()
		ctx = trace.WithRecorder(ctx, rec)
		if mode == obsTraced {
			ctx = tracectx.With(ctx, tracectx.NewRoot())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans, err := query.EvalActiveCtx(ctx, eqdom.Domain{}, st, f)
		if err != nil || ans.Rows.Len() == 0 {
			b.Fatalf("bad answer: %v %v", ans, err)
		}
	}
}

func BenchmarkEvalActiveObsOn(b *testing.B)     { runObsBench(b, obsOn) }
func BenchmarkEvalActiveObsOff(b *testing.B)    { runObsBench(b, obsOff) }
func BenchmarkEvalActiveObsArmed(b *testing.B)  { runObsBench(b, obsArmed) }
func BenchmarkEvalActiveObsTraced(b *testing.B) { runObsBench(b, obsTraced) }

// TestWriteBenchObs measures all three modes and writes BENCH_obs.json.
// Gated behind BENCH_OBS=1 (the `make bench-obs` target) so plain
// `go test` stays fast and does not rewrite the checked-in measurement.
func TestWriteBenchObs(t *testing.T) {
	if os.Getenv("BENCH_OBS") == "" {
		t.Skip("set BENCH_OBS=1 (or run `make bench-obs`) to write BENCH_obs.json")
	}
	// Alternate modes over several rounds and keep each mode's fastest
	// run: the minimum is the least-noise estimate of the true cost, and
	// interleaving cancels drift (thermal, cache warmup) between modes.
	const rounds = 5
	best := map[int]int64{}
	for r := 0; r < rounds; r++ {
		for _, mode := range []int{obsOn, obsOff, obsArmed, obsTraced} {
			res := testing.Benchmark(func(b *testing.B) { runObsBench(b, mode) })
			if best[mode] == 0 || res.NsPerOp() < best[mode] {
				best[mode] = res.NsPerOp()
			}
		}
	}
	pct := func(mode, base int) float64 {
		if best[base] == 0 {
			return 0
		}
		return (float64(best[mode]) - float64(best[base])) / float64(best[base]) * 100
	}
	// The two 3% bars: the always-on production path (spans + metric
	// atomics, recorder disarmed) against the seed, and the identity
	// minting this PR added (armed recorder with a trace position) against
	// the armed recorder without one — each span of the traced run mints a
	// W3C child span ID and records three extra identity fields, and that
	// increment is what must stay under 3%. The armed recorder itself is
	// an opt-in debugging posture and carries no bar.
	onPct, mintPct := pct(obsOn, obsOff), pct(obsTraced, obsArmed)
	out := map[string]any{
		"benchmark":            "query.EvalActiveCtx (8-row state, 2 free vars, 1 quantifier)",
		"ns_per_op_enabled":    best[obsOn],
		"ns_per_op_disabled":   best[obsOff],
		"ns_per_op_armed":      best[obsArmed],
		"ns_per_op_traced":     best[obsTraced],
		"rounds":               rounds,
		"overhead_pct":         onPct,
		"minting_overhead_pct": mintPct,
		"note":                 "min ns/op over interleaved rounds; disabled is the seed evaluator plus one atomic load per would-be record; enabled adds one span and a handful of atomic adds per call; armed additionally records every span into a private flight recorder; traced further mints a W3C child span ID per span under a trace position. Bars: enabled vs disabled < 3%, traced vs armed (the identity-minting increment) < 3%",
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_obs.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("BENCH_obs.json: enabled %d ns/op (%.2f%%), armed %d, traced %d (minting %.2f%%), disabled %d ns/op\n",
		best[obsOn], onPct, best[obsArmed], best[obsTraced], mintPct, best[obsOff])
	if onPct >= 3.0 {
		t.Errorf("instrumentation overhead %.2f%% exceeds the 3%% budget", onPct)
	}
	if mintPct >= 3.0 {
		t.Errorf("span-identity minting overhead %.2f%% exceeds the 3%% budget", mintPct)
	}
}
