// Observability-overhead benchmark: the same EvalActive workload with
// metric collection on and off. `make bench` runs TestWriteBenchObs, which
// measures both and writes BENCH_obs.json; the acceptance bar is enabled
// overhead under 5% and disabled overhead indistinguishable from the seed
// (the off path is a single atomic load per would-be record).
package finq

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/domains/eqdom"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/query"
)

// obsBenchWorkload is a two-variable join with a quantifier over an
// 8-element active domain — enough evalIn recursion that the workload is
// the evaluator, not the instrumentation boundary.
func obsBenchWorkload(tb testing.TB) (*db.State, *logic.Formula) {
	st := db.NewState(db.MustScheme(map[string]int{"F": 2}))
	words := []string{"adam", "abel", "cain", "eve", "seth", "enos", "noah", "shem"}
	for i, a := range words {
		b := words[(i+1)%len(words)]
		if err := st.Insert("F", domain.Word(a), domain.Word(b)); err != nil {
			tb.Fatal(err)
		}
	}
	f := logic.And(
		logic.Atom("F", logic.Var("x"), logic.Var("y")),
		logic.Exists("z", logic.And(
			logic.Atom("F", logic.Var("y"), logic.Var("z")),
			logic.Not(logic.Eq(logic.Var("z"), logic.Var("x"))))))
	return st, f
}

func runObsBench(b *testing.B, enabled bool) {
	st, f := obsBenchWorkload(b)
	prev := obs.SetEnabled(enabled)
	defer obs.SetEnabled(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans, err := query.EvalActive(eqdom.Domain{}, st, f)
		if err != nil || ans.Rows.Len() == 0 {
			b.Fatalf("bad answer: %v %v", ans, err)
		}
	}
}

func BenchmarkEvalActiveObsOn(b *testing.B)  { runObsBench(b, true) }
func BenchmarkEvalActiveObsOff(b *testing.B) { runObsBench(b, false) }

// TestWriteBenchObs measures both modes and writes BENCH_obs.json. Gated
// behind BENCH_OBS=1 (the `make bench` target) so plain `go test` stays
// fast and does not rewrite the checked-in measurement.
func TestWriteBenchObs(t *testing.T) {
	if os.Getenv("BENCH_OBS") == "" {
		t.Skip("set BENCH_OBS=1 (or run `make bench`) to write BENCH_obs.json")
	}
	// Alternate modes over several rounds and keep each mode's fastest
	// run: the minimum is the least-noise estimate of the true cost, and
	// interleaving cancels drift (thermal, cache warmup) between modes.
	const rounds = 5
	onNs, offNs := int64(0), int64(0)
	for r := 0; r < rounds; r++ {
		on := testing.Benchmark(func(b *testing.B) { runObsBench(b, true) })
		off := testing.Benchmark(func(b *testing.B) { runObsBench(b, false) })
		if onNs == 0 || on.NsPerOp() < onNs {
			onNs = on.NsPerOp()
		}
		if offNs == 0 || off.NsPerOp() < offNs {
			offNs = off.NsPerOp()
		}
	}
	overhead := 0.0
	if offNs > 0 {
		overhead = (float64(onNs) - float64(offNs)) / float64(offNs) * 100
	}
	out := map[string]any{
		"benchmark":          "query.EvalActive (8-row state, 2 free vars, 1 quantifier)",
		"ns_per_op_enabled":  onNs,
		"ns_per_op_disabled": offNs,
		"rounds":             rounds,
		"overhead_pct":       overhead,
		"note":               "min ns/op over interleaved rounds; disabled mode is the seed evaluator plus one atomic load per would-be record; enabled adds one span and a handful of atomic adds per call",
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_obs.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("BENCH_obs.json: enabled %d ns/op, disabled %d ns/op, overhead %.2f%%\n",
		onNs, offNs, overhead)
	if overhead >= 5.0 {
		t.Errorf("instrumentation overhead %.2f%% exceeds the 5%% budget", overhead)
	}
}
