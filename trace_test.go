package finq

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cliutil"
	"repro/internal/obs/trace"
	"repro/internal/obs/trace/tracetest"
)

// TestTracedEnumerationExportsValidChrome is the end-to-end trace check:
// arm the flight recorder, run an E1-style enumeration plus a profiled
// evaluation through the public facade, export the dump as a Chrome
// trace, and validate it structurally (JSON array, B/E/X/i phases only,
// one pid, balanced per-tid span nesting).
func TestTracedEnumerationExportsValidChrome(t *testing.T) {
	trace.Arm(1 << 12)
	defer trace.Disarm()
	d := MustLookup("presburger")
	st := NewState(MustScheme(map[string]int{"R": 1}))
	if err := st.Insert("R", Nat(3)); err != nil {
		t.Fatal(err)
	}
	f, err := d.Parse("exists y. (R(y) & lt(x, y))")
	if err != nil {
		t.Fatal(err)
	}
	ans, err := Enumerate(d, st, f, DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Complete || ans.Rows.Len() != 3 {
		t.Fatalf("enumeration: %d rows, complete=%v", ans.Rows.Len(), ans.Complete)
	}
	eq := MustLookup("eq")
	est := NewState(MustScheme(map[string]int{"F": 2}))
	if err := est.Insert("F", Word("adam"), Word("abel")); err != nil {
		t.Fatal(err)
	}
	ef, err := eq.Parse("exists y. F(x, y)")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Explain(eq, est, ef); err != nil {
		t.Fatal(err)
	}
	trace.Disarm()
	events := trace.Dump()
	if len(events) == 0 {
		t.Fatal("traced run recorded no events")
	}
	var names []string
	for _, e := range events {
		names = append(names, e.Name)
	}
	for _, want := range []string{"query.enumerate", "query.explain"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("trace holds no %q events (got %v)", want, names)
		}
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, events); err != nil {
		t.Fatal(err)
	}
	tracetest.ValidateChrome(t, buf.Bytes())
}

// TestCLISetupTraceOut drives the shared CLI bootstrap end to end: Setup
// strips the global flags and arms the recorder, work happens, finish
// writes a structurally valid Chrome trace to the requested file.
func TestCLISetupTraceOut(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	rest, finish, err := cliutil.Setup("test", []string{"eval", "-trace-out", out, "-domain", "eq", "x = x"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"eval", "-domain", "eq", "x = x"}; len(rest) != len(want) {
		t.Fatalf("rest = %v, want %v", rest, want)
	} else {
		for i := range want {
			if rest[i] != want[i] {
				t.Fatalf("rest = %v, want %v", rest, want)
			}
		}
	}
	if !trace.Armed() {
		t.Fatal("-trace-out did not arm the recorder")
	}
	d := MustLookup("eq")
	st := NewState(MustScheme(map[string]int{"F": 2}))
	if err := st.Insert("F", Word("adam"), Word("abel")); err != nil {
		t.Fatal(err)
	}
	f, err := d.Parse("exists y. F(x, y)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvalActive(d, st, f); err != nil {
		t.Fatal(err)
	}
	finish()
	finish() // idempotent: a second call must not rewrite or error
	if trace.Armed() {
		t.Error("finish left the recorder armed")
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	n := tracetest.ValidateChrome(t, data)
	if n == 0 {
		t.Error("trace file holds no events")
	}
}
