// Computationdb is the paper's motivating application for the trace domain
// T (Conclusion: "databases of computational experiments"). A database
// state holds an input word in the constant c; queries over T ask for the
// traces — stored computations — of machines on that input via the
// predicate P. The example walks through both negative results:
//
//   - Theorem 3.3: deciding whether P(M, c, x) is finite in a state is the
//     halting problem; the library's semi-decider returns a verdict with a
//     certificate when it can, and "unknown" when the budget runs out;
//   - Theorem 3.1: the trace theory's decision procedure (Corollary A.4)
//     verifies equivalence sentences, certifying machines total from
//     candidate formulas — and any effective class of finite candidates
//     provably misses some finite query.
package main

import (
	"fmt"
	"log"

	finq "repro"
	"repro/internal/turing"
)

func main() {
	d := finq.MustLookup("traces")

	busy := turing.Encode(turing.BusyWork(2))
	loop := turing.Encode(turing.LoopForever())

	// --- Theorem 3.3: relative safety is the halting problem. ---
	fmt.Println("Theorem 3.3 — relative safety over T:")
	for _, c := range []struct {
		name, machine, input string
	}{
		{"busy (halts)", busy, "1&"},
		{"loop (diverges)", loop, "1&"},
	} {
		query, st, err := finq.HaltingToRelativeSafety(c.machine, c.input)
		if err != nil {
			log.Fatal(err)
		}
		v, err := finq.RelativeSafety(d, st, query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s P(M, c, x) with c = %q: %v\n", c.name, c.input, v)
	}

	// --- Answering a finite trace query. ---
	fmt.Println("\nThe stored computations of the busy machine on \"1&\":")
	m, _ := turing.Decode(busy)
	for i, tr := range turing.Traces(m, busy, "1&", 10) {
		fmt.Printf("  trace %d: %s\n", i, tr)
	}

	// The decision procedure confirms there are exactly three: no fourth
	// distinct trace exists.
	all := turing.Traces(m, busy, "1&", 10)
	src := fmt.Sprintf(`exists x. (P(%q, "1&", x) & x != %q & x != %q & x != %q)`,
		busy, all[0], all[1], all[2])
	f, err := d.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	fourth, err := finq.Decide(d, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  a fourth distinct trace exists: %v (decided by the Reach-theory QE)\n", fourth)

	// --- Theorem 3.1: totality verification. ---
	fmt.Println("\nTheorem 3.1 — equivalence sentences over the decidable theory of T:")
	candidate, err := d.ParseWithConstants(
		fmt.Sprintf(`T(x) & m(x) = %q & w(x) = c`, busy), "c")
	if err != nil {
		log.Fatal(err)
	}
	ok, err := finq.VerifyTotality(busy, candidate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  busy vs its own characterization: %v — busy is certified total\n", ok)
	ok, err = finq.VerifyTotality(loop, candidate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  loop vs busy's characterization:  %v — no sound candidate certifies loop\n", ok)
	fmt.Println("\nTheorem 3.1 proves no recursive family of finite candidates can certify")
	fmt.Println("every total machine: totality is not recursively enumerable, yet a")
	fmt.Println("complete effective syntax would enumerate it through these sentences.")
}
