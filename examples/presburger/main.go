// Presburger: quantifier elimination as a query engine. A tiny shift-
// scheduling database is stored over ℕ with +, <, and divisibility; Cooper's
// algorithm both decides pure sentences and, through the §1.1 enumeration
// algorithm, computes the finite answers of mixed database/arithmetic
// queries. The successor domain N' (Section 2.2) answers the same kind of
// question without any order at all.
package main

import (
	"fmt"
	"log"

	finq "repro"
)

func main() {
	d := finq.MustLookup("presburger")

	// Shift(start): shifts start at these hours.
	st := finq.NewState(finq.MustScheme(map[string]int{"Shift": 1}))
	for _, h := range []int64{6, 14, 22} {
		if err := st.Insert("Shift", finq.Nat(h)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Print(st)

	// Pure sentences, decided by Cooper's elimination.
	for _, src := range []string{
		"forall x. (dvd(2, x) | dvd(2, add(x, 1)))",    // parity
		"exists x. (lt(6, x) & lt(x, 14) & dvd(8, x))", // a multiple of 8 strictly between
		"forall x. (exists y. (lt(x, y) & dvd(8, y)))", // unbounded multiples of 8
	} {
		f, err := d.Parse(src)
		if err != nil {
			log.Fatal(err)
		}
		v, err := finq.Decide(d, f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n  = %v\n", src, v)
	}

	// Quantifier elimination with a free variable.
	f, err := d.Parse("exists x. (lt(y, x) & lt(x, add(y, 3)))")
	if err != nil {
		log.Fatal(err)
	}
	g, err := finq.Eliminate(d, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQE: %v\n  ≡ %v\n", f, g)

	// A mixed query answered by enumeration: hours less than 3 before some
	// shift start ("arrive early").
	early, err := d.Parse("exists y. (Shift(y) & lt(x, y) & lt(y, add(x, 4)))")
	if err != nil {
		log.Fatal(err)
	}
	v, err := finq.RelativeSafety(d, st, early)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nearly-arrival query: relative safety %v\n", v)
	ans, err := finq.Enumerate(d, st, early, finq.DefaultBudget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answer: %v (complete=%v)\n", ans.Rows.Tuples(), ans.Complete)

	// The successor domain answers anchored queries without order
	// (Section 2.2): predecessors of shift starts.
	ns := finq.MustLookup("nsucc")
	pred, err := ns.Parse("exists y. (Shift(y) & s(x) = y)")
	if err != nil {
		log.Fatal(err)
	}
	v, err = finq.RelativeSafety(ns, st, pred)
	if err != nil {
		log.Fatal(err)
	}
	ans, err = finq.Enumerate(ns, st, pred, finq.DefaultBudget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nN' (no order): hour-before-shift query: safety %v, answer %v\n",
		v, ans.Rows.Tuples())
}
