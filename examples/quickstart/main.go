// Quickstart: the paper's introductory father/son database over the
// pure-equality domain. It builds the one-relation scheme, asks the
// introduction's two queries M(x) ("fathers of more than one son") and
// G(x, z) ("grandfather/grandson pairs"), shows that their disjunction is
// unsafe exactly under the footnote's condition, and runs the safe-range
// analysis.
package main

import (
	"fmt"
	"log"

	finq "repro"
)

func main() {
	d := finq.MustLookup("eq")
	scheme := finq.MustScheme(map[string]int{"F": 2})
	st := finq.NewState(scheme)
	for _, pair := range [][2]string{
		{"adam", "abel"}, {"adam", "cain"}, {"cain", "enoch"},
	} {
		if err := st.Insert("F", finq.Word(pair[0]), finq.Word(pair[1])); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("state:")
	fmt.Print(st)

	// M(x): x has more than one son.
	m, err := d.Parse("exists y. (exists z. (y != z & F(x, y) & F(x, z)))")
	if err != nil {
		log.Fatal(err)
	}
	show(d, st, "M(x) — more than one son", m)

	// G(x, z): grandfather/grandson.
	g, err := d.Parse("exists y. (F(x, y) & F(y, z))")
	if err != nil {
		log.Fatal(err)
	}
	show(d, st, "G(x, z) — grandfather/grandson", g)

	// The unsafe disjunction of the introduction: M(x) ∨ G(x, z).
	disj, err := d.Parse(
		"(exists y. (exists w. (y != w & F(x, y) & F(x, w)))) | (exists y. (F(x, y) & F(y, z)))")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nM(x) | G(x, z):")
	report := finq.SafeRange(scheme, disj)
	fmt.Printf("  safe-range: %v (unranged %v)\n", report.Safe, report.Unranged)
	v, err := finq.RelativeSafety(d, st, disj)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  relative safety in this state: %v — adam has two sons, so z is loose (footnote 4)\n", v)

	// The obviously unsafe complement.
	neg, err := d.Parse("~F(x, y)")
	if err != nil {
		log.Fatal(err)
	}
	v, err = finq.RelativeSafety(d, st, neg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n~F(x, y): relative safety %v — complements of finite relations are infinite\n", v)
}

func show(d finq.DomainInfo, st *finq.State, title string, f *finq.Formula) {
	fmt.Printf("\n%s:\n  %v\n", title, f)
	report := finq.SafeRange(st.Scheme(), f)
	fmt.Printf("  safe-range: %v\n", report.Safe)
	ans, err := finq.EvalActive(d, st, f)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range ans.Rows.Tuples() {
		fmt.Printf("  answer %v\n", row)
	}
}
