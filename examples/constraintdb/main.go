// Constraintdb demonstrates the paper's §1.2 "first way" of living with
// undecidable safety: accept infinite relations, stored as finite
// representations (defining formulas) in the style of Kanellakis, Kuper and
// Revesz. The database can answer membership and facts about infinite
// relations it could never list, decide finiteness of query answers by the
// Theorem 2.5 criterion, and materialize the finite ones.
package main

import (
	"fmt"
	"log"

	"repro/internal/domain"
	"repro/internal/finrep"
	"repro/internal/logic"
	"repro/internal/presburger"
)

func main() {
	db := finrep.NewDatabase(presburger.Domain{}, presburger.Decider(), presburger.Eliminator{})

	// Even(x) ⟺ 2 | x — an infinite relation, stored as one atom.
	even, err := finrep.NewRelation([]string{"x"},
		logic.Atom(presburger.PredDvd, logic.Const("2"), logic.Var("x")))
	if err != nil {
		log.Fatal(err)
	}
	db.Define("Even", even)

	// Window(lo, hi) ⟺ lo < hi < lo+10 — infinitely many rows, finitely
	// many per lo.
	window, err := finrep.NewRelation([]string{"lo", "hi"}, logic.And(
		logic.Atom(presburger.PredLt, logic.Var("lo"), logic.Var("hi")),
		logic.Atom(presburger.PredLt, logic.Var("hi"),
			logic.App(presburger.FuncAdd, logic.Var("lo"), logic.Const("10")))))
	if err != nil {
		log.Fatal(err)
	}
	db.Define("Window", window)

	fmt.Println("relations: Even(x) ⟺ 2|x   Window(lo,hi) ⟺ lo < hi < lo+10")

	// Membership in an infinite relation.
	for _, n := range []int64{41, 42} {
		in, err := db.Member(logic.Atom("Even", logic.Var("x")),
			map[string]domain.Value{"x": domain.Int(n)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Even(%d) = %v\n", n, in)
	}

	// A fact mixing both: every window above an even lo contains an even hi.
	fact := logic.ForallAll([]string{"lo"}, logic.Implies(
		logic.Atom("Even", logic.Var("lo")),
		logic.Exists("hi", logic.And(
			logic.Atom("Window", logic.Var("lo"), logic.Var("hi")),
			logic.Atom("Even", logic.Var("hi"))))))
	v, err := db.Fact(fact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("every even lo has an even hi in its window:", v)

	// Finiteness of query answers is decided, not guessed.
	q1 := logic.Atom("Even", logic.Var("x"))
	q2 := logic.And(logic.Atom("Even", logic.Var("x")),
		logic.Exists("hi", logic.Atom("Window", logic.Var("x"), logic.Var("hi"))),
		logic.Atom(presburger.PredLt, logic.Var("x"), logic.Const("9")))
	for name, q := range map[string]*logic.Formula{"Even(x)": q1, "even x < 9 with a window": q2} {
		fin, err := db.Finite(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("finite(%s) = %v\n", name, fin)
	}

	// Finite answers materialize; infinite ones are refused by design.
	rows, err := db.Materialize(q2, presburger.Domain{}, 10000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("materialized: ")
	for _, r := range rows {
		fmt.Printf("%v ", r["x"])
	}
	fmt.Println()
	if _, err := db.Materialize(q1, presburger.Domain{}, 100); err != nil {
		fmt.Println("materializing Even(x):", err)
	}

	// The representation of an answer is itself a stored relation: the los
	// whose window contains an even hi, as a quantifier-free formula.
	rep, err := db.Representation(logic.Exists("hi", logic.And(
		logic.Atom("Window", logic.Var("lo"), logic.Var("hi")),
		logic.Atom("Even", logic.Var("hi")))))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("representation of 'lo with an even hi in window':")
	fmt.Println("  ", rep.Def)
}
