// Genealogy over the ordered naturals: the Section 2 positive story. A
// birth-year registry is stored over ℕ with < (a decidable extension — full
// Presburger arithmetic — powers the deciders). The example reproduces
// Fact 2.1's finite-but-not-domain-independent query, runs the Theorem 2.2
// finitization, and decides relative safety per Theorem 2.5, answering the
// finite queries with the §1.1 enumeration algorithm.
package main

import (
	"fmt"
	"log"

	finq "repro"
)

func main() {
	d := finq.MustLookup("presburger")
	scheme := finq.MustScheme(map[string]int{"Born": 1})
	st := finq.NewState(scheme)
	for _, year := range []int64{2, 5} {
		if err := st.Insert("Born", finq.Nat(year)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Print(st)

	// Fact 2.1: the smallest number greater than every stored year.
	// ∀y (Born(y) → y < x) ∧ ∀y (y < x → ∃z (Born(z) ∧ ¬(z < y))).
	fact21, err := d.Parse(
		"(forall y. (Born(y) -> lt(y, x))) & (forall y. (lt(y, x) -> (exists z. (Born(z) & ~lt(z, y)))))")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFact 2.1 query:", fact21)
	v, err := finq.RelativeSafety(d, st, fact21)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("relative safety (Theorem 2.5 decider):", v)
	ans, err := finq.Enumerate(d, st, fact21, finq.DefaultBudget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answer by §1.1 enumeration: %v (complete=%v) — outside the active domain {2,5},\n", ans.Rows.Tuples(), ans.Complete)
	fmt.Println("so the query is finite but not domain-independent")

	// Theorem 2.2: the finitization of an unsafe query is finite.
	unsafe, err := d.Parse("~Born(x)")
	if err != nil {
		log.Fatal(err)
	}
	fin := finq.Finitize(unsafe)
	fmt.Println("\n~Born(x) finitized:", fin)
	v, err = finq.RelativeSafety(d, st, unsafe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  ~Born(x) relative safety:", v)
	v, err = finq.RelativeSafety(d, st, fin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  finitization relative safety:", v, "(every finitization is finite — Theorem 2.2)")

	// A finite query is equivalent to its finitization: "years before the
	// latest recorded birth".
	early, err := d.Parse("exists y. (Born(y) & lt(x, y))")
	if err != nil {
		log.Fatal(err)
	}
	ans, err = finq.Enumerate(d, st, early, finq.DefaultBudget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nyears before the latest birth: %v\n", ans.Rows.Tuples())
	ansFin, err := finq.Enumerate(d, st, finq.Finitize(early), finq.DefaultBudget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same query finitized:          %v (identical — the finitization of a finite query is equivalent to it)\n",
		ansFin.Rows.Tuples())
}
