package finq

import (
	"context"
	"encoding/json"
	"testing"
)

// TestAnswerJSONRoundTrip: encode → marshal → unmarshal → decode yields
// the same relation, over a relational answer.
func TestAnswerJSONRoundTrip(t *testing.T) {
	d := MustLookup("presburger")
	st := NewState(MustScheme(map[string]int{"R": 1}))
	for _, n := range []int64{3, 7} {
		if err := st.Insert("R", Nat(n)); err != nil {
			t.Fatal(err)
		}
	}
	f, err := d.Parse("exists y. (R(y) & lt(x, y))")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Eval(context.Background(), Request{Domain: "presburger", State: st, Formula: f, Mode: ModeEnumerate})
	if err != nil {
		t.Fatal(err)
	}
	wire := EncodeAnswer(d, res.Answer)
	data, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	var back AnswerJSON
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	ans, err := back.Decode(d)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Rows.Len() != res.Answer.Rows.Len() || ans.Complete != res.Answer.Complete {
		t.Fatalf("round trip lost rows: %d vs %d", ans.Rows.Len(), res.Answer.Rows.Len())
	}
	for _, row := range res.Answer.Rows.Tuples() {
		if !ans.Rows.Has(row) {
			t.Errorf("row %v lost in round trip", row)
		}
	}
}

// TestAnswerJSONBooleanRoundTrip covers the no-free-variable case, which
// travels as a "truth" field instead of rows.
func TestAnswerJSONBooleanRoundTrip(t *testing.T) {
	d := MustLookup("eq")
	for _, truth := range []bool{true, false} {
		formula := "forall x. x = x"
		if !truth {
			formula = "exists x. ~(x = x)"
		}
		f, err := d.Parse(formula)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Eval(context.Background(), Request{Domain: "eq", Formula: f, Mode: ModeEnumerate})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(EncodeAnswer(d, res.Answer))
		if err != nil {
			t.Fatal(err)
		}
		var back AnswerJSON
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		ans, err := back.Decode(d)
		if err != nil {
			t.Fatal(err)
		}
		if got := ans.Rows.Len() > 0; got != truth {
			t.Errorf("boolean %v round-tripped to %v (wire %s)", truth, got, data)
		}
	}
}

// TestVerdictJSONRoundTrip: the three verdicts marshal to their names and
// back; junk is rejected.
func TestVerdictJSONRoundTrip(t *testing.T) {
	for _, v := range []Verdict{Holds, Fails, Unknown} {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if want := `"` + v.String() + `"`; string(data) != want {
			t.Errorf("verdict %v marshals to %s, want %s", v, data, want)
		}
		var back Verdict
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != v {
			t.Errorf("verdict %v round-tripped to %v", v, back)
		}
	}
	var v Verdict
	if err := json.Unmarshal([]byte(`"maybe"`), &v); err == nil {
		t.Error("junk verdict accepted")
	}
}

// TestProfileJSONRoundTrip: the EXPLAIN profile marshals and unmarshals
// without losing the tree.
func TestProfileJSONRoundTrip(t *testing.T) {
	d := MustLookup("eq")
	st := NewState(MustScheme(map[string]int{"F": 2}))
	if err := st.Insert("F", Word("adam"), Word("abel")); err != nil {
		t.Fatal(err)
	}
	f, err := d.Parse("exists y. F(x, y)")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Eval(context.Background(), Request{Domain: "eq", State: st, Formula: f, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil {
		t.Fatal("no profile")
	}
	data, err := json.Marshal(res.Profile)
	if err != nil {
		t.Fatal(err)
	}
	var back Profile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Query != res.Profile.Query || back.Rows != res.Profile.Rows ||
		back.Root == nil || len(back.Root.Children) != len(res.Profile.Root.Children) {
		t.Fatalf("profile round trip lost structure: %+v", back)
	}
}

// TestResultJSONPartialShape: a budget-stopped enumeration encodes with
// partial=true and stopped="budget".
func TestResultJSONPartialShape(t *testing.T) {
	d := MustLookup("presburger")
	st := NewState(MustScheme(map[string]int{"R": 1}))
	if err := st.Insert("R", Nat(5)); err != nil {
		t.Fatal(err)
	}
	f, err := d.Parse("~R(x)")
	if err != nil {
		t.Fatal(err)
	}
	budget := EnumerationBudget{Rows: 3, Probe: 1000}
	res, err := Eval(context.Background(), Request{
		Domain: "presburger", State: st, Formula: f, Mode: ModeEnumerate, Budget: &budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.Stopped != "budget" {
		t.Fatalf("want partial budget result, got partial=%v stopped=%q", res.Partial, res.Stopped)
	}
	data, err := json.Marshal(EncodeResult(d, res))
	if err != nil {
		t.Fatal(err)
	}
	var wire ResultJSON
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	if !wire.Partial || wire.Stopped != "budget" || wire.Answer == nil || len(wire.Answer.Rows) != 3 {
		t.Fatalf("wire result lost partiality: %s", data)
	}
}
