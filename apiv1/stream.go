package apiv1

// Streaming row delivery. POST /v1/eval streams when the request asks for
// it (?stream=1, or an Accept header naming a streaming content type) and
// the mode is "enumerate": rows are flushed to the client as the §1.1
// algorithm produces them, instead of after the budget ends. The PR 4
// cancellation plumbing makes early client disconnect safe — the
// evaluation stops between rows and the stop reason "client-gone" is
// recorded in spans and per-query stats.
//
// Two encodings are negotiated by Accept (JSON lines are the default):
//
//   - ContentTypeNDJSON: one JSON value per line — a StreamHeader line,
//     then one StreamRow line per answer row, then a StreamTrailer line.
//   - ContentTypeFrames: the same three payloads as length-prefixed binary
//     frames (the compact hot-path encoding; see the finq frame codec).
//     Header and trailer frames carry the JSON of StreamHeader and
//     StreamTrailer; row frames carry length-prefixed cells directly.
const (
	// ContentTypeJSON is the default (non-streaming) response encoding.
	ContentTypeJSON = "application/json"
	// ContentTypeNDJSON is newline-delimited JSON streaming.
	ContentTypeNDJSON = "application/x-ndjson"
	// ContentTypeFrames is the compact binary frame streaming encoding.
	ContentTypeFrames = "application/x-finq-frames"
)

// StreamHeader is the first line/frame of a streaming response, sent
// before evaluation begins.
type StreamHeader struct {
	// Vars are the answer's column names, in row cell order. Empty for a
	// boolean (sentence) query, whose verdict arrives in the trailer.
	Vars []string `json:"vars"`
}

// StreamRow is one answer row, flushed as the enumeration finds it.
type StreamRow struct {
	// Row holds one constant name per header var.
	Row []string `json:"row"`
}

// StreamTrailer is the last line/frame of a streaming response: the
// result metadata that a non-streaming response would carry around the
// rows.
type StreamTrailer struct {
	// Rows is the number of rows streamed before the trailer.
	Rows int64 `json:"rows"`
	// Truth carries a boolean query's verdict (no rows are streamed).
	Truth *bool `json:"truth,omitempty"`
	// Complete reports a complete answer (the enumeration proved there
	// are no further rows).
	Complete bool `json:"complete"`
	// Partial reports that something stopped the run early.
	Partial bool `json:"partial,omitempty"`
	// Stopped is "" for a complete answer, else "budget", "deadline",
	// "canceled", or "client-gone".
	Stopped string `json:"stopped,omitempty"`
	// Error reports an evaluation failure after streaming began (the
	// status line was already 200 by then).
	Error *Error `json:"error,omitempty"`
	// TraceID is the request's W3C trace ID (32 lowercase hex chars),
	// matching the `traceparent` response header — the stream's rows were
	// produced under spans of this trace.
	TraceID string `json:"trace_id,omitempty"`
}
