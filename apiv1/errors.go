package apiv1

// Error is the uniform JSON error body, carried under the "error" key of
// ErrorEnvelope on every non-2xx response (429 sheds and panic 500s
// included) and inline on failed batch items. Code is machine-readable
// from the closed set below; Message is for humans; RequestID lets a
// client quote the failing request and the operator grep logs and traces
// for it.
type Error struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is a human-readable description.
	Message string `json:"message"`
	// RequestID is the request's X-Request-Id (absent on batch-item
	// errors, which live inside an identified response already).
	RequestID string `json:"request_id,omitempty"`
	// TraceID is the request's W3C trace ID (32 lowercase hex chars),
	// matching the `traceparent` response header, the access log's
	// trace_id, and the flight-recorder events — one grep correlates all
	// of them. Absent on batch-item errors, like RequestID.
	TraceID string `json:"trace_id,omitempty"`
}

// Error implements the error interface, so a decoded wire error can flow
// through Go error handling unchanged.
func (e *Error) Error() string {
	if e.Code == "" {
		return e.Message
	}
	return e.Code + ": " + e.Message
}

// ErrorEnvelope is every error response's body:
//
//	{"error": {"code": "bad_request", "message": "...", "request_id": "..."}}
type ErrorEnvelope struct {
	Error Error `json:"error"`
}

// The closed set of machine-readable error codes. The set is closed so
// clients can switch on codes exhaustively and tests can assert no
// handler mints an ad-hoc one.
const (
	// CodeBadRequest: the request body or parameters are malformed — bad
	// JSON, unknown fields, an unknown domain, a formula that does not
	// parse, a bad state, or stream negotiation on a non-enumerable mode.
	CodeBadRequest = "bad_request"
	// CodeNotFound: the identified resource (a capture, a tail sample)
	// does not exist.
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed: wrong HTTP method for the endpoint.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeConflict: the operation is already in flight (profile capture).
	CodeConflict = "conflict"
	// CodePayloadTooLarge: the request body exceeds the configured limit.
	CodePayloadTooLarge = "payload_too_large"
	// CodeEvalFailed: the request was well-formed but the evaluation,
	// decision, or elimination failed (a 422).
	CodeEvalFailed = "eval_failed"
	// CodeOverCapacity: the worker pool and queue are full; the request
	// was shed with 429. Retry with backoff.
	CodeOverCapacity = "over_capacity"
	// CodeDeadline: the per-request or per-batch deadline expired before
	// the work ran (batch items past the cutoff; the safety analysis
	// timeout).
	CodeDeadline = "deadline"
	// CodeClientGone: the client disconnected while the request was
	// queued or streaming; nobody is listening for the answer.
	CodeClientGone = "client_gone"
	// CodeUnavailable: the service cannot take the request now (draining,
	// or a non-deadline 503).
	CodeUnavailable = "unavailable"
	// CodeInternal: a handler panic or another server-side failure.
	CodeInternal = "internal"
)

// ErrorCodes returns the closed code set. Tests assert every wire error
// carries one of these; the docs generator lists them.
func ErrorCodes() []string {
	return []string{
		CodeBadRequest,
		CodeNotFound,
		CodeMethodNotAllowed,
		CodeConflict,
		CodePayloadTooLarge,
		CodeEvalFailed,
		CodeOverCapacity,
		CodeDeadline,
		CodeClientGone,
		CodeUnavailable,
		CodeInternal,
	}
}

// ValidCode reports whether code is in the closed set.
func ValidCode(code string) bool {
	for _, c := range ErrorCodes() {
		if c == code {
			return true
		}
	}
	return false
}
