package apiv1

// Endpoint describes one route of the service for the generated endpoint
// reference (docs/API.md). The table is data, not behavior: the server's
// mux is still the source of truth for routing, and the apidocgen check
// keeps the two from drifting by regenerating the docs from this table in
// CI.
type Endpoint struct {
	// Method is the HTTP method.
	Method string
	// Path is the route.
	Path string
	// Request names the request body type in this package ("" for GET
	// endpoints or bodies documented in Params).
	Request string
	// Response names the response body type in this package.
	Response string
	// Params documents query parameters or header negotiation.
	Params string
	// Doc is a short description.
	Doc string
}

// Endpoints returns the service's route table for documentation, /v1
// endpoints first. Keep in sync with internal/server.(*Server).Handler —
// the apiv1 round-trip tests and finqd -smoke cover every /v1 row.
func Endpoints() []Endpoint {
	return []Endpoint{
		{
			Method: "POST", Path: "/v1/eval",
			Request: "EvalRequest", Response: "EvalResponse",
			Params: "`?stream=1` or `Accept: application/x-ndjson` / `application/x-finq-frames` streams enumeration rows (see Streaming)",
			Doc:    "Evaluate a formula over a domain and state. Partial results (budget, deadline, cancellation) are 200s with `partial: true`, not errors.",
		},
		{
			Method: "POST", Path: "/v1/eval/batch",
			Request: "BatchRequest", Response: "BatchResponse",
			Doc: "Evaluate many queries against one shared state in one request, amortizing state parsing and the handler chain. Per-item status: a failed item carries an item-scoped error, the rest keep their results. The whole batch runs under one deadline.",
		},
		{
			Method: "POST", Path: "/v1/decide",
			Request: "DecideRequest", Response: "DecideResponse",
			Doc: "Decide a pure-domain sentence.",
		},
		{
			Method: "POST", Path: "/v1/qe",
			Request: "QERequest", Response: "QEResponse",
			Doc: "Quantifier-eliminate a formula.",
		},
		{
			Method: "POST", Path: "/v1/safety",
			Request: "SafetyRequest", Response: "SafetyResponse",
			Doc: "Relative-safety analysis: is the query's answer finite in this state?",
		},
		{
			Method: "GET", Path: "/v1/domains",
			Response: "DomainsResponse",
			Doc:      "List the registered domains.",
		},
		{
			Method: "GET", Path: "/v1/stats/queries",
			Response: "QueryStatsResponse",
			Params:   "`?by=latency|count|selectivity|allocs` orders the list; `?k=<n>` bounds it (default 20, `k=0` for all)",
			Doc:      "Per-query aggregates from the stats registry, top-K.",
		},
		{
			Method: "GET", Path: "/v1/slo",
			Response: "—",
			Doc:      "SLO burn-rate summary per endpoint objective (`{\"enabled\": false}` when no SLO is configured).",
		},
		{
			Method: "GET", Path: "/v1/version",
			Response: "VersionResponse",
			Doc:      "Build identity of the running binary.",
		},
		{
			Method: "GET", Path: "/healthz",
			Response: "Health",
			Doc:      "Liveness: 200 while the process serves HTTP, draining included.",
		},
		{
			Method: "GET", Path: "/readyz",
			Response: "Health",
			Doc:      "Readiness: 200 while accepting new work, 503 once a drain begins.",
		},
		{
			Method: "GET", Path: "/metrics",
			Response: "—",
			Doc:      "Prometheus exposition (also /debug/obs, /debug/pprof/).",
		},
		{
			Method: "GET", Path: "/debug/slow",
			Response: "—",
			Params:   "`?id=<request id>` fetches one span subtree; without it, the capture index",
			Doc:      "Tail-sampled request captures (slow, errored, first-seen-query).",
		},
		{
			Method: "GET", Path: "/debug/trace/export",
			Response: "—",
			Params:   "`?format=otlp|jsonl|chrome` selects the encoding (default otlp)",
			Doc:      "The armed flight recorder's ring: OTLP/JSON resource spans, the stitchable JSONL dump (`finq trace stitch`), or a Chrome trace.",
		},
		{
			Method: "GET", Path: "/debug/queries",
			Response: "—",
			Params:   "`?by=…` as /v1/stats/queries",
			Doc:      "Per-query stats as a text table.",
		},
		{
			Method: "GET", Path: "/debug/profiles",
			Response: "—",
			Params:   "`?id=&kind=cpu|heap` downloads raw pprof bytes",
			Doc:      "Triggered CPU+heap profile captures.",
		},
		{
			Method: "POST", Path: "/debug/profiles/capture",
			Response: "—",
			Params:   "`?dur_ms=<n>` bounds the CPU window",
			Doc:      "On-demand bounded CPU+heap capture.",
		},
	}
}
