// Package apiv1 is the single definition of finqd's /v1 wire contract:
// every request and response body, the error envelope with its closed
// code set, the streaming frame/line types, and the endpoint table that
// docs/API.md is generated from (scripts/apidocgen.go).
//
// The server (internal/server), the typed client (client), the load
// generator (cmd/finqload), and finqd -smoke all build against these
// types, so the wire format is defined once instead of per-handler.
//
// Answer and result bodies reuse the library's wire forms
// (finq.AnswerJSON, finq.ResultJSON): the HTTP layer adds envelopes and
// transport semantics, not a second encoding of answers.
//
// Every request additionally carries W3C trace context: the server reads
// the `traceparent` (and `tracestate`) request header, parses it strictly
// but never rejects it (a malformed or absent header mints a fresh root),
// and echoes the request span's own position as a `traceparent` response
// header on every response — errors, batch responses, and stream
// trailers included. Callers that forward work parent the next hop on
// exactly the echoed position; `trace_id` appears alongside `request_id`
// in error envelopes, stream trailers, the access log, and /debug/slow
// captures.
package apiv1

import (
	"encoding/json"

	finq "repro"
)

// EvalRequest is the body of POST /v1/eval. Formula syntax, state format,
// and budget semantics are exactly the library's: the request is a wire
// form of finq.Request.
type EvalRequest struct {
	// Domain names a registered domain (GET /v1/domains lists them).
	Domain string `json:"domain"`
	// Formula is the query in the domain's concrete syntax.
	Formula string `json:"formula"`
	// State is the database state in the stateJSON format; omitted means
	// the empty state.
	State json.RawMessage `json:"state,omitempty"`
	// Mode is "active" (default) or "enumerate".
	Mode string `json:"mode,omitempty"`
	// Workers > 1 fans active-domain evaluation over a worker pool.
	Workers int `json:"workers,omitempty"`
	// Budget bounds enumerate mode; omitted means the default budget.
	Budget *Budget `json:"budget,omitempty"`
	// Profile asks for a per-node EXPLAIN profile in the response.
	Profile bool `json:"profile,omitempty"`
}

// Budget is the wire form of an enumeration budget.
type Budget struct {
	// Rows caps the number of answer rows produced.
	Rows int `json:"rows"`
	// Probe caps candidate tuples tested per row.
	Probe int `json:"probe"`
}

// EvalResponse is the body of a non-streaming POST /v1/eval answer: the
// library's result wire form (answer, optional profile, partial/stopped).
type EvalResponse = finq.ResultJSON

// Answer is the wire form of a query answer, as embedded in EvalResponse.
type Answer = finq.AnswerJSON

// BatchRequest is the body of POST /v1/eval/batch: many queries evaluated
// against one shared state in one request, amortizing state parsing, the
// handler chain, and per-request overhead. Items run in order under one
// per-batch deadline; an item's failure (bad formula, evaluation error)
// is reported on that item without failing the batch.
type BatchRequest struct {
	// Domain names the registered domain every item evaluates over.
	Domain string `json:"domain"`
	// State is the shared database state, parsed once for the batch;
	// omitted means the empty state.
	State json.RawMessage `json:"state,omitempty"`
	// Items are the queries to evaluate, in order.
	Items []BatchItem `json:"items"`
}

// BatchItem is one query of a batch.
type BatchItem struct {
	// Formula is the query in the domain's concrete syntax.
	Formula string `json:"formula"`
	// Mode is "active" (default) or "enumerate".
	Mode string `json:"mode,omitempty"`
	// Workers > 1 fans active-domain evaluation over a worker pool.
	Workers int `json:"workers,omitempty"`
	// Budget bounds enumerate mode; omitted means the default budget.
	Budget *Budget `json:"budget,omitempty"`
	// Profile asks for a per-node EXPLAIN profile on this item.
	Profile bool `json:"profile,omitempty"`
}

// BatchResponse is the body of a POST /v1/eval/batch answer.
type BatchResponse struct {
	// Items mirror the request's items by position: each carries a result
	// or an item-scoped error, never both.
	Items []BatchItemResult `json:"items"`
	// Stopped is "" when every item ran, or "deadline" when the per-batch
	// deadline expired first — items after the cutoff carry a "deadline"
	// error, items before it keep their results (the batch analogue of a
	// partial evaluation result).
	Stopped string `json:"stopped,omitempty"`
}

// BatchItemResult is one item's outcome.
type BatchItemResult struct {
	// Result is the item's evaluation result (possibly partial), present
	// exactly when Error is absent.
	Result *EvalResponse `json:"result,omitempty"`
	// Error reports an item-scoped failure: a formula that does not parse,
	// an evaluation error, or the batch deadline expiring before the item
	// ran. Its code is from the same closed set as top-level errors.
	Error *Error `json:"error,omitempty"`
	// SpanID is the item's span ID (16 lowercase hex chars) when the
	// request carried a trace and the flight recorder was armed: each
	// batch item evaluates under its own child span of the request span,
	// and this ID locates the item's subtree in the exported trace.
	SpanID string `json:"span_id,omitempty"`
}

// DecideRequest is the body of POST /v1/decide.
type DecideRequest struct {
	// Domain names a registered domain.
	Domain string `json:"domain"`
	// Sentence is a pure-domain sentence (no free variables, no database
	// relations) in the domain's concrete syntax.
	Sentence string `json:"sentence"`
}

// DecideResponse is its answer.
type DecideResponse struct {
	// Truth is the sentence's truth value in the domain.
	Truth bool `json:"truth"`
}

// QERequest is the body of POST /v1/qe.
type QERequest struct {
	// Domain names a registered domain.
	Domain string `json:"domain"`
	// Formula is the formula to quantifier-eliminate.
	Formula string `json:"formula"`
}

// QEResponse carries the quantifier-free equivalent, rendered in the
// domain's concrete syntax.
type QEResponse struct {
	// Formula is the quantifier-free equivalent.
	Formula string `json:"formula"`
}

// SafetyRequest is the body of POST /v1/safety.
type SafetyRequest struct {
	// Domain names a registered domain.
	Domain string `json:"domain"`
	// Formula is the query to analyze.
	Formula string `json:"formula"`
	// State is the database state the analysis is relative to; omitted
	// means the empty state.
	State json.RawMessage `json:"state,omitempty"`
}

// SafetyResponse reports the relative-safety verdict: "holds" (the answer
// is finite in this state), "fails", or "unknown" (the budgeted
// semi-decision over the trace domain gave up).
type SafetyResponse struct {
	// Verdict is "holds", "fails", or "unknown".
	Verdict finq.Verdict `json:"verdict"`
}

// Domain is one entry of GET /v1/domains.
type Domain struct {
	// Name is the domain's registry name ("eq", "presburger", …).
	Name string `json:"name"`
	// Doc is a one-line description.
	Doc string `json:"doc"`
}

// DomainsResponse is the body of GET /v1/domains.
type DomainsResponse = []Domain

// QueryStatsResponse is the body of GET /v1/stats/queries: the top-K
// per-query aggregates from the qstats registry. Each entry's shape is
// the registry's EntryView (key, domain, mode, latency histogram, rows,
// stop reasons, cache and plan-cache traffic, allocation aggregates).
type QueryStatsResponse struct {
	// By is the ordering that produced the list: "latency", "count",
	// "selectivity", or "allocs".
	By string `json:"by"`
	// Queries are the entries, most significant first.
	Queries json.RawMessage `json:"queries"`
}

// VersionResponse is the body of GET /v1/version: the build identity the
// binary embeds, so profiles, traces, and stats snapshots can be pinned
// to the exact build that produced them.
type VersionResponse struct {
	// Version is the module version.
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version,omitempty"`
	// VCSRevision is the VCS commit the binary was built from.
	VCSRevision string `json:"vcs_revision,omitempty"`
	// VCSTime is the commit timestamp.
	VCSTime string `json:"vcs_time,omitempty"`
	// Modified reports uncommitted changes at build time.
	Modified bool `json:"modified,omitempty"`
	// Line is the one-line rendering the binary itself prints.
	Line string `json:"line"`
}

// Health is the body of GET /healthz and GET /readyz.
type Health struct {
	// Status is "ok" (healthz), "ready", or "draining" (readyz).
	Status string `json:"status"`
}
