package autarith

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/presburger"
)

func TestMinimizePreservesRelation(t *testing.T) {
	// x − y ≤ 2 before and after minimization.
	d := LeqAtom([]string{"x", "y"}, map[string]int64{"x": 1, "y": -1}, 2)
	m := Minimize(d)
	if m.NumStates() > d.NumStates() {
		t.Fatalf("minimization grew: %s -> %s", statesString(d), statesString(m))
	}
	for x := int64(0); x <= 6; x++ {
		for y := int64(0); y <= 6; y++ {
			a, err := d.Runs(map[string]int64{"x": x, "y": y})
			if err != nil {
				t.Fatal(err)
			}
			b, err := m.Runs(map[string]int64{"x": x, "y": y})
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Errorf("x=%d y=%d: %v vs %v", x, y, a, b)
			}
		}
	}
}

func TestMinimizeCanonical(t *testing.T) {
	// Two syntactically different automata for the same relation minimize
	// to isomorphic DFAs: x ≤ 3 vs x < 4.
	a := LeqAtom([]string{"x"}, map[string]int64{"x": 1}, 3)
	b, err := Compile(logic.Atom(presburger.PredLt, logic.Var("x"), logic.Const("4")))
	if err != nil {
		t.Fatal(err)
	}
	if !Isomorphic(Minimize(a), Minimize(b)) {
		t.Errorf("x≤3 and x<4 should minimize identically")
	}
	// And a different relation does not.
	c := LeqAtom([]string{"x"}, map[string]int64{"x": 1}, 4)
	if Isomorphic(Minimize(a), Minimize(c)) {
		t.Errorf("x≤3 and x≤4 differ")
	}
}

func TestEquivalentBasics(t *testing.T) {
	x := logic.Var("x")
	lt := func(a, b logic.Term) *logic.Formula { return logic.Atom(presburger.PredLt, a, b) }
	le := func(a, b logic.Term) *logic.Formula { return logic.Atom(presburger.PredLe, a, b) }
	eq, err := Equivalent(lt(x, logic.Const("3")), le(x, logic.Const("2")))
	if err != nil || !eq {
		t.Errorf("x<3 ≡ x≤2: %v %v", eq, err)
	}
	eq, err = Equivalent(lt(x, logic.Const("3")), lt(x, logic.Const("4")))
	if err != nil || eq {
		t.Errorf("x<3 ≢ x<4: %v %v", eq, err)
	}
	// Different variable sets align by cylindrification: x<3 vs x<3 ∧ y=y.
	eq, err = Equivalent(lt(x, logic.Const("3")),
		logic.And(lt(x, logic.Const("3")), logic.Eq(logic.Var("y"), logic.Var("y"))))
	if err != nil || !eq {
		t.Errorf("vacuous conjunct should not matter: %v %v", eq, err)
	}
}

// TestEquivalentDifferentialAgainstCooper: formula equivalence by automata
// isomorphism agrees with Cooper's ∀-sentence method.
func TestEquivalentDifferentialAgainstCooper(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	cooper := presburger.Eliminator{MaxNodes: 200_000}
	agreements, skipped := 0, 0
	for i := 0; i < 120; i++ {
		f := randOpenFormula(rng)
		g := randOpenFormula(rng)
		a, err := Equivalent(f, g)
		if err != nil {
			t.Fatalf("autarith Equivalent: %v (%v vs %v)", err, f, g)
		}
		b, err := cooper.Equivalent(f, g)
		if err != nil {
			skipped++
			continue
		}
		if a != b {
			t.Fatalf("equivalence oracles disagree on %v vs %v: automata=%v cooper=%v", f, g, a, b)
		}
		agreements++
	}
	if agreements < 80 {
		t.Fatalf("too few comparisons: %d (skipped %d)", agreements, skipped)
	}
	// Also: every formula is equivalent to itself modulo a tautology.
	f := randOpenFormula(rng)
	a, err := Equivalent(f, logic.And(f, logic.True()))
	if err != nil || !a {
		t.Errorf("f ≡ f ∧ true failed: %v %v", a, err)
	}
}

func randOpenFormula(rng *rand.Rand) *logic.Formula {
	x := logic.Var("x")
	atom := func() *logic.Formula {
		c := logic.Const(itoa(int64(rng.Intn(6))))
		switch rng.Intn(3) {
		case 0:
			return logic.Atom(presburger.PredLt, x, c)
		case 1:
			return logic.Atom(presburger.PredDvd, logic.Const(itoa(int64(2+rng.Intn(2)))), x)
		default:
			return logic.Eq(x, c)
		}
	}
	var rec func(d int) *logic.Formula
	rec = func(d int) *logic.Formula {
		if d == 0 {
			return atom()
		}
		switch rng.Intn(4) {
		case 0:
			return atom()
		case 1:
			return logic.Not(rec(d - 1))
		case 2:
			return logic.And(rec(d-1), rec(d-1))
		default:
			return logic.Or(rec(d-1), rec(d-1))
		}
	}
	return rec(2)
}
