package autarith

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Complement flips acceptance. Because the package maintains zero-stability
// (every encoding of a tuple is accepted or every one rejected), language
// complement is relation complement.
func Complement(d *DFA) *DFA {
	accept := make([]bool, len(d.Accept))
	for i, a := range d.Accept {
		accept[i] = !a
	}
	return &DFA{Vars: d.Vars, Trans: d.Trans, Accept: accept, Initial: d.Initial}
}

// Cylindrify extends the automaton to a superset of tracks: new tracks are
// unconstrained (transitions ignore their bits).
func Cylindrify(d *DFA, vars []string) (*DFA, error) {
	pos := map[string]int{}
	for i, v := range vars {
		pos[v] = i
	}
	old := make([]int, len(d.Vars)) // old track -> new track position
	for i, v := range d.Vars {
		p, ok := pos[v]
		if !ok {
			return nil, fmt.Errorf("autarith: cylindrification drops track %q", v)
		}
		old[i] = p
	}
	out := &DFA{Vars: vars, Initial: d.Initial, Accept: append([]bool(nil), d.Accept...)}
	out.Trans = make([][]int, len(d.Trans))
	for s := range d.Trans {
		out.Trans[s] = make([]int, 1<<len(vars))
		for sym := 0; sym < 1<<len(vars); sym++ {
			oldSym := 0
			for i := range d.Vars {
				if sym>>old[i]&1 == 1 {
					oldSym |= 1 << i
				}
			}
			out.Trans[s][sym] = d.Trans[s][oldSym]
		}
	}
	return out, nil
}

// Product combines two automata over the SAME track list with a boolean
// connective on acceptance.
func Product(a, b *DFA, combine func(bool, bool) bool) (*DFA, error) {
	if len(a.Vars) != len(b.Vars) {
		return nil, fmt.Errorf("autarith: product of mismatched tracks %v vs %v", a.Vars, b.Vars)
	}
	for i := range a.Vars {
		if a.Vars[i] != b.Vars[i] {
			return nil, fmt.Errorf("autarith: product of mismatched tracks %v vs %v", a.Vars, b.Vars)
		}
	}
	type pair struct{ x, y int }
	index := map[pair]int{}
	var states []pair
	get := func(p pair) int {
		if i, ok := index[p]; ok {
			return i
		}
		i := len(states)
		index[p] = i
		states = append(states, p)
		return i
	}
	init := get(pair{a.Initial, b.Initial})
	out := &DFA{Vars: a.Vars, Initial: init}
	for i := 0; i < len(states); i++ {
		p := states[i]
		out.Trans = append(out.Trans, make([]int, 1<<len(a.Vars)))
		out.Accept = append(out.Accept, combine(a.Accept[p.x], b.Accept[p.y]))
		for sym := 0; sym < 1<<len(a.Vars); sym++ {
			out.Trans[i][sym] = get(pair{a.Trans[p.x][sym], b.Trans[p.y][sym]})
		}
	}
	return out, nil
}

// And intersects two relations, aligning tracks first.
func And(a, b *DFA) (*DFA, error) { return aligned(a, b, func(x, y bool) bool { return x && y }) }

// Or unions two relations, aligning tracks first.
func Or(a, b *DFA) (*DFA, error) { return aligned(a, b, func(x, y bool) bool { return x || y }) }

func aligned(a, b *DFA, combine func(bool, bool) bool) (*DFA, error) {
	vars := MergeVars(a.Vars, b.Vars)
	ca, err := Cylindrify(a, vars)
	if err != nil {
		return nil, err
	}
	cb, err := Cylindrify(b, vars)
	if err != nil {
		return nil, err
	}
	return Product(ca, cb, combine)
}

// Exists projects a track away: the variable's bits become nondeterministic
// guesses, the NFA is determinized by subset construction, and acceptance
// is padding-closed — a state set accepts if it can reach an accepting set
// by reading only all-zero symbols, because the witness value may need more
// significant bits than the remaining tracks show.
func Exists(d *DFA, v string) (*DFA, error) {
	track := -1
	for i, name := range d.Vars {
		if name == v {
			track = i
		}
	}
	if track < 0 {
		// The variable is not a track: ∃v is vacuous over a nonempty
		// domain.
		return d, nil
	}
	rest := make([]string, 0, len(d.Vars)-1)
	for i, name := range d.Vars {
		if i != track {
			rest = append(rest, name)
		}
	}

	// Subset construction over the reduced alphabet.
	expand := func(sym int) (int, int) {
		// Insert a 0 or 1 bit at position track.
		low := sym & ((1 << track) - 1)
		high := sym >> track
		base := low | high<<(track+1)
		return base, base | 1<<track
	}
	type setKey = string
	keyOf := func(set []int) setKey {
		parts := make([]string, len(set))
		for i, s := range set {
			parts[i] = strconv.Itoa(s)
		}
		return strings.Join(parts, ",")
	}
	normalize := func(set map[int]bool) ([]int, setKey) {
		out := make([]int, 0, len(set))
		for s := range set {
			out = append(out, s)
		}
		sort.Ints(out)
		return out, keyOf(out)
	}

	index := map[setKey]int{}
	var sets [][]int
	get := func(set map[int]bool) int {
		norm, key := normalize(set)
		if i, ok := index[key]; ok {
			return i
		}
		i := len(sets)
		index[key] = i
		sets = append(sets, norm)
		return i
	}
	init := get(map[int]bool{d.Initial: true})
	out := &DFA{Vars: rest, Initial: init}
	for i := 0; i < len(sets); i++ {
		cur := sets[i]
		out.Trans = append(out.Trans, make([]int, 1<<len(rest)))
		out.Accept = append(out.Accept, false) // fixed below by padding closure
		for sym := 0; sym < 1<<len(rest); sym++ {
			next := map[int]bool{}
			s0, s1 := expand(sym)
			for _, s := range cur {
				next[d.Trans[s][s0]] = true
				next[d.Trans[s][s1]] = true
			}
			out.Trans[i][sym] = get(next)
		}
	}

	// Padding closure: out-state accepts iff, reading only the all-zero
	// reduced symbol, it can reach a subset containing an accepting
	// original state.
	good := make([]bool, len(sets))
	for i, set := range sets {
		for _, s := range set {
			if d.Accept[s] {
				good[i] = true
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for i := range sets {
			if !good[i] && good[out.Trans[i][0]] {
				good[i] = true
				changed = true
			}
		}
	}
	out.Accept = good
	return out, nil
}

// Forall is ¬∃¬.
func Forall(d *DFA, v string) (*DFA, error) {
	inner, err := Exists(Complement(d), v)
	if err != nil {
		return nil, err
	}
	return Complement(inner), nil
}
