package autarith

import (
	"fmt"
	"math/big"
	"strconv"

	"repro/internal/presburger"
)

// Atom automata, LSB-first over ℕ.
//
// For a·x ≤ b the automaton's states are the residual bounds: in state s,
// the tuples still acceptable are those with a·x ≤ s. Reading the bit
// vector β uses a·x = a·β + 2·a·x' (x' the remaining high bits), so
//
//	a·β + 2·a·x' ≤ s  ⟺  a·x' ≤ ⌊(s − a·β)/2⌋,
//
// giving the successor state ⌊(s − a·β)/2⌋. A state accepts iff s ≥ 0 (the
// all-zero continuation satisfies 0 ≤ s). The reachable bounds stay within
// [−‖a‖₁, max(b, 0)], so the automaton is finite.
//
// For d | a·x + c the state tracks (r, p): r the partial value mod d and p
// the weight 2^j mod d of the next bit position. Reading β updates
// r ← (r + p·(a·β)) mod d, p ← 2p mod d; acceptance is r ≡ 0.

// LeqAtom builds the automaton of Σ coeffs[v]·v ≤ bound over the given
// tracks. Variables of the track list with zero coefficient are allowed.
func LeqAtom(vars []string, coeffs map[string]int64, bound int64) *DFA {
	b := newBuilder(vars)
	key := func(s int64) string { return strconv.FormatInt(s, 10) }
	start := b.state(key(bound), bound >= 0)
	for i := 0; i < len(b.pending); i++ {
		cur := b.pending[i]
		s, _ := strconv.ParseInt(cur, 10, 64)
		si := b.index[cur]
		for sym := 0; sym < 1<<len(vars); sym++ {
			dot := int64(0)
			for j, v := range vars {
				if sym>>j&1 == 1 {
					dot += coeffs[v]
				}
			}
			// No clamping is needed for finiteness: with N = ‖a‖₁, any
			// residual above N+1 strictly decreases and any residual below
			// −N−1 strictly increases under s ↦ ⌊(s−a·β)/2⌋, so the
			// reachable set is contained in the interval spanned by the
			// initial bound and ±(N+1).
			next := floorDiv(s-dot, 2)
			ni := b.state(key(next), next >= 0)
			b.trans[si][sym] = ni
		}
	}
	return b.build(start)
}

func floorDiv(a, d int64) int64 {
	q := a / d
	if a%d != 0 && (a < 0) != (d < 0) {
		q--
	}
	return q
}

// DvdAtom builds the automaton of d | (Σ coeffs[v]·v + c).
func DvdAtom(vars []string, coeffs map[string]int64, c, d int64) *DFA {
	if d <= 0 {
		panic("autarith: divisor must be positive")
	}
	b := newBuilder(vars)
	mod := func(x int64) int64 { return ((x % d) + d) % d }
	key := func(r, p int64) string {
		return strconv.FormatInt(r, 10) + "," + strconv.FormatInt(p, 10)
	}
	r0, p0 := mod(c), mod(1)
	start := b.state(key(r0, p0), r0 == 0)
	for i := 0; i < len(b.pending); i++ {
		cur := b.pending[i]
		var r, p int64
		fmt.Sscanf(cur, "%d,%d", &r, &p)
		si := b.index[cur]
		for sym := 0; sym < 1<<len(vars); sym++ {
			dot := int64(0)
			for j, v := range vars {
				if sym>>j&1 == 1 {
					dot += coeffs[v]
				}
			}
			nr := mod(r + p*mod(dot))
			np := mod(2 * p)
			ni := b.state(key(nr, np), nr == 0)
			b.trans[si][sym] = ni
		}
	}
	return b.build(start)
}

// FromLinear converts a presburger.LinearTerm to a coefficient map plus
// constant, rejecting coefficients outside int64 (they cannot occur with
// the formulas this package is used on).
func FromLinear(t presburger.LinearTerm) (map[string]int64, int64, error) {
	coeffs := map[string]int64{}
	for v, c := range t.Coeffs {
		if !c.IsInt64() {
			return nil, 0, fmt.Errorf("autarith: coefficient %v too large", c)
		}
		coeffs[v] = c.Int64()
	}
	if !t.Const.IsInt64() {
		return nil, 0, fmt.Errorf("autarith: constant %v too large", t.Const)
	}
	return coeffs, t.Const.Int64(), nil
}

var _ = big.NewInt // keep the import for FromLinear's documentation context
