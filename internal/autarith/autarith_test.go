package autarith

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/presburger"
)

func lt(a, b logic.Term) *logic.Formula { return logic.Atom(presburger.PredLt, a, b) }
func num(n int64) logic.Term {
	if n < 0 {
		return logic.Const("-" + logic.Const("").Name + itoa(-n))
	}
	return logic.Const(itoa(n))
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf []byte
	for n > 0 {
		buf = append([]byte{byte('0' + n%10)}, buf...)
		n /= 10
	}
	return string(buf)
}

func TestLeqAtomMembership(t *testing.T) {
	// x − y ≤ 2.
	d := LeqAtom([]string{"x", "y"}, map[string]int64{"x": 1, "y": -1}, 2)
	for x := int64(0); x <= 8; x++ {
		for y := int64(0); y <= 8; y++ {
			got, err := d.Runs(map[string]int64{"x": x, "y": y})
			if err != nil {
				t.Fatalf("Runs: %v", err)
			}
			if got != (x-y <= 2) {
				t.Errorf("x=%d y=%d: %v", x, y, got)
			}
		}
	}
}

func TestLeqAtomLargeBound(t *testing.T) {
	// x ≤ 100: residuals start far above the coefficient norm and must
	// converge without clamping errors.
	d := LeqAtom([]string{"x"}, map[string]int64{"x": 1}, 100)
	for x := int64(90); x <= 110; x++ {
		got, err := d.Runs(map[string]int64{"x": x})
		if err != nil {
			t.Fatal(err)
		}
		if got != (x <= 100) {
			t.Errorf("x=%d: %v", x, got)
		}
	}
}

func TestDvdAtomMembership(t *testing.T) {
	// 3 | 2x + y + 1.
	d := DvdAtom([]string{"x", "y"}, map[string]int64{"x": 2, "y": 1}, 1, 3)
	for x := int64(0); x <= 9; x++ {
		for y := int64(0); y <= 9; y++ {
			got, err := d.Runs(map[string]int64{"x": x, "y": y})
			if err != nil {
				t.Fatal(err)
			}
			if got != ((2*x+y+1)%3 == 0) {
				t.Errorf("x=%d y=%d: %v", x, y, got)
			}
		}
	}
}

func TestComplementAndProduct(t *testing.T) {
	// ¬(x ≤ 3) ∧ (x ≤ 5) ⟺ x ∈ {4, 5}.
	le3 := LeqAtom([]string{"x"}, map[string]int64{"x": 1}, 3)
	le5 := LeqAtom([]string{"x"}, map[string]int64{"x": 1}, 5)
	d, err := And(Complement(le3), le5)
	if err != nil {
		t.Fatal(err)
	}
	for x := int64(0); x <= 8; x++ {
		got, err := d.Runs(map[string]int64{"x": x})
		if err != nil {
			t.Fatal(err)
		}
		if got != (x == 4 || x == 5) {
			t.Errorf("x=%d: %v", x, got)
		}
	}
}

func TestCylindrifyAlignment(t *testing.T) {
	// (x ≤ 2) ∧ (y ≤ 1) over merged tracks.
	dx := LeqAtom([]string{"x"}, map[string]int64{"x": 1}, 2)
	dy := LeqAtom([]string{"y"}, map[string]int64{"y": 1}, 1)
	d, err := And(dx, dy)
	if err != nil {
		t.Fatal(err)
	}
	for x := int64(0); x <= 4; x++ {
		for y := int64(0); y <= 4; y++ {
			got, err := d.Runs(map[string]int64{"x": x, "y": y})
			if err != nil {
				t.Fatal(err)
			}
			if got != (x <= 2 && y <= 1) {
				t.Errorf("x=%d y=%d: %v", x, y, got)
			}
		}
	}
}

func TestExistsProjection(t *testing.T) {
	// ∃y (x = 2y): the even numbers. Equality via the compiler.
	f := logic.Exists("y", logic.Eq(
		logic.Var("x"),
		logic.App(presburger.FuncMul, logic.Const("2"), logic.Var("y"))))
	d, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	for x := int64(0); x <= 12; x++ {
		got, err := d.Runs(map[string]int64{"x": x})
		if err != nil {
			t.Fatal(err)
		}
		if got != (x%2 == 0) {
			t.Errorf("x=%d: %v", x, got)
		}
	}
}

func TestExistsNeedsPadding(t *testing.T) {
	// ∃y (x < y): always true over ℕ, but the witness y needs more bits
	// than x — exactly the case padding closure exists for.
	f := logic.Exists("y", lt(logic.Var("x"), logic.Var("y")))
	d, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	for x := int64(0); x <= 10; x++ {
		got, err := d.Runs(map[string]int64{"x": x})
		if err != nil {
			t.Fatal(err)
		}
		if !got {
			t.Errorf("x=%d: ∃y x<y must hold", x)
		}
	}
}

func TestDecideSentences(t *testing.T) {
	x, y := logic.Var("x"), logic.Var("y")
	add := func(a, b logic.Term) logic.Term { return logic.App(presburger.FuncAdd, a, b) }
	cases := []struct {
		f    *logic.Formula
		want bool
	}{
		{logic.Exists("x", logic.Forall("y", logic.Not(lt(y, x)))), true},
		{logic.Exists("x", logic.Forall("y", logic.Not(lt(x, y)))), false},
		{logic.Forall("x", logic.Exists("y", lt(x, y))), true},
		{logic.Exists("x", logic.And(lt(num(0), x), lt(x, num(1)))), false},
		{logic.Exists("x", logic.Eq(add(x, x), num(4))), true},
		{logic.Exists("x", logic.Eq(add(x, x), num(5))), false},
		{logic.Forall("x", logic.Or(
			logic.Atom(presburger.PredDvd, num(2), x),
			logic.Atom(presburger.PredDvd, num(2), add(x, num(1))))), true},
		{logic.Forall("x", logic.Atom(presburger.PredDvd, num(2), x)), false},
		{logic.ExistsAll([]string{"x", "y"}, logic.And(
			logic.Eq(add(x, y), num(5)), lt(x, y))), true},
		{lt(num(2), num(3)), true},
		{logic.Eq(num(2), num(3)), false},
	}
	for _, c := range cases {
		got, err := Decide(c.f)
		if err != nil {
			t.Fatalf("Decide(%v): %v", c.f, err)
		}
		if got != c.want {
			t.Errorf("Decide(%v) = %v, want %v", c.f, got, c.want)
		}
	}
	if _, err := Decide(lt(x, num(1))); err == nil {
		t.Errorf("open formula accepted")
	}
}

// TestDifferentialAgainstCooper is the headline: two unrelated decision
// procedures for Presburger arithmetic agree on random sentences. Cooper's
// algorithm is worst-case super-exponential and its size guard may bail on
// a pathological instance (the automata engine decides those too — in
// microseconds, as TestAutomataHandleCooperBlowup shows); such instances
// are skipped here, and must stay rare.
func TestDifferentialAgainstCooper(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	cooper := presburger.Eliminator{MaxNodes: 200_000}
	skipped := 0
	for i := 0; i < 250; i++ {
		f := randSentence(rng)
		a, err := Decide(f)
		if err != nil {
			t.Fatalf("autarith: %v (%v)", err, f)
		}
		b, err := cooper.Decide(f)
		if err != nil {
			skipped++
			continue // Cooper resource guard; the automata verdict stands
		}
		if a != b {
			t.Fatalf("engines disagree on %v: automata=%v cooper=%v", f, a, b)
		}
	}
	if skipped > 25 {
		t.Fatalf("too many Cooper bailouts: %d of 250", skipped)
	}
	t.Logf("agreed on %d sentences, %d Cooper bailouts", 250-skipped, skipped)
}

// TestAutomataHandleCooperBlowup pins the instance that sent Cooper's
// algorithm into its super-exponential regime during development: the
// automata engine decides it instantly.
func TestAutomataHandleCooperBlowup(t *testing.T) {
	x, y := logic.Var("x"), logic.Var("y")
	add := func(a, b logic.Term) logic.Term { return logic.App(presburger.FuncAdd, a, b) }
	mul := func(k int64, t logic.Term) logic.Term {
		return logic.App(presburger.FuncMul, logic.Const(itoa(k)), t)
	}
	f := logic.Forall("x", logic.Forall("y", logic.Implies(
		logic.Not(logic.Atom(presburger.PredDvd, num(2), add(mul(2, y), x))),
		logic.Or(
			logic.Atom(presburger.PredLe, add(mul(2, y), y), add(mul(3, x), add(x, num(5)))),
			logic.Atom(presburger.PredDvd, num(3), add(mul(1, y), add(y, num(4))))))))
	v, err := Decide(f)
	if err != nil {
		t.Fatalf("autarith: %v", err)
	}
	// Counterexample: x odd (so the premise holds for suitable y), y large,
	// 3y > 4x+5 and 2y+4 ≢ 0 mod 3 — e.g. x=1, y=4: dvd(2, 9) false,
	// 12 ≤ 9 false, dvd(3, 12) true… pick y=6: dvd(2,13) false,
	// 18 ≤ 9 false, dvd(3,16) false → whole sentence false.
	if v {
		t.Fatalf("sentence should be false")
	}
	// Cooper with a small guard bails out instead of hanging.
	if _, err := (presburger.Eliminator{MaxNodes: 50_000}).Decide(f); err == nil {
		t.Log("note: Cooper handled the pinned instance within the guard")
	}
}

func randSentence(rng *rand.Rand) *logic.Formula {
	vars := []string{"x", "y"}
	term := func() logic.Term {
		t := logic.App(presburger.FuncMul,
			logic.Const(itoa(int64(1+rng.Intn(3)))), logic.Var(vars[rng.Intn(2)]))
		if rng.Intn(2) == 0 {
			t = logic.App(presburger.FuncAdd, t, logic.Var(vars[rng.Intn(2)]))
		}
		return logic.App(presburger.FuncAdd, t, logic.Const(itoa(int64(rng.Intn(8)))))
	}
	atom := func() *logic.Formula {
		switch rng.Intn(4) {
		case 0:
			return lt(term(), term())
		case 1:
			return logic.Eq(term(), term())
		case 2:
			return logic.Atom(presburger.PredLe, term(), term())
		default:
			return logic.Atom(presburger.PredDvd, logic.Const(itoa(int64(2+rng.Intn(3)))), term())
		}
	}
	var rec func(d int) *logic.Formula
	rec = func(d int) *logic.Formula {
		if d == 0 {
			return atom()
		}
		switch rng.Intn(5) {
		case 0:
			return atom()
		case 1:
			return logic.Not(rec(d - 1))
		case 2:
			return logic.And(rec(d-1), rec(d-1))
		case 3:
			return logic.Or(rec(d-1), rec(d-1))
		default:
			return logic.Implies(rec(d-1), rec(d-1))
		}
	}
	body := rec(2)
	for i := len(vars) - 1; i >= 0; i-- {
		if rng.Intn(2) == 0 {
			body = logic.Exists(vars[i], body)
		} else {
			body = logic.Forall(vars[i], body)
		}
	}
	return body
}

// TestCompileMembershipAgainstSemantics: compiled open formulas agree with
// direct arithmetic on sampled assignments.
func TestCompileMembershipAgainstSemantics(t *testing.T) {
	x, y := logic.Var("x"), logic.Var("y")
	add := func(a, b logic.Term) logic.Term { return logic.App(presburger.FuncAdd, a, b) }
	f := logic.And(
		logic.Atom(presburger.PredLe, add(x, y), num(9)),
		logic.Atom(presburger.PredDvd, num(3), add(x, add(y, num(1)))))
	d, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	for xv := int64(0); xv <= 12; xv++ {
		for yv := int64(0); yv <= 12; yv++ {
			got, err := d.Runs(map[string]int64{"x": xv, "y": yv})
			if err != nil {
				t.Fatal(err)
			}
			want := xv+yv <= 9 && (xv+yv+1)%3 == 0
			if got != want {
				t.Errorf("x=%d y=%d: %v, want %v", xv, yv, got, want)
			}
		}
	}
}

func TestRunsErrors(t *testing.T) {
	d := LeqAtom([]string{"x"}, map[string]int64{"x": 1}, 1)
	if _, err := d.Runs(map[string]int64{}); err == nil {
		t.Errorf("missing value accepted")
	}
	if _, err := d.Runs(map[string]int64{"x": -1}); err == nil {
		t.Errorf("negative value accepted")
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []*logic.Formula{
		logic.Atom("P", logic.Var("x")),
		logic.Atom(presburger.PredDvd, logic.Var("x"), logic.Var("y")),
		logic.Eq(logic.App(presburger.FuncMul, logic.Var("x"), logic.Var("y")), logic.Const("1")),
	}
	for _, f := range bad {
		if _, err := Compile(f); err == nil {
			t.Errorf("Compile(%v) accepted", f)
		}
	}
}
