package autarith

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/logic"
	"repro/internal/obs"
)

// Minimize returns the canonical minimal automaton of the same relation:
// unreachable states dropped, then Moore's partition refinement. Two
// formulas define the same relation iff their compiled automata minimize to
// isomorphic DFAs, which Equivalent exploits as a decision procedure for
// formula equivalence independent of Cooper's.
func Minimize(d *DFA) *DFA {
	sp := obs.StartSpan("autarith.minimize")
	defer sp.End()
	mDFAMinimizations.Inc()
	hDFAMinimizeIn.Observe(int64(d.NumStates()))
	sp.Arg("states_in", int64(d.NumStates()))
	// Reachable restriction.
	reach := []int{d.Initial}
	seen := map[int]bool{d.Initial: true}
	for i := 0; i < len(reach); i++ {
		for _, t := range d.Trans[reach[i]] {
			if !seen[t] {
				seen[t] = true
				reach = append(reach, t)
			}
		}
	}
	renum := map[int]int{}
	for i, s := range reach {
		renum[s] = i
	}

	// Moore refinement: start from the accept/reject split.
	class := make([]int, len(reach))
	for i, s := range reach {
		if d.Accept[s] {
			class[i] = 1
		}
	}
	numClasses := 2
	for {
		sig := map[string][]int{}
		order := []string{}
		for i, s := range reach {
			var b strings.Builder
			b.WriteString(strconv.Itoa(class[i]))
			for _, t := range d.Trans[s] {
				b.WriteByte(':')
				b.WriteString(strconv.Itoa(class[renum[t]]))
			}
			key := b.String()
			if _, ok := sig[key]; !ok {
				order = append(order, key)
			}
			sig[key] = append(sig[key], i)
		}
		if len(sig) == numClasses {
			break
		}
		numClasses = len(sig)
		for ci, key := range order {
			for _, i := range sig[key] {
				class[i] = ci
			}
		}
	}

	// Build the quotient.
	out := &DFA{Vars: d.Vars, Initial: class[renum[d.Initial]]}
	out.Trans = make([][]int, numClasses)
	out.Accept = make([]bool, numClasses)
	for i, s := range reach {
		c := class[i]
		if out.Trans[c] == nil {
			out.Trans[c] = make([]int, d.symbols())
			for sym, t := range d.Trans[s] {
				out.Trans[c][sym] = class[renum[t]]
			}
			out.Accept[c] = d.Accept[s]
		}
	}
	hDFAMinimizeOut.Observe(int64(out.NumStates()))
	sp.Arg("states_out", int64(out.NumStates()))
	return out
}

// Isomorphic reports whether two DFAs over the same tracks are isomorphic
// (after minimization this is relation equality). The check walks both in
// lockstep from the initial states.
func Isomorphic(a, b *DFA) bool {
	if len(a.Vars) != len(b.Vars) {
		return false
	}
	for i := range a.Vars {
		if a.Vars[i] != b.Vars[i] {
			return false
		}
	}
	if a.NumStates() != b.NumStates() {
		return false
	}
	match := map[int]int{a.Initial: b.Initial}
	stack := []int{a.Initial}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		t := match[s]
		if a.Accept[s] != b.Accept[t] {
			return false
		}
		for sym := range a.Trans[s] {
			as, bs := a.Trans[s][sym], b.Trans[t][sym]
			if prev, ok := match[as]; ok {
				if prev != bs {
					return false
				}
				continue
			}
			match[as] = bs
			stack = append(stack, as)
		}
	}
	return true
}

// Equivalent decides whether two Presburger formulas agree on every
// assignment over ℕ, by compiling, aligning tracks, minimizing, and
// checking isomorphism.
func Equivalent(f, g *logic.Formula) (bool, error) {
	df, err := Compile(f)
	if err != nil {
		return false, err
	}
	dg, err := Compile(g)
	if err != nil {
		return false, err
	}
	vars := MergeVars(df.Vars, dg.Vars)
	cf, err := Cylindrify(df, vars)
	if err != nil {
		return false, err
	}
	cg, err := Cylindrify(dg, vars)
	if err != nil {
		return false, err
	}
	return Isomorphic(Minimize(cf), Minimize(cg)), nil
}

// statesString renders state counts for diagnostics.
func statesString(d *DFA) string {
	return fmt.Sprintf("%d states / %d tracks", d.NumStates(), len(d.Vars))
}
