// Package autarith is a second, independent decision procedure for
// Presburger arithmetic over ℕ: the classical automata-theoretic one
// (Büchi's method in its finite-word form). Numbers are encoded in binary,
// least-significant bit first, one synchronized track per variable; each
// atomic constraint compiles to a deterministic automaton, the connectives
// to boolean combinations, and quantifiers to projection (with padding
// closure) — truth of a sentence is reachability of an accepting state.
//
// Nothing here shares code with the Cooper eliminator in
// internal/presburger, which is the point: the two engines decide the same
// theory by unrelated algorithms, so their agreement on random sentences
// (tested in decide_test.go and exercised by the differential benchmark) is
// strong evidence for both.
package autarith

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// Automata-engine metrics: construction volume and minimization shrinkage.
var (
	mDFAStatesBuilt    = obs.NewCounter("autarith.dfa.states_built")
	mDFAMinimizations  = obs.NewCounter("autarith.dfa.minimizations")
	hDFAMinimizeIn     = obs.NewHistogram("autarith.dfa.minimize_states_in")
	hDFAMinimizeOut    = obs.NewHistogram("autarith.dfa.minimize_states_out")
	mAutarithDecisions = obs.NewCounter("autarith.decide.calls")
)

// DFA is a deterministic automaton over the alphabet of bit vectors for a
// fixed ordered list of variable tracks. Symbol i encodes the bit vector
// whose bit j (for Vars[j]) is (i >> j) & 1.
//
// Automata in this package maintain the zero-stability invariant: reading
// the all-zeros symbol from an accepting state stays accepting, and from a
// rejecting state stays rejecting. Encodings of a tuple differ only by
// trailing zero padding, so zero-stability makes language complementation
// implement relation complementation.
type DFA struct {
	// Vars are the track names, in order.
	Vars []string
	// Trans[s][symbol] is the successor state.
	Trans [][]int
	// Accept[s] reports whether state s is accepting.
	Accept []bool
	// Initial is the start state.
	Initial int
}

// symbols returns the alphabet size.
func (d *DFA) symbols() int { return 1 << len(d.Vars) }

// NumStates returns the state count.
func (d *DFA) NumStates() int { return len(d.Trans) }

// Runs checks whether the automaton accepts the encoding of the assignment
// vals (by variable name). Values must be non-negative.
func (d *DFA) Runs(vals map[string]int64) (bool, error) {
	remaining := make([]int64, len(d.Vars))
	for i, v := range d.Vars {
		val, ok := vals[v]
		if !ok {
			return false, fmt.Errorf("autarith: missing value for %q", v)
		}
		if val < 0 {
			return false, fmt.Errorf("autarith: negative value for %q", v)
		}
		remaining[i] = val
	}
	state := d.Initial
	for anyNonzero(remaining) {
		sym := 0
		for i := range remaining {
			sym |= int(remaining[i]&1) << i
			remaining[i] >>= 1
		}
		state = d.Trans[state][sym]
	}
	// Trailing zeros change nothing by zero-stability, so the verdict is
	// the current state's acceptance. (The all-zero assignment reads the
	// empty word and takes the initial state's verdict.)
	return d.Accept[state], nil
}

func anyNonzero(vals []int64) bool {
	for _, v := range vals {
		if v != 0 {
			return true
		}
	}
	return false
}

// Reachable reports whether an accepting state is reachable from the
// initial state — for an automaton with zero tracks this is the truth value
// of the sentence it represents.
func (d *DFA) Reachable() bool {
	seen := make([]bool, d.NumStates())
	stack := []int{d.Initial}
	seen[d.Initial] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.Accept[s] {
			return true
		}
		for _, t := range d.Trans[s] {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	return false
}

// builder incrementally constructs a DFA with states keyed by strings.
type builder struct {
	vars    []string
	index   map[string]int
	trans   [][]int
	accept  []bool
	pending []string
	keys    []string
}

func newBuilder(vars []string) *builder {
	return &builder{vars: vars, index: map[string]int{}}
}

func (b *builder) state(key string, accepting bool) int {
	if i, ok := b.index[key]; ok {
		return i
	}
	i := len(b.trans)
	mDFAStatesBuilt.Inc()
	b.index[key] = i
	b.trans = append(b.trans, make([]int, 1<<len(b.vars)))
	b.accept = append(b.accept, accepting)
	b.pending = append(b.pending, key)
	b.keys = append(b.keys, key)
	return i
}

func (b *builder) build(initial int) *DFA {
	return &DFA{Vars: b.vars, Trans: b.trans, Accept: b.accept, Initial: initial}
}

// MergeVars returns the sorted union of two track lists.
func MergeVars(a, b []string) []string {
	set := map[string]bool{}
	for _, v := range a {
		set[v] = true
	}
	for _, v := range b {
		set[v] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
