package autarith

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/presburger"
)

// Compile translates a Presburger formula (the same surface syntax the
// Cooper engine accepts: lt/le/gt/ge/=, dvd, add/sub/mul/neg terms) into an
// automaton whose tracks are the formula's free variables and whose
// relation is the formula's satisfaction set over ℕ.
func Compile(f *logic.Formula) (*DFA, error) {
	switch f.Kind {
	case logic.FTrue:
		return trivial(true), nil
	case logic.FFalse:
		return trivial(false), nil
	case logic.FAtom:
		return compileAtom(f)
	case logic.FNot:
		inner, err := Compile(f.Sub[0])
		if err != nil {
			return nil, err
		}
		return Complement(inner), nil
	case logic.FAnd, logic.FOr:
		out := trivial(f.Kind == logic.FAnd)
		for _, s := range f.Sub {
			d, err := Compile(s)
			if err != nil {
				return nil, err
			}
			if f.Kind == logic.FAnd {
				out, err = And(out, d)
			} else {
				out, err = Or(out, d)
			}
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	case logic.FImplies:
		a, err := Compile(f.Sub[0])
		if err != nil {
			return nil, err
		}
		b, err := Compile(f.Sub[1])
		if err != nil {
			return nil, err
		}
		return Or(Complement(a), b)
	case logic.FIff:
		a, err := Compile(f.Sub[0])
		if err != nil {
			return nil, err
		}
		b, err := Compile(f.Sub[1])
		if err != nil {
			return nil, err
		}
		return aligned(a, b, func(x, y bool) bool { return x == y })
	case logic.FExists:
		inner, err := Compile(f.Sub[0])
		if err != nil {
			return nil, err
		}
		return Exists(inner, f.Var)
	case logic.FForall:
		inner, err := Compile(f.Sub[0])
		if err != nil {
			return nil, err
		}
		return Forall(inner, f.Var)
	}
	return nil, fmt.Errorf("autarith: cannot compile %v", f)
}

// trivial is the 0-track automaton of the always/never relation.
func trivial(accept bool) *DFA {
	return &DFA{Vars: nil, Trans: [][]int{{0}}, Accept: []bool{accept}, Initial: 0}
}

func compileAtom(f *logic.Formula) (*DFA, error) {
	switch f.Pred {
	case logic.EqPred, presburger.PredLt, presburger.PredLe, presburger.PredGt, presburger.PredGe:
		if len(f.Args) != 2 {
			return nil, fmt.Errorf("autarith: %s expects 2 arguments", f.Pred)
		}
		a, err := presburger.ParseLinear(f.Args[0])
		if err != nil {
			return nil, err
		}
		b, err := presburger.ParseLinear(f.Args[1])
		if err != nil {
			return nil, err
		}
		diff := a.Sub(b) // a − b
		coeffs, c, err := FromLinear(diff)
		if err != nil {
			return nil, err
		}
		vars := varsOf(coeffs)
		leq := func(coeffs map[string]int64, bound int64) *DFA {
			return LeqAtom(vars, coeffs, bound)
		}
		negate := func(m map[string]int64) map[string]int64 {
			out := map[string]int64{}
			for k, v := range m {
				out[k] = -v
			}
			return out
		}
		switch f.Pred {
		case presburger.PredLt: // a − b < 0 ⟺ a − b ≤ −1
			return leq(coeffs, -c-1), nil
		case presburger.PredLe:
			return leq(coeffs, -c), nil
		case presburger.PredGt: // b − a < 0
			return leq(negate(coeffs), c-1), nil
		case presburger.PredGe:
			return leq(negate(coeffs), c), nil
		default: // equality: both directions
			return Product(leq(coeffs, -c), leq(negate(coeffs), c),
				func(x, y bool) bool { return x && y })
		}
	case presburger.PredDvd:
		if len(f.Args) != 2 {
			return nil, fmt.Errorf("autarith: dvd expects 2 arguments")
		}
		k, err := presburger.ParseLinear(f.Args[0])
		if err != nil {
			return nil, err
		}
		if !k.IsConst() || k.Const.Sign() <= 0 {
			return nil, fmt.Errorf("autarith: dvd modulus must be a positive numeral")
		}
		t, err := presburger.ParseLinear(f.Args[1])
		if err != nil {
			return nil, err
		}
		coeffs, c, err := FromLinear(t)
		if err != nil {
			return nil, err
		}
		return DvdAtom(varsOf(coeffs), coeffs, c, k.Const.Int64()), nil
	}
	return nil, fmt.Errorf("autarith: unknown predicate %q", f.Pred)
}

func varsOf(coeffs map[string]int64) []string {
	var out []string
	for v, c := range coeffs {
		if c != 0 {
			out = append(out, v)
		}
	}
	return MergeVars(out, nil)
}

// Decide decides a Presburger sentence over ℕ automata-theoretically.
func Decide(sentence *logic.Formula) (bool, error) {
	sp := obs.StartSpan("autarith.decide")
	defer sp.End()
	mAutarithDecisions.Inc()
	if fv := sentence.FreeVars(); len(fv) != 0 {
		return false, fmt.Errorf("autarith: Decide on open formula (free vars %v)", fv)
	}
	d, err := Compile(sentence)
	if err != nil {
		return false, err
	}
	sp.Arg("dfa_states", int64(d.NumStates()))
	// All tracks are projected away, so the single-symbol language encodes
	// the empty tuple; by zero-stability its membership shows at the
	// initial state.
	return d.Accept[d.Initial], nil
}
