// Package domain defines the abstraction the paper calls a "domain": a
// countably infinite universe together with interpreted constants, functions,
// and predicates, over which database relations are laid and queries are
// asked.
//
// The paper's two practicality requirements are modeled as optional
// capabilities:
//
//   - recursiveness — all functions and predicates computable — corresponds
//     to the Interp interface (every implementation here is recursive);
//   - decidability of the first-order theory — corresponds to the Decider
//     interface, usually obtained from a quantifier Eliminator plus ground
//     evaluation.
//
// The §1.1 query-answering algorithm additionally needs constants for all
// elements (Namer) and a recursive enumeration of the universe (Enumerator).
package domain

import (
	"fmt"
	"strconv"

	"repro/internal/logic"
)

// Value is an element of some domain's universe. Implementations must be
// comparable via Key: two values of the same domain are equal iff their keys
// are equal.
type Value interface {
	// Key returns a string that uniquely identifies the value within its
	// domain; used for hashing tuples.
	Key() string
	// String renders the value for display.
	String() string
}

// Int is a natural-number value (ℕ domains).
type Int int64

// Key implements Value.
func (n Int) Key() string { return strconv.FormatInt(int64(n), 10) }

// String implements Value.
func (n Int) String() string { return strconv.FormatInt(int64(n), 10) }

// Word is a string value (word domains, including the trace domain T).
type Word string

// Key implements Value.
func (w Word) Key() string { return string(w) }

// String implements Value.
func (w Word) String() string { return string(w) }

// Interp interprets the symbols of a signature over concrete values. All
// implementations in this repository are recursive (computable), matching
// the paper's first practicality requirement.
type Interp interface {
	// ConstValue returns the value denoted by a constant symbol.
	ConstValue(name string) (Value, error)
	// Func applies a function symbol to argument values.
	Func(name string, args []Value) (Value, error)
	// Pred evaluates a predicate symbol on argument values. Equality
	// (logic.EqPred) is handled by callers via Key and never reaches Pred.
	Pred(name string, args []Value) (bool, error)
}

// Domain is a named universe with an interpretation and a naming scheme for
// its elements ("we have constants for all the elements of the domain").
type Domain interface {
	Interp
	// Name identifies the domain ("nless", "nsucc", "eq", "traces", …).
	Name() string
	// ConstName returns a constant symbol denoting v, the inverse of
	// ConstValue. Every domain here names all its elements.
	ConstName(v Value) string
}

// Decider decides truth of pure-domain sentences — the paper's second
// practicality requirement ("decidability of the first-order theory of the
// domain").
type Decider interface {
	// Decide reports whether the sentence holds in the domain. It is an
	// error to pass a formula with free variables or with symbols outside
	// the domain signature.
	Decide(sentence *logic.Formula) (bool, error)
}

// Eliminator performs quantifier elimination: Eliminate returns a
// quantifier-free formula equivalent to f over the domain (possibly in an
// enriched signature, as in the Reach Theory of Traces).
type Eliminator interface {
	Eliminate(f *logic.Formula) (*logic.Formula, error)
}

// Enumerator enumerates the countable universe: Element(0), Element(1), …
// visits every element exactly once. The §1.1 algorithm uses it to stream
// the rows of a finite answer.
type Enumerator interface {
	Element(i int) Value
}

// Verdict is the result of a budgeted semi-decision.
type Verdict int

const (
	// Unknown means the budget was exhausted before a verdict.
	Unknown Verdict = iota
	// Holds means the property was established.
	Holds
	// Fails means the negation was established.
	Fails
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Holds:
		return "holds"
	case Fails:
		return "fails"
	case Unknown:
		return "unknown"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// MarshalJSON encodes the verdict as its lower-case name ("holds",
// "fails", "unknown"), the wire form shared by the CLI -json output and
// the finqd /v1/safety endpoint.
func (v Verdict) MarshalJSON() ([]byte, error) {
	switch v {
	case Holds, Fails, Unknown:
		return []byte(`"` + v.String() + `"`), nil
	}
	return nil, fmt.Errorf("domain: marshal invalid verdict %d", int(v))
}

// UnmarshalJSON decodes the wire form written by MarshalJSON.
func (v *Verdict) UnmarshalJSON(data []byte) error {
	switch string(data) {
	case `"holds"`:
		*v = Holds
	case `"fails"`:
		*v = Fails
	case `"unknown"`:
		*v = Unknown
	default:
		return fmt.Errorf("domain: unmarshal verdict %s: want \"holds\", \"fails\", or \"unknown\"", data)
	}
	return nil
}

// Env binds variables to values during evaluation.
type Env map[string]Value

// Clone returns a copy of the environment.
func (e Env) Clone() Env {
	out := make(Env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// EvalTerm evaluates a term under an interpretation and environment.
func EvalTerm(in Interp, env Env, t logic.Term) (Value, error) {
	switch t.Kind {
	case logic.TVar:
		v, ok := env[t.Name]
		if !ok {
			return nil, fmt.Errorf("domain: unbound variable %q", t.Name)
		}
		return v, nil
	case logic.TConst:
		return in.ConstValue(t.Name)
	case logic.TApp:
		args := make([]Value, len(t.Args))
		for i, a := range t.Args {
			v, err := EvalTerm(in, env, a)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return in.Func(t.Name, args)
	}
	return nil, fmt.Errorf("domain: bad term kind %d", t.Kind)
}

// EvalQF evaluates a quantifier-free formula under an interpretation and
// environment. Equality atoms compare value keys; other atoms go to
// Interp.Pred.
func EvalQF(in Interp, env Env, f *logic.Formula) (bool, error) {
	switch f.Kind {
	case logic.FTrue:
		return true, nil
	case logic.FFalse:
		return false, nil
	case logic.FAtom:
		args := make([]Value, len(f.Args))
		for i, t := range f.Args {
			v, err := EvalTerm(in, env, t)
			if err != nil {
				return false, err
			}
			args[i] = v
		}
		if f.Pred == logic.EqPred {
			return args[0].Key() == args[1].Key(), nil
		}
		return in.Pred(f.Pred, args)
	case logic.FNot:
		v, err := EvalQF(in, env, f.Sub[0])
		return !v, err
	case logic.FAnd:
		for _, s := range f.Sub {
			v, err := EvalQF(in, env, s)
			if err != nil || !v {
				return false, err
			}
		}
		return true, nil
	case logic.FOr:
		for _, s := range f.Sub {
			v, err := EvalQF(in, env, s)
			if err != nil {
				return false, err
			}
			if v {
				return true, nil
			}
		}
		return false, nil
	case logic.FImplies:
		a, err := EvalQF(in, env, f.Sub[0])
		if err != nil {
			return false, err
		}
		if !a {
			return true, nil
		}
		return EvalQF(in, env, f.Sub[1])
	case logic.FIff:
		a, err := EvalQF(in, env, f.Sub[0])
		if err != nil {
			return false, err
		}
		b, err := EvalQF(in, env, f.Sub[1])
		if err != nil {
			return false, err
		}
		return a == b, nil
	case logic.FExists, logic.FForall:
		return false, fmt.Errorf("domain: EvalQF on quantified formula %v", f)
	}
	return false, fmt.Errorf("domain: bad formula kind %d", f.Kind)
}

// QEDecider derives a Decider from a quantifier Eliminator plus ground
// evaluation under the domain's interpretation, which is exactly how the
// paper's Appendix proves Corollary A.4 ("the theory is decidable, because
// the model is recursive").
type QEDecider struct {
	Elim   Eliminator
	Interp Interp
}

// Decide implements Decider.
func (d QEDecider) Decide(sentence *logic.Formula) (bool, error) {
	if fv := sentence.FreeVars(); len(fv) != 0 {
		return false, fmt.Errorf("domain: Decide on open formula (free vars %v)", fv)
	}
	qf, err := d.Elim.Eliminate(sentence)
	if err != nil {
		return false, err
	}
	if !qf.QuantifierFree() {
		return false, fmt.Errorf("domain: eliminator left quantifiers in %v", qf)
	}
	return EvalQF(d.Interp, Env{}, qf)
}
