package domain

import (
	"context"
	"fmt"

	"repro/internal/logic"
)

// Request-scoped evaluation support. Deciders and eliminators predate
// context plumbing, and over the trace domain a single decision can run
// unboundedly long (Theorem 3.3 reduces halting to query finiteness), so a
// service in front of them needs a way to abandon work. The capability is
// optional: implementations that understand contexts advertise it through
// CtxDecider / CtxEliminator, and the DecideCtx / EliminateCtx helpers
// dispatch to the capability when present and otherwise fall back to a
// single cancellation check before the blocking call.

// CtxDecider is an optional capability of a Decider: deciding a sentence
// under a context, returning early (with the context's error) when the
// context is cancelled between internal stages.
type CtxDecider interface {
	Decider
	DecideCtx(ctx context.Context, sentence *logic.Formula) (bool, error)
}

// CtxEliminator is the analogous optional capability of an Eliminator.
type CtxEliminator interface {
	Eliminator
	EliminateCtx(ctx context.Context, f *logic.Formula) (*logic.Formula, error)
}

// DecideCtx decides a sentence under a context: context-aware deciders are
// handed the context, others get one cancellation check up front. A nil or
// Background context makes this exactly dec.Decide.
func DecideCtx(ctx context.Context, dec Decider, sentence *logic.Formula) (bool, error) {
	if ctx == nil {
		return dec.Decide(sentence)
	}
	if cd, ok := dec.(CtxDecider); ok {
		return cd.DecideCtx(ctx, sentence)
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return dec.Decide(sentence)
}

// EliminateCtx eliminates quantifiers under a context, dispatching like
// DecideCtx.
func EliminateCtx(ctx context.Context, elim Eliminator, f *logic.Formula) (*logic.Formula, error) {
	if ctx == nil {
		return elim.Eliminate(f)
	}
	if ce, ok := elim.(CtxEliminator); ok {
		return ce.EliminateCtx(ctx, f)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return elim.Eliminate(f)
}

// DecideCtx implements CtxDecider for the QE-derived decider: the context
// is checked before elimination, threaded into a context-aware eliminator,
// and checked again before the ground evaluation of the residue.
func (d QEDecider) DecideCtx(ctx context.Context, sentence *logic.Formula) (bool, error) {
	if fv := sentence.FreeVars(); len(fv) != 0 {
		return false, fmt.Errorf("domain: Decide on open formula (free vars %v)", fv)
	}
	qf, err := EliminateCtx(ctx, d.Elim, sentence)
	if err != nil {
		return false, err
	}
	if !qf.QuantifierFree() {
		return false, fmt.Errorf("domain: eliminator left quantifiers in %v", qf)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return false, err
		}
	}
	return EvalQF(d.Interp, Env{}, qf)
}
