package domain

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/logic"
)

// modInterp interprets arithmetic mod m: constants are numerals, function
// s is successor, predicate Z holds of zero. A tiny recursive structure for
// exercising the evaluation plumbing.
type modInterp struct{ m int64 }

func (d modInterp) ConstValue(name string) (Value, error) {
	n, err := strconv.ParseInt(name, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad constant %q", name)
	}
	return Int(n % d.m), nil
}

func (d modInterp) Func(name string, args []Value) (Value, error) {
	if name != "s" || len(args) != 1 {
		return nil, fmt.Errorf("unknown function %s/%d", name, len(args))
	}
	return Int((int64(args[0].(Int)) + 1) % d.m), nil
}

func (d modInterp) Pred(name string, args []Value) (bool, error) {
	if name != "Z" || len(args) != 1 {
		return false, fmt.Errorf("unknown predicate %s/%d", name, len(args))
	}
	return args[0].(Int) == 0, nil
}

func TestEvalTerm(t *testing.T) {
	in := modInterp{m: 5}
	env := Env{"x": Int(3)}
	v, err := EvalTerm(in, env, logic.App("s", logic.App("s", logic.Var("x"))))
	if err != nil {
		t.Fatalf("EvalTerm: %v", err)
	}
	if v.(Int) != 0 {
		t.Errorf("s(s(3)) mod 5 = %v, want 0", v)
	}
	if _, err := EvalTerm(in, Env{}, logic.Var("y")); err == nil {
		t.Errorf("unbound variable should error")
	}
	if _, err := EvalTerm(in, env, logic.Const("zz")); err == nil {
		t.Errorf("bad constant should error")
	}
}

func TestEvalQF(t *testing.T) {
	in := modInterp{m: 5}
	env := Env{"x": Int(4)}
	cases := []struct {
		f    *logic.Formula
		want bool
	}{
		{logic.True(), true},
		{logic.False(), false},
		{logic.Atom("Z", logic.App("s", logic.Var("x"))), true},
		{logic.Atom("Z", logic.Var("x")), false},
		{logic.Eq(logic.Var("x"), logic.Const("9")), true}, // 9 mod 5 = 4
		{logic.Neq(logic.Var("x"), logic.Const("9")), false},
		{logic.And(logic.True(), logic.Atom("Z", logic.Const("0"))), true},
		{logic.Or(logic.False(), logic.False()), false},
		{logic.Implies(logic.Atom("Z", logic.Var("x")), logic.False()), true},
		{logic.Iff(logic.Atom("Z", logic.Var("x")), logic.False()), true},
	}
	for _, c := range cases {
		got, err := EvalQF(in, env, c.f)
		if err != nil {
			t.Errorf("EvalQF(%v): %v", c.f, err)
			continue
		}
		if got != c.want {
			t.Errorf("EvalQF(%v) = %v, want %v", c.f, got, c.want)
		}
	}
	if _, err := EvalQF(in, env, logic.Exists("y", logic.True())); err == nil {
		t.Errorf("EvalQF should reject quantifiers")
	}
}

// trivialElim eliminates quantifiers over a structure where everything is Z
// or not: it replaces ∃x.φ by φ[x := 0] ∨ φ[x := 1], valid in mod-2
// arithmetic (every element is one of the two).
type trivialElim struct{}

func (trivialElim) Eliminate(f *logic.Formula) (*logic.Formula, error) {
	g := f.Map(func(h *logic.Formula) *logic.Formula {
		switch h.Kind {
		case logic.FExists:
			return logic.Or(
				logic.Subst(h.Sub[0], h.Var, logic.Const("0")),
				logic.Subst(h.Sub[0], h.Var, logic.Const("1")))
		case logic.FForall:
			return logic.And(
				logic.Subst(h.Sub[0], h.Var, logic.Const("0")),
				logic.Subst(h.Sub[0], h.Var, logic.Const("1")))
		}
		return h
	})
	return g, nil
}

func TestQEDecider(t *testing.T) {
	d := QEDecider{Elim: trivialElim{}, Interp: modInterp{m: 2}}
	// ∃x Z(x) is true; ∀x Z(x) is false; ∀x (Z(x) ∨ Z(s(x))) is true.
	cases := []struct {
		f    *logic.Formula
		want bool
	}{
		{logic.Exists("x", logic.Atom("Z", logic.Var("x"))), true},
		{logic.Forall("x", logic.Atom("Z", logic.Var("x"))), false},
		{logic.Forall("x", logic.Or(
			logic.Atom("Z", logic.Var("x")),
			logic.Atom("Z", logic.App("s", logic.Var("x"))))), true},
	}
	for _, c := range cases {
		got, err := d.Decide(c.f)
		if err != nil {
			t.Errorf("Decide(%v): %v", c.f, err)
			continue
		}
		if got != c.want {
			t.Errorf("Decide(%v) = %v, want %v", c.f, got, c.want)
		}
	}
	if _, err := d.Decide(logic.Atom("Z", logic.Var("x"))); err == nil {
		t.Errorf("Decide should reject open formulas")
	}
}

func TestVerdictString(t *testing.T) {
	if Holds.String() != "holds" || Fails.String() != "fails" || Unknown.String() != "unknown" {
		t.Errorf("verdict strings wrong: %v %v %v", Holds, Fails, Unknown)
	}
}

func TestEnvClone(t *testing.T) {
	e := Env{"x": Int(1)}
	c := e.Clone()
	c["x"] = Int(2)
	if e["x"].(Int) != 1 {
		t.Errorf("Clone shares storage")
	}
}

func TestValueKeys(t *testing.T) {
	if Int(42).Key() != "42" || Word("a&b").Key() != "a&b" {
		t.Errorf("keys wrong")
	}
	if Int(-1).String() != "-1" || Word("").String() != "" {
		t.Errorf("strings wrong")
	}
}
