// Package finrep implements the paper's first way of dealing with
// undecidable safety (§1.2): accept infinite relations, finitely
// represented. A relation is stored not as a set of tuples but as a
// quantifier-free (or arbitrary) formula over the domain with one free
// variable per column — the constraint-database model of Kanellakis, Kuper
// and Revesz [KKR90], which the paper cites as the developed form of the
// idea from [AGSS86].
//
// "Of course we cannot actually generate the infinite relations (not to
// mention the idea of printing the results). But still, the database
// remains capable of answering questions of whether a certain tuple belongs
// to a relation, finite or infinite, or whether a certain fact holds."
//
// Queries are answered by unfolding: database atoms are replaced by the
// defining formulas of their relations, after which the domain's quantifier
// eliminator produces a finite representation of the answer and the decider
// answers membership and facts. Finiteness of a represented relation is
// decided by the Theorem 2.5 criterion where available, closing the loop
// with the rest of the library.
package finrep

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/logic"
)

// Relation is a finitely represented (possibly infinite) relation: the set
// of assignments to Columns satisfying Def over the domain.
type Relation struct {
	// Columns are the relation's attribute names, in order; they are the
	// free variables of Def (Def may omit some, leaving those columns
	// unconstrained).
	Columns []string
	// Def is the defining formula.
	Def *logic.Formula
}

// NewRelation builds a represented relation, checking that Def's free
// variables are among the columns.
func NewRelation(columns []string, def *logic.Formula) (*Relation, error) {
	cols := map[string]bool{}
	for _, c := range columns {
		if cols[c] {
			return nil, fmt.Errorf("finrep: duplicate column %q", c)
		}
		cols[c] = true
	}
	for _, v := range def.FreeVars() {
		if !cols[v] {
			return nil, fmt.Errorf("finrep: defining formula has free variable %q outside columns %v", v, columns)
		}
	}
	return &Relation{Columns: append([]string(nil), columns...), Def: def}, nil
}

// Database is a set of named represented relations over one domain.
type Database struct {
	// Dom interprets constants and predicates.
	Dom domain.Domain
	// Dec decides pure sentences.
	Dec domain.Decider
	// Elim eliminates quantifiers (for Representation and simplified
	// answers).
	Elim domain.Eliminator
	rels map[string]*Relation
}

// NewDatabase returns an empty constraint database.
func NewDatabase(dom domain.Domain, dec domain.Decider, elim domain.Eliminator) *Database {
	return &Database{Dom: dom, Dec: dec, Elim: elim, rels: map[string]*Relation{}}
}

// Define adds (or replaces) a relation.
func (db *Database) Define(name string, rel *Relation) {
	db.rels[name] = rel
}

// Relation returns a defined relation.
func (db *Database) Relation(name string) (*Relation, bool) {
	r, ok := db.rels[name]
	return r, ok
}

// Unfold replaces every database atom R(t̄) in f by R's defining formula
// with columns substituted by the argument terms — the constraint-database
// counterpart of the §1.1 row expansion, except the result stays finite
// even when the relations are infinite.
func (db *Database) Unfold(f *logic.Formula) (*logic.Formula, error) {
	var firstErr error
	g := f.Map(func(h *logic.Formula) *logic.Formula {
		if h.Kind != logic.FAtom || firstErr != nil {
			return h
		}
		rel, ok := db.rels[h.Pred]
		if !ok {
			return h // a domain predicate
		}
		if len(h.Args) != len(rel.Columns) {
			firstErr = fmt.Errorf("finrep: %s expects %d arguments, got %d", h.Pred, len(rel.Columns), len(h.Args))
			return h
		}
		// Rename columns apart first so substituting argument terms cannot
		// capture or clash (e.g. R(y, x) into a definition using x, y).
		body := rel.Def
		fresh := make([]string, len(rel.Columns))
		for i, col := range rel.Columns {
			fresh[i] = logic.FreshVar("u"+col, body, h)
			body = logic.Subst(body, col, logic.Var(fresh[i]))
		}
		for i := range rel.Columns {
			body = logic.Subst(body, fresh[i], h.Args[i])
		}
		return body
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return g, nil
}

// Representation computes a finite representation of a query's answer: the
// unfolded formula with quantifiers eliminated. Its free variables are the
// query's, and it defines the same relation.
func (db *Database) Representation(f *logic.Formula) (*Relation, error) {
	unfolded, err := db.Unfold(f)
	if err != nil {
		return nil, err
	}
	qf, err := db.Elim.Eliminate(unfolded)
	if err != nil {
		return nil, err
	}
	return &Relation{Columns: f.FreeVars(), Def: logic.Simplify(qf)}, nil
}

// Member decides whether a tuple belongs to a query's answer — the
// "questions of whether a certain tuple belongs to a relation, finite or
// infinite" that the representation keeps answerable.
func (db *Database) Member(f *logic.Formula, tuple map[string]domain.Value) (bool, error) {
	unfolded, err := db.Unfold(f)
	if err != nil {
		return false, err
	}
	for _, v := range unfolded.FreeVars() {
		val, ok := tuple[v]
		if !ok {
			return false, fmt.Errorf("finrep: tuple misses column %q", v)
		}
		unfolded = logic.Subst(unfolded, v, logic.Const(db.Dom.ConstName(val)))
	}
	return db.Dec.Decide(unfolded)
}

// Fact decides a boolean query ("whether a certain fact holds").
func (db *Database) Fact(f *logic.Formula) (bool, error) {
	unfolded, err := db.Unfold(f)
	if err != nil {
		return false, err
	}
	if fv := unfolded.FreeVars(); len(fv) != 0 {
		return false, fmt.Errorf("finrep: fact query has free variables %v", fv)
	}
	return db.Dec.Decide(unfolded)
}

// Finite decides whether a query's answer is finite, via the Theorem 2.5
// criterion: the unfolded formula is finite iff it is equivalent to its
// finitization. This requires the domain to extend N< (an order predicate
// "lt"); it is exact over the Presburger domain.
func (db *Database) Finite(f *logic.Formula) (bool, error) {
	unfolded, err := db.Unfold(f)
	if err != nil {
		return false, err
	}
	vars := unfolded.FreeVars()
	if len(vars) == 0 {
		return true, nil
	}
	fin := core.Finitize(unfolded)
	return db.Dec.Decide(logic.ForallAll(vars, logic.Iff(unfolded, fin)))
}

// Materialize lists a finite answer's tuples by bounded search: it requires
// an Enumerator and uses Member on enumerated tuples up to the probe
// budget, after confirming finiteness. For infinite answers it returns an
// error — exactly the operation the representation exists to avoid.
func (db *Database) Materialize(f *logic.Formula, enum domain.Enumerator, probe int) ([]map[string]domain.Value, error) {
	finite, err := db.Finite(f)
	if err != nil {
		return nil, err
	}
	if !finite {
		return nil, fmt.Errorf("finrep: answer is infinite; query its representation instead")
	}
	unfolded, err := db.Unfold(f)
	if err != nil {
		return nil, err
	}
	vars := unfolded.FreeVars()
	var out []map[string]domain.Value
	remaining := unfolded
	for len(out) < probe {
		more, err := db.Dec.Decide(logic.ExistsAll(vars, remaining))
		if err != nil {
			return nil, err
		}
		if !more {
			return out, nil
		}
		found := false
		for i := 0; i < probe && !found; i++ {
			tuple := map[string]domain.Value{}
			ground := remaining
			idx := tupleIndex(len(vars), i)
			for j, v := range vars {
				val := enum.Element(idx[j])
				tuple[v] = val
				ground = logic.Subst(ground, v, logic.Const(db.Dom.ConstName(val)))
			}
			ok, err := db.Dec.Decide(ground)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, tuple)
				var excl []*logic.Formula
				for _, v := range vars {
					excl = append(excl, logic.Eq(logic.Var(v), logic.Const(db.Dom.ConstName(tuple[v]))))
				}
				remaining = logic.And(remaining, logic.Not(logic.And(excl...)))
				found = true
			}
		}
		if !found {
			return out, fmt.Errorf("finrep: probe budget exhausted with rows outstanding")
		}
	}
	return out, nil
}

// tupleIndex enumerates ℕ^k by maximum component (same scheme as the query
// package; duplicated to keep the packages independent).
func tupleIndex(k, n int) []int {
	if k == 0 {
		return nil
	}
	if k == 1 {
		return []int{n}
	}
	m := 0
	block := 1
	rem := n
	for rem >= block {
		rem -= block
		m++
		next := 1
		prev := 1
		for i := 0; i < k; i++ {
			next *= m + 1
			prev *= m
		}
		block = next - prev
	}
	total := 1
	for i := 0; i < k; i++ {
		total *= m + 1
	}
	count := -1
	for code := 0; code < total; code++ {
		t := make([]int, k)
		c := code
		hasMax := false
		for i := k - 1; i >= 0; i-- {
			t[i] = c % (m + 1)
			if t[i] == m {
				hasMax = true
			}
			c /= m + 1
		}
		if !hasMax {
			continue
		}
		count++
		if count == rem {
			return t
		}
	}
	panic("finrep: tuple enumeration out of range")
}
