package finrep_test

import (
	"fmt"

	"repro/internal/domain"
	"repro/internal/finrep"
	"repro/internal/logic"
	"repro/internal/presburger"
)

// A constraint database answers membership in an infinite relation it can
// never list (§1.2 of the paper).
func ExampleDatabase_Member() {
	db := finrep.NewDatabase(presburger.Domain{}, presburger.Decider(), presburger.Eliminator{})
	even, _ := finrep.NewRelation([]string{"x"},
		logic.Atom(presburger.PredDvd, logic.Const("2"), logic.Var("x")))
	db.Define("Even", even)

	in, _ := db.Member(logic.Atom("Even", logic.Var("x")),
		map[string]domain.Value{"x": domain.Int(42)})
	out, _ := db.Member(logic.Atom("Even", logic.Var("x")),
		map[string]domain.Value{"x": domain.Int(41)})
	fmt.Println(in, out)
	// Output: true false
}

// Finiteness of a query over represented relations is decided by the
// Theorem 2.5 criterion.
func ExampleDatabase_Finite() {
	db := finrep.NewDatabase(presburger.Domain{}, presburger.Decider(), presburger.Eliminator{})
	even, _ := finrep.NewRelation([]string{"x"},
		logic.Atom(presburger.PredDvd, logic.Const("2"), logic.Var("x")))
	db.Define("Even", even)

	bounded := logic.And(
		logic.Atom("Even", logic.Var("x")),
		logic.Atom(presburger.PredLt, logic.Var("x"), logic.Const("10")))
	f1, _ := db.Finite(bounded)
	f2, _ := db.Finite(logic.Atom("Even", logic.Var("x")))
	fmt.Println(f1, f2)
	// Output: true false
}
