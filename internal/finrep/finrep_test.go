package finrep

import (
	"fmt"
	"testing"

	"repro/internal/domain"
	"repro/internal/logic"
	"repro/internal/presburger"
)

func lt(a, b logic.Term) *logic.Formula { return logic.Atom(presburger.PredLt, a, b) }
func num(s string) logic.Term           { return logic.Const(s) }

// presburgerDB builds a constraint database over ℕ with two represented
// relations: Even(x) — infinite — and Small(x) ⟺ x < 5 — finite.
func presburgerDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase(presburger.Domain{}, presburger.Decider(), presburger.Eliminator{})
	even, err := NewRelation([]string{"x"},
		logic.Atom(presburger.PredDvd, num("2"), logic.Var("x")))
	if err != nil {
		t.Fatal(err)
	}
	db.Define("Even", even)
	small, err := NewRelation([]string{"x"}, lt(logic.Var("x"), num("5")))
	if err != nil {
		t.Fatal(err)
	}
	db.Define("Small", small)
	interval, err := NewRelation([]string{"lo", "hi"},
		logic.And(lt(logic.Var("lo"), logic.Var("hi")), lt(logic.Var("hi"), num("100"))))
	if err != nil {
		t.Fatal(err)
	}
	db.Define("Interval", interval)
	return db
}

func TestNewRelationValidation(t *testing.T) {
	if _, err := NewRelation([]string{"x", "x"}, logic.True()); err == nil {
		t.Errorf("duplicate columns accepted")
	}
	if _, err := NewRelation([]string{"x"}, lt(logic.Var("y"), num("3"))); err == nil {
		t.Errorf("stray free variable accepted")
	}
}

func TestMember(t *testing.T) {
	db := presburgerDB(t)
	f := logic.Atom("Even", logic.Var("x"))
	cases := []struct {
		v    int64
		want bool
	}{{0, true}, {1, false}, {2, true}, {17, false}, {40, true}}
	for _, c := range cases {
		got, err := db.Member(f, map[string]domain.Value{"x": domain.Int(c.v)})
		if err != nil {
			t.Fatalf("Member: %v", err)
		}
		if got != c.want {
			t.Errorf("Even(%d) = %v, want %v", c.v, got, c.want)
		}
	}
	// Missing column.
	if _, err := db.Member(f, map[string]domain.Value{}); err == nil {
		t.Errorf("missing column accepted")
	}
}

func TestFact(t *testing.T) {
	db := presburgerDB(t)
	// ∃x (Even(x) ∧ Small(x)) — yes (0, 2, 4).
	f := logic.Exists("x", logic.And(
		logic.Atom("Even", logic.Var("x")), logic.Atom("Small", logic.Var("x"))))
	v, err := db.Fact(f)
	if err != nil || !v {
		t.Errorf("fact 1: %v %v", v, err)
	}
	// ∀x (Small(x) → Even(x)) — no (1 < 5 is odd).
	g := logic.Forall("x", logic.Implies(
		logic.Atom("Small", logic.Var("x")), logic.Atom("Even", logic.Var("x"))))
	v, err = db.Fact(g)
	if err != nil || v {
		t.Errorf("fact 2: %v %v", v, err)
	}
	// Free variables are rejected.
	if _, err := db.Fact(logic.Atom("Even", logic.Var("x"))); err == nil {
		t.Errorf("open fact accepted")
	}
}

func TestFinite(t *testing.T) {
	db := presburgerDB(t)
	cases := []struct {
		name string
		f    *logic.Formula
		want bool
	}{
		{"Even", logic.Atom("Even", logic.Var("x")), false},
		{"Small", logic.Atom("Small", logic.Var("x")), true},
		{"Even∧Small", logic.And(
			logic.Atom("Even", logic.Var("x")), logic.Atom("Small", logic.Var("x"))), true},
		{"Even∨Small", logic.Or(
			logic.Atom("Even", logic.Var("x")), logic.Atom("Small", logic.Var("x"))), false},
		{"¬Small", logic.Not(logic.Atom("Small", logic.Var("x"))), false},
		{"Interval", logic.Atom("Interval", logic.Var("lo"), logic.Var("hi")), true},
		{"∃hi Interval", logic.Exists("hi",
			logic.Atom("Interval", logic.Var("lo"), logic.Var("hi"))), true},
	}
	for _, c := range cases {
		got, err := db.Finite(c.f)
		if err != nil {
			t.Fatalf("Finite(%s): %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("Finite(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRepresentation(t *testing.T) {
	db := presburgerDB(t)
	// The answer to "Even ∧ Small" is representable quantifier-free, and
	// membership through the representation matches direct membership.
	f := logic.And(logic.Atom("Even", logic.Var("x")), logic.Atom("Small", logic.Var("x")))
	rep, err := db.Representation(f)
	if err != nil {
		t.Fatalf("Representation: %v", err)
	}
	if !rep.Def.QuantifierFree() {
		t.Fatalf("representation not quantifier-free: %v", rep.Def)
	}
	for v := int64(0); v < 10; v++ {
		direct, err := db.Member(f, map[string]domain.Value{"x": domain.Int(v)})
		if err != nil {
			t.Fatal(err)
		}
		viaRep, err := db.Member(rep.Def, map[string]domain.Value{"x": domain.Int(v)})
		if err != nil {
			t.Fatal(err)
		}
		if direct != viaRep {
			t.Errorf("x=%d: direct %v, representation %v", v, direct, viaRep)
		}
	}
	// Quantified queries also represent: the lower endpoints of intervals.
	g := logic.Exists("hi", logic.Atom("Interval", logic.Var("lo"), logic.Var("hi")))
	rep, err = db.Representation(g)
	if err != nil {
		t.Fatalf("Representation: %v", err)
	}
	if !rep.Def.QuantifierFree() || rep.Def.HasFreeVar("hi") {
		t.Errorf("bad representation: %v", rep.Def)
	}
}

func TestUnfoldRenamingNoCapture(t *testing.T) {
	// A relation defined with columns (a, b) queried with swapped and
	// overlapping variable names must not capture.
	db := NewDatabase(presburger.Domain{}, presburger.Decider(), presburger.Eliminator{})
	rel, err := NewRelation([]string{"a", "b"}, lt(logic.Var("a"), logic.Var("b")))
	if err != nil {
		t.Fatal(err)
	}
	db.Define("Lt", rel)
	// Lt(b, a): must unfold to b < a, not a < b.
	f := logic.Atom("Lt", logic.Var("b"), logic.Var("a"))
	yes, err := db.Member(f, map[string]domain.Value{"a": domain.Int(5), "b": domain.Int(2)})
	if err != nil || !yes {
		t.Errorf("Lt(2,5) via swapped columns: %v %v", yes, err)
	}
	no, err := db.Member(f, map[string]domain.Value{"a": domain.Int(2), "b": domain.Int(5)})
	if err != nil || no {
		t.Errorf("Lt(5,2) via swapped columns should fail: %v %v", no, err)
	}
	// Lt(x, x) is empty.
	g := logic.Atom("Lt", logic.Var("x"), logic.Var("x"))
	v, err := db.Fact(logic.Exists("x", g))
	if err != nil || v {
		t.Errorf("Lt(x,x) nonempty: %v %v", v, err)
	}
}

func TestMaterialize(t *testing.T) {
	db := presburgerDB(t)
	f := logic.And(logic.Atom("Even", logic.Var("x")), logic.Atom("Small", logic.Var("x")))
	rows, err := db.Materialize(f, presburger.Domain{}, 1000)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (0, 2, 4)", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r["x"].Key()] = true
	}
	for _, want := range []string{"0", "2", "4"} {
		if !seen[want] {
			t.Errorf("missing %s", want)
		}
	}
	// Infinite answers refuse to materialize.
	if _, err := db.Materialize(logic.Atom("Even", logic.Var("x")), presburger.Domain{}, 100); err == nil {
		t.Errorf("infinite materialization accepted")
	}
}

func TestUnfoldArityMismatch(t *testing.T) {
	db := presburgerDB(t)
	if _, err := db.Unfold(logic.Atom("Even", logic.Var("x"), logic.Var("y"))); err == nil {
		t.Errorf("arity mismatch accepted")
	}
}

func TestRelationLookup(t *testing.T) {
	db := presburgerDB(t)
	if _, ok := db.Relation("Even"); !ok {
		t.Errorf("Even missing")
	}
	if _, ok := db.Relation("Odd"); ok {
		t.Errorf("Odd present")
	}
}

func TestMaterializeTwoColumns(t *testing.T) {
	// Exercises the pairing enumeration: small two-column finite answer.
	db := presburgerDB(t)
	// Interval pairs with hi < 3: (0,1), (0,2), (1,2).
	f := logic.And(
		logic.Atom("Interval", logic.Var("lo"), logic.Var("hi")),
		lt(logic.Var("hi"), num("3")))
	rows, err := db.Materialize(f, presburger.Domain{}, 10000)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3: %v", len(rows), rows)
	}
	want := map[string]bool{"0,1": true, "0,2": true, "1,2": true}
	for _, r := range rows {
		key := r["lo"].Key() + "," + r["hi"].Key()
		if !want[key] {
			t.Errorf("unexpected row %s", key)
		}
	}
}

func TestRepresentationErrorPropagation(t *testing.T) {
	db := presburgerDB(t)
	// Unknown function inside the query surfaces as an error.
	bad := logic.Eq(logic.App("f", logic.Var("x")), logic.Var("x"))
	if _, err := db.Representation(logic.Exists("x", bad)); err == nil {
		t.Errorf("bad term accepted")
	}
	if _, err := db.Finite(bad); err == nil {
		t.Errorf("Finite on bad term accepted")
	}
	if _, err := db.Materialize(bad, presburger.Domain{}, 10); err == nil {
		t.Errorf("Materialize on bad term accepted")
	}
}

func TestFiniteBooleanQuery(t *testing.T) {
	db := presburgerDB(t)
	fin, err := db.Finite(logic.Exists("x", logic.Atom("Even", logic.Var("x"))))
	if err != nil || !fin {
		t.Errorf("boolean queries are finite: %v %v", fin, err)
	}
}

func TestTupleIndexBijective(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		seen := map[string]bool{}
		for i := 0; i < 150; i++ {
			idx := tupleIndex(k, i)
			if len(idx) != k {
				t.Fatalf("k=%d: length %d", k, len(idx))
			}
			key := fmt.Sprint(idx)
			if seen[key] {
				t.Fatalf("k=%d: duplicate %v at %d", k, idx, i)
			}
			seen[key] = true
		}
	}
	if tupleIndex(0, 5) != nil {
		t.Errorf("k=0 should be nil")
	}
}
