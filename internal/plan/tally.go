package plan

import (
	"context"
	"sync/atomic"
)

// Tally counts plan-cache traffic for one request, so per-query stats can
// attribute hits and misses (and the tier the plan ran at) to the query
// that caused them. Carried through context like deccache's tally.
type Tally struct {
	// Hits counts plan-cache hits attributed to this request.
	Hits atomic.Int64
	// Misses counts compilations attributed to this request.
	Misses atomic.Int64
	// tier holds the tier of the most recent plan lookup, stored as an
	// atomic pointer so concurrent workers stay race-free.
	tier atomic.Pointer[Tier]
}

func (t *Tally) setTier(tier Tier) { t.tier.Store(&tier) }

// Tier returns the tier of the last plan this request resolved
// ("" before any lookup).
func (t *Tally) Tier() Tier {
	if p := t.tier.Load(); p != nil {
		return *p
	}
	return ""
}

type tallyKey struct{}

// WithTally returns a context carrying a fresh Tally, plus the Tally for
// reading after evaluation.
func WithTally(ctx context.Context) (context.Context, *Tally) {
	t := &Tally{}
	return context.WithValue(ctx, tallyKey{}, t), t
}

// TallyFrom returns the Tally carried by ctx, or nil.
func TallyFrom(ctx context.Context) *Tally {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tallyKey{}).(*Tally)
	return t
}
