package plan

import (
	"context"
	"errors"

	"repro/internal/algebra"
	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/logic"
)

// ErrFallback reports that a plan cannot serve the requested evaluation
// (interp tier, or an algebra plan whose preconditions don't hold for this
// state); the caller should use the generic evaluator.
var ErrFallback = errors.New("plan: fall back to generic evaluator")

// Result is a plan evaluation's outcome. For boolean queries (no free
// variables) Truth carries the verdict and Rows is nil; otherwise Rows is
// a relation over Vars (sorted). Complete is false when cancellation
// stopped the evaluation early — the rows gathered so far are returned
// alongside the context's error, mirroring the generic evaluator.
type Result struct {
	Vars     []string
	Truth    bool
	Rows     *db.Relation
	Complete bool
}

func canceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// EvalActive evaluates the plan under active-domain semantics: free
// variables and quantifiers range over rng (the state's active domain
// plus the query's constants, as computed by the caller). Returns
// ErrFallback when this plan cannot answer for the given state.
func (p *Plan) EvalActive(ctx context.Context, dom domain.Domain, st *db.State, rng []domain.Value) (*Result, error) {
	switch p.tier {
	case TierAlgebra:
		// Natural semantics agrees with active-domain semantics for the
		// compiled (safe-range) fragment except over an empty range, where
		// active semantics can make an existential vacuously false; hand
		// that edge to an evaluator with exact semantics.
		if len(rng) == 0 {
			return nil, ErrFallback
		}
		tab, err := p.alg.Eval(&algebra.Ctx{St: st, Dom: dom})
		if err != nil {
			return nil, err
		}
		return p.resultFromTable(ctx, tab)
	case TierClosure:
		return p.prog.run(ctx, dom, st, rng)
	}
	return nil, ErrFallback
}

// AnswerTable materializes the plan's full answer as an algebra table —
// the natural-semantics answer, which for the compiled safe-range
// fragment is exactly the §1.1 enumeration answer. Only algebra-tier
// plans with at least one free variable can serve it (a sentence's
// enumeration verdict comes from the domain decider, not the database).
func (p *Plan) AnswerTable(dom domain.Domain, st *db.State) (*algebra.Table, error) {
	if p.tier != TierAlgebra || len(p.vars) == 0 {
		return nil, ErrFallback
	}
	return p.alg.Eval(&algebra.Ctx{St: st, Dom: dom})
}

// resultFromTable converts an algebra answer table into a Result, mapping
// table columns to the plan's sorted variable order. The context is
// polled between rows so a cancelled request still surfaces a partial
// answer, matching the generic evaluator's contract.
func (p *Plan) resultFromTable(ctx context.Context, tab *algebra.Table) (*Result, error) {
	if len(p.vars) == 0 {
		return &Result{Vars: p.vars, Truth: tab.Len() > 0, Complete: true}, nil
	}
	perm := make([]int, len(p.vars))
	cols := tab.Cols
	for i, v := range p.vars {
		perm[i] = -1
		for j, c := range cols {
			if c == v {
				perm[i] = j
				break
			}
		}
		if perm[i] < 0 {
			return nil, ErrFallback
		}
	}
	res := &Result{Vars: p.vars, Rows: db.NewRelation(len(p.vars)), Complete: true}
	for _, row := range tab.Rows() {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				res.Complete = false
				return res, err
			}
		}
		t := make(db.Tuple, len(perm))
		for i, j := range perm {
			t[i] = row[j]
		}
		if err := res.Rows.Add(t); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// run evaluates a closure program: free variables are assigned in sorted
// order over their (possibly narrowed) ranges, the root closure decides
// each assignment, and the context is polled unstrided between outer rows
// — the same loop structure and cancellation granularity as the generic
// evaluator.
func (p *prog) run(ctx context.Context, dom domain.Domain, st *db.State, rng []domain.Value) (*Result, error) {
	e := p.newEnv(ctx, dom, st, rng)

	if len(p.vars) == 0 {
		v, err := p.root(e)
		if err != nil {
			if canceled(err) {
				return &Result{Vars: p.vars, Complete: false}, err
			}
			return nil, err
		}
		return &Result{Vars: p.vars, Truth: v, Complete: true}, nil
	}

	res := &Result{Vars: p.vars, Rows: db.NewRelation(len(p.vars)), Complete: true}
	var assign func(i int) error
	assign = func(i int) error {
		if i == len(p.vars) {
			v, err := p.root(e)
			if err != nil {
				return err
			}
			if v {
				t := make(db.Tuple, len(p.vars))
				copy(t, e.slots[:len(p.vars)])
				return res.Rows.Add(t)
			}
			return nil
		}
		cands := e.rng
		if nid := p.freeNarrow[i]; nid >= 0 {
			var err error
			if cands, err = e.narrowVals(nid); err != nil {
				return err
			}
		}
		for _, v := range cands {
			if i == 0 && ctx != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			e.slots[i] = v
			if err := assign(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := assign(0); err != nil {
		if canceled(err) {
			res.Complete = false
			return res, err
		}
		return nil, err
	}
	return res, nil
}

// ForFormula is For with the key computed from the formula; convenience
// for callers without a precomputed canonical key.
func ForFormula(ctx context.Context, scheme *db.Scheme, domainName string, f *logic.Formula) *Plan {
	return For(ctx, scheme, domainName, "", f)
}
