package plan

import (
	"fmt"

	"repro/internal/algebra"
)

// Algebra-tier plan optimization. Two classical, result-preserving
// rewrites:
//
//   - Selection pushdown: a selection sitting above a join (or a
//     projection) whose condition only mentions one side's columns moves
//     into that side, so the join hashes fewer rows. Natural join then
//     filter equals filter then join when the condition reads only
//     surviving columns.
//   - Join reordering: the natural join of a set of inputs is
//     order-independent (its result is the set of tuples over the united
//     columns consistent with every input), so join trees ≥ 3 leaves are
//     rebuilt left-deep with statically cheaper inputs first, preferring
//     joins that share columns over cross products.

// optimizeAlgebra rewrites a compiled algebra expression and reports the
// optimizations applied, for EXPLAIN text.
func optimizeAlgebra(e algebra.Expr) (algebra.Expr, []string) {
	o := &optimizer{}
	out := o.rewrite(e)
	var notes []string
	if o.pushed > 0 {
		notes = append(notes, fmt.Sprintf("selection pushdown ×%d", o.pushed))
	}
	if o.reordered > 0 {
		notes = append(notes, fmt.Sprintf("join reorder ×%d", o.reordered))
	}
	return out, notes
}

type optimizer struct {
	pushed    int
	reordered int
}

func (o *optimizer) rewrite(e algebra.Expr) algebra.Expr {
	switch n := e.(type) {
	case *algebra.Select:
		in := o.rewrite(n.In)
		var rest []algebra.Cond
		for _, c := range splitCond(n.Cond) {
			if pushedIn, ok := o.push(in, c); ok {
				o.pushed++
				in = pushedIn
			} else {
				rest = append(rest, c)
			}
		}
		if len(rest) == 0 {
			return in
		}
		return &algebra.Select{In: in, Cond: joinCond(rest)}
	case *algebra.Project:
		return &algebra.Project{In: o.rewrite(n.In), Cols: n.Cols}
	case *algebra.Rename:
		return &algebra.Rename{In: o.rewrite(n.In), From: n.From, To: n.To}
	case *algebra.Extend:
		return &algebra.Extend{In: o.rewrite(n.In), NewCol: n.NewCol, FromCol: n.FromCol}
	case *algebra.Join:
		j := &algebra.Join{L: o.rewrite(n.L), R: o.rewrite(n.R)}
		return o.reorderJoin(j)
	case *algebra.Union:
		return &algebra.Union{L: o.rewrite(n.L), R: o.rewrite(n.R)}
	case *algebra.Diff:
		return &algebra.Diff{L: o.rewrite(n.L), R: o.rewrite(n.R)}
	}
	return e
}

// push moves one conjunct into the side of a join (or below a projection)
// that carries all its columns. Reports false when the condition straddles
// both sides or the input has no structure to push through.
func (o *optimizer) push(e algebra.Expr, c algebra.Cond) (algebra.Expr, bool) {
	cols, ok := condCols(c)
	if !ok {
		return e, false
	}
	switch n := e.(type) {
	case *algebra.Join:
		if subset(cols, n.L.Columns()) {
			return &algebra.Join{L: selectInto(o, n.L, c), R: n.R}, true
		}
		if subset(cols, n.R.Columns()) {
			return &algebra.Join{L: n.L, R: selectInto(o, n.R, c)}, true
		}
	case *algebra.Project:
		if subset(cols, n.Cols) {
			return &algebra.Project{In: selectInto(o, n.In, c), Cols: n.Cols}, true
		}
	}
	return e, false
}

// selectInto pushes recursively where possible, else wraps in a Select.
func selectInto(o *optimizer, e algebra.Expr, c algebra.Cond) algebra.Expr {
	if pushed, ok := o.push(e, c); ok {
		o.pushed++
		return pushed
	}
	return &algebra.Select{In: e, Cond: c}
}

// splitCond flattens CondAnd into its conjuncts.
func splitCond(c algebra.Cond) []algebra.Cond {
	if and, ok := c.(algebra.CondAnd); ok {
		var out []algebra.Cond
		for _, s := range and.Cs {
			out = append(out, splitCond(s)...)
		}
		return out
	}
	return []algebra.Cond{c}
}

func joinCond(cs []algebra.Cond) algebra.Cond {
	if len(cs) == 1 {
		return cs[0]
	}
	return algebra.CondAnd{Cs: cs}
}

// condCols lists the columns a condition reads; false for unknown
// condition types (never pushed).
func condCols(c algebra.Cond) ([]string, bool) {
	switch n := c.(type) {
	case algebra.CondEq:
		return argCols(n.A, n.B), true
	case algebra.CondPred:
		return argCols(n.Args...), true
	case algebra.CondNot:
		return condCols(n.C)
	case algebra.CondAnd:
		var out []string
		for _, s := range n.Cs {
			cols, ok := condCols(s)
			if !ok {
				return nil, false
			}
			out = append(out, cols...)
		}
		return out, true
	}
	return nil, false
}

func argCols(args ...algebra.Arg) []string {
	var out []string
	for _, a := range args {
		if a.IsCol {
			out = append(out, a.Col)
		}
	}
	return out
}

func subset(needles, hay []string) bool {
	set := make(map[string]bool, len(hay))
	for _, c := range hay {
		set[c] = true
	}
	for _, c := range needles {
		if !set[c] {
			return false
		}
	}
	return true
}

// reorderJoin rebuilds a join tree of ≥ 3 leaves left-deep: the statically
// cheapest leaf first, then greedily the cheapest leaf sharing a column
// with the accumulated columns (avoiding cross products when the join
// graph is connected).
func (o *optimizer) reorderJoin(j *algebra.Join) algebra.Expr {
	leaves := flattenJoin(j)
	if len(leaves) < 3 {
		return j
	}
	used := make([]bool, len(leaves))
	pick := 0
	for i := 1; i < len(leaves); i++ {
		if estimate(leaves[i]) < estimate(leaves[pick]) {
			pick = i
		}
	}
	used[pick] = true
	order := []int{pick}
	cols := map[string]bool{}
	for _, c := range leaves[pick].Columns() {
		cols[c] = true
	}
	for len(order) < len(leaves) {
		best, bestConn := -1, false
		for i, leaf := range leaves {
			if used[i] {
				continue
			}
			conn := sharesCol(cols, leaf.Columns())
			switch {
			case best < 0,
				conn && !bestConn,
				conn == bestConn && estimate(leaf) < estimate(leaves[best]):
				best, bestConn = i, conn
			}
		}
		used[best] = true
		order = append(order, best)
		for _, c := range leaves[best].Columns() {
			cols[c] = true
		}
	}
	changed := false
	for i, idx := range order {
		if idx != i {
			changed = true
			break
		}
	}
	if !changed {
		return j
	}
	o.reordered++
	out := leaves[order[0]]
	for _, idx := range order[1:] {
		out = &algebra.Join{L: out, R: leaves[idx]}
	}
	return out
}

// flattenJoin collects the non-join leaves of a join tree.
func flattenJoin(e algebra.Expr) []algebra.Expr {
	if j, ok := e.(*algebra.Join); ok {
		return append(flattenJoin(j.L), flattenJoin(j.R)...)
	}
	return []algebra.Expr{e}
}

func sharesCol(set map[string]bool, cols []string) bool {
	for _, c := range cols {
		if set[c] {
			return true
		}
	}
	return false
}

// estimate is a static input-size guess: literal tables are known
// exactly, selections halve their input, everything else is a scan.
func estimate(e algebra.Expr) int {
	switch n := e.(type) {
	case *algebra.Lit:
		return len(n.Rows)
	case *algebra.Select:
		in := estimate(n.In)
		if in > 1 {
			return in / 2
		}
		return 1
	case *algebra.Project:
		return estimate(n.In)
	case *algebra.Rename:
		return estimate(n.In)
	case *algebra.Extend:
		return estimate(n.In)
	}
	return 100
}
