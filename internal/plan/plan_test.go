package plan

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/domains/eqdom"
	"repro/internal/logic"
	"repro/internal/parser"
)

// fathersState is the shared fixture: F = {(adam,abel),(adam,cain),(cain,enoch)}.
func fathersState(t *testing.T) *db.State {
	t.Helper()
	st := db.NewState(db.MustScheme(map[string]int{"F": 2}))
	for _, p := range [][2]string{{"adam", "abel"}, {"adam", "cain"}, {"cain", "enoch"}} {
		if err := st.Insert("F", domain.Word(p[0]), domain.Word(p[1])); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// rangeOf mirrors the evaluator's active range: the state's active domain
// (the fixture has no constants worth adding).
func rangeOf(st *db.State) []domain.Value { return st.ActiveDomain() }

func planFor(t *testing.T, st *db.State, src string) *Plan {
	t.Helper()
	resetCache()
	return For(context.Background(), st.Scheme(), "eq", "", parser.MustParse(src))
}

func evalPlan(t *testing.T, p *Plan, st *db.State) *Result {
	t.Helper()
	res, err := p.EvalActive(context.Background(), eqdom.Domain{}, st, rangeOf(st))
	if err != nil {
		t.Fatalf("EvalActive(tier=%s): %v", p.Tier(), err)
	}
	return res
}

// TestTierSelection pins which fragment lands where: safe-range formulas
// compile to algebra, everything else the evaluator accepts compiles to
// closures.
func TestTierSelection(t *testing.T) {
	st := fathersState(t)
	cases := []struct {
		src  string
		tier Tier
	}{
		{"F(x, y)", TierAlgebra},
		{"exists y. F(x, y)", TierAlgebra},
		{"F(x, y) & (forall z. (~F(x, z) | F(z, z) | (exists w. F(z, w))))", TierAlgebra},
		{"~F(x, y)", TierClosure},
		{"x = y", TierClosure},
		{"forall y. F(x, y)", TierClosure},
	}
	for _, tc := range cases {
		p := planFor(t, st, tc.src)
		if p.Tier() != tc.tier {
			t.Errorf("%s: tier %s, want %s (%s)", tc.src, p.Tier(), tc.tier, p.reason)
		}
	}
}

// TestClosureMatchesAlgebra runs formulas both tiers accept through each
// and requires identical answers.
func TestClosureMatchesAlgebra(t *testing.T) {
	st := fathersState(t)
	srcs := []string{
		"F(x, y)",
		"exists y. F(x, y)",
		"exists x. F(x, y)",
		"F(x, y) & F(y, z)",
		"F(x, y) & x = x",
		"exists y. (F(x, y) & (exists z. F(y, z)))",
		"F(x, y) & (forall z. (~F(y, z) | F(x, z)))",
	}
	for _, src := range srcs {
		f := parser.MustParse(src)
		resetCache()
		p := For(context.Background(), st.Scheme(), "eq", "", f)
		if p.Tier() != TierAlgebra {
			t.Fatalf("%s: tier %s, want algebra (%s)", src, p.Tier(), p.reason)
		}
		want := evalPlan(t, p, st)

		pr, err := compileClosure(st.Scheme(), "", f)
		if err != nil {
			t.Fatalf("compileClosure(%s): %v", src, err)
		}
		got, err := pr.run(context.Background(), eqdom.Domain{}, st, rangeOf(st))
		if err != nil {
			t.Fatalf("closure run(%s): %v", src, err)
		}
		if !sameRows(got, want) {
			t.Errorf("%s: closure ≠ algebra\nclosure: %v\nalgebra: %v", src, dumpRows(got), dumpRows(want))
		}
	}
}

// TestClosureSemantics pins closure-tier answers on formulas outside the
// algebra fragment against hand-computed active-domain results.
func TestClosureSemantics(t *testing.T) {
	st := fathersState(t)
	// Active domain: {abel, adam, cain, enoch}.
	cases := []struct {
		src  string
		want []string // row keys "a|b"
	}{
		// Non-safe-range negation: pairs NOT in F over the active domain.
		{"~F(x, x)", []string{"abel", "adam", "cain", "enoch"}},
		// x is a father of everyone he fathered (trivially all x): ∀-only.
		{"forall y. (F(x, y) -> F(x, y))", []string{"abel", "adam", "cain", "enoch"}},
		// x fathered everything that cain fathered.
		{`forall y. (F("cain", y) -> F(x, y))`, []string{"cain"}},
	}
	// "cain" parses as a constant; eqdom resolves any name to itself.
	for _, tc := range cases {
		p := planFor(t, st, tc.src)
		if p.Tier() != TierClosure {
			t.Fatalf("%s: tier %s, want closure (%s)", tc.src, p.Tier(), p.reason)
		}
		res := evalPlan(t, p, st)
		got := map[string]bool{}
		for _, row := range res.Rows.Tuples() {
			got[row.Key()] = true
		}
		if len(got) != len(tc.want) {
			t.Errorf("%s: %d rows %v, want %d", tc.src, len(got), dumpRows(res), len(tc.want))
			continue
		}
		for _, w := range tc.want {
			key := db.Tuple{domain.Word(w)}.Key()
			if !got[key] {
				t.Errorf("%s: missing row %q (have %v)", tc.src, w, dumpRows(res))
			}
		}
	}
}

// TestClosureShadowing: an inner binder reusing a free variable's name
// must not leak — the outer slot survives the inner loop.
func TestClosureShadowing(t *testing.T) {
	st := fathersState(t)
	// Free x, then an inner ∃x: holds for y with some father (inner x),
	// paired with every active-domain value of the free x.
	p := planFor(t, st, "x = x & (exists x. F(x, y))")
	if p.Tier() != TierClosure {
		// The RANF rewrite may widen this into the algebra tier; both are
		// correct, but this test targets the closure runtime.
		pr, err := compileClosure(st.Scheme(), "", parser.MustParse("x = x & (exists x. F(x, y))"))
		if err != nil {
			t.Fatalf("compileClosure: %v", err)
		}
		res, err := pr.run(context.Background(), eqdom.Domain{}, st, rangeOf(st))
		if err != nil {
			t.Fatal(err)
		}
		checkShadowRows(t, res)
		return
	}
	checkShadowRows(t, evalPlan(t, p, st))
}

func checkShadowRows(t *testing.T, res *Result) {
	t.Helper()
	// y ∈ {abel, cain, enoch} (the fathered), x ranges over all 4 values.
	if res.Rows.Len() != 4*3 {
		t.Fatalf("shadowed query: %d rows, want 12: %v", res.Rows.Len(), dumpRows(res))
	}
}

// TestNarrowingSoundness compares narrowed existentials against the
// algebra answer — the narrowed witness search must not lose rows.
func TestNarrowingSoundness(t *testing.T) {
	st := fathersState(t)
	f := parser.MustParse("exists y. (F(y, x) & y = y)")
	pr, err := compileClosure(st.Scheme(), "", f)
	if err != nil {
		t.Fatal(err)
	}
	if len(pr.narrows) == 0 {
		t.Fatal("expected a narrowed existential range")
	}
	got, err := pr.run(context.Background(), eqdom.Domain{}, st, rangeOf(st))
	if err != nil {
		t.Fatal(err)
	}
	// Algebra tier answers the same query.
	resetCache()
	p := For(context.Background(), st.Scheme(), "eq", "", f)
	if p.Tier() != TierAlgebra {
		t.Fatalf("tier %s (%s)", p.Tier(), p.reason)
	}
	want := evalPlan(t, p, st)
	if !sameRows(got, want) {
		t.Errorf("narrowed closure ≠ algebra\nclosure: %v\nalgebra: %v", dumpRows(got), dumpRows(want))
	}
}

// TestCacheHitsAndTally: the second For of the same key is a cache hit,
// attributed to the context's tally.
func TestCacheHitsAndTally(t *testing.T) {
	st := fathersState(t)
	resetCache()
	f := parser.MustParse("F(x, y)")
	ctx, tally := WithTally(context.Background())
	p1 := For(ctx, st.Scheme(), "eq", "", f)
	p2 := For(ctx, st.Scheme(), "eq", "", f)
	if p1 != p2 {
		t.Fatal("same key compiled twice")
	}
	if tally.Hits.Load() != 1 || tally.Misses.Load() != 1 {
		t.Fatalf("tally hits=%d misses=%d, want 1/1", tally.Hits.Load(), tally.Misses.Load())
	}
	if tally.Tier() != TierAlgebra {
		t.Fatalf("tally tier %q, want algebra", tally.Tier())
	}
	// A different scheme must not share the plan.
	other := db.MustScheme(map[string]int{"F": 2, "G": 1})
	p3 := For(ctx, other, "eq", "", f)
	if p3 == p1 {
		t.Fatal("plan shared across schemes")
	}
	// A different domain must not share the plan either.
	p4 := For(ctx, st.Scheme(), "nless", "", f)
	if p4 == p1 {
		t.Fatal("plan shared across domains")
	}
}

// TestCacheEviction: the LRU stays bounded.
func TestCacheEviction(t *testing.T) {
	resetCache()
	scheme := db.MustScheme(map[string]int{"F": 2})
	for i := 0; i <= DefaultCacheCapacity+8; i++ {
		f := logic.Eq(logic.Var("x"), logic.Const(fmt.Sprintf("c%d", i)))
		For(context.Background(), scheme, "eq", "", f)
	}
	if n := CacheStats(); n != DefaultCacheCapacity {
		t.Fatalf("cache size %d, want %d", n, DefaultCacheCapacity)
	}
	resetCache()
}

// TestPlanText: EXPLAIN text names the tier and the compiled form.
func TestPlanText(t *testing.T) {
	st := fathersState(t)
	p := planFor(t, st, "exists y. F(x, y)")
	txt := p.Text()
	if !strings.Contains(txt, "tier=algebra") || !strings.Contains(txt, "algebra:") {
		t.Errorf("algebra plan text missing pieces:\n%s", txt)
	}
	p = planFor(t, st, "~F(x, y)")
	if txt := p.Text(); !strings.Contains(txt, "tier=closure") {
		t.Errorf("closure plan text missing tier:\n%s", txt)
	}
}

// TestClosureCancellation: a cancelled context yields a partial result
// with Complete=false and the context error, like the generic evaluator.
func TestClosureCancellation(t *testing.T) {
	st := fathersState(t)
	f := parser.MustParse("~F(x, y)")
	pr, err := compileClosure(st.Scheme(), "", f)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := pr.run(ctx, eqdom.Domain{}, st, rangeOf(st))
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if res == nil || res.Complete {
		t.Fatalf("cancelled run: result %+v, want partial with Complete=false", res)
	}
}

// TestOptimizerEquivalence: the algebra rewrites preserve results on
// compiled plans with pushable selections and reorderable joins.
func TestOptimizerEquivalence(t *testing.T) {
	st := fathersState(t)
	actx := &algebra.Ctx{St: st, Dom: eqdom.Domain{}}
	srcs := []string{
		"F(x, y) & F(y, z) & F(z, w)",
		"F(x, y) & F(y, z) & x = x",
		"F(x, y) & F(u, v) & F(y, u)",
		"exists y. (F(x, y) & F(y, z))",
	}
	for _, src := range srcs {
		e, err := algebra.CompileRANF(st.Scheme(), parser.MustParse(src))
		if err != nil {
			t.Fatalf("CompileRANF(%s): %v", src, err)
		}
		want, err := e.Eval(actx)
		if err != nil {
			t.Fatalf("Eval(%s): %v", src, err)
		}
		opt, _ := optimizeAlgebra(e)
		got, err := opt.Eval(actx)
		if err != nil {
			t.Fatalf("optimized Eval(%s): %v\nplan: %s", src, err, opt.String())
		}
		if !sameColSet(got.Cols, want.Cols) || got.Len() != want.Len() {
			t.Fatalf("%s: optimized shape differs: %v/%d vs %v/%d\nplan: %s",
				src, got.Cols, got.Len(), want.Cols, want.Len(), opt.String())
		}
		idx := map[string]int{}
		for i, c := range got.Cols {
			idx[c] = i
		}
		perm := make([]int, len(want.Cols))
		for i, c := range want.Cols {
			perm[i] = idx[c]
		}
		for _, row := range want.Rows() {
			moved := make([]domain.Value, len(perm))
			for i := range perm {
				moved[perm[i]] = row[i]
			}
			if !got.Has(moved) {
				t.Fatalf("%s: optimized plan lost row %v\nplan: %s", src, row, opt.String())
			}
		}
	}
}

// TestSelectionPushdown: a straddling-free condition moves below the join.
func TestSelectionPushdown(t *testing.T) {
	base1 := &algebra.Base{Rel: "F", Cols: []string{"x", "y"}}
	base2 := &algebra.Base{Rel: "F", Cols: []string{"y", "z"}}
	e := &algebra.Select{
		In:   &algebra.Join{L: base1, R: base2},
		Cond: algebra.CondEq{A: algebra.ColArg("x"), B: algebra.ConstArg("adam")},
	}
	opt, notes := optimizeAlgebra(e)
	if _, stillTop := opt.(*algebra.Select); stillTop {
		t.Fatalf("selection not pushed: %s", opt.String())
	}
	if len(notes) == 0 {
		t.Fatal("pushdown not noted")
	}
	st := fathersState(t)
	actx := &algebra.Ctx{St: st, Dom: eqdom.Domain{}}
	want, err := e.Eval(actx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := opt.Eval(actx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("pushdown changed cardinality: %d vs %d", got.Len(), want.Len())
	}
}

func sameRows(a, b *Result) bool {
	if a.Rows == nil || b.Rows == nil {
		return a.Truth == b.Truth
	}
	if a.Rows.Len() != b.Rows.Len() {
		return false
	}
	for _, row := range a.Rows.Tuples() {
		if !b.Rows.Has(row) {
			return false
		}
	}
	return true
}

func dumpRows(r *Result) string {
	if r.Rows == nil {
		return fmt.Sprintf("truth=%v", r.Truth)
	}
	var parts []string
	for _, row := range r.Rows.Tuples() {
		parts = append(parts, row.String())
	}
	return strings.Join(parts, " ")
}
