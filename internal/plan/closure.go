package plan

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/logic"
	"repro/internal/obs/qstats"
)

// The closure tier compiles a formula into a tree of Go closures over a
// slot-indexed environment. Variables are resolved to integer slots at
// compile time (lexical scoping, shadowing handled statically), constants
// and relations are interned into tables resolved lazily once per
// evaluation, and each atom gets a private scratch buffer, so the per-row
// work is slice indexing and direct calls — none of the generic
// evaluator's map writes, kind switches, or environment save/restore.
//
// Semantics are exactly active-domain evaluation (query.evalIn +
// domain.EvalQF): quantifiers range over the caller's range slice,
// equality compares Value keys, database atoms test relation membership,
// everything else goes to the domain interpretation. The only licensed
// deviations are the plan optimizations: conjunct/disjunct reordering
// (result-preserving on error-free formulas) and existential range
// narrowing (restricting a witness search to values that can possibly
// satisfy a positive database-atom conjunct — sound because any witness
// must appear in that relation's column).

// boolFn evaluates a compiled subformula under an environment.
type boolFn func(*env) (bool, error)

// termFn evaluates a compiled term under an environment.
type termFn func(*env) (domain.Value, error)

// narrowSpec narrows a quantifier or free-variable range to the distinct
// values of one column of a database relation.
type narrowSpec struct {
	rel int // interned relation id
	col int // column position the variable occupies
}

// prog is one closure-compiled formula.
type prog struct {
	vars       []string // sorted free variables; slots 0..len(vars)-1
	nslots     int
	constNames []string
	relNames   []string
	relArity   []int
	scratchLen []int
	narrows    []narrowSpec
	freeNarrow []int // per free var: index into narrows, or -1
	root       boolFn
	notes      []string
	nAtoms     int
}

func (p *prog) describe() string {
	return fmt.Sprintf("%d slots, %d atoms, %d consts, %d relations",
		p.nslots, p.nAtoms, len(p.constNames), len(p.relNames))
}

// env is the per-evaluation state a compiled program runs against.
// Constants, relations, and narrowed ranges resolve lazily on first use
// and stay cached for the rest of the evaluation.
type env struct {
	p       *prog
	slots   []domain.Value
	rng     []domain.Value
	consts  []domain.Value
	rels    []*db.Relation
	narrow  [][]domain.Value
	scratch [][]domain.Value
	dom     domain.Domain
	st      *db.State
	ctx     context.Context
	tick    uint32
}

// poll is the strided cancellation check quantifier loops run — every
// 256th call touches the context, mirroring query.stopCheck.
func (e *env) poll() error {
	if e.ctx == nil {
		return nil
	}
	if e.tick++; e.tick&255 != 0 {
		return nil
	}
	return e.ctx.Err()
}

// constVal resolves an interned constant: database constants through the
// state, domain constants through the domain (stateInterp semantics).
// Lazy so a constant in a short-circuited branch never errors an
// evaluation the generic evaluator would finish.
func (e *env) constVal(i int) (domain.Value, error) {
	if v := e.consts[i]; v != nil {
		return v, nil
	}
	name := e.p.constNames[i]
	var v domain.Value
	var err error
	if e.st != nil && e.st.Scheme().HasConstant(name) {
		v, err = e.st.Constant(name)
	} else {
		v, err = e.dom.ConstValue(name)
	}
	if err != nil {
		return nil, err
	}
	e.consts[i] = v
	return v, nil
}

// relVal resolves an interned relation from the state.
func (e *env) relVal(i int) (*db.Relation, error) {
	if r := e.rels[i]; r != nil {
		return r, nil
	}
	r, err := e.st.Relation(e.p.relNames[i])
	if err != nil {
		return nil, err
	}
	e.rels[i] = r
	return r, nil
}

// narrowVals materializes a narrowed range: the distinct values of one
// relation column, computed once per evaluation.
func (e *env) narrowVals(i int) ([]domain.Value, error) {
	if v := e.narrow[i]; v != nil {
		return v, nil
	}
	ns := e.p.narrows[i]
	rel, err := e.relVal(ns.rel)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, rel.Len())
	vals := make([]domain.Value, 0, rel.Len())
	for _, t := range rel.Tuples() {
		v := t[ns.col]
		if !seen[v.Key()] {
			seen[v.Key()] = true
			vals = append(vals, v)
		}
	}
	e.narrow[i] = vals
	return vals, nil
}

// newEnv builds a fresh environment for one evaluation of the program.
func (p *prog) newEnv(ctx context.Context, dom domain.Domain, st *db.State, rng []domain.Value) *env {
	e := &env{
		p:     p,
		slots: make([]domain.Value, p.nslots),
		rng:   rng,
		dom:   dom,
		st:    st,
		ctx:   ctx,
	}
	if n := len(p.constNames); n > 0 {
		e.consts = make([]domain.Value, n)
	}
	if n := len(p.relNames); n > 0 {
		e.rels = make([]*db.Relation, n)
	}
	if n := len(p.narrows); n > 0 {
		e.narrow = make([][]domain.Value, n)
	}
	if n := len(p.scratchLen); n > 0 {
		e.scratch = make([][]domain.Value, n)
		for i, ln := range p.scratchLen {
			e.scratch[i] = make([]domain.Value, ln)
		}
	}
	return e
}

// ccomp is the closure compiler's state.
type ccomp struct {
	scheme *db.Scheme
	sel    map[string]float64 // profile path → measured selectivity
	p      *prog
	scope  []scopeBinding // innermost last
	consts map[string]int
	rels   map[string]int

	usedMeasured bool
	narrowed     int
	reordered    int
}

type scopeBinding struct {
	name string
	slot int
}

// compileClosure lowers a formula to a closure program. key is the
// formula's canonical key, used to look up measured node selectivities
// from per-query stats for conjunct ordering.
func compileClosure(scheme *db.Scheme, key string, f *logic.Formula) (*prog, error) {
	c := &ccomp{
		scheme: scheme,
		sel:    qstats.NodeSelectivities(key),
		p:      &prog{vars: f.FreeVars()},
		consts: map[string]int{},
		rels:   map[string]int{},
	}
	for i, v := range c.p.vars {
		c.scope = append(c.scope, scopeBinding{name: v, slot: i})
	}
	c.p.nslots = len(c.p.vars)

	root, err := c.compile(f, "0")
	if err != nil {
		return nil, err
	}
	c.p.root = root

	// Free-variable range narrowing: a free variable occurring directly in
	// a positive database-atom conjunct can only take values from that
	// relation's column.
	c.p.freeNarrow = make([]int, len(c.p.vars))
	for i, v := range c.p.vars {
		c.p.freeNarrow[i] = c.narrowFor(conjunctsOf(f), v)
	}

	if c.narrowed > 0 {
		c.p.notes = append(c.p.notes, fmt.Sprintf("range narrowing ×%d", c.narrowed))
	}
	if c.reordered > 0 {
		src := "heuristic"
		if c.usedMeasured {
			src = "measured selectivity"
		}
		c.p.notes = append(c.p.notes, fmt.Sprintf("conjunct ordering ×%d (%s)", c.reordered, src))
	}
	return c.p, nil
}

// resolve returns the slot of a variable, innermost binding first.
func (c *ccomp) resolve(name string) (int, bool) {
	for i := len(c.scope) - 1; i >= 0; i-- {
		if c.scope[i].name == name {
			return c.scope[i].slot, true
		}
	}
	return 0, false
}

func (c *ccomp) internConst(name string) int {
	if i, ok := c.consts[name]; ok {
		return i
	}
	i := len(c.p.constNames)
	c.consts[name] = i
	c.p.constNames = append(c.p.constNames, name)
	return i
}

func (c *ccomp) internRel(name string, arity int) int {
	if i, ok := c.rels[name]; ok {
		return i
	}
	i := len(c.p.relNames)
	c.rels[name] = i
	c.p.relNames = append(c.p.relNames, name)
	c.p.relArity = append(c.p.relArity, arity)
	return i
}

func (c *ccomp) newScratch(n int) int {
	c.p.scratchLen = append(c.p.scratchLen, n)
	return len(c.p.scratchLen) - 1
}

// compileTerm lowers a term to a closure.
func (c *ccomp) compileTerm(t logic.Term) (termFn, error) {
	switch t.Kind {
	case logic.TVar:
		slot, ok := c.resolve(t.Name)
		if !ok {
			// The generic evaluator would report the same unbound variable
			// at runtime; refuse at compile time and let it.
			return nil, fmt.Errorf("plan: unbound variable %q", t.Name)
		}
		return func(e *env) (domain.Value, error) { return e.slots[slot], nil }, nil
	case logic.TConst:
		id := c.internConst(t.Name)
		return func(e *env) (domain.Value, error) { return e.constVal(id) }, nil
	case logic.TApp:
		args := make([]termFn, len(t.Args))
		for i, a := range t.Args {
			fn, err := c.compileTerm(a)
			if err != nil {
				return nil, err
			}
			args[i] = fn
		}
		name := t.Name
		buf := c.newScratch(len(args))
		return func(e *env) (domain.Value, error) {
			vals := e.scratch[buf]
			for i, fn := range args {
				v, err := fn(e)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			return e.dom.Func(name, vals)
		}, nil
	}
	return nil, fmt.Errorf("plan: unknown term kind %d", t.Kind)
}

// compile lowers a formula node at the given EXPLAIN-profile path.
func (c *ccomp) compile(f *logic.Formula, path string) (boolFn, error) {
	switch f.Kind {
	case logic.FTrue:
		return func(*env) (bool, error) { return true, nil }, nil
	case logic.FFalse:
		return func(*env) (bool, error) { return false, nil }, nil

	case logic.FAtom:
		return c.compileAtom(f)

	case logic.FNot:
		sub, err := c.compile(f.Sub[0], childPath(path, 0))
		if err != nil {
			return nil, err
		}
		return func(e *env) (bool, error) {
			v, err := sub(e)
			return !v, err
		}, nil

	case logic.FAnd, logic.FOr:
		order := c.orderChildren(f, path)
		subs := make([]boolFn, len(order))
		for i, idx := range order {
			fn, err := c.compile(f.Sub[idx], childPath(path, idx))
			if err != nil {
				return nil, err
			}
			subs[i] = fn
		}
		if f.Kind == logic.FAnd {
			return func(e *env) (bool, error) {
				for _, fn := range subs {
					v, err := fn(e)
					if err != nil || !v {
						return false, err
					}
				}
				return true, nil
			}, nil
		}
		return func(e *env) (bool, error) {
			for _, fn := range subs {
				v, err := fn(e)
				if err != nil {
					return false, err
				}
				if v {
					return true, nil
				}
			}
			return false, nil
		}, nil

	case logic.FImplies:
		a, err := c.compile(f.Sub[0], childPath(path, 0))
		if err != nil {
			return nil, err
		}
		b, err := c.compile(f.Sub[1], childPath(path, 1))
		if err != nil {
			return nil, err
		}
		return func(e *env) (bool, error) {
			va, err := a(e)
			if err != nil {
				return false, err
			}
			if !va {
				return true, nil
			}
			return b(e)
		}, nil

	case logic.FIff:
		a, err := c.compile(f.Sub[0], childPath(path, 0))
		if err != nil {
			return nil, err
		}
		b, err := c.compile(f.Sub[1], childPath(path, 1))
		if err != nil {
			return nil, err
		}
		return func(e *env) (bool, error) {
			va, err := a(e)
			if err != nil {
				return false, err
			}
			vb, err := b(e)
			return va == vb, err
		}, nil

	case logic.FExists, logic.FForall:
		slot := c.p.nslots
		c.p.nslots++
		c.scope = append(c.scope, scopeBinding{name: f.Var, slot: slot})
		body, err := c.compile(f.Sub[0], childPath(path, 0))
		c.scope = c.scope[:len(c.scope)-1]
		if err != nil {
			return nil, err
		}
		// Existential witnesses narrow to a positive database-atom column;
		// universal quantification must sweep the whole range.
		narrow := -1
		if f.Kind == logic.FExists {
			narrow = c.narrowFor(conjunctsOf(f.Sub[0]), f.Var)
		}
		exists := f.Kind == logic.FExists
		return func(e *env) (bool, error) {
			cands := e.rng
			if narrow >= 0 {
				var err error
				if cands, err = e.narrowVals(narrow); err != nil {
					return false, err
				}
			}
			for _, v := range cands {
				if err := e.poll(); err != nil {
					return false, err
				}
				e.slots[slot] = v
				r, err := body(e)
				if err != nil {
					return false, err
				}
				if r == exists {
					return exists, nil
				}
			}
			return !exists, nil
		}, nil
	}
	return nil, fmt.Errorf("plan: unknown formula kind %d", f.Kind)
}

// compileAtom lowers equality, database-relation, and domain-predicate
// atoms, mirroring domain.EvalQF and query's state interpretation.
func (c *ccomp) compileAtom(f *logic.Formula) (boolFn, error) {
	c.p.nAtoms++
	if f.Pred == logic.EqPred && len(f.Args) == 2 {
		a, err := c.compileTerm(f.Args[0])
		if err != nil {
			return nil, err
		}
		b, err := c.compileTerm(f.Args[1])
		if err != nil {
			return nil, err
		}
		return func(e *env) (bool, error) {
			va, err := a(e)
			if err != nil {
				return false, err
			}
			vb, err := b(e)
			if err != nil {
				return false, err
			}
			return va.Key() == vb.Key(), nil
		}, nil
	}

	args := make([]termFn, len(f.Args))
	for i, t := range f.Args {
		fn, err := c.compileTerm(t)
		if err != nil {
			return nil, err
		}
		args[i] = fn
	}
	buf := c.newScratch(len(args))

	if c.scheme != nil {
		if arity, ok := c.scheme.Relations[f.Pred]; ok {
			if len(f.Args) != arity {
				return nil, fmt.Errorf("plan: relation %s expects %d arguments, got %d", f.Pred, arity, len(f.Args))
			}
			id := c.internRel(f.Pred, arity)
			return func(e *env) (bool, error) {
				rel, err := e.relVal(id)
				if err != nil {
					return false, err
				}
				vals := e.scratch[buf]
				for i, fn := range args {
					v, err := fn(e)
					if err != nil {
						return false, err
					}
					vals[i] = v
				}
				return rel.Has(db.Tuple(vals)), nil
			}, nil
		}
	}

	name := f.Pred
	return func(e *env) (bool, error) {
		vals := e.scratch[buf]
		for i, fn := range args {
			v, err := fn(e)
			if err != nil {
				return false, err
			}
			vals[i] = v
		}
		return e.dom.Pred(name, vals)
	}, nil
}

// childPath extends an EXPLAIN-profile path ("0" → "0.2") using the
// child's position in the original formula, so measured selectivities
// recorded by the profiled evaluator line up regardless of reordering.
func childPath(path string, i int) string {
	return path + "." + strconv.Itoa(i)
}

// conjunctsOf views a formula as its top-level conjuncts.
func conjunctsOf(f *logic.Formula) []*logic.Formula {
	if f.Kind == logic.FAnd {
		return f.Sub
	}
	return []*logic.Formula{f}
}

// narrowFor finds a narrowing for a variable among conjuncts: a database
// atom with the variable as a direct argument bounds the variable to that
// relation's column. Returns an index into p.narrows, or -1. Only atoms
// at the top conjunct level are considered — below a quantifier the name
// could be shadowed, and below a negation or disjunction the atom does
// not bound the variable.
func (c *ccomp) narrowFor(conjuncts []*logic.Formula, v string) int {
	if c.scheme == nil {
		return -1
	}
	for _, g := range conjuncts {
		if g.Kind != logic.FAtom {
			continue
		}
		arity, ok := c.scheme.Relations[g.Pred]
		if !ok || len(g.Args) != arity {
			continue
		}
		for col, t := range g.Args {
			if t.IsVar(v) {
				id := c.internRel(g.Pred, arity)
				c.p.narrows = append(c.p.narrows, narrowSpec{rel: id, col: col})
				c.narrowed++
				return len(c.p.narrows) - 1
			}
		}
	}
	return -1
}

// orderChildren returns the evaluation order for And/Or children: cheap
// and decisive subformulas first. Decisiveness uses the measured
// selectivity at the child's profile path when per-query stats have seen
// a profiled run (And wants likely-false first, Or likely-true first),
// falling back to a static cost estimate. Short-circuit results are
// order-independent on error-free formulas, so reordering preserves
// answers.
func (c *ccomp) orderChildren(f *logic.Formula, path string) []int {
	n := len(f.Sub)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if n < 2 {
		return order
	}
	costs := make([]int64, n)
	score := make([]float64, n)
	for i, s := range f.Sub {
		costs[i] = staticCost(s)
		if sel, ok := c.sel[childPath(path, i)]; ok {
			c.usedMeasured = true
			if f.Kind == logic.FAnd {
				score[i] = sel // low selectivity → fails fast → first
			} else {
				score[i] = 1 - sel // high selectivity → succeeds fast → first
			}
		} else {
			score[i] = 0.5
		}
	}
	// Stable sort by (quantifier-free first, score, cost).
	for i := 1; i < n; i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			qa, qb := hasQuantifier(f.Sub[a]), hasQuantifier(f.Sub[b])
			swap := false
			switch {
			case qa != qb:
				swap = qa
			case score[a] != score[b]:
				swap = score[a] > score[b]
			default:
				swap = costs[a] > costs[b]
			}
			if !swap {
				break
			}
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	for i := range order {
		if order[i] != i {
			c.reordered++
			break
		}
	}
	return order
}

// staticCost estimates evaluation cost: atoms are unit, quantifiers
// multiply by an assumed range.
func staticCost(f *logic.Formula) int64 {
	const assumedRange = 50
	switch f.Kind {
	case logic.FTrue, logic.FFalse:
		return 0
	case logic.FAtom:
		return 1
	case logic.FNot:
		return staticCost(f.Sub[0])
	case logic.FExists, logic.FForall:
		return assumedRange * (1 + staticCost(f.Sub[0]))
	default:
		var sum int64
		for _, s := range f.Sub {
			sum += staticCost(s)
		}
		return sum
	}
}

func hasQuantifier(f *logic.Formula) bool {
	if f.Kind == logic.FExists || f.Kind == logic.FForall {
		return true
	}
	for _, s := range f.Sub {
		if hasQuantifier(s) {
			return true
		}
	}
	return false
}
