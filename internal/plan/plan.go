// Package plan is the query planner: it compiles a formula once into an
// executable plan and caches the plan, so the hot evaluation paths stop
// re-walking the formula tree on every row.
//
// A plan lands in one of three tiers:
//
//   - TierAlgebra — the formula is safe-range in the shape
//     internal/algebra compiles (after the RANF rewriting); the plan is a
//     relational algebra expression evaluated with hash joins. For these
//     formulas the natural-semantics table the algebra computes is the
//     active-domain answer, and — via the translation lemma of §1.1 — also
//     the enumeration answer, so both evaluation modes can serve from it.
//   - TierClosure — the formula is outside the algebra fragment; it is
//     compiled to a tree of closures over a slot-indexed environment
//     (variables become integer slots, constants and relations are
//     resolved once per evaluation at bind time), replacing the generic
//     evaluator's per-node map lookups and kind switches. Semantics are
//     exactly active-domain evaluation.
//   - TierInterp — compilation failed (unknown node kinds, malformed
//     atoms); callers fall back to the generic evaluator.
//
// Plans are compiled against a scheme, not a state: relations are scanned
// at evaluation time, so one cached plan serves every state of its scheme.
// The cache is a bounded LRU keyed by the formula's CanonicalKey — the
// same injective key the decision cache uses — extended with a scheme
// signature and the domain name.
//
// Plan-level optimizations: selection pushdown and join-leaf ordering on
// the algebra tier; conjunct/disjunct ordering (EXPLAIN-measured
// selectivity when qstats has seen the query profiled, a static cost
// heuristic otherwise) and existential quantifier-range narrowing on the
// closure tier.
package plan

import (
	"container/list"
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
	"repro/internal/db"
	"repro/internal/logic"
	"repro/internal/obs"
)

// Cache and compile metrics, exposed on /metrics and in obs snapshots.
var (
	mCacheHits      = obs.NewCounter("plan.cache.hits")
	mCacheMisses    = obs.NewCounter("plan.cache.misses")
	mCacheEvictions = obs.NewCounter("plan.cache.evictions")
	mTierAlgebra    = obs.NewCounter("plan.compile.algebra")
	mTierClosure    = obs.NewCounter("plan.compile.closure")
	mTierInterp     = obs.NewCounter("plan.compile.interp")
	hCompileUS      = obs.NewHistogram("plan.compile.us")
)

func init() {
	obs.SetHelp("plan.cache.hits", "Plan-cache hits: evaluations served by an already-compiled plan.")
	obs.SetHelp("plan.cache.misses", "Plan-cache misses: evaluations that compiled a fresh plan.")
	obs.SetHelp("plan.cache.evictions", "Plans evicted from the bounded LRU plan cache.")
	obs.SetHelp("plan.compile.algebra", "Compilations that landed in the relational-algebra tier.")
	obs.SetHelp("plan.compile.closure", "Compilations that landed in the closure tier.")
	obs.SetHelp("plan.compile.interp", "Compilations that fell back to the generic interpreter.")
}

// enabled is the process-wide toggle (the CLIs' -plan flag). On by
// default: a compiled plan is observationally identical to the generic
// evaluator on complete answers, and the differential suite pins it.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enable turns the planner on (the default).
func Enable() { enabled.Store(true) }

// Disable turns the planner off; evaluators use the generic interpreter.
func Disable() { enabled.Store(false) }

// SetEnabled sets the toggle and returns the previous value, for scoped
// use in tests and benchmarks.
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Enabled reports whether the planner is on.
func Enabled() bool { return enabled.Load() }

// Tier names how a plan executes.
type Tier string

const (
	// TierAlgebra evaluates a compiled relational algebra expression.
	TierAlgebra Tier = "algebra"
	// TierClosure evaluates a closure-compiled active-domain program.
	TierClosure Tier = "closure"
	// TierInterp marks a plan that could not be compiled; callers use the
	// generic evaluator.
	TierInterp Tier = "interp"
)

// Plan is one compiled query. Plans are immutable after compilation and
// safe for concurrent evaluation.
type Plan struct {
	tier Tier
	// vars are the formula's free variables, sorted (the row order of
	// every evaluation result).
	vars []string
	// alg is the optimized algebra expression (TierAlgebra only).
	alg algebra.Expr
	// prog is the closure program (TierClosure only).
	prog *prog
	// reason says why the plan fell back a tier, for EXPLAIN text.
	reason string
	// notes lists the optimizations applied, for EXPLAIN text.
	notes []string
}

// Tier returns the plan's execution tier.
func (p *Plan) Tier() Tier { return p.tier }

// Vars returns the free variables (sorted) the plan's rows are ordered by.
func (p *Plan) Vars() []string { return p.vars }

// Text renders the plan for EXPLAIN surfaces: one "plan:" header line
// with the tier, then the compiled form and the optimization notes.
func (p *Plan) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: tier=%s vars=[%s]", p.tier, strings.Join(p.vars, ","))
	if p.reason != "" {
		fmt.Fprintf(&b, " (%s)", p.reason)
	}
	b.WriteByte('\n')
	switch p.tier {
	case TierAlgebra:
		fmt.Fprintf(&b, "  algebra: %s\n", p.alg.String())
	case TierClosure:
		fmt.Fprintf(&b, "  closure: %s\n", p.prog.describe())
	case TierInterp:
		b.WriteString("  interp: generic evaluator\n")
	}
	if len(p.notes) > 0 {
		fmt.Fprintf(&b, "  opts: %s\n", strings.Join(p.notes, "; "))
	}
	return b.String()
}

// DefaultCacheCapacity bounds the plan cache: plans are small (an
// expression tree plus closures), and the working set of distinct query
// shapes is far below this in every workload the repo benchmarks.
const DefaultCacheCapacity = 512

// cache is the process-wide bounded LRU of compiled plans.
var cache = struct {
	mu    sync.Mutex
	order *list.List // front = most recently used
	byKey map[string]*list.Element
}{order: list.New(), byKey: map[string]*list.Element{}}

type cacheEntry struct {
	key  string
	plan *Plan
}

// CacheStats returns the current plan-cache size (the obs counters carry
// hits/misses/evictions).
func CacheStats() (size int) {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	return cache.order.Len()
}

// resetCache empties the plan cache; tests use it to force recompiles.
func resetCache() {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	cache.order.Init()
	cache.byKey = map[string]*list.Element{}
}

// schemeSig is a deterministic signature of a scheme: relation names with
// arities plus constant names, sorted. Two states of equal schemes share
// plans; a scheme change (different arity, new relation) changes the key.
func schemeSig(scheme *db.Scheme) string {
	if scheme == nil {
		return ""
	}
	rels := make([]string, 0, len(scheme.Relations))
	for name, arity := range scheme.Relations {
		rels = append(rels, fmt.Sprintf("%s/%d", name, arity))
	}
	sort.Strings(rels)
	consts := append([]string(nil), scheme.Constants...)
	sort.Strings(consts)
	return strings.Join(rels, ",") + "|" + strings.Join(consts, ",")
}

// For returns the plan for a formula over a scheme and domain, compiling
// and caching on first sight. The key parameter is the formula's
// CanonicalKey when the caller has already computed one ("" recomputes) —
// the same key deccache and qstats use, so one identifier names the query
// across every subsystem. For never fails: formulas outside every
// compilable fragment return a TierInterp plan.
func For(ctx context.Context, scheme *db.Scheme, domainName, key string, f *logic.Formula) *Plan {
	if key == "" {
		key = f.CanonicalKey()
	}
	full := key + "\x1f" + schemeSig(scheme) + "\x1f" + domainName

	cache.mu.Lock()
	if el, ok := cache.byKey[full]; ok {
		cache.order.MoveToFront(el)
		p := el.Value.(*cacheEntry).plan
		cache.mu.Unlock()
		mCacheHits.Inc()
		if t := TallyFrom(ctx); t != nil {
			t.Hits.Add(1)
			t.setTier(p.tier)
		}
		return p
	}
	cache.mu.Unlock()
	mCacheMisses.Inc()

	_, sp := obs.StartSpanCtx(ctx, "plan.compile")
	t0 := time.Now()
	p := compile(scheme, key, f)
	hCompileUS.Observe(time.Since(t0).Microseconds())
	sp.ArgStr("tier", string(p.tier))
	sp.End()
	switch p.tier {
	case TierAlgebra:
		mTierAlgebra.Inc()
	case TierClosure:
		mTierClosure.Inc()
	default:
		mTierInterp.Inc()
	}
	if t := TallyFrom(ctx); t != nil {
		t.Misses.Add(1)
		t.setTier(p.tier)
	}

	cache.mu.Lock()
	if _, ok := cache.byKey[full]; !ok {
		cache.byKey[full] = cache.order.PushFront(&cacheEntry{key: full, plan: p})
		if cache.order.Len() > DefaultCacheCapacity {
			oldest := cache.order.Back()
			cache.order.Remove(oldest)
			delete(cache.byKey, oldest.Value.(*cacheEntry).key)
			mCacheEvictions.Inc()
		}
	}
	cache.mu.Unlock()
	return p
}

// compile lowers a formula into the best available tier.
func compile(scheme *db.Scheme, key string, f *logic.Formula) *Plan {
	vars := f.FreeVars()
	p := &Plan{vars: vars}

	// Algebra tier: the RANF-widened safe-range compiler, provided the
	// compiled columns are exactly the free variables (the compiler can
	// drop a variable the formula never ranges — e.g. a vacuous
	// quantifier — in which case the natural and active answers can
	// differ in shape and the closure tier is the honest choice).
	if scheme != nil {
		if e, err := algebra.CompileRANF(scheme, f); err == nil && sameColSet(e.Columns(), vars) {
			opt, notes := optimizeAlgebra(e)
			p.tier = TierAlgebra
			p.alg = opt
			p.notes = notes
			return p
		} else if err != nil {
			p.reason = trimReason(err.Error())
		} else {
			p.reason = "compiled columns differ from free variables"
		}
	}

	// Closure tier: compiles every formula the generic evaluator accepts.
	pr, err := compileClosure(scheme, key, f)
	if err == nil {
		p.tier = TierClosure
		p.prog = pr
		p.notes = pr.notes
		return p
	}
	p.tier = TierInterp
	p.reason = trimReason(err.Error())
	return p
}

// trimReason bounds a fallback reason for display.
func trimReason(s string) string {
	const max = 160
	if len(s) > max {
		return s[:max] + "…"
	}
	return s
}

func sameColSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]bool, len(a))
	for _, c := range a {
		set[c] = true
	}
	for _, c := range b {
		if !set[c] {
			return false
		}
	}
	return true
}
