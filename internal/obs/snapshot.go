package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime/debug"
	"sort"
)

// BuildInfo is the binary's identity, read once from the embedded Go build
// metadata.
type BuildInfo struct {
	// Version is the main module version ("(devel)" for source builds).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// VCSRevision and VCSTime identify the commit, when stamped.
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	// Modified reports uncommitted changes at build time.
	Modified bool `json:"vcs_modified,omitempty"`
}

// Build returns the binary's build information.
func Build() BuildInfo {
	out := BuildInfo{Version: "(devel)"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	if bi.Main.Version != "" {
		out.Version = bi.Main.Version
	}
	out.GoVersion = bi.GoVersion
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out.VCSRevision = s.Value
		case "vcs.time":
			out.VCSTime = s.Value
		case "vcs.modified":
			out.Modified = s.Value == "true"
		}
	}
	return out
}

// Snapshot is a point-in-time view of every registered metric. Maps
// marshal with sorted keys, so the same metric state always produces the
// same JSON bytes.
type Snapshot struct {
	Enabled    bool                `json:"enabled"`
	Build      BuildInfo           `json:"build"`
	Counters   map[string]int64    `json:"counters,omitempty"`
	Gauges     map[string]int64    `json:"gauges,omitempty"`
	Histograms map[string]HistView `json:"histograms,omitempty"`
	Spans      map[string]SpanView `json:"spans,omitempty"`
}

// Take captures the current value of every registered metric. Metrics that
// have never recorded anything are included with zero values, so the key
// set is stable from the moment the instrumented packages initialize.
func Take() Snapshot {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	s := Snapshot{Enabled: enabled.Load(), Build: Build()}
	if len(registry.counters) > 0 {
		s.Counters = make(map[string]int64, len(registry.counters))
		for name, c := range registry.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(registry.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(registry.gauges))
		for name, g := range registry.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(registry.hists) > 0 {
		s.Histograms = make(map[string]HistView, len(registry.hists))
		for name, h := range registry.hists {
			s.Histograms[name] = h.view()
		}
	}
	if len(registry.spans) > 0 {
		s.Spans = make(map[string]SpanView, len(registry.spans))
		for name, sp := range registry.spans {
			s.Spans[name] = sp.view()
		}
	}
	return s
}

// JSON marshals the snapshot with indentation and sorted keys.
func (s Snapshot) JSON() []byte {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Snapshot is plain data; marshaling cannot fail.
		panic(fmt.Sprintf("obs: marshal snapshot: %v", err))
	}
	return out
}

// WriteSummary prints the non-zero metrics in a compact fixed-order text
// form — the CLIs' exit report. It prints nothing when every metric is
// zero (for example when observation was off the whole run).
func (s Snapshot) WriteSummary(w io.Writer) {
	var lines []string
	for _, name := range sortedKeys(s.Counters) {
		if v := s.Counters[name]; v != 0 {
			lines = append(lines, fmt.Sprintf("  %-44s %d", name, v))
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if v := s.Gauges[name]; v != 0 {
			lines = append(lines, fmt.Sprintf("  %-44s %d", name, v))
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if h.Count == 0 {
			continue
		}
		lines = append(lines, fmt.Sprintf("  %-44s count=%d mean=%.1f max=%d", name, h.Count, h.Mean, h.Max))
	}
	for _, name := range sortedKeys(s.Spans) {
		sp := s.Spans[name]
		if sp.Count == 0 {
			continue
		}
		lines = append(lines, fmt.Sprintf("  %-44s count=%d total=%dµs max=%dµs", name, sp.Count, sp.TotalUS, sp.MaxUS))
	}
	if len(lines) == 0 {
		return
	}
	fmt.Fprintln(w, "obs metrics:")
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}
