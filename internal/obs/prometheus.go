package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4), derived from the same data as the JSON snapshot:
//
//   - counters and gauges verbatim;
//   - histograms as <name>_bucket{le="..."} cumulative series plus _sum and
//     _count (the power-of-two upper bounds become le labels); buckets with
//     a recorded exemplar carry it in OpenMetrics exemplar syntax
//     (`... # {request_id="..."} value`), which 0.0.4 scrapers treat as
//     ignorable and OpenMetrics scrapers link to traces;
//   - span aggregates as <name>_spans_count / _spans_total_us /
//     _spans_max_us counters, with span labels ({k=v}) mapped to Prometheus
//     labels.
//
// Metric names have non-identifier characters folded to '_'
// ("query.eval.calls" → "query_eval_calls"). Output order is
// deterministic: sections in the order above, names sorted within each.
func (s Snapshot) WritePrometheus(w io.Writer) {
	for _, name := range sortedKeys(s.Counters) {
		n := promName(name)
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", n, helpText(name), n, n, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := promName(name)
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", n, helpText(name), n, n, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		n := promName(name)
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", n, helpText(name), n)
		cum := int64(0)
		for _, b := range sortedBounds(h.Buckets) {
			cum += h.Buckets[b.label]
			if ex, ok := h.Exemplars[b.label]; ok && ex.RequestID != "" {
				// OpenMetrics exemplar syntax: the trailing `# {labels} value`
				// links the bucket to a recent request's trace.
				fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d # {request_id=%q} %d\n",
					n, b.label, cum, ex.RequestID, ex.Value)
				continue
			}
			fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", n, b.label, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n", n, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", n, h.Count)
	}
	typed := map[string]bool{}
	for _, name := range sortedKeys(s.Spans) {
		sp := s.Spans[name]
		base, labels := splitSpanKey(name)
		n := promName(base)
		if !typed[n] {
			typed[n] = true
			fmt.Fprintf(w, "# HELP %s_spans_count %s\n# TYPE %s_spans_count counter\n", n, helpText(base), n)
			fmt.Fprintf(w, "# HELP %s_spans_total_us %s\n# TYPE %s_spans_total_us counter\n", n, helpText(base), n)
			fmt.Fprintf(w, "# HELP %s_spans_max_us %s\n# TYPE %s_spans_max_us gauge\n", n, helpText(base), n)
		}
		fmt.Fprintf(w, "%s_spans_count%s %d\n", n, labels, sp.Count)
		fmt.Fprintf(w, "%s_spans_total_us%s %d\n", n, labels, sp.TotalUS)
		fmt.Fprintf(w, "%s_spans_max_us%s %d\n", n, labels, sp.MaxUS)
	}
}

// helpText returns the metric's help line, escaped per the exposition
// format (backslash and newline are the only characters HELP escapes).
func helpText(name string) string {
	h := helpFor(name)
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// promName folds a dotted metric name into a valid Prometheus identifier.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// splitSpanKey separates a span aggregation key "path{k=v}{k2=v2}" into its
// path and a rendered Prometheus label set ("" when unlabeled).
func splitSpanKey(key string) (base, labels string) {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return key, ""
	}
	base = key[:i]
	var parts []string
	for _, seg := range strings.Split(key[i:], "}") {
		seg = strings.TrimPrefix(seg, "{")
		if seg == "" {
			continue
		}
		k, v, found := strings.Cut(seg, "=")
		if !found {
			k, v = "label", seg
		}
		parts = append(parts, fmt.Sprintf("%s=%q", promName(k), v))
	}
	if len(parts) == 0 {
		return base, ""
	}
	return base, "{" + strings.Join(parts, ",") + "}"
}

// boundEntry pairs a histogram bucket label with its numeric value for
// sorting.
type boundEntry struct {
	label string
	value uint64
}

// sortedBounds orders the histogram bucket labels numerically.
func sortedBounds(buckets map[string]int64) []boundEntry {
	out := make([]boundEntry, 0, len(buckets))
	for label := range buckets {
		v, err := strconv.ParseUint(label, 10, 64)
		if err != nil {
			v = 0
		}
		out = append(out, boundEntry{label: label, value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].value < out[j].value })
	return out
}
