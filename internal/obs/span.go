package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs/logctx"
	"repro/internal/obs/trace"
	"repro/internal/obs/tracectx"
)

// spanStat aggregates all finished spans sharing one aggregation key: a
// duration histogram in microseconds plus a count of currently-open spans
// (tracked on the unlabeled path, since labels may be added mid-span).
type spanStat struct {
	hist Histogram
	open atomic.Int64
}

// Span is one timed region of a computation. Spans nest by path: a child
// span's path is "parent/child", and the per-path statistics aggregate
// every execution of that region. StartSpan returns nil when observation
// is off and every method tolerates a nil receiver, so call sites never
// branch on the toggle.
//
// When the flight recorder is armed (internal/obs/trace), every span also
// emits a begin/end event pair carrying any Arg key=values. If the context
// additionally carries a distributed trace position (internal/obs/tracectx),
// StartSpanCtx mints a W3C child span ID for the region, so the recorded
// events form a real tree — TraceID/SpanID/ParentID — instead of a flat
// stream, and the same call sites feed the aggregate histograms, the
// per-execution timeline, and the cross-process trace.
type Span struct {
	path   string
	labels string
	start  time.Time
	// tid is the trace goroutine id captured at start when the recorder
	// was armed; 0 means no trace events for this span.
	tid int64
	// rec is the recorder the begin event went to (and the end event must
	// go to); nil when tid is 0.
	rec   *trace.Recorder
	ident trace.Ident
	args  []trace.Arg
}

// spanCache gives spanStatFor a lock-free hit path; the registry map
// behind it is the source of truth for snapshots.
var spanCache sync.Map // key -> *spanStat

func spanStatFor(key string) *spanStat {
	if s, ok := spanCache.Load(key); ok {
		return s.(*spanStat)
	}
	registry.mu.Lock()
	s, ok := registry.spans[key]
	if !ok {
		s = &spanStat{}
		registry.spans[key] = s
	}
	registry.mu.Unlock()
	spanCache.Store(key, s)
	return s
}

// StartSpan opens a span. Labels are "key=value" strings folded into the
// duration-aggregation key. Returns nil when observation is off.
func StartSpan(path string, labels ...string) *Span {
	return startSpan(trace.Default(), trace.Ident{}, path, nil, labels)
}

// StartSpanCtx is StartSpan for request-scoped code, and the point where a
// span acquires identity. Events go to the recorder carried by ctx
// (trace.WithRecorder; the process default otherwise). When that recorder
// is armed:
//
//   - a request ID on ctx (logctx.WithRequestID) is attached to the begin
//     and end events as a "req" argument, and
//   - a trace position on ctx (tracectx.With) mints a fresh W3C child span
//     ID for this region — the events carry TraceID/SpanID/ParentID, and
//     the returned context carries the child position so spans opened
//     beneath it (and outbound requests made with it) become children.
//
// The returned context is ctx itself whenever there is nothing to thread
// through. Without a request ID or trace position (or with tracing
// disarmed) the span behaves exactly like StartSpan.
func StartSpanCtx(ctx context.Context, path string, labels ...string) (context.Context, *Span) {
	if !enabled.Load() {
		return ctx, nil
	}
	rec := trace.FromContext(ctx)
	var beginArgs []trace.Arg
	var ident trace.Ident
	if rec.Armed() {
		if id := logctx.RequestID(ctx); id != "" {
			beginArgs = []trace.Arg{trace.Str("req", id)}
		}
		if tc, ok := tracectx.From(ctx); ok {
			child := tc.Child()
			ident = trace.Ident{
				Trace:  child.TraceID.String(),
				Span:   child.SpanID.String(),
				Parent: tc.SpanID.String(),
			}
			ctx = tracectx.With(ctx, child)
		}
	}
	return ctx, startSpan(rec, ident, path, beginArgs, labels)
}

// startSpan is the shared implementation: beginArgs (the request ID, when
// present) go on the trace begin event and are copied onto the end event.
func startSpan(rec *trace.Recorder, ident trace.Ident, path string, beginArgs []trace.Arg, labels []string) *Span {
	if !enabled.Load() {
		return nil
	}
	sp := &Span{path: path, start: time.Now()}
	for _, l := range labels {
		sp.labels += "{" + l + "}"
	}
	if rec.Armed() {
		sp.tid = rec.Begin(path, "span", ident, beginArgs...)
		sp.rec = rec
		sp.ident = ident
		sp.args = append(sp.args, beginArgs...)
	}
	spanStatFor(path).open.Add(1)
	return sp
}

// Child opens a sub-span whose path extends the receiver's. When the
// receiver has a trace identity, the child gets a freshly minted span ID
// with the receiver as parent, keeping the recorded tree honest for
// fan-out that doesn't thread a context (per-row spans, workers). On a nil
// receiver (observation off) it returns nil.
func (s *Span) Child(name string, labels ...string) *Span {
	if s == nil {
		return nil
	}
	rec := s.rec
	if rec == nil {
		rec = trace.Default()
	}
	var ident trace.Ident
	if s.ident.Span != "" {
		ident = trace.Ident{
			Trace:  s.ident.Trace,
			Span:   tracectx.NewSpanID().String(),
			Parent: s.ident.Span,
		}
	}
	return startSpan(rec, ident, s.path+"/"+name, nil, labels)
}

// Label adds a "key=value" label to the span's duration-aggregation key.
// Call before End; on a nil receiver it is a no-op.
func (s *Span) Label(kv string) {
	if s == nil {
		return
	}
	s.labels += "{" + kv + "}"
}

// Traced reports whether the span is feeding the flight recorder; use it
// to guard Arg values that are themselves costly to compute.
func (s *Span) Traced() bool { return s != nil && s.tid != 0 }

// TraceID returns the span's distributed trace ID in lowercase hex (""
// when the span has no identity). Nil-safe.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.ident.Trace
}

// SpanID returns the span's distributed span ID in lowercase hex (""
// when the span has no identity). Nil-safe.
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.ident.Span
}

// Arg attaches an integer key=value to the span's trace end event. It is
// recorded only while the flight recorder is armed (and is a no-op — no
// allocation — otherwise); aggregation keys are unaffected, unlike Label.
func (s *Span) Arg(key string, v int64) {
	if s == nil || s.tid == 0 {
		return
	}
	s.args = append(s.args, trace.I64(key, v))
}

// ArgStr attaches a string key=value to the span's trace end event.
func (s *Span) ArgStr(key, v string) {
	if s == nil || s.tid == 0 {
		return
	}
	s.args = append(s.args, trace.Str(key, v))
}

// End closes the span, recording its wall-clock duration (µs) under its
// path plus labels. No-op on a nil receiver.
func (s *Span) End() {
	if s == nil {
		return
	}
	if s.tid != 0 {
		s.rec.End(s.path, "span", s.tid, s.start, s.ident, s.args...)
	}
	spanStatFor(s.path).open.Add(-1)
	spanStatFor(s.path + s.labels).hist.observe(time.Since(s.start).Microseconds())
}

// SpanView is a span aggregate rendered for a snapshot.
type SpanView struct {
	Count   int64 `json:"count"`
	TotalUS int64 `json:"total_us"`
	MaxUS   int64 `json:"max_us"`
	Open    int64 `json:"open,omitempty"`
}

func (s *spanStat) view() SpanView {
	return SpanView{
		Count:   s.hist.count.Load(),
		TotalUS: s.hist.sum.Load(),
		MaxUS:   s.hist.max.Load(),
		Open:    s.open.Load(),
	}
}
