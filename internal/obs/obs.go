// Package obs is the zero-dependency observability layer: atomic counters,
// gauges, and power-of-two histograms, lightweight hierarchical spans, a
// deterministic JSON snapshot, and an optional expvar + pprof debug server.
//
// Every algorithm the paper makes executable has wildly input-dependent
// cost — quantifier elimination can blow up doubly exponentially, the §1.1
// enumeration is budget-capped, and the Theorem 3.3 reduction runs Turing
// machines step by step — so the hot paths (query evaluation, the
// eliminators, the automata engine, the machine simulator, the safety
// deciders) report through this package.
//
// Metrics are created once at package init of the instrumented package and
// are goroutine-safe. A package-level toggle (Enable/Disable) reduces every
// recording call to a single atomic load when observation is off, so
// instrumented code pays ~ns when disabled and a few atomic adds when
// enabled.
package obs

import (
	"context"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs/logctx"
)

// enabled is the package-level toggle. Observation is on by default; the
// recording fast path is a single atomic load when it is off.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enable turns observation on (the default).
func Enable() { enabled.Store(true) }

// Disable turns observation off; recording calls become near-free no-ops.
func Disable() { enabled.Store(false) }

// SetEnabled sets the toggle and returns the previous value, for scoped
// use in tests and benchmarks.
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Enabled reports whether observation is on.
func Enabled() bool { return enabled.Load() }

// registry holds every metric ever created, keyed by name. Creation is
// rare (package init) and locked; recording touches only the metric's own
// atomics.
var registry = struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    map[string]*spanStat
	helps    map[string]string
}{
	counters: map[string]*Counter{},
	gauges:   map[string]*Gauge{},
	hists:    map[string]*Histogram{},
	spans:    map[string]*spanStat{},
	helps:    map[string]string{},
}

// SetHelp registers a one-line description for a metric name, emitted as
// the # HELP line of the Prometheus exposition. Metrics without registered
// help get their dotted name as the help text.
func SetHelp(name, help string) {
	registry.mu.Lock()
	registry.helps[name] = help
	registry.mu.Unlock()
}

// helpFor returns the registered help text for a metric, defaulting to the
// metric's own dotted name (so every family always has a HELP line).
func helpFor(name string) string {
	registry.mu.Lock()
	h, ok := registry.helps[name]
	registry.mu.Unlock()
	if !ok || h == "" {
		return name
	}
	return h
}

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns the counter registered under name, creating it if
// needed. Safe to call from multiple packages for the same name.
func NewCounter(name string) *Counter {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if c, ok := registry.counters[name]; ok {
		return c
	}
	c := &Counter{}
	registry.counters[name] = c
	return c
}

// Add increments the counter by n (no-op when observation is off).
func (c *Counter) Add(n int64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value (or running-maximum) measurement.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns the gauge registered under name, creating it if needed.
func NewGauge(name string) *Gauge {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if g, ok := registry.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	registry.gauges[name] = g
	return g
}

// Set records the current value.
func (g *Gauge) Set(n int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(n)
}

// SetMax raises the gauge to n if n exceeds the current value.
func (g *Gauge) SetMax(n int64) {
	if !enabled.Load() {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the bucket count: bucket i holds observations v with
// bits.Len64(v) == i, i.e. 2^(i-1) ≤ v < 2^i, with bucket 0 for v ≤ 0.
const histBuckets = 65

// NumBuckets is the histogram bucket count, exported so other aggregators
// (the qstats registry) can share the bucket scheme.
const NumBuckets = histBuckets

// BucketIndex returns the bucket an observation falls into: 0 for v ≤ 0,
// else bits.Len64(v) (so bucket i holds 2^(i-1) ≤ v < 2^i).
func BucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketLabel is the inclusive upper bound of bucket i as a decimal
// string ("0" for the non-positive bucket) — the le label of the
// Prometheus exposition and the bucket key of JSON snapshots.
func BucketLabel(i int) string { return bucketLabel(i) }

// BucketUpper is the inclusive upper bound of the bucket v falls into:
// the smallest threshold the histogram can actually resolve at or above
// v. SLO latency thresholds round up through this, so "good" is exactly
// the observations CountUnder can count. v ≤ 0 maps to 0; values in the
// top bucket saturate at MaxInt64.
func BucketUpper(v int64) int64 {
	i := BucketIndex(v)
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxInt64
	}
	return int64(uint64(1)<<uint(i)) - 1
}

// CountUnder returns how many observations landed in buckets whose upper
// bound is ≤ BucketUpper(v) — i.e. observations known to be ≤ the
// bucket-rounded threshold. The count is a sum of per-bucket atomics, so
// it is consistent to within concurrent observations.
func (h *Histogram) CountUnder(v int64) int64 {
	top := BucketIndex(v)
	var n int64
	for i := 0; i <= top && i < histBuckets; i++ {
		n += h.buckets[i].Load()
	}
	return n
}

// Exemplar links a histogram bucket to a recent trace: the request ID of
// the most recent exemplar-bearing observation that landed in the bucket,
// and its observed value. Emitted in OpenMetrics exemplar syntax from the
// Prometheus endpoint, so a scraper can jump from a latency bucket
// straight to /debug/slow?id=<request_id>.
type Exemplar struct {
	RequestID string `json:"request_id"`
	Value     int64  `json:"value"`
}

// Histogram aggregates a size or latency distribution into power-of-two
// buckets. It records count, sum, and max exactly; the buckets give the
// shape. All fields are atomics, so concurrent observations never lock.
type Histogram struct {
	count     atomic.Int64
	sum       atomic.Int64
	max       atomic.Int64
	buckets   [histBuckets]atomic.Int64
	exemplars [histBuckets]atomic.Pointer[Exemplar]
}

// NewHistogram returns the histogram registered under name, creating it if
// needed.
func NewHistogram(name string) *Histogram {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if h, ok := registry.hists[name]; ok {
		return h
	}
	h := &Histogram{}
	registry.hists[name] = h
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	h.observe(v)
}

// observe is Observe without the toggle check, for callers that already
// checked (the span recorder).
func (h *Histogram) observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i].Add(1)
}

// ObserveExemplar records one value and stamps its bucket's exemplar with
// the given request ID (last writer wins — the exemplar is "a recent
// request that landed here", not a reservoir). An empty requestID records
// plainly.
func (h *Histogram) ObserveExemplar(v int64, requestID string) {
	if !enabled.Load() {
		return
	}
	h.observe(v)
	if requestID == "" {
		return
	}
	h.exemplars[BucketIndex(v)].Store(&Exemplar{RequestID: requestID, Value: v})
}

// ObserveCtx records one value, using the context's request ID (logctx)
// as the bucket exemplar when present.
func (h *Histogram) ObserveCtx(ctx context.Context, v int64) {
	h.ObserveExemplar(v, logctx.RequestID(ctx))
}

// ExemplarFor returns the bucket exemplar for bucket i, or nil.
func (h *Histogram) ExemplarFor(i int) *Exemplar {
	if i < 0 || i >= histBuckets {
		return nil
	}
	return h.exemplars[i].Load()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the maximum observation (0 before any observation).
func (h *Histogram) Max() int64 { return h.max.Load() }

// HistView is a histogram rendered for a snapshot. Buckets maps the
// bucket's inclusive upper bound (as a decimal string, "0" for the
// non-positive bucket) to its count; empty buckets are omitted.
type HistView struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Max     int64            `json:"max"`
	Mean    float64          `json:"mean"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
	// Exemplars maps a bucket label to the most recent request that landed
	// in the bucket, when any observation carried a request ID.
	Exemplars map[string]Exemplar `json:"exemplars,omitempty"`
}

// view renders the histogram.
func (h *Histogram) view() HistView {
	v := HistView{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	if v.Count > 0 {
		v.Mean = float64(v.Sum) / float64(v.Count)
	}
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if v.Buckets == nil {
			v.Buckets = map[string]int64{}
		}
		v.Buckets[bucketLabel(i)] = n
		if ex := h.exemplars[i].Load(); ex != nil {
			if v.Exemplars == nil {
				v.Exemplars = map[string]Exemplar{}
			}
			v.Exemplars[bucketLabel(i)] = *ex
		}
	}
	return v
}

// bucketLabel is the inclusive upper bound of bucket i as a string.
func bucketLabel(i int) string {
	if i == 0 {
		return "0"
	}
	// Upper bound 2^i − 1; render exactly for all 64 buckets via uint64.
	hi := uint64(1)<<uint(i) - 1
	if i == 64 {
		hi = ^uint64(0)
	}
	return u64str(hi)
}

func u64str(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Reset zeroes every registered metric and span statistic. For tests and
// the benchmark harness; metrics stay registered.
func Reset() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, c := range registry.counters {
		c.v.Store(0)
	}
	for _, g := range registry.gauges {
		g.v.Store(0)
	}
	for _, h := range registry.hists {
		h.count.Store(0)
		h.sum.Store(0)
		h.max.Store(0)
		for i := range h.buckets {
			h.buckets[i].Store(0)
			h.exemplars[i].Store(nil)
		}
	}
	for _, s := range registry.spans {
		s.hist.count.Store(0)
		s.hist.sum.Store(0)
		s.hist.max.Store(0)
		for i := range s.hist.buckets {
			s.hist.buckets[i].Store(0)
		}
	}
}

// sortedKeys returns the sorted key set of a metric map.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
