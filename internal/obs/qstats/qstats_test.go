package qstats

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
)

func sampleFor(key string, latUS int64) Sample {
	return Sample{
		Key: key, Domain: "eq", Mode: "active", Query: "Q(" + key + ")",
		LatencyUS: latUS, Rows: 2, CacheHits: 3, CacheMisses: 1,
		Nodes: []NodeSample{
			{Path: "0", Op: "∃y", Evals: 8, True: 2, Range: 8},
			{Path: "0.0", Op: "F(x, y)", Evals: 8, True: 2},
		},
	}
}

func TestRecordAggregates(t *testing.T) {
	r := New(0)
	r.Record(sampleFor("k1", 100))
	r.Record(sampleFor("k1", 300))
	r.Record(Sample{Key: "k1", Stopped: "budget", LatencyUS: 50})

	snap := r.Take()
	if len(snap.Entries) != 1 {
		t.Fatalf("entries: want 1, got %d", len(snap.Entries))
	}
	e := snap.Entries[0]
	if e.Key != "k1" || e.Evals != 3 || e.Rows != 4 {
		t.Fatalf("entry: %+v", e)
	}
	if e.Latency.Count != 3 || e.Latency.Sum != 450 || e.Latency.Max != 300 {
		t.Fatalf("latency: %+v", e.Latency)
	}
	if e.Stopped["complete"] != 2 || e.Stopped["budget"] != 1 {
		t.Fatalf("stopped: %v", e.Stopped)
	}
	if e.CacheHits != 6 || e.CacheMisses != 2 {
		t.Fatalf("cache: hits=%d misses=%d", e.CacheHits, e.CacheMisses)
	}
	// Root selectivity comes from the profile root: 4 true of 16 evals.
	if e.Selectivity != 0.25 {
		t.Fatalf("selectivity: want 0.25, got %v", e.Selectivity)
	}
	if len(e.Nodes) != 2 || e.Nodes[0].Path != "0" || e.Nodes[1].Path != "0.0" {
		t.Fatalf("nodes: %+v", e.Nodes)
	}
	root := e.Nodes[0]
	if root.Evals != 16 || root.True != 4 || root.RangeMin != 8 || root.RangeMax != 8 || root.RangeMean != 8 {
		t.Fatalf("root node: %+v", root)
	}
}

// TestMergeInvariants checks the aggregate invariants the snapshot
// promises: per-node True <= Evals, the latency histogram's bucket counts
// sum to its count, and the count equals the eval count (one latency
// observation per recorded eval).
func TestMergeInvariants(t *testing.T) {
	r := New(0)
	for i := 0; i < 200; i++ {
		s := sampleFor(fmt.Sprintf("k%d", i%7), int64(i*13%4096))
		s.Nodes[0].True = int64(i % 3)
		r.Record(s)
	}
	for _, e := range r.Take().Entries {
		if e.Latency.Count != e.Evals {
			t.Fatalf("%s: latency count %d != evals %d", e.Key, e.Latency.Count, e.Evals)
		}
		var bucketSum int64
		for _, n := range e.Latency.Buckets {
			bucketSum += n
		}
		if bucketSum != e.Latency.Count {
			t.Fatalf("%s: buckets sum %d != count %d", e.Key, bucketSum, e.Latency.Count)
		}
		for _, n := range e.Nodes {
			if n.True > n.Evals {
				t.Fatalf("%s node %s: true %d > evals %d", e.Key, n.Path, n.True, n.Evals)
			}
			if n.Selectivity < 0 || n.Selectivity > 1 {
				t.Fatalf("%s node %s: selectivity %v out of range", e.Key, n.Path, n.Selectivity)
			}
		}
	}
}

// TestAllocDimension: sampled allocation deltas aggregate, unsampled runs
// contribute nothing, the mean divides by the sampled count only, and the
// allocs TopK order and import merge see the dimension.
func TestAllocDimension(t *testing.T) {
	r := New(0)
	r.Record(Sample{Key: "ka", LatencyUS: 10, AllocBytes: 4096, AllocObjects: 10, AllocSampled: true})
	r.Record(Sample{Key: "ka", LatencyUS: 10, AllocBytes: 2048, AllocObjects: 6, AllocSampled: true})
	// An unsampled (concurrent) run: alloc numbers must be ignored.
	r.Record(Sample{Key: "ka", LatencyUS: 10, AllocBytes: 999999, AllocObjects: 999})
	r.Record(Sample{Key: "kb", LatencyUS: 10, AllocBytes: 100, AllocObjects: 1, AllocSampled: true})

	snap := r.Take()
	var ka, kb EntryView
	for _, e := range snap.Entries {
		switch e.Key {
		case "ka":
			ka = e
		case "kb":
			kb = e
		}
	}
	if ka.AllocBytes != 6144 || ka.AllocObjects != 16 || ka.AllocSamples != 2 {
		t.Fatalf("ka alloc aggregates: %+v", ka)
	}
	if ka.MeanAllocBytes != 3072 {
		t.Fatalf("ka mean alloc: %v, want 3072", ka.MeanAllocBytes)
	}
	if kb.AllocBytes != 100 || kb.AllocSamples != 1 {
		t.Fatalf("kb alloc aggregates: %+v", kb)
	}

	byAllocs, err := r.TopK(ByAllocs, 2)
	if err != nil || len(byAllocs) != 2 || byAllocs[0].Key != "ka" {
		t.Fatalf("by allocs: %v %+v", err, byAllocs)
	}

	// Import merges the dimension losslessly.
	r2 := New(0)
	r2.Import(snap)
	r2.Import(snap)
	e2, err := r2.TopK(ByAllocs, 1)
	if err != nil || e2[0].AllocBytes != 12288 || e2[0].AllocSamples != 4 {
		t.Fatalf("imported alloc aggregates: %v %+v", err, e2)
	}
	if e2[0].MeanAllocBytes != 3072 {
		t.Fatalf("imported mean alloc: %v", e2[0].MeanAllocBytes)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() *Registry {
		r := New(0)
		for i := 0; i < 20; i++ {
			r.Record(sampleFor(fmt.Sprintf("k%d", i), int64(i*100)))
		}
		return r
	}
	a, b := build().JSON(), build().JSON()
	if !bytes.Equal(a, b) {
		t.Fatal("identical record sequences produced different snapshots")
	}
}

func TestTopKOrders(t *testing.T) {
	r := New(0)
	// k0: slow and selective; k1: fast, frequent; k2: unselective.
	r.Record(Sample{Key: "k0", LatencyUS: 1000, Nodes: []NodeSample{{Path: "0", Op: "∃", Evals: 10, True: 9}}})
	for i := 0; i < 5; i++ {
		r.Record(Sample{Key: "k1", LatencyUS: 10, Rows: 2})
	}
	r.Record(Sample{Key: "k2", LatencyUS: 100, Nodes: []NodeSample{{Path: "0", Op: "∃", Evals: 10, True: 1}}})

	byLat, err := r.TopK(ByLatency, 2)
	if err != nil || len(byLat) != 2 || byLat[0].Key != "k0" {
		t.Fatalf("by latency: %v %+v", err, byLat)
	}
	byCount, err := r.TopK(ByCount, 1)
	if err != nil || len(byCount) != 1 || byCount[0].Key != "k1" {
		t.Fatalf("by count: %v %+v", err, byCount)
	}
	bySel, err := r.TopK(BySelectivity, 3)
	if err != nil || bySel[0].Key != "k2" {
		t.Fatalf("by selectivity: %v %+v", err, bySel)
	}
	if _, err := r.TopK("nonsense", 1); err == nil {
		t.Fatal("unknown order accepted")
	}
}

func TestWeightEviction(t *testing.T) {
	// A tiny budget: every shard holds at most ~2 small entries.
	r := New(16 * 1024)
	for i := 0; i < 500; i++ {
		r.Record(sampleFor(fmt.Sprintf("key-%04d", i), 10))
	}
	if r.Evictions() == 0 {
		t.Fatal("no evictions under a tiny weight budget")
	}
	if n := r.Len(); n >= 500 {
		t.Fatalf("registry holds %d entries, bound did not bite", n)
	}
	// The total weight respects the budget (per shard, so the sum does too).
	if w := r.totalWeight(); w > 16*1024 {
		t.Fatalf("total weight %d exceeds budget", w)
	}
}

func TestImportRoundTrip(t *testing.T) {
	src := New(0)
	for i := 0; i < 10; i++ {
		src.Record(sampleFor(fmt.Sprintf("k%d", i), int64(i*50)))
		src.Record(Sample{Key: fmt.Sprintf("k%d", i), Stopped: "deadline", LatencyUS: 5})
	}
	exported := src.JSON()

	dst := New(0)
	if err := dst.ImportJSON(exported); err != nil {
		t.Fatal(err)
	}
	a, b := src.Take(), dst.Take()
	if len(a.Entries) != len(b.Entries) {
		t.Fatalf("entries: %d vs %d", len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		x, y := a.Entries[i], b.Entries[i]
		// Clocks differ across registries; compare the aggregates.
		x.FirstSeen, x.LastSeen, y.FirstSeen, y.LastSeen = 0, 0, 0, 0
		if fmt.Sprintf("%+v", x) != fmt.Sprintf("%+v", y) {
			t.Fatalf("entry %d round-trip mismatch:\n%+v\n%+v", i, x, y)
		}
	}

	// Importing the same snapshot again doubles the counts (merge, not
	// replace).
	if err := dst.ImportJSON(exported); err != nil {
		t.Fatal(err)
	}
	e := dst.Take().Entries[0]
	if e.Evals != 2*a.Entries[0].Evals || e.Latency.Sum != 2*a.Entries[0].Latency.Sum {
		t.Fatalf("second import did not merge: %+v vs %+v", e, a.Entries[0])
	}
	if e.Latency.Max != a.Entries[0].Latency.Max {
		t.Fatalf("max should merge by maximum: %+v", e.Latency)
	}
}

func TestImportJSONRejectsGarbage(t *testing.T) {
	if err := New(0).ImportJSON([]byte("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestConcurrentRecordSnapshotEvict is the -race check: writers, snapshot
// readers, and import all run concurrently against one registry with a
// budget small enough to evict constantly.
func TestConcurrentRecordSnapshotEvict(t *testing.T) {
	r := New(64 * 1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				r.Record(sampleFor(fmt.Sprintf("g%d-k%d", g, i%40), int64(i)))
			}
		}(g)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				snap := r.Take()
				for _, e := range snap.Entries {
					if e.Latency.Count != e.Evals {
						t.Errorf("torn entry: count %d evals %d", e.Latency.Count, e.Evals)
						return
					}
				}
				if _, err := r.TopK(ByLatency, 5); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		donor := New(0)
		donor.Record(sampleFor("imported", 77))
		data := donor.JSON()
		for i := 0; i < 20; i++ {
			if err := r.ImportJSON(data); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if r.Len() == 0 {
		t.Fatal("registry empty after concurrent writes")
	}
}

func TestPackageToggle(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	before := Default().Len()
	Record(sampleFor("toggled-off", 1))
	if Default().Len() != before {
		t.Fatal("Record recorded while disabled")
	}
}

func TestBucketSchemeMatchesObs(t *testing.T) {
	// The registry's latency buckets must stay aligned with the obs
	// histogram scheme, or import and exposition drift apart.
	for _, v := range []int64{0, 1, 2, 3, 4, 1023, 1024, 1 << 40} {
		i := obs.BucketIndex(v)
		if i < 0 || i >= obs.NumBuckets {
			t.Fatalf("BucketIndex(%d) = %d out of range", v, i)
		}
		if lbl := obs.BucketLabel(i); lbl == "" {
			t.Fatalf("empty label for bucket %d", i)
		}
	}
	if obs.BucketIndex(1024) != obs.BucketIndex(2047) || obs.BucketIndex(1023) == obs.BucketIndex(1024) {
		t.Fatal("power-of-two bucket edges misplaced")
	}
}

func TestWriteTable(t *testing.T) {
	r := New(0)
	r.Record(sampleFor("k1", 100))
	entries, err := r.TopK(ByLatency, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteTable(&buf, entries)
	out := buf.String()
	for _, want := range []string{"EVALS", "QUERY", "Q(k1)", "eq: "} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Fatalf("table misses %q:\n%s", want, out)
		}
	}
}
