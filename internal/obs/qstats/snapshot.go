package qstats

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs"
)

// HistJSON is a latency histogram rendered for a snapshot: exact count,
// sum, and max plus the power-of-two buckets keyed by their inclusive
// upper bound in microseconds (the obs bucket scheme).
type HistJSON struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Max     int64            `json:"max"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// NodeView is one formula node's merged EXPLAIN aggregates. Selectivity
// and RangeMean are derived; the raw sums ride along so snapshots merge
// losslessly on import.
type NodeView struct {
	Path        string  `json:"path"`
	Op          string  `json:"op"`
	Evals       int64   `json:"evals"`
	True        int64   `json:"true"`
	Selectivity float64 `json:"selectivity"`
	RangeMin    int64   `json:"range_min,omitempty"`
	RangeMax    int64   `json:"range_max,omitempty"`
	RangeMean   float64 `json:"range_mean,omitempty"`
	RangeSum    int64   `json:"range_sum,omitempty"`
	RangeCount  int64   `json:"range_count,omitempty"`
}

// EntryView is one query's aggregates rendered for a snapshot.
type EntryView struct {
	Key           string           `json:"key"`
	Domain        string           `json:"domain,omitempty"`
	Mode          string           `json:"mode,omitempty"`
	Query         string           `json:"query,omitempty"`
	Evals         int64            `json:"evals"`
	Rows          int64            `json:"rows"`
	Latency       HistJSON         `json:"latency_us"`
	MeanLatencyUS float64          `json:"mean_latency_us"`
	Stopped       map[string]int64 `json:"stopped,omitempty"`
	CacheHits     int64            `json:"cache_hits"`
	CacheMisses   int64            `json:"cache_misses"`
	// Plan is the execution tier the query's compiled plan runs at;
	// PlanHits/PlanMisses count plan-cache traffic for the key.
	Plan       string `json:"plan,omitempty"`
	PlanHits   int64  `json:"plan_hits,omitempty"`
	PlanMisses int64  `json:"plan_misses,omitempty"`
	// AllocBytes and AllocObjects sum the heap-allocation deltas of the
	// AllocSamples evaluations that ran with the alloc meter (serialized
	// runs); MeanAllocBytes = AllocBytes / AllocSamples.
	AllocBytes     int64   `json:"alloc_bytes,omitempty"`
	AllocObjects   int64   `json:"alloc_objects,omitempty"`
	AllocSamples   int64   `json:"alloc_samples,omitempty"`
	MeanAllocBytes float64 `json:"mean_alloc_bytes,omitempty"`
	// Selectivity is the root node's true/evals ratio when profile data
	// exists, else rows/evals clamped to [0,1] as a coarse fallback.
	Selectivity float64    `json:"selectivity"`
	FirstSeen   int64      `json:"first_seen"`
	LastSeen    int64      `json:"last_seen"`
	Nodes       []NodeView `json:"nodes,omitempty"`
}

// Snapshot is a point-in-time view of the registry, entries sorted by key
// so the same registry state always marshals to the same JSON bytes.
type Snapshot struct {
	Enabled   bool        `json:"enabled"`
	Evictions int64       `json:"evictions"`
	Entries   []EntryView `json:"queries"`
}

func (e *entry) view() EntryView {
	v := EntryView{
		Key: e.key, Domain: e.domain, Mode: e.mode, Query: e.query,
		Evals: e.evals, Rows: e.rows,
		CacheHits: e.hits, CacheMisses: e.misses,
		Plan: e.plan, PlanHits: e.planHits, PlanMisses: e.planMisses,
		FirstSeen: e.firstSeen, LastSeen: e.lastSeen,
		Latency: HistJSON{Count: e.latCount, Sum: e.latSum, Max: e.latMax},
	}
	if e.latCount > 0 {
		v.MeanLatencyUS = float64(e.latSum) / float64(e.latCount)
	}
	v.AllocBytes, v.AllocObjects, v.AllocSamples = e.allocBytes, e.allocObjs, e.allocSamples
	if e.allocSamples > 0 {
		v.MeanAllocBytes = float64(e.allocBytes) / float64(e.allocSamples)
	}
	for i, n := range e.latBuckets {
		if n == 0 {
			continue
		}
		if v.Latency.Buckets == nil {
			v.Latency.Buckets = map[string]int64{}
		}
		v.Latency.Buckets[obs.BucketLabel(i)] = n
	}
	for _, reason := range stopReasons {
		if n := e.stopped[stopIndex(reason)]; n > 0 {
			if v.Stopped == nil {
				v.Stopped = map[string]int64{}
			}
			v.Stopped[reason] = n
		}
	}
	paths := make([]string, 0, len(e.nodes))
	for p := range e.nodes {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		n := e.nodes[p]
		nv := NodeView{
			Path: p, Op: n.op, Evals: n.evals, True: n.trueN,
			RangeMin: n.rangeMin, RangeMax: n.rangeMax,
			RangeSum: n.rangeSum, RangeCount: n.rangeCount,
		}
		if n.evals > 0 {
			nv.Selectivity = float64(n.trueN) / float64(n.evals)
		}
		if n.rangeCount > 0 {
			nv.RangeMean = float64(n.rangeSum) / float64(n.rangeCount)
		}
		v.Nodes = append(v.Nodes, nv)
	}
	// Root selectivity: the profile root is path "0" when profiled runs
	// have been folded in.
	if root, ok := e.nodes["0"]; ok && root.evals > 0 {
		v.Selectivity = float64(root.trueN) / float64(root.evals)
	} else if e.evals > 0 {
		s := float64(e.rows) / float64(e.evals)
		if s > 1 {
			s = 1
		}
		v.Selectivity = s
	}
	return v
}

// Take captures every entry, sorted by key.
func (r *Registry) Take() Snapshot {
	s := Snapshot{Enabled: enabled.Load(), Evictions: r.evictions.Load()}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			s.Entries = append(s.Entries, e.view())
		}
		sh.mu.Unlock()
	}
	sort.Slice(s.Entries, func(i, j int) bool { return s.Entries[i].Key < s.Entries[j].Key })
	return s
}

// JSON marshals the snapshot with indentation; maps marshal with sorted
// keys and entries are key-sorted, so identical registry states produce
// identical bytes.
func (s Snapshot) JSON() []byte {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("qstats: marshal snapshot: %v", err))
	}
	return out
}

// JSON is Take().JSON().
func (r *Registry) JSON() []byte { return r.Take().JSON() }

// TopK orders — the /v1/stats/queries ?by= values.
const (
	ByLatency     = "latency"     // total latency (sum of eval wall time)
	ByCount       = "count"       // evaluation count
	BySelectivity = "selectivity" // lowest selectivity first: expensive filters
	ByAllocs      = "allocs"      // total sampled allocation bytes
)

// TopK returns up to k entries ordered by the given dimension: "latency"
// (total evaluation wall time, descending), "count" (evaluations,
// descending), or "selectivity" (ascending — the least-selective queries
// are where quantifier-range narrowing pays). Ties break on key so the
// order is deterministic. k ≤ 0 means all entries.
func (r *Registry) TopK(by string, k int) ([]EntryView, error) {
	snap := r.Take()
	var less func(a, b EntryView) bool
	switch by {
	case ByLatency, "":
		less = func(a, b EntryView) bool { return a.Latency.Sum > b.Latency.Sum }
	case ByCount:
		less = func(a, b EntryView) bool { return a.Evals > b.Evals }
	case BySelectivity:
		less = func(a, b EntryView) bool { return a.Selectivity < b.Selectivity }
	case ByAllocs:
		less = func(a, b EntryView) bool { return a.AllocBytes > b.AllocBytes }
	default:
		return nil, fmt.Errorf("qstats: unknown order %q (want %s, %s, %s, or %s)",
			by, ByLatency, ByCount, BySelectivity, ByAllocs)
	}
	sort.SliceStable(snap.Entries, func(i, j int) bool {
		a, b := snap.Entries[i], snap.Entries[j]
		if less(a, b) != less(b, a) {
			return less(a, b)
		}
		return a.Key < b.Key
	})
	if k > 0 && len(snap.Entries) > k {
		snap.Entries = snap.Entries[:k]
	}
	return snap.Entries, nil
}

// Import folds a snapshot into the registry: existing entries merge
// (counts add, maxima and range bounds merge), new entries are created.
// The usual weight-eviction applies, so importing a huge snapshot into a
// small registry keeps the bound. This is how `finq stats -import`
// preloads a saved stats file — the feed a plan-level optimizer reads.
func (r *Registry) Import(s Snapshot) {
	labelIndex := bucketLabelIndex()
	for _, v := range s.Entries {
		r.importEntry(v, labelIndex)
	}
}

// ImportJSON unmarshals and imports an exported snapshot.
func (r *Registry) ImportJSON(data []byte) error {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("qstats: parsing snapshot: %w", err)
	}
	r.Import(s)
	return nil
}

// bucketLabelIndex maps bucket labels back to indexes for merging.
func bucketLabelIndex() map[string]int {
	m := make(map[string]int, obs.NumBuckets)
	for i := 0; i < obs.NumBuckets; i++ {
		m[obs.BucketLabel(i)] = i
	}
	return m
}

func (r *Registry) importEntry(v EntryView, labelIndex map[string]int) {
	if v.Key == "" {
		return
	}
	now := r.clock.Add(1)
	sh := r.shardFor(v.Key)
	budget := r.maxWeight / numShards

	sh.mu.Lock()
	e := sh.entries[v.Key]
	if e == nil {
		e = &entry{key: v.Key, domain: v.Domain, mode: v.Mode, query: v.Query, firstSeen: now}
		sh.entries[v.Key] = e
		r.entriesN.Add(1)
	}
	oldW := e.weight
	e.lastSeen = now
	e.evals += v.Evals
	e.rows += v.Rows
	e.hits += v.CacheHits
	e.misses += v.CacheMisses
	if v.Plan != "" {
		e.plan = v.Plan
	}
	e.planHits += v.PlanHits
	e.planMisses += v.PlanMisses
	for reason, n := range v.Stopped {
		e.stopped[stopIndex(reason)] += n
	}
	e.allocBytes += v.AllocBytes
	e.allocObjs += v.AllocObjects
	e.allocSamples += v.AllocSamples
	e.latCount += v.Latency.Count
	e.latSum += v.Latency.Sum
	if v.Latency.Max > e.latMax {
		e.latMax = v.Latency.Max
	}
	for label, n := range v.Latency.Buckets {
		if i, ok := labelIndex[label]; ok {
			e.latBuckets[i] += n
		}
	}
	for _, nv := range v.Nodes {
		n := e.nodes[nv.Path]
		if n == nil {
			if e.nodes == nil {
				e.nodes = map[string]*nodeAgg{}
			}
			n = &nodeAgg{op: nv.Op}
			e.nodes[nv.Path] = n
		}
		n.evals += nv.Evals
		n.trueN += nv.True
		if nv.RangeCount > 0 {
			if n.rangeCount == 0 || nv.RangeMin < n.rangeMin {
				n.rangeMin = nv.RangeMin
			}
			if nv.RangeMax > n.rangeMax {
				n.rangeMax = nv.RangeMax
			}
			n.rangeSum += nv.RangeSum
			n.rangeCount += nv.RangeCount
		}
	}
	e.weight = e.computeWeight()
	sh.weight += e.weight - oldW
	evicted := sh.evictOver(budget, v.Key)
	sh.mu.Unlock()

	if evicted > 0 {
		r.entriesN.Add(-evicted)
		r.evictions.Add(evicted)
		mEvictions.Add(evicted)
	}
	gEntries.Set(r.entriesN.Load())
}

// WriteTable renders entries as an aligned text table — the /debug/queries
// page, `finq stats -queries`, and the REPL's :qstats all use it.
func WriteTable(w io.Writer, entries []EntryView) {
	fmt.Fprintf(w, "%-7s %-9s %-6s %-7s %-9s %-9s %-8s %-5s %-6s %-9s %s\n",
		"EVALS", "MODE", "ROWS", "MEAN_US", "MAX_US", "TOTAL_US", "ALLOC_B", "SEL", "HIT%", "STOPPED", "QUERY")
	for _, e := range entries {
		hitPct := "-"
		if total := e.CacheHits + e.CacheMisses; total > 0 {
			hitPct = fmt.Sprintf("%.0f", float64(e.CacheHits)/float64(total)*100)
		}
		allocB := "-"
		if e.AllocSamples > 0 {
			allocB = fmt.Sprintf("%.0f", e.MeanAllocBytes)
		}
		stopped := "-"
		if len(e.Stopped) > 0 {
			var parts []string
			for _, reason := range stopReasons {
				if n := e.Stopped[reason]; n > 0 {
					parts = append(parts, fmt.Sprintf("%s:%d", reason, n))
				}
			}
			stopped = strings.Join(parts, ",")
		}
		q := e.Query
		if e.Domain != "" {
			q = e.Domain + ": " + q
		}
		fmt.Fprintf(w, "%-7d %-9s %-6d %-7.0f %-9d %-9d %-8s %-5.2f %-6s %-9s %s\n",
			e.Evals, e.Mode, e.Rows, e.MeanLatencyUS, e.Latency.Max, e.Latency.Sum,
			allocB, e.Selectivity, hitPct, stopped, q)
	}
}
