// Package qstats is the per-query statistics registry: a sharded, bounded,
// race-safe map from a query's canonical key (logic.(*Formula).CanonicalKey,
// the same key the decision cache uses) to that query's runtime aggregates —
// evaluation count, latency histogram, rows produced, stop-reason counts,
// decision-cache hit attribution, and merged per-node EXPLAIN aggregates
// folded in whenever a profiled evaluation runs.
//
// The paper's workloads are per-formula: each query has its own cost shape
// (quantifier ranges, short-circuit selectivity, cache behavior), which
// endpoint-level RED metrics average away. This registry keeps the
// per-formula shape: a hot pathological formula shows up as one entry with
// a heavy latency histogram and low selectivity, and the per-node range
// aggregates are exactly the statistics a plan-level optimizer
// (quantifier-range narrowing) needs as input. Snapshots are
// deterministic JSON, exportable and re-importable (finq stats
// -export/-import), so stats survive a process and can seed a planner.
//
// Memory is bounded by weight: every entry is charged for its key, display
// string, and node aggregates, and when a shard exceeds its share of the
// budget the least-recently-updated entries are evicted. Recording is one
// short critical section on the entry's shard, so concurrent evaluations
// contend only when their keys collide on a shard.
package qstats

import (
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Registry-level metrics, on /metrics alongside every other obs family.
var (
	mRecords   = obs.NewCounter("qstats.records")
	mEvictions = obs.NewCounter("qstats.evictions")
	gEntries   = obs.NewGauge("qstats.entries")
	gWeight    = obs.NewGauge("qstats.weight")
)

func init() {
	obs.SetHelp("qstats.records", "Evaluations recorded into the per-query stats registry.")
	obs.SetHelp("qstats.evictions", "Per-query stats entries evicted by the weight bound.")
	obs.SetHelp("qstats.entries", "Distinct query keys currently held by the stats registry.")
	obs.SetHelp("qstats.weight", "Approximate bytes of per-query aggregates currently held.")
}

// enabled is the package toggle: when off, the package-level Record is a
// single atomic load and finq.Eval skips building samples entirely.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enable turns per-query stats collection on (the default).
func Enable() { enabled.Store(true) }

// Disable turns collection off; Record becomes a near-free no-op.
func Disable() { enabled.Store(false) }

// SetEnabled sets the toggle and returns the previous value, for scoped use
// in tests and benchmarks.
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Enabled reports whether collection is on.
func Enabled() bool { return enabled.Load() }

// numShards spreads keys over independently locked shards. A power of two,
// small enough that a full-snapshot walk stays cheap.
const numShards = 16

// DefaultMaxWeight bounds the default registry's total aggregate weight
// (approximate bytes): roughly a few thousand distinct queries with
// profiles before eviction starts.
const DefaultMaxWeight = 1 << 21

// stop reasons, indexed into each entry's fixed-size counter array. The
// set is closed so a malicious client cannot mint unbounded map keys.
var stopReasons = []string{"complete", "budget", "deadline", "canceled", "client-gone", "error"}

// numStopReasons sizes each entry's fixed stop-reason counter array.
const numStopReasons = 6

func stopIndex(reason string) int {
	switch reason {
	case "", "complete":
		return 0
	case "budget":
		return 1
	case "deadline":
		return 2
	case "canceled":
		return 3
	case "client-gone":
		return 4
	}
	return 5 // anything else is an error outcome
}

// NodeSample is one EXPLAIN profile node's contribution to a query's
// per-node aggregates, joined across runs on Path.
type NodeSample struct {
	// Path is the node's dotted child-index path from the root ("0" the
	// root, "0.1" its second child) — stable across runs of the same
	// formula because the profile tree mirrors the formula tree.
	Path string
	// Op is the node's operator label ("∃y", "∧", an atom's rendering).
	Op string
	// Evals and True are the node's evaluation and true-outcome counts for
	// one run.
	Evals, True int64
	// Range is the active-domain range the node iterated over (0 on
	// non-quantifier nodes).
	Range int64
}

// Sample is one finished evaluation's contribution to the registry.
type Sample struct {
	// Key is the formula's canonical key; samples with an empty key are
	// dropped.
	Key string
	// Domain, Mode, and Query describe the evaluation for humans; they are
	// recorded on first sight of the key.
	Domain, Mode, Query string
	// LatencyUS is the evaluation's wall time in microseconds.
	LatencyUS int64
	// Rows is the answer cardinality.
	Rows int64
	// Stopped is "" or "complete" for a complete answer, else "budget",
	// "deadline", "canceled", "client-gone", or "error".
	Stopped string
	// CacheHits and CacheMisses attribute decision-cache traffic to this
	// evaluation (deccache.Tally).
	CacheHits, CacheMisses int64
	// Plan is the tier of the compiled plan the evaluation ran at
	// ("algebra", "closure", "interp"; empty when the planner was off).
	Plan string
	// PlanHits and PlanMisses attribute plan-cache traffic to this
	// evaluation (plan.Tally).
	PlanHits, PlanMisses int64
	// AllocBytes and AllocObjects are the evaluation's heap allocation
	// deltas (prof.BeginAlloc/End), meaningful only when AllocSampled is
	// set — the alloc meter is single-flight, so concurrent evaluations go
	// unsampled rather than report overlapping numbers.
	AllocBytes, AllocObjects int64
	AllocSampled             bool
	// Nodes carries the flattened EXPLAIN profile of a profiled run; nil
	// for unprofiled evaluations.
	Nodes []NodeSample
}

// nodeAgg merges NodeSamples across runs.
type nodeAgg struct {
	op           string
	evals, trueN int64
	rangeMin     int64
	rangeMax     int64
	rangeSum     int64
	rangeCount   int64
}

// entry is one query's aggregates. All fields are guarded by the owning
// shard's mutex.
type entry struct {
	key, domain, mode, query string
	firstSeen, lastSeen      int64 // registry clock ticks, not wall time

	evals, rows  int64
	stopped      [numStopReasons]int64
	hits, misses int64

	plan                 string
	planHits, planMisses int64

	allocBytes, allocObjs, allocSamples int64

	latCount, latSum, latMax int64
	latBuckets               [obs.NumBuckets]int64

	nodes  map[string]*nodeAgg
	weight int64
}

// computeWeight approximates the entry's memory footprint, charged against
// the registry budget.
func (e *entry) computeWeight() int64 {
	w := int64(256 + len(e.key) + len(e.domain) + len(e.mode) + len(e.query))
	for path, n := range e.nodes {
		w += int64(96 + len(path) + len(n.op))
	}
	return w
}

// fold merges one sample into the entry.
func (e *entry) fold(s Sample, now int64) {
	e.lastSeen = now
	e.evals++
	e.rows += s.Rows
	e.stopped[stopIndex(s.Stopped)]++
	e.hits += s.CacheHits
	e.misses += s.CacheMisses
	if s.Plan != "" {
		e.plan = s.Plan
	}
	e.planHits += s.PlanHits
	e.planMisses += s.PlanMisses

	if s.AllocSampled {
		e.allocSamples++
		e.allocBytes += s.AllocBytes
		e.allocObjs += s.AllocObjects
	}

	e.latCount++
	e.latSum += s.LatencyUS
	if s.LatencyUS > e.latMax {
		e.latMax = s.LatencyUS
	}
	e.latBuckets[obs.BucketIndex(s.LatencyUS)]++

	for _, ns := range s.Nodes {
		n := e.nodes[ns.Path]
		if n == nil {
			if e.nodes == nil {
				e.nodes = map[string]*nodeAgg{}
			}
			n = &nodeAgg{op: ns.Op}
			e.nodes[ns.Path] = n
		}
		n.evals += ns.Evals
		n.trueN += ns.True
		if ns.Range > 0 {
			if n.rangeCount == 0 || ns.Range < n.rangeMin {
				n.rangeMin = ns.Range
			}
			if ns.Range > n.rangeMax {
				n.rangeMax = ns.Range
			}
			n.rangeSum += ns.Range
			n.rangeCount++
		}
	}
}

type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
	weight  int64
}

// Registry is a bounded, sharded per-query stats store. The zero value is
// not usable; create with New or use Default.
type Registry struct {
	maxWeight int64
	clock     atomic.Int64
	entriesN  atomic.Int64
	weightN   atomic.Int64
	evictions atomic.Int64
	shards    [numShards]shard
}

// New builds a registry bounded by maxWeight approximate bytes of
// aggregates (≤ 0 selects DefaultMaxWeight).
func New(maxWeight int64) *Registry {
	if maxWeight <= 0 {
		maxWeight = DefaultMaxWeight
	}
	r := &Registry{maxWeight: maxWeight}
	for i := range r.shards {
		r.shards[i].entries = map[string]*entry{}
	}
	return r
}

// defaultRegistry is the process-wide registry every evaluation records
// into (finq.Eval) and every surface reads from (/v1/stats/queries,
// /debug/queries, finq stats -queries, REPL :qstats).
var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry.
func Default() *Registry {
	defaultOnce.Do(func() { defaultReg = New(0) })
	return defaultReg
}

// Record folds a sample into the default registry when collection is on.
func Record(s Sample) {
	if !enabled.Load() {
		return
	}
	Default().Record(s)
}

// NodeSelectivities returns the measured per-node selectivities (true
// fraction per evaluation) for a query key, keyed by the node's EXPLAIN
// profile path ("0", "0.1", …). Nil when the key has no profiled runs.
// The planner orders conjuncts and disjuncts by these when available.
func (r *Registry) NodeSelectivities(key string) map[string]float64 {
	sh := r.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.entries[key]
	if e == nil || len(e.nodes) == 0 {
		return nil
	}
	out := make(map[string]float64, len(e.nodes))
	for path, n := range e.nodes {
		if n.evals > 0 {
			out[path] = float64(n.trueN) / float64(n.evals)
		}
	}
	return out
}

// NodeSelectivities reads measured node selectivities from the default
// registry; nil when collection is off or the key is unseen.
func NodeSelectivities(key string) map[string]float64 {
	if !enabled.Load() {
		return nil
	}
	return Default().NodeSelectivities(key)
}

func (r *Registry) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &r.shards[h.Sum32()%numShards]
}

// Record folds one evaluation's sample into the registry, creating the
// entry on first sight of the key and evicting the least-recently-updated
// entries of the shard if the fold pushed it over its weight share.
func (r *Registry) Record(s Sample) {
	if s.Key == "" {
		return
	}
	now := r.clock.Add(1)
	sh := r.shardFor(s.Key)
	budget := r.maxWeight / numShards

	sh.mu.Lock()
	e := sh.entries[s.Key]
	if e == nil {
		e = &entry{
			key: s.Key, domain: s.Domain, mode: s.Mode, query: s.Query,
			firstSeen: now,
		}
		sh.entries[s.Key] = e
		r.entriesN.Add(1)
	}
	oldW := e.weight
	e.fold(s, now)
	e.weight = e.computeWeight()
	sh.weight += e.weight - oldW
	evicted := sh.evictOver(budget, s.Key)
	sh.mu.Unlock()

	if evicted > 0 {
		r.entriesN.Add(-evicted)
		r.evictions.Add(evicted)
		mEvictions.Add(evicted)
	}
	r.weightN.Store(r.totalWeight())
	mRecords.Inc()
	gEntries.Set(r.entriesN.Load())
	gWeight.Set(r.weightN.Load())
}

// evictOver drops least-recently-updated entries until the shard fits its
// budget, never evicting the just-updated key. Caller holds sh.mu.
func (sh *shard) evictOver(budget int64, keep string) int64 {
	var evicted int64
	for sh.weight > budget && len(sh.entries) > 1 {
		victimKey := ""
		var victim *entry
		for k, e := range sh.entries {
			if k == keep {
				continue
			}
			if victim == nil || e.lastSeen < victim.lastSeen ||
				(e.lastSeen == victim.lastSeen && k < victimKey) {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			break
		}
		delete(sh.entries, victimKey)
		sh.weight -= victim.weight
		evicted++
	}
	return evicted
}

func (r *Registry) totalWeight() int64 {
	var w int64
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		w += sh.weight
		sh.mu.Unlock()
	}
	return w
}

// Len returns the number of distinct query keys currently held.
func (r *Registry) Len() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Evictions returns how many entries the weight bound has evicted.
func (r *Registry) Evictions() int64 { return r.evictions.Load() }

// Reset drops every entry; for tests and the benchmark harness.
func (r *Registry) Reset() {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		sh.entries = map[string]*entry{}
		sh.weight = 0
		sh.mu.Unlock()
	}
	r.entriesN.Store(0)
	r.weightN.Store(0)
}
