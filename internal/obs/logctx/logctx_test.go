package logctx

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestRequestIDRoundTrip(t *testing.T) {
	ctx := WithRequestID(context.Background(), "abc-123")
	if got := RequestID(ctx); got != "abc-123" {
		t.Fatalf("RequestID = %q, want abc-123", got)
	}
	if got := RequestID(context.Background()); got != "" {
		t.Fatalf("RequestID(empty ctx) = %q, want \"\"", got)
	}
	// The decision cache's plain Decide path passes a nil context.
	if got := RequestID(nil); got != "" {
		t.Fatalf("RequestID(nil) = %q, want \"\"", got)
	}
	if ctx2 := WithRequestID(context.Background(), ""); RequestID(ctx2) != "" {
		t.Fatal("empty ID should not be stored")
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if !ValidID(id) {
			t.Fatalf("generated ID %q fails its own validation", id)
		}
		if seen[id] {
			t.Fatalf("duplicate generated ID %q", id)
		}
		seen[id] = true
	}
}

func TestValidID(t *testing.T) {
	for _, ok := range []string{"a", "req-1", "A_b.C-9", strings.Repeat("x", MaxIDLen)} {
		if !ValidID(ok) {
			t.Errorf("ValidID(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "has space", "new\nline", "héllo", strings.Repeat("x", MaxIDLen+1), `quote"id`} {
		if ValidID(bad) {
			t.Errorf("ValidID(%q) = true, want false", bad)
		}
	}
}

// TestHandlerInjectsRequestID: a record logged under a request-scoped
// context gains request_id; one logged without passes through untouched.
func TestHandlerInjectsRequestID(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, slog.LevelInfo, "json")
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithRequestID(context.Background(), "inject-me")
	logger.InfoContext(ctx, "with id")
	logger.Info("without id")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 log lines, got %d: %s", len(lines), buf.String())
	}
	var first, second map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("line 2 is not JSON: %v", err)
	}
	if first["request_id"] != "inject-me" {
		t.Errorf("request-scoped record: request_id = %v, want inject-me", first["request_id"])
	}
	if _, present := second["request_id"]; present {
		t.Errorf("plain record should carry no request_id: %v", second)
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
	if _, err := NewLogger(&bytes.Buffer{}, slog.LevelInfo, "yaml"); err == nil {
		t.Error("NewLogger accepted a bad format")
	}
}

// TestHandlerConcurrent hammers one logger from many goroutines with
// distinct request IDs; under -race this checks the handler chain is safe,
// and afterwards every line must be intact JSON with its own ID.
func TestHandlerConcurrent(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	locked := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	logger, err := NewLogger(locked, slog.LevelInfo, "json")
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := WithRequestID(context.Background(), NewRequestID())
			logger.InfoContext(ctx, "concurrent")
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != n {
		t.Fatalf("want %d lines, got %d", n, len(lines))
	}
	ids := map[string]bool{}
	for _, l := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(l), &rec); err != nil {
			t.Fatalf("corrupt log line %q: %v", l, err)
		}
		id, _ := rec["request_id"].(string)
		if id == "" || ids[id] {
			t.Fatalf("missing or duplicate request_id in %q", l)
		}
		ids[id] = true
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
