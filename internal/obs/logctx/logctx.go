// Package logctx gives every request an identity and makes the process's
// structured logs carry it. It is the glue between the three observability
// surfaces that PR 5 correlates: a request ID minted here (or honored from
// a client's X-Request-Id) is stored in the context.Context that the
// evaluation core already threads end to end, and
//
//   - slog records written through the context-aware handler gain a
//     request_id attribute automatically;
//   - obs spans started with obs.StartSpanCtx attach the ID as a trace
//     argument, so the flight recorder's events (and the exported Chrome
//     trace) can be filtered down to one request's timeline;
//   - the finqd access log and slow-query captures key off the same ID.
//
// The package deliberately depends on nothing but the standard library, so
// internal/obs (and everything instrumented by it) can import it without
// cycles.
package logctx

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
)

// ctxKey is the private context key for the request ID.
type ctxKey struct{}

// MaxIDLen bounds accepted request IDs; longer client-supplied values are
// replaced rather than truncated, so an ID seen anywhere is an ID that was
// honored everywhere.
const MaxIDLen = 64

// WithRequestID returns a context carrying the request ID. An empty id
// returns ctx unchanged.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, id)
}

// RequestID returns the request ID carried by ctx, or "" when absent. A
// nil context is safe (the decision cache's plain Decide path passes one).
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}

// idCounter disambiguates IDs if the random source ever fails; it also
// makes fallback IDs unique within the process.
var idCounter atomic.Int64

// NewRequestID mints a fresh request ID: 16 hex characters of
// crypto/rand entropy, "req-<n>" if the random source is unavailable.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%d", idCounter.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// ValidID reports whether a client-supplied request ID is acceptable:
// non-empty, at most MaxIDLen bytes, and drawn from [A-Za-z0-9._-] so it
// is safe to echo into headers, logs, and trace arguments.
func ValidID(id string) bool {
	if id == "" || len(id) > MaxIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Handler is a slog.Handler that injects the context's request ID as a
// request_id attribute on every record, then delegates to the inner
// handler. Records logged without a request-scoped context pass through
// unchanged.
type Handler struct {
	inner slog.Handler
}

// NewHandler wraps an slog handler with request-ID injection.
func NewHandler(inner slog.Handler) Handler { return Handler{inner: inner} }

// Enabled implements slog.Handler.
func (h Handler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle implements slog.Handler, adding request_id from the context.
func (h Handler) Handle(ctx context.Context, r slog.Record) error {
	if id := RequestID(ctx); id != "" {
		r.AddAttrs(slog.String("request_id", id))
	}
	return h.inner.Handle(ctx, r)
}

// WithAttrs implements slog.Handler.
func (h Handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return Handler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup implements slog.Handler.
func (h Handler) WithGroup(name string) slog.Handler {
	return Handler{inner: h.inner.WithGroup(name)}
}

// ParseLevel maps the -log-level flag values onto slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("-log-level: want debug|info|warn|error, got %q", s)
}

// NewLogger builds a request-ID-aware logger writing to w in the given
// format ("text" or "json", the -log-format values) at the given level.
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	var inner slog.Handler
	switch format {
	case "", "text":
		inner = slog.NewTextHandler(w, opts)
	case "json":
		inner = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("-log-format: want text|json, got %q", format)
	}
	return slog.New(NewHandler(inner)), nil
}

// Setup configures the process-wide default logger (slog.SetDefault) from
// the -log-level and -log-format flag values. The CLIs call this through
// cliutil.Setup, so finq, finqd, tmrun, safety, and qe all emit uniform
// structured logs.
func Setup(w io.Writer, levelStr, format string) error {
	level, err := ParseLevel(levelStr)
	if err != nil {
		return err
	}
	logger, err := NewLogger(w, level, format)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)
	return nil
}
