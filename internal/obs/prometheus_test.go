package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWritePrometheus renders a hand-built snapshot and checks the text
// exposition: type lines, name folding, cumulative buckets, span labels.
func TestWritePrometheus(t *testing.T) {
	s := Snapshot{
		Counters: map[string]int64{"query.eval.calls": 7},
		Gauges:   map[string]int64{"tm.tape.cells": 42},
		Histograms: map[string]HistView{
			"qe.cooper.size_in": {
				Count:   3,
				Sum:     11,
				Max:     8,
				Buckets: map[string]int64{"1": 1, "2": 0, "4": 1, "8": 1},
			},
		},
		Spans: map[string]SpanView{
			"query.eval":              {Count: 2, TotalUS: 100, MaxUS: 70},
			"qe.stage{stage=expand}":  {Count: 1, TotalUS: 5, MaxUS: 5},
			"qe.stage{stage=normals}": {Count: 4, TotalUS: 9, MaxUS: 3},
		},
	}
	var b strings.Builder
	s.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE query_eval_calls counter\nquery_eval_calls 7\n",
		"# TYPE tm_tape_cells gauge\ntm_tape_cells 42\n",
		"# TYPE qe_cooper_size_in histogram\n",
		"qe_cooper_size_in_bucket{le=\"1\"} 1\n",
		"qe_cooper_size_in_bucket{le=\"4\"} 2\n", // cumulative: 1+0+1
		"qe_cooper_size_in_bucket{le=\"8\"} 3\n",
		"qe_cooper_size_in_bucket{le=\"+Inf\"} 3\n",
		"qe_cooper_size_in_sum 11\n",
		"qe_cooper_size_in_count 3\n",
		"query_eval_spans_count 2\n",
		"query_eval_spans_total_us 100\n",
		"query_eval_spans_max_us 70\n",
		"qe_stage_spans_count{stage=\"expand\"} 1\n",
		"qe_stage_spans_count{stage=\"normals\"} 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\nfull output:\n%s", want, out)
		}
	}
	// The labeled span family declares its TYPE lines exactly once.
	if n := strings.Count(out, "# TYPE qe_stage_spans_count counter\n"); n != 1 {
		t.Errorf("qe_stage_spans_count TYPE declared %d times, want 1", n)
	}
}

// TestPromName covers the folding rules.
func TestPromName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"query.eval.calls", "query_eval_calls"},
		{"already_fine", "already_fine"},
		{"9lives", "_9lives"},
		{"a-b/c d", "a_b_c_d"},
	} {
		if got := promName(tc.in); got != tc.want {
			t.Errorf("promName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestMetricsEndpoint: the debug handler serves the exposition at /metrics
// with the Prometheus content type, fed by live registry data.
func TestMetricsEndpoint(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	c := NewCounter("promtest.hits")
	c.Inc()
	rr := httptest.NewRecorder()
	Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("GET /metrics: status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q, want text/plain; version=0.0.4", ct)
	}
	if !strings.Contains(rr.Body.String(), "promtest_hits 1") {
		t.Errorf("exposition missing promtest_hits 1:\n%s", rr.Body.String())
	}
}

// TestWritePrometheusExemplars checks the OpenMetrics exemplar suffix:
// emitted on the finite bucket that carries one, absent from empty
// buckets, +Inf, sum, and count lines.
func TestWritePrometheusExemplars(t *testing.T) {
	s := Snapshot{
		Histograms: map[string]HistView{
			"server.eval.latency_us": {
				Count:   2,
				Sum:     10,
				Max:     8,
				Buckets: map[string]int64{"2": 1, "8": 1},
				Exemplars: map[string]Exemplar{
					"8": {RequestID: "req-42", Value: 7},
				},
			},
		},
	}
	var b strings.Builder
	s.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, "server_eval_latency_us_bucket{le=\"8\"} 2 # {request_id=\"req-42\"} 7\n") {
		t.Errorf("exemplar line missing:\n%s", out)
	}
	for _, plain := range []string{
		"server_eval_latency_us_bucket{le=\"2\"} 1\n",
		"server_eval_latency_us_bucket{le=\"+Inf\"} 2\n",
		"server_eval_latency_us_sum 10\n",
		"server_eval_latency_us_count 2\n",
	} {
		if !strings.Contains(out, plain) {
			t.Errorf("exposition missing %q\nfull output:\n%s", plain, out)
		}
	}
	if strings.Contains(out, "+Inf\"} 2 #") {
		t.Errorf("+Inf bucket must not carry an exemplar:\n%s", out)
	}
}
