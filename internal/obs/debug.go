package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"repro/internal/obs/trace"
)

// publishOnce guards the one-time expvar publication of the obs snapshot.
var publishOnce sync.Once

// publishExpvar exposes the snapshot as the expvar "obs" variable, so
// /debug/vars carries the metrics alongside cmdline and memstats.
func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("obs", expvar.Func(func() any { return Take() }))
	})
}

// Handler returns an http.Handler serving the debug surface:
//
//	/debug/obs           the obs snapshot as JSON
//	/metrics             the snapshot in Prometheus text exposition format
//	/debug/vars          expvar (including the snapshot under "obs")
//	/debug/pprof/        the standard pprof profiles
//	/debug/trace/export  the default flight recorder's ring as OTLP/JSON
//	                     resource spans (?format=jsonl and ?format=chrome
//	                     select the other exporters); finqd overrides this
//	                     route with its own recorder's export
func Handler() http.Handler {
	publishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(Take().JSON())
	})
	mux.HandleFunc("/debug/trace/export", func(w http.ResponseWriter, r *http.Request) {
		rec := trace.Default()
		events := rec.Dump()
		// Zero epoch (never armed) stays 0 in the dump header; UnixNano()
		// of the zero time would be a nonsense negative anchor.
		var epochNanos int64
		if epoch := rec.Epoch(); !epoch.IsZero() {
			epochNanos = epoch.UnixNano()
		}
		switch format := r.URL.Query().Get("format"); format {
		case "", "otlp":
			w.Header().Set("Content-Type", "application/json")
			trace.WriteOTLP(w, "finq", rec.Epoch(), events)
		case "jsonl":
			w.Header().Set("Content-Type", "application/x-ndjson")
			trace.WriteJSONLMeta(w, trace.Meta{
				Process:       "finq",
				EpochUnixNano: epochNanos,
			}, events)
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			trace.WriteChrome(w, events)
		default:
			http.Error(w, "unknown format (want otlp, jsonl, or chrome)", http.StatusBadRequest)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		Take().WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the debug server on addr in a background goroutine and
// returns the bound address (useful with a ":0" addr). The listener stays
// up for the life of the process; CLIs call this from a -debug-addr flag.
func ServeDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, Handler())
	return ln.Addr().String(), nil
}
