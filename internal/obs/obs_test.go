package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentHammer drives counters, gauges, histograms, and spans from
// many goroutines at once; run under -race this is the data-race proof,
// and the final counts must be exact (atomics lose nothing).
func TestConcurrentHammer(t *testing.T) {
	Enable()
	c := NewCounter("test.hammer.counter")
	g := NewGauge("test.hammer.gauge")
	h := NewHistogram("test.hammer.hist")
	const workers = 16
	const perWorker = 2000
	start := c.Value()
	hStart := h.Count()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.SetMax(int64(w*perWorker + i))
				h.Observe(int64(i))
				sp := StartSpan("test.hammer.span")
				sp.Child("inner").End()
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value() - start; got != workers*perWorker {
		t.Errorf("counter: got %d, want %d", got, workers*perWorker)
	}
	if got := h.Count() - hStart; got != workers*perWorker {
		t.Errorf("histogram count: got %d, want %d", got, workers*perWorker)
	}
	if want := int64(workers*perWorker - 1); g.Value() != want {
		t.Errorf("gauge max: got %d, want %d", g.Value(), want)
	}
	snap := Take()
	sv, ok := snap.Spans["test.hammer.span"]
	if !ok {
		t.Fatal("span missing from snapshot")
	}
	if sv.Count < workers*perWorker {
		t.Errorf("span count: got %d, want ≥ %d", sv.Count, workers*perWorker)
	}
	if sv.Open != 0 {
		t.Errorf("span open: got %d, want 0", sv.Open)
	}
}

// TestSnapshotDeterminism: with no metric activity in between, two
// snapshots marshal to identical bytes (maps marshal with sorted keys).
func TestSnapshotDeterminism(t *testing.T) {
	Enable()
	NewCounter("test.det.a").Add(3)
	NewCounter("test.det.b").Add(7)
	NewHistogram("test.det.h").Observe(5)
	NewHistogram("test.det.h").Observe(100)
	a := Take().JSON()
	b := Take().JSON()
	if !bytes.Equal(a, b) {
		t.Errorf("snapshots differ:\n%s\n---\n%s", a, b)
	}
	var decoded Snapshot
	if err := json.Unmarshal(a, &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if decoded.Counters["test.det.a"] != 3 || decoded.Counters["test.det.b"] != 7 {
		t.Errorf("counter values lost: %v", decoded.Counters)
	}
	h := decoded.Histograms["test.det.h"]
	if h.Count != 2 || h.Sum != 105 || h.Max != 100 {
		t.Errorf("histogram view wrong: %+v", h)
	}
	if decoded.Build.GoVersion == "" {
		t.Error("snapshot misses build info")
	}
}

// TestToggle: with observation off, nothing records, and recording calls
// are safe (spans are nil but all methods tolerate that).
func TestToggle(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	c := NewCounter("test.toggle.counter")
	before := c.Value()
	c.Add(10)
	NewGauge("test.toggle.gauge").Set(4)
	NewHistogram("test.toggle.hist").Observe(9)
	sp := StartSpan("test.toggle.span")
	if sp != nil {
		t.Error("StartSpan should return nil when disabled")
	}
	sp.Label("k=v")
	sp.Child("inner").End()
	sp.End()
	if c.Value() != before {
		t.Errorf("counter recorded while disabled: %d", c.Value()-before)
	}
	if NewGauge("test.toggle.gauge").Value() != 0 {
		t.Error("gauge recorded while disabled")
	}
	if NewHistogram("test.toggle.hist").Count() != 0 {
		t.Error("histogram recorded while disabled")
	}
	snap := Take()
	if snap.Enabled {
		t.Error("snapshot should report disabled")
	}
}

// TestHistogramBuckets checks the power-of-two bucketing boundaries.
func TestHistogramBuckets(t *testing.T) {
	Enable()
	h := NewHistogram("test.buckets")
	for _, v := range []int64{0, 1, 2, 3, 4, 1023, 1024} {
		h.Observe(v)
	}
	view := h.view()
	want := map[string]int64{
		"0":    1, // 0
		"1":    1, // 1
		"3":    2, // 2, 3
		"7":    1, // 4
		"1023": 1, // 1023
		"2047": 1, // 1024
	}
	for k, n := range want {
		if view.Buckets[k] != n {
			t.Errorf("bucket %s: got %d, want %d (all: %v)", k, view.Buckets[k], n, view.Buckets)
		}
	}
	if view.Count != 7 || view.Max != 1024 {
		t.Errorf("count/max wrong: %+v", view)
	}
}

// TestBucketUpperCountUnder checks the SLO helpers: BucketUpper rounds a
// threshold up to its bucket's inclusive bound, and CountUnder counts the
// observations at or below that bound.
func TestBucketUpperCountUnder(t *testing.T) {
	for _, tc := range []struct{ v, want int64 }{
		{-5, 0}, {0, 0}, {1, 1}, {2, 3}, {3, 3}, {4, 7},
		{1000, 1023}, {1023, 1023}, {1024, 2047},
		{int64(1) << 62, 1<<63 - 1},
	} {
		if got := BucketUpper(tc.v); got != tc.want {
			t.Errorf("BucketUpper(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	Enable()
	h := NewHistogram("test.countunder")
	for _, v := range []int64{0, 1, 3, 500, 1023, 1024, 5000} {
		h.Observe(v)
	}
	for _, tc := range []struct{ v, want int64 }{
		{0, 1},    // just the non-positive bucket
		{1, 2},    // + value 1
		{3, 3},    // + value 3
		{1000, 5}, // + 500 and 1023 (≤ 1023 bound)
		{1024, 6}, // + 1024
		{1 << 40, 7},
	} {
		if got := h.CountUnder(tc.v); got != tc.want {
			t.Errorf("CountUnder(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

// TestSpanLabels: labels fold into the aggregation key.
func TestSpanLabels(t *testing.T) {
	Enable()
	sp := StartSpan("test.labels", "domain=eq")
	sp.End()
	sp = StartSpan("test.labels")
	sp.Label("domain=traces")
	sp.End()
	snap := Take()
	if snap.Spans["test.labels{domain=eq}"].Count != 1 {
		t.Errorf("labeled span missing: %v", snap.Spans)
	}
	if snap.Spans["test.labels{domain=traces}"].Count != 1 {
		t.Errorf("late-labeled span missing: %v", snap.Spans)
	}
}

// TestReset zeroes values but keeps registration.
func TestReset(t *testing.T) {
	Enable()
	c := NewCounter("test.reset.counter")
	c.Add(5)
	Reset()
	if c.Value() != 0 {
		t.Errorf("counter not reset: %d", c.Value())
	}
	if _, ok := Take().Counters["test.reset.counter"]; !ok {
		t.Error("counter unregistered by Reset")
	}
}

// TestServeDebug: the debug server answers /debug/obs with the snapshot
// and /debug/pprof/ with the profile index.
func TestServeDebug(t *testing.T) {
	Enable()
	NewCounter("test.debug.counter").Inc()
	addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "test.debug.counter") {
		t.Errorf("/debug/obs misses metrics: %s", body)
	}
	resp, err = client.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", resp.StatusCode)
	}
	resp, err = client.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"obs"`) {
		t.Errorf("/debug/vars misses the obs variable")
	}
}

// TestHistogramExemplars: ObserveExemplar keeps the most recent request id
// per bucket, view() exports it, and Reset clears it.
func TestHistogramExemplars(t *testing.T) {
	Enable()
	h := NewHistogram("test.exemplar.hist")
	h.ObserveExemplar(5, "first")
	h.ObserveExemplar(6, "second") // same bucket: last writer wins
	h.ObserveExemplar(100, "")     // empty id: plain observation
	i := BucketIndex(5)
	ex := h.ExemplarFor(i)
	if ex == nil || ex.RequestID != "second" || ex.Value != 6 {
		t.Fatalf("bucket %d exemplar: %+v", i, ex)
	}
	if ex := h.ExemplarFor(BucketIndex(100)); ex != nil {
		t.Fatalf("empty request id must not record an exemplar, got %+v", ex)
	}
	if h.ExemplarFor(-1) != nil || h.ExemplarFor(NumBuckets) != nil {
		t.Fatal("out-of-range ExemplarFor must be nil")
	}

	hv, ok := Take().Histograms["test.exemplar.hist"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	got, ok := hv.Exemplars[BucketLabel(i)]
	if !ok || got.RequestID != "second" {
		t.Fatalf("snapshot exemplars: %+v", hv.Exemplars)
	}

	Reset()
	if h.ExemplarFor(i) != nil {
		t.Fatal("Reset must clear exemplars")
	}
}
