package obs

import (
	"runtime"
	"sync"
	"time"
)

// Runtime gauges, filled by the sampler: the service-level "is the process
// healthy" signals that sit next to the request metrics on /metrics.
var (
	gGoroutines  = NewGauge("runtime.goroutines")
	gHeapAlloc   = NewGauge("runtime.heap_alloc_bytes")
	gHeapObjects = NewGauge("runtime.heap_objects")
	gGCRuns      = NewGauge("runtime.gc_runs")
	gGCPauseTot  = NewGauge("runtime.gc_pause_total_us")
	gGCPauseLast = NewGauge("runtime.gc_pause_last_us")
)

func init() {
	SetHelp("runtime.goroutines", "Current number of goroutines.")
	SetHelp("runtime.heap_alloc_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).")
	SetHelp("runtime.heap_objects", "Number of allocated heap objects.")
	SetHelp("runtime.gc_runs", "Completed garbage-collection cycles.")
	SetHelp("runtime.gc_pause_total_us", "Cumulative stop-the-world GC pause, microseconds.")
	SetHelp("runtime.gc_pause_last_us", "Most recent stop-the-world GC pause, microseconds.")
}

// SampleRuntime reads the runtime once into the gauges. The sampler calls
// it periodically; tests and one-shot tools can call it directly before
// taking a snapshot.
func SampleRuntime() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gGoroutines.Set(int64(runtime.NumGoroutine()))
	gHeapAlloc.Set(int64(ms.HeapAlloc))
	gHeapObjects.Set(int64(ms.HeapObjects))
	gGCRuns.Set(int64(ms.NumGC))
	gGCPauseTot.Set(int64(ms.PauseTotalNs / 1000))
	if ms.NumGC > 0 {
		gGCPauseLast.Set(int64(ms.PauseNs[(ms.NumGC+255)%256] / 1000))
	}
}

// samplerMu serializes sampler starts so two servers in one process (tests)
// don't race on the bookkeeping; each start still gets its own stop.
var samplerMu sync.Mutex

// StartRuntimeSampler begins sampling the runtime gauges every interval
// (1s when interval <= 0) and returns a stop function (idempotent). An
// immediate first sample runs before returning, so /metrics is populated
// from the first scrape.
func StartRuntimeSampler(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	samplerMu.Lock()
	defer samplerMu.Unlock()
	SampleRuntime()
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				SampleRuntime()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
