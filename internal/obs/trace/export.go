package trace

import (
	"bufio"
	"encoding/json"
	"io"
)

// jsonlEvent is the JSONL rendering of an Event: flat, one object per line,
// grep- and jq-friendly.
type jsonlEvent struct {
	Seq   int64          `json:"seq"`
	Phase string         `json:"ph"`
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	TSUS  int64          `json:"ts_us"`
	DurUS int64          `json:"dur_us,omitempty"`
	TID   int64          `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// argsMap renders an event's args for JSON output.
func argsMap(args []Arg) map[string]any {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]any, len(args))
	for _, a := range args {
		m[a.Key] = a.Value()
	}
	return m
}

// WriteJSONL writes the events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		je := jsonlEvent{
			Seq:   e.Seq,
			Phase: string(e.Phase),
			Name:  e.Name,
			Cat:   e.Cat,
			TSUS:  e.TS,
			TID:   e.TID,
			Args:  argsMap(e.Args),
		}
		if e.Phase == PhaseComplete || e.Phase == PhaseEnd {
			je.DurUS = e.Dur
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one entry of the Chrome trace-event JSON array format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// understood by Perfetto and chrome://tracing. Timestamps and durations are
// microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   *int64         `json:"dur,omitempty"`
	PID   int64          `json:"pid"`
	TID   int64          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromePID is the process id stamped on every exported event; the
// recorder traces one process, so it is constant.
const ChromePID = 1

// WriteChrome writes the events as a Chrome trace-event JSON array. For
// PhaseEnd events the recorded duration is carried in the args (the format
// keys duration off the matching 'B' event's timestamps), so nothing
// recorded is lost.
func WriteChrome(w io.Writer, events []Event) error {
	out := make([]chromeEvent, 0, len(events))
	for _, e := range events {
		ce := chromeEvent{
			Name:  e.Name,
			Cat:   e.Cat,
			Phase: string(e.Phase),
			TS:    e.TS,
			PID:   ChromePID,
			TID:   e.TID,
			Args:  argsMap(e.Args),
		}
		if ce.Cat == "" {
			ce.Cat = "default"
		}
		switch e.Phase {
		case PhaseComplete:
			d := e.Dur
			ce.Dur = &d
			// A Complete event's ts is its start time.
			ce.TS = e.TS - e.Dur
			if ce.TS < 0 {
				ce.TS = 0
			}
		case PhaseInstant:
			ce.Scope = "t" // thread-scoped instant
		case PhaseEnd:
			if e.Dur > 0 {
				if ce.Args == nil {
					ce.Args = map[string]any{}
				}
				ce.Args["dur_us"] = e.Dur
			}
		}
		out = append(out, ce)
	}
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
