package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Meta is the optional first line of a JSONL dump, identifying the process
// that wrote it and anchoring its relative timestamps to the wall clock so
// dumps from several processes can be stitched onto one timeline.
type Meta struct {
	// FinqTrace marks the line as dump metadata (format version, ≥1).
	FinqTrace int `json:"finq_trace"`
	// Process names the emitting process (service name, shard label).
	Process string `json:"process,omitempty"`
	// EpochUnixNano is the recorder's arming instant on the wall clock;
	// every event's ts_us is relative to it.
	EpochUnixNano int64 `json:"epoch_unix_ns,omitempty"`
}

// jsonlEvent is the JSONL rendering of an Event: flat, one object per line,
// grep- and jq-friendly. The trace/span/parent fields are the W3C
// lowercase-hex IDs, present only on events recorded with an identity.
type jsonlEvent struct {
	Seq    int64          `json:"seq"`
	Phase  string         `json:"ph"`
	Name   string         `json:"name"`
	Cat    string         `json:"cat,omitempty"`
	TSUS   int64          `json:"ts_us"`
	DurUS  int64          `json:"dur_us,omitempty"`
	TID    int64          `json:"tid"`
	Trace  string         `json:"trace,omitempty"`
	Span   string         `json:"span,omitempty"`
	Parent string         `json:"parent,omitempty"`
	Args   map[string]any `json:"args,omitempty"`
}

// argsMap renders an event's args for JSON output.
func argsMap(args []Arg) map[string]any {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]any, len(args))
	for _, a := range args {
		m[a.Key] = a.Value()
	}
	return m
}

// WriteJSONL writes the events one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if err := writeJSONLBody(bw, events); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteJSONLMeta writes a metadata header line followed by the events —
// the dump format `finq trace stitch` consumes. The meta line carries the
// process name and the recorder's epoch so N dumps align on one timeline.
func WriteJSONLMeta(w io.Writer, meta Meta, events []Event) error {
	bw := bufio.NewWriter(w)
	if meta.FinqTrace <= 0 {
		meta.FinqTrace = 1
	}
	enc := json.NewEncoder(bw)
	if err := enc.Encode(meta); err != nil {
		return err
	}
	if err := writeJSONLBody(bw, events); err != nil {
		return err
	}
	return bw.Flush()
}

func writeJSONLBody(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, e := range events {
		je := jsonlEvent{
			Seq:    e.Seq,
			Phase:  string(e.Phase),
			Name:   e.Name,
			Cat:    e.Cat,
			TSUS:   e.TS,
			TID:    e.TID,
			Trace:  e.Trace,
			Span:   e.Span,
			Parent: e.Parent,
			Args:   argsMap(e.Args),
		}
		if e.Phase == PhaseComplete || e.Phase == PhaseEnd {
			je.DurUS = e.Dur
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a JSONL dump back into events, accepting both the bare
// format (WriteJSONL) and the metadata-headed format (WriteJSONLMeta); the
// returned Meta is the zero value when the dump has no header. Blank lines
// are skipped. Args round-trip with keys sorted (emission order is not
// recorded in JSON objects); float-free int values are restored as ints.
func ReadJSONL(r io.Reader) (Meta, []Event, error) {
	var meta Meta
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	first := true
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if first {
			first = false
			var probe struct {
				FinqTrace int `json:"finq_trace"`
			}
			if err := json.Unmarshal(raw, &probe); err == nil && probe.FinqTrace > 0 {
				if err := json.Unmarshal(raw, &meta); err != nil {
					return Meta{}, nil, fmt.Errorf("trace: bad meta line: %w", err)
				}
				continue
			}
		}
		var je jsonlEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return Meta{}, nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if len(je.Phase) != 1 {
			return Meta{}, nil, fmt.Errorf("trace: line %d: bad phase %q", line, je.Phase)
		}
		e := Event{
			Seq:    je.Seq,
			Phase:  Phase(je.Phase[0]),
			Name:   je.Name,
			Cat:    je.Cat,
			TS:     je.TSUS,
			Dur:    je.DurUS,
			TID:    je.TID,
			Trace:  je.Trace,
			Span:   je.Span,
			Parent: je.Parent,
		}
		if len(je.Args) > 0 {
			keys := make([]string, 0, len(je.Args))
			for k := range je.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				switch v := je.Args[k].(type) {
				case string:
					e.Args = append(e.Args, Str(k, v))
				case float64:
					e.Args = append(e.Args, I64(k, int64(v)))
				case json.Number:
					n, _ := v.Int64()
					e.Args = append(e.Args, I64(k, n))
				default:
					e.Args = append(e.Args, Str(k, fmt.Sprint(v)))
				}
			}
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return Meta{}, nil, err
	}
	return meta, events, nil
}

// chromeEvent is one entry of the Chrome trace-event JSON array format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// understood by Perfetto and chrome://tracing. Timestamps and durations are
// microseconds. ID and BindingPoint serve flow events ("s"/"f"), which draw
// the parent→child arrows between span lanes.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   *int64         `json:"dur,omitempty"`
	PID   int64          `json:"pid"`
	TID   int64          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	ID    string         `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromePID is the process id stamped on every event of a single-process
// export; Stitch assigns each dump its own pid lane instead.
const ChromePID = 1

// chromeFromEvent renders one recorded event for the Chrome format under
// the given pid, shifting its timestamp by shift µs (used by Stitch to
// align process epochs).
func chromeFromEvent(e Event, pid, shift int64) chromeEvent {
	ce := chromeEvent{
		Name:  e.Name,
		Cat:   e.Cat,
		Phase: string(e.Phase),
		TS:    e.TS + shift,
		PID:   pid,
		TID:   e.TID,
		Args:  argsMap(e.Args),
	}
	if ce.Cat == "" {
		ce.Cat = "default"
	}
	if e.Trace != "" {
		if ce.Args == nil {
			ce.Args = map[string]any{}
		}
		ce.Args["trace_id"] = e.Trace
		ce.Args["span_id"] = e.Span
		if e.Parent != "" {
			ce.Args["parent_id"] = e.Parent
		}
	}
	switch e.Phase {
	case PhaseComplete:
		d := e.Dur
		ce.Dur = &d
		// A Complete event's ts is its start time.
		ce.TS = e.TS + shift - e.Dur
		if ce.TS < 0 {
			ce.TS = 0
		}
	case PhaseInstant:
		ce.Scope = "t" // thread-scoped instant
	case PhaseEnd:
		if e.Dur > 0 {
			if ce.Args == nil {
				ce.Args = map[string]any{}
			}
			ce.Args["dur_us"] = e.Dur
		}
	}
	return ce
}

// spanSite locates a span's begin event for flow binding.
type spanSite struct {
	pid int64
	tid int64
	ts  int64
}

// flowPair emits the "s"→"f" flow arrow from a parent span's begin to a
// child span's begin. The flow id is the child's span ID (unique per edge).
func flowPair(childSpan string, parent, child spanSite) [2]chromeEvent {
	start := chromeEvent{
		Name: "trace", Cat: "flow", Phase: "s",
		TS: parent.ts, PID: parent.pid, TID: parent.tid, ID: childSpan,
	}
	finish := chromeEvent{
		Name: "trace", Cat: "flow", Phase: "f",
		TS: child.ts, PID: child.pid, TID: child.tid, ID: childSpan, BP: "e",
	}
	if finish.TS < start.TS {
		// Flows must not point backwards in time; clamp to the parent's
		// begin (clock skew across stitched processes).
		finish.TS = start.TS
	}
	return [2]chromeEvent{start, finish}
}

// crossFlows computes the flow arrows for every parent→child span edge
// whose two ends sit on different lanes (goroutines or processes): within
// a lane, B/E nesting already shows the hierarchy; across lanes, the arrow
// is the only link.
func crossFlows(begins map[string]spanSite, events []Event, pid, shift int64, out []chromeEvent) []chromeEvent {
	for _, e := range events {
		if e.Phase != PhaseBegin || e.Parent == "" || e.Span == "" {
			continue
		}
		parent, ok := begins[e.Parent]
		if !ok {
			continue
		}
		child := spanSite{pid: pid, tid: e.TID, ts: e.TS + shift}
		if parent.pid == child.pid && parent.tid == child.tid {
			continue
		}
		fp := flowPair(e.Span, parent, child)
		out = append(out, fp[0], fp[1])
	}
	return out
}

// indexBegins records where each identified span begins.
func indexBegins(begins map[string]spanSite, events []Event, pid, shift int64) {
	for _, e := range events {
		if e.Phase == PhaseBegin && e.Span != "" {
			begins[e.Span] = spanSite{pid: pid, tid: e.TID, ts: e.TS + shift}
		}
	}
}

// WriteChrome writes the events as a Chrome trace-event JSON array. For
// PhaseEnd events the recorded duration is carried in the args (the format
// keys duration off the matching 'B' event's timestamps), so nothing
// recorded is lost. Span identities are carried in the args, and
// parent→child edges that cross goroutines are drawn as flow arrows.
func WriteChrome(w io.Writer, events []Event) error {
	out := make([]chromeEvent, 0, len(events))
	for _, e := range events {
		out = append(out, chromeFromEvent(e, ChromePID, 0))
	}
	begins := make(map[string]spanSite)
	indexBegins(begins, events, ChromePID, 0)
	out = crossFlows(begins, events, ChromePID, 0, out)
	return writeChromeArray(w, out)
}

func writeChromeArray(w io.Writer, out []chromeEvent) error {
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
