// Package tracetest validates exported Chrome traces, shared between the
// trace package's own tests, the end-to-end CLI tests in the repository
// root, and the CI stitch check (scripts/tracecheck.go). The core is
// Check, which works without a testing.T so non-test tooling can call it.
package tracetest

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// Check validates that data is a structurally sound Chrome trace-event
// array: parseable JSON; only B/E/X/i/M/s/f phases; X events carrying
// durations; flow events carrying ids, with every "f" preceded by a
// matching "s"; consistent pids (every recorded event's pid names a lane
// introduced by the array, when "M" process_name metadata is present); and
// per-(pid,tid) begin/end stack discipline — depth never negative, every
// span closed, E names matching their B. It returns the number of
// recorded events (metadata and flow arrows excluded) and a list of
// problems, empty when the trace is valid.
func Check(data []byte) (n int, problems []string) {
	var evs []struct {
		Name  string         `json:"name"`
		Cat   string         `json:"cat"`
		Phase string         `json:"ph"`
		TS    int64          `json:"ts"`
		Dur   *int64         `json:"dur"`
		PID   int64          `json:"pid"`
		TID   int64          `json:"tid"`
		ID    string         `json:"id"`
		BP    string         `json:"bp"`
		Args  map[string]any `json:"args"`
	}
	if err := json.Unmarshal(data, &evs); err != nil {
		return 0, []string{fmt.Sprintf("export is not a JSON array: %v", err)}
	}
	if len(evs) == 0 {
		return 0, []string{"export holds no events"}
	}
	errf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	type lane struct{ pid, tid int64 }
	stacks := make(map[lane][]string) // open span names per (pid, tid)
	namedPIDs := make(map[int64]bool) // pids introduced by "M" process_name
	openFlows := make(map[string]int) // flow id -> outstanding "s" count
	hasMeta := false
	for i, e := range evs {
		if e.Name == "" {
			errf("event %d has no name", i)
		}
		switch e.Phase {
		case "B":
			l := lane{e.PID, e.TID}
			stacks[l] = append(stacks[l], e.Name)
		case "E":
			l := lane{e.PID, e.TID}
			st := stacks[l]
			if len(st) == 0 {
				errf("event %d: E %q on pid %d tid %d with no open span", i, e.Name, e.PID, e.TID)
				continue
			}
			if top := st[len(st)-1]; top != e.Name {
				errf("event %d: E %q closes open span %q on pid %d tid %d", i, e.Name, top, e.PID, e.TID)
			}
			stacks[l] = st[:len(st)-1]
		case "X":
			if e.Dur == nil {
				errf("event %d: X %q without dur", i, e.Name)
			}
		case "i":
			// fine: instants carry no pairing obligations
		case "M":
			hasMeta = true
			if e.Name == "process_name" {
				namedPIDs[e.PID] = true
			}
		case "s":
			if e.ID == "" {
				errf("event %d: flow start without id", i)
			}
			openFlows[e.ID]++
		case "f":
			if e.ID == "" {
				errf("event %d: flow finish without id", i)
			}
			if openFlows[e.ID] == 0 {
				errf("event %d: flow finish %q without a start", i, e.ID)
			} else {
				openFlows[e.ID]--
			}
		default:
			errf("event %d: unexpected phase %q", i, e.Phase)
		}
		if e.TS < 0 {
			errf("event %d: negative ts %d", i, e.TS)
		}
		switch e.Phase {
		case "B", "E", "X", "i":
			n++
			if hasMeta && len(namedPIDs) > 0 && !namedPIDs[e.PID] {
				errf("event %d: pid %d has no process_name lane", i, e.PID)
			}
		}
	}
	for l, st := range stacks {
		if len(st) != 0 {
			errf("pid %d tid %d ends with %d unclosed spans: %s", l.pid, l.tid, len(st), strings.Join(st, ", "))
		}
	}
	return n, problems
}

// ValidateChrome asserts data is a structurally valid Chrome trace and
// returns the recorded-event count; each problem Check finds becomes a
// test error.
func ValidateChrome(t *testing.T, data []byte) int {
	t.Helper()
	n, problems := Check(data)
	for _, p := range problems {
		t.Error(p)
	}
	return n
}
