// Package tracetest validates exported Chrome traces in tests, shared
// between the trace package's own tests and the end-to-end CLI tests in
// the repository root.
package tracetest

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs/trace"
)

// ValidateChrome asserts data is a structurally valid Chrome trace-event
// array: parseable JSON, only B/E/X/i phases, one pid, X events carrying
// durations, and per-tid begin/end stack discipline (depth never negative,
// every span closed, E names matching their B). Returns the event count.
func ValidateChrome(t *testing.T, data []byte) int {
	t.Helper()
	var evs []struct {
		Name  string         `json:"name"`
		Cat   string         `json:"cat"`
		Phase string         `json:"ph"`
		TS    int64          `json:"ts"`
		Dur   *int64         `json:"dur"`
		PID   int64          `json:"pid"`
		TID   int64          `json:"tid"`
		Args  map[string]any `json:"args"`
	}
	if err := json.Unmarshal(data, &evs); err != nil {
		t.Fatalf("export is not a JSON array: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("export holds no events")
	}
	stacks := make(map[int64][]string) // per-tid open span names
	for i, e := range evs {
		if e.Name == "" {
			t.Errorf("event %d has no name", i)
		}
		if e.PID != trace.ChromePID {
			t.Errorf("event %d pid %d, want %d", i, e.PID, trace.ChromePID)
		}
		switch e.Phase {
		case "B":
			stacks[e.TID] = append(stacks[e.TID], e.Name)
		case "E":
			st := stacks[e.TID]
			if len(st) == 0 {
				t.Errorf("event %d: E %q on tid %d with no open span", i, e.Name, e.TID)
				continue
			}
			if top := st[len(st)-1]; top != e.Name {
				t.Errorf("event %d: E %q closes open span %q on tid %d", i, e.Name, top, e.TID)
			}
			stacks[e.TID] = st[:len(st)-1]
		case "X":
			if e.Dur == nil {
				t.Errorf("event %d: X %q without dur", i, e.Name)
			}
		case "i":
			// fine: instants carry no pairing obligations
		default:
			t.Errorf("event %d: unexpected phase %q", i, e.Phase)
		}
		if e.TS < 0 {
			t.Errorf("event %d: negative ts %d", i, e.TS)
		}
	}
	for tid, st := range stacks {
		if len(st) != 0 {
			t.Errorf("tid %d ends with %d unclosed spans: %s", tid, len(st), strings.Join(st, ", "))
		}
	}
	return len(evs)
}
