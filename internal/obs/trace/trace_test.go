package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestDisarmedIsSilent: with the recorder disarmed, Begin returns 0 and
// nothing is recorded.
func TestDisarmedIsSilent(t *testing.T) {
	Disarm()
	if tid := Begin("x", "test"); tid != 0 {
		t.Fatalf("Begin while disarmed returned tid %d, want 0", tid)
	}
	Instant("y", "test")
	Complete("z", "test", time.Now())
	if n := Len(); n != 0 {
		// Len reflects whatever ring the last Arm left; a fresh test
		// binary has none, so emissions must not have created one.
		t.Fatalf("disarmed emissions stored %d events", n)
	}
}

// TestBeginEndRoundtrip: an armed Begin/End pair lands in the ring in
// order, on the same goroutine id, with its args intact.
func TestBeginEndRoundtrip(t *testing.T) {
	Arm(16)
	defer Disarm()
	start := time.Now()
	tid := Begin("op", "test", I64("size", 7))
	if tid == 0 {
		t.Fatal("Begin returned 0 while armed")
	}
	End("op", "test", tid, start, Str("result", "ok"))
	evs := Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	b, e := evs[0], evs[1]
	if b.Phase != PhaseBegin || e.Phase != PhaseEnd {
		t.Fatalf("phases %c %c, want B E", b.Phase, e.Phase)
	}
	if b.TID != e.TID || b.TID != tid {
		t.Fatalf("tid mismatch: B=%d E=%d Begin()=%d", b.TID, e.TID, tid)
	}
	if b.Seq >= e.Seq {
		t.Fatalf("sequence not increasing: %d then %d", b.Seq, e.Seq)
	}
	if len(b.Args) != 1 || b.Args[0].Key != "size" || b.Args[0].Int != 7 {
		t.Fatalf("begin args %+v", b.Args)
	}
	if len(e.Args) != 1 || e.Args[0].Key != "result" || e.Args[0].Str != "ok" {
		t.Fatalf("end args %+v", e.Args)
	}
}

// TestRingWrap: emitting past capacity drops the oldest events, counts
// them, and keeps the newest in order.
func TestRingWrap(t *testing.T) {
	Arm(8)
	defer Disarm()
	for i := 0; i < 20; i++ {
		Instant("tick", "test", I64("i", int64(i)))
	}
	if got := Dropped(); got != 12 {
		t.Fatalf("dropped %d, want 12", got)
	}
	evs := Events()
	if len(evs) != 8 {
		t.Fatalf("ring holds %d, want 8", len(evs))
	}
	for j, e := range evs {
		if want := int64(12 + j); e.Args[0].Int != want {
			t.Fatalf("slot %d holds i=%d, want %d", j, e.Args[0].Int, want)
		}
	}
}

// TestSlowLogSurvivesWrap: a slow End event evicted from the ring is
// retained in the slow-op log and re-merged, in sequence order, by Dump.
func TestSlowLogSurvivesWrap(t *testing.T) {
	Arm(8)
	defer Disarm()
	SetSlowThreshold(0) // everything with a duration qualifies
	defer SetSlowThreshold(time.Millisecond)
	start := time.Now().Add(-10 * time.Millisecond)
	tid := Begin("slowop", "test")
	End("slowop", "test", tid, start)
	for i := 0; i < 16; i++ { // wrap the ring well past the slow pair
		Instant("tick", "test")
	}
	slow := SlowEvents()
	if len(slow) != 1 || slow[0].Name != "slowop" || slow[0].Phase != PhaseEnd {
		t.Fatalf("slow log %+v, want one slowop End", slow)
	}
	dump := Dump()
	if len(dump) != 9 { // 8 ring slots + 1 evicted slow event
		t.Fatalf("dump holds %d events, want 9", len(dump))
	}
	if dump[0].Name != "slowop" {
		t.Fatalf("dump[0] = %q, want the evicted slow event first", dump[0].Name)
	}
	for i := 1; i < len(dump); i++ {
		if dump[i].Seq <= dump[i-1].Seq {
			t.Fatalf("dump out of order at %d: seq %d after %d", i, dump[i].Seq, dump[i-1].Seq)
		}
	}
}

// TestArmResets: re-arming clears prior events, drops, and sequence state.
func TestArmResets(t *testing.T) {
	Arm(4)
	defer Disarm()
	for i := 0; i < 10; i++ {
		Instant("tick", "test")
	}
	Arm(4)
	if Len() != 0 || Dropped() != 0 {
		t.Fatalf("after re-Arm: len=%d dropped=%d, want 0 0", Len(), Dropped())
	}
	Instant("fresh", "test")
	evs := Events()
	if len(evs) != 1 || evs[0].Seq != 1 {
		t.Fatalf("after re-Arm first event %+v, want seq 1", evs)
	}
}

// TestWriteJSONL: one valid JSON object per line carrying the event fields.
func TestWriteJSONL(t *testing.T) {
	Arm(16)
	defer Disarm()
	start := time.Now()
	tid := Begin("op", "test")
	End("op", "test", tid, start, I64("rows", 3))
	Instant("mark", "test", Str("kind", "probe"))
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, Events()); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	if lines[0]["ph"] != "B" || lines[1]["ph"] != "E" || lines[2]["ph"] != "i" {
		t.Fatalf("phases %v %v %v", lines[0]["ph"], lines[1]["ph"], lines[2]["ph"])
	}
	if args, ok := lines[1]["args"].(map[string]any); !ok || args["rows"] != float64(3) {
		t.Fatalf("end args %v", lines[1]["args"])
	}
}

// TestWriteChromeStructure validates the Chrome trace-event export
// structurally: a well-formed JSON array whose events all use the B/E/X/i
// phases, share one pid, X events carry durations, and per-tid B/E nesting
// stays balanced. The walk mirrors tracetest.ValidateChrome, restated here
// because the trace package cannot import its own test helper package
// without a cycle.
func TestWriteChromeStructure(t *testing.T) {
	Arm(64)
	defer Disarm()
	outer := time.Now()
	tid := Begin("outer", "test")
	inner := time.Now()
	tid2 := Begin("inner", "test")
	Instant("mark", "test")
	End("inner", "test", tid2, inner)
	Complete("leaf", "test", time.Now(), I64("n", 1))
	End("outer", "test", tid, outer, I64("rows", 2))
	var buf bytes.Buffer
	if err := WriteChrome(&buf, Dump()); err != nil {
		t.Fatal(err)
	}
	var evs []struct {
		Name  string `json:"name"`
		Phase string `json:"ph"`
		TS    int64  `json:"ts"`
		Dur   *int64 `json:"dur"`
		PID   int64  `json:"pid"`
		TID   int64  `json:"tid"`
	}
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("export is not a JSON array: %v", err)
	}
	if len(evs) != 6 {
		t.Fatalf("exported %d events, want 6", len(evs))
	}
	stacks := make(map[int64][]string)
	for i, e := range evs {
		if e.PID != ChromePID {
			t.Errorf("event %d pid %d, want %d", i, e.PID, ChromePID)
		}
		if e.TS < 0 {
			t.Errorf("event %d: negative ts %d", i, e.TS)
		}
		switch e.Phase {
		case "B":
			stacks[e.TID] = append(stacks[e.TID], e.Name)
		case "E":
			st := stacks[e.TID]
			if len(st) == 0 || st[len(st)-1] != e.Name {
				t.Fatalf("event %d: E %q does not close the open span (stack %v)", i, e.Name, st)
			}
			stacks[e.TID] = st[:len(st)-1]
		case "X":
			if e.Dur == nil {
				t.Errorf("event %d: X %q without dur", i, e.Name)
			}
		case "i":
		default:
			t.Errorf("event %d: unexpected phase %q", i, e.Phase)
		}
	}
	for tid, st := range stacks {
		if len(st) != 0 {
			t.Errorf("tid %d ends with unclosed spans %s", tid, strings.Join(st, ", "))
		}
	}
}
