package trace

import (
	"fmt"
	"io"
	"sort"
)

// This file merges flight-recorder dumps from N processes into one Chrome
// trace: each process becomes its own pid lane (named via "M" metadata
// events), per-process epochs align the lanes on a shared timeline, and
// parent→child span edges whose ends live in different processes — the
// request a client forwarded to another shard — are drawn as flow arrows.
// `finq trace stitch` is the CLI face of Stitch.

// ProcessDump is one process's contribution to a stitched trace.
type ProcessDump struct {
	// Name labels the process lane ("finqd-a", "shard-1"); when empty the
	// Meta.Process name, then a positional name, is used.
	Name string
	// Meta is the dump's metadata header (zero when the JSONL had none).
	Meta Meta
	// Events are the dump's recorded events.
	Events []Event
}

// StitchStats summarizes what a stitch produced.
type StitchStats struct {
	// Processes is the number of input dumps (pid lanes).
	Processes int
	// Events is the total recorded events written (flows and metadata not
	// counted).
	Events int
	// Traces is the number of distinct trace IDs seen.
	Traces int
	// CrossEdges is the number of parent→child span edges that connect two
	// different processes — the stitch's reason to exist.
	CrossEdges int
}

// Stitch merges the dumps into one Chrome trace written to w. Dumps are
// assigned pid lanes in order (pid 1, 2, ...). When every dump carries an
// epoch (WriteJSONLMeta), events are shifted onto the earliest epoch's
// timeline so cross-process durations read true; without epochs the dumps
// share the trace's zero point as-is.
func Stitch(w io.Writer, dumps []ProcessDump) (StitchStats, error) {
	var stats StitchStats
	if len(dumps) == 0 {
		return stats, fmt.Errorf("trace: nothing to stitch")
	}
	stats.Processes = len(dumps)

	// A shared timeline needs every dump anchored; one missing epoch and
	// shifting would misalign rather than align.
	allAnchored := true
	minEpoch := int64(0)
	for _, d := range dumps {
		if d.Meta.EpochUnixNano <= 0 {
			allAnchored = false
			break
		}
		if minEpoch == 0 || d.Meta.EpochUnixNano < minEpoch {
			minEpoch = d.Meta.EpochUnixNano
		}
	}
	shiftFor := func(d ProcessDump) int64 {
		if !allAnchored {
			return 0
		}
		return (d.Meta.EpochUnixNano - minEpoch) / 1000
	}

	out := make([]chromeEvent, 0, 64)
	begins := make(map[string]spanSite)
	traces := make(map[string]struct{})
	for i, d := range dumps {
		pid := int64(i + 1)
		name := d.Name
		if name == "" {
			name = d.Meta.Process
		}
		if name == "" {
			name = fmt.Sprintf("process-%d", pid)
		}
		out = append(out, chromeEvent{
			Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]any{"name": name},
		})
		shift := shiftFor(d)
		indexBegins(begins, d.Events, pid, shift)
		for _, e := range d.Events {
			out = append(out, chromeFromEvent(e, pid, shift))
			if e.Trace != "" {
				traces[e.Trace] = struct{}{}
			}
		}
		stats.Events += len(d.Events)
	}
	// Flow arrows for every cross-lane edge; count the cross-process ones.
	for i, d := range dumps {
		pid := int64(i + 1)
		shift := shiftFor(d)
		before := len(out)
		out = crossFlows(begins, d.Events, pid, shift, out)
		for _, fe := range out[before:] {
			if fe.Phase == "s" && fe.PID != pid {
				stats.CrossEdges++
			}
		}
	}
	stats.Traces = len(traces)

	// Keep the output deterministic and viewer-friendly: metadata first,
	// then by timestamp (stable, so same-ts events keep emission order).
	sort.SliceStable(out, func(a, b int) bool {
		ma, mb := out[a].Phase == "M", out[b].Phase == "M"
		if ma != mb {
			return ma
		}
		return out[a].TS < out[b].TS
	})
	return stats, writeChromeArray(w, out)
}
