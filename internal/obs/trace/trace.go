// Package trace is the execution flight recorder behind internal/obs: a
// bounded, lock-cheap ring of structured events (span begin/end, complete
// ops, instant marks, each with key=value args) that the instrumented hot
// paths feed while tracing is armed.
//
// The aggregate metrics of internal/obs answer "how much, overall"; this
// package answers "what happened, in order, in *this* run" — which
// subformula blew up during Cooper elimination, why one enumeration row
// cost 100× the previous one, where a Turing simulation spent its budget.
// Events carry microsecond timestamps relative to the arming instant, the
// emitting goroutine's id, and (when the computation has a distributed
// trace identity, see internal/obs/tracectx) the W3C trace/span/parent
// IDs, so the exporters (JSONL, the Chrome trace-event format loadable in
// Perfetto or chrome://tracing, and OTLP/JSON resource spans) reconstruct
// the full span tree — within one process and, via Stitch, across many.
//
// The recorder is an instantiable type so multiple server instances in one
// process (tests, cmd/finqload shards) each get their own ring; Default()
// is the process-wide instance the package-level functions delegate to,
// and WithRecorder/FromContext carry a specific recorder on a context.
//
// Tracing is disarmed by default. Every emit site first checks Armed() —
// a single atomic load — so the disarmed cost matches the obs toggle's
// budget: instrumented code pays ~1ns when nobody is recording. When armed,
// events go into a fixed-capacity ring guarded by one mutex held only for
// the slot copy; when the ring wraps, the oldest events are dropped (and
// counted), except that slow operations — spans and complete events whose
// duration meets SetSlowThreshold — are retained in a separate bounded
// slow-op log so the interesting outliers survive arbitrarily long runs.
package trace

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Phase classifies an event, using the Chrome trace-event phase letters.
type Phase byte

const (
	// PhaseBegin opens a span on its goroutine ('B').
	PhaseBegin Phase = 'B'
	// PhaseEnd closes the most recent open span on its goroutine ('E').
	PhaseEnd Phase = 'E'
	// PhaseComplete is a self-contained timed operation ('X', with Dur).
	PhaseComplete Phase = 'X'
	// PhaseInstant is a point-in-time mark ('i').
	PhaseInstant Phase = 'i'
)

// Arg is one key=value event argument. Values are either int64 or string;
// the two-field form avoids an interface allocation per argument.
type Arg struct {
	Key   string
	Str   string
	Int   int64
	IsStr bool
}

// I64 builds an integer argument.
func I64(key string, v int64) Arg { return Arg{Key: key, Int: v} }

// Str builds a string argument.
func Str(key, v string) Arg { return Arg{Key: key, Str: v, IsStr: true} }

// Value returns the argument's value as an any (for JSON rendering).
func (a Arg) Value() any {
	if a.IsStr {
		return a.Str
	}
	return a.Int
}

// Ident is a span's position in a distributed trace: lowercase-hex W3C
// trace, span, and parent-span IDs (tracectx renders them). All fields
// empty means the event has no distributed identity — recorded before
// propagation existed or outside any request.
type Ident struct {
	Trace  string
	Span   string
	Parent string
}

// Event is one recorded occurrence. TS and Dur are microseconds; TS is
// measured from the Arm call. Seq is a per-recorder emission sequence
// number used to order and deduplicate events across the ring and the
// slow-op log. Trace/Span/Parent place span events in the distributed
// trace tree (empty when the computation had no trace identity).
type Event struct {
	Seq    int64
	Phase  Phase
	Name   string
	Cat    string
	TS     int64
	Dur    int64 // PhaseComplete and PhaseEnd only
	TID    int64
	Trace  string
	Span   string
	Parent string
	Args   []Arg
}

// DefaultCapacity is the ring size used when Arm is given a non-positive
// capacity: 64k events ≈ a few MB, enough for seconds of dense recording.
const DefaultCapacity = 1 << 16

// defaultSlowCap bounds the slow-op log.
const defaultSlowCap = 256

// Recorder is one flight recorder: an armed gate, a bounded event ring,
// and a slow-op log. The zero value is ready to use (disarmed, 1ms slow
// threshold applied on first Arm); NewRecorder spells that out.
type Recorder struct {
	armed atomic.Bool

	mu      sync.Mutex
	ring    []Event
	next    int // next write slot
	wrapped bool
	seq     int64
	dropped int64
	epoch   time.Time

	slow       []Event
	slowThresh int64 // µs; End/Complete events at least this slow are retained
}

// NewRecorder returns a fresh, disarmed recorder with the default 1ms
// slow-op threshold.
func NewRecorder() *Recorder {
	return &Recorder{slowThresh: 1000}
}

// defaultRec is the process-wide recorder behind the package-level API.
var defaultRec = NewRecorder()

// Default returns the process-wide recorder the package-level functions
// (Arm, Begin, Events, ...) operate on.
func Default() *Recorder { return defaultRec }

// recCtxKey carries a *Recorder on a context.
type recCtxKey struct{}

// WithRecorder returns a context that routes span events emitted under it
// to r instead of the process-wide default. A nil r returns ctx unchanged.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, recCtxKey{}, r)
}

// FromContext returns the recorder carried by ctx, or Default() when none
// (or ctx is nil) — callers always get a usable recorder.
func FromContext(ctx context.Context) *Recorder {
	if ctx != nil {
		if r, ok := ctx.Value(recCtxKey{}).(*Recorder); ok && r != nil {
			return r
		}
	}
	return defaultRec
}

// Arm starts recording into a fresh ring of the given capacity
// (DefaultCapacity when cap ≤ 0). Arming resets previously recorded events,
// the drop counter, and the timestamp epoch.
func (r *Recorder) Arm(capacity int) {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	r.mu.Lock()
	r.ring = make([]Event, capacity)
	r.next = 0
	r.wrapped = false
	r.seq = 0
	r.dropped = 0
	r.slow = nil
	r.epoch = time.Now()
	if r.slowThresh == 0 {
		r.slowThresh = 1000
	}
	r.mu.Unlock()
	r.armed.Store(true)
}

// Disarm stops recording. Events already in the ring remain readable via
// Events/Dump until the next Arm.
func (r *Recorder) Disarm() { r.armed.Store(false) }

// Armed reports whether the recorder is accepting events. Emit sites check
// this (one atomic load) before building arguments, so the disarmed cost of
// an instrumented site is a single branch.
func (r *Recorder) Armed() bool { return r.armed.Load() }

// SetSlowThreshold sets the duration at or above which ending spans and
// complete events are additionally retained in the slow-op log, surviving
// ring wrap-around. The default is 1ms.
func (r *Recorder) SetSlowThreshold(d time.Duration) {
	r.mu.Lock()
	r.slowThresh = d.Microseconds()
	r.mu.Unlock()
}

// Epoch returns the arming instant — the zero point of every event's TS.
// Its wall-clock reading anchors exported traces (OTLP unix nanos, stitch
// alignment across processes). Zero before the first Arm.
func (r *Recorder) Epoch() time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// GoID returns the calling goroutine's id, parsed from the runtime stack
// header ("goroutine N [...]"). It costs roughly a microsecond, paid only
// while tracing is armed; span emitters resolve it once per span.
func GoID() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const skip = len("goroutine ")
	id := int64(0)
	for i := skip; i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}

// emit appends one event to the ring (and, when slow enough, to the
// slow-op log). The timestamp is taken under the lock so it is consistent
// with the epoch even across a concurrent re-Arm.
func (r *Recorder) emit(ph Phase, name, cat string, tid, dur int64, id Ident, args []Arg) {
	r.mu.Lock()
	if !r.armed.Load() || len(r.ring) == 0 {
		r.mu.Unlock()
		return
	}
	r.seq++
	e := Event{
		Seq:    r.seq,
		Phase:  ph,
		Name:   name,
		Cat:    cat,
		TS:     time.Since(r.epoch).Microseconds(),
		Dur:    dur,
		TID:    tid,
		Trace:  id.Trace,
		Span:   id.Span,
		Parent: id.Parent,
		Args:   args,
	}
	if r.wrapped {
		r.dropped++
	}
	r.ring[r.next] = e
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.wrapped = true
	}
	if (ph == PhaseEnd || ph == PhaseComplete) && dur >= r.slowThresh && len(r.slow) < defaultSlowCap {
		r.slow = append(r.slow, e)
	}
	r.mu.Unlock()
}

// Begin emits a span-begin event and returns the goroutine id the matching
// End must be given (0 when disarmed, which End treats as "skip"). The
// Ident places the span in the distributed trace tree; pass the zero Ident
// for identity-less spans.
func (r *Recorder) Begin(name, cat string, id Ident, args ...Arg) int64 {
	if !r.armed.Load() {
		return 0
	}
	tid := GoID()
	r.emit(PhaseBegin, name, cat, tid, 0, id, args)
	return tid
}

// End emits the span-end event matching a Begin that returned tid. The
// duration is computed from start and drives slow-op retention. No-op when
// tid is 0.
func (r *Recorder) End(name, cat string, tid int64, start time.Time, id Ident, args ...Arg) {
	if tid == 0 || !r.armed.Load() {
		return
	}
	r.emit(PhaseEnd, name, cat, tid, time.Since(start).Microseconds(), id, args)
}

// Complete emits a self-contained timed event covering start..now.
func (r *Recorder) Complete(name, cat string, start time.Time, args ...Arg) {
	if !r.armed.Load() {
		return
	}
	r.emit(PhaseComplete, name, cat, GoID(), time.Since(start).Microseconds(), Ident{}, args)
}

// Instant emits a point-in-time mark.
func (r *Recorder) Instant(name, cat string, args ...Arg) {
	if !r.armed.Load() {
		return
	}
	r.emit(PhaseInstant, name, cat, GoID(), 0, Ident{}, args)
}

// Events returns the ring contents in emission order (oldest first).
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ringLocked()
}

func (r *Recorder) ringLocked() []Event {
	if !r.wrapped {
		return append([]Event(nil), r.ring[:r.next]...)
	}
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	return append(out, r.ring[:r.next]...)
}

// SlowEvents returns the slow-op log: End/Complete events whose duration
// met the slow threshold, retained even after the ring wrapped past them.
func (r *Recorder) SlowEvents() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.slow...)
}

// Dump merges the ring with the slow-op entries that have already been
// overwritten in the ring, ordered by sequence number — the complete
// retained record of the run.
func (r *Recorder) Dump() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	ring := r.ringLocked()
	oldest := int64(1)
	if len(ring) > 0 {
		oldest = ring[0].Seq
	} else {
		oldest = r.seq + 1
	}
	var evicted []Event
	for _, e := range r.slow {
		if e.Seq < oldest {
			evicted = append(evicted, e)
		}
	}
	if len(evicted) == 0 {
		return ring
	}
	return append(evicted, ring...)
}

// Dropped returns how many events were overwritten by ring wrap-around
// since the last Arm (slow-op retention not counted).
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len returns the number of events currently held in the ring.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.wrapped {
		return len(r.ring)
	}
	return r.next
}

// The package-level functions operate on Default(), preserving the
// original single-recorder API for the CLIs and any code with no context
// in hand.

// Arm arms the default recorder.
func Arm(capacity int) { defaultRec.Arm(capacity) }

// Disarm disarms the default recorder.
func Disarm() { defaultRec.Disarm() }

// Armed reports whether the default recorder is accepting events.
func Armed() bool { return defaultRec.Armed() }

// SetSlowThreshold sets the default recorder's slow-op retention threshold.
func SetSlowThreshold(d time.Duration) { defaultRec.SetSlowThreshold(d) }

// Begin emits a span-begin event on the default recorder (no identity).
func Begin(name, cat string, args ...Arg) int64 {
	return defaultRec.Begin(name, cat, Ident{}, args...)
}

// End emits a span-end event on the default recorder (no identity).
func End(name, cat string, tid int64, start time.Time, args ...Arg) {
	defaultRec.End(name, cat, tid, start, Ident{}, args...)
}

// Complete emits a self-contained timed event on the default recorder.
func Complete(name, cat string, start time.Time, args ...Arg) {
	defaultRec.Complete(name, cat, start, args...)
}

// Instant emits a point-in-time mark on the default recorder.
func Instant(name, cat string, args ...Arg) { defaultRec.Instant(name, cat, args...) }

// Events returns the default recorder's ring contents.
func Events() []Event { return defaultRec.Events() }

// SlowEvents returns the default recorder's slow-op log.
func SlowEvents() []Event { return defaultRec.SlowEvents() }

// Dump returns the default recorder's complete retained record.
func Dump() []Event { return defaultRec.Dump() }

// Dropped returns the default recorder's wrap-around drop count.
func Dropped() int64 { return defaultRec.Dropped() }

// Len returns the number of events in the default recorder's ring.
func Len() int { return defaultRec.Len() }
