// Package trace is the execution flight recorder behind internal/obs: a
// bounded, lock-cheap ring of structured events (span begin/end, complete
// ops, instant marks, each with key=value args) that the instrumented hot
// paths feed while tracing is armed.
//
// The aggregate metrics of internal/obs answer "how much, overall"; this
// package answers "what happened, in order, in *this* run" — which
// subformula blew up during Cooper elimination, why one enumeration row
// cost 100× the previous one, where a Turing simulation spent its budget.
// Events carry microsecond timestamps relative to the arming instant and
// the emitting goroutine's id, so the two exporters (JSONL and the Chrome
// trace-event format, loadable in Perfetto or chrome://tracing) reconstruct
// the full nested timeline per goroutine.
//
// Tracing is disarmed by default. Every emit site first checks Armed() —
// a single atomic load — so the disarmed cost matches the obs toggle's
// budget: instrumented code pays ~1ns when nobody is recording. When armed,
// events go into a fixed-capacity ring guarded by one mutex held only for
// the slot copy; when the ring wraps, the oldest events are dropped (and
// counted), except that slow operations — spans and complete events whose
// duration meets SetSlowThreshold — are retained in a separate bounded
// slow-op log so the interesting outliers survive arbitrarily long runs.
package trace

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Phase classifies an event, using the Chrome trace-event phase letters.
type Phase byte

const (
	// PhaseBegin opens a span on its goroutine ('B').
	PhaseBegin Phase = 'B'
	// PhaseEnd closes the most recent open span on its goroutine ('E').
	PhaseEnd Phase = 'E'
	// PhaseComplete is a self-contained timed operation ('X', with Dur).
	PhaseComplete Phase = 'X'
	// PhaseInstant is a point-in-time mark ('i').
	PhaseInstant Phase = 'i'
)

// Arg is one key=value event argument. Values are either int64 or string;
// the two-field form avoids an interface allocation per argument.
type Arg struct {
	Key   string
	Str   string
	Int   int64
	IsStr bool
}

// I64 builds an integer argument.
func I64(key string, v int64) Arg { return Arg{Key: key, Int: v} }

// Str builds a string argument.
func Str(key, v string) Arg { return Arg{Key: key, Str: v, IsStr: true} }

// Value returns the argument's value as an any (for JSON rendering).
func (a Arg) Value() any {
	if a.IsStr {
		return a.Str
	}
	return a.Int
}

// Event is one recorded occurrence. TS and Dur are microseconds; TS is
// measured from the Arm call. Seq is a global emission sequence number used
// to order and deduplicate events across the ring and the slow-op log.
type Event struct {
	Seq   int64
	Phase Phase
	Name  string
	Cat   string
	TS    int64
	Dur   int64 // PhaseComplete and PhaseEnd only
	TID   int64
	Args  []Arg
}

// DefaultCapacity is the ring size used when Arm is given a non-positive
// capacity: 64k events ≈ a few MB, enough for seconds of dense recording.
const DefaultCapacity = 1 << 16

// defaultSlowCap bounds the slow-op log.
const defaultSlowCap = 256

// recorder is the package-global flight recorder.
var rec struct {
	armed atomic.Bool

	mu      sync.Mutex
	ring    []Event
	next    int // next write slot
	wrapped bool
	seq     int64
	dropped int64
	epoch   time.Time

	slow       []Event
	slowThresh int64 // µs; End/Complete events at least this slow are retained
}

func init() { rec.slowThresh = 1000 } // 1ms

// Arm starts recording into a fresh ring of the given capacity
// (DefaultCapacity when cap ≤ 0). Arming resets previously recorded events,
// the drop counter, and the timestamp epoch.
func Arm(capacity int) {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	rec.mu.Lock()
	rec.ring = make([]Event, capacity)
	rec.next = 0
	rec.wrapped = false
	rec.seq = 0
	rec.dropped = 0
	rec.slow = nil
	rec.epoch = time.Now()
	rec.mu.Unlock()
	rec.armed.Store(true)
}

// Disarm stops recording. Events already in the ring remain readable via
// Events/Dump until the next Arm.
func Disarm() { rec.armed.Store(false) }

// Armed reports whether the recorder is accepting events. Emit sites check
// this (one atomic load) before building arguments, so the disarmed cost of
// an instrumented site is a single branch.
func Armed() bool { return rec.armed.Load() }

// SetSlowThreshold sets the duration at or above which ending spans and
// complete events are additionally retained in the slow-op log, surviving
// ring wrap-around. The default is 1ms.
func SetSlowThreshold(d time.Duration) {
	rec.mu.Lock()
	rec.slowThresh = d.Microseconds()
	rec.mu.Unlock()
}

// GoID returns the calling goroutine's id, parsed from the runtime stack
// header ("goroutine N [...]"). It costs roughly a microsecond, paid only
// while tracing is armed; span emitters resolve it once per span.
func GoID() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const skip = len("goroutine ")
	id := int64(0)
	for i := skip; i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}

// emit appends one event to the ring (and, when slow enough, to the
// slow-op log). The timestamp is taken under the lock so it is consistent
// with the epoch even across a concurrent re-Arm.
func emit(ph Phase, name, cat string, tid, dur int64, args []Arg) {
	rec.mu.Lock()
	if !rec.armed.Load() || len(rec.ring) == 0 {
		rec.mu.Unlock()
		return
	}
	rec.seq++
	e := Event{
		Seq:   rec.seq,
		Phase: ph,
		Name:  name,
		Cat:   cat,
		TS:    time.Since(rec.epoch).Microseconds(),
		Dur:   dur,
		TID:   tid,
		Args:  args,
	}
	if rec.wrapped {
		rec.dropped++
	}
	rec.ring[rec.next] = e
	rec.next++
	if rec.next == len(rec.ring) {
		rec.next = 0
		rec.wrapped = true
	}
	if (ph == PhaseEnd || ph == PhaseComplete) && dur >= rec.slowThresh && len(rec.slow) < defaultSlowCap {
		rec.slow = append(rec.slow, e)
	}
	rec.mu.Unlock()
}

// Begin emits a span-begin event and returns the goroutine id the matching
// End must be given (0 when disarmed, which End treats as "skip").
func Begin(name, cat string, args ...Arg) int64 {
	if !rec.armed.Load() {
		return 0
	}
	tid := GoID()
	emit(PhaseBegin, name, cat, tid, 0, args)
	return tid
}

// End emits the span-end event matching a Begin that returned tid. The
// duration is computed from start and drives slow-op retention. No-op when
// tid is 0.
func End(name, cat string, tid int64, start time.Time, args ...Arg) {
	if tid == 0 || !rec.armed.Load() {
		return
	}
	emit(PhaseEnd, name, cat, tid, time.Since(start).Microseconds(), args)
}

// Complete emits a self-contained timed event covering start..now.
func Complete(name, cat string, start time.Time, args ...Arg) {
	if !rec.armed.Load() {
		return
	}
	emit(PhaseComplete, name, cat, GoID(), time.Since(start).Microseconds(), args)
}

// Instant emits a point-in-time mark.
func Instant(name, cat string, args ...Arg) {
	if !rec.armed.Load() {
		return
	}
	emit(PhaseInstant, name, cat, GoID(), 0, args)
}

// Events returns the ring contents in emission order (oldest first).
func Events() []Event {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return ringLocked()
}

func ringLocked() []Event {
	if !rec.wrapped {
		return append([]Event(nil), rec.ring[:rec.next]...)
	}
	out := make([]Event, 0, len(rec.ring))
	out = append(out, rec.ring[rec.next:]...)
	return append(out, rec.ring[:rec.next]...)
}

// SlowEvents returns the slow-op log: End/Complete events whose duration
// met the slow threshold, retained even after the ring wrapped past them.
func SlowEvents() []Event {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return append([]Event(nil), rec.slow...)
}

// Dump merges the ring with the slow-op entries that have already been
// overwritten in the ring, ordered by sequence number — the complete
// retained record of the run.
func Dump() []Event {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	ring := ringLocked()
	oldest := int64(1)
	if len(ring) > 0 {
		oldest = ring[0].Seq
	} else {
		oldest = rec.seq + 1
	}
	var evicted []Event
	for _, e := range rec.slow {
		if e.Seq < oldest {
			evicted = append(evicted, e)
		}
	}
	if len(evicted) == 0 {
		return ring
	}
	return append(evicted, ring...)
}

// Dropped returns how many events were overwritten by ring wrap-around
// since the last Arm (slow-op retention not counted).
func Dropped() int64 {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.dropped
}

// Len returns the number of events currently held in the ring.
func Len() int {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.wrapped {
		return len(rec.ring)
	}
	return rec.next
}
