package trace

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"strconv"
	"time"
)

// This file renders the flight-recorder ring in the OTLP/JSON resource-span
// shape (the proto3 JSON mapping of opentelemetry.proto.trace.v1), so any
// OTLP-speaking backend can ingest /debug/trace/export without a collector
// sidecar. Only span events that carry a distributed identity become OTLP
// spans — the format requires traceId/spanId — which is exactly the set
// recorded under a request; identity-less internals remain visible in the
// JSONL and Chrome exports.

// otlp proto3-JSON shapes. Nanosecond timestamps are strings because
// proto3 maps fixed64 to JSON strings.
type otlpExport struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpKV `json:"attributes"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID           string   `json:"traceId"`
	SpanID            string   `json:"spanId"`
	ParentSpanID      string   `json:"parentSpanId,omitempty"`
	Name              string   `json:"name"`
	Kind              int      `json:"kind"`
	StartTimeUnixNano string   `json:"startTimeUnixNano"`
	EndTimeUnixNano   string   `json:"endTimeUnixNano"`
	Attributes        []otlpKV `json:"attributes,omitempty"`
}

type otlpKV struct {
	Key   string   `json:"key"`
	Value otlppVal `json:"value"`
}

type otlppVal struct {
	StringValue *string `json:"stringValue,omitempty"`
	IntValue    *string `json:"intValue,omitempty"` // proto3 JSON: int64 as string
}

func otlpStr(key, v string) otlpKV { return otlpKV{Key: key, Value: otlppVal{StringValue: &v}} }

func otlpInt(key string, v int64) otlpKV {
	s := strconv.FormatInt(v, 10)
	return otlpKV{Key: key, Value: otlppVal{IntValue: &s}}
}

// otlpSpanKindInternal is the only kind the recorder distinguishes; server
// /client spans are identifiable by name ("server.*", client-minted roots).
const otlpSpanKindInternal = 1

// WriteOTLP writes the identity-carrying spans among events as one OTLP/
// JSON resource-span document. service names the resource; epoch anchors
// the events' relative µs timestamps to the wall clock (the recorder's
// Epoch). B events are paired with their E by span ID; a span still open
// when the ring was read gets a zero-length rendering, and a span whose B
// was evicted by ring wrap-around is reconstructed from its E alone.
func WriteOTLP(w io.Writer, service string, epoch time.Time, events []Event) error {
	base := epoch.UnixNano()
	type open struct {
		e     Event
		endTS int64
		endAt int // index, for stable ordering
		args  []Arg
	}
	spans := make(map[string]*open)
	order := make([]string, 0, len(events)/2)
	for i, e := range events {
		if e.Span == "" {
			continue
		}
		switch e.Phase {
		case PhaseBegin:
			if _, ok := spans[e.Span]; !ok {
				order = append(order, e.Span)
			}
			spans[e.Span] = &open{e: e, endTS: e.TS, endAt: i, args: e.Args}
		case PhaseEnd:
			sp, ok := spans[e.Span]
			if !ok {
				// The matching B was overwritten; synthesize the start from
				// the recorded duration.
				b := e
				b.TS = e.TS - e.Dur
				if b.TS < 0 {
					b.TS = 0
				}
				spans[e.Span] = &open{e: b, endTS: e.TS, endAt: i, args: e.Args}
				order = append(order, e.Span)
				continue
			}
			sp.endTS = e.TS
			sp.endAt = i
			// End args are a superset of begin args (the span accumulates).
			if len(e.Args) > len(sp.args) {
				sp.args = e.Args
			}
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		return spans[order[i]].e.TS < spans[order[j]].e.TS
	})
	out := make([]otlpSpan, 0, len(order))
	for _, id := range order {
		sp := spans[id]
		attrs := make([]otlpKV, 0, len(sp.args)+1)
		if sp.e.Cat != "" {
			attrs = append(attrs, otlpStr("finq.cat", sp.e.Cat))
		}
		for _, a := range sp.args {
			if a.IsStr {
				attrs = append(attrs, otlpStr(a.Key, a.Str))
			} else {
				attrs = append(attrs, otlpInt(a.Key, a.Int))
			}
		}
		out = append(out, otlpSpan{
			TraceID:           sp.e.Trace,
			SpanID:            sp.e.Span,
			ParentSpanID:      sp.e.Parent,
			Name:              sp.e.Name,
			Kind:              otlpSpanKindInternal,
			StartTimeUnixNano: strconv.FormatInt(base+sp.e.TS*1000, 10),
			EndTimeUnixNano:   strconv.FormatInt(base+sp.endTS*1000, 10),
			Attributes:        attrs,
		})
	}
	doc := otlpExport{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: []otlpKV{
			otlpStr("service.name", service),
			otlpInt("process.pid", int64(os.Getpid())),
			otlpStr("telemetry.sdk.name", "repro/internal/obs/trace"),
			otlpStr("telemetry.sdk.language", "go"),
		}},
		ScopeSpans: []otlpScopeSpans{{
			Scope: otlpScope{Name: "repro/internal/obs/trace"},
			Spans: out,
		}},
	}}}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
