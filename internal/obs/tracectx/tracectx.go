// Package tracectx gives a computation a distributed-trace identity and
// carries it on context.Context, the way logctx carries the request ID.
// The identity is the W3C Trace Context model (https://www.w3.org/TR/trace-context/):
// a 128-bit trace ID naming the whole causal tree, a 64-bit span ID naming
// the current position in it, a sampled flag, and an opaque, bounded
// tracestate. The wire form is the `traceparent` header
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//	^^ ^^^^^^^^^^^^^^^^ trace-id ^^^^^^ ^^ span-id ^^^^^^ ^^ flags
//
// which finqd's middleware extracts from requests and echoes on responses,
// the typed client injects on outbound calls, and cmd/finqload mints fresh
// per synthetic request — so one trace ID survives a process boundary and
// two finqd rings can be stitched into a single causal picture.
//
// Parsing is deliberately total: a malformed, truncated, all-zero, or
// future-versioned header is rejected by returning ok=false, and the
// caller mints a fresh root instead. A bad peer can cost us its trace
// linkage, never an error path.
//
// The package depends on nothing but the standard library, so internal/obs
// and internal/obs/trace can import it without cycles.
package tracectx

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	mrand "math/rand/v2"
	"sync/atomic"
)

// TraceID is the 128-bit identity of one causal tree. The all-zero value
// is invalid per the W3C spec and doubles as "no identity" here.
type TraceID [16]byte

// SpanID is the 64-bit identity of one span within a trace. All-zero is
// invalid.
type SpanID [8]byte

// IsZero reports the invalid all-zero trace ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports the invalid all-zero span ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the trace ID as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the span ID as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// MaxTracestateLen bounds the accepted `tracestate` header. The W3C spec
// allows up to 32 list members; rather than parse the list we cap the raw
// bytes — an oversized value is dropped (the spec permits discarding),
// never truncated, so what we forward is exactly what we received.
const MaxTracestateLen = 512

// TC is one position in a distributed trace: the trace identity plus the
// current span (the parent of any child minted next).
type TC struct {
	// TraceID names the causal tree; constant across all spans of a trace.
	TraceID TraceID
	// SpanID is the current span: children minted with Child get it as
	// their parent, and outbound `traceparent` headers carry it.
	SpanID SpanID
	// Sampled is the W3C sampled flag (01). Everything this repository
	// records is sampled; the flag is preserved for foreign traces.
	Sampled bool
	// State is the raw `tracestate` header, forwarded opaquely ("" when
	// absent or oversized).
	State string
}

// Valid reports whether the TC carries a usable identity (non-zero trace
// and span IDs).
func (tc TC) Valid() bool { return !tc.TraceID.IsZero() && !tc.SpanID.IsZero() }

// Traceparent renders the TC as a version-00 `traceparent` header value.
func (tc TC) Traceparent() string {
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	b = appendHex(b, tc.TraceID[:])
	b = append(b, '-')
	b = appendHex(b, tc.SpanID[:])
	if tc.Sampled {
		b = append(b, "-01"...)
	} else {
		b = append(b, "-00"...)
	}
	return string(b)
}

func appendHex(dst, src []byte) []byte {
	const hexdigits = "0123456789abcdef"
	for _, c := range src {
		dst = append(dst, hexdigits[c>>4], hexdigits[c&0xf])
	}
	return dst
}

// Child returns the TC one level down: same trace, a freshly minted span
// ID, the receiver's span as the implicit parent. Sampling and tracestate
// are inherited.
func (tc TC) Child() TC {
	tc.SpanID = NewSpanID()
	return tc
}

// rootFallback disambiguates minted IDs if the crypto source ever fails.
var rootFallback atomic.Uint64

// NewRoot mints a fresh sampled root: a random 128-bit trace ID and a
// random 64-bit span ID.
func NewRoot() TC {
	var tc TC
	if _, err := rand.Read(tc.TraceID[:]); err != nil {
		// Keep the process observable even without an entropy source: a
		// counter-derived ID is unique within the process, which is what the
		// flight recorder needs.
		binary.BigEndian.PutUint64(tc.TraceID[8:], rootFallback.Add(1))
		tc.TraceID[0] = 0xfa
	}
	tc.SpanID = NewSpanID()
	tc.Sampled = true
	return tc
}

// NewSpanID mints a random non-zero 64-bit span ID. Span IDs are minted
// once per span on the request path, so this uses math/rand/v2's
// goroutine-sharded generator (cryptographic strength buys nothing here;
// the W3C spec asks only for randomness).
func NewSpanID() SpanID {
	var s SpanID
	for {
		binary.BigEndian.PutUint64(s[:], mrand.Uint64())
		if !s.IsZero() {
			return s
		}
	}
}

// Parse parses `traceparent` (and optionally `tracestate`) header values.
// ok=false means the traceparent was absent or malformed — truncated, bad
// version, non-hex, or all-zero IDs — and the caller should mint a fresh
// root with NewRoot; parsing never fails with an error. Per the W3C spec a
// future version (anything but "ff") with the version-00 prefix shape is
// accepted by reading its first four fields.
func Parse(traceparent, tracestate string) (tc TC, ok bool) {
	// version "-" traceid "-" spanid "-" flags = 2+1+32+1+16+1+2 = 55.
	if len(traceparent) < 55 {
		return TC{}, false
	}
	if traceparent[2] != '-' || traceparent[35] != '-' || traceparent[52] != '-' {
		return TC{}, false
	}
	var ver [1]byte
	if _, err := hex.Decode(ver[:], []byte(traceparent[0:2])); err != nil {
		return TC{}, false
	}
	if ver[0] == 0xff {
		return TC{}, false // "ff" is forbidden by the spec
	}
	if ver[0] == 0 && len(traceparent) != 55 {
		return TC{}, false // version 00 is exactly 55 chars
	}
	if ver[0] > 0 && len(traceparent) > 55 && traceparent[55] != '-' {
		return TC{}, false // future versions may only append "-" fields
	}
	if hasUpper(traceparent[:55]) {
		return TC{}, false // the spec requires lowercase hex
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(traceparent[3:35])); err != nil {
		return TC{}, false
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(traceparent[36:52])); err != nil {
		return TC{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(traceparent[53:55])); err != nil {
		return TC{}, false
	}
	if tc.TraceID.IsZero() || tc.SpanID.IsZero() {
		return TC{}, false
	}
	tc.Sampled = flags[0]&0x01 != 0
	if len(tracestate) > 0 && len(tracestate) <= MaxTracestateLen {
		tc.State = tracestate
	}
	return tc, true
}

func hasUpper(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'F' {
			return true
		}
	}
	return false
}

// ctxKey is the private context key for the TC.
type ctxKey struct{}

// With returns a context carrying the trace position. An invalid TC
// returns ctx unchanged, so callers can thread Parse results blindly.
func With(ctx context.Context, tc TC) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tc)
}

// From returns the trace position carried by ctx. A nil context is safe.
func From(ctx context.Context) (TC, bool) {
	if ctx == nil {
		return TC{}, false
	}
	tc, ok := ctx.Value(ctxKey{}).(TC)
	return tc, ok
}
