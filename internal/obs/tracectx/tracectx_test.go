package tracectx

import (
	"context"
	"strings"
	"sync"
	"testing"
)

const (
	goodTP    = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	goodTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	goodSpan  = "00f067aa0ba902b7"
)

func TestParseTraceparent(t *testing.T) {
	cases := []struct {
		name        string
		traceparent string
		tracestate  string
		ok          bool
		sampled     bool
		state       string
	}{
		{name: "canonical sampled", traceparent: goodTP, ok: true, sampled: true},
		{name: "canonical unsampled", traceparent: "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", ok: true},
		{name: "unknown flag bits keep sampled bit", traceparent: "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-ff", ok: true, sampled: true},
		{name: "empty", traceparent: "", ok: false},
		{name: "garbage", traceparent: "garbage-not-a-traceparent", ok: false},
		{name: "truncated trace id", traceparent: "00-4bf92f3577b34da6a3ce929d0e4736-00f067aa0ba902b7-01", ok: false},
		{name: "truncated span id", traceparent: "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902-01", ok: false},
		{name: "missing flags", traceparent: "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", ok: false},
		{name: "all-zero trace id", traceparent: "00-00000000000000000000000000000000-00f067aa0ba902b7-01", ok: false},
		{name: "all-zero span id", traceparent: "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", ok: false},
		{name: "uppercase hex", traceparent: "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", ok: false},
		{name: "non-hex version", traceparent: "zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", ok: false},
		{name: "non-hex trace id", traceparent: "00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", ok: false},
		{name: "non-hex span id", traceparent: "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902zz-01", ok: false},
		{name: "non-hex flags", traceparent: "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz", ok: false},
		{name: "forbidden version ff", traceparent: "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", ok: false},
		{name: "version 00 with trailing field", traceparent: goodTP + "-extra", ok: false},
		{name: "future version exact", traceparent: "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", ok: true, sampled: true},
		{name: "future version with extra field", traceparent: "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-deadbeef", ok: true, sampled: true},
		{name: "future version with bad suffix", traceparent: "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01deadbeef", ok: false},
		{name: "wrong separators", traceparent: "00_4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7_01", ok: false},
		{name: "tracestate carried", traceparent: goodTP, tracestate: "vendor=opaque", ok: true, sampled: true, state: "vendor=opaque"},
		{name: "oversized tracestate dropped", traceparent: goodTP, tracestate: strings.Repeat("x", MaxTracestateLen+1), ok: true, sampled: true},
		{name: "tracestate at cap kept", traceparent: goodTP, tracestate: strings.Repeat("x", MaxTracestateLen), ok: true, sampled: true, state: strings.Repeat("x", MaxTracestateLen)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tc, ok := Parse(c.traceparent, c.tracestate)
			if ok != c.ok {
				t.Fatalf("Parse(%q) ok = %v, want %v", c.traceparent, ok, c.ok)
			}
			if !ok {
				if tc != (TC{}) {
					t.Fatalf("rejected parse returned a non-zero TC: %+v", tc)
				}
				return
			}
			if got := tc.TraceID.String(); got != goodTrace {
				t.Errorf("trace ID %s, want %s", got, goodTrace)
			}
			if got := tc.SpanID.String(); got != goodSpan {
				t.Errorf("span ID %s, want %s", got, goodSpan)
			}
			if tc.Sampled != c.sampled {
				t.Errorf("sampled = %v, want %v", tc.Sampled, c.sampled)
			}
			if tc.State != c.state {
				t.Errorf("state = %q, want %q", tc.State, c.state)
			}
		})
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tc, ok := Parse(goodTP, "")
	if !ok {
		t.Fatal("canonical traceparent rejected")
	}
	if got := tc.Traceparent(); got != goodTP {
		t.Fatalf("round trip: %q, want %q", got, goodTP)
	}
	tc.Sampled = false
	back, ok := Parse(tc.Traceparent(), "")
	if !ok || back != tc {
		t.Fatalf("unsampled round trip: %+v vs %+v (ok=%v)", back, tc, ok)
	}
}

func TestNewRootAndChild(t *testing.T) {
	root := NewRoot()
	if !root.Valid() || !root.Sampled {
		t.Fatalf("NewRoot minted an unusable root: %+v", root)
	}
	// A root's wire form must parse back to itself.
	back, ok := Parse(root.Traceparent(), "")
	if !ok || back != root {
		t.Fatalf("root does not survive the wire: %+v vs %+v", back, root)
	}
	child := root.Child()
	if child.TraceID != root.TraceID {
		t.Errorf("child changed trace ID: %s vs %s", child.TraceID, root.TraceID)
	}
	if child.SpanID == root.SpanID {
		t.Errorf("child kept the parent's span ID %s", child.SpanID)
	}
	if root2 := NewRoot(); root2.TraceID == root.TraceID {
		t.Errorf("two roots share trace ID %s", root.TraceID)
	}
}

func TestContextCarriage(t *testing.T) {
	ctx := context.Background()
	if _, ok := From(ctx); ok {
		t.Fatal("empty context claims a trace position")
	}
	if _, ok := From(nil); ok {
		t.Fatal("nil context claims a trace position")
	}
	// An invalid TC must not displace anything.
	if got := With(ctx, TC{}); got != ctx {
		t.Fatal("With stored an invalid TC")
	}
	root := NewRoot()
	ctx = With(ctx, root)
	got, ok := From(ctx)
	if !ok || got != root {
		t.Fatalf("From = %+v (ok=%v), want %+v", got, ok, root)
	}
}

// TestChildSpanIDUniqueness hammers concurrent child minting from one
// shared parent position — the exact shape of parallel per-row spans
// under one request — and demands globally unique span IDs. Run with
// -race this also proves Child/NewSpanID share no unsynchronized state.
func TestChildSpanIDUniqueness(t *testing.T) {
	const (
		workers = 16
		perW    = 2048
	)
	parent := NewRoot()
	ids := make([][]SpanID, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]SpanID, perW)
			for i := range local {
				c := parent.Child()
				if c.TraceID != parent.TraceID {
					t.Errorf("worker %d: child switched trace", w)
					return
				}
				local[i] = c.SpanID
			}
			ids[w] = local
		}(w)
	}
	wg.Wait()
	seen := make(map[SpanID]bool, workers*perW)
	for _, local := range ids {
		for _, id := range local {
			if id.IsZero() {
				t.Fatal("minted an all-zero span ID")
			}
			if seen[id] {
				t.Fatalf("span ID %s minted twice", id)
			}
			seen[id] = true
		}
	}
}

// FuzzParseTraceparent asserts the totality contract: Parse never
// panics, never returns ok with invalid IDs, and every accepted v00
// header round-trips through Traceparent back to the same position.
func FuzzParseTraceparent(f *testing.F) {
	f.Add(goodTP, "")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", "vendor=x")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", "")
	f.Add("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-suffix", "")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00", "")
	f.Add("", "")
	f.Add("00-", strings.Repeat("k", 600))
	f.Fuzz(func(t *testing.T, traceparent, tracestate string) {
		tc, ok := Parse(traceparent, tracestate)
		if !ok {
			if tc != (TC{}) {
				t.Fatalf("rejected parse leaked state: %+v", tc)
			}
			return
		}
		if !tc.Valid() {
			t.Fatalf("accepted an invalid position from %q", traceparent)
		}
		if len(tc.State) > MaxTracestateLen {
			t.Fatalf("accepted an oversized tracestate (%d bytes)", len(tc.State))
		}
		// v00 inputs must round-trip exactly (the flags byte collapses to
		// the sampled bit, so compare the parsed forms).
		back, ok2 := Parse(tc.Traceparent(), tc.State)
		if !ok2 || back != tc {
			t.Fatalf("round trip diverged: %+v vs %+v (ok=%v)", back, tc, ok2)
		}
	})
}
