package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// Minimal pprof profile reader. A captured profile is a gzipped
// profile.proto message; the only thing this package (and the smoke and
// acceptance tests) need from it is the string labels attached to each
// sample, so rather than pulling in a protobuf dependency this walks the
// wire format directly for the three fields involved:
//
//	Profile: 2 = repeated Sample, 6 = repeated string_table
//	Sample:  3 = repeated Label
//	Label:   1 = key (string_table index), 2 = str (string_table index)
//
// Everything else is skipped by wire type. The format is stable — it is
// the contract between the Go runtime and `go tool pprof`.

// SampleLabels decodes a gzipped pprof profile and returns each sample's
// string-valued labels, one map per sample that has any.
func SampleLabels(profile []byte) ([]map[string]string, error) {
	zr, err := gzip.NewReader(bytes.NewReader(profile))
	if err != nil {
		return nil, fmt.Errorf("prof: profile is not gzipped: %w", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("prof: decompressing profile: %w", err)
	}
	if err := zr.Close(); err != nil {
		return nil, err
	}

	// First pass: collect the string table and the raw sample messages.
	var table []string
	var samples [][]byte
	if err := walkFields(raw, func(field int, wire int, val uint64, sub []byte) error {
		switch {
		case field == 6 && wire == 2:
			table = append(table, string(sub))
		case field == 2 && wire == 2:
			samples = append(samples, sub)
		}
		return nil
	}); err != nil {
		return nil, fmt.Errorf("prof: parsing profile: %w", err)
	}

	// Second pass: pull each sample's labels through the string table.
	var out []map[string]string
	for _, s := range samples {
		var labels map[string]string
		err := walkFields(s, func(field int, wire int, val uint64, sub []byte) error {
			if field != 3 || wire != 2 {
				return nil
			}
			var keyIdx, strIdx uint64
			if err := walkFields(sub, func(f int, w int, v uint64, _ []byte) error {
				switch f {
				case 1:
					keyIdx = v
				case 2:
					strIdx = v
				}
				return nil
			}); err != nil {
				return err
			}
			// strIdx == 0 means a numeric label; skip those.
			if keyIdx == 0 || strIdx == 0 {
				return nil
			}
			if keyIdx >= uint64(len(table)) || strIdx >= uint64(len(table)) {
				return fmt.Errorf("label index out of range")
			}
			if labels == nil {
				labels = map[string]string{}
			}
			labels[table[keyIdx]] = table[strIdx]
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("prof: parsing sample: %w", err)
		}
		if labels != nil {
			out = append(out, labels)
		}
	}
	return out, nil
}

// HasLabel reports whether any sample in the gzipped profile carries the
// given label key/value pair, and how many do.
func HasLabel(profile []byte, key, value string) (int, error) {
	all, err := SampleLabels(profile)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, m := range all {
		if m[key] == value {
			n++
		}
	}
	return n, nil
}

// walkFields iterates the top-level fields of one protobuf message,
// calling fn with the field number, wire type, varint value (wire 0) and
// sub-message bytes (wire 2). Unknown wire types are skipped.
func walkFields(msg []byte, fn func(field int, wire int, val uint64, sub []byte) error) error {
	for len(msg) > 0 {
		tag, n := uvarint(msg)
		if n <= 0 {
			return fmt.Errorf("bad tag varint")
		}
		msg = msg[n:]
		field := int(tag >> 3)
		wire := int(tag & 7)
		switch wire {
		case 0: // varint
			v, n := uvarint(msg)
			if n <= 0 {
				return fmt.Errorf("bad varint in field %d", field)
			}
			msg = msg[n:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case 1: // fixed64
			if len(msg) < 8 {
				return fmt.Errorf("short fixed64 in field %d", field)
			}
			msg = msg[8:]
		case 2: // length-delimited
			l, n := uvarint(msg)
			if n <= 0 || uint64(len(msg)-n) < l {
				return fmt.Errorf("bad length in field %d", field)
			}
			sub := msg[n : n+int(l)]
			msg = msg[n+int(l):]
			if err := fn(field, wire, 0, sub); err != nil {
				return err
			}
		case 5: // fixed32
			if len(msg) < 4 {
				return fmt.Errorf("short fixed32 in field %d", field)
			}
			msg = msg[4:]
		default:
			return fmt.Errorf("unsupported wire type %d in field %d", wire, field)
		}
	}
	return nil
}

// uvarint decodes a protobuf varint, returning the value and the number
// of bytes consumed (0 if truncated).
func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * uint(i))
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}
