package prof

import (
	"testing"
	"time"
)

// sloClock drives Engine.Tick with a synthetic timeline.
type sloClock struct{ now time.Time }

func (c *sloClock) advance(d time.Duration) time.Time {
	c.now = c.now.Add(d)
	return c.now
}

// TestEffectiveLatency: thresholds round up to the histogram bucket bound.
func TestEffectiveLatency(t *testing.T) {
	for _, tc := range []struct{ in, want int64 }{
		{0, 0}, {1, 1}, {1000, 1023}, {1023, 1023}, {1024, 2047},
	} {
		if got := (Objective{LatencyUS: tc.in}).EffectiveLatencyUS(); got != tc.want {
			t.Errorf("EffectiveLatencyUS(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestNewEngineValidation rejects malformed objective sets.
func TestNewEngineValidation(t *testing.T) {
	src := func() map[string]EndpointCounts { return nil }
	cases := []EngineConfig{
		{Source: nil},
		{Source: src, Objectives: []Objective{{Endpoint: ""}}},
		{Source: src, Objectives: []Objective{
			{Endpoint: "eval", LatencyUS: 1000, LatencyTarget: 0.9},
			{Endpoint: "eval", ErrorTarget: 0.99},
		}},
		{Source: src, Objectives: []Objective{{Endpoint: "eval", LatencyUS: 1000, LatencyTarget: 1.5}}},
		{Source: src, Objectives: []Objective{{Endpoint: "eval", ErrorTarget: -0.1}}},
	}
	for i, cfg := range cases {
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("case %d: config accepted, want error", i)
		}
	}
	if _, err := NewEngine(EngineConfig{Source: src, Objectives: []Objective{
		{Endpoint: "eval", LatencyUS: 1000, LatencyTarget: 0.9, ErrorTarget: 0.99},
	}}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestBurnAndTrip drives the engine over a synthetic incident: burns rise
// when bad traffic arrives, the trip fires once on the edge (fast over
// threshold, slow confirming), stays latched while over, and re-arms
// after recovery.
func TestBurnAndTrip(t *testing.T) {
	counts := EndpointCounts{}
	var trips []Trip
	eng, err := NewEngine(EngineConfig{
		Objectives: []Objective{{Endpoint: "eval", LatencyUS: 1000, LatencyTarget: 0.9, ErrorTarget: 0.99}},
		Source: func() map[string]EndpointCounts {
			return map[string]EndpointCounts{"eval": counts}
		},
		Tick:       time.Second,
		FastWindow: 2 * time.Second,
		SlowWindow: 4 * time.Second,
		TripBurn:   2,
		OnTrip:     func(tr Trip) { trips = append(trips, tr) },
	})
	if err != nil {
		t.Fatal(err)
	}
	clk := &sloClock{now: time.Unix(1_700_000_000, 0)}

	// t0: baseline, no traffic yet.
	eng.Tick(clk.now)
	// t1: 100 healthy requests.
	counts = EndpointCounts{Requests: 100, LatCount: 100, LatGood: 100}
	eng.Tick(clk.advance(time.Second))
	if len(trips) != 0 {
		t.Fatalf("trip on healthy traffic: %+v", trips)
	}
	// t2: 100 more requests, half over the latency threshold. Fast window
	// spans t0..t2: 50/200 bad / 0.1 budget = burn 2.5 ≥ 2; slow confirms.
	counts = EndpointCounts{Requests: 200, LatCount: 200, LatGood: 150}
	eng.Tick(clk.advance(time.Second))
	if len(trips) != 1 || trips[0].Endpoint != "eval" || trips[0].Dimension != DimLatency {
		t.Fatalf("want one latency trip, got %+v", trips)
	}
	if trips[0].FastBurn < 2 || trips[0].SlowBurn < 1 {
		t.Fatalf("trip burns too low: %+v", trips[0])
	}
	// t3: no new traffic; the window still sees the incident, the latch
	// holds, and no second trip fires.
	eng.Tick(clk.advance(time.Second))
	if len(trips) != 1 {
		t.Fatalf("latched trip re-fired: %+v", trips)
	}
	st := eng.Status()
	if len(st) != 1 || st[0].Latency == nil || st[0].Errors == nil {
		t.Fatalf("status shape wrong: %+v", st)
	}
	if st[0].Latency.EffectiveUS != 1023 {
		t.Errorf("effective threshold %d, want 1023", st[0].Latency.EffectiveUS)
	}
	if st[0].Latency.LastTripUnixMS == 0 {
		t.Error("latency trip time not recorded")
	}
	// Recovery: several quiet ticks push the incident out of both windows.
	for i := 0; i < 6; i++ {
		eng.Tick(clk.advance(time.Second))
	}
	st = eng.Status()
	if st[0].Latency.Tripped || st[0].Latency.BurnFast != 0 {
		t.Fatalf("did not recover: %+v", st[0].Latency)
	}
	// A fresh error incident re-trips — this time on the errors dimension.
	counts = EndpointCounts{Requests: 300, Errors: 50, LatCount: 300, LatGood: 250}
	eng.Tick(clk.advance(time.Second))
	var sawErrors bool
	for _, tr := range trips[1:] {
		if tr.Dimension == DimErrors {
			sawErrors = true
		}
	}
	if !sawErrors {
		t.Fatalf("error burn did not trip: %+v", trips)
	}
}

// TestBurnWindowBaseline: with history longer than the window, the burn
// uses the in-window baseline, not the whole ring.
func TestBurnWindowBaseline(t *testing.T) {
	counts := EndpointCounts{}
	eng, err := NewEngine(EngineConfig{
		Objectives: []Objective{{Endpoint: "eval", LatencyUS: 1000, LatencyTarget: 0.9}},
		Source: func() map[string]EndpointCounts {
			return map[string]EndpointCounts{"eval": counts}
		},
		Tick:       time.Second,
		FastWindow: 2 * time.Second,
		SlowWindow: 10 * time.Second,
		TripBurn:   1000, // never trip; this test reads burns only
	})
	if err != nil {
		t.Fatal(err)
	}
	clk := &sloClock{now: time.Unix(1_700_000_000, 0)}
	// A bad burst long ago...
	eng.Tick(clk.now)
	counts = EndpointCounts{Requests: 100, LatCount: 100, LatGood: 0}
	eng.Tick(clk.advance(time.Second))
	// ...then five seconds of healthy traffic.
	for i := 0; i < 5; i++ {
		counts.Requests += 100
		counts.LatCount += 100
		counts.LatGood += 100
		eng.Tick(clk.advance(time.Second))
	}
	st := eng.Status()[0].Latency
	// Fast window (2s) saw only healthy traffic; slow window still covers
	// the burst.
	if st.BurnFast != 0 {
		t.Errorf("fast burn %v, want 0 (burst outside fast window)", st.BurnFast)
	}
	if st.BurnSlow <= 0 {
		t.Errorf("slow burn %v, want > 0 (burst inside slow window)", st.BurnSlow)
	}
}

// TestEngineStartStop: Start samples immediately and stop is idempotent.
func TestEngineStartStop(t *testing.T) {
	eng, err := NewEngine(EngineConfig{
		Objectives: []Objective{{Endpoint: "eval", LatencyUS: 1000, LatencyTarget: 0.9}},
		Source: func() map[string]EndpointCounts {
			return map[string]EndpointCounts{"eval": {Requests: 1, LatCount: 1, LatGood: 1}}
		},
		Tick: time.Hour, // the ticker never fires during the test
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := eng.Start()
	if got := eng.Status(); len(got) != 1 {
		t.Fatalf("status after Start: %+v", got)
	}
	stop()
	stop() // idempotent
}
