package prof

import (
	"bytes"
	"compress/gzip"
	"context"
	"testing"
	"time"
)

// TestCaptureNow runs a synchronous capture and checks the pair lands in
// the ring with list/get/download access.
func TestCaptureNow(t *testing.T) {
	s := NewStore(StoreConfig{Ring: 4, CPUDuration: 50 * time.Millisecond})
	c, err := s.CaptureNow(Capture{Reason: "manual", RequestID: "req-1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID != "prof-0001" || c.Reason != "manual" || c.RequestID != "req-1" {
		t.Fatalf("capture metadata wrong: %+v", c)
	}
	if c.CPUBytes <= 0 || c.HeapBytes <= 0 {
		t.Fatalf("empty payloads: cpu=%d heap=%d", c.CPUBytes, c.HeapBytes)
	}
	if c.DurationMS < 40 {
		t.Fatalf("capture window too short: %dms", c.DurationMS)
	}
	list := s.List()
	if len(list) != 1 || list[0].ID != "prof-0001" {
		t.Fatalf("list wrong: %+v", list)
	}
	if got, ok := s.Get("prof-0001"); !ok || got.Reason != "manual" {
		t.Fatalf("get wrong: %+v ok=%v", got, ok)
	}
	cpu, ok := s.Payload("prof-0001", KindCPU)
	if !ok || len(cpu) != c.CPUBytes {
		t.Fatalf("cpu payload wrong: ok=%v len=%d want=%d", ok, len(cpu), c.CPUBytes)
	}
	// The CPU payload must be a parseable pprof profile.
	if _, err := SampleLabels(cpu); err != nil {
		t.Fatalf("captured CPU profile does not parse: %v", err)
	}
	if heap, ok := s.Payload("prof-0001", KindHeap); !ok || len(heap) == 0 {
		t.Fatal("heap payload missing")
	}
	if _, ok := s.Payload("prof-0001", "goroutine"); ok {
		t.Fatal("unknown kind served a payload")
	}
	if _, ok := s.Payload("prof-9999", KindCPU); ok {
		t.Fatal("unknown id served a payload")
	}
}

// TestCaptureRingEviction: the ring keeps the newest N captures.
func TestCaptureRingEviction(t *testing.T) {
	s := NewStore(StoreConfig{Ring: 2, CPUDuration: 10 * time.Millisecond})
	for i := 0; i < 3; i++ {
		if _, err := s.CaptureNow(Capture{Reason: "manual"}, 0); err != nil {
			t.Fatal(err)
		}
	}
	list := s.List()
	if len(list) != 2 || list[0].ID != "prof-0002" || list[1].ID != "prof-0003" {
		t.Fatalf("eviction wrong: %+v", list)
	}
	if _, ok := s.Get("prof-0001"); ok {
		t.Fatal("evicted capture still retrievable")
	}
}

// TestTriggerGates: automatic triggers respect the disarm gate, the
// per-reason cooldown, and the single-flight latch; manual CaptureNow
// refuses only while a capture is in flight.
func TestTriggerGates(t *testing.T) {
	s := NewStore(StoreConfig{Ring: 4, CPUDuration: 150 * time.Millisecond, Cooldown: time.Hour})

	s.Disarm()
	if s.Armed() {
		t.Fatal("still armed after Disarm")
	}
	if started, why := s.Trigger(Capture{Reason: "slo:eval:latency"}); started || why != "disarmed" {
		t.Fatalf("disarmed trigger: started=%v why=%q", started, why)
	}
	s.Arm()

	started, why := s.Trigger(Capture{Reason: "slo:eval:latency"})
	if !started {
		t.Fatalf("armed trigger refused: %q", why)
	}
	// Same reason within the cooldown: suppressed.
	if started, why := s.Trigger(Capture{Reason: "slo:eval:latency"}); started || why != "cooldown" {
		t.Fatalf("cooldown not enforced: started=%v why=%q", started, why)
	}
	// Different reason, but a capture is in flight: busy (CPU profiling is
	// process-global).
	if started, why := s.Trigger(Capture{Reason: "slo:decide:errors"}); started || why != "busy" {
		t.Fatalf("single-flight not enforced: started=%v why=%q", started, why)
	}
	if _, err := s.CaptureNow(Capture{Reason: "manual"}, 0); err == nil {
		t.Fatal("CaptureNow succeeded while a trigger capture was in flight")
	}
	// Wait for the async capture to land.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.List()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("async capture never landed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.List()[0]; got.Reason != "slo:eval:latency" {
		t.Fatalf("async capture metadata wrong: %+v", got)
	}
	// Manual capture ignores the cooldown once the flight is over.
	if _, err := s.CaptureNow(Capture{Reason: "manual"}, 20*time.Millisecond); err != nil {
		t.Fatalf("manual capture after cooldown-reason: %v", err)
	}
}

// --- pprof parser unit tests against a hand-encoded profile ---

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func appendField(b []byte, field int, wire int, v uint64, sub []byte) []byte {
	b = appendUvarint(b, uint64(field)<<3|uint64(wire))
	if wire == 2 {
		b = appendUvarint(b, uint64(len(sub)))
		return append(b, sub...)
	}
	return appendUvarint(b, v)
}

// encodeProfile builds a minimal gzipped profile.proto: a string table and
// one sample per label map.
func encodeProfile(t *testing.T, table []string, sampleLabels []map[uint64]uint64) []byte {
	t.Helper()
	var msg []byte
	for _, lbls := range sampleLabels {
		var sample []byte
		for k, v := range lbls {
			var label []byte
			label = appendField(label, 1, 0, k, nil) // key index
			label = appendField(label, 2, 0, v, nil) // str index
			sample = appendField(sample, 3, 2, 0, label)
		}
		msg = appendField(msg, 2, 2, 0, sample)
	}
	for _, s := range table {
		msg = appendField(msg, 6, 2, 0, []byte(s))
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(msg); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSampleLabelsParsing decodes labels from a synthetic profile.
func TestSampleLabelsParsing(t *testing.T) {
	// string table: [0]="" (required), [1]="query_key", [2]="Q1",
	// [3]="endpoint", [4]="eval".
	table := []string{"", "query_key", "Q1", "endpoint", "eval"}
	prof := encodeProfile(t, table, []map[uint64]uint64{
		{1: 2, 3: 4}, // query_key=Q1, endpoint=eval
		{1: 0},       // numeric label (str index 0): skipped
		{3: 4},       // endpoint=eval only
	})
	labels, err := SampleLabels(prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 2 {
		t.Fatalf("got %d labeled samples, want 2: %v", len(labels), labels)
	}
	if labels[0]["query_key"] != "Q1" || labels[0]["endpoint"] != "eval" {
		t.Fatalf("sample 0 labels wrong: %v", labels[0])
	}
	n, err := HasLabel(prof, "endpoint", "eval")
	if err != nil || n != 2 {
		t.Fatalf("HasLabel(endpoint=eval) = %d, %v; want 2", n, err)
	}
	n, err = HasLabel(prof, "query_key", "Q1")
	if err != nil || n != 1 {
		t.Fatalf("HasLabel(query_key=Q1) = %d, %v; want 1", n, err)
	}
	if n, _ := HasLabel(prof, "query_key", "missing"); n != 0 {
		t.Fatalf("HasLabel(missing) = %d, want 0", n)
	}
}

// TestSampleLabelsErrors: not-gzip and corrupt payloads error cleanly.
func TestSampleLabelsErrors(t *testing.T) {
	if _, err := SampleLabels([]byte("not a profile")); err == nil {
		t.Fatal("plain bytes accepted")
	}
	// Gzipped garbage: a truncated varint inside.
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte{0x12, 0xff}) // field 2 wire 2 with truncated length
	zw.Close()
	if _, err := SampleLabels(buf.Bytes()); err == nil {
		t.Fatal("corrupt profile accepted")
	}
	// Out-of-range string index.
	bad := encodeProfile(t, []string{"", "k"}, []map[uint64]uint64{{1: 99}})
	if _, err := SampleLabels(bad); err == nil {
		t.Fatal("out-of-range label index accepted")
	}
}

// TestCaptureLabeledWork: CPU work run under Do during a capture window
// produces a profile that parses; when the sampler caught any labeled
// samples, the labels round-trip through SampleLabels.
func TestCaptureLabeledWork(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	s := NewStore(StoreConfig{Ring: 2, CPUDuration: 200 * time.Millisecond})

	stopWork := make(chan struct{})
	go Do(context.Background(), func(ctx context.Context) {
		x := 0
		for {
			select {
			case <-stopWork:
				return
			default:
				x += x*x + 1 // spin
			}
		}
	}, "query_key", "bench-key")
	defer close(stopWork)

	c, err := s.CaptureNow(Capture{Reason: "manual"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := s.Payload(c.ID, KindCPU)
	labels, err := SampleLabels(cpu)
	if err != nil {
		t.Fatalf("captured profile does not parse: %v", err)
	}
	// Sampling is statistical; with a 200ms window and a hot spin loop we
	// nearly always see the label, but only assert consistency: any sample
	// carrying query_key must carry our value.
	for _, m := range labels {
		if v, ok := m["query_key"]; ok && v != "bench-key" {
			t.Fatalf("foreign query_key label %q", v)
		}
	}
}
