package prof

import (
	"context"
	"runtime/pprof"
	"strings"
	"testing"
)

// TestDoSetsLabels: Do attaches the goroutine labels while fn runs, and
// skips them when attribution is off.
func TestDoSetsLabels(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)

	var key, ep string
	var ok1, ok2 bool
	Do(context.Background(), func(ctx context.Context) {
		key, ok1 = pprof.Label(ctx, "query_key")
		ep, ok2 = pprof.Label(ctx, "endpoint")
	}, "query_key", "Q1", "endpoint", "eval")
	if !ok1 || key != "Q1" || !ok2 || ep != "eval" {
		t.Fatalf("labels not set: query_key=%q(%v) endpoint=%q(%v)", key, ok1, ep, ok2)
	}

	SetEnabled(false)
	Do(context.Background(), func(ctx context.Context) {
		_, ok1 = pprof.Label(ctx, "query_key")
	}, "query_key", "Q1")
	if ok1 {
		t.Fatal("labels set while attribution disabled")
	}
}

// TestDoOddKV: an odd trailing key is dropped rather than panicking.
func TestDoOddKV(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	ran := false
	Do(context.Background(), func(ctx context.Context) {
		ran = true
		if v, ok := pprof.Label(ctx, "a"); !ok || v != "1" {
			t.Errorf("label a=%q(%v), want 1", v, ok)
		}
	}, "a", "1", "dangling")
	if !ran {
		t.Fatal("fn did not run")
	}
}

// TestQueryKeyLabel: short keys pass through, long keys truncate to a
// bounded prefix plus a hash of the full key.
func TestQueryKeyLabel(t *testing.T) {
	if got := QueryKeyLabel("short"); got != "short" {
		t.Fatalf("short key mangled: %q", got)
	}
	long := strings.Repeat("x", maxLabelLen+50)
	got := QueryKeyLabel(long)
	if len(got) > maxLabelLen || !strings.HasPrefix(got, "xxxx") || !strings.Contains(got, "#") {
		t.Fatalf("long key not truncated with hash: %q (len=%d)", got, len(got))
	}
	// Truncation is deterministic, so labeling and matching agree.
	if QueryKeyLabel(long) != got {
		t.Fatal("truncation not deterministic")
	}
}

// TestQueryKeyLabelDistinguishesLongKeys is the collision regression: two
// distinct keys sharing a prefix longer than the label bound must map to
// distinct labels — the suffix hash covers the full key, not the prefix.
func TestQueryKeyLabelDistinguishesLongKeys(t *testing.T) {
	prefix := strings.Repeat("k", maxLabelLen+10)
	a := QueryKeyLabel(prefix + "A")
	b := QueryKeyLabel(prefix + "B")
	if a == b {
		t.Fatalf("long keys with shared prefix collapsed to one label: %q", a)
	}
	if len(a) > maxLabelLen || len(b) > maxLabelLen {
		t.Fatalf("labels exceed bound: %d, %d", len(a), len(b))
	}
}

// TestAllocMeter: a metered run attributes the bytes it allocates; a
// contended or disabled run returns an inert mark.
func TestAllocMeter(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	prevStride := SetAllocSampling(1)
	defer SetAllocSampling(prevStride)

	m := BeginAlloc()
	sink = make([]byte, 1<<20)
	bytes, objs, sampled := m.End()
	if !sampled {
		t.Fatal("mark not sampled")
	}
	if bytes < 1<<20 {
		t.Fatalf("allocated bytes %d, want ≥ %d", bytes, 1<<20)
	}
	if objs < 1 {
		t.Fatalf("allocated objects %d, want ≥ 1", objs)
	}

	// Contention: a second mark while the first is open goes unsampled.
	m1 := BeginAlloc()
	m2 := BeginAlloc()
	if _, _, s := m2.End(); s {
		t.Fatal("contended mark reported sampled")
	}
	if _, _, s := m1.End(); !s {
		t.Fatal("first mark lost its sample to the contended one")
	}
	// Token released: metering works again.
	m3 := BeginAlloc()
	if _, _, s := m3.End(); !s {
		t.Fatal("token not released after contended End")
	}

	SetEnabled(false)
	if m := BeginAlloc(); m.active {
		m.End()
		t.Fatal("BeginAlloc active while disabled")
	}
}

// TestAllocSamplingStride: with stride N, exactly one BeginAlloc in every
// N is an active measurement.
func TestAllocSamplingStride(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	prevStride := SetAllocSampling(4)
	defer SetAllocSampling(prevStride)

	active := 0
	for i := 0; i < 16; i++ {
		m := BeginAlloc()
		if m.active {
			active++
		}
		m.End()
	}
	if active != 4 {
		t.Fatalf("stride 4 over 16 calls metered %d, want 4", active)
	}
}

// sink keeps the allocation in TestAllocMeter from being optimized away.
var sink []byte
