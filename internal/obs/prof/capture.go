package prof

import (
	"bytes"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Capture-store metrics, on /metrics alongside every other obs family.
var (
	mCaptures   = obs.NewCounter("prof.captures")
	mCapErrors  = obs.NewCounter("prof.capture_errors")
	mSuppressed = obs.NewCounter("prof.captures_suppressed")
	gHeld       = obs.NewGauge("prof.captures_held")
	gCapturing  = obs.NewGauge("prof.capturing")
)

func init() {
	obs.SetHelp("prof.captures", "Completed CPU+heap profile captures.")
	obs.SetHelp("prof.capture_errors", "Profile captures that failed to start or complete.")
	obs.SetHelp("prof.captures_suppressed", "Triggered captures suppressed by the disarm gate, the per-reason cooldown, or an in-flight capture.")
	obs.SetHelp("prof.captures_held", "Profile captures currently retained in the ring.")
	obs.SetHelp("prof.capturing", "1 while a CPU profile capture is in flight.")
}

// Capture is one retained CPU+heap profile pair's metadata. The profile
// payloads stay out of the JSON (GET /debug/profiles lists Captures;
// ?id=&kind=cpu|heap downloads the bytes).
type Capture struct {
	// ID identifies the capture for download ("prof-0001", ...).
	ID string `json:"id"`
	// Reason is why the capture ran: "manual" or "slo:<endpoint>:<dim>".
	Reason string `json:"reason"`
	// Endpoint is the RED endpoint whose burn tripped, when SLO-triggered.
	Endpoint string `json:"endpoint,omitempty"`
	// RequestID is the exemplar request that evidenced the trip; TailID is
	// the tail-sampler capture retained for that request, when one exists,
	// so the profile links to a concrete span subtree.
	RequestID string `json:"request_id,omitempty"`
	TailID    string `json:"tail_id,omitempty"`
	// QueryKey is the tripping request's canonical query key, when known.
	QueryKey string `json:"query_key,omitempty"`
	// StartUnixMS and DurationMS bound the CPU profile window.
	StartUnixMS int64 `json:"start_unix_ms"`
	DurationMS  int64 `json:"duration_ms"`
	// CPUBytes and HeapBytes are the payload sizes.
	CPUBytes  int `json:"cpu_bytes"`
	HeapBytes int `json:"heap_bytes"`

	cpu  []byte
	heap []byte
}

// StoreConfig tunes a capture store.
type StoreConfig struct {
	// Ring bounds retained captures (default 8); the oldest is evicted.
	Ring int
	// CPUDuration bounds each capture's CPU profile window (default 2s).
	CPUDuration time.Duration
	// Cooldown suppresses repeat triggers for the same reason (default
	// 5m), so a burn that stays over threshold across ticks yields one
	// capture per incident, not one per tick.
	Cooldown time.Duration
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.Ring <= 0 {
		c.Ring = 8
	}
	if c.CPUDuration <= 0 {
		c.CPUDuration = 2 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Minute
	}
	return c
}

// Store is the bounded profile-capture retention store: a ring of
// completed captures, an armed/disarmed gate for automatic triggers, a
// per-reason cooldown, and a single-flight latch (CPU profiling is
// process-global, so at most one capture runs at a time).
type Store struct {
	cfg StoreConfig

	armed     atomic.Bool
	capturing atomic.Bool

	mu         sync.Mutex
	caps       []*Capture // newest last
	seq        int
	lastReason map[string]time.Time
}

// NewStore builds a store; automatic triggers start armed.
func NewStore(cfg StoreConfig) *Store {
	s := &Store{cfg: cfg.withDefaults(), lastReason: map[string]time.Time{}}
	s.armed.Store(true)
	return s
}

// Arm enables automatic (SLO-trigger) captures.
func (s *Store) Arm() { s.armed.Store(true) }

// Disarm disables automatic captures; manual CaptureNow still works.
func (s *Store) Disarm() { s.armed.Store(false) }

// Armed reports the automatic-trigger gate.
func (s *Store) Armed() bool { return s.armed.Load() }

// Trigger starts an asynchronous capture for an automatic trigger unless
// the store is disarmed, the reason is within its cooldown, or another
// capture is in flight. It returns whether a capture was started and, if
// not, why ("disarmed", "cooldown", "busy").
func (s *Store) Trigger(meta Capture) (started bool, why string) {
	if !s.armed.Load() {
		mSuppressed.Inc()
		return false, "disarmed"
	}
	now := time.Now()
	s.mu.Lock()
	if last, ok := s.lastReason[meta.Reason]; ok && now.Sub(last) < s.cfg.Cooldown {
		s.mu.Unlock()
		mSuppressed.Inc()
		return false, "cooldown"
	}
	s.lastReason[meta.Reason] = now
	s.mu.Unlock()
	if !s.capturing.CompareAndSwap(false, true) {
		mSuppressed.Inc()
		return false, "busy"
	}
	go func() {
		defer s.capturing.Store(false)
		s.capture(meta, s.cfg.CPUDuration)
	}()
	return true, ""
}

// CaptureNow runs a synchronous capture (the POST /debug/profiles/capture
// path), honoring only the single-flight latch — an operator asking for a
// profile overrides the disarm gate and the cooldown. A non-positive dur
// uses the configured default.
func (s *Store) CaptureNow(meta Capture, dur time.Duration) (*Capture, error) {
	if dur <= 0 {
		dur = s.cfg.CPUDuration
	}
	if !s.capturing.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("prof: a capture is already in flight")
	}
	defer s.capturing.Store(false)
	return s.capture(meta, dur)
}

// capture records the CPU profile for dur, then the heap profile, and
// retains the pair in the ring. Caller holds the single-flight latch.
func (s *Store) capture(meta Capture, dur time.Duration) (*Capture, error) {
	gCapturing.Set(1)
	defer gCapturing.Set(0)
	var cpuBuf bytes.Buffer
	start := time.Now()
	if err := pprof.StartCPUProfile(&cpuBuf); err != nil {
		// Another profiler owns the CPU (e.g. a live /debug/pprof/profile
		// scrape); record the failure and drop the capture.
		mCapErrors.Inc()
		return nil, fmt.Errorf("prof: starting CPU profile: %w", err)
	}
	time.Sleep(dur)
	pprof.StopCPUProfile()

	var heapBuf bytes.Buffer
	if p := pprof.Lookup("heap"); p != nil {
		if err := p.WriteTo(&heapBuf, 0); err != nil {
			mCapErrors.Inc()
			heapBuf.Reset()
		}
	}

	c := meta // copy the caller's metadata (reason, links)
	c.StartUnixMS = start.UnixMilli()
	c.DurationMS = time.Since(start).Milliseconds()
	c.cpu = cpuBuf.Bytes()
	c.heap = heapBuf.Bytes()
	c.CPUBytes = len(c.cpu)
	c.HeapBytes = len(c.heap)

	s.mu.Lock()
	s.seq++
	c.ID = fmt.Sprintf("prof-%04d", s.seq)
	if len(s.caps) >= s.cfg.Ring {
		s.caps = append(s.caps[:0], s.caps[1:]...)
	}
	s.caps = append(s.caps, &c)
	held := len(s.caps)
	s.mu.Unlock()

	mCaptures.Inc()
	gHeld.Set(int64(held))
	return &c, nil
}

// List returns every retained capture's metadata, oldest first.
func (s *Store) List() []Capture {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Capture, 0, len(s.caps))
	for _, c := range s.caps {
		cc := *c
		cc.cpu, cc.heap = nil, nil
		out = append(out, cc)
	}
	return out
}

// Get returns one capture's metadata by ID.
func (s *Store) Get(id string) (Capture, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.caps {
		if c.ID == id {
			cc := *c
			cc.cpu, cc.heap = nil, nil
			return cc, true
		}
	}
	return Capture{}, false
}

// Profile kinds for Payload.
const (
	KindCPU  = "cpu"
	KindHeap = "heap"
)

// Payload returns a capture's raw pprof bytes by ID and kind.
func (s *Store) Payload(id, kind string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.caps {
		if c.ID != id {
			continue
		}
		switch kind {
		case KindCPU:
			return c.cpu, true
		case KindHeap:
			return c.heap, true
		}
		return nil, false
	}
	return nil, false
}
