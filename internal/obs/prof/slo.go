package prof

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// The SLO engine turns the server's cumulative RED counters into
// burn rates. An objective says "at least LatencyTarget of requests
// finish within LatencyUS" (and "at most 1−ErrorTarget of requests
// error"); the burn rate is the fraction of the error budget being spent
// per unit time, so burn 1.0 exactly exhausts the budget over the SLO
// period and burn 10 exhausts it ten times as fast. Two windows smooth
// the signal the standard way: the fast window reacts to an incident in
// seconds, the slow window keeps a brief blip from paging. A trip fires
// on the edge where the fast burn crosses TripBurn while the slow burn
// confirms it — and the capture store turns that edge into a CPU+heap
// profile of the incident in progress.

// EndpointCounts is one endpoint's cumulative counters at a sample
// instant: total requests, error responses, latency observations, and
// latency observations at or under the objective's threshold.
type EndpointCounts struct {
	Requests int64
	Errors   int64
	LatCount int64
	LatGood  int64
}

// Source yields the current cumulative counts per endpoint. The server
// adapts its RED metric families into one of these.
type Source func() map[string]EndpointCounts

// Objective is one endpoint's SLO targets. A zero LatencyUS disables the
// latency dimension; a zero ErrorTarget disables the error dimension.
type Objective struct {
	// Endpoint is the RED endpoint label ("eval", "decide", ...).
	Endpoint string
	// LatencyUS is the good-latency threshold in microseconds. The obs
	// histograms bucket by powers of two, so the effective threshold is
	// the enclosing bucket's upper bound (EffectiveLatencyUS).
	LatencyUS int64
	// LatencyTarget is the objective fraction of requests that must meet
	// the threshold, e.g. 0.99.
	LatencyTarget float64
	// ErrorTarget is the objective fraction of requests that must not
	// error, e.g. 0.999.
	ErrorTarget float64
}

// EffectiveLatencyUS is the threshold the engine can actually enforce:
// LatencyUS rounded up to its histogram bucket's inclusive upper bound.
func (o Objective) EffectiveLatencyUS() int64 {
	if o.LatencyUS <= 0 {
		return 0
	}
	return obs.BucketUpper(o.LatencyUS)
}

// Trip dimensions.
const (
	DimLatency = "latency"
	DimErrors  = "errors"
)

// Trip is one burn-threshold crossing: the endpoint and dimension that
// tripped, with both window burn rates at the moment of the edge.
type Trip struct {
	Endpoint  string
	Dimension string
	FastBurn  float64
	SlowBurn  float64
}

// EngineConfig tunes the SLO engine. Zero durations take the defaults
// noted on each field.
type EngineConfig struct {
	Objectives []Objective
	Source     Source
	// Tick is the sampling period (default 10s).
	Tick time.Duration
	// FastWindow and SlowWindow are the burn-rate windows (defaults 1m
	// and 10m). The slow window bounds the engine's memory: it keeps
	// SlowWindow/Tick+2 samples.
	FastWindow time.Duration
	SlowWindow time.Duration
	// TripBurn is the fast-window burn rate that fires a trip when the
	// slow window confirms at half the rate (default 8).
	TripBurn float64
	// OnTrip, when set, is called from the engine's sampling goroutine on
	// each trip edge. Implementations must not block (the capture store's
	// async trigger is the intended callee).
	OnTrip func(Trip)
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.Tick <= 0 {
		c.Tick = 10 * time.Second
	}
	if c.FastWindow <= 0 {
		c.FastWindow = time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 10 * time.Minute
	}
	if c.SlowWindow < c.FastWindow {
		c.SlowWindow = c.FastWindow
	}
	if c.TripBurn <= 0 {
		c.TripBurn = 8
	}
	return c
}

// sloSample is one tick's cumulative counts.
type sloSample struct {
	at     time.Time
	counts map[string]EndpointCounts
}

// dimGauges are one endpoint+dimension's exported burn gauges, in
// milli-units (burn 1.0 → 1000) since obs gauges are integers.
type dimGauges struct {
	fast, slow, tripped *obs.Gauge
}

// Engine samples a Source on a ticker and maintains burn rates per
// objective and dimension. Create with NewEngine; drive with Start (or
// tick directly in tests); read with Status.
type Engine struct {
	cfg EngineConfig

	mu      sync.Mutex
	ring    []sloSample // newest last, bounded by slow window
	burns   map[string]burnState
	stopped bool

	gauges map[string]dimGauges
}

// burnState is the latest computed burn pair and trip latch for one
// endpoint+dimension key.
type burnState struct {
	fast, slow float64
	tripped    bool
	lastTrip   time.Time
}

func dimKey(endpoint, dim string) string { return endpoint + "/" + dim }

// NewEngine validates the config and registers the burn gauges. The
// objective set is closed at construction, so the gauge families are a
// closed set too.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.Source == nil {
		return nil, fmt.Errorf("prof: slo engine needs a Source")
	}
	seen := map[string]bool{}
	for _, o := range cfg.Objectives {
		if o.Endpoint == "" {
			return nil, fmt.Errorf("prof: slo objective with empty endpoint")
		}
		if seen[o.Endpoint] {
			return nil, fmt.Errorf("prof: duplicate slo objective for endpoint %q", o.Endpoint)
		}
		seen[o.Endpoint] = true
		if o.LatencyUS > 0 && (o.LatencyTarget <= 0 || o.LatencyTarget >= 1) {
			return nil, fmt.Errorf("prof: slo latency target for %q must be in (0,1), got %v", o.Endpoint, o.LatencyTarget)
		}
		if o.ErrorTarget < 0 || o.ErrorTarget >= 1 {
			return nil, fmt.Errorf("prof: slo error target for %q must be in [0,1), got %v", o.Endpoint, o.ErrorTarget)
		}
	}
	e := &Engine{
		cfg:    cfg,
		burns:  map[string]burnState{},
		gauges: map[string]dimGauges{},
	}
	for _, o := range cfg.Objectives {
		for _, dim := range []string{DimLatency, DimErrors} {
			if (dim == DimLatency && o.LatencyUS <= 0) || (dim == DimErrors && o.ErrorTarget <= 0) {
				continue
			}
			base := "slo." + o.Endpoint + "." + dim
			g := dimGauges{
				fast:    obs.NewGauge(base + "_burn_fast_milli"),
				slow:    obs.NewGauge(base + "_burn_slow_milli"),
				tripped: obs.NewGauge(base + "_tripped"),
			}
			obs.SetHelp(base+"_burn_fast_milli", "Fast-window SLO burn rate x1000 for the "+o.Endpoint+" "+dim+" objective.")
			obs.SetHelp(base+"_burn_slow_milli", "Slow-window SLO burn rate x1000 for the "+o.Endpoint+" "+dim+" objective.")
			obs.SetHelp(base+"_tripped", "1 while the "+o.Endpoint+" "+dim+" burn trigger is latched.")
			e.gauges[dimKey(o.Endpoint, dim)] = g
		}
	}
	return e, nil
}

// Start begins sampling on the configured tick and returns an idempotent
// stop function. An immediate first sample runs before returning, so
// Status and the gauges are populated from the start.
func (e *Engine) Start() (stop func()) {
	e.Tick(time.Now())
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(e.cfg.Tick)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				e.Tick(now)
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Tick takes one sample and recomputes every burn rate; Start calls it on
// the ticker and tests call it directly with a synthetic clock.
func (e *Engine) Tick(now time.Time) {
	counts := e.cfg.Source()
	var trips []Trip

	e.mu.Lock()
	e.ring = append(e.ring, sloSample{at: now, counts: counts})
	cutoff := now.Add(-e.cfg.SlowWindow)
	// Keep one sample at or before the cutoff so the slow window always
	// has a full-span baseline once enough history exists.
	drop := 0
	for drop < len(e.ring)-1 && e.ring[drop+1].at.Before(cutoff) {
		drop++
	}
	e.ring = e.ring[drop:]

	for _, o := range e.cfg.Objectives {
		for _, dim := range []string{DimLatency, DimErrors} {
			key := dimKey(o.Endpoint, dim)
			g, active := e.gauges[key]
			if !active {
				continue
			}
			fast := e.burnOver(o, dim, now, e.cfg.FastWindow)
			slow := e.burnOver(o, dim, now, e.cfg.SlowWindow)
			st := e.burns[key]
			st.fast, st.slow = fast, slow
			over := fast >= e.cfg.TripBurn && slow >= e.cfg.TripBurn/2
			if over && !st.tripped {
				st.lastTrip = now
				trips = append(trips, Trip{Endpoint: o.Endpoint, Dimension: dim, FastBurn: fast, SlowBurn: slow})
			}
			st.tripped = over
			e.burns[key] = st
			g.fast.Set(int64(fast * 1000))
			g.slow.Set(int64(slow * 1000))
			if over {
				g.tripped.Set(1)
			} else {
				g.tripped.Set(0)
			}
		}
	}
	e.mu.Unlock()

	if e.cfg.OnTrip != nil {
		for _, tr := range trips {
			e.cfg.OnTrip(tr)
		}
	}
}

// burnOver computes one dimension's burn rate over the trailing window:
// (bad fraction among the window's requests) / (error budget). Caller
// holds e.mu. Returns 0 until the ring spans at least two samples.
func (e *Engine) burnOver(o Objective, dim string, now time.Time, window time.Duration) float64 {
	if len(e.ring) < 2 {
		return 0
	}
	newest := e.ring[len(e.ring)-1]
	// The window baseline is the newest sample at or before now-window,
	// or the oldest sample while history is still shorter than the window.
	cutoff := now.Add(-window)
	base := e.ring[0]
	for _, s := range e.ring[1 : len(e.ring)-1] {
		if s.at.After(cutoff) {
			break
		}
		base = s
	}
	nc, bc := newest.counts[o.Endpoint], base.counts[o.Endpoint]
	var bad, total int64
	var budget float64
	switch dim {
	case DimLatency:
		total = nc.LatCount - bc.LatCount
		bad = total - (nc.LatGood - bc.LatGood)
		budget = 1 - o.LatencyTarget
	case DimErrors:
		total = nc.Requests - bc.Requests
		bad = nc.Errors - bc.Errors
		budget = 1 - o.ErrorTarget
	}
	if total <= 0 || budget <= 0 {
		return 0
	}
	if bad < 0 {
		bad = 0
	}
	return (float64(bad) / float64(total)) / budget
}

// DimensionStatus is one dimension of an endpoint's SLO as reported by
// Status and GET /v1/slo.
type DimensionStatus struct {
	// Target is the objective fraction (good latency or non-error).
	Target float64 `json:"target"`
	// ThresholdUS is the configured good-latency bound; EffectiveUS the
	// bucket bound actually enforced. Latency dimension only.
	ThresholdUS int64 `json:"threshold_us,omitempty"`
	EffectiveUS int64 `json:"effective_us,omitempty"`
	// BurnFast and BurnSlow are the current burn rates.
	BurnFast float64 `json:"burn_fast"`
	BurnSlow float64 `json:"burn_slow"`
	// Tripped reports the trigger latch; LastTripUnixMS the most recent
	// trip edge (0 when never tripped).
	Tripped        bool  `json:"tripped"`
	LastTripUnixMS int64 `json:"last_trip_unix_ms,omitempty"`
}

// EndpointStatus is one endpoint's SLO summary.
type EndpointStatus struct {
	Endpoint string           `json:"endpoint"`
	Latency  *DimensionStatus `json:"latency,omitempty"`
	Errors   *DimensionStatus `json:"errors,omitempty"`
}

// Status reports every objective's current burn state, sorted by
// endpoint for deterministic JSON.
func (e *Engine) Status() []EndpointStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]EndpointStatus, 0, len(e.cfg.Objectives))
	for _, o := range e.cfg.Objectives {
		es := EndpointStatus{Endpoint: o.Endpoint}
		if o.LatencyUS > 0 {
			st := e.burns[dimKey(o.Endpoint, DimLatency)]
			es.Latency = &DimensionStatus{
				Target: o.LatencyTarget, ThresholdUS: o.LatencyUS, EffectiveUS: o.EffectiveLatencyUS(),
				BurnFast: st.fast, BurnSlow: st.slow, Tripped: st.tripped,
			}
			if !st.lastTrip.IsZero() {
				es.Latency.LastTripUnixMS = st.lastTrip.UnixMilli()
			}
		}
		if o.ErrorTarget > 0 {
			st := e.burns[dimKey(o.Endpoint, DimErrors)]
			es.Errors = &DimensionStatus{
				Target:   o.ErrorTarget,
				BurnFast: st.fast, BurnSlow: st.slow, Tripped: st.tripped,
			}
			if !st.lastTrip.IsZero() {
				es.Errors.LastTripUnixMS = st.lastTrip.UnixMilli()
			}
		}
		out = append(out, es)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Endpoint < out[j].Endpoint })
	return out
}

// Windows reports the engine's effective tick and window configuration —
// the /v1/slo header block.
func (e *Engine) Windows() (tick, fast, slow time.Duration, tripBurn float64) {
	return e.cfg.Tick, e.cfg.FastWindow, e.cfg.SlowWindow, e.cfg.TripBurn
}
