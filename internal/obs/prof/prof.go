// Package prof is the profile-guided observability layer: pprof label
// attribution, per-evaluation allocation accounting, an SLO burn-rate
// engine over the server's RED metrics, and a trigger-based CPU+heap
// profile capture store.
//
// The other obs packages answer "how long did it take" (histograms,
// spans, traces); this one answers "where did the CPU and the allocations
// go, per query class". Every CPU-profile sample taken while a request is
// in flight carries pprof labels (endpoint, request_id from the server
// middleware; query_key, domain, mode from finq.Eval), so one `go tool
// pprof` invocation can slice the process profile by endpoint or by a
// single formula's canonical key. When an SLO burn-rate threshold trips,
// the capture store records a bounded CPU+heap profile pair while the
// incident is still live, cross-linked to the tail-sampler capture and
// request ID that tripped it — the evidence arrives with the page.
//
// Everything here follows the repository's observability conventions: a
// package-level atomic toggle (the labeled path costs one atomic load
// when off), zero dependencies outside the standard library, and bounded
// memory (the capture ring, the SLO sample ring).
package prof

import (
	"context"
	"hash/fnv"
	"runtime/metrics"
	"runtime/pprof"
	"strconv"
	"sync/atomic"
)

// enabled gates pprof label attribution and allocation accounting. On by
// default: with no CPU profile running, setting goroutine labels is a
// map copy per evaluation, and the alloc meter is two runtime/metrics
// reads — `make bench-prof` holds the sum under the 3% bar.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enable turns label attribution and allocation accounting on (default).
func Enable() { enabled.Store(true) }

// Disable turns attribution off; Do runs its function without labels and
// BeginAlloc returns an inert mark.
func Disable() { enabled.Store(false) }

// SetEnabled sets the toggle and returns the previous value, for scoped
// use in tests and benchmarks.
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Enabled reports whether attribution is on.
func Enabled() bool { return enabled.Load() }

// maxLabelLen bounds a single pprof label value. Canonical keys grow with
// the formula; profiles keep a prefix long enough to identify the query
// without letting a pathological formula bloat every sample.
const maxLabelLen = 192

// QueryKeyLabel is the pprof label value for a formula's canonical key:
// the key itself when it fits, otherwise a bounded prefix suffixed with
// "#" and an FNV-64a hash of the full key, so two long keys sharing a
// prefix still map to distinct labels. Use it both when labeling
// (finq.Eval) and when matching labels in a captured profile, so the two
// sides agree on long keys.
func QueryKeyLabel(key string) string {
	if len(key) <= maxLabelLen {
		return key
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	suffix := "#" + strconv.FormatUint(h.Sum64(), 16)
	return key[:maxLabelLen-len(suffix)] + suffix
}

// Do runs fn with the given pprof labels (alternating key, value) added
// to the calling goroutine — and to any goroutine it spawns, so parallel
// evaluation workers inherit the request's labels. When attribution is
// disabled, fn runs directly. An odd trailing key is dropped.
func Do(ctx context.Context, fn func(context.Context), kv ...string) {
	if !enabled.Load() || len(kv) < 2 {
		fn(ctx)
		return
	}
	pprof.Do(ctx, pprof.Labels(kv[:len(kv)&^1]...), fn)
}

// Allocation accounting. Go does not expose per-goroutine allocation
// counters, so the meter reads the process-wide cumulative allocation
// metrics before and after an evaluation and attributes the delta — a
// number that is exact when evaluations are serialized and an upper bound
// when other work allocates concurrently. A single atomic token keeps two
// evaluations from metering at once: the second one simply goes
// unsampled (AllocSampled stays false), so concurrent traffic degrades to
// sampling the serialized fraction rather than producing garbage numbers.
//
// The meter additionally stride-samples: only every Nth BeginAlloc
// (default 8) actually reads the runtime metrics, because two
// metrics.Read calls per evaluation are the dominant cost of the whole
// attribution layer and per-query mean allocation converges just as well
// from a deterministic sample. The qstats aggregates divide by the
// sampled count (AllocSamples), so the stride changes variance, not the
// estimate.

// allocMetrics are the cumulative runtime/metrics samples the meter reads.
var allocMetricNames = [2]string{"/gc/heap/allocs:bytes", "/gc/heap/allocs:objects"}

// allocToken serializes meters: held from BeginAlloc to End.
var allocToken atomic.Bool

// allocStride is the sampling stride: BeginAlloc meters one call in
// every allocStride. Mutable only via SetAllocSampling.
var allocStride atomic.Int64

// allocTick counts BeginAlloc calls for the stride.
var allocTick atomic.Int64

const defaultAllocStride = 8

func init() { allocStride.Store(defaultAllocStride) }

// SetAllocSampling sets the allocation-meter stride (1 meters every
// eligible call) and returns the previous value; n < 1 resets the
// default. For tests, benchmarks, and operators wanting denser samples.
func SetAllocSampling(n int) int {
	if n < 1 {
		n = defaultAllocStride
	}
	return int(allocStride.Swap(int64(n)))
}

// AllocMark is an in-progress allocation measurement. The zero value is
// inert: End returns sampled == false.
type AllocMark struct {
	active bool
	bytes  uint64
	objs   uint64
}

func readAllocs() (bytes, objs uint64) {
	var s [2]metrics.Sample
	s[0].Name = allocMetricNames[0]
	s[1].Name = allocMetricNames[1]
	metrics.Read(s[:])
	if s[0].Value.Kind() == metrics.KindUint64 {
		bytes = s[0].Value.Uint64()
	}
	if s[1].Value.Kind() == metrics.KindUint64 {
		objs = s[1].Value.Uint64()
	}
	return bytes, objs
}

// BeginAlloc starts an allocation measurement if attribution is on, this
// call lands on the sampling stride, and no other measurement is in
// flight; otherwise it returns an inert mark. The off-stride fast path is
// one atomic load and one atomic add.
func BeginAlloc() AllocMark {
	if !enabled.Load() {
		return AllocMark{}
	}
	if stride := allocStride.Load(); stride > 1 && allocTick.Add(1)%stride != 0 {
		return AllocMark{}
	}
	if !allocToken.CompareAndSwap(false, true) {
		return AllocMark{}
	}
	b, o := readAllocs()
	return AllocMark{active: true, bytes: b, objs: o}
}

// End finishes the measurement, releasing the token. It returns the
// allocated bytes and objects since BeginAlloc and whether this run was
// actually metered (false for inert marks).
func (m AllocMark) End() (bytes, objects int64, sampled bool) {
	if !m.active {
		return 0, 0, false
	}
	b, o := readAllocs()
	allocToken.Store(false)
	// The counters are cumulative and monotone; guard the subtraction
	// anyway so a runtime quirk can never yield negative attribution.
	if b >= m.bytes {
		bytes = int64(b - m.bytes)
	}
	if o >= m.objs {
		objects = int64(o - m.objs)
	}
	return bytes, objects, true
}
