package cliutil

import (
	"reflect"
	"testing"

	"repro/internal/deccache"
	"repro/internal/plan"
)

func TestExtractGlobalsCacheFlag(t *testing.T) {
	cases := []struct {
		args     []string
		rest     []string
		cacheVal string
	}{
		// Bare -cache must not swallow the subcommand that follows it.
		{[]string{"-cache", "eval", "q.fq"}, []string{"eval", "q.fq"}, "on"},
		{[]string{"--cache=off", "eval"}, []string{"eval"}, "off"},
		{[]string{"eval", "-cache=1"}, []string{"eval"}, "1"},
		{[]string{"eval"}, []string{"eval"}, ""},
		// Interleaved with a value-consuming global.
		{[]string{"-cache=off", "-trace-out", "t.json", "eval"}, []string{"eval"}, "off"},
	}
	for _, c := range cases {
		g := extractGlobals(c.args)
		if !reflect.DeepEqual(g.rest, c.rest) || g.cacheVal != c.cacheVal {
			t.Errorf("extractGlobals(%v) = rest %v cache %q, want %v %q",
				c.args, g.rest, g.cacheVal, c.rest, c.cacheVal)
		}
	}
}

// TestExtractGlobalsLogFlags covers the two logging globals in both
// "-flag value" and "-flag=value" spellings, interleaved with subcommand
// arguments.
func TestExtractGlobalsLogFlags(t *testing.T) {
	g := extractGlobals([]string{"-log-level", "debug", "eval", "--log-format=json", "q"})
	if g.logLevel != "debug" || g.logFormat != "json" {
		t.Errorf("log flags = %q %q, want debug json", g.logLevel, g.logFormat)
	}
	if !reflect.DeepEqual(g.rest, []string{"eval", "q"}) {
		t.Errorf("rest = %v, want [eval q]", g.rest)
	}
}

// TestSetupRejectsBadLogFlags: malformed logging values fail Setup before
// any work runs, like a malformed -cache.
func TestSetupRejectsBadLogFlags(t *testing.T) {
	if _, _, err := Setup("test", []string{"-log-level=loud"}, true); err == nil {
		t.Error("Setup accepted a malformed -log-level value")
	}
	if _, _, err := Setup("test", []string{"-log-format=yaml"}, true); err == nil {
		t.Error("Setup accepted a malformed -log-format value")
	}
}

func TestParseCacheValue(t *testing.T) {
	for _, v := range []string{"on", "true", "1", "ON", "True"} {
		if got, err := parseCacheValue(v); err != nil || !got {
			t.Errorf("parseCacheValue(%q) = %v, %v; want true", v, got, err)
		}
	}
	for _, v := range []string{"off", "false", "0", "OFF"} {
		if got, err := parseCacheValue(v); err != nil || got {
			t.Errorf("parseCacheValue(%q) = %v, %v; want false", v, got, err)
		}
	}
	if _, err := parseCacheValue("maybe"); err == nil {
		t.Error("parseCacheValue accepted garbage")
	}
}

// TestSetupWiresCacheToggle checks the three-way interaction of tool
// default and explicit flag.
func TestSetupWiresCacheToggle(t *testing.T) {
	prev := deccache.Enabled()
	defer deccache.SetEnabled(prev)

	cases := []struct {
		args []string
		def  bool
		want bool
	}{
		{nil, true, true},
		{nil, false, false},
		{[]string{"-cache=off"}, true, false},
		{[]string{"-cache"}, false, true},
	}
	for _, c := range cases {
		rest, finish, err := Setup("test", c.args, c.def)
		if err != nil {
			t.Fatalf("Setup(%v, default %v): %v", c.args, c.def, err)
		}
		finish()
		if len(rest) != 0 {
			t.Errorf("Setup(%v) left args %v", c.args, rest)
		}
		if deccache.Enabled() != c.want {
			t.Errorf("Setup(%v, default %v): cache enabled = %v, want %v",
				c.args, c.def, deccache.Enabled(), c.want)
		}
	}

	if _, _, err := Setup("test", []string{"-cache=sideways"}, true); err == nil {
		t.Error("Setup accepted a malformed -cache value")
	}
}

// TestSetupWiresPlanToggle: -plan follows the -cache pattern — bare means
// on, =off disables the planner, the default leaves it untouched.
func TestSetupWiresPlanToggle(t *testing.T) {
	prev := plan.Enabled()
	defer plan.SetEnabled(prev)

	cases := []struct {
		args []string
		rest []string
		want bool
	}{
		// Bare -plan must not swallow the subcommand that follows it.
		{[]string{"-plan", "eval"}, []string{"eval"}, true},
		{[]string{"--plan=off", "eval"}, []string{"eval"}, false},
		{[]string{"-plan=1"}, nil, true},
	}
	for _, c := range cases {
		rest, finish, err := Setup("test", c.args, true)
		if err != nil {
			t.Fatalf("Setup(%v): %v", c.args, err)
		}
		finish()
		if !reflect.DeepEqual(rest, c.rest) {
			t.Errorf("Setup(%v) left args %v, want %v", c.args, rest, c.rest)
		}
		if plan.Enabled() != c.want {
			t.Errorf("Setup(%v): planner enabled = %v, want %v", c.args, plan.Enabled(), c.want)
		}
	}

	// Absent flag: the process toggle is untouched.
	plan.SetEnabled(false)
	if _, finish, err := Setup("test", nil, true); err != nil {
		t.Fatal(err)
	} else {
		finish()
	}
	if plan.Enabled() {
		t.Error("Setup with no -plan flag changed the planner toggle")
	}
	plan.SetEnabled(prev)

	if _, _, err := Setup("test", []string{"-plan=sideways"}, true); err == nil {
		t.Error("Setup accepted a malformed -plan value")
	}
}

func TestParsePlanValue(t *testing.T) {
	for _, v := range []string{"on", "true", "1", "ON"} {
		if got, err := parsePlanValue(v); err != nil || !got {
			t.Errorf("parsePlanValue(%q) = %v, %v; want true", v, got, err)
		}
	}
	for _, v := range []string{"off", "false", "0", "OFF"} {
		if got, err := parsePlanValue(v); err != nil || got {
			t.Errorf("parsePlanValue(%q) = %v, %v; want false", v, got, err)
		}
	}
	if _, err := parsePlanValue("maybe"); err == nil {
		t.Error("parsePlanValue accepted garbage")
	}
}
