// Package cliutil holds the global flags shared by every CLI in this
// repository (finq, finqd, tmrun, safety, qe):
//
//	-debug-addr <host:port>  serve /debug/obs, /metrics, /debug/vars,
//	                         /debug/pprof/ for the life of the process
//	-trace-out <file>        arm the execution flight recorder and write a
//	                         Chrome trace (Perfetto / chrome://tracing) on exit
//	-cache[=on|off]          toggle the memoized decision cache
//	                         (internal/deccache); each tool picks its default
//	-plan[=on|off]           toggle the plan-caching query compiler
//	                         (internal/plan); default on
//	-log-level <l>           structured-log threshold: debug|info|warn|error
//	                         (default info)
//	-log-format <f>          structured-log encoding: text|json (default text)
//
// Setup installs the process-wide slog default logger (request-ID aware,
// writing to stderr) from -log-level/-log-format, so all five tools emit
// uniform structured logs — `finq eval` and a finqd access log line look
// the same and can be shipped to the same place.
//
// The flags may appear anywhere on the command line, in "-flag value" or
// "-flag=value" form (single or double dash) — except -cache and -plan,
// whose values must be attached with "=" (a bare -cache or -plan means on)
// so that "-cache eval" does not swallow the subcommand — and are stripped
// before the subcommand
// flag sets see the arguments. Hoisting them here keeps the four CLIs' flag
// handling identical without threading the flags through every FlagSet.
package cliutil

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/deccache"
	"repro/internal/obs"
	"repro/internal/obs/logctx"
	"repro/internal/obs/trace"
	"repro/internal/plan"
)

// Setup extracts the global flags from args, starts the debug server and
// arms the flight recorder as requested, and returns the remaining
// arguments plus a finish function. Call finish before exiting (it is
// idempotent): it disarms the recorder and writes the Chrome trace file.
// A startup failure (unusable debug address, unwritable trace path,
// malformed -cache value) is returned as an error so the CLI can exit
// nonzero before doing work.
//
// cacheDefault is the tool's decision-cache posture when no -cache flag is
// given: the enumeration tools (finq, safety) default on, the others off.
func Setup(tool string, args []string, cacheDefault bool) (rest []string, finish func(), err error) {
	g := extractGlobals(args)
	rest = g.rest
	debugAddr, traceOut, cacheVal := g.debugAddr, g.traceOut, g.cacheVal
	useCache := cacheDefault
	if cacheVal != "" {
		on, err := parseCacheValue(cacheVal)
		if err != nil {
			return nil, nil, err
		}
		useCache = on
	}
	deccache.SetEnabled(useCache)
	if g.planVal != "" {
		on, err := parsePlanValue(g.planVal)
		if err != nil {
			return nil, nil, err
		}
		plan.SetEnabled(on)
	}
	if err := logctx.Setup(os.Stderr, g.logLevel, g.logFormat); err != nil {
		return nil, nil, err
	}
	if debugAddr != "" {
		addr, err := obs.ServeDebug(debugAddr)
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "%s: debug server on http://%s/debug/obs (Prometheus at /metrics, pprof under /debug/pprof/)\n", tool, addr)
	}
	if traceOut != "" {
		// Fail before the run, not after it, if the path is unwritable.
		probe, err := os.Create(traceOut)
		if err != nil {
			return nil, nil, err
		}
		probe.Close()
		trace.Arm(0)
	}
	done := false
	finish = func() {
		if done {
			return
		}
		done = true
		if traceOut == "" {
			return
		}
		trace.Disarm()
		events := trace.Dump()
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: trace: %v\n", tool, err)
			return
		}
		defer f.Close()
		if err := trace.WriteChrome(f, events); err != nil {
			fmt.Fprintf(os.Stderr, "%s: trace: %v\n", tool, err)
			return
		}
		fmt.Fprintf(os.Stderr, "%s: wrote %d trace events (%d dropped) to %s — load in Perfetto or chrome://tracing\n",
			tool, len(events), trace.Dropped(), traceOut)
	}
	return rest, finish, nil
}

// globals is the extracted set of shared flags.
type globals struct {
	rest      []string
	debugAddr string
	traceOut  string
	cacheVal  string
	planVal   string
	logLevel  string
	logFormat string
}

// extractGlobals strips -debug-addr, -trace-out, -log-level, -log-format
// (all four spellings each), -cache, and -plan from the argument list.
// cacheVal/planVal are "" when the flag is absent, "on" for a bare flag,
// and the literal value for the = spelling; unlike the other globals a
// bare -cache or -plan never consumes the next argument, which is usually
// the subcommand.
func extractGlobals(args []string) globals {
	var g globals
	for i := 0; i < len(args); i++ {
		a := args[i]
		name, val, hasVal := splitFlag(a)
		switch name {
		case "debug-addr", "trace-out", "log-level", "log-format":
			if !hasVal {
				if i+1 < len(args) {
					val = args[i+1]
					i++
				}
			}
			switch name {
			case "debug-addr":
				g.debugAddr = val
			case "trace-out":
				g.traceOut = val
			case "log-level":
				g.logLevel = val
			case "log-format":
				g.logFormat = val
			}
		case "cache":
			if hasVal {
				g.cacheVal = val
			} else {
				g.cacheVal = "on"
			}
		case "plan":
			if hasVal {
				g.planVal = val
			} else {
				g.planVal = "on"
			}
		default:
			g.rest = append(g.rest, a)
		}
	}
	return g
}

// parseCacheValue maps the accepted -cache values onto the toggle.
func parseCacheValue(v string) (bool, error) {
	switch strings.ToLower(v) {
	case "on", "true", "1":
		return true, nil
	case "off", "false", "0":
		return false, nil
	}
	return false, fmt.Errorf("-cache: want on|off, got %q", v)
}

// parsePlanValue maps the accepted -plan values onto the toggle.
func parsePlanValue(v string) (bool, error) {
	switch strings.ToLower(v) {
	case "on", "true", "1":
		return true, nil
	case "off", "false", "0":
		return false, nil
	}
	return false, fmt.Errorf("-plan: want on|off, got %q", v)
}

// splitFlag parses "-name", "--name", "-name=value" into its parts; a
// non-flag argument returns name "".
func splitFlag(a string) (name, value string, hasValue bool) {
	if !strings.HasPrefix(a, "-") {
		return "", "", false
	}
	a = strings.TrimPrefix(strings.TrimPrefix(a, "-"), "-")
	if i := strings.IndexByte(a, '='); i >= 0 {
		return a[:i], a[i+1:], true
	}
	return a, "", false
}
