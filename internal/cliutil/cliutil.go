// Package cliutil holds the global flags shared by every CLI in this
// repository (finq, tmrun, safety, qe):
//
//	-debug-addr <host:port>  serve /debug/obs, /metrics, /debug/vars,
//	                         /debug/pprof/ for the life of the process
//	-trace-out <file>        arm the execution flight recorder and write a
//	                         Chrome trace (Perfetto / chrome://tracing) on exit
//
// Both flags may appear anywhere on the command line, in "-flag value" or
// "-flag=value" form (single or double dash), and are stripped before the
// subcommand flag sets see the arguments — hoisting them here keeps the
// four CLIs' flag handling identical without threading the flags through
// every FlagSet.
package cliutil

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// Setup extracts the global flags from args, starts the debug server and
// arms the flight recorder as requested, and returns the remaining
// arguments plus a finish function. Call finish before exiting (it is
// idempotent): it disarms the recorder and writes the Chrome trace file.
// A startup failure (unusable debug address, unwritable trace path) is
// returned as an error so the CLI can exit nonzero before doing work.
func Setup(tool string, args []string) (rest []string, finish func(), err error) {
	rest, debugAddr, traceOut := extractGlobals(args)
	if debugAddr != "" {
		addr, err := obs.ServeDebug(debugAddr)
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "%s: debug server on http://%s/debug/obs (Prometheus at /metrics, pprof under /debug/pprof/)\n", tool, addr)
	}
	if traceOut != "" {
		// Fail before the run, not after it, if the path is unwritable.
		probe, err := os.Create(traceOut)
		if err != nil {
			return nil, nil, err
		}
		probe.Close()
		trace.Arm(0)
	}
	done := false
	finish = func() {
		if done {
			return
		}
		done = true
		if traceOut == "" {
			return
		}
		trace.Disarm()
		events := trace.Dump()
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: trace: %v\n", tool, err)
			return
		}
		defer f.Close()
		if err := trace.WriteChrome(f, events); err != nil {
			fmt.Fprintf(os.Stderr, "%s: trace: %v\n", tool, err)
			return
		}
		fmt.Fprintf(os.Stderr, "%s: wrote %d trace events (%d dropped) to %s — load in Perfetto or chrome://tracing\n",
			tool, len(events), trace.Dropped(), traceOut)
	}
	return rest, finish, nil
}

// extractGlobals strips -debug-addr and -trace-out (all four spellings
// each) from the argument list.
func extractGlobals(args []string) (rest []string, debugAddr, traceOut string) {
	for i := 0; i < len(args); i++ {
		a := args[i]
		name, val, hasVal := splitFlag(a)
		switch name {
		case "debug-addr", "trace-out":
			if !hasVal {
				if i+1 < len(args) {
					val = args[i+1]
					i++
				}
			}
			if name == "debug-addr" {
				debugAddr = val
			} else {
				traceOut = val
			}
		default:
			rest = append(rest, a)
		}
	}
	return rest, debugAddr, traceOut
}

// splitFlag parses "-name", "--name", "-name=value" into its parts; a
// non-flag argument returns name "".
func splitFlag(a string) (name, value string, hasValue bool) {
	if !strings.HasPrefix(a, "-") {
		return "", "", false
	}
	a = strings.TrimPrefix(strings.TrimPrefix(a, "-"), "-")
	if i := strings.IndexByte(a, '='); i >= 0 {
		return a[:i], a[i+1:], true
	}
	return a, "", false
}
