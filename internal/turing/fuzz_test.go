package turing

import (
	"strings"
	"testing"
)

// FuzzDecode checks the machine-word decoder never panics, accepts only the
// documented alphabet, and round-trips through Encode.
func FuzzDecode(f *testing.F) {
	f.Add("*")
	f.Add("1&1&1&1&11*")
	f.Add("1&11&1&11&11*1&1&1&1&11*")
	f.Add("")
	f.Add("111")
	f.Add("**")
	f.Add("1&11&1&11&111*")
	f.Add(Encode(LoopForever()))
	f.Add(Encode(BusyWork(3)))
	f.Fuzz(func(t *testing.T, word string) {
		m, err := Decode(word)
		if err != nil {
			return
		}
		for i := 0; i < len(word); i++ {
			switch word[i] {
			case One, Blank, Delimiter:
			default:
				t.Fatalf("decoded word %q contains %q", word, word[i])
			}
		}
		// Re-encoding canonicalizes; decoding again is stable.
		enc := Encode(m)
		m2, err := Decode(enc)
		if err != nil {
			t.Fatalf("canonical encoding %q does not decode: %v", enc, err)
		}
		if Encode(m2) != enc {
			t.Fatalf("canonicalization unstable")
		}
		// The decoded machine simulates without panicking.
		Run(m, "1&", 50)
	})
}

// FuzzParseTrace checks the trace validator never panics and that accepted
// words really are traces: their machine re-generates them.
func FuzzParseTrace(f *testing.F) {
	m := BusyWork(2)
	enc := Encode(m)
	for _, tr := range Traces(m, enc, "1&", 5) {
		f.Add(tr)
	}
	f.Add("")
	f.Add("|")
	f.Add(enc + "|1|1&||")
	f.Add(enc + "|garbage")
	f.Fuzz(func(t *testing.T, word string) {
		for i := 0; i < len(word); i++ {
			switch word[i] {
			case One, Blank, Delimiter, Separator:
			default:
				return // outside the alphabet; not a candidate
			}
		}
		p, err := ParseTrace(word)
		if err != nil {
			return
		}
		regen, err := Trace(p.Machine, p.MachineWord, p.Input, p.Steps)
		if err != nil || regen != word {
			t.Fatalf("accepted trace %q does not regenerate (err %v)", word, err)
		}
		if !strings.HasPrefix(word, p.MachineWord) {
			t.Fatalf("machine word %q not a prefix of trace", p.MachineWord)
		}
	})
}
