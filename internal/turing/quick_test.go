package turing

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genMachine wraps a random deterministic machine for testing/quick.
type genMachine struct {
	M *Machine
}

// Generate implements quick.Generator.
func (genMachine) Generate(rng *rand.Rand, size int) reflect.Value {
	states := 1 + rng.Intn(5)
	var rules []Rule
	for q := 1; q <= states; q++ {
		for _, s := range []byte{One, Blank} {
			if rng.Intn(4) == 0 {
				continue
			}
			mv := Left
			if rng.Intn(2) == 0 {
				mv = Right
			}
			wr := One
			if rng.Intn(2) == 0 {
				wr = Blank
			}
			rules = append(rules, Rule{State: q, Read: s, Next: 1 + rng.Intn(states), Write: wr, Move: mv})
		}
	}
	return reflect.ValueOf(genMachine{M: MustMachine(rules...)})
}

// genInput wraps a random input word.
type genInput struct {
	W string
}

// Generate implements quick.Generator.
func (genInput) Generate(rng *rand.Rand, size int) reflect.Value {
	n := rng.Intn(6)
	b := make([]byte, n)
	for i := range b {
		if rng.Intn(2) == 0 {
			b[i] = One
		} else {
			b[i] = Blank
		}
	}
	return reflect.ValueOf(genInput{W: string(b)})
}

var quickCfg = &quick.Config{MaxCount: 300}

// TestQuickEncodeDecodeRoundTrip: Encode∘Decode is the identity on
// canonical machine words, and Decode∘Encode preserves behaviour (same rule
// set).
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	prop := func(g genMachine) bool {
		enc := Encode(g.M)
		back, err := Decode(enc)
		if err != nil {
			return false
		}
		return Encode(back) == enc && back.NumRules() == g.M.NumRules()
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickMachineWordsClassify: every encoded machine is a machine word;
// appending a stray character breaks it.
func TestQuickMachineWordsClassify(t *testing.T) {
	prop := func(g genMachine) bool {
		enc := Encode(g.M)
		if !IsMachineWord(enc) {
			return false
		}
		return !IsMachineWord(enc + "1")
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickTraceRoundTrip: every generated trace parses back to its
// machine, input, and step count.
func TestQuickTraceRoundTrip(t *testing.T) {
	prop := func(g genMachine, in genInput) bool {
		enc := Encode(g.M)
		for steps, tr := range Traces(g.M, enc, in.W, 4) {
			p, err := ParseTrace(tr)
			if err != nil {
				return false
			}
			if p.MachineWord != enc || p.Input != in.W || p.Steps != steps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickTracesDistinct: traces of the same run are pairwise distinct
// (the trace-count identity D/E rests on this).
func TestQuickTracesDistinct(t *testing.T) {
	prop := func(g genMachine, in genInput) bool {
		seen := map[string]bool{}
		for _, tr := range Traces(g.M, Encode(g.M), in.W, 5) {
			if seen[tr] {
				return false
			}
			seen[tr] = true
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickStepDeterminism: running twice from the same input gives the
// same halting status, step count, and output.
func TestQuickStepDeterminism(t *testing.T) {
	prop := func(g genMachine, in genInput) bool {
		a := Run(g.M, in.W, 200)
		b := Run(g.M, in.W, 200)
		return a == b
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickWindowCoversHead: after at least one step the snapshot window
// always contains the head, so head offsets are non-negative.
func TestQuickWindowCoversHead(t *testing.T) {
	prop := func(g genMachine, in genInput) bool {
		c := NewConfig(g.M, in.W)
		for i := 0; i < 20 && !c.Halted(); i++ {
			c.Step()
			lo, hi, empty := c.Window()
			if empty {
				return false
			}
			if c.Head() < lo || c.Head() > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickEffPrefixIdempotent: EffPrefix is idempotent at fixed length and
// monotone under extension.
func TestQuickEffPrefixIdempotent(t *testing.T) {
	prop := func(in genInput, nRaw uint8) bool {
		n := int(nRaw % 8)
		p := EffPrefix(in.W, n)
		if len(p) != n {
			return false
		}
		if EffPrefix(p, n) != p {
			return false
		}
		// Extending the word beyond n never changes the prefix.
		return EffPrefix(in.W+"1", n) == p || len(in.W) < n
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}
