package turing

import (
	"math/rand"
	"strings"
	"testing"
)

func TestNewMachineValidation(t *testing.T) {
	ok := Rule{State: 1, Read: One, Next: 2, Write: Blank, Move: Right}
	if _, err := NewMachine(ok); err != nil {
		t.Fatalf("valid rule rejected: %v", err)
	}
	bad := []Rule{
		{State: 0, Read: One, Next: 1, Write: One, Move: Right},
		{State: 1, Read: One, Next: 0, Write: One, Move: Right},
		{State: 1, Read: 'x', Next: 1, Write: One, Move: Right},
		{State: 1, Read: One, Next: 1, Write: 'x', Move: Right},
		{State: 1, Read: One, Next: 1, Write: One, Move: Move(7)},
	}
	for _, r := range bad {
		if _, err := NewMachine(r); err == nil {
			t.Errorf("bad rule %v accepted", r)
		}
	}
	// Nondeterminism.
	if _, err := NewMachine(ok, Rule{State: 1, Read: One, Next: 3, Write: One, Move: Left}); err == nil {
		t.Errorf("conflicting rules accepted")
	}
}

func TestRunLoopForever(t *testing.T) {
	r := Run(LoopForever(), "11", 1000)
	if r.Halted {
		t.Fatalf("LoopForever halted after %d steps", r.Steps)
	}
	if r.Steps != 1000 {
		t.Errorf("budget not consumed: %d", r.Steps)
	}
}

func TestRunHaltImmediately(t *testing.T) {
	r := Run(HaltImmediately(), "1&1", 10)
	if !r.Halted || r.Steps != 0 {
		t.Fatalf("expected immediate halt, got %+v", r)
	}
	if r.Output != "1" {
		t.Errorf("leftmost 1-run of %q should be %q, got %q", "1&1", "1", r.Output)
	}
}

func TestBusyWorkStepsExact(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 17} {
		m := BusyWork(n)
		for _, w := range []string{"", "1", "&&", "1&1&11"} {
			steps, ok := StepsToHalt(m, w, n+10)
			if !ok || steps != n {
				t.Errorf("BusyWork(%d) on %q: steps=%d ok=%v", n, w, steps, ok)
			}
		}
	}
}

func TestSuccessor(t *testing.T) {
	m := Successor()
	for _, c := range []struct{ in, out string }{
		{"", "1"},
		{"1", "11"},
		{"111", "1111"},
	} {
		r := Run(m, c.in, 100)
		if !r.Halted {
			t.Fatalf("Successor diverged on %q", c.in)
		}
		if r.Output != c.out {
			t.Errorf("Successor(%q) = %q, want %q", c.in, r.Output, c.out)
		}
	}
}

func TestEraseAndHalt(t *testing.T) {
	r := Run(EraseAndHalt(), "111", 100)
	if !r.Halted || r.Output != "" {
		t.Errorf("EraseAndHalt: %+v", r)
	}
	if r.Steps != 3 {
		t.Errorf("steps = %d, want 3", r.Steps)
	}
}

func TestHaltIffStartsWithOne(t *testing.T) {
	m := HaltIffStartsWithOne()
	if r := Run(m, "1&", 100); !r.Halted {
		t.Errorf("should halt on input starting with 1")
	}
	if r := Run(m, "&1", 100); r.Halted {
		t.Errorf("should diverge on input starting with blank")
	}
	if r := Run(m, "", 100); r.Halted {
		t.Errorf("should diverge on empty input")
	}
}

func TestTapeGrowsLeft(t *testing.T) {
	// Machine writes 1 and walks left twice, then halts.
	m := MustMachine(
		Rule{State: 1, Read: Blank, Next: 2, Write: One, Move: Left},
		Rule{State: 2, Read: Blank, Next: 3, Write: One, Move: Left},
	)
	c := NewConfig(m, "")
	c.Step()
	c.Step()
	if !c.Halted() {
		t.Fatalf("not halted")
	}
	if got := c.At(0); got != One {
		t.Errorf("cell 0 = %q", got)
	}
	if got := c.At(-1); got != One {
		t.Errorf("cell -1 = %q", got)
	}
	if got := c.At(-2); got != Blank {
		t.Errorf("cell -2 = %q", got)
	}
	if c.Head() != -2 {
		t.Errorf("head = %d", c.Head())
	}
	if c.Result() != "11" {
		t.Errorf("result = %q", c.Result())
	}
}

func TestResultLeftmostRun(t *testing.T) {
	cases := []struct{ tape, want string }{
		{"", ""},
		{"&&&", ""},
		{"11&111", "11"},
		{"&1&11", "1"},
	}
	for _, cse := range cases {
		c := NewConfig(HaltImmediately(), cse.tape)
		if got := c.Result(); got != cse.want {
			t.Errorf("Result(%q) = %q, want %q", cse.tape, got, cse.want)
		}
	}
}

func TestValidInput(t *testing.T) {
	if !ValidInput("") || !ValidInput("1&1") {
		t.Errorf("valid inputs rejected")
	}
	if ValidInput("1*") || ValidInput("abc") || ValidInput("1|") {
		t.Errorf("invalid inputs accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	machines := []*Machine{
		HaltImmediately(), LoopForever(), Successor(), BusyWork(3),
		EraseAndHalt(), HaltIffStartsWithOne(),
	}
	tr, err := Trie([]string{"11", "1&"})
	if err != nil {
		t.Fatalf("Trie: %v", err)
	}
	machines = append(machines, tr)
	for _, m := range machines {
		enc := Encode(m)
		if strings.IndexByte(enc, Delimiter) < 0 {
			t.Errorf("encoding %q contains no delimiter", enc)
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%q): %v", enc, err)
		}
		if Encode(got) != enc {
			t.Errorf("round trip mismatch for %v", m)
		}
		if got.NumRules() != m.NumRules() {
			t.Errorf("rule count changed: %d -> %d", m.NumRules(), got.NumRules())
		}
	}
}

func TestEncodeZeroRules(t *testing.T) {
	if enc := Encode(HaltImmediately()); enc != "*" {
		t.Errorf("zero-rule machine encodes as %q", enc)
	}
	m, err := Decode("*")
	if err != nil || m.NumRules() != 0 {
		t.Errorf("Decode(*) = %v, %v", m, err)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	bad := []string{
		"",                          // empty
		"11",                        // no delimiter
		"1&11&1&11&1",               // missing trailing delimiter
		"1&11&1&11*",                // four fields
		"1&11&1&11&1&1*",            // six fields
		"&11&1&11&1*",               // empty first field
		"1&111&1&11&1*",             // symbol field out of range (3)
		"1&11&1&11&111*",            // move field out of range
		"1&11&1&11&1*x",             // bad character
		"1&11&1&11&1*1&11&2&11&1*",  // non-unary field
		"1&11&1&11&1*1&11&1&11&11*", // duplicate (state, read)
		"**",                        // empty rule between delimiters
	}
	for _, w := range bad {
		if m, err := Decode(w); err == nil {
			t.Errorf("Decode(%q) accepted: %v", w, m)
		}
	}
}

func TestDecodeNonCanonicalOrder(t *testing.T) {
	// The same two rules in both orders decode to the same machine but are
	// different words — the "infinitely many behaviourally equivalent but
	// syntactically different machines" of Case M.
	r1 := "1&11&1&11&11*" // (1,'1') -> (1,'1',R)
	r2 := "1&1&1&1&11*"   // (1,'&') -> (1,'&',R)
	a, err := Decode(r1 + r2)
	if err != nil {
		t.Fatalf("decode a: %v", err)
	}
	b, err := Decode(r2 + r1)
	if err != nil {
		t.Fatalf("decode b: %v", err)
	}
	if Encode(a) != Encode(b) {
		t.Errorf("same rules should canonicalize identically")
	}
	if r1+r2 == r2+r1 {
		t.Errorf("words should differ")
	}
}

func TestIsMachineWord(t *testing.T) {
	if !IsMachineWord(Encode(LoopForever())) {
		t.Errorf("encoded machine not recognized")
	}
	if IsMachineWord("111") || IsMachineWord("1|1") {
		t.Errorf("non-machine words accepted")
	}
}

func TestTraceFirstSnapshot(t *testing.T) {
	m := LoopForever()
	enc := Encode(m)
	tr, err := Trace(m, enc, "1&1", 0)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	want := enc + "|" + "1|1&1||"
	if tr != want {
		t.Errorf("trace = %q, want %q", tr, want)
	}
}

func TestTraceCountsMatchSteps(t *testing.T) {
	m := BusyWork(4)
	enc := Encode(m)
	all := Traces(m, enc, "11", 100)
	if len(all) != 5 {
		t.Fatalf("BusyWork(4) should have 5 traces, got %d", len(all))
	}
	// All distinct and strictly increasing in length.
	for i := 1; i < len(all); i++ {
		if len(all[i]) <= len(all[i-1]) {
			t.Errorf("trace lengths not increasing")
		}
	}
	// Requesting more steps than the machine runs is an error.
	if _, err := Trace(m, enc, "11", 5); err == nil {
		t.Errorf("Trace beyond halt should fail")
	}
}

func TestParseTraceRoundTrip(t *testing.T) {
	machines := []*Machine{LoopForever(), BusyWork(3), Successor(), HaltIffStartsWithOne()}
	inputs := []string{"", "1", "&", "11&1", "&&&"}
	for _, m := range machines {
		enc := Encode(m)
		for _, w := range inputs {
			for _, tr := range Traces(m, enc, w, 6) {
				p, err := ParseTrace(tr)
				if err != nil {
					t.Fatalf("ParseTrace(%q): %v", tr, err)
				}
				if p.MachineWord != enc {
					t.Errorf("machine word %q, want %q", p.MachineWord, enc)
				}
				if p.Input != w {
					t.Errorf("input %q, want %q (trace %q)", p.Input, w, tr)
				}
			}
		}
	}
}

func TestParseTraceRejectsForgeries(t *testing.T) {
	m := BusyWork(2)
	enc := Encode(m)
	tr, err := Trace(m, enc, "11", 2)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	forgeries := []string{
		"",
		"|",
		enc,                                // no snapshots
		enc + "|",                          // no snapshots
		enc + "|1|11|",                     // incomplete snapshot
		enc + "|1|11||1|11||",              // second snapshot is not a step
		tr[:len(tr)-1],                     // truncated
		tr + "1|11||",                      // extra bogus snapshot
		strings.Replace(tr, "11", "1&", 1), // corrupted tape field
	}
	for _, f := range forgeries {
		if IsTraceWord(f) {
			t.Errorf("forged trace accepted: %q", f)
		}
	}
}

func TestTraceOfNonCanonicalMachineWord(t *testing.T) {
	// A trace whose machine prefix is a non-canonical encoding must verify
	// against that same prefix.
	r1 := "1&11&1&11&11*"
	r2 := "1&1&1&1&11*"
	word := r2 + r1 // non-canonical order
	m, err := Decode(word)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	tr, err := Trace(m, word, "1", 2)
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	p, err := ParseTrace(tr)
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if p.MachineWord != word {
		t.Errorf("machine word %q, want %q", p.MachineWord, word)
	}
}

func TestEmptyInputTrace(t *testing.T) {
	m := Successor()
	enc := Encode(m)
	tr, err := Trace(m, enc, "", 0)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	// First snapshot of the empty input: state 1, empty tape, offset 0.
	want := enc + "|1|||"
	if tr != want {
		t.Errorf("trace = %q, want %q", tr, want)
	}
	p, err := ParseTrace(tr)
	if err != nil {
		t.Fatalf("ParseTrace: %v", err)
	}
	if p.Input != "" {
		t.Errorf("input %q, want empty", p.Input)
	}
}

func TestTrailingBlankInputsDistinctTraces(t *testing.T) {
	// "1" and "1&" behave identically but must yield distinct traces, or
	// the trace-domain function w(x) would be ill-defined.
	m := LoopForever()
	enc := Encode(m)
	t1, err := Trace(m, enc, "1", 0)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Trace(m, enc, "1&", 0)
	if err != nil {
		t.Fatal(err)
	}
	if t1 == t2 {
		t.Errorf("traces of %q and %q coincide: %q", "1", "1&", t1)
	}
}

func TestWindowIncludesHeadAfterSteps(t *testing.T) {
	// Machine walks left immediately: head leaves the input extent and the
	// window must follow it.
	m := MustMachine(
		Rule{State: 1, Read: One, Next: 2, Write: One, Move: Left},
		Rule{State: 2, Read: Blank, Next: 3, Write: Blank, Move: Left},
	)
	c := NewConfig(m, "1")
	c.Step()
	lo, hi, empty := c.Window()
	if empty || lo != -1 || hi != 0 {
		t.Errorf("window = [%d,%d] empty=%v, want [-1,0]", lo, hi, empty)
	}
	if got := c.TapeWindow(); got != "&1" {
		t.Errorf("tape window %q, want \"&1\"", got)
	}
	snap := Snapshot(c)
	if snap != "11|&1||" {
		t.Errorf("snapshot %q", snap)
	}
}

func TestTrie(t *testing.T) {
	m, err := Trie([]string{"11", "1&", "&&&"})
	if err != nil {
		t.Fatalf("Trie: %v", err)
	}
	cases := []struct {
		input string
		steps int // -1 means diverges
	}{
		{"111", 2},  // matches "11" after 2 steps
		{"11", 2},   // exactly the prefix
		{"1&1", 2},  // matches "1&"
		{"1", 2},    // effective prefix "1&" matches "1&"
		{"&&&1", 3}, // matches "&&&"
		{"&", 3},    // pads to "&&&"
		{"", 3},     // pads to "&&&"
		{"&1", -1},  // no halt prefix matches
	}
	for _, c := range cases {
		steps, halted := StepsToHalt(m, c.input, 1000)
		if c.steps < 0 {
			if halted {
				t.Errorf("Trie on %q should diverge, halted after %d", c.input, steps)
			}
			continue
		}
		if !halted || steps != c.steps {
			t.Errorf("Trie on %q: steps=%d halted=%v, want %d", c.input, steps, halted, c.steps)
		}
	}
}

func TestTriePrefixFreeCheck(t *testing.T) {
	if _, err := Trie([]string{"1", "11"}); err == nil {
		t.Errorf("proper-prefix conflict accepted")
	}
	if _, err := Trie([]string{"", "1"}); err == nil {
		t.Errorf("empty prefix conflict accepted")
	}
	if _, err := Trie([]string{"11", "11"}); err != nil {
		t.Errorf("duplicates should be fine: %v", err)
	}
	if _, err := Trie([]string{"1*"}); err == nil {
		t.Errorf("invalid alphabet accepted")
	}
}

func TestTrieEmptyPrefixAlone(t *testing.T) {
	m, err := Trie([]string{""})
	if err != nil {
		t.Fatalf("Trie: %v", err)
	}
	for _, w := range []string{"", "1", "&&"} {
		steps, halted := StepsToHalt(m, w, 10)
		if !halted || steps != 0 {
			t.Errorf("empty-prefix trie on %q: steps=%d halted=%v", w, steps, halted)
		}
	}
}

func TestReadThenLoop(t *testing.T) {
	m, err := ReadThenLoop("1&1")
	if err != nil {
		t.Fatalf("ReadThenLoop: %v", err)
	}
	// Matching input: diverges.
	if r := Run(m, "1&1&", 1000); r.Halted {
		t.Errorf("should diverge on matching input")
	}
	// Mismatch at position 1: halts after 1 step.
	steps, halted := StepsToHalt(m, "11", 1000)
	if !halted || steps != 1 {
		t.Errorf("mismatch halt: steps=%d halted=%v", steps, halted)
	}
	// Too-short input pads with blanks: "1" ~ "1&&…" matches "1&" then
	// mismatches at position 2 ('1' expected, '&' read).
	steps, halted = StepsToHalt(m, "1", 1000)
	if !halted || steps != 2 {
		t.Errorf("padded mismatch: steps=%d halted=%v", steps, halted)
	}
	if _, err := ReadThenLoop("1*"); err == nil {
		t.Errorf("invalid word accepted")
	}
}

func TestEffPrefix(t *testing.T) {
	cases := []struct {
		w    string
		n    int
		want string
	}{
		{"11", 0, ""},
		{"11", 1, "1"},
		{"11", 2, "11"},
		{"11", 4, "11&&"},
		{"", 3, "&&&"},
		{"1&1", 2, "1&"},
	}
	for _, c := range cases {
		if got := EffPrefix(c.w, c.n); got != c.want {
			t.Errorf("EffPrefix(%q,%d) = %q, want %q", c.w, c.n, got, c.want)
		}
	}
}

// TestEffectivePrefixDeterminesBehaviour is the semantic fact behind the
// Lemma A.2 criterion: two inputs with equal effective prefixes of length n
// are indistinguishable for the first n steps.
func TestEffectivePrefixDeterminesBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randWord := func(maxLen int) string {
		n := rng.Intn(maxLen + 1)
		b := make([]byte, n)
		for i := range b {
			if rng.Intn(2) == 0 {
				b[i] = One
			} else {
				b[i] = Blank
			}
		}
		return string(b)
	}
	randMachine := func() *Machine {
		states := 1 + rng.Intn(4)
		var rules []Rule
		for q := 1; q <= states; q++ {
			for _, s := range []byte{One, Blank} {
				if rng.Intn(5) == 0 {
					continue // leave some halting holes
				}
				mv := Left
				if rng.Intn(2) == 0 {
					mv = Right
				}
				wr := One
				if rng.Intn(2) == 0 {
					wr = Blank
				}
				rules = append(rules, Rule{State: q, Read: s, Next: 1 + rng.Intn(states), Write: wr, Move: mv})
			}
		}
		return MustMachine(rules...)
	}
	for i := 0; i < 200; i++ {
		m := randMachine()
		w1 := randWord(6)
		n := rng.Intn(6)
		// w2 shares the effective prefix of length n but differs afterwards.
		w2 := EffPrefix(w1, n) + randWord(4)
		c1 := NewConfig(m, w1)
		c2 := NewConfig(m, w2)
		for s := 0; s < n; s++ {
			h1 := c1.Halted()
			h2 := c2.Halted()
			if h1 != h2 {
				t.Fatalf("halting behaviour diverged at step %d within shared prefix %d: %q vs %q on %v",
					s, n, w1, w2, m)
			}
			if h1 {
				break
			}
			if c1.State() != c2.State() || c1.Head() != c2.Head() {
				t.Fatalf("configurations diverged at step %d within shared prefix %d", s, n)
			}
			c1.Step()
			c2.Step()
		}
	}
}
