package turing

import (
	"fmt"
	"sort"
)

// This file provides a small library of machine constructors. The trie
// machines are the witnesses of Lemma A.2 ("This machine (that can actually
// be written as a finite automaton) stops at exactly the specified words in
// the specified numbers of steps"); the rest are total and partial machines
// used by tests, examples, and the Theorem 3.1/3.3 demonstrations.

// LoopForever returns a machine that never halts on any input: it sweeps
// right forever, leaving the tape unchanged.
func LoopForever() *Machine {
	return MustMachine(
		Rule{State: 1, Read: One, Next: 1, Write: One, Move: Right},
		Rule{State: 1, Read: Blank, Next: 1, Write: Blank, Move: Right},
	)
}

// HaltImmediately returns the machine with no rules: it halts in 0 steps on
// every input, leaving the tape unchanged.
func HaltImmediately() *Machine {
	return MustMachine()
}

// BusyWork returns a total machine that runs exactly n steps on every input
// (sweeping right, leaving the tape unchanged) and then halts. For every
// input word w it therefore has exactly n+1 traces.
func BusyWork(n int) *Machine {
	var rules []Rule
	for i := 1; i <= n; i++ {
		rules = append(rules,
			Rule{State: i, Read: One, Next: i + 1, Write: One, Move: Right},
			Rule{State: i, Read: Blank, Next: i + 1, Write: Blank, Move: Right},
		)
	}
	return MustMachine(rules...)
}

// EraseAndHalt returns a total machine that erases the leading run of 1s and
// halts at the first blank. It halts on every input in at most
// (leading 1s)+0 steps.
func EraseAndHalt() *Machine {
	return MustMachine(
		Rule{State: 1, Read: One, Next: 1, Write: Blank, Move: Right},
	)
}

// Successor returns a total machine computing the unary successor: it moves
// right over the leading run of 1s and replaces the first blank with a 1.
func Successor() *Machine {
	return MustMachine(
		Rule{State: 1, Read: One, Next: 1, Write: One, Move: Right},
		Rule{State: 1, Read: Blank, Next: 2, Write: One, Move: Right},
	)
}

// HaltIffStartsWithOne returns a partial machine that halts (in one step)
// iff the input starts with '1', and otherwise walks left forever. Its
// halting problem is trivially decidable, which makes it a convenient
// fixture for validating the Theorem 3.3 reduction.
func HaltIffStartsWithOne() *Machine {
	return MustMachine(
		Rule{State: 1, Read: One, Next: 2, Write: One, Move: Right},
		Rule{State: 1, Read: Blank, Next: 1, Write: Blank, Move: Left},
	)
}

// ReadThenLoop returns the machine used in the appendix to show B_w
// first-order expressible: it reads w left to right, halting as soon as a
// tape character deviates from w, and diverges (sweeping right) once all of
// w has been read successfully.
func ReadThenLoop(w string) (*Machine, error) {
	if !ValidInput(w) {
		return nil, fmt.Errorf("turing: invalid word %q", w)
	}
	loop := len(w) + 1
	var rules []Rule
	for i := 0; i < len(w); i++ {
		expected := w[i]
		next := i + 2
		if i == len(w)-1 {
			next = loop
		}
		rules = append(rules, Rule{State: i + 1, Read: expected, Next: next, Write: expected, Move: Right})
		// The unexpected symbol has no rule: the machine halts.
	}
	rules = append(rules,
		Rule{State: loop, Read: One, Next: loop, Write: One, Move: Right},
		Rule{State: loop, Read: Blank, Next: loop, Write: Blank, Move: Right},
	)
	return NewMachine(rules...)
}

// Trie returns a one-way machine that sweeps right and halts after exactly
// len(p) steps whenever the tape (input padded with blanks) starts with a
// halt prefix p, and diverges otherwise. Halting happens after the machine
// has stepped past the prefix; contrast EdgeTrie, which halts on reading the
// prefix's last character and is the Lemma A.2 witness shape.
//
// The prefixes must be over {1,&} and prefix-free: if one were a proper
// prefix of another, the machine would halt at the shorter one and the
// longer could never be reached. Trie reports such conflicts as errors.
func Trie(haltPrefixes []string) (*Machine, error) {
	for _, p := range haltPrefixes {
		if !ValidInput(p) {
			return nil, fmt.Errorf("turing: invalid prefix %q", p)
		}
	}
	sorted := append([]string(nil), haltPrefixes...)
	sort.Strings(sorted)
	for i := 0; i+1 < len(sorted); i++ {
		if sorted[i] == sorted[i+1] {
			// Duplicates are harmless; skip.
			continue
		}
		if len(sorted[i]) < len(sorted[i+1]) && sorted[i+1][:len(sorted[i])] == sorted[i] {
			return nil, fmt.Errorf("turing: prefix %q is a proper prefix of %q", sorted[i], sorted[i+1])
		}
	}

	// Assign states to trie nodes. State 1 is the root (empty prefix).
	halt := map[string]bool{}
	nodes := map[string]int{"": 1}
	order := []string{""}
	for _, p := range haltPrefixes {
		halt[p] = true
		for i := 1; i <= len(p); i++ {
			prefix := p[:i]
			if _, ok := nodes[prefix]; !ok {
				nodes[prefix] = len(nodes) + 1
				order = append(order, prefix)
			}
		}
	}
	loop := len(nodes) + 1

	var rules []Rule
	for _, node := range order {
		if halt[node] {
			continue // no outgoing rules: entering this state halts
		}
		for _, s := range []byte{One, Blank} {
			child := node + string(s)
			next, ok := nodes[child]
			if !ok {
				next = loop
			}
			rules = append(rules, Rule{State: nodes[node], Read: s, Next: next, Write: s, Move: Right})
		}
	}
	rules = append(rules,
		Rule{State: loop, Read: One, Next: loop, Write: One, Move: Right},
		Rule{State: loop, Read: Blank, Next: loop, Write: Blank, Move: Right},
	)
	return NewMachine(rules...)
}

// EdgeTrie returns the Lemma A.2 witness machine: a one-way machine that
// halts after exactly len(p)−1 steps whenever the tape (input padded with
// blanks) effectively starts with a halt prefix p, and diverges otherwise.
//
// The halt decision is made by the absence of a transition for the state
// reached after len(p)−1 steps reading p's final character — this is why a
// machine halting after j−1 steps is determined by the input's effective
// prefix of length j, which is exactly the prefix length in the paper's
// Lemma A.2 condition.
//
// Prefixes must be nonempty words over {1,&} and effectively prefix-free
// (no prefix a proper prefix of another); conflicts are reported as errors.
func EdgeTrie(haltPrefixes []string) (*Machine, error) {
	for _, p := range haltPrefixes {
		if p == "" {
			return nil, fmt.Errorf("turing: empty halt prefix")
		}
		if !ValidInput(p) {
			return nil, fmt.Errorf("turing: invalid prefix %q", p)
		}
	}
	sorted := append([]string(nil), haltPrefixes...)
	sort.Strings(sorted)
	for i := 0; i+1 < len(sorted); i++ {
		if sorted[i] == sorted[i+1] {
			continue
		}
		if len(sorted[i]) < len(sorted[i+1]) && sorted[i+1][:len(sorted[i])] == sorted[i] {
			return nil, fmt.Errorf("turing: prefix %q is a proper prefix of %q", sorted[i], sorted[i+1])
		}
	}

	// States are the proper prefixes of halt prefixes; state 1 is the root.
	halt := map[string]bool{}
	nodes := map[string]int{"": 1}
	order := []string{""}
	for _, p := range haltPrefixes {
		halt[p] = true
		for i := 1; i < len(p); i++ {
			prefix := p[:i]
			if _, ok := nodes[prefix]; !ok {
				nodes[prefix] = len(nodes) + 1
				order = append(order, prefix)
			}
		}
	}
	loop := len(nodes) + 1

	var rules []Rule
	for _, node := range order {
		for _, s := range []byte{One, Blank} {
			child := node + string(s)
			if halt[child] {
				continue // no rule: reading this character halts
			}
			next, ok := nodes[child]
			if !ok {
				next = loop
			}
			rules = append(rules, Rule{State: nodes[node], Read: s, Next: next, Write: s, Move: Right})
		}
	}
	rules = append(rules,
		Rule{State: loop, Read: One, Next: loop, Write: One, Move: Right},
		Rule{State: loop, Read: Blank, Next: loop, Write: Blank, Move: Right},
	)
	return NewMachine(rules...)
}

// EffPrefix returns the length-n effective prefix of w: w truncated or
// padded with blanks to exactly n characters. Cells beyond a word's end
// read as blanks, so two inputs with equal effective prefixes of length n
// are indistinguishable to any machine for its first n steps. Lemma A.2's
// satisfiability criterion is stated in terms of effective prefixes.
func EffPrefix(w string, n int) string {
	if n <= 0 {
		return ""
	}
	if len(w) >= n {
		return w[:n]
	}
	buf := make([]byte, n)
	copy(buf, w)
	for i := len(w); i < n; i++ {
		buf[i] = Blank
	}
	return string(buf)
}
