package turing

import (
	"fmt"
	"strings"
)

// Machine encoding (Section 3 of the paper, details left open there and
// fixed here; see DESIGN.md):
//
// A machine is a word over {1, &, *} containing at least one '*'. Each rule
// (q, a) -> (q', b, m) is encoded as five nonempty unary fields separated by
// single '&' characters:
//
//	1^q & 1^(a+1) & 1^q' & 1^(b+1) & 1^(m+1)
//
// where a and b are 0 for '&' and 1 for '1', and m is 0 for Left and 1 for
// Right. Each rule is terminated by a '*'; the machine is the concatenation
// of its encoded rules in canonical order. The machine with no rules is
// encoded as "*". Decoding is strict: any deviation (empty field, field out
// of range, duplicate (state, read) pair) is rejected, and such words
// classify as "other" in the trace domain.

// Delimiter is the rule separator in machine encodings.
const Delimiter byte = '*'

func symCode(b byte) int {
	if b == One {
		return 1
	}
	return 0
}

func codeSym(n int) byte {
	if n == 1 {
		return One
	}
	return Blank
}

// Encode renders m as its canonical machine word.
func Encode(m *Machine) string {
	rules := m.Rules()
	if len(rules) == 0 {
		return string(Delimiter)
	}
	var b strings.Builder
	for _, r := range rules {
		writeUnary(&b, r.State)
		b.WriteByte(Blank)
		writeUnary(&b, symCode(r.Read)+1)
		b.WriteByte(Blank)
		writeUnary(&b, r.Next)
		b.WriteByte(Blank)
		writeUnary(&b, symCode(r.Write)+1)
		b.WriteByte(Blank)
		writeUnary(&b, int(r.Move)+1)
		b.WriteByte(Delimiter)
	}
	return b.String()
}

func writeUnary(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteByte(One)
	}
}

// Decode parses a machine word. It enforces the full well-formedness
// discipline: alphabet {1,&,*}, at least one '*', '*'-terminated rule list,
// five nonempty unary fields per rule, symbol and move fields in range, and
// determinism. It does NOT require canonical rule order, so syntactically
// different words may decode to behaviourally identical machines — the
// appendix's Case M relies on there being infinitely many such words.
func Decode(word string) (*Machine, error) {
	if word == "" {
		return nil, fmt.Errorf("turing: empty machine word")
	}
	for i := 0; i < len(word); i++ {
		switch word[i] {
		case One, Blank, Delimiter:
		default:
			return nil, fmt.Errorf("turing: machine word has bad character %q", word[i])
		}
	}
	if word[len(word)-1] != Delimiter {
		return nil, fmt.Errorf("turing: machine word must end with %q", Delimiter)
	}
	if word == string(Delimiter) {
		return NewMachine()
	}
	body := word[:len(word)-1]
	var rules []Rule
	for _, enc := range strings.Split(body, string(Delimiter)) {
		r, err := decodeRule(enc)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return NewMachine(rules...)
}

func decodeRule(enc string) (Rule, error) {
	fields := strings.Split(enc, string(Blank))
	if len(fields) != 5 {
		return Rule{}, fmt.Errorf("turing: rule %q has %d fields, want 5", enc, len(fields))
	}
	vals := make([]int, 5)
	for i, f := range fields {
		n, err := unary(f)
		if err != nil {
			return Rule{}, fmt.Errorf("turing: rule %q field %d: %v", enc, i, err)
		}
		vals[i] = n
	}
	if vals[1] < 1 || vals[1] > 2 || vals[3] < 1 || vals[3] > 2 || vals[4] < 1 || vals[4] > 2 {
		return Rule{}, fmt.Errorf("turing: rule %q has out-of-range symbol/move field", enc)
	}
	return Rule{
		State: vals[0],
		Read:  codeSym(vals[1] - 1),
		Next:  vals[2],
		Write: codeSym(vals[3] - 1),
		Move:  Move(vals[4] - 1),
	}, nil
}

func unary(f string) (int, error) {
	if f == "" {
		return 0, fmt.Errorf("empty unary field")
	}
	for i := 0; i < len(f); i++ {
		if f[i] != One {
			return 0, fmt.Errorf("non-unary character %q", f[i])
		}
	}
	return len(f), nil
}

// IsMachineWord reports whether word decodes as a machine.
func IsMachineWord(word string) bool {
	_, err := Decode(word)
	return err == nil
}
