// Package turing implements the paper's computational substrate: standard
// single-tape Turing machines over the tape alphabet {1, &}, their string
// encodings over {1, &, *}, and the snapshot traces that generate the
// domain T of Section 3.
//
// Conventions (Section 3 of the paper):
//
//   - The tape alphabet is {'1', '&'}; '&' is the white-space (blank) marker.
//   - An input word w ∈ {1,&}* is written on the tape surrounded by
//     infinitely many blanks; the machine starts in internal state 1 reading
//     the leftmost character of w (cell 0).
//   - A machine halts when no transition is defined for its current
//     (state, symbol) pair.
//   - If the machine stops, the result is the leftmost maximal run of 1s on
//     the tape, or the empty word if the tape is all blank.
package turing

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// Simulator metrics: total transition volume, tape growth, and per-run
// step distributions — the observable cost of every Theorem 3.x reduction.
var (
	mTMSteps     = obs.NewCounter("turing.steps")
	mTMTapeGrown = obs.NewCounter("turing.tape.cells_grown")
	mTMRuns      = obs.NewCounter("turing.runs")
	hTMRunSteps  = obs.NewHistogram("turing.run.steps")
)

// TraceStride samples every TraceStride-th step into the flight recorder
// while tracing is armed (step 0 is always sampled), so a million-step
// simulation stays within the recorder's bounded ring instead of flooding
// it. Set to 1 for every step; ≤ 0 disables step events.
var TraceStride = 64

// Blank and One are the two tape symbols.
const (
	Blank byte = '&'
	One   byte = '1'
)

// Move is a head movement direction.
type Move int

const (
	// Left moves the head one cell to the left.
	Left Move = iota
	// Right moves the head one cell to the right.
	Right
)

// String implements fmt.Stringer.
func (m Move) String() string {
	if m == Left {
		return "L"
	}
	return "R"
}

// Rule is one transition: in state State reading Read, write Write, move
// Move, and enter state Next. States are positive integers; state 1 is the
// start state.
type Rule struct {
	State int
	Read  byte
	Next  int
	Write byte
	Move  Move
}

// String implements fmt.Stringer.
func (r Rule) String() string {
	return fmt.Sprintf("(%d,%c) -> (%d,%c,%s)", r.State, r.Read, r.Next, r.Write, r.Move)
}

type ruleKey struct {
	state int
	read  byte
}

// Machine is a deterministic single-tape Turing machine.
type Machine struct {
	rules map[ruleKey]Rule
}

// NewMachine builds a machine from rules. It returns an error if any rule is
// malformed (non-positive state, bad symbol) or if two rules share a
// (state, read) pair (nondeterminism).
func NewMachine(rules ...Rule) (*Machine, error) {
	m := &Machine{rules: make(map[ruleKey]Rule, len(rules))}
	for _, r := range rules {
		if err := checkRule(r); err != nil {
			return nil, err
		}
		k := ruleKey{r.State, r.Read}
		if prev, dup := m.rules[k]; dup {
			return nil, fmt.Errorf("turing: conflicting rules %v and %v", prev, r)
		}
		m.rules[k] = r
	}
	return m, nil
}

// MustMachine is NewMachine panicking on error; for tests and fixed builders.
func MustMachine(rules ...Rule) *Machine {
	m, err := NewMachine(rules...)
	if err != nil {
		panic(err)
	}
	return m
}

func checkRule(r Rule) error {
	if r.State < 1 || r.Next < 1 {
		return fmt.Errorf("turing: rule %v: states must be positive", r)
	}
	if r.Read != Blank && r.Read != One {
		return fmt.Errorf("turing: rule %v: bad read symbol %q", r, r.Read)
	}
	if r.Write != Blank && r.Write != One {
		return fmt.Errorf("turing: rule %v: bad write symbol %q", r, r.Write)
	}
	if r.Move != Left && r.Move != Right {
		return fmt.Errorf("turing: rule %v: bad move %d", r, int(r.Move))
	}
	return nil
}

// Rules returns the machine's rules in a canonical order (by state, then
// read symbol, blanks first). Encoding uses this order, so structurally
// equal machines encode identically.
func (m *Machine) Rules() []Rule {
	out := make([]Rule, 0, len(m.rules))
	for _, r := range m.rules {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].State != out[j].State {
			return out[i].State < out[j].State
		}
		return out[i].Read < out[j].Read // '&' (38) < '1' (49)
	})
	return out
}

// NumRules returns the number of transitions.
func (m *Machine) NumRules() int { return len(m.rules) }

// Lookup returns the rule for (state, read), if any.
func (m *Machine) Lookup(state int, read byte) (Rule, bool) {
	r, ok := m.rules[ruleKey{state, read}]
	return r, ok
}

// String renders the rule list.
func (m *Machine) String() string {
	rs := m.Rules()
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = r.String()
	}
	return "{" + strings.Join(parts, "; ") + "}"
}

// ValidInput reports whether w is a word over the input alphabet {1,&}.
// The empty word is a valid input.
func ValidInput(w string) bool {
	for i := 0; i < len(w); i++ {
		if w[i] != Blank && w[i] != One {
			return false
		}
	}
	return true
}

// Config is a machine configuration: tape contents, head position, and
// internal state. The zero Config is not meaningful; use NewConfig.
type Config struct {
	machine *Machine
	state   int
	head    int
	// tape holds cells [origin, origin+len(cells)); everything outside is
	// blank. Cells are grown on demand.
	cells    []byte
	origin   int
	inputLen int
	steps    int
	halted   bool
}

// NewConfig returns the initial configuration of m on input w. It panics if
// w contains characters outside {1,&}; validate with ValidInput first.
func NewConfig(m *Machine, w string) *Config {
	if !ValidInput(w) {
		panic(fmt.Sprintf("turing: invalid input word %q", w))
	}
	c := &Config{
		machine:  m,
		state:    1,
		head:     0,
		cells:    []byte(w),
		origin:   0,
		inputLen: len(w),
	}
	_, c.halted = m.Lookup(c.state, c.At(c.head))
	c.halted = !c.halted
	return c
}

// At returns the symbol at absolute cell position pos.
func (c *Config) At(pos int) byte {
	i := pos - c.origin
	if i < 0 || i >= len(c.cells) {
		return Blank
	}
	return c.cells[i]
}

func (c *Config) set(pos int, b byte) {
	i := pos - c.origin
	switch {
	case i < 0:
		mTMTapeGrown.Add(int64(-i))
		grown := make([]byte, len(c.cells)-i)
		for j := 0; j < -i; j++ {
			grown[j] = Blank
		}
		copy(grown[-i:], c.cells)
		c.cells = grown
		c.origin = pos
		i = 0
	case i >= len(c.cells):
		mTMTapeGrown.Add(int64(i - len(c.cells) + 1))
		for len(c.cells) <= i {
			c.cells = append(c.cells, Blank)
		}
	}
	c.cells[i] = b
}

// State returns the current internal state.
func (c *Config) State() int { return c.state }

// Head returns the absolute head position.
func (c *Config) Head() int { return c.head }

// Steps returns the number of steps executed so far.
func (c *Config) Steps() int { return c.steps }

// Halted reports whether no transition applies.
func (c *Config) Halted() bool { return c.halted }

// InputLen returns the length of the original input word.
func (c *Config) InputLen() int { return c.inputLen }

// Step executes one transition. It returns false (and does nothing) if the
// machine has halted.
func (c *Config) Step() bool {
	if c.halted {
		return false
	}
	r, ok := c.machine.Lookup(c.state, c.At(c.head))
	if !ok {
		c.halted = true
		return false
	}
	mTMSteps.Inc()
	// Sampled step events: the Armed check is one atomic load, so the
	// disarmed simulator pays nothing beyond it per transition.
	if trace.Armed() && TraceStride > 0 && c.steps%TraceStride == 0 {
		trace.Instant("turing.step", "turing",
			trace.I64("step", int64(c.steps)),
			trace.I64("state", int64(c.state)),
			trace.I64("head", int64(c.head)),
			trace.I64("tape_cells", int64(len(c.cells))))
	}
	c.set(c.head, r.Write)
	if r.Move == Left {
		c.head--
	} else {
		c.head++
	}
	c.state = r.Next
	c.steps++
	_, ok = c.machine.Lookup(c.state, c.At(c.head))
	c.halted = !ok
	return true
}

// Result returns the result of a halted computation: the leftmost maximal
// run of 1s on the tape, or "" if the tape is all blank. Calling Result on a
// non-halted configuration returns the same extraction applied to the
// current tape.
func (c *Config) Result() string {
	start := -1
	for i, b := range c.cells {
		if b == One {
			if start < 0 {
				start = i
			}
		} else if start >= 0 {
			return string(c.cells[start:i])
		}
	}
	if start >= 0 {
		return string(c.cells[start:])
	}
	return ""
}

// NonBlankExtent returns the minimal interval [lo, hi] covering the
// non-blank cells, or empty when the tape is all blank.
func (c *Config) NonBlankExtent() (lo, hi int, empty bool) {
	empty = true
	for i, b := range c.cells {
		if b != One {
			continue
		}
		pos := c.origin + i
		if empty || pos < lo {
			lo = pos
		}
		if empty || pos > hi {
			hi = pos
		}
		empty = false
	}
	return lo, hi, empty
}

// Window returns the tape window rendered in snapshots: the minimal cell
// interval covering all non-blank cells, the initial extent of the input
// word, and (after at least one step) the head. See DESIGN.md: including the
// initial extent makes the first snapshot's tape field the input word
// verbatim, so the trace-domain function w(x) is well defined.
func (c *Config) Window() (lo, hi int, empty bool) {
	lo, hi = 0, c.inputLen-1 // initial extent; empty when inputLen == 0
	have := c.inputLen > 0
	for i, b := range c.cells {
		if b != One {
			continue
		}
		pos := c.origin + i
		if !have || pos < lo {
			lo = pos
		}
		if !have || pos > hi {
			hi = pos
		}
		have = true
	}
	if c.steps > 0 {
		if !have || c.head < lo {
			lo = c.head
		}
		if !have || c.head > hi {
			hi = c.head
		}
		have = true
	}
	if !have {
		return 0, -1, true
	}
	return lo, hi, false
}

// TapeWindow returns the symbols of the snapshot window as a string.
func (c *Config) TapeWindow() string {
	lo, hi, empty := c.Window()
	if empty {
		return ""
	}
	buf := make([]byte, hi-lo+1)
	for i := range buf {
		buf[i] = c.At(lo + i)
	}
	return string(buf)
}

// RunResult describes the outcome of a budgeted run.
type RunResult struct {
	// Halted is true if the machine stopped within the budget.
	Halted bool
	// Steps is the number of steps executed (the full budget if !Halted).
	Steps int
	// Output is the computation result; meaningful only if Halted.
	Output string
}

// Run executes m on w for at most budget steps.
func Run(m *Machine, w string, budget int) RunResult {
	sp := obs.StartSpan("turing.run")
	defer sp.End()
	mTMRuns.Inc()
	c := NewConfig(m, w)
	for !c.halted && c.steps < budget {
		c.Step()
	}
	hTMRunSteps.Observe(int64(c.steps))
	sp.Arg("steps", int64(c.steps))
	if c.halted {
		sp.Arg("halted", 1)
	} else {
		sp.Arg("halted", 0)
	}
	return RunResult{Halted: c.halted, Steps: c.steps, Output: c.Result()}
}

// StepsToHalt returns the number of steps m takes to halt on w, capped by
// budget. ok is false if the machine was still running when the budget ran
// out.
func StepsToHalt(m *Machine, w string, budget int) (steps int, ok bool) {
	r := Run(m, w, budget)
	return r.Steps, r.Halted
}
