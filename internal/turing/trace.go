package turing

import (
	"fmt"
	"strings"
)

// Traces (Section 3 of the paper). A trace of machine M on input w is a word
// over the four-letter alphabet {1, &, *, |} recording a partial computation
// as a sequence of snapshots. The paper's separator '⋆' is rendered '|'.
//
// Layout:
//
//	enc(M) '|' snap_0 snap_1 … snap_j
//
// where snapshot i is three '|'-terminated fields
//
//	1^state_i '|' tapeWindow_i '|' 1^headOffset_i '|'
//
// The tape window is Config.TapeWindow (minimal window covering non-blanks,
// the initial input extent, and — after the first step — the head), and the
// head offset is the head position relative to the window start, in unary.
// The first snapshot is therefore 1 | w | |, matching the paper's "1 ⋆ w ⋆"
// with position the empty unary word.
//
// A machine halting after s steps has exactly the s+1 traces with
// j = 0 … s; a diverging machine has infinitely many traces.

// Separator is the snapshot-field separator in traces (the paper's '⋆').
const Separator byte = '|'

// Snapshot renders the current configuration as a three-field snapshot.
func Snapshot(c *Config) string {
	var b strings.Builder
	writeSnapshot(&b, c)
	return b.String()
}

func writeSnapshot(b *strings.Builder, c *Config) {
	writeUnary(b, c.state)
	b.WriteByte(Separator)
	b.WriteString(c.TapeWindow())
	b.WriteByte(Separator)
	lo, _, empty := c.Window()
	if empty {
		lo = 0
	}
	writeUnary(b, c.head-lo)
	b.WriteByte(Separator)
}

// Trace returns the trace of m on w after exactly steps steps, or an error
// if the machine halts earlier. enc must be the encoding used in the trace
// prefix; pass Encode(m) for canonical traces, or a non-canonical encoding
// that decodes to m.
func Trace(m *Machine, enc, w string, steps int) (string, error) {
	if !ValidInput(w) {
		return "", fmt.Errorf("turing: invalid input word %q", w)
	}
	var b strings.Builder
	b.WriteString(enc)
	b.WriteByte(Separator)
	c := NewConfig(m, w)
	writeSnapshot(&b, c)
	for i := 0; i < steps; i++ {
		if !c.Step() {
			return "", fmt.Errorf("turing: machine halted after %d steps, cannot trace %d", i, steps)
		}
		writeSnapshot(&b, c)
	}
	return b.String(), nil
}

// Traces returns all traces of m on w with at most maxSteps steps, in order
// of increasing length. If the machine halts within maxSteps the list is
// complete (it has steps+1 entries); otherwise it is the finite prefix of an
// infinite trace family.
func Traces(m *Machine, enc, w string, maxSteps int) []string {
	var out []string
	var b strings.Builder
	b.WriteString(enc)
	b.WriteByte(Separator)
	c := NewConfig(m, w)
	writeSnapshot(&b, c)
	out = append(out, b.String())
	for i := 0; i < maxSteps && !c.Halted(); i++ {
		c.Step()
		writeSnapshot(&b, c)
		out = append(out, b.String())
	}
	return out
}

// ParsedTrace is the decomposition of a well-formed trace word.
type ParsedTrace struct {
	// MachineWord is the encoded machine (the prefix before the first '|').
	MachineWord string
	// Machine is its decoding.
	Machine *Machine
	// Input is the input word (the tape field of the first snapshot).
	Input string
	// Steps is the number of computation steps recorded (snapshots - 1).
	Steps int
}

// ParseTrace checks whether word is a trace — of some machine on some input
// — and decomposes it. Validation is by regeneration: the machine prefix is
// decoded, the input word extracted from the first snapshot, and the trace
// recomputed and compared byte for byte. This is the recursiveness of the
// predicate P (Fact A.1): membership is decidable by direct simulation.
func ParseTrace(word string) (*ParsedTrace, error) {
	sep := strings.IndexByte(word, Separator)
	if sep < 0 {
		return nil, fmt.Errorf("turing: no separator in candidate trace")
	}
	encM := word[:sep]
	m, err := Decode(encM)
	if err != nil {
		return nil, fmt.Errorf("turing: trace machine prefix: %v", err)
	}
	rest := word[sep+1:]
	fields := strings.Split(rest, string(Separator))
	// A '|'-terminated field list splits into n+1 parts with an empty last
	// part; snapshots have 3 fields each.
	if len(fields) < 4 || fields[len(fields)-1] != "" {
		return nil, fmt.Errorf("turing: malformed snapshot fields")
	}
	fields = fields[:len(fields)-1]
	if len(fields)%3 != 0 {
		return nil, fmt.Errorf("turing: snapshot field count %d not a multiple of 3", len(fields))
	}
	steps := len(fields)/3 - 1
	input := fields[1]
	if !ValidInput(input) {
		return nil, fmt.Errorf("turing: first snapshot tape %q is not an input word", input)
	}
	regen, err := Trace(m, encM, input, steps)
	if err != nil {
		return nil, err
	}
	if regen != word {
		return nil, fmt.Errorf("turing: snapshot sequence is not a computation of the machine")
	}
	return &ParsedTrace{MachineWord: encM, Machine: m, Input: input, Steps: steps}, nil
}

// IsTraceWord reports whether word is a trace.
func IsTraceWord(word string) bool {
	_, err := ParseTrace(word)
	return err == nil
}
