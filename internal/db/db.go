// Package db implements Codd's relational model as used by the paper: a
// database scheme fixes relation names and arities (plus database constant
// symbols), and a database state is a finite collection of finite relations
// over a domain, together with values for the database constants.
package db

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/domain"
)

// Scheme is a database scheme: relation names with arities, and database
// constant symbols (Theorem 3.1 uses a scheme with one constant symbol c;
// its footnote remarks this is formally handled by a unary relation, which
// states also support).
type Scheme struct {
	Relations map[string]int
	Constants []string
}

// NewScheme builds a scheme; arities must be positive.
func NewScheme(relations map[string]int, constants ...string) (*Scheme, error) {
	for name, arity := range relations {
		if arity < 1 {
			return nil, fmt.Errorf("db: relation %s has arity %d", name, arity)
		}
	}
	rels := make(map[string]int, len(relations))
	for k, v := range relations {
		rels[k] = v
	}
	return &Scheme{Relations: rels, Constants: append([]string(nil), constants...)}, nil
}

// MustScheme is NewScheme panicking on error.
func MustScheme(relations map[string]int, constants ...string) *Scheme {
	s, err := NewScheme(relations, constants...)
	if err != nil {
		panic(err)
	}
	return s
}

// HasConstant reports whether name is a database constant of the scheme.
func (s *Scheme) HasConstant(name string) bool {
	for _, c := range s.Constants {
		if c == name {
			return true
		}
	}
	return false
}

// Tuple is a row of a relation.
type Tuple []domain.Value

// Key returns a canonical key for the tuple.
func (t Tuple) Key() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = fmt.Sprintf("%d:%s", len(v.Key()), v.Key())
	}
	return strings.Join(parts, ",")
}

// String implements fmt.Stringer.
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Relation is a finite set of equal-arity tuples.
type Relation struct {
	arity   int
	rows    map[string]Tuple
	version uint64
}

// NewRelation returns an empty relation of the given arity.
func NewRelation(arity int) *Relation {
	return &Relation{arity: arity, rows: map[string]Tuple{}}
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.rows) }

// Add inserts a tuple; it is an error if the arity differs.
func (r *Relation) Add(t Tuple) error {
	if len(t) != r.arity {
		return fmt.Errorf("db: tuple %v has arity %d, relation has %d", t, len(t), r.arity)
	}
	r.rows[t.Key()] = append(Tuple(nil), t...)
	r.version++
	return nil
}

// Version returns a counter that changes on every mutation, so derived
// read-only views (see State.Memo) can tell whether they are current.
func (r *Relation) Version() uint64 { return r.version }

// Has reports membership.
func (r *Relation) Has(t Tuple) bool {
	_, ok := r.rows[t.Key()]
	return ok
}

// Tuples returns the rows sorted by key, for deterministic iteration.
func (r *Relation) Tuples() []Tuple {
	keys := make([]string, 0, len(r.rows))
	for k := range r.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Tuple, len(keys))
	for i, k := range keys {
		out[i] = r.rows[k]
	}
	return out
}

// Clone deep-copies the relation.
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.arity)
	for _, t := range r.rows {
		out.rows[t.Key()] = append(Tuple(nil), t...)
	}
	return out
}

// State is a database state: finite relations for each scheme relation and
// values for the scheme's constants.
//
// A state also memoizes derived read-only views (materialized base tables,
// the active domain) keyed by a version counter, so workloads that run many
// queries against one state — a batch request, an enumeration's probe loop
// — pay the derivation once instead of per query. Mutating the state (or
// any relation obtained from it) invalidates the memos on the next lookup.
type State struct {
	scheme *Scheme
	rels   map[string]*Relation
	consts map[string]domain.Value

	constVersion uint64
	memoMu       sync.Mutex
	memo         map[string]memoEntry
}

// memoEntry is one cached derived view with the version it was built at.
type memoEntry struct {
	version uint64
	value   any
}

// NewState returns the empty state of a scheme (all relations empty, all
// constants unset).
func NewState(scheme *Scheme) *State {
	st := &State{scheme: scheme, rels: map[string]*Relation{}, consts: map[string]domain.Value{}}
	for name, arity := range scheme.Relations {
		st.rels[name] = NewRelation(arity)
	}
	return st
}

// Scheme returns the state's scheme.
func (st *State) Scheme() *Scheme { return st.scheme }

// Relation returns the named relation, or an error for names outside the
// scheme.
func (st *State) Relation(name string) (*Relation, error) {
	r, ok := st.rels[name]
	if !ok {
		return nil, fmt.Errorf("db: relation %q not in scheme", name)
	}
	return r, nil
}

// Insert adds a row to the named relation.
func (st *State) Insert(name string, values ...domain.Value) error {
	r, err := st.Relation(name)
	if err != nil {
		return err
	}
	return r.Add(Tuple(values))
}

// SetConstant gives a database constant its value in this state.
func (st *State) SetConstant(name string, v domain.Value) error {
	if !st.scheme.HasConstant(name) {
		return fmt.Errorf("db: constant %q not in scheme", name)
	}
	st.consts[name] = v
	st.constVersion++
	return nil
}

// Version returns a counter that changes whenever any relation or constant
// of the state changes. Versions only grow, so equal versions mean an
// unchanged state.
func (st *State) Version() uint64 {
	v := st.constVersion
	for _, r := range st.rels {
		v += r.version
	}
	return v
}

// Memo returns the cached derived view under key if it was built at the
// given version, building and caching it otherwise. The build result must
// be treated as read-only by every consumer: it is shared across queries
// (and across goroutines — parallel evaluation workers share a state).
func (st *State) Memo(key string, version uint64, build func() any) any {
	st.memoMu.Lock()
	defer st.memoMu.Unlock()
	if e, ok := st.memo[key]; ok && e.version == version {
		return e.value
	}
	v := build()
	if st.memo == nil {
		st.memo = map[string]memoEntry{}
	}
	st.memo[key] = memoEntry{version: version, value: v}
	return v
}

// Constant returns the value of a database constant in this state.
func (st *State) Constant(name string) (domain.Value, error) {
	v, ok := st.consts[name]
	if !ok {
		return nil, fmt.Errorf("db: constant %q unset", name)
	}
	return v, nil
}

// Clone deep-copies the state.
func (st *State) Clone() *State {
	out := NewState(st.scheme)
	for name, r := range st.rels {
		out.rels[name] = r.Clone()
	}
	for name, v := range st.consts {
		out.consts[name] = v
	}
	return out
}

// ActiveDomain returns the active domain of the state: every value occurring
// in a relation or as a database constant, sorted by key. Query constants
// are the caller's to add ("the set of all constants used in the querying
// formula and/or elements contained in the database relations").
//
// The result is memoized until the state changes; it is built with no spare
// capacity, so appending to it copies instead of mutating the shared view.
func (st *State) ActiveDomain() []domain.Value {
	return st.Memo("db.activedomain", st.Version(), func() any {
		return st.activeDomain()
	}).([]domain.Value)
}

// activeDomain computes ActiveDomain's value.
func (st *State) activeDomain() []domain.Value {
	seen := map[string]domain.Value{}
	for _, r := range st.rels {
		for _, t := range r.Tuples() {
			for _, v := range t {
				seen[v.Key()] = v
			}
		}
	}
	for _, v := range st.consts {
		seen[v.Key()] = v
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]domain.Value, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out
}

// String renders the state compactly.
func (st *State) String() string {
	var names []string
	for name := range st.rels {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s:", name)
		for _, t := range st.rels[name].Tuples() {
			b.WriteString(" " + t.String())
		}
		b.WriteString("\n")
	}
	var cnames []string
	for name := range st.consts {
		cnames = append(cnames, name)
	}
	sort.Strings(cnames)
	for _, name := range cnames {
		fmt.Fprintf(&b, "%s = %s\n", name, st.consts[name])
	}
	return b.String()
}
