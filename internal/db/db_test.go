package db

import (
	"strings"
	"testing"

	"repro/internal/domain"
)

func TestSchemeValidation(t *testing.T) {
	if _, err := NewScheme(map[string]int{"R": 0}); err == nil {
		t.Errorf("zero arity accepted")
	}
	s, err := NewScheme(map[string]int{"R": 2}, "c")
	if err != nil {
		t.Fatalf("NewScheme: %v", err)
	}
	if !s.HasConstant("c") || s.HasConstant("d") {
		t.Errorf("HasConstant wrong")
	}
}

func TestRelationBasics(t *testing.T) {
	r := NewRelation(2)
	if r.Arity() != 2 || r.Len() != 0 {
		t.Errorf("fresh relation wrong")
	}
	t1 := Tuple{domain.Int(1), domain.Int(2)}
	if err := r.Add(t1); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := r.Add(Tuple{domain.Int(1)}); err == nil {
		t.Errorf("arity mismatch accepted")
	}
	if !r.Has(t1) || r.Has(Tuple{domain.Int(2), domain.Int(1)}) {
		t.Errorf("Has wrong")
	}
	// Duplicates collapse.
	if err := r.Add(Tuple{domain.Int(1), domain.Int(2)}); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Errorf("duplicate not collapsed: %d", r.Len())
	}
	// Clone independence.
	c := r.Clone()
	if err := c.Add(Tuple{domain.Int(3), domain.Int(4)}); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || c.Len() != 2 {
		t.Errorf("clone shares storage")
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// Keys must not collide across different splits of the same bytes.
	a := Tuple{domain.Word("a,b"), domain.Word("c")}
	b := Tuple{domain.Word("a"), domain.Word("b,c")}
	if a.Key() == b.Key() {
		t.Errorf("tuple keys collide: %q", a.Key())
	}
	if a.String() != "(a,b, c)" {
		t.Errorf("String = %q", a.String())
	}
}

func TestStateBasics(t *testing.T) {
	scheme := MustScheme(map[string]int{"F": 2}, "c")
	st := NewState(scheme)
	if err := st.Insert("F", domain.Word("abel"), domain.Word("cain")); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := st.Insert("G", domain.Word("x")); err == nil {
		t.Errorf("unknown relation accepted")
	}
	if err := st.SetConstant("c", domain.Word("adam")); err != nil {
		t.Fatalf("SetConstant: %v", err)
	}
	if err := st.SetConstant("d", domain.Word("x")); err == nil {
		t.Errorf("unknown constant accepted")
	}
	v, err := st.Constant("c")
	if err != nil || v.Key() != "adam" {
		t.Errorf("Constant: %v %v", v, err)
	}
	ad := st.ActiveDomain()
	if len(ad) != 3 {
		t.Fatalf("active domain size %d, want 3", len(ad))
	}
	// Sorted by key: abel, adam, cain.
	if ad[0].Key() != "abel" || ad[1].Key() != "adam" || ad[2].Key() != "cain" {
		t.Errorf("active domain order: %v", ad)
	}
	if !strings.Contains(st.String(), "c = adam") {
		t.Errorf("String missing constant: %q", st.String())
	}
	// Clone independence.
	c2 := st.Clone()
	if err := c2.Insert("F", domain.Word("x"), domain.Word("y")); err != nil {
		t.Fatal(err)
	}
	r, _ := st.Relation("F")
	if r.Len() != 1 {
		t.Errorf("clone shares relations")
	}
}

func TestConstantUnset(t *testing.T) {
	st := NewState(MustScheme(map[string]int{"R": 1}, "c"))
	if _, err := st.Constant("c"); err == nil {
		t.Errorf("unset constant readable")
	}
}
