package core

import (
	"testing"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/logic"
	"repro/internal/query"
	"repro/internal/traces"
	"repro/internal/turing"
)

// characterization returns the Reach-signature formula
// T(x) ∧ m(x) = M ∧ w(x) = c — semantically identical to P(M, c, x) but
// syntactically different, the kind of candidate a genuine syntax for
// finite queries would contain for a total machine M.
func characterization(machineWord string) *logic.Formula {
	x := logic.Var("x")
	return logic.And(
		logic.Atom(traces.PredT, x),
		logic.Eq(logic.App(traces.FuncM, x), logic.Const(machineWord)),
		logic.Eq(logic.App(traces.FuncW, x), logic.Const(DBConst)))
}

func TestEquivalenceSentenceShape(t *testing.T) {
	busy := turing.Encode(turing.BusyWork(1))
	s := EquivalenceSentence(TotalityQuery(busy), characterization(busy))
	if !s.Sentence() {
		t.Fatalf("equivalence sentence has free variables: %v", s.FreeVars())
	}
	if len(s.Constants()) == 0 {
		t.Fatalf("machine constant missing")
	}
	for _, c := range s.Constants() {
		if c == DBConst {
			t.Fatalf("database constant not substituted away")
		}
	}
}

// TestTheorem31Verification is the positive half of the construction: "if
// it happens to be true, we know that M_k is a total machine". The
// equivalence of P(M, z, x) with the syntactically different
// characterization formula is decided by the trace-theory decision
// procedure.
func TestTheorem31Verification(t *testing.T) {
	busy := turing.Encode(turing.BusyWork(1))
	halt := turing.Encode(turing.HaltImmediately())
	ok, err := VerifyTotality(busy, characterization(busy))
	if err != nil {
		t.Fatalf("VerifyTotality: %v", err)
	}
	if !ok {
		t.Errorf("equivalent candidate should certify the machine")
	}
	// A candidate characterizing a different machine is not equivalent.
	ok, err = VerifyTotality(busy, characterization(halt))
	if err != nil {
		t.Fatalf("VerifyTotality: %v", err)
	}
	if ok {
		t.Errorf("candidate for a different machine must not certify")
	}
	if _, err := VerifyTotality("junk", characterization(busy)); err == nil {
		t.Errorf("bad machine word accepted")
	}
}

// TestTheorem31SyntaxMissesFiniteQuery is the negative half: the
// active-domain syntax — a genuine recursive class of finite formulas over
// the scheme {c} — contains no formula equivalent to the finite query
// P(M, c, x) of a total machine M, for as many members as we care to check.
// (Theorem 3.1 proves no recursive class can contain one and still consist
// of finite formulas.)
func TestTheorem31SyntaxMissesFiniteQuery(t *testing.T) {
	busy := turing.Encode(turing.BusyWork(1))
	syntax := ActiveDomainSyntax{
		Scheme: TotalityScheme(),
		Enum: FormulaEnumerator{Sig: Signature{
			Preds:  map[string]int{traces.PredT: 1, traces.PredW: 1},
			Consts: []string{DBConst, ""},
			Vars:   []string{"x"},
		}},
	}
	for r := 0; r < 24; r++ {
		cand, err := syntax.Enumerate(r)
		if err != nil {
			t.Fatalf("Enumerate(%d): %v", r, err)
		}
		ok, err := VerifyTotality(busy, cand)
		if err != nil {
			t.Fatalf("VerifyTotality on member %d (%v): %v", r, cand, err)
		}
		if ok {
			t.Fatalf("active-domain member %d claims equivalence with P(M,c,x): %v", r, cand)
		}
	}
}

// TestEnumerateTotal runs the diagonal procedure on a mixed machine list
// with a sound candidate family: total machines with a characterization in
// the family are certified; the diverging machine never is.
func TestEnumerateTotal(t *testing.T) {
	busy := turing.Encode(turing.BusyWork(1))
	halt := turing.Encode(turing.HaltImmediately())
	loop := turing.Encode(turing.LoopForever())
	// The candidate family: characterizations of the two total machines
	// (finite formulas) plus an active-domain-style dud.
	candidates := []*logic.Formula{
		logic.And(logic.Atom(traces.PredT, logic.Var("x")), logic.Eq(logic.Var("x"), logic.Const(DBConst))),
		characterization(busy),
		characterization(halt),
	}
	certs, err := EnumerateTotal([]string{busy, halt, loop}, candidates)
	if err != nil {
		t.Fatalf("EnumerateTotal: %v", err)
	}
	certified := map[string]bool{}
	for _, c := range certs {
		certified[c.MachineWord] = true
	}
	if !certified[busy] || !certified[halt] {
		t.Errorf("total machines not certified: %v", certs)
	}
	if certified[loop] {
		t.Errorf("diverging machine certified total")
	}
	// Empirical totality agrees on the prefix.
	for _, m := range []string{busy, halt} {
		total, _, err := TotalOnPrefix(m, 3, 100)
		if err != nil || !total {
			t.Errorf("TotalOnPrefix(%q) = %v, %v", m, total, err)
		}
	}
	total, witness, err := TotalOnPrefix(loop, 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	if total {
		t.Errorf("loop machine reported total")
	}
	_ = witness
}

// TestTotalityQueryAnswers: the totality query's answer in a state is the
// trace family, finite for a total machine.
func TestTotalityQueryAnswers(t *testing.T) {
	m := turing.BusyWork(2)
	enc := turing.Encode(m)
	st := db.NewState(TotalityScheme())
	if err := st.SetConstant(DBConst, domain.Word("1&")); err != nil {
		t.Fatal(err)
	}
	f := TotalityQuery(enc)
	pure, err := query.Translate(traces.Domain{}, st, f)
	if err != nil {
		t.Fatal(err)
	}
	dec := traces.Decider()
	want := turing.Traces(m, enc, "1&", 10)
	for _, tr := range want {
		v, err := dec.Decide(logic.Subst(pure, "x", logic.Const(tr)))
		if err != nil {
			t.Fatalf("Decide: %v", err)
		}
		if !v {
			t.Errorf("trace %q missing from answer", tr)
		}
	}
	// The answer has exactly len(want) elements: no further trace exists.
	conj := []*logic.Formula{pure}
	for _, tr := range want {
		conj = append(conj, logic.Neq(logic.Var("x"), logic.Const(tr)))
	}
	more, err := dec.Decide(logic.Exists("x", logic.And(conj...)))
	if err != nil {
		t.Fatal(err)
	}
	if more {
		t.Errorf("unexpected extra answer to the totality query")
	}
}

// TestTotalityQueryUnary exercises the closing-remark variant with a unary
// relation R standing for the constant.
func TestTotalityQueryUnary(t *testing.T) {
	m := turing.BusyWork(1)
	enc := turing.Encode(m)
	st := db.NewState(UnaryScheme())
	if err := st.Insert(UnaryRel, domain.Word("1")); err != nil {
		t.Fatal(err)
	}
	f := TotalityQueryUnary(enc)
	pure, err := query.Translate(traces.Domain{}, st, f)
	if err != nil {
		t.Fatal(err)
	}
	dec := traces.Decider()
	want := turing.Traces(m, enc, "1", 10)
	for _, tr := range want {
		v, err := dec.Decide(logic.Subst(pure, "x", logic.Const(tr)))
		if err != nil {
			t.Fatalf("Decide: %v", err)
		}
		if !v {
			t.Errorf("trace %q missing from unary-variant answer", tr)
		}
	}
	// With two R rows the singleton premise fails and the answer is empty.
	st2 := db.NewState(UnaryScheme())
	if err := st2.Insert(UnaryRel, domain.Word("1")); err != nil {
		t.Fatal(err)
	}
	if err := st2.Insert(UnaryRel, domain.Word("11")); err != nil {
		t.Fatal(err)
	}
	pure2, err := query.Translate(traces.Domain{}, st2, f)
	if err != nil {
		t.Fatal(err)
	}
	v, err := dec.Decide(logic.Exists("x", pure2))
	if err != nil {
		t.Fatal(err)
	}
	if v {
		t.Errorf("non-singleton R should empty the unary totality query")
	}
}
