package core

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/logic"
	"repro/internal/traces"
	"repro/internal/turing"
)

// This file implements the Theorem 3.1 machinery: totality queries, the
// equivalence sentences that a recursive syntax would make decidable, and
// the enumeration of certified-total machines that the theorem shows cannot
// be complete.

// DBConst is the database constant symbol of the Theorem 3.1 scheme
// ("consider a database scheme that consists of one constant symbol c").
const DBConst = "c"

// UnaryRel is the relation symbol of the theorem's closing remark ("a
// database scheme may contain, say, one unary relation R instead of the
// constant symbol").
const UnaryRel = "R"

// TotalityScheme returns the scheme with the single constant c.
func TotalityScheme() *db.Scheme {
	return db.MustScheme(map[string]int{}, DBConst)
}

// UnaryScheme returns the variant scheme with one unary relation R.
func UnaryScheme() *db.Scheme {
	return db.MustScheme(map[string]int{UnaryRel: 1})
}

// TotalityQuery returns M(x) := P(M, c, x). "The formula M(x) is finite iff
// M is total": a total machine has finitely many traces on every input,
// while a machine diverging on some input has infinitely many traces there.
func TotalityQuery(machineWord string) *logic.Formula {
	return logic.Atom(traces.PredP,
		logic.Const(machineWord), logic.Const(DBConst), logic.Var("x"))
}

// TotalityQueryUnary is the closing-remark variant over the unary scheme:
//
//	(∀x,y)(R(x) ∧ R(y) → x = y) ∧ (∃y)(R(y) ∧ P(M, y, x)).
func TotalityQueryUnary(machineWord string) *logic.Formula {
	x, y := logic.Var("x0"), logic.Var("y0")
	singleton := logic.ForallAll([]string{"x0", "y0"},
		logic.Implies(
			logic.And(logic.Atom(UnaryRel, x), logic.Atom(UnaryRel, y)),
			logic.Eq(x, y)))
	body := logic.Exists("y0", logic.And(
		logic.Atom(UnaryRel, y),
		logic.Atom(traces.PredP, logic.Const(machineWord), y, logic.Var("x"))))
	return logic.And(singleton, body)
}

// EquivalenceSentence builds the Theorem 3.1 sentence
//
//	(∀z)(∀x)( a(x)[z/c] ↔ b(x)[z/c] )
//
// where [z/c] substitutes the fresh variable z for the database constant c.
// The sentence is a pure-domain sentence of the trace theory, so its truth
// is decidable (Corollary A.4); truth certifies that a and b denote the
// same query in every state.
func EquivalenceSentence(a, b *logic.Formula) *logic.Formula {
	z := logic.FreshVar("z", a, b)
	az := logic.SubstConst(a, DBConst, logic.Var(z))
	bz := logic.SubstConst(b, DBConst, logic.Var(z))
	vars := logic.SortedUnique(append(az.FreeVars(), bz.FreeVars()...))
	// z first, then the query variables, matching the paper's (∀z)(∀x).
	ordered := []string{z}
	for _, v := range vars {
		if v != z {
			ordered = append(ordered, v)
		}
	}
	return logic.ForallAll(ordered, logic.Iff(az, bz))
}

// VerifyTotality runs one step of the Theorem 3.1 construction: it decides
// the equivalence sentence between the machine's totality query and a
// candidate formula. "Now if it happens to be true, we know that M_k is a
// total machine, because the truth of this sentence implies that M_k(x) is
// finite" — provided the candidate belongs to a class of finite formulas.
func VerifyTotality(machineWord string, candidate *logic.Formula) (bool, error) {
	if !turing.IsMachineWord(machineWord) {
		return false, fmt.Errorf("core: %q is not a machine word", machineWord)
	}
	sentence := EquivalenceSentence(TotalityQuery(machineWord), candidate)
	return traces.Decider().Decide(sentence)
}

// Certification records one certified-total machine and the witnessing
// candidate formula.
type Certification struct {
	MachineWord string
	Candidate   *logic.Formula
	// CandidateIndex is the index of the witnessing formula in the
	// candidate enumeration.
	CandidateIndex int
}

// EnumerateTotal runs the diagonal enumeration of Theorem 3.1: "by
// continuously analyzing all pairs of k and r, we can establish a recursive
// enumeration of all total Turing machines" — given a purported recursive
// syntax for finite queries. Candidates plays the role of φ_1, φ_2, …; the
// machines of machineWords play M_1, M_2, …. The function returns every
// machine certified total by some candidate.
//
// Theorem 3.1's point is that no recursive candidate family can make this
// enumeration complete for total machines, since the set of total machines
// is not recursively enumerable. Tests exhibit the incompleteness on
// concrete candidate families.
func EnumerateTotal(machineWords []string, candidates []*logic.Formula) ([]Certification, error) {
	var out []Certification
	for _, m := range machineWords {
		for r, cand := range candidates {
			ok, err := VerifyTotality(m, cand)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, Certification{MachineWord: m, Candidate: cand, CandidateIndex: r})
				break
			}
		}
	}
	return out, nil
}

// TotalOnPrefix semi-checks totality empirically: the machine halts within
// the step budget on every input word of length at most maxLen. A true
// result is only evidence (totality is Π⁰₂-complete); a false result is a
// counterexample input.
func TotalOnPrefix(machineWord string, maxLen, stepBudget int) (bool, string, error) {
	m, err := turing.Decode(machineWord)
	if err != nil {
		return false, "", err
	}
	words := []string{""}
	frontier := []string{""}
	for i := 0; i < maxLen; i++ {
		var next []string
		for _, w := range frontier {
			next = append(next, w+"1", w+"&")
		}
		words = append(words, next...)
		frontier = next
	}
	for _, w := range words {
		if _, halted := turing.StepsToHalt(m, w, stepBudget); !halted {
			return false, w, nil
		}
	}
	return true, "", nil
}
