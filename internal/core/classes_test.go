package core

import (
	"testing"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/presburger"
	"repro/internal/query"
)

// The paper points to Kifer's comparative analysis of the safety classes
// ("We refer the reader to [Ki88], where Kifer gives a comparative analysis
// of these classes"). These tests make the class diagram executable over
// our domains:
//
//	safe-range ⊊ domain-independent ⊊ finite(in every probed state)
//
// with concrete separating formulas at each level.

// isDomainIndependentProbe approximates domain independence empirically
// over the equality domain: evaluate over the active domain and over the
// active domain plus fresh junk values; a domain-independent query's answer
// does not change. (Exact for the probed quantifier depth.)
func isDomainIndependentProbe(t *testing.T, st *db.State, f *logic.Formula) bool {
	t.Helper()
	base, err := query.EvalActive(presburger.Domain{}, st, f)
	if err != nil {
		t.Fatalf("EvalActive: %v", err)
	}
	// Extend the evaluation range by mentioning junk constants in a
	// tautological rider: (junk = junk) extends activeRange.
	rider := logic.And(f,
		logic.Eq(logic.Const("901"), logic.Const("901")),
		logic.Eq(logic.Const("902"), logic.Const("902")))
	wide, err := query.EvalActive(presburger.Domain{}, st, rider)
	if err != nil {
		t.Fatalf("EvalActive wide: %v", err)
	}
	if base.Rows.Len() != wide.Rows.Len() {
		return false
	}
	for _, row := range base.Rows.Tuples() {
		if !wide.Rows.Has(row) {
			return false
		}
	}
	return true
}

func TestClassSeparations(t *testing.T) {
	st := db.NewState(db.MustScheme(map[string]int{"R": 1, "S": 1}))
	for _, n := range []int64{2, 5} {
		if err := st.Insert("R", domain.Int(n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Insert("S", domain.Int(3)); err != nil {
		t.Fatal(err)
	}
	scheme := st.Scheme()

	type probe struct {
		name      string
		f         *logic.Formula
		safeRange bool
		domInd    bool
		finite    bool
	}
	probes := []probe{
		{
			// In all three classes.
			name:      "R(x)",
			f:         parser.MustParse("R(x)"),
			safeRange: true, domInd: true, finite: true,
		},
		{
			// Domain-independent but not safe-range: the tautological
			// disjunct defeats the syntactic analysis, the semantics is
			// just R(x).
			name: "R(x) & exists y. (S(y) | ~S(y))",
			f: logic.And(parser.MustParse("R(x)"),
				logic.Exists("y", logic.Or(
					logic.Atom("S", logic.Var("y")),
					logic.Not(logic.Atom("S", logic.Var("y")))))),
			safeRange: false, domInd: true, finite: true,
		},
		{
			// Finite but not domain-independent: Fact 2.1's successor of
			// the active domain.
			name: "Fact 2.1",
			f: logic.And(
				logic.Forall("y", logic.Implies(logic.Atom("R", logic.Var("y")),
					logic.Atom(presburger.PredLt, logic.Var("y"), logic.Var("x")))),
				logic.Forall("y", logic.Implies(
					logic.Atom(presburger.PredLt, logic.Var("y"), logic.Var("x")),
					logic.Exists("z", logic.And(logic.Atom("R", logic.Var("z")),
						logic.Not(logic.Atom(presburger.PredLt, logic.Var("z"), logic.Var("y")))))))),
			safeRange: false, domInd: false, finite: true,
		},
		{
			// In none of the classes.
			name:      "~R(x)",
			f:         parser.MustParse("~R(x)"),
			safeRange: false, domInd: false, finite: false,
		},
	}
	for _, p := range probes {
		if got := SafeRange(scheme, p.f).Safe; got != p.safeRange {
			t.Errorf("%s: safe-range = %v, want %v", p.name, got, p.safeRange)
		}
		if got := isDomainIndependentProbe(t, st, p.f); got != p.domInd {
			t.Errorf("%s: domain-independent probe = %v, want %v", p.name, got, p.domInd)
		}
		finite, err := RelativeSafetyPresburger(st, p.f)
		if err != nil {
			t.Fatalf("%s: relative safety: %v", p.name, err)
		}
		if finite != p.finite {
			t.Errorf("%s: finite = %v, want %v", p.name, finite, p.finite)
		}
	}

	// The inclusions hold across the table: safeRange ⇒ domInd ⇒ finite.
	for _, p := range probes {
		if p.safeRange && !p.domInd {
			t.Errorf("%s: safe-range without domain independence", p.name)
		}
		if p.domInd && !p.finite {
			t.Errorf("%s: domain independence without finiteness", p.name)
		}
	}
}

// TestNaturalMember checks membership under the natural semantics for both
// finite and infinite answers — §1.2's point that membership outlives
// materializability.
func TestNaturalMember(t *testing.T) {
	st := db.NewState(db.MustScheme(map[string]int{"R": 1}))
	if err := st.Insert("R", domain.Int(4)); err != nil {
		t.Fatal(err)
	}
	inf := parser.MustParse("~R(x)") // infinite answer
	for v, want := range map[int64]bool{4: false, 5: true, 0: true} {
		got, err := query.NaturalMember(presburger.Domain{}, presburger.Decider(), st, inf,
			map[string]domain.Value{"x": domain.Int(v)})
		if err != nil {
			t.Fatalf("NaturalMember: %v", err)
		}
		if got != want {
			t.Errorf("¬R(%d) = %v, want %v", v, got, want)
		}
	}
	if _, err := query.NaturalMember(presburger.Domain{}, presburger.Decider(), st, inf,
		map[string]domain.Value{}); err == nil {
		t.Errorf("missing variable accepted")
	}
}
