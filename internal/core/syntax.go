package core

import (
	"fmt"
	"strconv"

	"repro/internal/db"
	"repro/internal/domains/nsucc"
	"repro/internal/logic"
)

// Syntax is a recursive syntax in the paper's sense: a recursive class of
// formulas (Contains decides membership) together with a recursive
// enumeration of the class (Enumerate). A recursive syntax *for finite
// queries over a domain* additionally promises that every member is finite
// and every finite query is equivalent to a member — the first promise is
// testable, and Theorem 3.1 is exactly the statement that both promises
// cannot hold at once over the trace domain.
type Syntax interface {
	Name() string
	// Contains decides membership in the class.
	Contains(f *logic.Formula) (bool, error)
	// Enumerate returns the i-th member of the class.
	Enumerate(i int) (*logic.Formula, error)
}

// Signature drives the formula enumeration: predicate and function symbols
// with arities, constants, and a finite variable pool.
type Signature struct {
	Preds  map[string]int
	Funcs  map[string]int
	Consts []string
	Vars   []string
}

// FormulaEnumerator is a total surjection-flavored unranking of formulas
// over a signature: Formula(0), Formula(1), … visits an infinite recursive
// family of formulas including, for every connective nesting, some formula
// of that shape. It realizes the "recursive enumeration φ_1(x), φ_2(x), …"
// that Theorem 3.1 quantifies over.
type FormulaEnumerator struct {
	Sig Signature
}

// Formula returns the i-th formula.
func (e FormulaEnumerator) Formula(i int) *logic.Formula {
	if i < 0 {
		i = 0
	}
	kind := i % 6
	rest := i / 6
	switch kind {
	case 1:
		return logic.Not(e.Formula(rest))
	case 2:
		a, b := unpair(rest)
		return logic.And(e.Formula(a), e.Formula(b))
	case 3:
		a, b := unpair(rest)
		return logic.Or(e.Formula(a), e.Formula(b))
	case 4, 5:
		v := e.variable(rest % maxInt(len(e.Sig.Vars), 1))
		body := e.Formula(rest / maxInt(len(e.Sig.Vars), 1))
		if kind == 4 {
			return logic.Exists(v, body)
		}
		return logic.Forall(v, body)
	default:
		return e.atom(rest)
	}
}

func (e FormulaEnumerator) atom(r int) *logic.Formula {
	preds := sortedPreds(e.Sig.Preds)
	n := len(preds) + 1 // slot 0 is equality
	idx := r % n
	r /= n
	if idx == 0 {
		a, b := unpair(r)
		return logic.Eq(e.term(a), e.term(b))
	}
	name := preds[idx-1]
	arity := e.Sig.Preds[name]
	args := make([]logic.Term, arity)
	for i := 0; i < arity; i++ {
		var t int
		t, r = unpair(r)
		args[i] = e.term(t)
	}
	return logic.Atom(name, args...)
}

func (e FormulaEnumerator) term(r int) logic.Term {
	funcs := sortedPreds(e.Sig.Funcs)
	kinds := 2 + len(funcs)
	kind := r % kinds
	r /= kinds
	switch {
	case kind == 0:
		return logic.Var(e.variable(r % maxInt(len(e.Sig.Vars), 1)))
	case kind == 1:
		if len(e.Sig.Consts) == 0 {
			return logic.Var(e.variable(r % maxInt(len(e.Sig.Vars), 1)))
		}
		return logic.Const(e.Sig.Consts[r%len(e.Sig.Consts)])
	default:
		name := funcs[kind-2]
		arity := e.Sig.Funcs[name]
		args := make([]logic.Term, arity)
		for i := 0; i < arity; i++ {
			var t int
			t, r = unpair(r)
			// Keep terms shallow: arguments are variables or constants.
			if t%2 == 0 || len(e.Sig.Consts) == 0 {
				args[i] = logic.Var(e.variable((t / 2) % maxInt(len(e.Sig.Vars), 1)))
			} else {
				args[i] = logic.Const(e.Sig.Consts[(t/2)%len(e.Sig.Consts)])
			}
		}
		return logic.App(name, args...)
	}
}

func (e FormulaEnumerator) variable(i int) string {
	if len(e.Sig.Vars) == 0 {
		return "x" + strconv.Itoa(i)
	}
	return e.Sig.Vars[i%len(e.Sig.Vars)]
}

func sortedPreds(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return logic.SortedUnique(out)
}

// unpair is the inverse Cantor pairing: z ↦ (a, b) with both ≤ z.
func unpair(z int) (int, int) {
	w := 0
	for (w+1)*(w+2)/2 <= z {
		w++
	}
	t := w * (w + 1) / 2
	b := z - t
	a := w - b
	return a, b
}

// Relativize rewrites every quantifier of f to range over the set defined
// by delta: ∃x ψ becomes ∃x (δ(x) ∧ ψ) and ∀x ψ becomes ∀x (δ(x) → ψ).
func Relativize(f *logic.Formula, delta func(v string) *logic.Formula) *logic.Formula {
	switch f.Kind {
	case logic.FExists:
		return logic.Exists(f.Var, logic.And(delta(f.Var), Relativize(f.Sub[0], delta)))
	case logic.FForall:
		return logic.Forall(f.Var, logic.Implies(delta(f.Var), Relativize(f.Sub[0], delta)))
	case logic.FTrue, logic.FFalse, logic.FAtom:
		return f
	default:
		sub := make([]*logic.Formula, len(f.Sub))
		for i, s := range f.Sub {
			sub[i] = Relativize(s, delta)
		}
		return &logic.Formula{Kind: f.Kind, Pred: f.Pred, Args: f.Args, Var: f.Var, Sub: sub}
	}
}

// Restrict returns the delta-restriction of f: free variables are guarded
// and quantifiers relativized —
//
//	⋀_{x free} δ(x) ∧ Relativize(f).
//
// Restrictions are finite whenever δ defines a finite set in every state,
// which the active-domain formula does ("the easiest effective syntax for
// this case consists of restricting the answers for all formulas to the
// active domain").
func Restrict(f *logic.Formula, delta func(v string) *logic.Formula) *logic.Formula {
	var guards []*logic.Formula
	for _, v := range f.FreeVars() {
		guards = append(guards, delta(v))
	}
	return logic.And(append(guards, Relativize(f, delta))...)
}

// ADFormula builds the active-domain formula δ(v) for a scheme: v is an
// active-domain element iff it occurs in some relation column or equals a
// database constant or one of extraConsts (the query's own constants).
func ADFormula(scheme *db.Scheme, extraConsts []string) func(v string) *logic.Formula {
	relNames := sortedPreds(scheme.Relations)
	return func(v string) *logic.Formula {
		var opts []*logic.Formula
		for _, name := range relNames {
			arity := scheme.Relations[name]
			for pos := 0; pos < arity; pos++ {
				args := make([]logic.Term, arity)
				var bound []string
				for i := 0; i < arity; i++ {
					if i == pos {
						args[i] = logic.Var(v)
						continue
					}
					u := fmt.Sprintf("%s_ad%d", v, i)
					args[i] = logic.Var(u)
					bound = append(bound, u)
				}
				opts = append(opts, logic.ExistsAll(bound, logic.Atom(name, args...)))
			}
		}
		for _, c := range scheme.Constants {
			opts = append(opts, logic.Eq(logic.Var(v), logic.Const(c)))
		}
		for _, c := range extraConsts {
			opts = append(opts, logic.Eq(logic.Var(v), logic.Const(c)))
		}
		return logic.Or(opts...)
	}
}

// ActiveDomainSyntax is the effective syntax for the pure-equality domain:
// the class of δ-restrictions of all formulas, enumerated by restricting
// the formula enumeration.
type ActiveDomainSyntax struct {
	Scheme *db.Scheme
	Enum   FormulaEnumerator
}

// Name implements Syntax.
func (s ActiveDomainSyntax) Name() string { return "active-domain" }

// Contains implements Syntax: membership is a shape check — the formula
// must be the restriction of some formula, which Restrict makes canonical.
func (s ActiveDomainSyntax) Contains(f *logic.Formula) (bool, error) {
	skeleton, ok := s.strip(f)
	if !ok {
		return false, nil
	}
	return f.Equal(Restrict(skeleton, ADFormula(s.Scheme, nil))), nil
}

// strip undoes Restrict structurally: drop the free-variable guards, then
// un-relativize quantifiers.
func (s ActiveDomainSyntax) strip(f *logic.Formula) (*logic.Formula, bool) {
	body := f
	if f.Kind == logic.FAnd && len(f.Sub) > 0 {
		body = f.Sub[len(f.Sub)-1]
	}
	var walk func(g *logic.Formula) *logic.Formula
	walk = func(g *logic.Formula) *logic.Formula {
		switch g.Kind {
		case logic.FExists:
			if g.Sub[0].Kind == logic.FAnd && len(g.Sub[0].Sub) == 2 {
				return logic.Exists(g.Var, walk(g.Sub[0].Sub[1]))
			}
			return logic.Exists(g.Var, walk(g.Sub[0]))
		case logic.FForall:
			if g.Sub[0].Kind == logic.FImplies {
				return logic.Forall(g.Var, walk(g.Sub[0].Sub[1]))
			}
			return logic.Forall(g.Var, walk(g.Sub[0]))
		case logic.FTrue, logic.FFalse, logic.FAtom:
			return g
		default:
			sub := make([]*logic.Formula, len(g.Sub))
			for i, h := range g.Sub {
				sub[i] = walk(h)
			}
			return &logic.Formula{Kind: g.Kind, Pred: g.Pred, Args: g.Args, Var: g.Var, Sub: sub}
		}
	}
	return walk(body), true
}

// Enumerate implements Syntax.
func (s ActiveDomainSyntax) Enumerate(i int) (*logic.Formula, error) {
	return Restrict(s.Enum.Formula(i), ADFormula(s.Scheme, nil)), nil
}

// FinitizationSyntax is the Theorem 2.2 syntax over extensions of N<: the
// class of finitizations of all formulas.
type FinitizationSyntax struct {
	Enum FormulaEnumerator
}

// Name implements Syntax.
func (FinitizationSyntax) Name() string { return "finitization" }

// Contains implements Syntax.
func (FinitizationSyntax) Contains(f *logic.Formula) (bool, error) {
	_, ok := IsFinitization(f)
	return ok, nil
}

// Enumerate implements Syntax.
func (s FinitizationSyntax) Enumerate(i int) (*logic.Formula, error) {
	return Finitize(s.Enum.Formula(i)), nil
}

// SafeRangeSyntax is the generic syntactic class of safe-range formulas
// over a scheme, enumerated by filtering the formula enumeration.
type SafeRangeSyntax struct {
	Scheme *db.Scheme
	Enum   FormulaEnumerator
	// MaxScan bounds the filtering scan per Enumerate call (0 = default).
	MaxScan int
}

// Name implements Syntax.
func (SafeRangeSyntax) Name() string { return "safe-range" }

// Contains implements Syntax.
func (s SafeRangeSyntax) Contains(f *logic.Formula) (bool, error) {
	return SafeRange(s.Scheme, f).Safe, nil
}

// Enumerate implements Syntax: the i-th safe-range formula in enumeration
// order.
func (s SafeRangeSyntax) Enumerate(i int) (*logic.Formula, error) {
	maxScan := s.MaxScan
	if maxScan == 0 {
		maxScan = 1 << 16
	}
	count := -1
	for j := 0; j < maxScan; j++ {
		f := s.Enum.Formula(j)
		if SafeRange(s.Scheme, f).Safe {
			count++
			if count == i {
				return f, nil
			}
		}
	}
	return nil, fmt.Errorf("core: no %d-th safe-range formula within scan bound %d", i, maxScan)
}

// NsuccRestrictor builds the Theorem 2.7 syntax transformation for N': the
// restriction of a formula of quantifier depth q to the extended active
// domain Δ+q — active-domain elements and everything within successor
// distance 2^q of them ("the new constants introduced under the
// quantifier-elimination procedure are within the distance 2^q of the
// constants in the original formula").
func NsuccRestrictor(scheme *db.Scheme, f *logic.Formula) *logic.Formula {
	radius := 1
	for i := 0; i < f.QuantifierDepth(); i++ {
		radius *= 2
	}
	consts := f.Constants()
	delta := func(v string) *logic.Formula {
		ad := ADFormula(scheme, consts)
		base := logic.FreshVar(v+"_b", f)
		// near(v, base): |v − base| ≤ radius, expressed with successors.
		var near []*logic.Formula
		for d := 0; d <= radius; d++ {
			near = append(near,
				logic.Eq(shift(logic.Var(v), d), logic.Var(base)),
				logic.Eq(shift(logic.Var(base), d), logic.Var(v)))
		}
		// The elimination also introduces constants near 0.
		var nearZero []*logic.Formula
		for d := 0; d <= radius; d++ {
			nearZero = append(nearZero, logic.Eq(logic.Var(v), logic.Const(strconv.Itoa(d))))
		}
		return logic.Or(
			logic.Exists(base, logic.And(ad(base), logic.Or(near...))),
			logic.Or(nearZero...),
		)
	}
	return Restrict(f, delta)
}

func shift(t logic.Term, n int) logic.Term {
	for i := 0; i < n; i++ {
		t = logic.App(nsucc.FuncS, t)
	}
	return t
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
