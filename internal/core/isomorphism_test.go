package core

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/domains/nless"
	"repro/internal/domains/wordlex"
	"repro/internal/logic"
	"repro/internal/presburger"
)

// TestOrderIsomorphismDifferential: N< and ({a,b}*, <shortlex) are
// isomorphic orders, so corresponding sentences must decide identically.
// Random order sentences are generated once over abstract constants and
// instantiated per domain — numerals for N<, the matching shortlex words
// for wordlex. Any disagreement would reveal a bug in exactly one of the
// two decision pipelines.
func TestOrderIsomorphismDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for i := 0; i < 120; i++ {
		shape := randOrderSentence(rng, 2)
		natSentence := instantiate(shape, func(n int) logic.Term {
			return logic.Const(strconv.Itoa(n))
		})
		lexSentence := instantiate(shape, func(n int) logic.Term {
			return logic.Const(wordlex.WordAt(int64(n)))
		})
		nv, err := nless.Decider().Decide(natSentence)
		if err != nil {
			t.Fatalf("nless: %v (%v)", err, natSentence)
		}
		wv, err := wordlex.Decider().Decide(lexSentence)
		if err != nil {
			t.Fatalf("wordlex: %v (%v)", err, lexSentence)
		}
		if nv != wv {
			t.Fatalf("isomorphic domains disagree on %v: nless=%v wordlex=%v",
				shape, nv, wv)
		}
	}
}

// randOrderSentence generates a sentence over <, =, variables, and small
// abstract constant placeholders Const("#k"), filled in per domain.
func randOrderSentence(rng *rand.Rand, depth int) *logic.Formula {
	vars := []string{"x", "y"}
	term := func() logic.Term {
		if rng.Intn(2) == 0 {
			return logic.Var(vars[rng.Intn(2)])
		}
		return logic.Const("#" + strconv.Itoa(rng.Intn(6)))
	}
	var rec func(d int) *logic.Formula
	rec = func(d int) *logic.Formula {
		atom := func() *logic.Formula {
			if rng.Intn(2) == 0 {
				return logic.Atom(presburger.PredLt, term(), term())
			}
			return logic.Eq(term(), term())
		}
		if d == 0 {
			return atom()
		}
		switch rng.Intn(5) {
		case 0:
			return atom()
		case 1:
			return logic.Not(rec(d - 1))
		case 2:
			return logic.And(rec(d-1), rec(d-1))
		case 3:
			return logic.Or(rec(d-1), rec(d-1))
		default:
			return logic.Implies(rec(d-1), rec(d-1))
		}
	}
	body := rec(depth)
	for i := len(vars) - 1; i >= 0; i-- {
		if rng.Intn(2) == 0 {
			body = logic.Exists(vars[i], body)
		} else {
			body = logic.Forall(vars[i], body)
		}
	}
	return body
}

// instantiate replaces #k placeholders using the supplied constant builder.
func instantiate(f *logic.Formula, build func(int) logic.Term) *logic.Formula {
	return f.Map(func(g *logic.Formula) *logic.Formula {
		if g.Kind != logic.FAtom {
			return g
		}
		args := make([]logic.Term, len(g.Args))
		for i, tm := range g.Args {
			if tm.Kind == logic.TConst && len(tm.Name) > 1 && tm.Name[0] == '#' {
				n, _ := strconv.Atoi(tm.Name[1:])
				args[i] = build(n)
			} else {
				args[i] = tm
			}
		}
		return logic.Atom(g.Pred, args...)
	})
}
