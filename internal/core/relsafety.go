package core

import (
	"fmt"

	"repro/internal/autarith"
	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/domains/eqdom"
	"repro/internal/domains/nsucc"
	"repro/internal/domains/wordlex"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/presburger"
	"repro/internal/query"
	"repro/internal/traces"
	"repro/internal/turing"
)

// Safety-decider metrics, keyed by outcome. The positive deciders return
// booleans (finite/infinite); the traces semi-decider adds the Unknown
// bucket that Theorem 3.3 makes unavoidable.
var (
	mSafetyCalls    = obs.NewCounter("safety.calls")
	mSafetyFinite   = obs.NewCounter("safety.verdict.finite")
	mSafetyInfinite = obs.NewCounter("safety.verdict.infinite")
	mSafetyUnknown  = obs.NewCounter("safety.verdict.unknown")
)

// observeSafety records one boolean decider outcome and passes it through.
func observeSafety(finite bool, err error) (bool, error) {
	mSafetyCalls.Inc()
	if err == nil {
		if finite {
			mSafetyFinite.Inc()
		} else {
			mSafetyInfinite.Inc()
		}
		if trace.Armed() {
			v := "infinite"
			if finite {
				v = "finite"
			}
			trace.Instant("safety.verdict", "safety", trace.Str("verdict", v))
		}
	}
	return finite, err
}

// This file implements the relative safety ("state finiteness") problem for
// the paper's domains: given a query and a database state, is the answer
// finite in that state? Decidable for N< extensions (Theorem 2.5), for N'
// (Theorem 2.6), and for the pure-equality domain; undecidable for the
// trace domain T (Theorem 3.3), where only a budgeted semi-decision exists.

// RelativeSafetyPresburger decides relative safety over ℕ with the
// Presburger signature (a decidable extension of N<), by Theorem 2.5's
// criterion: the query is finite in the state iff its pure translation is
// equivalent to its finitization.
func RelativeSafetyPresburger(st *db.State, f *logic.Formula) (bool, error) {
	defer obs.StartSpan("safety.relative", "domain=presburger").End()
	pure, err := query.Translate(presburger.Domain{}, st, f)
	if err != nil {
		return false, err
	}
	return observeSafety(presburger.Eliminator{}.Equivalent(pure, Finitize(pure)))
}

// RelativeSafetyPresburgerAutomata is RelativeSafetyPresburger with the
// Theorem 2.5 equivalence decided by the automata-theoretic engine instead
// of Cooper's elimination — an independent implementation of the same
// decider, kept for differential testing.
func RelativeSafetyPresburgerAutomata(st *db.State, f *logic.Formula) (bool, error) {
	defer obs.StartSpan("safety.relative", "domain=presburger-automata").End()
	pure, err := query.Translate(presburger.Domain{}, st, f)
	if err != nil {
		return false, err
	}
	return observeSafety(autarith.Equivalent(pure, Finitize(pure)))
}

// RelativeSafetyEq decides relative safety over the pure-equality domain by
// the paper's probe: "it suffices to fix an arbitrary element not in the
// active domain and to check whether any tuple that only includes this
// element and active domain elements satisfies the formula". If some
// satisfying tuple contains the fresh element, that element was arbitrary,
// so the answer is infinite; otherwise the answer lies inside the active
// domain and is finite.
func RelativeSafetyEq(st *db.State, f *logic.Formula) (bool, error) {
	defer obs.StartSpan("safety.relative", "domain=eq").End()
	dom := eqdom.Domain{}
	pure, err := query.Translate(dom, st, f)
	if err != nil {
		return false, err
	}
	vars := pure.FreeVars()
	if len(vars) == 0 {
		return true, nil // boolean answers are finite
	}
	avoid := map[string]bool{}
	var candidates []logic.Term
	for _, v := range st.ActiveDomain() {
		avoid[v.Key()] = true
		candidates = append(candidates, logic.Const(dom.ConstName(v)))
	}
	for _, c := range pure.Constants() {
		avoid[c] = true
		candidates = append(candidates, logic.Const(c))
	}
	// One fresh element per free variable: a satisfying tuple may need
	// several distinct values outside the active domain, and any such tuple
	// maps onto the fresh ones by an automorphism fixing the active domain.
	freshKeys := map[string]bool{}
	for range vars {
		fresh := eqdom.Fresh(avoid)
		avoid[fresh.Key()] = true
		freshKeys[dom.ConstName(fresh)] = true
		candidates = append(candidates, logic.Const(dom.ConstName(fresh)))
	}

	dec := eqdom.Decider()
	var assign func(i int, usedFresh bool, g *logic.Formula) (bool, error)
	assign = func(i int, usedFresh bool, g *logic.Formula) (bool, error) {
		if i == len(vars) {
			if !usedFresh {
				return false, nil
			}
			v, err := dec.Decide(g)
			return v, err
		}
		for _, c := range candidates {
			sat, err := assign(i+1, usedFresh || freshKeys[c.Name], logic.Subst(g, vars[i], c))
			if err != nil || sat {
				return sat, err
			}
		}
		return false, nil
	}
	infinite, err := assign(0, false, pure)
	if err != nil {
		return false, err
	}
	return observeSafety(!infinite, nil)
}

// RelativeSafetyNsucc decides relative safety over N' (Theorem 2.6): the
// pure translation is reduced to a quantifier-free formula by Mal'cev
// elimination, and a quantifier-free successor formula has a finite answer
// iff every satisfiable disjunct of its DNF pins every free variable to a
// constant through its positive equalities. An unpinned variable's
// component can be translated upward unboundedly, giving infinitely many
// answers.
func RelativeSafetyNsucc(st *db.State, f *logic.Formula) (bool, error) {
	defer obs.StartSpan("safety.relative", "domain=nsucc").End()
	pure, err := query.Translate(nsucc.Domain{}, st, f)
	if err != nil {
		return false, err
	}
	qf, err := nsucc.Eliminator{}.Eliminate(pure)
	if err != nil {
		return false, err
	}
	freeVars := qf.FreeVars()
	if len(freeVars) == 0 {
		return observeSafety(true, nil)
	}
	dec := nsucc.Decider()
	for _, clause := range logic.DNF(qf) {
		sat, err := dec.Decide(logic.ExistsAll(freeVars, logic.And(clause...)))
		if err != nil {
			return false, err
		}
		if !sat {
			continue
		}
		pinned, err := pinnedVars(clause)
		if err != nil {
			return false, err
		}
		for _, v := range freeVars {
			if !pinned[v] {
				return observeSafety(false, nil)
			}
		}
	}
	return observeSafety(true, nil)
}

// pinnedVars computes the variables connected to a constant through the
// positive equalities of a conjunct.
func pinnedVars(clause []*logic.Formula) (map[string]bool, error) {
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b string) {
		parent[find(a)] = find(b)
	}
	const constNode = "\x00const"
	for _, lit := range clause {
		atom, positive := logic.LiteralAtom(lit)
		if !positive || !atom.IsEq() {
			continue
		}
		a, err := nsucc.Parse(atom.Args[0])
		if err != nil {
			return nil, err
		}
		b, err := nsucc.Parse(atom.Args[1])
		if err != nil {
			return nil, err
		}
		na, nb := constNode, constNode
		if !a.IsConst() {
			na = a.Var
		}
		if !b.IsConst() {
			nb = b.Var
		}
		union(na, nb)
	}
	out := map[string]bool{}
	if _, ok := parent[constNode]; !ok {
		return out, nil
	}
	root := find(constNode)
	for v := range parent {
		if v != constNode && find(v) == root {
			out[v] = true
		}
	}
	return out, nil
}

// RelativeSafetyWordlex decides relative safety over ({a,b}*, <shortlex)
// by carrying the query across the shortlex isomorphism to N< and applying
// the Theorem 2.5 criterion there — the paper's "the same ideas can be
// carried out … for strings with lexicographical ordering".
func RelativeSafetyWordlex(st *db.State, f *logic.Formula) (bool, error) {
	defer obs.StartSpan("safety.relative", "domain=wordlex").End()
	pure, err := query.Translate(wordlex.Domain{}, st, f)
	if err != nil {
		return false, err
	}
	nf, err := wordlex.ToNless(pure)
	if err != nil {
		return false, err
	}
	return observeSafety(presburger.Eliminator{}.Equivalent(nf, Finitize(nf)))
}

// TracesBudget bounds the semi-decision procedures over the trace domain.
type TracesBudget struct {
	// Steps caps Turing machine simulation.
	Steps int
}

// DefaultTracesBudget suits tests and examples.
var DefaultTracesBudget = TracesBudget{Steps: 1 << 16}

// RelativeSafetyTraces semi-decides relative safety over the trace domain.
// By Theorem 3.3 no total procedure exists: P(M, c, x) is finite in state c
// iff M halts on the value of c, so a decider would solve the halting
// problem. This procedure recognizes queries of that canonical shape and
// simulates the machine within the budget: Holds means finite (the machine
// halted), Fails means a certified divergence (the machine revisited a
// configuration), Unknown means the budget ran out or the query shape is
// not recognized.
func RelativeSafetyTraces(st *db.State, f *logic.Formula, budget TracesBudget) (domain.Verdict, error) {
	defer obs.StartSpan("safety.relative", "domain=traces").End()
	v, err := relativeSafetyTraces(st, f, budget)
	if err == nil {
		mSafetyCalls.Inc()
		switch v {
		case domain.Holds:
			mSafetyFinite.Inc()
		case domain.Fails:
			mSafetyInfinite.Inc()
		default:
			mSafetyUnknown.Inc()
		}
		if trace.Armed() {
			trace.Instant("safety.verdict", "safety",
				trace.Str("domain", "traces"), trace.Str("verdict", v.String()))
		}
	}
	return v, err
}

func relativeSafetyTraces(st *db.State, f *logic.Formula, budget TracesBudget) (domain.Verdict, error) {
	pure, err := query.Translate(traces.Domain{}, st, f)
	if err != nil {
		return domain.Unknown, err
	}
	machineWord, input, ok := canonicalPQuery(pure)
	if !ok {
		return domain.Unknown, nil
	}
	m, err := turing.Decode(machineWord)
	if err != nil {
		// P with a non-machine first argument is identically false: finite.
		return domain.Holds, nil
	}
	if !turing.ValidInput(input) {
		return domain.Holds, nil
	}
	if halted := simulateWithLoopCheck(m, input, budget.Steps); halted != domain.Unknown {
		return halted, nil
	}
	return domain.Unknown, nil
}

// canonicalPQuery matches the pure formula P(m, w, x) with constant m, w
// and one free variable.
func canonicalPQuery(f *logic.Formula) (machineWord, input string, ok bool) {
	if f.Kind != logic.FAtom || f.Pred != traces.PredP || len(f.Args) != 3 {
		return "", "", false
	}
	if f.Args[0].Kind != logic.TConst || f.Args[1].Kind != logic.TConst ||
		f.Args[2].Kind != logic.TVar {
		return "", "", false
	}
	return f.Args[0].Name, f.Args[1].Name, true
}

// simulateWithLoopCheck runs m on input for at most budget steps, with two
// divergence certificates:
//
//   - exact configuration repetition (state, head, tape), which catches
//     machines looping on a bounded tape; and
//   - blank-excursion cycles: while the head stays strictly outside the
//     non-blank region and only blanks are written, transitions depend on
//     the state alone, so a repeated state with the head not closer to the
//     region certifies an endless outward drift.
//
// Both are sound; neither is complete — Theorem 3.3 says no complete
// detector exists.
func simulateWithLoopCheck(m *turing.Machine, input string, budget int) domain.Verdict {
	c := turing.NewConfig(m, input)
	seen := map[string]bool{}
	exStates := map[int]int{} // state -> head position within the excursion
	inExcursion := false
	exRight := false
	prevExtent := ""
	for steps := 0; steps <= budget; steps++ {
		if c.Halted() {
			return domain.Holds
		}
		key := fmt.Sprintf("%d@%d:%s", c.State(), c.Head(), c.TapeWindow())
		if seen[key] {
			return domain.Fails
		}
		seen[key] = true

		lo, hi, empty := c.NonBlankExtent()
		extent := fmt.Sprintf("%d:%d:%v", lo, hi, empty)
		beyondRight := (empty && c.Head() >= 0) || (!empty && c.Head() > hi)
		beyondLeft := (empty && c.Head() < 0) || (!empty && c.Head() < lo)
		if (beyondRight || beyondLeft) && extent == prevExtent && inExcursion && exRight == beyondRight {
			if prev, ok := exStates[c.State()]; ok {
				if (beyondRight && c.Head() >= prev) || (beyondLeft && c.Head() <= prev) {
					return domain.Fails
				}
			}
			exStates[c.State()] = c.Head()
		} else if beyondRight || beyondLeft {
			inExcursion = true
			exRight = beyondRight
			exStates = map[int]int{c.State(): c.Head()}
		} else {
			inExcursion = false
		}
		prevExtent = extent

		c.Step()
	}
	return domain.Unknown
}

// HaltingToRelativeSafety is the Theorem 3.3 reduction: it maps a Turing
// machine and input word to a query and state such that the machine halts
// on the input iff the query is finite in the state. The query is the
// totality formula M(x) := P(M, c, x) and the state sets the database
// constant c to the input word.
func HaltingToRelativeSafety(machineWord, input string) (*logic.Formula, *db.State, error) {
	if !turing.IsMachineWord(machineWord) {
		return nil, nil, fmt.Errorf("core: %q is not a machine word", machineWord)
	}
	if !turing.ValidInput(input) {
		return nil, nil, fmt.Errorf("core: %q is not an input word", input)
	}
	st := db.NewState(TotalityScheme())
	if err := st.SetConstant(DBConst, domain.Word(input)); err != nil {
		return nil, nil, err
	}
	return TotalityQuery(machineWord), st, nil
}
