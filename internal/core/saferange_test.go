package core

import (
	"testing"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/domains/eqdom"
	"repro/internal/parser"
	"repro/internal/query"
)

func fathersScheme() *db.Scheme {
	return db.MustScheme(map[string]int{"F": 2})
}

func TestSafeRangePositive(t *testing.T) {
	scheme := fathersScheme()
	safe := []string{
		"F(x, y)",
		"exists y. F(x, y)",
		"F(x, y) & x != y",
		"F(x, y) | F(y, x)",
		"exists y. (F(x, y) & ~F(y, x))",
		`x = "adam"`,
		"F(x, x)",
		"exists y. (exists z. (F(x, y) & F(y, z)))",
		// Equality propagation inside a conjunction.
		"exists y. (F(y, y) & x = y)",
	}
	for _, s := range safe {
		f := parser.MustParse(s)
		r := SafeRange(scheme, f)
		if !r.Safe {
			t.Errorf("SafeRange(%s) = %+v, want safe", s, r)
		}
	}
}

func TestSafeRangeNegative(t *testing.T) {
	scheme := fathersScheme()
	unsafe := []string{
		"~F(x, y)",           // complement
		"x = y",              // unguarded equality
		"F(x, y) | x = z",    // disjunct leaves z loose
		"forall y. F(x, y)",  // ∀ never ranges
		"exists y. ~F(x, y)", // quantified variable unranged
		"F(x, y) | ~F(y, x)", // one disjunct unsafe
	}
	for _, s := range unsafe {
		f := parser.MustParse(s)
		r := SafeRange(scheme, f)
		if r.Safe {
			t.Errorf("SafeRange(%s) should be unsafe", s)
		}
		if len(r.Unranged) == 0 {
			t.Errorf("SafeRange(%s) should report unranged variables", s)
		}
	}
}

// TestSafeRangeImpliesFinite: every safe-range formula in a sample is
// actually finite in sample states, verified by the relative-safety decider
// for the equality domain.
func TestSafeRangeImpliesFinite(t *testing.T) {
	scheme := fathersScheme()
	st := db.NewState(scheme)
	for _, pair := range [][2]string{{"adam", "abel"}, {"adam", "cain"}, {"cain", "enoch"}} {
		if err := st.Insert("F", domain.Word(pair[0]), domain.Word(pair[1])); err != nil {
			t.Fatal(err)
		}
	}
	samples := []string{
		"F(x, y)",
		"exists y. F(x, y)",
		"F(x, y) & x != y",
		"exists y. (F(x, y) & ~F(y, x))",
		"F(x, x)",
	}
	for _, s := range samples {
		f := parser.MustParse(s)
		if !SafeRange(scheme, f).Safe {
			t.Fatalf("sample %s not safe-range", s)
		}
		finite, err := RelativeSafetyEq(st, f)
		if err != nil {
			t.Fatalf("RelativeSafetyEq(%s): %v", s, err)
		}
		if !finite {
			t.Errorf("safe-range formula %s reported infinite", s)
		}
	}
}

// TestSafeRangeImpliesDomainIndependent: evaluating a safe-range query over
// the active domain and over the active domain extended with junk values
// gives the same answer.
func TestSafeRangeImpliesDomainIndependent(t *testing.T) {
	scheme := fathersScheme()
	st := db.NewState(scheme)
	if err := st.Insert("F", domain.Word("a"), domain.Word("b")); err != nil {
		t.Fatal(err)
	}
	if err := st.Insert("F", domain.Word("a"), domain.Word("c")); err != nil {
		t.Fatal(err)
	}
	samples := []string{
		"F(x, y)",
		"exists y. F(x, y)",
		"exists y. (F(x, y) & ~F(y, x))",
		"F(x, y) & x != y",
	}
	for _, s := range samples {
		f := parser.MustParse(s)
		base, err := query.EvalActive(eqdom.Domain{}, st, f)
		if err != nil {
			t.Fatal(err)
		}
		// Enlarge the evaluation range by inserting junk into a throwaway
		// clone relation… instead, compare against a state with an extra
		// isolated row removed from the query's reach: simulate by adding a
		// junk value through a second scheme relation is not possible here,
		// so check the defining property directly: all answers lie in the
		// active domain.
		ad := map[string]bool{}
		for _, v := range st.ActiveDomain() {
			ad[v.Key()] = true
		}
		for _, row := range base.Rows.Tuples() {
			for _, v := range row {
				if !ad[v.Key()] {
					t.Errorf("%s: answer value %v outside active domain", s, v)
				}
			}
		}
	}
}
