package core

import (
	"testing"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/domains/nsucc"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/traces"
	"repro/internal/turing"
)

func eqState(t *testing.T) *db.State {
	t.Helper()
	st := db.NewState(db.MustScheme(map[string]int{"F": 2}))
	for _, pair := range [][2]string{{"adam", "abel"}, {"adam", "cain"}, {"cain", "enoch"}} {
		if err := st.Insert("F", domain.Word(pair[0]), domain.Word(pair[1])); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestRelativeSafetyEq(t *testing.T) {
	st := eqState(t)
	cases := []struct {
		src    string
		finite bool
	}{
		{"F(x, y)", true},
		{"~F(x, y)", false},
		{"exists y. F(x, y)", true},
		{"x != x", true}, // empty answer
		{"x = x", false}, // everything
		{`x = "adam"`, true},
		{`x != "adam"`, false},
		// M(x) ∨ G(x,z): adam has two sons, so infinite (footnote 4).
		{"(exists y. (exists w. (y != w & F(x, y) & F(x, w)))) | (exists y. (F(x, y) & F(y, z)))", false},
		// Needs two distinct fresh elements: x ≠ y with both loose.
		{"x != y", false},
		// Boolean queries are always finite.
		{"exists x. F(x, x)", true},
	}
	for _, c := range cases {
		f := parser.MustParse(c.src)
		finite, err := RelativeSafetyEq(st, f)
		if err != nil {
			t.Fatalf("RelativeSafetyEq(%s): %v", c.src, err)
		}
		if finite != c.finite {
			t.Errorf("RelativeSafetyEq(%s) = %v, want %v", c.src, finite, c.finite)
		}
	}
}

func TestRelativeSafetyEqStateSensitivity(t *testing.T) {
	// The M(x) ∨ G(x,z) disjunction is finite exactly when nobody has two
	// sons — relative safety is a property of the state, not the formula.
	src := "(exists y. (exists w. (y != w & F(x, y) & F(x, w)))) | (exists y. (F(x, y) & F(y, z)))"
	f := parser.MustParse(src)
	single := db.NewState(db.MustScheme(map[string]int{"F": 2}))
	for _, pair := range [][2]string{{"adam", "cain"}, {"cain", "enoch"}} {
		if err := single.Insert("F", domain.Word(pair[0]), domain.Word(pair[1])); err != nil {
			t.Fatal(err)
		}
	}
	finite, err := RelativeSafetyEq(single, f)
	if err != nil {
		t.Fatal(err)
	}
	if !finite {
		t.Errorf("no twin sons: disjunction should be finite")
	}
}

func TestRelativeSafetyNsucc(t *testing.T) {
	st := db.NewState(db.MustScheme(map[string]int{"R": 1}))
	for _, n := range []int64{3, 10} {
		if err := st.Insert("R", domain.Int(n)); err != nil {
			t.Fatal(err)
		}
	}
	s := func(t logic.Term) logic.Term { return logic.App(nsucc.FuncS, t) }
	x, y := logic.Var("x"), logic.Var("y")
	cases := []struct {
		f      *logic.Formula
		finite bool
	}{
		{logic.Atom("R", x), true},
		{logic.Not(logic.Atom("R", x)), false},
		// Successors of stored values: finite.
		{logic.Exists("y", logic.And(logic.Atom("R", y), logic.Eq(x, s(y)))), true},
		// Predecessors of stored values: finite.
		{logic.Exists("y", logic.And(logic.Atom("R", y), logic.Eq(s(x), y))), true},
		// A fixed disequality: infinite.
		{logic.Neq(x, logic.Const("5")), false},
		// Two free variables chained by successor, unanchored: infinite.
		{logic.Eq(s(x), y), false},
		// …anchored to the database: finite.
		{logic.And(logic.Eq(s(x), y), logic.Atom("R", y)), true},
		// Constant equations.
		{logic.Eq(s(s(x)), logic.Const("7")), true},
		{logic.Eq(s(s(x)), logic.Const("1")), true}, // empty answer
		// Boolean.
		{logic.Exists("x", logic.Atom("R", x)), true},
	}
	for _, c := range cases {
		finite, err := RelativeSafetyNsucc(st, c.f)
		if err != nil {
			t.Fatalf("RelativeSafetyNsucc(%v): %v", c.f, err)
		}
		if finite != c.finite {
			t.Errorf("RelativeSafetyNsucc(%v) = %v, want %v", c.f, finite, c.finite)
		}
	}
}

func TestTheorem33ReductionFidelity(t *testing.T) {
	halting := []struct {
		m     *turing.Machine
		input string
	}{
		{turing.HaltImmediately(), ""},
		{turing.BusyWork(3), "1"},
		{turing.Successor(), "111"},
		{turing.EraseAndHalt(), "11"},
		{turing.HaltIffStartsWithOne(), "1&"},
	}
	for _, c := range halting {
		enc := turing.Encode(c.m)
		f, st, err := HaltingToRelativeSafety(enc, c.input)
		if err != nil {
			t.Fatalf("reduction: %v", err)
		}
		v, err := RelativeSafetyTraces(st, f, DefaultTracesBudget)
		if err != nil {
			t.Fatalf("RelativeSafetyTraces: %v", err)
		}
		if v != domain.Holds {
			t.Errorf("halting instance (%v on %q) verdict %v, want holds", c.m, c.input, v)
		}
	}
	diverging := []struct {
		m     *turing.Machine
		input string
	}{
		{turing.LoopForever(), "1"},
		{turing.LoopForever(), ""},
		{turing.HaltIffStartsWithOne(), "&1"},
		{turing.HaltIffStartsWithOne(), ""},
	}
	for _, c := range diverging {
		enc := turing.Encode(c.m)
		f, st, err := HaltingToRelativeSafety(enc, c.input)
		if err != nil {
			t.Fatalf("reduction: %v", err)
		}
		v, err := RelativeSafetyTraces(st, f, DefaultTracesBudget)
		if err != nil {
			t.Fatalf("RelativeSafetyTraces: %v", err)
		}
		if v != domain.Fails {
			t.Errorf("diverging instance (%v on %q) verdict %v, want fails", c.m, c.input, v)
		}
	}
}

func TestTheorem33ReductionValidation(t *testing.T) {
	if _, _, err := HaltingToRelativeSafety("junk", "1"); err == nil {
		t.Errorf("bad machine accepted")
	}
	if _, _, err := HaltingToRelativeSafety(turing.Encode(turing.LoopForever()), "1*"); err == nil {
		t.Errorf("bad input accepted")
	}
}

func TestRelativeSafetyTracesUnknownShapes(t *testing.T) {
	st := db.NewState(db.MustScheme(map[string]int{}))
	// A query that is not of the canonical P shape: Unknown.
	f := logic.Atom(traces.PredM, logic.Var("x"))
	v, err := RelativeSafetyTraces(st, f, DefaultTracesBudget)
	if err != nil {
		t.Fatalf("RelativeSafetyTraces: %v", err)
	}
	if v != domain.Unknown {
		t.Errorf("non-canonical shape verdict %v, want unknown", v)
	}
	// P with a non-machine constant: identically false, hence finite.
	g := logic.Atom(traces.PredP, logic.Const("11"), logic.Const("1"), logic.Var("x"))
	v, err = RelativeSafetyTraces(st, g, DefaultTracesBudget)
	if err != nil {
		t.Fatalf("RelativeSafetyTraces: %v", err)
	}
	if v != domain.Holds {
		t.Errorf("false query verdict %v, want holds", v)
	}
}

// TestTheorem33Semantics checks the reduction's defining equivalence
// directly: the answer of P(M, c, x) in state c = w is the set of traces of
// M on w, which is finite iff M halts on w.
func TestTheorem33Semantics(t *testing.T) {
	m := turing.BusyWork(2)
	enc := turing.Encode(m)
	f, st, err := HaltingToRelativeSafety(enc, "1")
	if err != nil {
		t.Fatal(err)
	}
	// All three traces satisfy the query; a foreign trace does not.
	all := turing.Traces(m, enc, "1", 10)
	if len(all) != 3 {
		t.Fatalf("want 3 traces")
	}
	cVal, err := st.Constant(DBConst)
	if err != nil || cVal.Key() != "1" {
		t.Fatalf("state constant: %v %v", cVal, err)
	}
	dec := traces.Decider()
	for _, tr := range all {
		pureF := logic.SubstConst(logic.Subst(f, "x", logic.Const(tr)), DBConst, logic.Const("1"))
		v, err := dec.Decide(pureF)
		if err != nil {
			t.Fatalf("Decide: %v", err)
		}
		if !v {
			t.Errorf("trace %q should satisfy the query", tr)
		}
	}
	foreign, err := turing.Trace(m, enc, "11", 1)
	if err != nil {
		t.Fatal(err)
	}
	pureF := logic.SubstConst(logic.Subst(f, "x", logic.Const(foreign)), DBConst, logic.Const("1"))
	v, err := dec.Decide(pureF)
	if err != nil {
		t.Fatal(err)
	}
	if v {
		t.Errorf("trace on a different input must not satisfy the query")
	}
}

// TestRelativeSafetyEnginesAgree: the Cooper-based and automata-based
// Theorem 2.5 deciders agree on random queries and states.
func TestRelativeSafetyEnginesAgree(t *testing.T) {
	st := db.NewState(db.MustScheme(map[string]int{"R": 1}))
	for _, n := range []int64{1, 4} {
		if err := st.Insert("R", domain.Int(n)); err != nil {
			t.Fatal(err)
		}
	}
	queries := []string{
		"R(x)",
		"~R(x)",
		"R(x) & lt(x, 3)",
		"lt(x, 4)",
		"lt(2, x)",
		"R(x) | x = 9",
		"exists y. (R(y) & lt(x, y))",
		"exists y. (R(y) & lt(y, x))",
	}
	for _, src := range queries {
		f, err := parser.ParseWith(src, parser.Options{})
		if err != nil {
			t.Fatal(err)
		}
		a, err := RelativeSafetyPresburger(st, f)
		if err != nil {
			t.Fatalf("cooper %s: %v", src, err)
		}
		b, err := RelativeSafetyPresburgerAutomata(st, f)
		if err != nil {
			t.Fatalf("automata %s: %v", src, err)
		}
		if a != b {
			t.Errorf("deciders disagree on %s: cooper=%v automata=%v", src, a, b)
		}
	}
}
