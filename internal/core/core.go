package core
