package core

import (
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/logic"
	"repro/internal/presburger"
	"repro/internal/query"
)

func lt(a, b logic.Term) *logic.Formula { return logic.Atom(presburger.PredLt, a, b) }

func natState(t *testing.T, rel string, values ...int64) *db.State {
	t.Helper()
	st := db.NewState(db.MustScheme(map[string]int{rel: 1}))
	for _, v := range values {
		if err := st.Insert(rel, domain.Int(v)); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestFact21 reproduces Fact 2.1: the formula defining "the smallest
// integer greater than all active domain elements" is finite but not
// domain-independent.
func TestFact21(t *testing.T) {
	st := natState(t, "R", 2, 5)
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	// Δ(y) for this scheme is just R(y).
	phi := logic.And(
		logic.Forall("y", logic.Implies(logic.Atom("R", y), lt(y, x))),
		logic.Forall("y", logic.Implies(lt(y, x),
			logic.Exists("z", logic.And(logic.Atom("R", z), logic.Not(lt(z, y)))))),
	)

	// (1) The query is finite in every state we try (Theorem 2.5 decider).
	for _, vals := range [][]int64{{2, 5}, {}, {0}, {10, 20, 30}} {
		sti := natState(t, "R", vals...)
		finite, err := RelativeSafetyPresburger(sti, phi)
		if err != nil {
			t.Fatalf("RelativeSafetyPresburger: %v", err)
		}
		if !finite {
			t.Errorf("Fact 2.1 query should be finite in state %v", vals)
		}
	}

	// (2) Its answer in R = {2, 5} is {6} — one element, outside the active
	// domain, hence not domain-independent.
	ans, err := query.EnumerationAnswer(presburger.Domain{}, presburger.Decider(), st, phi, query.DefaultBudget)
	if err != nil {
		t.Fatalf("EnumerationAnswer: %v", err)
	}
	if !ans.Complete || ans.Rows.Len() != 1 || !ans.Rows.Has(db.Tuple{domain.Int(6)}) {
		t.Fatalf("answer = %v (complete %v), want {6}", ans.Rows.Tuples(), ans.Complete)
	}
	ad := map[string]bool{}
	for _, v := range st.ActiveDomain() {
		ad[v.Key()] = true
	}
	if ad["6"] {
		t.Fatalf("6 should be outside the active domain")
	}

	// (3) In a different state the answer differs — the witness of
	// domain-dependence.
	st2 := natState(t, "R", 10)
	ans2, err := query.EnumerationAnswer(presburger.Domain{}, presburger.Decider(), st2, phi, query.DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	if ans2.Rows.Len() != 1 || !ans2.Rows.Has(db.Tuple{domain.Int(11)}) {
		t.Errorf("answer in second state = %v, want {11}", ans2.Rows.Tuples())
	}

	// (4) The syntactic safe-range analysis cannot certify it.
	if SafeRange(st.Scheme(), phi).Safe {
		t.Errorf("Fact 2.1 query should not be safe-range")
	}
}

func TestFinitizeShape(t *testing.T) {
	f := logic.Atom("R", logic.Var("x"))
	g := Finitize(f)
	if !g.HasFreeVar("x") {
		t.Errorf("finitization lost the free variable")
	}
	phi, ok := IsFinitization(g)
	if !ok || !phi.Equal(f) {
		t.Errorf("IsFinitization failed on a finitization")
	}
	if _, ok := IsFinitization(f); ok {
		t.Errorf("plain atom recognized as finitization")
	}
	// The bound variable must avoid capture.
	h := logic.Atom("R", logic.Var("m"))
	g2 := Finitize(h)
	if _, ok := IsFinitization(g2); !ok {
		t.Errorf("finitization with clashing variable name broken: %v", g2)
	}
}

// TestTheorem22FinitizationsAreFinite: the finitization of ANY formula is
// finite, including wildly unsafe ones.
func TestTheorem22FinitizationsAreFinite(t *testing.T) {
	st := natState(t, "R", 3, 7)
	x, y := logic.Var("x"), logic.Var("y")
	formulas := []*logic.Formula{
		logic.Not(logic.Atom("R", x)),                // complement
		logic.Eq(x, x),                               // everything
		lt(logic.Const("5"), x),                      // upward cone
		logic.Or(logic.Atom("R", x), logic.Eq(y, y)), // M(x) ∨ true(y)
		logic.Atom("R", x),                           // already finite
		logic.And(logic.Atom("R", x), logic.Atom("R", y)),
	}
	for _, f := range formulas {
		finite, err := RelativeSafetyPresburger(st, Finitize(f))
		if err != nil {
			t.Fatalf("RelativeSafetyPresburger(%v): %v", f, err)
		}
		if !finite {
			t.Errorf("finitization of %v reported infinite", f)
		}
	}
}

// TestTheorem22EquivalenceForFiniteQueries: the finitization of a finite
// formula is equivalent to it.
func TestTheorem22EquivalenceForFiniteQueries(t *testing.T) {
	st := natState(t, "R", 3, 7)
	x := logic.Var("x")
	finiteQueries := []*logic.Formula{
		logic.Atom("R", x),
		logic.And(logic.Atom("R", x), lt(x, logic.Const("5"))),
		lt(x, logic.Const("4")),
		logic.Exists("y", logic.And(logic.Atom("R", logic.Var("y")), lt(x, logic.Var("y")))),
	}
	e := presburger.Eliminator{}
	for _, f := range finiteQueries {
		pure, err := query.Translate(presburger.Domain{}, st, f)
		if err != nil {
			t.Fatal(err)
		}
		eq, err := e.Equivalent(pure, Finitize(pure))
		if err != nil {
			t.Fatalf("Equivalent: %v", err)
		}
		if !eq {
			t.Errorf("finite %v not equivalent to its finitization", f)
		}
	}
	// And an infinite one is NOT equivalent to its finitization.
	inf := logic.Not(logic.Atom("R", x))
	pure, err := query.Translate(presburger.Domain{}, st, inf)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := e.Equivalent(pure, Finitize(pure))
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Errorf("infinite query equivalent to its finitization")
	}
}

// TestTheorem25 exercises the relative-safety decider on the introduction's
// M(x) ∨ G(x, z) example and its footnote: the disjunction "only gives an
// infinite answer if there is a person who parented two or more sons".
func TestTheorem25FootnoteExample(t *testing.T) {
	build := func(pairs [][2]int64) *db.State {
		st := db.NewState(db.MustScheme(map[string]int{"F": 2}))
		for _, p := range pairs {
			if err := st.Insert("F", domain.Int(p[0]), domain.Int(p[1])); err != nil {
				t.Fatal(err)
			}
		}
		return st
	}
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	m := logic.ExistsAll([]string{"y", "y2"}, logic.And(
		logic.Neq(logic.Var("y"), logic.Var("y2")),
		logic.Atom("F", x, y),
		logic.Atom("F", x, logic.Var("y2"))))
	g := logic.Exists("y", logic.And(logic.Atom("F", x, y), logic.Atom("F", y, z)))
	disj := logic.Or(m, g)

	// Two sons of 1: M nonempty, so M(x) ∨ G(x,z) leaves z loose: infinite.
	withTwin := build([][2]int64{{1, 2}, {1, 3}, {2, 4}})
	finite, err := RelativeSafetyPresburger(withTwin, disj)
	if err != nil {
		t.Fatal(err)
	}
	if finite {
		t.Errorf("M∨G should be infinite when someone has two sons")
	}
	// No two sons: M empty, the disjunction reduces to G: finite.
	single := build([][2]int64{{1, 2}, {2, 4}})
	finite, err = RelativeSafetyPresburger(single, disj)
	if err != nil {
		t.Fatal(err)
	}
	if !finite {
		t.Errorf("M∨G should be finite when nobody has two sons")
	}
	// And the plain complement is always infinite.
	finite, err = RelativeSafetyPresburger(single, logic.Not(logic.Atom("F", x, y)))
	if err != nil {
		t.Fatal(err)
	}
	if finite {
		t.Errorf("¬F should be infinite")
	}
}

// TestTheorem25AgainstEnumeration cross-validates the decider against the
// §1.1 enumeration on random small queries: whenever the decider says
// finite, enumeration completes; whenever it says infinite, enumeration
// exhausts its row budget.
func TestTheorem25AgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	st := natState(t, "R", 1, 4)
	for i := 0; i < 60; i++ {
		f := randNatQuery(rng, 2)
		finite, err := RelativeSafetyPresburger(st, f)
		if err != nil {
			t.Fatalf("decider: %v (%v)", err, f)
		}
		ans, err := query.EnumerationAnswer(presburger.Domain{}, presburger.Decider(), st, f,
			query.EnumerationBudget{Rows: 40, Probe: 4000})
		if err != nil {
			t.Fatalf("enumeration: %v (%v)", err, f)
		}
		if finite && !ans.Complete {
			// A finite answer bigger than the row budget is possible but
			// should not happen with our tiny constants; treat as failure.
			t.Fatalf("decider says finite but enumeration incomplete: %v", f)
		}
		if !finite && ans.Complete {
			t.Fatalf("decider says infinite but enumeration completed with %d rows: %v",
				ans.Rows.Len(), f)
		}
	}
}

// randNatQuery generates queries over scheme {R/1} and the Presburger
// domain with one free variable x, small enough for enumeration.
func randNatQuery(rng *rand.Rand, depth int) *logic.Formula {
	x := logic.Var("x")
	atom := func() *logic.Formula {
		switch rng.Intn(4) {
		case 0:
			return logic.Atom("R", x)
		case 1:
			return lt(x, logic.Const([]string{"3", "6"}[rng.Intn(2)]))
		case 2:
			return lt(logic.Const([]string{"0", "2"}[rng.Intn(2)]), x)
		default:
			return logic.Eq(x, logic.Const([]string{"1", "5"}[rng.Intn(2)]))
		}
	}
	if depth == 0 {
		return atom()
	}
	switch rng.Intn(5) {
	case 0:
		return atom()
	case 1:
		return logic.Not(randNatQuery(rng, depth-1))
	case 2:
		return logic.And(randNatQuery(rng, depth-1), randNatQuery(rng, depth-1))
	case 3:
		return logic.Or(randNatQuery(rng, depth-1), randNatQuery(rng, depth-1))
	default:
		// ∃y quantifying a sub-query on y keeps x the only free variable.
		inner := logic.Subst(randNatQuery(rng, depth-1), "x", logic.Var("y"))
		return logic.And(atom(), logic.Exists("y", inner))
	}
}
