package core

import (
	"testing"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/domains/zless"
	"repro/internal/logic"
	"repro/internal/presburger"
	"repro/internal/query"
)

func intState(t *testing.T, values ...int64) *db.State {
	t.Helper()
	st := db.NewState(db.MustScheme(map[string]int{"R": 1}))
	for _, v := range values {
		if err := st.Insert("R", domain.Int(v)); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestFinitizeZ verifies the paper's remark about integers: the ℕ-style
// one-sided finitization is NOT enough over ℤ, and the two-sided FinitizeZ
// is — the "minor modification of the finitization procedure".
func TestFinitizeZ(t *testing.T) {
	st := intState(t, -3, 4)
	x := logic.Var("x")

	// x < 4 is infinite over ℤ (unbounded below) though finite over ℕ.
	below := logic.Atom(presburger.PredLt, x, logic.Const("4"))
	finite, err := RelativeSafetyIntegers(st, below)
	if err != nil {
		t.Fatalf("RelativeSafetyIntegers: %v", err)
	}
	if finite {
		t.Errorf("x < 4 should be infinite over ℤ")
	}
	// The same query over ℕ is finite (the contrast that forces the
	// modification).
	finiteNat, err := RelativeSafetyPresburger(st, below)
	if err != nil {
		t.Fatal(err)
	}
	if !finiteNat {
		t.Errorf("x < 4 should be finite over ℕ")
	}

	// A two-sided interval is finite over ℤ.
	interval := logic.And(
		logic.Atom(presburger.PredLt, logic.Const("-10"), x),
		logic.Atom(presburger.PredLt, x, logic.Const("4")))
	finite, err = RelativeSafetyIntegers(st, interval)
	if err != nil {
		t.Fatal(err)
	}
	if !finite {
		t.Errorf("bounded interval should be finite over ℤ")
	}

	// R(x) is finite; ¬R(x) infinite.
	finite, err = RelativeSafetyIntegers(st, logic.Atom("R", x))
	if err != nil || !finite {
		t.Errorf("R(x): %v %v", finite, err)
	}
	finite, err = RelativeSafetyIntegers(st, logic.Not(logic.Atom("R", x)))
	if err != nil || finite {
		t.Errorf("¬R(x): %v %v", finite, err)
	}

	// Every FinitizeZ image is finite over ℤ — including of one-sided and
	// complement queries.
	for _, f := range []*logic.Formula{
		below,
		logic.Not(logic.Atom("R", x)),
		logic.Eq(x, x),
	} {
		finite, err := RelativeSafetyIntegers(st, FinitizeZ(f))
		if err != nil {
			t.Fatalf("FinitizeZ relative safety: %v", err)
		}
		if !finite {
			t.Errorf("FinitizeZ(%v) should be finite over ℤ", f)
		}
	}

	// The ℕ-style one-sided finitization fails over ℤ: Finitize(x < 4)
	// keeps the unbounded-below answer (the ∃m bound is satisfied by m=4),
	// so it is still infinite — the reason the modification is needed.
	finite, err = RelativeSafetyIntegers(st, Finitize(below))
	if err != nil {
		t.Fatal(err)
	}
	if finite {
		t.Errorf("one-sided finitization should NOT be finite over ℤ")
	}
}

// TestFinitizeZEquivalenceForFinite: FinitizeZ is equivalent to the query
// on finite queries over ℤ.
func TestFinitizeZEquivalenceForFinite(t *testing.T) {
	st := intState(t, -3, 4)
	x := logic.Var("x")
	e := presburger.Eliminator{Integers: true}
	finiteQueries := []*logic.Formula{
		logic.Atom("R", x),
		logic.And(
			logic.Atom(presburger.PredLt, logic.Const("-5"), x),
			logic.Atom(presburger.PredLt, x, logic.Const("0"))),
	}
	for _, f := range finiteQueries {
		pure, err := translateZ(st, f)
		if err != nil {
			t.Fatal(err)
		}
		fin := FinitizeZ(pure)
		vars := pure.FreeVars()
		eq, err := e.Decide(logic.ForallAll(vars, logic.Iff(pure, fin)))
		if err != nil {
			t.Fatalf("equivalence: %v", err)
		}
		if !eq {
			t.Errorf("finite %v not equivalent to its ℤ-finitization", f)
		}
	}
}

func translateZ(st *db.State, f *logic.Formula) (*logic.Formula, error) {
	return query.Translate(zless.Domain{}, st, f)
}
