package core

import (
	"repro/internal/db"
	"repro/internal/domains/zless"
	"repro/internal/logic"
	"repro/internal/presburger"
	"repro/internal/query"
)

// Finitize returns the finitization φF of Theorem 2.2, valid over any
// extension of the domain N<:
//
//	φF(x̄) := φ(x̄) ∧ ∃m ∀x̄ (φ(x̄) → ⋀_i x_i < m)
//
// The second conjunct says some element bounds every answer row. Two facts
// make the set of finitizations a recursive syntax for finite queries:
// every finitization is finite (its answer sits inside a bounded box), and
// the finitization of a finite formula is equivalent to it (a finite answer
// always has an upper bound in ℕ).
func Finitize(f *logic.Formula) *logic.Formula {
	vars := f.FreeVars()
	m := logic.FreshVar("m", f)
	bounds := make([]*logic.Formula, len(vars))
	for i, v := range vars {
		bounds[i] = logic.Atom(presburger.PredLt, logic.Var(v), logic.Var(m))
	}
	inner := logic.ForallAll(vars, logic.Implies(f.Clone(), logic.And(bounds...)))
	return logic.And(f, logic.Exists(m, inner))
}

// FinitizeZ is the integer variant the paper sketches ("integers with <
// can be handled similarly after a minor modification of the finitization
// procedure"): over ℤ there is no least element, so a finite answer needs
// bounds on both sides —
//
//	φZ(x̄) := φ(x̄) ∧ ∃l ∃m ∀x̄ (φ(x̄) → ⋀_i (l < x_i ∧ x_i < m)).
func FinitizeZ(f *logic.Formula) *logic.Formula {
	vars := f.FreeVars()
	m := logic.FreshVar("m", f)
	l := logic.FreshVar("l", f)
	var bounds []*logic.Formula
	for _, v := range vars {
		bounds = append(bounds,
			logic.Atom(presburger.PredLt, logic.Var(l), logic.Var(v)),
			logic.Atom(presburger.PredLt, logic.Var(v), logic.Var(m)))
	}
	inner := logic.ForallAll(vars, logic.Implies(f.Clone(), logic.And(bounds...)))
	return logic.And(f, logic.Exists(l, logic.Exists(m, inner)))
}

// RelativeSafetyIntegers decides relative safety over (ℤ, <, +, dvd) using
// the FinitizeZ variant of the Theorem 2.5 criterion.
func RelativeSafetyIntegers(st *db.State, f *logic.Formula) (bool, error) {
	pure, err := query.Translate(zless.Domain{}, st, f)
	if err != nil {
		return false, err
	}
	fin := FinitizeZ(pure)
	vars := logic.SortedUnique(append(pure.FreeVars(), fin.FreeVars()...))
	return presburger.Eliminator{Integers: true}.Decide(
		logic.ForallAll(vars, logic.Iff(pure, fin)))
}

// IsFinitization reports whether g is syntactically the finitization of
// some formula, and returns that formula. Membership in the finitization
// syntax is decidable by this shape check — that is what makes the syntax
// recursive.
func IsFinitization(g *logic.Formula) (*logic.Formula, bool) {
	if g.Kind != logic.FAnd || len(g.Sub) != 2 {
		return nil, false
	}
	phi := g.Sub[0]
	if !g.Equal(Finitize(phi)) {
		return nil, false
	}
	return phi, true
}
