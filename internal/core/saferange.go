// Package core implements the paper's results: safety (finiteness) of
// relational queries, the finitization syntax for ordered domains
// (Theorem 2.2), relative-safety deciders for the positive domains
// (Theorems 2.5 and 2.6), effective-syntax objects (Theorem 2.7,
// Corollaries 2.3/2.4), and the negative machinery over the trace domain —
// totality queries, the Theorem 3.1 equivalence sentences, and the
// Theorem 3.3 halting reduction.
package core

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/logic"
)

// SafeRangeReport is the outcome of the syntactic safe-range analysis.
type SafeRangeReport struct {
	// Safe is true when the formula is safe-range: every free variable is
	// range-restricted and every quantified variable is ranged at its
	// binder.
	Safe bool
	// Unranged lists the variables that defeat the analysis.
	Unranged []string
}

// SafeRange performs the classical syntactic range-restriction analysis
// (Van Gelder–Topor / Abiteboul–Hull–Vianu style) of a query over a scheme.
// Safe-range formulas are domain-independent and therefore finite; the
// analysis is sound but — necessarily, by Theorem 3.1 — incomplete: some
// finite queries are not safe-range and, over the trace domain, not even
// equivalent to any effectively recognizable class.
//
// Range restriction rules, on the negation normal form:
//
//   - a database atom R(t̄) ranges every variable occurring directly in it;
//   - a domain atom (order, arithmetic, P, …) ranges nothing — domain
//     relations are infinite;
//   - x = c and c = x range x; x = y propagates ranging inside a
//     conjunction; negated literals range nothing;
//   - ∧ unions (with equality propagation), ∨ intersects;
//   - ∃x ψ requires x ranged in ψ and exports rr(ψ) \ {x}.
func SafeRange(scheme *db.Scheme, f *logic.Formula) SafeRangeReport {
	a := &srAnalysis{scheme: scheme}
	rr := a.analyze(logic.NNF(f))
	var unranged []string
	for _, v := range f.FreeVars() {
		if !rr[v] {
			unranged = append(unranged, v)
		}
	}
	unranged = append(unranged, a.badQuantified...)
	return SafeRangeReport{Safe: len(unranged) == 0, Unranged: logic.SortedUnique(unranged)}
}

type srAnalysis struct {
	scheme        *db.Scheme
	badQuantified []string
}

func (a *srAnalysis) analyze(f *logic.Formula) map[string]bool {
	switch f.Kind {
	case logic.FTrue, logic.FFalse:
		return map[string]bool{}
	case logic.FAtom:
		rr := map[string]bool{}
		if _, isDB := a.scheme.Relations[f.Pred]; isDB {
			for _, t := range f.Args {
				var vs []string
				for _, v := range t.Vars(vs) {
					rr[v] = true
				}
			}
			return rr
		}
		if f.IsEq() {
			// x = c ranges x (database or domain constant alike).
			if f.Args[0].Kind == logic.TVar && f.Args[1].Ground() {
				rr[f.Args[0].Name] = true
			}
			if f.Args[1].Kind == logic.TVar && f.Args[0].Ground() {
				rr[f.Args[1].Name] = true
			}
		}
		return rr
	case logic.FNot:
		return map[string]bool{}
	case logic.FAnd:
		rr := map[string]bool{}
		for _, s := range f.Sub {
			for v := range a.analyze(s) {
				rr[v] = true
			}
		}
		// Equality propagation to a fixpoint: x = y inside the conjunction
		// extends ranging across the equality.
		for changed := true; changed; {
			changed = false
			for _, s := range f.Sub {
				if s.Kind != logic.FAtom || !s.IsEq() {
					continue
				}
				l, r := s.Args[0], s.Args[1]
				if l.Kind == logic.TVar && r.Kind == logic.TVar {
					if rr[l.Name] && !rr[r.Name] {
						rr[r.Name] = true
						changed = true
					}
					if rr[r.Name] && !rr[l.Name] {
						rr[l.Name] = true
						changed = true
					}
				}
			}
		}
		return rr
	case logic.FOr:
		if len(f.Sub) == 0 {
			return map[string]bool{}
		}
		rr := a.analyze(f.Sub[0])
		for _, s := range f.Sub[1:] {
			next := a.analyze(s)
			for v := range rr {
				if !next[v] {
					delete(rr, v)
				}
			}
		}
		return rr
	case logic.FExists, logic.FForall:
		inner := a.analyze(f.Sub[0])
		if f.Kind == logic.FForall {
			// NNF leaves no ∀ in the classical development; treat it as
			// unranged (sound: ∀ never ranges).
			a.badQuantified = append(a.badQuantified, f.Var)
			return map[string]bool{}
		}
		if !inner[f.Var] && f.Sub[0].HasFreeVar(f.Var) {
			a.badQuantified = append(a.badQuantified, f.Var)
		}
		delete(inner, f.Var)
		return inner
	default:
		panic(fmt.Sprintf("core: NNF produced %v", f.Kind))
	}
}
