package core

import (
	"fmt"

	"repro/internal/domain"
	"repro/internal/presburger"
)

// OrderedExtension realizes Corollary 2.4: any (countable, enumerable)
// domain D extends to a domain D' with a recursive syntax for finite
// queries — "take D' to be an extension of both D and N<". The extension
// keeps D's universe and symbols and adds the order predicate "lt",
// interpreted through the enumeration index: a < b iff a is enumerated
// before b. The order is isomorphic to (ℕ, <), so the finitization syntax
// (Theorem 2.2) applies to D'.
//
// Corollary 3.2 is the flip side: when D is the trace domain T, the theory
// of any such D' is necessarily undecidable — the syntax exists but its
// equivalence sentences cannot be decided, so it certifies nothing.
type OrderedExtension struct {
	Base interface {
		domain.Domain
		domain.Enumerator
	}
	// MaxIndex bounds the inverse-enumeration search; elements beyond it
	// make Pred fail rather than loop. 0 means a default of 1<<20.
	MaxIndex int
}

// Name implements domain.Domain.
func (d OrderedExtension) Name() string { return d.Base.Name() + "+nless" }

// ConstValue implements domain.Interp.
func (d OrderedExtension) ConstValue(name string) (domain.Value, error) {
	return d.Base.ConstValue(name)
}

// ConstName implements domain.Domain.
func (d OrderedExtension) ConstName(v domain.Value) string { return d.Base.ConstName(v) }

// Func implements domain.Interp.
func (d OrderedExtension) Func(name string, args []domain.Value) (domain.Value, error) {
	return d.Base.Func(name, args)
}

// Pred implements domain.Interp: lt via enumeration indices, everything
// else via the base domain.
func (d OrderedExtension) Pred(name string, args []domain.Value) (bool, error) {
	if name != presburger.PredLt {
		return d.Base.Pred(name, args)
	}
	if len(args) != 2 {
		return false, fmt.Errorf("core: lt expects 2 arguments")
	}
	ia, err := d.IndexOf(args[0])
	if err != nil {
		return false, err
	}
	ib, err := d.IndexOf(args[1])
	if err != nil {
		return false, err
	}
	return ia < ib, nil
}

// Element implements domain.Enumerator.
func (d OrderedExtension) Element(i int) domain.Value { return d.Base.Element(i) }

// IndexOf inverts the base enumeration by search; the enumeration is
// recursive, so this is computable (if slow — the paper never promised
// efficiency).
func (d OrderedExtension) IndexOf(v domain.Value) (int, error) {
	limit := d.MaxIndex
	if limit == 0 {
		limit = 1 << 20
	}
	key := v.Key()
	for i := 0; i < limit; i++ {
		if d.Base.Element(i).Key() == key {
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: element %v not found within index bound %d", v, limit)
}
