package core

import (
	"testing"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/domains/eqdom"
	"repro/internal/domains/nsucc"
	"repro/internal/logic"
	"repro/internal/presburger"
	"repro/internal/query"
	"repro/internal/traces"
)

func TestFormulaEnumeratorVariety(t *testing.T) {
	e := FormulaEnumerator{Sig: Signature{
		Preds:  map[string]int{"R": 1, "F": 2},
		Consts: []string{"a", "b"},
		Vars:   []string{"x", "y"},
	}}
	kinds := map[logic.FKind]bool{}
	seen := map[string]bool{}
	for i := 0; i < 3000; i++ {
		f := e.Formula(i)
		if f == nil {
			t.Fatalf("Formula(%d) = nil", i)
		}
		kinds[f.Kind] = true
		seen[f.String()] = true
	}
	for _, k := range []logic.FKind{logic.FAtom, logic.FNot, logic.FAnd, logic.FOr, logic.FExists, logic.FForall} {
		if !kinds[k] {
			t.Errorf("enumeration never produces kind %d", k)
		}
	}
	if len(seen) < 500 {
		t.Errorf("enumeration too repetitive: %d distinct among 3000", len(seen))
	}
	// Determinism.
	if !e.Formula(123).Equal(e.Formula(123)) {
		t.Errorf("enumeration not deterministic")
	}
}

func TestFormulaEnumeratorWithFunctions(t *testing.T) {
	e := FormulaEnumerator{Sig: Signature{
		Preds: map[string]int{"R": 1},
		Funcs: map[string]int{"s": 1},
		Vars:  []string{"x"},
	}}
	foundFunc := false
	for i := 0; i < 2000 && !foundFunc; i++ {
		e.Formula(i).Walk(func(g *logic.Formula) {
			for _, tm := range g.Args {
				if tm.Kind == logic.TApp {
					foundFunc = true
				}
			}
		})
	}
	if !foundFunc {
		t.Errorf("enumeration never uses the function symbol")
	}
}

func TestRelativizeAndRestrict(t *testing.T) {
	scheme := db.MustScheme(map[string]int{"F": 2})
	delta := ADFormula(scheme, nil)
	f := logic.Exists("y", logic.Not(logic.Atom("F", logic.Var("x"), logic.Var("y"))))
	r := Restrict(f, delta)
	// The restriction guards the free variable x and the bound variable y.
	if !r.HasFreeVar("x") {
		t.Fatalf("free variable lost: %v", r)
	}
	if r.Kind != logic.FAnd {
		t.Fatalf("expected guard conjunction: %v", r)
	}
	// Forall bodies become implications.
	g := Restrict(logic.Forall("y", logic.Atom("F", logic.Var("y"), logic.Var("y"))), delta)
	found := false
	g.Walk(func(h *logic.Formula) {
		if h.Kind == logic.FForall && h.Sub[0].Kind == logic.FImplies {
			found = true
		}
	})
	if !found {
		t.Errorf("relativized forall should guard with implication: %v", g)
	}
}

// TestActiveDomainSyntaxFinite: restrictions are finite — here checked
// exactly with the equality-domain relative-safety decider, including
// restrictions of wildly unsafe formulas.
func TestActiveDomainSyntaxFinite(t *testing.T) {
	scheme := db.MustScheme(map[string]int{"F": 2})
	st := db.NewState(scheme)
	if err := st.Insert("F", domain.Word("a"), domain.Word("b")); err != nil {
		t.Fatal(err)
	}
	delta := ADFormula(scheme, nil)
	unsafe := []*logic.Formula{
		logic.Not(logic.Atom("F", logic.Var("x"), logic.Var("y"))),
		logic.Eq(logic.Var("x"), logic.Var("x")),
		logic.Forall("y", logic.Neq(logic.Var("x"), logic.Var("y"))),
	}
	for _, f := range unsafe {
		r := Restrict(f, delta)
		finite, err := RelativeSafetyEq(st, r)
		if err != nil {
			t.Fatalf("RelativeSafetyEq(%v): %v", r, err)
		}
		if !finite {
			t.Errorf("restriction of %v reported infinite", f)
		}
	}
}

// TestActiveDomainSyntaxComplete: over the equality domain, a finite query
// is equivalent to its restriction — checked semantically on states by
// comparing answers.
func TestActiveDomainSyntaxEquivalenceOnFiniteQueries(t *testing.T) {
	scheme := db.MustScheme(map[string]int{"F": 2})
	st := db.NewState(scheme)
	for _, pair := range [][2]string{{"a", "b"}, {"a", "c"}, {"c", "d"}} {
		if err := st.Insert("F", domain.Word(pair[0]), domain.Word(pair[1])); err != nil {
			t.Fatal(err)
		}
	}
	delta := ADFormula(scheme, nil)
	finiteQueries := []*logic.Formula{
		logic.Atom("F", logic.Var("x"), logic.Var("y")),
		logic.Exists("y", logic.Atom("F", logic.Var("x"), logic.Var("y"))),
		logic.And(logic.Atom("F", logic.Var("x"), logic.Var("y")), logic.Neq(logic.Var("x"), logic.Var("y"))),
	}
	for _, f := range finiteQueries {
		base, err := query.EvalActive(eqdom.Domain{}, st, f)
		if err != nil {
			t.Fatal(err)
		}
		restricted, err := query.EvalActive(eqdom.Domain{}, st, Restrict(f, delta))
		if err != nil {
			t.Fatal(err)
		}
		if base.Rows.Len() != restricted.Rows.Len() {
			t.Errorf("%v: restriction changed the answer: %d vs %d rows",
				f, base.Rows.Len(), restricted.Rows.Len())
			continue
		}
		for _, row := range base.Rows.Tuples() {
			if !restricted.Rows.Has(row) {
				t.Errorf("%v: row %v lost by restriction", f, row)
			}
		}
	}
}

func TestActiveDomainSyntaxMembership(t *testing.T) {
	scheme := db.MustScheme(map[string]int{"F": 2})
	s := ActiveDomainSyntax{Scheme: scheme, Enum: FormulaEnumerator{Sig: Signature{
		Preds: map[string]int{"F": 2}, Vars: []string{"x", "y"},
	}}}
	member, err := s.Enumerate(17)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := s.Contains(member)
	if err != nil || !ok {
		t.Errorf("enumerated member not contained: %v (%v)", member, err)
	}
	ok, err = s.Contains(logic.Not(logic.Atom("F", logic.Var("x"), logic.Var("y"))))
	if err != nil || ok {
		t.Errorf("raw complement should not be in the restricted class")
	}
	if s.Name() != "active-domain" {
		t.Errorf("name")
	}
}

func TestFinitizationSyntax(t *testing.T) {
	s := FinitizationSyntax{Enum: FormulaEnumerator{Sig: Signature{
		Preds:  map[string]int{"R": 1, presburger.PredLt: 2},
		Consts: []string{"0", "3"},
		Vars:   []string{"x", "y"},
	}}}
	for _, i := range []int{0, 5, 33} {
		member, err := s.Enumerate(i)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := s.Contains(member)
		if err != nil || !ok {
			t.Errorf("finitization member %d not contained: %v", i, member)
		}
	}
	ok, err := s.Contains(logic.Atom("R", logic.Var("x")))
	if err != nil || ok {
		t.Errorf("plain atom should not be a finitization")
	}
	if s.Name() != "finitization" {
		t.Errorf("name")
	}
}

// TestFinitizationSyntaxMembersFinite: enumerated members of the
// finitization syntax are finite in sample states (Theorem 2.2's first
// half, via the Theorem 2.5 decider).
func TestFinitizationSyntaxMembersFinite(t *testing.T) {
	s := FinitizationSyntax{Enum: FormulaEnumerator{Sig: Signature{
		Preds:  map[string]int{"R": 1},
		Consts: []string{"0", "3"},
		Vars:   []string{"x", "y"},
	}}}
	st := db.NewState(db.MustScheme(map[string]int{"R": 1}))
	if err := st.Insert("R", domain.Int(4)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		member, err := s.Enumerate(i)
		if err != nil {
			t.Fatal(err)
		}
		finite, err := RelativeSafetyPresburger(st, member)
		if err != nil {
			t.Fatalf("member %d (%v): %v", i, member, err)
		}
		if !finite {
			t.Errorf("finitization member %d infinite: %v", i, member)
		}
	}
}

func TestSafeRangeSyntax(t *testing.T) {
	scheme := db.MustScheme(map[string]int{"F": 2})
	s := SafeRangeSyntax{Scheme: scheme, Enum: FormulaEnumerator{Sig: Signature{
		Preds: map[string]int{"F": 2}, Vars: []string{"x", "y"},
	}}}
	for i := 0; i < 10; i++ {
		member, err := s.Enumerate(i)
		if err != nil {
			t.Fatalf("Enumerate(%d): %v", i, err)
		}
		ok, err := s.Contains(member)
		if err != nil || !ok {
			t.Errorf("member %d not safe-range: %v", i, member)
		}
	}
	ok, err := s.Contains(logic.Eq(logic.Var("x"), logic.Var("y")))
	if err != nil || ok {
		t.Errorf("x = y should not be safe-range")
	}
	if s.Name() != "safe-range" {
		t.Errorf("name")
	}
}

// TestNsuccRestrictor: Theorem 2.7's extended-active-domain restriction
// yields finite formulas over N', and preserves the answers of finite
// queries whose values stay within the radius.
func TestNsuccRestrictor(t *testing.T) {
	scheme := db.MustScheme(map[string]int{"R": 1})
	st := db.NewState(scheme)
	for _, n := range []int64{5, 9} {
		if err := st.Insert("R", domain.Int(n)); err != nil {
			t.Fatal(err)
		}
	}
	x, y := logic.Var("x"), logic.Var("y")
	sApp := func(tm logic.Term) logic.Term { return logic.App("s", tm) }

	// An unsafe formula: its restriction must be finite.
	unsafe := logic.Not(logic.Atom("R", x))
	restricted := NsuccRestrictor(scheme, unsafe)
	finite, err := RelativeSafetyNsucc(st, restricted)
	if err != nil {
		t.Fatalf("RelativeSafetyNsucc: %v", err)
	}
	if !finite {
		t.Errorf("restriction of ¬R should be finite")
	}

	// A finite query with quantifier depth 1 and values within distance 2:
	// the successor-of-a-stored-value query. Restriction preserves answers.
	f := logic.Exists("y", logic.And(logic.Atom("R", y), logic.Eq(x, sApp(y))))
	rf := NsuccRestrictor(scheme, f)
	finite, err = RelativeSafetyNsucc(st, rf)
	if err != nil {
		t.Fatal(err)
	}
	if !finite {
		t.Errorf("restricted finite query reported infinite")
	}
	// Compare answers via enumeration.
	import1, err := query.EnumerationAnswer(nsucc.Domain{}, nsucc.Decider(), st, f, query.DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	import2, err := query.EnumerationAnswer(nsucc.Domain{}, nsucc.Decider(), st, rf, query.DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	if import1.Rows.Len() != import2.Rows.Len() || import1.Rows.Len() != 2 {
		t.Fatalf("restriction changed answers: %v vs %v",
			import1.Rows.Tuples(), import2.Rows.Tuples())
	}
	for _, row := range import1.Rows.Tuples() {
		if !import2.Rows.Has(row) {
			t.Errorf("row %v lost", row)
		}
	}
}

// TestCorollary24OrderedExtension: any enumerable domain extends with an
// N<-order; the order is computable, total, and discrete-from-below, so the
// finitization syntax applies to the extension. Demonstrated on the
// equality domain and on the trace domain (Corollary 3.2's subject).
func TestCorollary24OrderedExtension(t *testing.T) {
	exts := []OrderedExtension{
		{Base: eqdom.Domain{}},
		{Base: traces.Domain{}},
	}
	for _, ext := range exts {
		a := ext.Element(0)
		b := ext.Element(5)
		lt1, err := ext.Pred(presburger.PredLt, []domain.Value{a, b})
		if err != nil {
			t.Fatalf("%s: lt: %v", ext.Name(), err)
		}
		lt2, err := ext.Pred(presburger.PredLt, []domain.Value{b, a})
		if err != nil {
			t.Fatal(err)
		}
		if !lt1 || lt2 {
			t.Errorf("%s: order wrong: %v %v", ext.Name(), lt1, lt2)
		}
		// Irreflexive.
		ltSelf, err := ext.Pred(presburger.PredLt, []domain.Value{a, a})
		if err != nil || ltSelf {
			t.Errorf("%s: order reflexive", ext.Name())
		}
		// IndexOf inverts Element.
		i, err := ext.IndexOf(ext.Element(9))
		if err != nil || i != 9 {
			t.Errorf("%s: IndexOf = %d, %v", ext.Name(), i, err)
		}
		// Base symbols still work.
		if ext.Name() == "traces+nless" {
			v, err := ext.Pred(traces.PredW, []domain.Value{domain.Word("1&")})
			if err != nil || !v {
				t.Errorf("base predicate lost: %v %v", v, err)
			}
		}
	}
	// The finitization of a formula over the extension is well-formed and
	// in the finitization class.
	f := logic.Atom(traces.PredW, logic.Var("x"))
	if _, ok := IsFinitization(Finitize(f)); !ok {
		t.Errorf("finitization over the extension malformed")
	}
}

// TestRelativeSafetyWordlexDirect exercises the shortlex relative-safety
// decider end to end (Theorem 2.5 carried across the isomorphism).
func TestRelativeSafetyWordlexDirect(t *testing.T) {
	st := db.NewState(db.MustScheme(map[string]int{"R": 1}))
	for _, w := range []string{"ab", "ba"} {
		if err := st.Insert("R", domain.Word(w)); err != nil {
			t.Fatal(err)
		}
	}
	finiteQ := logic.Exists("y", logic.And(
		logic.Atom("R", logic.Var("y")),
		logic.Atom(presburger.PredLt, logic.Var("x"), logic.Var("y"))))
	finite, err := RelativeSafetyWordlex(st, finiteQ)
	if err != nil {
		t.Fatalf("RelativeSafetyWordlex: %v", err)
	}
	if !finite {
		t.Errorf("words below a stored word are finitely many")
	}
	infinite, err := RelativeSafetyWordlex(st, logic.Not(logic.Atom("R", logic.Var("x"))))
	if err != nil {
		t.Fatal(err)
	}
	if infinite {
		t.Errorf("complement should be infinite")
	}
}

// TestOrderedExtensionInterp covers the delegating methods.
func TestOrderedExtensionInterp(t *testing.T) {
	ext := OrderedExtension{Base: eqdom.Domain{}}
	v, err := ext.ConstValue("k")
	if err != nil || v.Key() != "k" {
		t.Errorf("ConstValue: %v %v", v, err)
	}
	if ext.ConstName(domain.Word("k")) != "k" {
		t.Errorf("ConstName")
	}
	if _, err := ext.Func("f", nil); err == nil {
		t.Errorf("base has no functions")
	}
	if _, err := ext.Pred("P", nil); err == nil {
		t.Errorf("base has no predicates")
	}
	if _, err := ext.Pred(presburger.PredLt, []domain.Value{domain.Word("e0")}); err == nil {
		t.Errorf("lt arity unchecked")
	}
	// IndexOf failure within a tiny bound.
	small := OrderedExtension{Base: eqdom.Domain{}, MaxIndex: 3}
	if _, err := small.IndexOf(domain.Word("zz-not-enumerated")); err == nil {
		t.Errorf("IndexOf should fail beyond the bound")
	}
}
