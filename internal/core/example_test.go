package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/presburger"
	"repro/internal/turing"
)

// The finitization of Theorem 2.2 makes any query finite; a finite query is
// equivalent to its finitization.
func ExampleFinitize() {
	unsafe := parser.MustParse("~R(x)")
	st := db.NewState(db.MustScheme(map[string]int{"R": 1}))
	_ = st.Insert("R", domain.Int(7))

	before, _ := core.RelativeSafetyPresburger(st, unsafe)
	after, _ := core.RelativeSafetyPresburger(st, core.Finitize(unsafe))
	fmt.Println(before, after)
	// Output: false true
}

// Safe-range analysis certifies finiteness syntactically — and is
// necessarily incomplete.
func ExampleSafeRange() {
	scheme := db.MustScheme(map[string]int{"F": 2})
	fmt.Println(core.SafeRange(scheme, parser.MustParse("exists y. F(x, y)")).Safe)
	fmt.Println(core.SafeRange(scheme, parser.MustParse("~F(x, y)")).Safe)
	// Output:
	// true
	// false
}

// The Theorem 3.3 reduction: the query is finite iff the machine halts.
func ExampleHaltingToRelativeSafety() {
	enc := turing.Encode(turing.BusyWork(1))
	f, st, _ := core.HaltingToRelativeSafety(enc, "1")
	v, _ := core.RelativeSafetyTraces(st, f, core.DefaultTracesBudget)
	fmt.Println(v)
	// Output: holds
}

// The Theorem 3.1 sentence certifies totality through the decidable trace
// theory.
func ExampleVerifyTotality() {
	enc := turing.Encode(turing.HaltImmediately())
	candidate := logic.And(
		logic.Atom("T", logic.Var("x")),
		logic.Eq(logic.App("m", logic.Var("x")), logic.Const(enc)),
		logic.Eq(logic.App("w", logic.Var("x")), logic.Const(core.DBConst)))
	ok, _ := core.VerifyTotality(enc, candidate)
	fmt.Println(ok)
	// Output: true
}

// Relative safety over a decidable extension of N< (Theorem 2.5).
func ExampleRelativeSafetyPresburger() {
	st := db.NewState(db.MustScheme(map[string]int{"R": 1}))
	_ = st.Insert("R", domain.Int(3))
	finite, _ := core.RelativeSafetyPresburger(st,
		logic.Exists("y", logic.And(
			logic.Atom("R", logic.Var("y")),
			logic.Atom(presburger.PredLt, logic.Var("x"), logic.Var("y")))))
	fmt.Println(finite)
	// Output: true
}
