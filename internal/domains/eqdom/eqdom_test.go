package eqdom

import (
	"math/rand"
	"testing"

	"repro/internal/domain"
	"repro/internal/logic"
)

func decide(t *testing.T, f *logic.Formula) bool {
	t.Helper()
	v, err := Decider().Decide(f)
	if err != nil {
		t.Fatalf("Decide(%v): %v", f, err)
	}
	return v
}

func TestDecideBasics(t *testing.T) {
	x, y, z := logic.Var("x"), logic.Var("y"), logic.Var("z")
	a, b := logic.Const("a"), logic.Const("b")
	cases := []struct {
		f    *logic.Formula
		want bool
	}{
		{logic.Exists("x", logic.Eq(x, x)), true},
		{logic.Exists("x", logic.Neq(x, x)), false},
		{logic.Exists("x", logic.Eq(x, a)), true},
		{logic.Exists("x", logic.And(logic.Eq(x, a), logic.Eq(x, b))), false},
		{logic.Exists("x", logic.And(logic.Neq(x, a), logic.Neq(x, b))), true},
		// At least three distinct elements.
		{logic.ExistsAll([]string{"x", "y", "z"}, logic.And(
			logic.Neq(x, y), logic.Neq(y, z), logic.Neq(x, z))), true},
		// Equality is transitive.
		{logic.ForallAll([]string{"x", "y", "z"}, logic.Implies(
			logic.And(logic.Eq(x, y), logic.Eq(y, z)), logic.Eq(x, z))), true},
		// No element equals everything.
		{logic.Exists("x", logic.Forall("y", logic.Eq(x, y))), false},
		// Distinct constants are distinct elements.
		{logic.Eq(a, b), false},
		{logic.Eq(a, a), true},
		{logic.Forall("x", logic.Or(logic.Eq(x, a), logic.Neq(x, a))), true},
	}
	for _, c := range cases {
		if got := decide(t, c.f); got != c.want {
			t.Errorf("Decide(%v) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestEliminatorErrors(t *testing.T) {
	e := Eliminator{}
	if _, err := e.Eliminate(logic.Exists("x", logic.Atom("P", logic.Var("x")))); err == nil {
		t.Errorf("predicate accepted in pure equality theory")
	}
	if _, err := e.Eliminate(logic.Exists("x",
		logic.Eq(logic.App("f", logic.Var("x")), logic.Var("x")))); err == nil {
		t.Errorf("function accepted in pure equality theory")
	}
}

func TestFresh(t *testing.T) {
	avoid := map[string]bool{"e0": true, "e1": true}
	v := Fresh(avoid)
	if avoid[v.Key()] {
		t.Errorf("Fresh returned avoided element %v", v)
	}
}

func TestDomainBasics(t *testing.T) {
	d := Domain{}
	if d.Name() != "eq" {
		t.Errorf("name")
	}
	if _, err := d.ConstValue(""); err == nil {
		t.Errorf("empty constant accepted")
	}
	if _, err := d.Func("f", nil); err == nil {
		t.Errorf("function accepted")
	}
	if _, err := d.Pred("P", nil); err == nil {
		t.Errorf("predicate accepted")
	}
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		k := d.Element(i).Key()
		if seen[k] {
			t.Fatalf("Element repeats %q", k)
		}
		seen[k] = true
	}
}

// TestAgainstFiniteModels: for pure equality sentences using at most k
// variables and constants, truth over the infinite domain coincides with
// truth over any finite model with ≥ k elements that interprets the
// constants injectively. This gives a brute-force oracle.
func TestAgainstFiniteModels(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	elements := []string{"a", "b", "c", "d", "e", "f", "g"} // ≥ vars+consts
	for i := 0; i < 250; i++ {
		f := randEqSentence(rng, 2)
		want := evalFinite(t, f, elements, map[string]string{})
		if got := decide(t, f); got != want {
			t.Fatalf("Decide(%v) = %v, finite oracle says %v", f, got, want)
		}
	}
}

func randEqSentence(rng *rand.Rand, depth int) *logic.Formula {
	vars := []string{"x", "y", "z"}
	body := randEqBody(rng, depth, vars)
	for i := len(vars) - 1; i >= 0; i-- {
		if rng.Intn(2) == 0 {
			body = logic.Exists(vars[i], body)
		} else {
			body = logic.Forall(vars[i], body)
		}
	}
	return body
}

func randEqBody(rng *rand.Rand, depth int, vars []string) *logic.Formula {
	terms := []logic.Term{
		logic.Var("x"), logic.Var("y"), logic.Var("z"),
		logic.Const("a"), logic.Const("b"),
	}
	atom := func() *logic.Formula {
		return logic.Eq(terms[rng.Intn(len(terms))], terms[rng.Intn(len(terms))])
	}
	if depth == 0 {
		return atom()
	}
	switch rng.Intn(5) {
	case 0:
		return atom()
	case 1:
		return logic.Not(randEqBody(rng, depth-1, vars))
	case 2:
		return logic.And(randEqBody(rng, depth-1, vars), randEqBody(rng, depth-1, vars))
	case 3:
		return logic.Or(randEqBody(rng, depth-1, vars), randEqBody(rng, depth-1, vars))
	default:
		// Implies, not Iff: nested Iff under three quantifier alternations
		// makes the DNF used by elimination blow up exponentially.
		return logic.Implies(randEqBody(rng, depth-1, vars), randEqBody(rng, depth-1, vars))
	}
}

func evalFinite(t *testing.T, f *logic.Formula, elements []string, env map[string]string) bool {
	t.Helper()
	evalTerm := func(tm logic.Term) string {
		if tm.Kind == logic.TVar {
			return env[tm.Name]
		}
		return "const:" + tm.Name
	}
	switch f.Kind {
	case logic.FTrue:
		return true
	case logic.FFalse:
		return false
	case logic.FAtom:
		return evalTerm(f.Args[0]) == evalTerm(f.Args[1])
	case logic.FNot:
		return !evalFinite(t, f.Sub[0], elements, env)
	case logic.FAnd:
		for _, s := range f.Sub {
			if !evalFinite(t, s, elements, env) {
				return false
			}
		}
		return true
	case logic.FOr:
		for _, s := range f.Sub {
			if evalFinite(t, s, elements, env) {
				return true
			}
		}
		return false
	case logic.FImplies:
		return !evalFinite(t, f.Sub[0], elements, env) || evalFinite(t, f.Sub[1], elements, env)
	case logic.FIff:
		return evalFinite(t, f.Sub[0], elements, env) == evalFinite(t, f.Sub[1], elements, env)
	case logic.FExists, logic.FForall:
		saved, had := env[f.Var]
		defer func() {
			if had {
				env[f.Var] = saved
			} else {
				delete(env, f.Var)
			}
		}()
		// Constants "a"/"b" are also candidate values for quantified
		// variables: include them so witnesses can equal constants.
		candidates := append([]string{"const:a", "const:b"}, elements...)
		for _, e := range candidates {
			env[f.Var] = e
			v := evalFinite(t, f.Sub[0], elements, env)
			if f.Kind == logic.FExists && v {
				return true
			}
			if f.Kind == logic.FForall && !v {
				return false
			}
		}
		return f.Kind == logic.FForall
	}
	t.Fatalf("bad kind")
	return false
}

func TestEnumeratorIsDomainValue(t *testing.T) {
	var _ domain.Enumerator = Domain{}
	var _ domain.Domain = Domain{}
}
