// Package eqdom implements the paper's "simplest possible example": an
// infinite domain whose only relation is equality. Over it, finite and
// domain-independent queries coincide, the active-domain restriction is an
// effective syntax, and relative safety is decidable by probing a single
// fresh element (Section 2 of the paper).
//
// The universe is the set of all nonempty identifier-like strings; every
// element names itself.
package eqdom

import (
	"fmt"
	"strconv"

	"repro/internal/domain"
	"repro/internal/logic"
)

// Domain implements domain.Domain and domain.Enumerator.
type Domain struct{}

// Name implements domain.Domain.
func (Domain) Name() string { return "eq" }

// ConstValue implements domain.Interp: every nonempty name denotes itself.
func (Domain) ConstValue(name string) (domain.Value, error) {
	if name == "" {
		return nil, fmt.Errorf("eqdom: empty constant name")
	}
	return domain.Word(name), nil
}

// ConstName implements domain.Domain.
func (Domain) ConstName(v domain.Value) string { return v.Key() }

// Func implements domain.Interp; the signature has no functions.
func (Domain) Func(name string, args []domain.Value) (domain.Value, error) {
	return nil, fmt.Errorf("eqdom: unknown function %q", name)
}

// Pred implements domain.Interp; the signature has no predicates beyond
// equality.
func (Domain) Pred(name string, args []domain.Value) (bool, error) {
	return false, fmt.Errorf("eqdom: unknown predicate %q", name)
}

// Element implements domain.Enumerator: e0, e1, e2, …
func (Domain) Element(i int) domain.Value {
	return domain.Word("e" + strconv.Itoa(i))
}

// Fresh returns an element outside the given set — the "arbitrary element
// not in the active domain" of the paper's relative-safety argument.
func Fresh(avoid map[string]bool) domain.Value {
	for i := 0; ; i++ {
		v := Domain{}.Element(i)
		if !avoid[v.Key()] {
			return v
		}
	}
}

// Eliminator performs quantifier elimination for the pure theory of
// equality over an infinite domain: within a conjunct, a positive x = t is
// substituted away, and a conjunct of disequalities alone is always
// satisfiable.
type Eliminator struct{}

// Eliminate implements domain.Eliminator.
func (e Eliminator) Eliminate(f *logic.Formula) (*logic.Formula, error) {
	g, err := e.elim(f)
	if err != nil {
		return nil, err
	}
	return logic.Simplify(g), nil
}

func (e Eliminator) elim(f *logic.Formula) (*logic.Formula, error) {
	switch f.Kind {
	case logic.FExists:
		body, err := e.elim(f.Sub[0])
		if err != nil {
			return nil, err
		}
		return e.elimExists(f.Var, body)
	case logic.FForall:
		body, err := e.elim(f.Sub[0])
		if err != nil {
			return nil, err
		}
		inner, err := e.elimExists(f.Var, logic.Not(body))
		if err != nil {
			return nil, err
		}
		return logic.Simplify(logic.Not(inner)), nil
	case logic.FTrue, logic.FFalse, logic.FAtom:
		return f, nil
	default:
		sub := make([]*logic.Formula, len(f.Sub))
		for i, s := range f.Sub {
			g, err := e.elim(s)
			if err != nil {
				return nil, err
			}
			sub[i] = g
		}
		return &logic.Formula{Kind: f.Kind, Sub: sub}, nil
	}
}

func (e Eliminator) elimExists(x string, body *logic.Formula) (*logic.Formula, error) {
	body = logic.Simplify(body)
	if !body.HasFreeVar(x) {
		return body, nil
	}
	var disjuncts []*logic.Formula
	for _, clause := range logic.DNF(body) {
		g, err := e.elimConjunct(x, clause)
		if err != nil {
			return nil, err
		}
		disjuncts = append(disjuncts, g)
	}
	return logic.Simplify(logic.Or(disjuncts...)), nil
}

func (e Eliminator) elimConjunct(x string, lits []*logic.Formula) (*logic.Formula, error) {
	for _, lit := range lits {
		atom, positive := logic.LiteralAtom(lit)
		if !atom.IsEq() {
			return nil, fmt.Errorf("eqdom: unknown predicate %q", atom.Pred)
		}
		for _, arg := range atom.Args {
			if arg.Kind == logic.TApp {
				return nil, fmt.Errorf("eqdom: the equality domain has no functions (term %v)", arg)
			}
		}
		if !positive {
			continue
		}
		var t logic.Term
		switch {
		case atom.Args[0].IsVar(x) && !atom.Args[1].HasVar(x):
			t = atom.Args[1]
		case atom.Args[1].IsVar(x) && !atom.Args[0].HasVar(x):
			t = atom.Args[0]
		default:
			continue
		}
		out := make([]*logic.Formula, len(lits))
		for i, l := range lits {
			out[i] = logic.Subst(l, x, t)
		}
		return logic.Simplify(logic.And(out...)), nil
	}
	// Only disequalities (and trivial x = x, removed by Simplify within
	// DNF clauses below) constrain x: over an infinite domain they are
	// always jointly satisfiable.
	var rest []*logic.Formula
	for _, lit := range lits {
		atom, positive := logic.LiteralAtom(lit)
		if lit.HasFreeVar(x) {
			if positive && atom.Args[0].Equal(atom.Args[1]) {
				continue // x = x
			}
			if positive {
				// x = t with t containing x on both sides: x = x handled
				// above; anything else is impossible without functions.
				return nil, fmt.Errorf("eqdom: unexpected equality %v", lit)
			}
			if atom.Args[0].Equal(atom.Args[1]) {
				return logic.False(), nil // x ≠ x
			}
			continue // x ≠ t: dodgeable
		}
		rest = append(rest, lit)
	}
	return logic.And(rest...), nil
}

// Decider returns the decision procedure for the pure equality theory.
func Decider() domain.Decider {
	return domain.QEDecider{Elim: Eliminator{}, Interp: Domain{}}
}
