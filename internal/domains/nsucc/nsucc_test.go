package nsucc

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/domain"
	"repro/internal/logic"
)

func s(t logic.Term) logic.Term { return logic.App(FuncS, t) }
func num(n int) logic.Term      { return logic.Const(strconv.Itoa(n)) }
func decide(t *testing.T, f *logic.Formula) bool {
	t.Helper()
	v, err := Decider().Decide(f)
	if err != nil {
		t.Fatalf("Decide(%v): %v", f, err)
	}
	return v
}

func TestParseRender(t *testing.T) {
	tm := s(s(logic.Var("x")))
	st, err := Parse(tm)
	if err != nil || st.Var != "x" || st.Shift != 2 {
		t.Fatalf("Parse: %v %v", st, err)
	}
	if !Render(st).Equal(tm) {
		t.Errorf("Render mismatch")
	}
	st, err = Parse(s(num(3)))
	if err != nil || !st.IsConst() || st.Shift != 4 {
		t.Fatalf("Parse const: %v %v", st, err)
	}
	if _, err := Parse(logic.App("f", logic.Var("x"))); err == nil {
		t.Errorf("unknown function accepted")
	}
	if _, err := Parse(logic.Const("abc")); err == nil {
		t.Errorf("bad constant accepted")
	}
	if got := (STerm{Var: "x", Shift: 2}).String(); got != "x^(2)" {
		t.Errorf("String = %q", got)
	}
}

func TestDecideBasics(t *testing.T) {
	x, y := logic.Var("x"), logic.Var("y")
	cases := []struct {
		f    *logic.Formula
		want bool
	}{
		// s is injective.
		{logic.ForallAll([]string{"x", "y"},
			logic.Implies(logic.Eq(s(x), s(y)), logic.Eq(x, y))), true},
		// 0 is not a successor.
		{logic.Exists("x", logic.Eq(s(x), num(0))), false},
		// Every other numeral is.
		{logic.Exists("x", logic.Eq(s(x), num(1))), true},
		{logic.Exists("x", logic.Eq(s(s(x)), num(7))), true},
		{logic.Exists("x", logic.Eq(s(s(x)), num(1))), false},
		// No fixpoints, no loops.
		{logic.Exists("x", logic.Eq(s(x), x)), false},
		{logic.Exists("x", logic.Eq(s(s(s(x))), x)), false},
		// Infinitely many elements: distinct pairs exist.
		{logic.ExistsAll([]string{"x", "y"}, logic.Neq(x, y)), true},
		// Successors translate: x' = y' ∨ x ≠ y.
		{logic.ForallAll([]string{"x", "y"},
			logic.Or(logic.Eq(s(x), s(y)), logic.Neq(x, y))), true},
		// Every element has a successor distinct from itself.
		{logic.Forall("x", logic.Exists("y", logic.And(
			logic.Eq(s(x), y), logic.Neq(x, y)))), true},
		// Exactly one predecessor when one exists.
		{logic.Forall("y", logic.ForallAll([]string{"x", "z"},
			logic.Implies(
				logic.And(logic.Eq(s(x), logic.Var("y")), logic.Eq(s(logic.Var("z")), logic.Var("y"))),
				logic.Eq(x, logic.Var("z"))))), true},
		// Ground.
		{logic.Eq(s(num(2)), num(3)), true},
		{logic.Eq(s(num(2)), num(4)), false},
	}
	for _, c := range cases {
		if got := decide(t, c.f); got != c.want {
			t.Errorf("Decide(%v) = %v, want %v", c.f, got, c.want)
		}
	}
}

// TestOrderNotExpressibleProbe: the paper notes < is not expressible in N'.
// We cannot test inexpressibility directly, but the canonical probe — "some
// x is below every y" — must behave unlike an order: no formula here, just a
// sanity check that the decision procedure treats shifted disequalities
// correctly, which is what makes order inexpressible.
func TestShiftedDisequalities(t *testing.T) {
	x := logic.Var("x")
	// For every x there is y different from x, x', x''.
	f := logic.Forall("x", logic.Exists("y",
		logic.And(
			logic.Neq(logic.Var("y"), x),
			logic.Neq(logic.Var("y"), s(x)),
			logic.Neq(logic.Var("y"), s(s(x))))))
	if !decide(t, f) {
		t.Errorf("finitely many exclusions cannot exhaust ℕ")
	}
}

func TestEliminateShape(t *testing.T) {
	e := Eliminator{}
	// ∃x (x'' = y) ⟺ y ∉ {0, 1}.
	f := logic.Exists("x", logic.Eq(s(s(logic.Var("x"))), logic.Var("y")))
	g, err := e.Eliminate(f)
	if err != nil {
		t.Fatalf("Eliminate: %v", err)
	}
	if !g.QuantifierFree() || g.HasFreeVar("x") {
		t.Fatalf("bad elimination: %v", g)
	}
	for yv, want := range map[int]bool{0: false, 1: false, 2: true, 5: true} {
		sentence := logic.Subst(g, "y", num(yv))
		if got := decide(t, sentence); got != want {
			t.Errorf("y=%d: %v, want %v (eliminated %v)", yv, got, want, g)
		}
	}
}

// TestEliminateAgainstBruteForce cross-validates one-quantifier elimination
// against search over an initial segment of ℕ. Constants and shifts are
// small, so any witness is ≤ 30.
func TestEliminateAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	e := Eliminator{}
	for iter := 0; iter < 400; iter++ {
		body := randBody(rng, 2)
		yv := rng.Intn(6)
		grounded := logic.Subst(body, "y", num(yv))
		found := false
		for xv := 0; xv <= 30 && !found; xv++ {
			v, err := e.decideGroundForTest(logic.Subst(grounded, "x", num(xv)))
			if err != nil {
				t.Fatalf("ground: %v", err)
			}
			found = v
		}
		got, err := Decider().Decide(logic.Exists("x", grounded))
		if err != nil {
			t.Fatalf("Decide: %v", err)
		}
		if found && !got {
			t.Fatalf("witness exists for %v (y=%d) but QE says false", body, yv)
		}
		if !found && got {
			wider := false
			for xv := 0; xv <= 200 && !wider; xv++ {
				v, _ := e.decideGroundForTest(logic.Subst(grounded, "x", num(xv)))
				wider = v
			}
			if !wider {
				t.Fatalf("QE says true but no witness ≤ 200 for %v (y=%d)", body, yv)
			}
		}
	}
}

// decideGroundForTest evaluates a variable-free formula.
func (e Eliminator) decideGroundForTest(f *logic.Formula) (bool, error) {
	return Decider().Decide(f)
}

func randBody(rng *rand.Rand, depth int) *logic.Formula {
	terms := func() logic.Term {
		var t logic.Term
		if rng.Intn(2) == 0 {
			t = logic.Var([]string{"x", "y"}[rng.Intn(2)])
		} else {
			t = num(rng.Intn(5))
		}
		for i := rng.Intn(3); i > 0; i-- {
			t = s(t)
		}
		return t
	}
	atom := func() *logic.Formula { return logic.Eq(terms(), terms()) }
	if depth == 0 {
		return atom()
	}
	switch rng.Intn(5) {
	case 0:
		return atom()
	case 1:
		return logic.Not(randBody(rng, depth-1))
	case 2:
		return logic.And(randBody(rng, depth-1), randBody(rng, depth-1))
	case 3:
		return logic.Or(randBody(rng, depth-1), randBody(rng, depth-1))
	default:
		return logic.Implies(randBody(rng, depth-1), randBody(rng, depth-1))
	}
}

func TestDecideConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 150; i++ {
		body := randBody(rng, 2)
		var f *logic.Formula
		if rng.Intn(2) == 0 {
			f = logic.ForallAll([]string{"x", "y"}, body)
		} else {
			f = logic.Forall("x", logic.Exists("y", body))
		}
		v, err := Decider().Decide(f)
		if err != nil {
			t.Fatalf("Decide: %v", err)
		}
		nv, err := Decider().Decide(logic.Not(f))
		if err != nil {
			t.Fatalf("Decide(¬): %v", err)
		}
		if v == nv {
			t.Errorf("inconsistent on %v", f)
		}
	}
}

func TestDomain(t *testing.T) {
	d := Domain{}
	if d.Name() != "nsucc" {
		t.Errorf("name")
	}
	if _, err := d.Func(FuncS, nil); err == nil {
		t.Errorf("arity error not caught")
	}
	if got, err := d.Func(FuncS, []domain.Value{domain.Int(4)}); err != nil || got.Key() != "5" {
		t.Errorf("s(4) = %v, %v", got, err)
	}
	if _, err := d.ConstValue("-2"); err == nil {
		t.Errorf("negative constant accepted")
	}
	if d.Element(3).Key() != "3" {
		t.Errorf("Element wrong")
	}
	if _, err := d.Pred("lt", nil); err == nil {
		t.Errorf("N' has no order predicate")
	}
}

func TestEliminatorRejectsUnknownPredicates(t *testing.T) {
	f := logic.Exists("x", logic.Atom("lt", logic.Var("x"), num(3)))
	if _, err := (Eliminator{}).Eliminate(f); err == nil {
		t.Errorf("unknown predicate accepted")
	}
}
