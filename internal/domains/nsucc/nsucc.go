// Package nsucc implements the paper's Section 2.2 domain N': the natural
// numbers with the successor function and equality — no order. The point of
// the example is that an effective syntax for finite queries does not need
// <: quantifier elimination in the style of Mal'cev gives decidability,
// decidable relative safety (Theorem 2.6), and a recursive syntax via the
// extended active domain (Theorem 2.7).
//
// Signature: the unary successor function "s", decimal numeral constants,
// and equality. Terms are x^(n) — n-fold successor applications — over
// variables or numerals.
package nsucc

import (
	"fmt"
	"strconv"

	"repro/internal/domain"
	"repro/internal/logic"
)

// FuncS is the successor function symbol.
const FuncS = "s"

// ParserOptions marks s as a function for the shared parser.
func ParserOptions() map[string]bool { return map[string]bool{FuncS: true} }

// STerm is a canonical term: Var^(Shift) when Var ≠ "", the numeral Shift
// otherwise. Shift is non-negative for canonical terms; negative shifts
// appear only transiently during substitution.
type STerm struct {
	Var   string
	Shift int
}

// IsConst reports whether the term is a numeral.
func (t STerm) IsConst() bool { return t.Var == "" }

// String implements fmt.Stringer.
func (t STerm) String() string {
	if t.IsConst() {
		return strconv.Itoa(t.Shift)
	}
	if t.Shift == 0 {
		return t.Var
	}
	return fmt.Sprintf("%s^(%d)", t.Var, t.Shift)
}

// Parse interprets a logic term over the successor signature.
func Parse(t logic.Term) (STerm, error) {
	shift := 0
	for t.Kind == logic.TApp {
		if t.Name != FuncS || len(t.Args) != 1 {
			return STerm{}, fmt.Errorf("nsucc: unknown function %s/%d", t.Name, len(t.Args))
		}
		shift++
		t = t.Args[0]
	}
	switch t.Kind {
	case logic.TVar:
		return STerm{Var: t.Name, Shift: shift}, nil
	case logic.TConst:
		n, err := strconv.Atoi(t.Name)
		if err != nil || n < 0 {
			return STerm{}, fmt.Errorf("nsucc: constant %q is not a natural numeral", t.Name)
		}
		return STerm{Shift: shift + n}, nil
	}
	return STerm{}, fmt.Errorf("nsucc: bad term kind %d", t.Kind)
}

// Render converts a canonical term back to a logic term.
func Render(t STerm) logic.Term {
	if t.IsConst() {
		return logic.Const(strconv.Itoa(t.Shift))
	}
	out := logic.Var(t.Var)
	for i := 0; i < t.Shift; i++ {
		out = logic.App(FuncS, out)
	}
	return out
}

// Eliminator performs Mal'cev-style quantifier elimination for N'.
type Eliminator struct{}

// Eliminate implements domain.Eliminator.
func (e Eliminator) Eliminate(f *logic.Formula) (*logic.Formula, error) {
	g, err := e.elim(f)
	if err != nil {
		return nil, err
	}
	return logic.Simplify(g), nil
}

func (e Eliminator) elim(f *logic.Formula) (*logic.Formula, error) {
	switch f.Kind {
	case logic.FExists:
		body, err := e.elim(f.Sub[0])
		if err != nil {
			return nil, err
		}
		return e.elimExists(f.Var, body)
	case logic.FForall:
		body, err := e.elim(f.Sub[0])
		if err != nil {
			return nil, err
		}
		inner, err := e.elimExists(f.Var, logic.Not(body))
		if err != nil {
			return nil, err
		}
		return logic.Simplify(logic.Not(inner)), nil
	case logic.FTrue, logic.FFalse, logic.FAtom:
		return f, nil
	default:
		sub := make([]*logic.Formula, len(f.Sub))
		for i, s := range f.Sub {
			g, err := e.elim(s)
			if err != nil {
				return nil, err
			}
			sub[i] = g
		}
		return &logic.Formula{Kind: f.Kind, Sub: sub}, nil
	}
}

// equality is one canonical (in)equality between successor terms.
type equality struct {
	a, b     STerm
	positive bool
}

// normalize shifts both sides so neither is negative (adding the same
// amount to both sides of an equality over ℕ is an equivalence whenever the
// conjunct also carries the definedness guards, which substitution adds).
func (eq equality) normalize() equality {
	add := 0
	if eq.a.Shift < -add {
		add = -eq.a.Shift
	}
	if eq.b.Shift < -add {
		add = -eq.b.Shift
	}
	eq.a.Shift += add
	eq.b.Shift += add
	return eq
}

// render converts back to a literal.
func (eq equality) render() *logic.Formula {
	f := logic.Eq(Render(eq.a), Render(eq.b))
	if !eq.positive {
		return logic.Not(f)
	}
	return f
}

// evalGround decides a ground equality.
func (eq equality) evalGround() (bool, bool) {
	if !eq.a.IsConst() || !eq.b.IsConst() {
		// Equal variables with shifts: x^(n) = x^(m) ⟺ n = m.
		if eq.a.Var == eq.b.Var && eq.a.Var != "" {
			return (eq.a.Shift == eq.b.Shift) == eq.positive, true
		}
		return false, false
	}
	return (eq.a.Shift == eq.b.Shift) == eq.positive, true
}

func (e Eliminator) elimExists(x string, body *logic.Formula) (*logic.Formula, error) {
	body = logic.Simplify(body)
	if !body.HasFreeVar(x) {
		return body, nil
	}
	var disjuncts []*logic.Formula
	for _, clause := range logic.DNF(body) {
		g, err := e.elimConjunct(x, clause)
		if err != nil {
			return nil, err
		}
		disjuncts = append(disjuncts, g)
	}
	return logic.Simplify(logic.Or(disjuncts...)), nil
}

func (e Eliminator) elimConjunct(x string, lits []*logic.Formula) (*logic.Formula, error) {
	eqs := make([]equality, 0, len(lits))
	for _, lit := range lits {
		atom, positive := logic.LiteralAtom(lit)
		if !atom.IsEq() {
			return nil, fmt.Errorf("nsucc: unknown predicate %q", atom.Pred)
		}
		a, err := Parse(atom.Args[0])
		if err != nil {
			return nil, err
		}
		b, err := Parse(atom.Args[1])
		if err != nil {
			return nil, err
		}
		eqs = append(eqs, equality{a: a, b: b, positive: positive})
	}
	return e.solve(x, eqs)
}

// solve eliminates ∃x from canonical equalities, following the paper: a
// positive equality lets x be substituted away (with definedness guards for
// downward shifts); a conjunct of inequalities only is satisfiable outright.
func (e Eliminator) solve(x string, eqs []equality) (*logic.Formula, error) {
	// Resolve trivial atoms and find a positive equality involving x.
	var rest []equality
	var xEqs []equality
	for _, eq := range eqs {
		eq = eq.normalize()
		// Orient x to the a-side when present.
		if eq.b.Var == x && eq.a.Var != x {
			eq.a, eq.b = eq.b, eq.a
		}
		if v, ok := eq.evalGround(); ok {
			if !v {
				return logic.False(), nil
			}
			continue
		}
		if eq.a.Var == x {
			xEqs = append(xEqs, eq)
		} else {
			rest = append(rest, eq)
		}
	}
	if len(xEqs) == 0 {
		return renderAll(rest), nil
	}

	// Prefer a positive equality to substitute on.
	for i, eq := range xEqs {
		if !eq.positive {
			continue
		}
		// x^(n) = t: substitute x := t^(-n), guarding definedness.
		n := eq.a.Shift
		t := eq.b
		out := make([]equality, 0, len(eqs))
		out = append(out, rest...)
		// Definedness guards: t ≥ n, expressed as t ≠ 0, …, t ≠ n−1 (the
		// paper's "add the conjunction y ≠ 0 ∧ … ∧ y ≠ (n−1)"), which for a
		// constant t evaluates immediately.
		for g := 0; g < n; g++ {
			guard := equality{a: t, b: STerm{Shift: g}, positive: false}
			if v, ok := guard.evalGround(); ok {
				if !v {
					return logic.False(), nil
				}
				continue
			}
			out = append(out, guard)
		}
		target := STerm{Var: t.Var, Shift: t.Shift - n}
		for j, other := range xEqs {
			if j == i {
				continue
			}
			sub := equality{
				a:        substTerm(other.a, x, target),
				b:        substTerm(other.b, x, target),
				positive: other.positive,
			}
			sub = sub.normalize()
			if v, ok := sub.evalGround(); ok {
				if !v {
					return logic.False(), nil
				}
				continue
			}
			out = append(out, sub)
		}
		return renderAll(out), nil
	}

	// Only inequalities constrain x: each excludes at most one value, and ℕ
	// is infinite, so ∃x holds whenever the rest does.
	return renderAll(rest), nil
}

func substTerm(t STerm, x string, target STerm) STerm {
	if t.Var != x {
		return t
	}
	return STerm{Var: target.Var, Shift: target.Shift + t.Shift}
}

func renderAll(eqs []equality) *logic.Formula {
	out := make([]*logic.Formula, len(eqs))
	for i, eq := range eqs {
		out[i] = eq.render()
	}
	return logic.And(out...)
}

// Domain is ℕ with successor, implementing domain.Domain and
// domain.Enumerator.
type Domain struct{}

// Name implements domain.Domain.
func (Domain) Name() string { return "nsucc" }

// ConstValue implements domain.Interp.
func (Domain) ConstValue(name string) (domain.Value, error) {
	n, err := strconv.ParseInt(name, 10, 64)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("nsucc: constant %q is not a natural numeral", name)
	}
	return domain.Int(n), nil
}

// ConstName implements domain.Domain.
func (Domain) ConstName(v domain.Value) string { return v.Key() }

// Func implements domain.Interp.
func (Domain) Func(name string, args []domain.Value) (domain.Value, error) {
	if name != FuncS || len(args) != 1 {
		return nil, fmt.Errorf("nsucc: unknown function %s/%d", name, len(args))
	}
	n, ok := args[0].(domain.Int)
	if !ok {
		return nil, fmt.Errorf("nsucc: non-integer value %v", args[0])
	}
	return n + 1, nil
}

// Pred implements domain.Interp; the signature has no predicates beyond
// equality.
func (Domain) Pred(name string, args []domain.Value) (bool, error) {
	return false, fmt.Errorf("nsucc: unknown predicate %q", name)
}

// Element implements domain.Enumerator.
func (Domain) Element(i int) domain.Value { return domain.Int(i) }

// Decider returns the decision procedure for N' (Theorem 2.6's engine).
func Decider() domain.Decider {
	return domain.QEDecider{Elim: Eliminator{}, Interp: Domain{}}
}
