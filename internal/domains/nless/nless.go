// Package nless is the paper's Section 2.1 domain N<: the natural numbers
// with order (and nothing else). It is implemented as a signature-restricted
// view of the Presburger engine — N< is a reduct of Presburger arithmetic,
// and everything proved for "any extension of the domain N<" (Fact 2.1,
// Theorems 2.2 and 2.5) is exercised over this domain and over the full
// Presburger extension alike.
package nless

import (
	"fmt"

	"repro/internal/domain"
	"repro/internal/logic"
	"repro/internal/presburger"
)

// PredLt re-exports the order predicate spelling.
const PredLt = presburger.PredLt

// Domain is ℕ with < only.
type Domain struct {
	full presburger.Domain
}

// Name implements domain.Domain.
func (Domain) Name() string { return "nless" }

// ConstValue implements domain.Interp.
func (d Domain) ConstValue(name string) (domain.Value, error) {
	return d.full.ConstValue(name)
}

// ConstName implements domain.Domain.
func (d Domain) ConstName(v domain.Value) string { return d.full.ConstName(v) }

// Func implements domain.Interp; N< has no functions.
func (Domain) Func(name string, args []domain.Value) (domain.Value, error) {
	return nil, fmt.Errorf("nless: unknown function %q", name)
}

// Pred implements domain.Interp; only < is available.
func (d Domain) Pred(name string, args []domain.Value) (bool, error) {
	if name != PredLt {
		return false, fmt.Errorf("nless: unknown predicate %q", name)
	}
	return d.full.Pred(name, args)
}

// Element implements domain.Enumerator.
func (d Domain) Element(i int) domain.Value { return d.full.Element(i) }

// CheckSignature verifies that f uses only <, =, numerals, and variables.
func CheckSignature(f *logic.Formula) error {
	var err error
	f.Walk(func(g *logic.Formula) {
		if g.Kind != logic.FAtom || err != nil {
			return
		}
		if g.Pred != logic.EqPred && g.Pred != PredLt {
			err = fmt.Errorf("nless: unknown predicate %q", g.Pred)
			return
		}
		for _, t := range g.Args {
			if t.Kind == logic.TApp {
				err = fmt.Errorf("nless: N< has no functions (term %v)", t)
			}
		}
	})
	return err
}

// Eliminator performs quantifier elimination for N< formulas, rejecting
// symbols outside the reduct before delegating to Cooper's algorithm.
type Eliminator struct{}

// Eliminate implements domain.Eliminator.
func (Eliminator) Eliminate(f *logic.Formula) (*logic.Formula, error) {
	if err := CheckSignature(f); err != nil {
		return nil, err
	}
	return presburger.Eliminator{}.Eliminate(f)
}

// Decider returns the decision procedure for N<.
type deciderT struct{}

func (deciderT) Decide(f *logic.Formula) (bool, error) {
	if err := CheckSignature(f); err != nil {
		return false, err
	}
	return presburger.Eliminator{}.Decide(f)
}

// Decider returns the decision procedure for N<.
func Decider() domain.Decider { return deciderT{} }
