package nless

import (
	"testing"

	"repro/internal/domain"
	"repro/internal/logic"
)

func lt(a, b logic.Term) *logic.Formula { return logic.Atom(PredLt, a, b) }

func TestDecide(t *testing.T) {
	x, y := logic.Var("x"), logic.Var("y")
	cases := []struct {
		f    *logic.Formula
		want bool
	}{
		{logic.Exists("x", logic.Forall("y", logic.Not(lt(y, x)))), true}, // least element
		{logic.Forall("x", logic.Exists("y", lt(x, y))), true},            // no greatest
		{logic.Exists("x", logic.And(lt(logic.Const("1"), x), lt(x, logic.Const("3")))), true},
		{logic.Exists("x", logic.And(lt(logic.Const("1"), x), lt(x, logic.Const("2")))), false},
		{lt(logic.Const("2"), logic.Const("5")), true},
	}
	for _, c := range cases {
		v, err := Decider().Decide(c.f)
		if err != nil {
			t.Fatalf("Decide(%v): %v", c.f, err)
		}
		if v != c.want {
			t.Errorf("Decide(%v) = %v, want %v", c.f, v, c.want)
		}
	}
}

func TestSignatureRestriction(t *testing.T) {
	// Addition belongs to the Presburger extension, not to N< itself.
	f := logic.Exists("x", logic.Eq(
		logic.App("add", logic.Var("x"), logic.Var("x")), logic.Const("4")))
	if _, err := Decider().Decide(f); err == nil {
		t.Errorf("function accepted in N<")
	}
	if _, err := (Eliminator{}).Eliminate(f); err == nil {
		t.Errorf("Eliminate accepted a function in N<")
	}
	g := logic.Exists("x", logic.Atom("dvd", logic.Const("2"), logic.Var("x")))
	if _, err := Decider().Decide(g); err == nil {
		t.Errorf("divisibility accepted in N<")
	}
}

func TestDomainView(t *testing.T) {
	d := Domain{}
	if d.Name() != "nless" {
		t.Errorf("name")
	}
	v, err := d.Pred(PredLt, []domain.Value{domain.Int(1), domain.Int(2)})
	if err != nil || !v {
		t.Errorf("1 < 2: %v %v", v, err)
	}
	if _, err := d.Pred("le", []domain.Value{domain.Int(1), domain.Int(2)}); err == nil {
		t.Errorf("le accepted in N<")
	}
	if _, err := d.Func("add", nil); err == nil {
		t.Errorf("function accepted")
	}
	if d.Element(2).Key() != "2" {
		t.Errorf("Element wrong")
	}
	if _, err := d.ConstValue("7"); err != nil {
		t.Errorf("numeral rejected: %v", err)
	}
	if d.ConstName(domain.Int(7)) != "7" {
		t.Errorf("ConstName wrong")
	}
}

func TestEliminateDelegates(t *testing.T) {
	f := logic.Exists("x", logic.And(
		lt(logic.Var("y"), logic.Var("x")),
		lt(logic.Var("x"), logic.Var("z"))))
	g, err := (Eliminator{}).Eliminate(f)
	if err != nil {
		t.Fatalf("Eliminate: %v", err)
	}
	if !g.QuantifierFree() {
		t.Errorf("quantifier left: %v", g)
	}
}
