// Package zless implements the integers with order — the paper's remark
// that "integers with < can be handled similarly after a minor modification
// of the finitization procedure": over ℤ a finite answer needs bounds on
// both sides, so the finitization gains a lower bound (core.FinitizeZ).
// Decidability comes from Cooper's algorithm in its native ℤ mode.
package zless

import (
	"fmt"
	"strconv"

	"repro/internal/domain"
	"repro/internal/logic"
	"repro/internal/presburger"
)

// PredLt re-exports the order predicate spelling.
const PredLt = presburger.PredLt

// Domain is ℤ with the Presburger signature. Constants are decimal
// numerals, negatives included.
type Domain struct{}

// Name implements domain.Domain.
func (Domain) Name() string { return "zless" }

// ConstValue implements domain.Interp.
func (Domain) ConstValue(name string) (domain.Value, error) {
	n, err := strconv.ParseInt(name, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("zless: constant %q is not an integer numeral", name)
	}
	return domain.Int(n), nil
}

// ConstName implements domain.Domain.
func (Domain) ConstName(v domain.Value) string { return v.Key() }

// Func implements domain.Interp: full integer arithmetic (true subtraction,
// unlike ℕ's monus).
func (Domain) Func(name string, args []domain.Value) (domain.Value, error) {
	if len(args) != 2 && !(name == presburger.FuncNeg && len(args) == 1) {
		return nil, fmt.Errorf("zless: %s arity mismatch", name)
	}
	get := func(i int) (int64, error) {
		n, ok := args[i].(domain.Int)
		if !ok {
			return 0, fmt.Errorf("zless: non-integer value %v", args[i])
		}
		return int64(n), nil
	}
	a, err := get(0)
	if err != nil {
		return nil, err
	}
	if name == presburger.FuncNeg {
		return domain.Int(-a), nil
	}
	b, err := get(1)
	if err != nil {
		return nil, err
	}
	switch name {
	case presburger.FuncAdd:
		return domain.Int(a + b), nil
	case presburger.FuncSub:
		return domain.Int(a - b), nil
	case presburger.FuncMul:
		return domain.Int(a * b), nil
	}
	return nil, fmt.Errorf("zless: unknown function %q", name)
}

// Pred implements domain.Interp.
func (Domain) Pred(name string, args []domain.Value) (bool, error) {
	if len(args) != 2 {
		return false, fmt.Errorf("zless: %s expects 2 arguments", name)
	}
	a, ok := args[0].(domain.Int)
	if !ok {
		return false, fmt.Errorf("zless: non-integer value %v", args[0])
	}
	b, ok := args[1].(domain.Int)
	if !ok {
		return false, fmt.Errorf("zless: non-integer value %v", args[1])
	}
	switch name {
	case presburger.PredLt:
		return a < b, nil
	case presburger.PredLe:
		return a <= b, nil
	case presburger.PredGt:
		return a > b, nil
	case presburger.PredGe:
		return a >= b, nil
	case presburger.PredDvd:
		if a <= 0 {
			return false, fmt.Errorf("zless: dvd modulus must be positive")
		}
		m := int64(b) % int64(a)
		return m == 0, nil
	}
	return false, fmt.Errorf("zless: unknown predicate %q", name)
}

// Element implements domain.Enumerator: 0, 1, −1, 2, −2, …
func (Domain) Element(i int) domain.Value {
	if i == 0 {
		return domain.Int(0)
	}
	half := (i + 1) / 2
	if i%2 == 1 {
		return domain.Int(int64(half))
	}
	return domain.Int(int64(-half))
}

// Eliminator returns Cooper's algorithm in ℤ mode.
func Eliminator() domain.Eliminator { return presburger.Eliminator{Integers: true} }

// Decider returns the decision procedure for (ℤ, <, +, dvd).
type deciderT struct{}

func (deciderT) Decide(f *logic.Formula) (bool, error) {
	return presburger.Eliminator{Integers: true}.Decide(f)
}

// Decider returns the ℤ decision procedure.
func Decider() domain.Decider { return deciderT{} }
