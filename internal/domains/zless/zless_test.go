package zless

import (
	"testing"

	"repro/internal/domain"
	"repro/internal/logic"
	"repro/internal/presburger"
)

func lt(a, b logic.Term) *logic.Formula { return logic.Atom(PredLt, a, b) }

func decide(t *testing.T, f *logic.Formula) bool {
	t.Helper()
	v, err := Decider().Decide(f)
	if err != nil {
		t.Fatalf("Decide(%v): %v", f, err)
	}
	return v
}

func TestDecideIntegerFacts(t *testing.T) {
	x, y := logic.Var("x"), logic.Var("y")
	cases := []struct {
		f    *logic.Formula
		want bool
	}{
		// No least or greatest element.
		{logic.Exists("x", logic.Forall("y", logic.Not(lt(y, x)))), false},
		{logic.Exists("x", logic.Forall("y", logic.Not(lt(x, y)))), false},
		// Dense failure: nothing strictly between n and n+1.
		{logic.Exists("x", logic.And(lt(logic.Const("0"), x), lt(x, logic.Const("1")))), false},
		// Negatives are real.
		{logic.Exists("x", lt(x, logic.Const("0"))), true},
		{logic.Exists("x", logic.Eq(
			logic.App(presburger.FuncAdd, x, logic.Const("5")), logic.Const("2"))), true},
		// Ground with negative numerals.
		{lt(logic.Const("-3"), logic.Const("-1")), true},
		{lt(logic.Const("-1"), logic.Const("-3")), false},
	}
	for _, c := range cases {
		if got := decide(t, c.f); got != c.want {
			t.Errorf("Decide(%v) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestDomainInterp(t *testing.T) {
	d := Domain{}
	if d.Name() != "zless" {
		t.Errorf("name")
	}
	v, err := d.ConstValue("-7")
	if err != nil || v.Key() != "-7" {
		t.Errorf("negative constant: %v %v", v, err)
	}
	got, err := d.Func(presburger.FuncSub, []domain.Value{domain.Int(2), domain.Int(5)})
	if err != nil || got.Key() != "-3" {
		t.Errorf("2-5 = %v, %v (true subtraction, not monus)", got, err)
	}
	got, err = d.Func(presburger.FuncNeg, []domain.Value{domain.Int(4)})
	if err != nil || got.Key() != "-4" {
		t.Errorf("neg: %v %v", got, err)
	}
	ok, err := d.Pred(presburger.PredDvd, []domain.Value{domain.Int(3), domain.Int(-9)})
	if err != nil || !ok {
		t.Errorf("3 | -9: %v %v", ok, err)
	}
}

func TestEnumeratorZigzag(t *testing.T) {
	d := Domain{}
	want := []string{"0", "1", "-1", "2", "-2", "3", "-3"}
	for i, w := range want {
		if got := d.Element(i).Key(); got != w {
			t.Errorf("Element(%d) = %s, want %s", i, got, w)
		}
	}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		k := d.Element(i).Key()
		if seen[k] {
			t.Fatalf("Element repeats %s", k)
		}
		seen[k] = true
	}
}

func TestDomainInterpEdgeCases(t *testing.T) {
	d := Domain{}
	if d.Name() != "zless" || d.ConstName(domain.Int(-3)) != "-3" {
		t.Errorf("name/constname")
	}
	if _, err := d.ConstValue("x"); err == nil {
		t.Errorf("bad constant accepted")
	}
	// Arity and type errors.
	if _, err := d.Func(presburger.FuncAdd, []domain.Value{domain.Int(1)}); err == nil {
		t.Errorf("arity error not caught")
	}
	if _, err := d.Func("pow", []domain.Value{domain.Int(1), domain.Int(2)}); err == nil {
		t.Errorf("unknown function accepted")
	}
	if _, err := d.Func(presburger.FuncAdd, []domain.Value{domain.Word("a"), domain.Int(2)}); err == nil {
		t.Errorf("type error not caught")
	}
	if got, err := d.Func(presburger.FuncAdd, []domain.Value{domain.Int(2), domain.Int(3)}); err != nil || got.Key() != "5" {
		t.Errorf("add: %v %v", got, err)
	}
	if got, err := d.Func(presburger.FuncMul, []domain.Value{domain.Int(-2), domain.Int(3)}); err != nil || got.Key() != "-6" {
		t.Errorf("mul: %v %v", got, err)
	}
	// Predicates.
	preds := []struct {
		p    string
		a, b int64
		want bool
	}{
		{presburger.PredLe, -2, -2, true},
		{presburger.PredGt, 0, -1, true},
		{presburger.PredGe, -5, -4, false},
	}
	for _, c := range preds {
		got, err := d.Pred(c.p, []domain.Value{domain.Int(c.a), domain.Int(c.b)})
		if err != nil || got != c.want {
			t.Errorf("%s(%d,%d) = %v %v", c.p, c.a, c.b, got, err)
		}
	}
	if _, err := d.Pred("between", []domain.Value{domain.Int(1), domain.Int(2)}); err == nil {
		t.Errorf("unknown predicate accepted")
	}
	if _, err := d.Pred(presburger.PredLt, []domain.Value{domain.Int(1)}); err == nil {
		t.Errorf("pred arity error not caught")
	}
	if _, err := d.Pred(presburger.PredDvd, []domain.Value{domain.Int(0), domain.Int(2)}); err == nil {
		t.Errorf("zero modulus accepted")
	}
	if _, err := d.Pred(presburger.PredLt, []domain.Value{domain.Word("a"), domain.Int(2)}); err == nil {
		t.Errorf("type error not caught")
	}
}

func TestEliminatorAccessor(t *testing.T) {
	e := Eliminator()
	f := logic.Exists("x", lt(logic.Var("x"), logic.Const("0")))
	g, err := e.Eliminate(f)
	if err != nil || !g.QuantifierFree() {
		t.Errorf("Eliminate: %v %v", g, err)
	}
	// Over ℤ, some x < 0 exists; the residue must be true.
	v, err := Decider().Decide(f)
	if err != nil || !v {
		t.Errorf("Decide: %v %v", v, err)
	}
}
