// Package wordlex implements the last domain Section 2 of the paper points
// at: "the same ideas can be carried out for many other domains, say, for
// strings (words in a finite alphabet) with lexicographical ordering". The
// universe is {a,b}* ordered by shortlex (length first, then
// lexicographically), which is a discrete order with least element ε —
// order-isomorphic to (ℕ, <). The decision procedure, finitization, and
// relative safety all transfer along the isomorphism: formulas are decided
// by translating their word constants to shortlex indices and delegating to
// the N< engine (Cooper's algorithm).
package wordlex

import (
	"fmt"
	"strconv"

	"repro/internal/domain"
	"repro/internal/logic"
	"repro/internal/presburger"
)

// PredLt is the shortlex order predicate.
const PredLt = presburger.PredLt

// Valid reports whether s is a word over {a,b}.
func Valid(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != 'a' && s[i] != 'b' {
			return false
		}
	}
	return true
}

// Index returns the shortlex index of a word: ε ↦ 0, a ↦ 1, b ↦ 2,
// aa ↦ 3, … — the standard bijective base-2 reading.
func Index(s string) int64 {
	var n int64
	for i := 0; i < len(s); i++ {
		d := int64(1)
		if s[i] == 'b' {
			d = 2
		}
		n = 2*n + d
	}
	return n
}

// WordAt inverts Index.
func WordAt(n int64) string {
	var buf []byte
	for n > 0 {
		rem := n % 2
		if rem == 0 {
			buf = append(buf, 'b')
			n = n/2 - 1
		} else {
			buf = append(buf, 'a')
			n = n / 2
		}
	}
	for i, j := 0, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return string(buf)
}

// Less is the shortlex order.
func Less(a, b string) bool { return Index(a) < Index(b) }

// Domain is {a,b}* with shortlex <, implementing domain.Domain and
// domain.Enumerator.
type Domain struct{}

// Name implements domain.Domain.
func (Domain) Name() string { return "wordlex" }

// ConstValue implements domain.Interp.
func (Domain) ConstValue(name string) (domain.Value, error) {
	if !Valid(name) {
		return nil, fmt.Errorf("wordlex: constant %q is not a word over {a,b}", name)
	}
	return domain.Word(name), nil
}

// ConstName implements domain.Domain.
func (Domain) ConstName(v domain.Value) string { return v.Key() }

// Func implements domain.Interp; the signature has no functions.
func (Domain) Func(name string, args []domain.Value) (domain.Value, error) {
	return nil, fmt.Errorf("wordlex: unknown function %q", name)
}

// Pred implements domain.Interp.
func (Domain) Pred(name string, args []domain.Value) (bool, error) {
	if name != PredLt || len(args) != 2 {
		return false, fmt.Errorf("wordlex: unknown predicate %s/%d", name, len(args))
	}
	a, ok := args[0].(domain.Word)
	if !ok {
		return false, fmt.Errorf("wordlex: non-word value %v", args[0])
	}
	b, ok := args[1].(domain.Word)
	if !ok {
		return false, fmt.Errorf("wordlex: non-word value %v", args[1])
	}
	return Less(string(a), string(b)), nil
}

// Element implements domain.Enumerator in shortlex order, so Element(i) is
// exactly the word with Index i — the enumeration IS the isomorphism.
func (Domain) Element(i int) domain.Value { return domain.Word(WordAt(int64(i))) }

// ToNless maps a wordlex formula to an N< formula by replacing word
// constants with their indices; variables, =, and lt pass through. It is
// the formula side of the shortlex isomorphism, used by the decision
// procedure here and by the relative-safety decider in internal/core.
func ToNless(f *logic.Formula) (*logic.Formula, error) {
	var firstErr error
	g := f.Map(func(h *logic.Formula) *logic.Formula {
		if h.Kind != logic.FAtom || firstErr != nil {
			return h
		}
		if h.Pred != logic.EqPred && h.Pred != PredLt {
			firstErr = fmt.Errorf("wordlex: unknown predicate %q", h.Pred)
			return h
		}
		args := make([]logic.Term, len(h.Args))
		for i, t := range h.Args {
			switch t.Kind {
			case logic.TVar:
				args[i] = t
			case logic.TConst:
				if !Valid(t.Name) {
					firstErr = fmt.Errorf("wordlex: constant %q is not a word over {a,b}", t.Name)
					return h
				}
				args[i] = logic.Const(strconv.FormatInt(Index(t.Name), 10))
			default:
				firstErr = fmt.Errorf("wordlex: no functions in this signature (term %v)", t)
				return h
			}
		}
		return logic.Atom(h.Pred, args...)
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return g, nil
}

// untranslate maps an N< formula back: numeral constants become words. The
// Cooper output may contain arithmetic terms; those have no wordlex
// counterpart, so untranslation is partial and Eliminate falls back to the
// numeral form when a term does not translate.
func untranslate(f *logic.Formula) (*logic.Formula, bool) {
	ok := true
	g := f.Map(func(h *logic.Formula) *logic.Formula {
		if h.Kind != logic.FAtom || !ok {
			return h
		}
		args := make([]logic.Term, len(h.Args))
		for i, t := range h.Args {
			switch t.Kind {
			case logic.TVar:
				args[i] = t
			case logic.TConst:
				n, err := strconv.ParseInt(t.Name, 10, 64)
				if err != nil || n < 0 {
					ok = false
					return h
				}
				args[i] = logic.Const(WordAt(n))
			default:
				ok = false
				return h
			}
		}
		return logic.Atom(h.Pred, args...)
	})
	return g, ok
}

// Eliminator performs quantifier elimination through the isomorphism.
type Eliminator struct{}

// Eliminate implements domain.Eliminator. The result is in the wordlex
// signature when the Cooper output happens to be term-free; otherwise the
// arithmetic residue is returned unchanged (it still decides correctly
// through Decider, which works on the N< side throughout).
func (Eliminator) Eliminate(f *logic.Formula) (*logic.Formula, error) {
	g, err := ToNless(f)
	if err != nil {
		return nil, err
	}
	qf, err := (presburger.Eliminator{}).Eliminate(g)
	if err != nil {
		return nil, err
	}
	if back, ok := untranslate(qf); ok {
		return back, nil
	}
	return qf, nil
}

// Decider decides wordlex sentences through the isomorphism.
type deciderT struct{}

func (deciderT) Decide(f *logic.Formula) (bool, error) {
	g, err := ToNless(f)
	if err != nil {
		return false, err
	}
	return presburger.Eliminator{}.Decide(g)
}

// Decider returns the decision procedure for ({a,b}*, <shortlex).
func Decider() domain.Decider { return deciderT{} }
