package wordlex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/domain"
	"repro/internal/logic"
)

func TestIndexWordAtBijection(t *testing.T) {
	// First few words in shortlex order.
	want := []string{"", "a", "b", "aa", "ab", "ba", "bb", "aaa"}
	for i, w := range want {
		if got := WordAt(int64(i)); got != w {
			t.Errorf("WordAt(%d) = %q, want %q", i, got, w)
		}
		if got := Index(w); got != int64(i) {
			t.Errorf("Index(%q) = %d, want %d", w, got, i)
		}
	}
	// Round trip by quick check.
	if err := quick.Check(func(nRaw uint16) bool {
		n := int64(nRaw)
		return Index(WordAt(n)) == n
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestLessIsShortlex(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"", "a", true},
		{"a", "b", true},
		{"b", "aa", true}, // shorter first
		{"ab", "ba", true},
		{"ba", "ab", false},
		{"a", "a", false},
	}
	for _, c := range cases {
		if got := Less(c.a, c.b); got != c.want {
			t.Errorf("Less(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func decide(t *testing.T, f *logic.Formula) bool {
	t.Helper()
	v, err := Decider().Decide(f)
	if err != nil {
		t.Fatalf("Decide(%v): %v", f, err)
	}
	return v
}

func TestDecideShortlexTheory(t *testing.T) {
	x, y := logic.Var("x"), logic.Var("y")
	lt := func(a, b logic.Term) *logic.Formula { return logic.Atom(PredLt, a, b) }
	cases := []struct {
		f    *logic.Formula
		want bool
	}{
		// ε is the least word.
		{logic.Exists("x", logic.Forall("y", logic.Not(lt(y, x)))), true},
		{logic.Forall("y", logic.Not(lt(y, logic.Const("")))), true},
		// No greatest word; discreteness: nothing between a and b.
		{logic.Forall("x", logic.Exists("y", lt(x, y))), true},
		{logic.Exists("x", logic.And(lt(logic.Const("a"), x), lt(x, logic.Const("b")))), false},
		// Exactly two words between b and ba: aa, ab.
		{logic.ExistsAll([]string{"x", "y"}, logic.And(
			logic.Neq(x, y),
			lt(logic.Const("b"), x), lt(x, logic.Const("ba")),
			lt(logic.Const("b"), y), lt(y, logic.Const("ba")))), true},
		// Ground comparisons.
		{lt(logic.Const("ab"), logic.Const("ba")), true},
		{lt(logic.Const("bb"), logic.Const("aa")), false},
	}
	for _, c := range cases {
		if got := decide(t, c.f); got != c.want {
			t.Errorf("Decide(%v) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestDecideAgainstOrderOracle(t *testing.T) {
	// Random ground sentences decided against direct comparison.
	rng := rand.New(rand.NewSource(7))
	randWord := func() string {
		n := rng.Intn(4)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(2))
		}
		return string(b)
	}
	for i := 0; i < 200; i++ {
		a, b := randWord(), randWord()
		f := logic.Atom(PredLt, logic.Const(a), logic.Const(b))
		if got := decide(t, f); got != Less(a, b) {
			t.Fatalf("Decide(lt(%q,%q)) = %v, oracle %v", a, b, got, Less(a, b))
		}
	}
}

func TestEliminate(t *testing.T) {
	// ∃x (y < x ∧ x < "ba"): solvable iff y < "ab", the immediate
	// predecessor of "ba" in shortlex order.
	f := logic.Exists("x", logic.And(
		logic.Atom(PredLt, logic.Var("y"), logic.Var("x")),
		logic.Atom(PredLt, logic.Var("x"), logic.Const("ba"))))
	g, err := (Eliminator{}).Eliminate(f)
	if err != nil {
		t.Fatalf("Eliminate: %v", err)
	}
	if !g.QuantifierFree() || g.HasFreeVar("x") {
		t.Fatalf("bad elimination: %v", g)
	}
	for w, want := range map[string]bool{"": true, "aa": true, "ab": false, "ba": false, "bb": false} {
		sentence := logic.Subst(g, "y", logic.Const(WordAt(Index(w))))
		// The eliminated formula may be in numeral form; decide on the N<
		// side by translating the substituted constant consistently.
		got, err := Decider().Decide(logic.Subst(f, "y", logic.Const(w)))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("y=%q: %v, want %v", w, got, want)
		}
		_ = sentence
	}
}

func TestDomainBasics(t *testing.T) {
	d := Domain{}
	if _, err := d.ConstValue("abc"); err == nil {
		t.Errorf("invalid word accepted")
	}
	if _, err := d.Func("f", nil); err == nil {
		t.Errorf("function accepted")
	}
	v, err := d.Pred(PredLt, []domain.Value{domain.Word("a"), domain.Word("b")})
	if err != nil || !v {
		t.Errorf("a < b: %v %v", v, err)
	}
	// Enumerator follows shortlex.
	for i := 0; i < 50; i++ {
		if Index(d.Element(i).Key()) != int64(i) {
			t.Fatalf("Element(%d) out of order", i)
		}
	}
	if _, err := Decider().Decide(logic.Atom("P", logic.Var("x"))); err == nil {
		t.Errorf("unknown predicate accepted")
	}
}
