package traces

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/domain"
	"repro/internal/logic"
	"repro/internal/turing"
)

func decide(t *testing.T, f *logic.Formula) bool {
	t.Helper()
	v, err := Decider().Decide(f)
	if err != nil {
		t.Fatalf("Decide(%v): %v", f, err)
	}
	return v
}

func TestEliminateProducesQF(t *testing.T) {
	enc := turing.Encode(turing.BusyWork(2))
	formulas := []*logic.Formula{
		logic.Exists("x", logic.Atom(PredM, logic.Var("x"))),
		logic.Forall("x", logic.Or(
			logic.Atom(PredM, logic.Var("x")), logic.Atom(PredW, logic.Var("x")),
			logic.Atom(PredT, logic.Var("x")), logic.Atom(PredO, logic.Var("x")))),
		logic.Exists("x", logic.Atom(PredP, logic.Const(enc), logic.Const("1"), logic.Var("x"))),
		logic.Exists("x", logic.And(
			logic.Atom(PredT, logic.Var("x")),
			logic.Eq(logic.App(FuncM, logic.Var("x")), logic.Var("y")))),
	}
	e := Eliminator{}
	for _, f := range formulas {
		g, err := e.Eliminate(f)
		if err != nil {
			t.Fatalf("Eliminate(%v): %v", f, err)
		}
		if !g.QuantifierFree() {
			t.Errorf("Eliminate(%v) left quantifiers: %v", f, g)
		}
	}
}

func TestDecideSortSentences(t *testing.T) {
	x := logic.Var("x")
	cases := []struct {
		f    *logic.Formula
		want bool
	}{
		{logic.Exists("x", logic.Atom(PredM, x)), true},
		{logic.Exists("x", logic.Atom(PredW, x)), true},
		{logic.Exists("x", logic.Atom(PredT, x)), true},
		{logic.Exists("x", logic.Atom(PredO, x)), true},
		// Sorts are disjoint.
		{logic.Exists("x", logic.And(logic.Atom(PredM, x), logic.Atom(PredW, x))), false},
		{logic.Exists("x", logic.And(logic.Atom(PredT, x), logic.Atom(PredO, x))), false},
		// Sorts cover the universe.
		{logic.Forall("x", logic.Or(
			logic.Atom(PredM, x), logic.Atom(PredW, x),
			logic.Atom(PredT, x), logic.Atom(PredO, x))), true},
		// The extraction functions land in W / M.
		{logic.Forall("x", logic.Atom(PredW, logic.App(FuncW, x))), true},
		{logic.Forall("x", logic.Implies(logic.Atom(PredT, x),
			logic.Atom(PredM, logic.App(FuncM, x)))), true},
		// m(x) is ε off traces, and ε is an input word, not a machine.
		{logic.Forall("x", logic.Atom(PredM, logic.App(FuncM, x))), false},
		// There are at least two distinct machines.
		{logic.ExistsAll([]string{"x", "y"}, logic.And(
			logic.Atom(PredM, x), logic.Atom(PredM, logic.Var("y")),
			logic.Neq(x, logic.Var("y")))), true},
	}
	for _, c := range cases {
		if got := decide(t, c.f); got != c.want {
			t.Errorf("Decide(%v) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestDecidePSentences(t *testing.T) {
	busy := turing.Encode(turing.BusyWork(2)) // exactly 3 traces on any input
	loop := turing.Encode(turing.LoopForever())
	x := logic.Var("x")
	pAtom := func(m, w string) *logic.Formula {
		return logic.Atom(PredP, logic.Const(m), logic.Const(w), x)
	}
	cases := []struct {
		f    *logic.Formula
		want bool
	}{
		{logic.Exists("x", pAtom(busy, "1")), true},
		{logic.Exists("x", pAtom(loop, "1")), true},
		// P requires a machine in the first slot.
		{logic.Exists("x", pAtom("11", "1")), false},
		// P requires an input word in the second slot.
		{logic.Exists("x", pAtom(busy, "1*")), false},
		// Every trace of P is in sort T.
		{logic.Forall("x", logic.Implies(pAtom(busy, "1"), logic.Atom(PredT, x))), true},
		// Traces determine their machine.
		{logic.Forall("x", logic.Implies(pAtom(busy, "1"),
			logic.Eq(logic.App(FuncM, x), logic.Const(busy)))), true},
		{logic.Forall("x", logic.Implies(pAtom(busy, "1"),
			logic.Eq(logic.App(FuncM, x), logic.Const(loop)))), false},
	}
	for _, c := range cases {
		if got := decide(t, c.f); got != c.want {
			t.Errorf("Decide(%v) = %v, want %v", c.f, got, c.want)
		}
	}
}

// TestDecideTraceCounting exercises case T-4: BusyWork(2) has exactly three
// traces on "1", so a fourth distinct trace does not exist.
func TestDecideTraceCounting(t *testing.T) {
	m := turing.BusyWork(2)
	enc := turing.Encode(m)
	all := turing.Traces(m, enc, "1", 10)
	if len(all) != 3 {
		t.Fatalf("want 3 traces, got %d", len(all))
	}
	x := logic.Var("x")
	p := logic.Atom(PredP, logic.Const(enc), logic.Const("1"), x)
	build := func(excl []string) *logic.Formula {
		conj := []*logic.Formula{p}
		for _, tr := range excl {
			conj = append(conj, logic.Neq(x, logic.Const(tr)))
		}
		return logic.Exists("x", logic.And(conj...))
	}
	if !decide(t, build(all[:2])) {
		t.Errorf("a third trace should exist beyond two exclusions")
	}
	if decide(t, build(all)) {
		t.Errorf("no fourth trace should exist")
	}
	// Excluding a non-trace word or a trace of another machine changes
	// nothing.
	other, err := turing.Trace(turing.LoopForever(), turing.Encode(turing.LoopForever()), "1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if decide(t, build(append(append([]string{}, all...), "11", other))) {
		t.Errorf("irrelevant exclusions should not create new traces")
	}
	if !decide(t, build([]string{all[0], all[1], "11", other})) {
		t.Errorf("two real exclusions still leave a trace")
	}
}

// TestDecideDiverging: a diverging machine has more traces than any finite
// exclusion list.
func TestDecideDiverging(t *testing.T) {
	m := turing.LoopForever()
	enc := turing.Encode(m)
	all := turing.Traces(m, enc, "&", 5)
	x := logic.Var("x")
	conj := []*logic.Formula{logic.Atom(PredP, logic.Const(enc), logic.Const("&"), x)}
	for _, tr := range all {
		conj = append(conj, logic.Neq(x, logic.Const(tr)))
	}
	if !decide(t, logic.Exists("x", logic.And(conj...))) {
		t.Errorf("diverging machine should always have another trace")
	}
}

func TestDecideLemmaA2Sentences(t *testing.T) {
	x := logic.Var("x")
	de := func(pred, w string) *logic.Formula {
		return logic.Atom(pred, x, logic.Const(w))
	}
	cases := []struct {
		f    *logic.Formula
		want bool
	}{
		// Compatible system.
		{logic.Exists("x", logic.And(logic.Atom(PredM, x),
			de("E2", "11"), de("D3", "1&"))), true},
		// Paper condition 1 conflict: D_3 vs E_2 sharing length-2 prefix.
		{logic.Exists("x", logic.And(logic.Atom(PredM, x),
			de("E2", "1&"), de("D3", "1&1"))), false},
		// Paper condition 2 conflict.
		{logic.Exists("x", logic.And(logic.Atom(PredM, x),
			de("E2", "11"), de("E3", "11&"))), false},
		// Without the sort atom the quantifier still works (only sort M
		// contributes).
		{logic.Exists("x", logic.And(de("E2", "11"), de("E2", "&&"))), true},
		// Negated D: machine halting before step 2 on "11" exists.
		{logic.Exists("x", logic.And(logic.Atom(PredM, x),
			logic.Not(de("D3", "11")))), true},
		// E and its negation conflict.
		{logic.Exists("x", logic.And(de("E2", "11"), logic.Not(de("E2", "11")))), false},
	}
	for _, c := range cases {
		if got := decide(t, c.f); got != c.want {
			t.Errorf("Decide(%v) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestDecideBSentences(t *testing.T) {
	x := logic.Var("x")
	b := func(s string) *logic.Formula { return logic.Atom(PredB, logic.Const(s), x) }
	cases := []struct {
		f    *logic.Formula
		want bool
	}{
		{logic.Exists("x", b("11")), true},
		// Compatible prefixes (one refines the other).
		{logic.Exists("x", logic.And(b("1"), b("1&"))), true},
		// Incompatible same-length prefixes.
		{logic.Exists("x", logic.And(b("11"), b("1&"))), false},
		// Incompatible: "1&" vs effective prefix "11…".
		{logic.Exists("x", logic.And(b("11"), b("1&&"))), false},
		// ¬B expansion: some word is in neither class… of two distinct
		// prefixes of length 2: yes (there are four classes).
		{logic.Exists("x", logic.And(logic.Atom(PredW, x),
			logic.Not(b("11")), logic.Not(b("1&")))), true},
		// But a word escapes no full partition: ¬B over both length-1
		// classes is empty.
		{logic.Exists("x", logic.And(logic.Atom(PredW, x),
			logic.Not(b("1")), logic.Not(b("&")))), false},
		// Every input word is in the B_ε class.
		{logic.Forall("x", logic.Implies(logic.Atom(PredW, x), b(""))), true},
	}
	for _, c := range cases {
		if got := decide(t, c.f); got != c.want {
			t.Errorf("Decide(%v) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestDecideMixedQuantifiers(t *testing.T) {
	x, y := logic.Var("x"), logic.Var("y")
	cases := []struct {
		f    *logic.Formula
		want bool
	}{
		// Every machine has a trace (on some input).
		{logic.Forall("x", logic.Implies(logic.Atom(PredM, x),
			logic.Exists("p", logic.And(logic.Atom(PredT, logic.Var("p")),
				logic.Eq(logic.App(FuncM, logic.Var("p")), x))))), true},
		// Every trace has an input word.
		{logic.Forall("x", logic.Implies(logic.Atom(PredT, x),
			logic.Exists("y", logic.And(logic.Atom(PredW, y),
				logic.Eq(logic.App(FuncW, x), y))))), true},
		// There is a machine tracing every input word (any machine does).
		{logic.Exists("x", logic.And(logic.Atom(PredM, x),
			logic.Forall("y", logic.Implies(logic.Atom(PredW, y),
				logic.Exists("p", logic.And(
					logic.Eq(logic.App(FuncM, logic.Var("p")), x),
					logic.Eq(logic.App(FuncW, logic.Var("p")), y),
					logic.Atom(PredT, logic.Var("p")))))))), true},
		// No input word is a trace of itself (sorts are disjoint).
		{logic.Exists("x", logic.And(logic.Atom(PredW, x), logic.Atom(PredT, x))), false},
		// For every word there is a different word.
		{logic.Forall("x", logic.Exists("y", logic.Neq(x, y))), true},
		// Some word equals every word: false.
		{logic.Exists("x", logic.Forall("y", logic.Eq(x, y))), false},
	}
	for _, c := range cases {
		if got := decide(t, c.f); got != c.want {
			t.Errorf("Decide(%v) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestDecideGroundSentences(t *testing.T) {
	busy := turing.Encode(turing.BusyWork(2))
	cases := []struct {
		f    *logic.Formula
		want bool
	}{
		{logic.Atom("E3", logic.Const(busy), logic.Const("1")), true},
		{logic.Atom("E2", logic.Const(busy), logic.Const("1")), false},
		{logic.Atom(PredM, logic.Const(busy)), true},
		{logic.Atom(PredB, logic.Const("1"), logic.Const("1&")), true},
		{logic.Eq(logic.Const("11"), logic.Const("11")), true},
		{logic.Eq(logic.Const("11"), logic.Const("1")), false},
	}
	for _, c := range cases {
		if got := decide(t, c.f); got != c.want {
			t.Errorf("Decide(%v) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestEliminateRejectsBadInput(t *testing.T) {
	e := Eliminator{}
	bad := []*logic.Formula{
		logic.Atom("Q", logic.Var("x")),                          // unknown predicate
		logic.Atom(PredM, logic.Const("abc")),                    // constant outside alphabet
		logic.Atom(PredB, logic.Var("s"), logic.Var("x")),        // non-constant B index is fine while x-free…
		logic.Eq(logic.App("f", logic.Var("x")), logic.Var("x")), // unknown function
	}
	for i, f := range bad {
		if i == 2 {
			// B with variable index is only rejected when the quantifier
			// forces specialization.
			g := logic.Exists("x", f)
			if _, err := e.Eliminate(g); err == nil {
				t.Errorf("Eliminate(%v) should fail", g)
			}
			continue
		}
		if _, err := e.Eliminate(f); err == nil {
			t.Errorf("Eliminate(%v) should fail", f)
		}
	}
}

// TestExpressB verifies the appendix's expressibility claim: the
// original-signature formula built from the reader machine agrees with the
// B predicate on concrete words.
func TestExpressB(t *testing.T) {
	prefixes := []string{"", "1", "&", "1&"}
	words := []string{"", "1", "&", "11", "1&", "&1", "1&1"}
	for _, s := range prefixes {
		f, err := ExpressB(s, "x")
		if err != nil {
			t.Fatalf("ExpressB(%q): %v", s, err)
		}
		for _, w := range words {
			sentence := logic.Subst(f, "x", logic.Const(w))
			got := decide(t, sentence)
			want := B(s, w)
			if got != want {
				t.Errorf("ExpressB(%q) on %q = %v, want %v", s, w, got, want)
			}
		}
	}
	// Non-words never satisfy the formula.
	f, err := ExpressB("1", "x")
	if err != nil {
		t.Fatal(err)
	}
	if decide(t, logic.Subst(f, "x", logic.Const("*"))) {
		t.Errorf("machines are not in any B class")
	}
	if _, err := ExpressB("1*", "x"); err == nil {
		t.Errorf("ExpressB should reject non-input prefixes")
	}
}

// TestDecideConsistency: Decide(¬φ) = ¬Decide(φ) on random sentences.
func TestDecideConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	dec := Decider()
	for i := 0; i < 60; i++ {
		f := randTraceSentence(rng, 2)
		v, err := dec.Decide(f)
		if err != nil {
			t.Fatalf("Decide(%v): %v", f, err)
		}
		nv, err := dec.Decide(logic.Not(f))
		if err != nil {
			t.Fatalf("Decide(¬%v): %v", f, err)
		}
		if v == nv {
			t.Errorf("Decide(%v) = Decide(its negation) = %v", f, v)
		}
	}
}

// TestDecideWitnessSoundness: if a brute-force search over a rich candidate
// set finds a witness for ∃x ψ(x), the decision procedure must agree; dually
// for counterexamples to ∀x ψ(x).
func TestDecideWitnessSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	dec := Decider()
	candidates := witnessCandidates()
	for i := 0; i < 120; i++ {
		body := randTraceBody(rng, 2, "x")
		found := false
		for _, c := range candidates {
			sub := logic.Subst(body, "x", logic.Const(c))
			v, err := domain.EvalQF(Domain{}, domain.Env{}, sub)
			if err != nil {
				t.Fatalf("EvalQF: %v (formula %v)", err, sub)
			}
			if v {
				found = true
				break
			}
		}
		if found {
			v, err := dec.Decide(logic.Exists("x", body))
			if err != nil {
				t.Fatalf("Decide: %v (body %v)", err, body)
			}
			if !v {
				t.Fatalf("witness exists for %v but Decide says false", body)
			}
			v, err = dec.Decide(logic.Forall("x", logic.Not(body)))
			if err != nil {
				t.Fatalf("Decide: %v", err)
			}
			if v {
				t.Fatalf("∀¬ should fail when a witness exists: %v", body)
			}
		}
	}
}

// witnessCandidates is a cross-section of the universe: short words of all
// four classes, machines from the library, and their traces.
func witnessCandidates() []string {
	out := []string{"", "1", "&", "11", "1&", "&&", "*", "|", "||", "1*", "1|"}
	machines := []*turing.Machine{
		turing.HaltImmediately(), turing.LoopForever(), turing.BusyWork(1),
		turing.BusyWork(2), turing.Successor(),
	}
	for _, m := range machines {
		enc := turing.Encode(m)
		out = append(out, enc)
		for _, w := range []string{"", "1", "1&"} {
			out = append(out, turing.Traces(m, enc, w, 2)...)
		}
	}
	return out
}

// randTraceBody generates a random quantifier-free formula over the Reach
// signature with one free variable.
func randTraceBody(rng *rand.Rand, depth int, x string) *logic.Formula {
	xt := logic.Var(x)
	busy := turing.Encode(turing.BusyWork(1))
	terms := []logic.Term{
		xt, logic.Const(""), logic.Const("1"), logic.Const(busy),
		logic.App(FuncW, xt), logic.App(FuncM, xt),
	}
	randTerm := func() logic.Term { return terms[rng.Intn(len(terms))] }
	atom := func() *logic.Formula {
		switch rng.Intn(6) {
		case 0:
			sorts := []string{PredM, PredW, PredT, PredO}
			return logic.Atom(sorts[rng.Intn(4)], randTerm())
		case 1:
			return logic.Eq(randTerm(), randTerm())
		case 2:
			prefixes := []string{"", "1", "&", "11"}
			return logic.Atom(PredB, logic.Const(prefixes[rng.Intn(4)]), randTerm())
		case 3:
			return logic.Atom(DEName(rng.Intn(2) == 0, 1+rng.Intn(3)), randTerm(), randTerm())
		default:
			return logic.Atom(PredP, randTerm(), randTerm(), randTerm())
		}
	}
	if depth == 0 {
		return atom()
	}
	switch rng.Intn(5) {
	case 0:
		return atom()
	case 1:
		return logic.Not(randTraceBody(rng, depth-1, x))
	case 2:
		return logic.And(randTraceBody(rng, depth-1, x), randTraceBody(rng, depth-1, x))
	case 3:
		return logic.Or(randTraceBody(rng, depth-1, x), randTraceBody(rng, depth-1, x))
	default:
		return logic.Implies(randTraceBody(rng, depth-1, x), randTraceBody(rng, depth-1, x))
	}
}

// randTraceSentence closes a random body under a random quantifier, possibly
// nesting two.
func randTraceSentence(rng *rand.Rand, depth int) *logic.Formula {
	inner := randTraceBody(rng, depth, "x")
	if rng.Intn(2) == 0 {
		inner = logic.And(inner, randTraceBody2(rng, depth, "x", "y"))
		if rng.Intn(2) == 0 {
			inner = logic.Exists("y", inner)
		} else {
			inner = logic.Forall("y", inner)
		}
	}
	if rng.Intn(2) == 0 {
		return logic.Exists("x", inner)
	}
	return logic.Forall("x", inner)
}

// randTraceBody2 mixes two variables.
func randTraceBody2(rng *rand.Rand, depth int, x, y string) *logic.Formula {
	atom := func() *logic.Formula {
		xt, yt := logic.Var(x), logic.Var(y)
		switch rng.Intn(4) {
		case 0:
			return logic.Eq(xt, yt)
		case 1:
			return logic.Eq(logic.App(FuncW, xt), yt)
		case 2:
			return logic.Atom(DEName(false, 1+rng.Intn(2)), xt, yt)
		default:
			return logic.Atom(PredP, xt, yt, logic.Var("x"))
		}
	}
	if depth == 0 {
		return atom()
	}
	switch rng.Intn(4) {
	case 0:
		return atom()
	case 1:
		return logic.Not(randTraceBody2(rng, depth-1, x, y))
	case 2:
		return logic.And(randTraceBody2(rng, depth-1, x, y), randTraceBody(rng, depth-1, x))
	default:
		return logic.Or(randTraceBody2(rng, depth-1, x, y), randTraceBody(rng, depth-1, y))
	}
}

func TestEnumerator(t *testing.T) {
	d := Domain{}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		w := d.Element(i).Key()
		if !ValidWord(w) {
			t.Fatalf("Element(%d) = %q outside alphabet", i, w)
		}
		if seen[w] {
			t.Fatalf("Element(%d) = %q repeated", i, w)
		}
		seen[w] = true
	}
	// Lengths are non-decreasing and the first few elements are as expected.
	if d.Element(0).Key() != "" {
		t.Errorf("Element(0) should be the empty word")
	}
	if d.Element(1).Key() != "1" || d.Element(4).Key() != "|" {
		t.Errorf("length-1 block wrong: %q … %q", d.Element(1).Key(), d.Element(4).Key())
	}
	if d.Element(5).Key() != "11" {
		t.Errorf("length-2 block starts at %q", d.Element(5).Key())
	}
}

func TestDomainInterp(t *testing.T) {
	d := Domain{}
	if _, err := d.ConstValue("abc"); err == nil {
		t.Errorf("bad constant accepted")
	}
	v, err := d.ConstValue("1&")
	if err != nil || v.Key() != "1&" {
		t.Errorf("ConstValue: %v %v", v, err)
	}
	if d.ConstName(domain.Word("1")) != "1" {
		t.Errorf("ConstName wrong")
	}
	if _, err := d.Func("w", []domain.Value{domain.Word("1"), domain.Word("1")}); err == nil {
		t.Errorf("arity error not caught")
	}
	if _, err := d.Func("q", []domain.Value{domain.Word("1")}); err == nil {
		t.Errorf("unknown function accepted")
	}
	if _, err := d.Pred("Zk", []domain.Value{domain.Word("1")}); err == nil {
		t.Errorf("unknown predicate accepted")
	}
	if _, err := d.Pred("P", []domain.Value{domain.Word("1")}); err == nil {
		t.Errorf("P arity error not caught")
	}
}

func TestParseDE(t *testing.T) {
	cases := []struct {
		name  string
		exact bool
		idx   int
		ok    bool
	}{
		{"D1", false, 1, true},
		{"E7", true, 7, true},
		{"D12", false, 12, true},
		{"D0", false, 0, false},
		{"D01", false, 0, false},
		{"D", false, 0, false},
		{"F3", false, 0, false},
		{"Dx", false, 0, false},
	}
	for _, c := range cases {
		exact, idx, ok := ParseDE(c.name)
		if ok != c.ok || (ok && (exact != c.exact || idx != c.idx)) {
			t.Errorf("ParseDE(%q) = %v %d %v", c.name, exact, idx, ok)
		}
	}
	if DEName(true, 3) != "E3" || DEName(false, 10) != "D10" {
		t.Errorf("DEName wrong")
	}
}

func TestEliminateIdempotentOnQF(t *testing.T) {
	e := Eliminator{}
	f := logic.And(
		logic.Atom(PredM, logic.Var("x")),
		logic.Atom("D2", logic.Var("x"), logic.Const("1")))
	g, err := e.Eliminate(f)
	if err != nil {
		t.Fatalf("Eliminate: %v", err)
	}
	h, err := e.Eliminate(g)
	if err != nil {
		t.Fatalf("second Eliminate: %v", err)
	}
	if !h.Equal(g) {
		t.Errorf("not idempotent: %v vs %v", g, h)
	}
}

func TestDecideErrorOnOpenFormula(t *testing.T) {
	if _, err := Decider().Decide(logic.Atom(PredM, logic.Var("x"))); err == nil {
		t.Errorf("open formula accepted")
	}
}

func ExampleDecider() {
	// "Some machine halts on input 1 after exactly one step."
	f := logic.Exists("x", logic.And(
		logic.Atom(PredM, logic.Var("x")),
		logic.Atom("E2", logic.Var("x"), logic.Const("1")),
	))
	v, _ := Decider().Decide(f)
	fmt.Println(v)
	// Output: true
}
