package traces

import (
	"testing"

	"repro/internal/logic"
)

// The decision procedure itself verifies the appendix's expressibility
// claims: each equivalence sentence ∀x̄ (symbol ↔ P-definition) is decided
// true over the whole domain. This is a doubly strong test — it confirms
// both the defining formulas and the eliminator's handling of the mixed
// sentences.

func decideTrue(t *testing.T, name string, f *logic.Formula) {
	t.Helper()
	v, err := Decider().Decide(f)
	if err != nil {
		t.Fatalf("%s: Decide: %v", name, err)
	}
	if !v {
		t.Errorf("%s: expressibility sentence decided false", name)
	}
}

func TestExpressSorts(t *testing.T) {
	x := logic.Var("x")
	decideTrue(t, "T", logic.Forall("x",
		logic.Iff(logic.Atom(PredT, x), ExpressT("x"))))
	decideTrue(t, "M", logic.Forall("x",
		logic.Iff(logic.Atom(PredM, x), ExpressM("x"))))
	decideTrue(t, "W", logic.Forall("x",
		logic.Iff(logic.Atom(PredW, x), ExpressW("x"))))
	decideTrue(t, "O", logic.Forall("x",
		logic.Iff(logic.Atom(PredO, x), ExpressO("x"))))
}

func TestExpressDE(t *testing.T) {
	m, w := logic.Var("m"), logic.Var("w")
	for _, i := range []int{1, 2} {
		dDef, err := ExpressD(i, "m", "w")
		if err != nil {
			t.Fatal(err)
		}
		decideTrue(t, DEName(false, i), logic.ForallAll([]string{"m", "w"},
			logic.Iff(logic.Atom(DEName(false, i), m, w), dDef)))
		eDef, err := ExpressE(i, "m", "w")
		if err != nil {
			t.Fatal(err)
		}
		decideTrue(t, DEName(true, i), logic.ForallAll([]string{"m", "w"},
			logic.Iff(logic.Atom(DEName(true, i), m, w), eDef)))
	}
	if _, err := ExpressD(0, "m", "w"); err == nil {
		t.Errorf("zero index accepted")
	}
	if _, err := ExpressE(0, "m", "w"); err == nil {
		t.Errorf("zero index accepted")
	}
}

func TestExpressFunctionGraphs(t *testing.T) {
	x, y := logic.Var("x"), logic.Var("y")
	decideTrue(t, "m-graph", logic.ForallAll([]string{"x", "y"},
		logic.Iff(logic.Eq(logic.App(FuncM, x), y), ExpressMGraph("x", "y"))))
	decideTrue(t, "w-graph", logic.ForallAll([]string{"x", "y"},
		logic.Iff(logic.Eq(logic.App(FuncW, x), y), ExpressWGraph("x", "y"))))
}

// TestExpressDefinitionsAreOriginalSignature: the defining formulas use
// only P and equality.
func TestExpressDefinitionsAreOriginalSignature(t *testing.T) {
	d2, err := ExpressD(2, "m", "w")
	if err != nil {
		t.Fatal(err)
	}
	formulas := []*logic.Formula{
		ExpressT("x"), ExpressM("x"), ExpressW("x"), ExpressO("x"),
		d2, ExpressMGraph("x", "y"), ExpressWGraph("x", "y"),
	}
	for _, f := range formulas {
		for _, pred := range f.Predicates() {
			if pred != PredP {
				t.Errorf("definition %v uses predicate %q outside the original signature", f, pred)
			}
		}
		f.Walk(func(g *logic.Formula) {
			if g.Kind != logic.FAtom {
				return
			}
			for _, tm := range g.Args {
				if tm.Kind == logic.TApp {
					t.Errorf("definition %v uses a function term %v", f, tm)
				}
			}
		})
	}
}
