package traces

import (
	"context"
	"fmt"

	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/turing"
)

// QE metrics: whole-pass counts, formula growth, and per-quantifier work.
var (
	mQECalls       = obs.NewCounter("qe.traces.eliminations")
	mQEQuantifiers = obs.NewCounter("qe.traces.quantifiers")
	mQEConjuncts   = obs.NewCounter("qe.traces.conjuncts")
	hQESizeIn      = obs.NewHistogram("qe.traces.size_in")
	hQESizeOut     = obs.NewHistogram("qe.traces.size_out")
)

// Eliminator implements quantifier elimination for the Reach Theory of
// Traces (Theorem A.3) and, via the pre-translation of P, for the Theory of
// Traces itself. Combined with ground evaluation over the recursive model
// (Fact A.1) it yields the decision procedure of Corollary A.4.
//
// The algorithm follows the appendix:
//
//   - eliminate innermost quantifiers first, treating ∀ as ¬∃¬;
//   - distribute ∃x over a DNF of the matrix;
//   - within a conjunct, substitute away positive equalities x = t;
//   - split the quantifier by sort: ∃x ψ ≡ ⋁_{σ ∈ {M,W,T,O}} ∃x∈σ ψ,
//     specializing every literal under the sort assumption (w(x) = m(x) = ε
//     outside T, sort atoms resolve, ill-sorted B/D/E atoms become false);
//   - rewrite negated B/D/E literals on x into positive disjunctions
//     (¬B_s is a disjunction over the other same-length prefix classes;
//     ¬D_k ≡ ⋁_{j<k} E_j and ¬E_k ≡ D_{k+1} ∨ ⋁_{j<k} E_j, with sort guards
//     on non-canonical arguments);
//   - expand D/E atoms whose word argument is not a constant over the
//     prefix classes B_u, u ∈ {1,&}^k ("Using B_v for all input words whose
//     length does not exceed the maximum of i1, …, jl");
//   - solve the residual canonical systems per sort: Lemma A.2 decides the
//     D/E systems of cases M, T-1 and T-3; case W reduces to prefix-class
//     compatibility; case T-4 emits the trace-counting formula
//     ⋁_k (exactly k of the excluded traces are traces of t in v) ∧ D_{k+1}(t,v).
//
// Inequalities against the quantified variable are dropped where the
// witness class is infinite (behaviourally equivalent machines differing in
// unreachable rules; input words padded with blanks; traces of distinct
// machines or distinct inputs), exactly as in the paper's cases.
type Eliminator struct {
	// MaxIndex bounds D/E indices accepted for prefix-class expansion;
	// the expansion is exponential in the index. 0 means DefaultMaxIndex.
	MaxIndex int
	// MaxExcluded bounds the number of x ≠ t literals in case T-4, whose
	// counting formula is combinatorial. 0 means DefaultMaxExcluded.
	MaxExcluded int
	// NoIntermediateSimplify disables the propositional simplification
	// between elimination steps. Only for the ablation benchmarks: the
	// simplifier prunes DNF clauses (dead sort branches, duplicate
	// literals) before they multiply in the next elimination.
	NoIntermediateSimplify bool

	// ctx, when set via EliminateCtx, is polled between pipeline stages and
	// before each quantifier elimination, so a request-scoped deadline can
	// abandon a run whose intermediate formulas are still multiplying.
	ctx context.Context
}

// EliminateCtx implements domain.CtxEliminator: elimination under a
// context, aborted with the context's error at the next stage or
// quantifier boundary after cancellation.
func (e Eliminator) EliminateCtx(ctx context.Context, f *logic.Formula) (*logic.Formula, error) {
	e.ctx = ctx
	return e.Eliminate(f)
}

// checkCtx reports the context's error, if a context is set and cancelled.
func (e Eliminator) checkCtx() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// simplify applies intermediate simplification unless ablated.
func (e Eliminator) simplify(f *logic.Formula) *logic.Formula {
	if e.NoIntermediateSimplify {
		return f
	}
	return logic.Simplify(f)
}

// DefaultMaxIndex is the default bound on expanded D/E indices.
const DefaultMaxIndex = 12

// DefaultMaxExcluded is the default bound on case T-4 exclusions.
const DefaultMaxExcluded = 8

func (e Eliminator) maxIndex() int {
	if e.MaxIndex > 0 {
		return e.MaxIndex
	}
	return DefaultMaxIndex
}

func (e Eliminator) maxExcluded() int {
	if e.MaxExcluded > 0 {
		return e.MaxExcluded
	}
	return DefaultMaxExcluded
}

// Eliminate implements domain.Eliminator: it returns a quantifier-free
// formula equivalent to f over T, in the Reach signature, with ground atoms
// evaluated away.
func (e Eliminator) Eliminate(f *logic.Formula) (*logic.Formula, error) {
	_, sp := obs.StartSpanCtx(e.ctx, "qe.traces.eliminate")
	defer sp.End()
	mQECalls.Inc()
	sizeIn := int64(f.Size())
	hQESizeIn.Observe(sizeIn)
	sp.Arg("size_in", sizeIn)
	if err := CheckSignature(f); err != nil {
		return nil, err
	}
	// Each stage span carries the formula size it produced, so an exported
	// trace shows which stage blew the formula up (or shrank it back).
	st := sp.Child("normalize")
	g, err := normalizeTerms(TranslateP(f))
	stageSize(st, g)
	st.End()
	if err != nil {
		return nil, err
	}
	if err := e.checkCtx(); err != nil {
		return nil, err
	}
	st = sp.Child("elim")
	g, err = e.elim(g)
	stageSize(st, g)
	st.End()
	if err != nil {
		return nil, err
	}
	if err := e.checkCtx(); err != nil {
		return nil, err
	}
	st = sp.Child("ground")
	g, err = evalGroundAtoms(g)
	stageSize(st, g)
	st.End()
	if err != nil {
		return nil, err
	}
	st = sp.Child("simplify")
	g = logic.Simplify(g)
	stageSize(st, g)
	st.End()
	sizeOut := int64(g.Size())
	hQESizeOut.Observe(sizeOut)
	sp.Arg("size_out", sizeOut)
	return g, nil
}

// stageSize records a stage's output formula size on its trace span.
func stageSize(st *obs.Span, g *logic.Formula) {
	if st.Traced() && g != nil {
		st.Arg("size", int64(g.Size()))
	}
}

func (e Eliminator) elim(f *logic.Formula) (*logic.Formula, error) {
	switch f.Kind {
	case logic.FExists:
		body, err := e.elim(f.Sub[0])
		if err != nil {
			return nil, err
		}
		return e.elimExists(f.Var, body)
	case logic.FForall:
		body, err := e.elim(f.Sub[0])
		if err != nil {
			return nil, err
		}
		inner, err := e.elimExists(f.Var, logic.Not(body))
		if err != nil {
			return nil, err
		}
		return e.simplify(logic.Not(inner)), nil
	case logic.FTrue, logic.FFalse, logic.FAtom:
		return f, nil
	default:
		sub := make([]*logic.Formula, len(f.Sub))
		for i, s := range f.Sub {
			g, err := e.elim(s)
			if err != nil {
				return nil, err
			}
			sub[i] = g
		}
		return &logic.Formula{Kind: f.Kind, Sub: sub}, nil
	}
}

// elimExists eliminates ∃x from a quantifier-free body.
func (e Eliminator) elimExists(x string, body *logic.Formula) (*logic.Formula, error) {
	if err := e.checkCtx(); err != nil {
		return nil, err
	}
	mQEQuantifiers.Inc()
	body = e.simplify(body)
	if !body.HasFreeVar(x) {
		return body, nil // the universe is nonempty
	}
	var disjuncts []*logic.Formula
	clauses := logic.DNF(body)
	mQEConjuncts.Add(int64(len(clauses)))
	for _, clause := range clauses {
		g, err := e.elimConjunct(x, clause)
		if err != nil {
			return nil, err
		}
		disjuncts = append(disjuncts, g)
	}
	return e.simplify(logic.Or(disjuncts...)), nil
}

// elimConjunct eliminates ∃x from a conjunction of literals.
func (e Eliminator) elimConjunct(x string, lits []*logic.Formula) (*logic.Formula, error) {
	// Substitute away a positive equality x = t with t free of x.
	for _, lit := range lits {
		if lit.Kind != logic.FAtom || !lit.IsEq() {
			continue
		}
		var t logic.Term
		if lit.Args[0].IsVar(x) && !lit.Args[1].HasVar(x) {
			t = lit.Args[1]
		} else if lit.Args[1].IsVar(x) && !lit.Args[0].HasVar(x) {
			t = lit.Args[0]
		} else {
			continue
		}
		out := make([]*logic.Formula, len(lits))
		for i, l := range lits {
			out[i] = logic.Subst(l, x, t)
		}
		return normalizeTerms(logic.And(out...))
	}

	var rest, xlits []*logic.Formula
	for _, lit := range lits {
		if lit.HasFreeVar(x) {
			xlits = append(xlits, lit)
		} else {
			rest = append(rest, lit)
		}
	}
	if len(xlits) == 0 {
		return logic.And(rest...), nil
	}

	var branches []*logic.Formula
	for _, sort := range []string{PredM, PredW, PredT, PredO} {
		b, err := e.elimSort(x, sort, xlits)
		if err != nil {
			return nil, err
		}
		branches = append(branches, logic.And(append([]*logic.Formula{b}, rest...)...))
	}
	return e.simplify(logic.Or(branches...)), nil
}

// elimSort eliminates ∃x∈sort from the literals mentioning x.
func (e Eliminator) elimSort(x, sort string, xlits []*logic.Formula) (*logic.Formula, error) {
	var specialized []*logic.Formula
	for _, lit := range xlits {
		g, err := e.specialize(x, sort, lit)
		if err != nil {
			return nil, err
		}
		specialized = append(specialized, g)
	}
	combined := e.simplify(logic.And(specialized...))
	var disjuncts []*logic.Formula
	for _, clause := range logic.DNF(combined) {
		g, err := e.coreSolve(x, sort, clause)
		if err != nil {
			return nil, err
		}
		disjuncts = append(disjuncts, g)
	}
	return e.simplify(logic.Or(disjuncts...)), nil
}

// epsilonize rewrites w(x) and m(x) to the empty-word constant when x is
// assumed outside T (the extraction functions are ε off traces).
func epsilonize(t logic.Term, x, sort string) logic.Term {
	if sort == PredT || t.Kind != logic.TApp {
		return t
	}
	if len(t.Args) == 1 && t.Args[0].IsVar(x) {
		return logic.Const("")
	}
	return t
}

// xShape classifies a term's relationship to the sorted variable x.
type xShape int

const (
	shapeFree xShape = iota // does not mention x
	shapeX                  // the variable x itself
	shapeWOfX               // w(x), only under sort T
	shapeMOfX               // m(x), only under sort T
)

func shapeOf(t logic.Term, x string) xShape {
	switch {
	case t.IsVar(x):
		return shapeX
	case t.Kind == logic.TApp && len(t.Args) == 1 && t.Args[0].IsVar(x):
		if t.Name == FuncW {
			return shapeWOfX
		}
		return shapeMOfX
	default:
		return shapeFree
	}
}

// boolFormula converts a truth value and a literal polarity to a formula.
func boolFormula(truth, positive bool) *logic.Formula {
	if truth == positive {
		return logic.True()
	}
	return logic.False()
}

// specialize rewrites one literal mentioning x under the assumption x ∈
// sort, producing a quantifier-free formula whose x-occurrences are in
// canonical positions only: x ≠ t, x = t (outside T), B(s, x), D/E(x, u)
// for sort M; m(x)/w(x) equalities, B(s, w(x)), D/E(m(x), u) for sort T —
// with u a constant input word — plus arbitrary x-free parts.
func (e Eliminator) specialize(x, sort string, lit *logic.Formula) (*logic.Formula, error) {
	atom, positive := logic.LiteralAtom(lit)
	args := make([]logic.Term, len(atom.Args))
	for i, a := range atom.Args {
		args[i] = epsilonize(a, x, sort)
	}

	relit := func(f *logic.Formula) *logic.Formula {
		if positive {
			return f
		}
		return logic.Not(f)
	}

	switch {
	case atom.IsEq():
		return e.specializeEq(x, sort, args[0], args[1], positive)

	case atom.Pred == PredM || atom.Pred == PredW || atom.Pred == PredT || atom.Pred == PredO:
		switch shapeOf(args[0], x) {
		case shapeX:
			return boolFormula(atom.Pred == sort, positive), nil
		case shapeWOfX: // w(x) ∈ W always (an input word or ε, and ε ∈ W)
			return boolFormula(atom.Pred == PredW, positive), nil
		case shapeMOfX: // under sort T, m(x) is a machine word
			return boolFormula(atom.Pred == PredM, positive), nil
		default:
			return relit(logic.Atom(atom.Pred, args...)), nil
		}

	case atom.Pred == PredB:
		return e.specializeB(x, sort, args, positive)

	case atom.Pred == PredP:
		return nil, fmt.Errorf("traces: internal error: P atom survived translation")

	default:
		if _, _, ok := ParseDE(atom.Pred); ok {
			return e.specializeDE(x, sort, atom.Pred, args, positive)
		}
		return nil, fmt.Errorf("traces: unknown predicate %q", atom.Pred)
	}
}

// specializeEq handles equality literals under a sort assumption.
func (e Eliminator) specializeEq(x, sort string, a, b logic.Term, positive bool) (*logic.Formula, error) {
	sa, sb := shapeOf(a, x), shapeOf(b, x)
	if sa == shapeFree && sb == shapeFree {
		f := logic.Eq(a, b)
		if !positive {
			return logic.Not(f), nil
		}
		return f, nil
	}
	if sa != shapeFree && sb != shapeFree {
		// Both sides mention x. Equal shapes are trivially equal; distinct
		// shapes live in disjoint sorts under T (x ∈ T, w(x) ∈ W,
		// m(x) ∈ M, and m(x) is never ε), so they are never equal.
		return boolFormula(sa == sb, positive), nil
	}
	// Canonical: one x-side, one free side. Orient x-side first.
	if sa == shapeFree {
		a, b = b, a
		sa = sb
	}
	xterm := a
	_ = sa
	f := logic.Eq(xterm, b)
	if !positive {
		return logic.Not(f), nil
	}
	return f, nil
}

// specializeB handles B(s, u) literals.
func (e Eliminator) specializeB(x, sort string, args []logic.Term, positive bool) (*logic.Formula, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("traces: B expects 2 arguments")
	}
	s := args[0]
	if s.Kind != logic.TConst {
		return nil, fmt.Errorf("traces: B index must be a constant word, got %v", s)
	}
	if !turing.ValidInput(s.Name) {
		// B_s is identically false for a non-input-word index.
		return boolFormula(false, positive), nil
	}
	u := args[1]
	var pos logic.Term
	switch shapeOf(u, x) {
	case shapeFree:
		f := logic.Atom(PredB, s, u)
		if !positive {
			return logic.Not(f), nil
		}
		return f, nil
	case shapeX:
		if sort != PredW {
			return boolFormula(false, positive), nil
		}
		pos = logic.Var(x)
	case shapeWOfX:
		pos = u // w(x) under sort T is an input word
	case shapeMOfX:
		return boolFormula(false, positive), nil
	}
	if positive {
		return logic.Atom(PredB, s, pos), nil
	}
	// ¬B_s(pos) with pos a guaranteed input word: the prefix classes of
	// length |s| partition W, so the negation is the disjunction of the
	// other classes.
	if len(s.Name) > e.maxIndex() {
		return nil, fmt.Errorf("traces: ¬B expansion over prefix length %d exceeds bound %d", len(s.Name), e.maxIndex())
	}
	var out []*logic.Formula
	for _, w := range inputWords(len(s.Name)) {
		if w != s.Name {
			out = append(out, logic.Atom(PredB, logic.Const(w), pos))
		}
	}
	return logic.Or(out...), nil
}

// inputWords returns all words over {1,&} of exactly length n.
func inputWords(n int) []string {
	words := []string{""}
	for i := 0; i < n; i++ {
		next := make([]string, 0, 2*len(words))
		for _, w := range words {
			next = append(next, w+"1", w+"&")
		}
		words = next
	}
	return words
}

// specializeDE handles D_k/E_k literals.
func (e Eliminator) specializeDE(x, sort, pred string, args []logic.Term, positive bool) (*logic.Formula, error) {
	exact, k, _ := ParseDE(pred)
	if len(args) != 2 {
		return nil, fmt.Errorf("traces: %s expects 2 arguments", pred)
	}
	mt, wt := args[0], args[1]

	// Resolve the machine side.
	machineCanonical := false
	switch shapeOf(mt, x) {
	case shapeX:
		if sort != PredM {
			return boolFormula(false, positive), nil
		}
		machineCanonical = true
	case shapeMOfX:
		machineCanonical = true // sort T
	case shapeWOfX:
		return boolFormula(false, positive), nil // w(x) ∈ W, not a machine
	}

	// Resolve the word side.
	wordCanonical := false
	switch shapeOf(wt, x) {
	case shapeX:
		if sort != PredW {
			return boolFormula(false, positive), nil
		}
		wordCanonical = true
	case shapeWOfX:
		wordCanonical = true // sort T
	case shapeMOfX:
		return boolFormula(false, positive), nil // m(x) ∈ M, not a word
	}

	if !machineCanonical && !wordCanonical {
		// x-free after epsilonization.
		f := logic.Atom(pred, mt, wt)
		if !positive {
			return logic.Not(f), nil
		}
		return f, nil
	}

	if positive {
		return e.positiveDE(x, exact, k, mt, wt, machineCanonical, wordCanonical)
	}

	// Negation: ¬D_k ≡ ¬M(mt) ∨ ¬W(wt) ∨ ⋁_{j<k} E_j, and
	// ¬E_k ≡ ¬M(mt) ∨ ¬W(wt) ∨ D_{k+1} ∨ ⋁_{j<k} E_j. Canonical sides are
	// correctly sorted by assumption, so their sort guards vanish.
	var parts []*logic.Formula
	if !machineCanonical {
		parts = append(parts, logic.Not(logic.Atom(PredM, mt)))
	}
	if !wordCanonical {
		parts = append(parts, logic.Not(logic.Atom(PredW, wt)))
	}
	if exact {
		g, err := e.positiveDE(x, false, k+1, mt, wt, machineCanonical, wordCanonical)
		if err != nil {
			return nil, err
		}
		parts = append(parts, g)
	}
	for j := 1; j < k; j++ {
		g, err := e.positiveDE(x, true, j, mt, wt, machineCanonical, wordCanonical)
		if err != nil {
			return nil, err
		}
		parts = append(parts, g)
	}
	return logic.Or(parts...), nil
}

// positiveDE renders a positive D/E atom in canonical form, expanding
// non-constant word arguments over the prefix classes of length k
// (a machine's halting behaviour within the first k−1 steps is determined
// by the input's effective prefix of length k).
func (e Eliminator) positiveDE(x string, exact bool, k int, mt, wt logic.Term, machineCanonical, wordCanonical bool) (*logic.Formula, error) {
	pred := DEName(exact, k)
	if wt.Kind == logic.TConst && !wordCanonical {
		return logic.Atom(pred, mt, wt), nil
	}
	// Expand the word side over prefix classes.
	if k > e.maxIndex() {
		return nil, fmt.Errorf("traces: D/E expansion with index %d exceeds bound %d", k, e.maxIndex())
	}
	var out []*logic.Formula
	for _, u := range inputWords(k) {
		out = append(out, logic.And(
			logic.Atom(PredB, logic.Const(u), wt),
			logic.Atom(pred, mt, logic.Const(u)),
		))
	}
	return logic.Or(out...), nil
}
