package traces

import (
	"fmt"

	"repro/internal/deccache"
	"repro/internal/domain"
	"repro/internal/logic"
)

// normalizeTerms canonicalizes every term of f:
//
//   - constants must be words over the alphabet;
//   - the only functions are w and m, both unary;
//   - nested applications collapse to ε ("any nested term always equals ε":
//     w and m return input words or ε off their productive sort, and
//     w(·)/m(·) of a non-trace is ε);
//   - applications to constants are evaluated.
//
// After normalization every term is a variable, a constant, or w/m applied
// to a variable.
func normalizeTerms(f *logic.Formula) (*logic.Formula, error) {
	var firstErr error
	g := f.Map(func(h *logic.Formula) *logic.Formula {
		if h.Kind != logic.FAtom {
			return h
		}
		args := make([]logic.Term, len(h.Args))
		for i, a := range h.Args {
			t, err := normTerm(a)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			args[i] = t
		}
		return &logic.Formula{Kind: logic.FAtom, Pred: h.Pred, Args: args}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return g, nil
}

func normTerm(t logic.Term) (logic.Term, error) {
	switch t.Kind {
	case logic.TVar:
		return t, nil
	case logic.TConst:
		if !ValidWord(t.Name) {
			return t, fmt.Errorf("traces: constant %q is not a word over %q", t.Name, Alphabet)
		}
		return t, nil
	case logic.TApp:
		if (t.Name != FuncW && t.Name != FuncM) || len(t.Args) != 1 {
			return t, fmt.Errorf("traces: unknown function %s/%d", t.Name, len(t.Args))
		}
		arg, err := normTerm(t.Args[0])
		if err != nil {
			return t, err
		}
		switch arg.Kind {
		case logic.TApp:
			// w(w(y)), m(w(y)), … : the inner value is an input word,
			// machine word, or ε — never a trace — so the outer
			// application is ε.
			return logic.Const(""), nil
		case logic.TConst:
			if t.Name == FuncW {
				return logic.Const(WOf(arg.Name)), nil
			}
			return logic.Const(MOf(arg.Name)), nil
		default:
			return logic.Term{Kind: logic.TApp, Name: t.Name, Args: []logic.Term{arg}}, nil
		}
	}
	return t, fmt.Errorf("traces: bad term kind %d", t.Kind)
}

// CheckSignature verifies that every predicate and function symbol of f is
// in the Reach signature with the right arity.
func CheckSignature(f *logic.Formula) error {
	var err error
	f.Walk(func(g *logic.Formula) {
		if g.Kind != logic.FAtom || err != nil {
			return
		}
		arity := -1
		switch g.Pred {
		case logic.EqPred, PredB:
			arity = 2
		case PredP:
			arity = 3
		case PredM, PredW, PredT, PredO:
			arity = 1
		default:
			if _, _, ok := ParseDE(g.Pred); ok {
				arity = 2
			}
		}
		if arity < 0 {
			err = fmt.Errorf("traces: unknown predicate %q", g.Pred)
			return
		}
		if len(g.Args) != arity {
			err = fmt.Errorf("traces: predicate %s expects %d arguments, got %d", g.Pred, arity, len(g.Args))
		}
	})
	return err
}

// evalGroundAtoms replaces every ground atom of f with its truth value in
// the recursive model (Fact A.1). Together with quantifier elimination this
// yields the decision procedure of Corollary A.4.
func evalGroundAtoms(f *logic.Formula) (*logic.Formula, error) {
	var firstErr error
	g := f.Map(func(h *logic.Formula) *logic.Formula {
		if h.Kind != logic.FAtom || firstErr != nil {
			return h
		}
		for _, a := range h.Args {
			if !a.Ground() {
				return h
			}
		}
		v, err := domain.EvalQF(Domain{}, domain.Env{}, h)
		if err != nil {
			firstErr = err
			return h
		}
		if v {
			return logic.True()
		}
		return logic.False()
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return logic.Simplify(g), nil
}

// Decider returns the decision procedure for the (Reach) Theory of Traces,
// memoized behind a bounded decision cache (a no-op pass-through when
// caching is disabled; see internal/deccache).
func Decider() domain.Decider {
	return deccache.WrapDomain("traces", domain.QEDecider{Elim: Eliminator{}, Interp: Domain{}}, deccache.DefaultCapacity)
}
