package traces

import (
	"fmt"

	"repro/internal/turing"
)

// Lemma A.2: satisfiability of a conjunction of trace-count constraints
//
//	D_{i1}(x, v1) ∧ … ∧ D_{ik}(x, vk) ∧ E_{j1}(x, u1) ∧ … ∧ E_{jl}(x, ul)
//
// over a single existentially quantified machine x and constant input words.
// Whether a machine halts after exactly j−1 steps on a word is determined by
// the word's first j cells: the j−1 executed steps read cells 0…j−2, and the
// halt check after the last step reads the cell under the head, which can be
// cell j−1. Cells beyond a word's end read as blanks. Hence the system is
// satisfiable iff no pair of constraints conflicts on effective prefixes:
//
//  1. an E_j(u) together with a D_i(v) where i > j and
//     EffPrefix(v, j) = EffPrefix(u, j), and
//  2. two constraints E_jr(ur), E_jq(uq) with jr > jq and
//     EffPrefix(ur, jq) = EffPrefix(uq, jq).
//
// This is exactly the paper's condition ("the prefixes of vr and uq of
// length jq coincide"), with effective prefixes standing in for the paper's
// side requirement that all words be longer than all the counts. Both
// directions are executable: Satisfiable implements the criterion, and
// Witness builds the finite-automaton machine of the proof — an edge-trie
// walker that halts on reading the final character of a designated prefix —
// so tests can cross-validate the criterion against real simulations.

// Constraint is one trace-count requirement on the sought machine.
type Constraint struct {
	// Exact selects E (exactly Count traces) over D (at least Count).
	Exact bool
	// Count is the trace count i of D_i/E_i; must be positive.
	Count int
	// Word is the constant input word.
	Word string
}

// String implements fmt.Stringer.
func (c Constraint) String() string {
	letter := "D"
	if c.Exact {
		letter = "E"
	}
	return fmt.Sprintf("%s_%d(x, %q)", letter, c.Count, c.Word)
}

// Conflict explains why a system is unsatisfiable.
type Conflict struct {
	A, B Constraint
}

// Error implements error.
func (c *Conflict) Error() string {
	return fmt.Sprintf("traces: constraints %v and %v conflict on a shared effective prefix", c.A, c.B)
}

// System is a conjunction of constraints.
type System []Constraint

// Validate checks counts and words.
func (s System) Validate() error {
	for _, c := range s {
		if c.Count < 1 {
			return fmt.Errorf("traces: constraint %v has non-positive count", c)
		}
		if !turing.ValidInput(c.Word) {
			return fmt.Errorf("traces: constraint %v has invalid input word", c)
		}
	}
	return nil
}

// Satisfiable decides whether some machine satisfies every constraint,
// returning the offending pair when not.
func (s System) Satisfiable() (bool, *Conflict) {
	for _, e := range s {
		if !e.Exact {
			continue
		}
		// Halting after Count−1 steps is determined by the first Count cells.
		p := turing.EffPrefix(e.Word, e.Count)
		for _, o := range s {
			if o.Count > e.Count && turing.EffPrefix(o.Word, e.Count) == p {
				conflict := &Conflict{A: o, B: e}
				return false, conflict
			}
		}
	}
	return true, nil
}

// Witness constructs a machine satisfying the system: the proof's trie
// automaton, which sweeps right and halts after exactly |p| steps on every
// input whose effective prefix is a designated halt prefix p, and diverges
// otherwise. It fails exactly when Satisfiable is false.
func (s System) Witness() (*turing.Machine, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if ok, conflict := s.Satisfiable(); !ok {
		return nil, conflict
	}
	var prefixes []string
	seen := map[string]bool{}
	for _, c := range s {
		if !c.Exact {
			continue
		}
		p := turing.EffPrefix(c.Word, c.Count)
		if !seen[p] {
			seen[p] = true
			prefixes = append(prefixes, p)
		}
	}
	return turing.EdgeTrie(prefixes)
}

// Check verifies by simulation that machine word m satisfies every
// constraint of the system.
func (s System) Check(m string) (bool, error) {
	if err := s.Validate(); err != nil {
		return false, err
	}
	for _, c := range s {
		var ok bool
		if c.Exact {
			ok = E(c.Count, m, c.Word)
		} else {
			ok = D(c.Count, m, c.Word)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}
