package traces

import (
	"fmt"

	"repro/internal/logic"
)

// The appendix asserts that all the Reach-signature symbols "are expressible
// by first-order formulas of the original signature" — the original
// signature being P and equality alone. This file constructs those defining
// formulas. Tests close the loop in the strongest possible way: the
// equivalence sentences ∀x̄ (symbol(x̄) ↔ definition(x̄)) are handed to the
// decision procedure, which confirms each one over the whole domain.
//
// (ExpressB in domain.go covers the only case the appendix calls
// nontrivial, via the reader machine; the definitions here are the routine
// ones.)

// ExpressT returns the original-signature definition of the trace sort:
// T(x) ⟺ ∃u ∃v P(u, v, x).
func ExpressT(x string) *logic.Formula {
	u := x + "_u"
	v := x + "_v"
	return logic.ExistsAll([]string{u, v},
		logic.Atom(PredP, logic.Var(u), logic.Var(v), logic.Var(x)))
}

// ExpressM returns the machine-sort definition: M(x) ⟺ ∃w ∃p P(x, w, p) —
// every machine has a trace on some word, and only machines do.
func ExpressM(x string) *logic.Formula {
	w := x + "_w"
	p := x + "_p"
	return logic.ExistsAll([]string{w, p},
		logic.Atom(PredP, logic.Var(x), logic.Var(w), logic.Var(p)))
}

// ExpressW returns the input-word-sort definition:
// W(x) ⟺ ∃m ∃p P(m, x, p).
func ExpressW(x string) *logic.Formula {
	m := x + "_m"
	p := x + "_p"
	return logic.ExistsAll([]string{m, p},
		logic.Atom(PredP, logic.Var(m), logic.Var(x), logic.Var(p)))
}

// ExpressO returns the other-sort definition: none of the above.
func ExpressO(x string) *logic.Formula {
	return logic.And(
		logic.Not(ExpressM(x)),
		logic.Not(ExpressW(x)),
		logic.Not(ExpressT(x)))
}

// ExpressD returns the definition of D_i(m, w): at least i pairwise
// distinct traces of m in w.
func ExpressD(i int, m, w string) (*logic.Formula, error) {
	if i < 1 {
		return nil, fmt.Errorf("traces: D index %d must be positive", i)
	}
	vars := make([]string, i)
	var conj []*logic.Formula
	for k := 0; k < i; k++ {
		vars[k] = fmt.Sprintf("%s_%s_p%d", m, w, k)
		conj = append(conj, logic.Atom(PredP, logic.Var(m), logic.Var(w), logic.Var(vars[k])))
		for j := 0; j < k; j++ {
			conj = append(conj, logic.Neq(logic.Var(vars[k]), logic.Var(vars[j])))
		}
	}
	return logic.ExistsAll(vars, logic.And(conj...)), nil
}

// ExpressE returns the definition of E_i(m, w): exactly i traces —
// D_i ∧ ¬D_{i+1}.
func ExpressE(i int, m, w string) (*logic.Formula, error) {
	atLeast, err := ExpressD(i, m, w)
	if err != nil {
		return nil, err
	}
	more, err := ExpressD(i+1, m, w)
	if err != nil {
		return nil, err
	}
	return logic.And(atLeast, logic.Not(more)), nil
}

// ExpressMGraph returns the definition of the graph of the extraction
// function m: m(x) = y ⟺ (∃w P(y, w, x)) ∨ (¬T(x) ∧ y = ε).
func ExpressMGraph(x, y string) *logic.Formula {
	w := x + "_gw"
	return logic.Or(
		logic.Exists(w, logic.Atom(PredP, logic.Var(y), logic.Var(w), logic.Var(x))),
		logic.And(logic.Not(ExpressT(x)), logic.Eq(logic.Var(y), logic.Const(""))))
}

// ExpressWGraph returns the definition of the graph of the extraction
// function w: w(x) = y ⟺ (∃m P(m, y, x)) ∨ (¬T(x) ∧ y = ε).
func ExpressWGraph(x, y string) *logic.Formula {
	m := x + "_gm"
	return logic.Or(
		logic.Exists(m, logic.Atom(PredP, logic.Var(m), logic.Var(y), logic.Var(x))),
		logic.And(logic.Not(ExpressT(x)), logic.Eq(logic.Var(y), logic.Const(""))))
}
