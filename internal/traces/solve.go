package traces

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/turing"
)

// coreSolve eliminates ∃x∈sort from a conjunction of canonical literals (the
// output of specialize after re-DNF). It implements the appendix's cases M,
// W, T-1…T-4, and O.
func (e Eliminator) coreSolve(x, sort string, lits []*logic.Formula) (*logic.Formula, error) {
	c, err := e.collect(x, sort, lits)
	if err != nil {
		return nil, err
	}
	if c == nil {
		return logic.False(), nil
	}

	// A positive x = t outside sort T: substitute and assert the sort.
	if len(c.eqX) > 0 {
		t := c.eqX[0]
		out := []*logic.Formula{logic.Atom(sort, t)}
		for _, lit := range lits {
			out = append(out, logic.Subst(lit, x, t))
		}
		return normalizeTerms(logic.And(out...))
	}

	switch sort {
	case PredM:
		// Case M: Lemma A.2 decides the D/E system; inequalities are
		// dodged among the infinitely many behaviourally equivalent
		// machines.
		if ok, _ := c.system.Satisfiable(); !ok {
			return logic.False(), nil
		}
		return logic.And(c.rest...), nil

	case PredW:
		// Case W: positive B atoms must agree on a common refinement;
		// the class is infinite (blank padding), so inequalities dodge.
		if _, ok := mergePrefixes(c.bPrefixes); !ok {
			return logic.False(), nil
		}
		return logic.And(c.rest...), nil

	case PredO:
		// Case O: only inequalities can mention x, and there are
		// infinitely many "other" words.
		return logic.And(c.rest...), nil

	case PredT:
		return e.solveTrace(x, c)
	}
	return nil, fmt.Errorf("traces: unknown sort %q", sort)
}

// canonical is the collected constraint view of a conjunct for one sort.
type canonical struct {
	rest      []*logic.Formula // x-free conjuncts
	eqX       []logic.Term     // x = t (outside sort T)
	neqX      []logic.Term     // x ≠ t
	eqM       []logic.Term     // m(x) = t (sort T)
	neqM      []logic.Term     // m(x) ≠ t
	eqW       []logic.Term     // w(x) = t (sort T)
	neqW      []logic.Term     // w(x) ≠ t
	bPrefixes []string         // B(s, x) or B(s, w(x))
	system    System           // D/E constraints on x (sort M) or m(x) (sort T)
}

// collect sorts a conjunct's literals into canonical buckets. It returns
// nil (without error) when a literal is statically false under the sort.
func (e Eliminator) collect(x, sort string, lits []*logic.Formula) (*canonical, error) {
	c := &canonical{}
	for _, lit := range lits {
		if lit.Kind == logic.FTrue {
			continue
		}
		if lit.Kind == logic.FFalse {
			return nil, nil
		}
		if !lit.HasFreeVar(x) {
			c.rest = append(c.rest, lit)
			continue
		}
		atom, positive := logic.LiteralAtom(lit)
		switch {
		case atom.IsEq():
			a, b := atom.Args[0], atom.Args[1]
			if shapeOf(a, x) == shapeFree {
				a, b = b, a
			}
			switch shapeOf(a, x) {
			case shapeX:
				if positive {
					if sort == PredT {
						return nil, fmt.Errorf("traces: internal error: positive x = t under sort T")
					}
					c.eqX = append(c.eqX, b)
				} else {
					c.neqX = append(c.neqX, b)
				}
			case shapeMOfX:
				if positive {
					c.eqM = append(c.eqM, b)
				} else {
					c.neqM = append(c.neqM, b)
				}
			case shapeWOfX:
				if positive {
					c.eqW = append(c.eqW, b)
				} else {
					c.neqW = append(c.neqW, b)
				}
			default:
				return nil, fmt.Errorf("traces: internal error: non-canonical equality %v", lit)
			}
		case atom.Pred == PredB:
			if !positive {
				return nil, fmt.Errorf("traces: internal error: negative B literal survived specialization")
			}
			s := atom.Args[0]
			if s.Kind != logic.TConst || !turing.ValidInput(s.Name) {
				return nil, fmt.Errorf("traces: internal error: bad B index %v", s)
			}
			c.bPrefixes = append(c.bPrefixes, s.Name)
		default:
			exact, k, ok := ParseDE(atom.Pred)
			if !ok {
				return nil, fmt.Errorf("traces: internal error: unexpected canonical literal %v", lit)
			}
			if !positive {
				return nil, fmt.Errorf("traces: internal error: negative D/E literal survived specialization")
			}
			wt := atom.Args[1]
			if wt.Kind != logic.TConst {
				return nil, fmt.Errorf("traces: internal error: non-constant D/E word %v", lit)
			}
			if !turing.ValidInput(wt.Name) {
				return nil, nil // D/E on a non-input-word constant is false
			}
			c.system = append(c.system, Constraint{Exact: exact, Count: k, Word: wt.Name})
		}
	}
	return c, nil
}

// mergePrefixes reconciles positive B constraints: all prefixes must agree
// with the longest one on their effective overlap.
func mergePrefixes(prefixes []string) (string, bool) {
	longest := ""
	for _, s := range prefixes {
		if len(s) > len(longest) {
			longest = s
		}
	}
	for _, s := range prefixes {
		if turing.EffPrefix(longest, len(s)) != s {
			return "", false
		}
	}
	return longest, true
}

// solveTrace implements cases T-1 to T-4.
func (e Eliminator) solveTrace(x string, c *canonical) (*logic.Formula, error) {
	if _, ok := mergePrefixes(c.bPrefixes); !ok {
		return logic.False(), nil
	}
	out := append([]*logic.Formula(nil), c.rest...)

	// Multiple m(x)/w(x) equalities collapse to the first plus x-free
	// equalities between the terms.
	var mTerm, wTerm *logic.Term
	if len(c.eqM) > 0 {
		mTerm = &c.eqM[0]
		for _, t := range c.eqM[1:] {
			out = append(out, logic.Eq(*mTerm, t))
		}
	}
	if len(c.eqW) > 0 {
		wTerm = &c.eqW[0]
		for _, t := range c.eqW[1:] {
			out = append(out, logic.Eq(*wTerm, t))
		}
	}

	switch {
	case mTerm != nil && wTerm != nil:
		// Case T-4: the machine and input are fixed terms; substituting
		// them makes every remaining constraint x-free except x ≠ p_i,
		// which the counting formula below absorbs.
		for _, t := range c.neqM {
			out = append(out, logic.Neq(*mTerm, t))
		}
		for _, t := range c.neqW {
			out = append(out, logic.Neq(*wTerm, t))
		}
		for _, s := range c.bPrefixes {
			out = append(out, logic.Atom(PredB, logic.Const(s), *wTerm))
		}
		for _, con := range c.system {
			out = append(out, logic.Atom(DEName(con.Exact, con.Count), *mTerm, logic.Const(con.Word)))
		}
		count, err := e.countingFormula(*mTerm, *wTerm, c.neqX)
		if err != nil {
			return nil, err
		}
		out = append(out, count)
		return normalizeTerms(logic.And(out...))

	case mTerm != nil:
		// Case T-2: machine fixed; inputs (and hence traces) vary over an
		// infinite class, so all inequalities dodge.
		for _, t := range c.neqM {
			out = append(out, logic.Neq(*mTerm, t))
		}
		for _, con := range c.system {
			out = append(out, logic.Atom(DEName(con.Exact, con.Count), *mTerm, logic.Const(con.Word)))
		}
		out = append(out, logic.Atom(PredM, *mTerm))
		return normalizeTerms(logic.And(out...))

	case wTerm != nil:
		// Case T-3: input fixed; Lemma A.2 decides the machine system and
		// machines vary infinitely, dodging all inequalities.
		if ok, _ := c.system.Satisfiable(); !ok {
			return logic.False(), nil
		}
		for _, t := range c.neqW {
			out = append(out, logic.Neq(*wTerm, t))
		}
		for _, s := range c.bPrefixes {
			out = append(out, logic.Atom(PredB, logic.Const(s), *wTerm))
		}
		out = append(out, logic.Atom(PredW, *wTerm))
		return normalizeTerms(logic.And(out...))

	default:
		// Case T-1: both machine and input vary; satisfiability reduces to
		// the D/E system.
		if ok, _ := c.system.Satisfiable(); !ok {
			return logic.False(), nil
		}
		return logic.And(out...), nil
	}
}

// countingFormula renders ∃x (x is a trace of t in v ∧ x ≠ p_1 ∧ … ∧ x ≠ p_n)
// as a quantifier-free formula: the number of traces of t in v exceeds the
// number of distinct p_i that are themselves traces of t in v —
//
//	⋁_{k=0..n} (exactly k of the p_i are distinct traces of t in v) ∧ D_{k+1}(t, v).
//
// Terms p_i that can never be traces (w(·)/m(·) applications, or constants
// outside class T) drop out of the count, since x ≠ p_i then holds for any
// trace x.
func (e Eliminator) countingFormula(t, v logic.Term, excluded []logic.Term) (*logic.Formula, error) {
	var ps []logic.Term
	for _, p := range excluded {
		switch p.Kind {
		case logic.TApp:
			continue // w(y)/m(y) is never a trace
		case logic.TConst:
			if Classify(p.Name) != ClassTrace {
				continue
			}
		}
		ps = append(ps, p)
	}
	n := len(ps)
	if n > e.maxExcluded() {
		return nil, fmt.Errorf("traces: case T-4 with %d exclusions exceeds bound %d", n, e.maxExcluded())
	}

	// valid_i: p_i is a trace of t in v.
	valid := make([]*logic.Formula, n)
	for i, p := range ps {
		if p.Kind == logic.TConst {
			valid[i] = logic.And(
				logic.Eq(logic.Const(MOf(p.Name)), t),
				logic.Eq(logic.Const(WOf(p.Name)), v),
			)
			continue
		}
		valid[i] = logic.And(
			logic.Atom(PredT, p),
			logic.Eq(logic.App(FuncM, p), t),
			logic.Eq(logic.App(FuncW, p), v),
		)
	}

	// atLeast(k): some k of the p_i are valid and pairwise distinct.
	atLeast := func(k int) *logic.Formula {
		if k == 0 {
			return logic.True()
		}
		var opts []*logic.Formula
		subsets(n, k, func(idx []int) {
			var conj []*logic.Formula
			for _, i := range idx {
				conj = append(conj, valid[i])
			}
			for a := 0; a < len(idx); a++ {
				for b := a + 1; b < len(idx); b++ {
					conj = append(conj, logic.Neq(ps[idx[a]], ps[idx[b]]))
				}
			}
			opts = append(opts, logic.And(conj...))
		})
		return logic.Or(opts...)
	}

	var cases []*logic.Formula
	for k := 0; k <= n; k++ {
		parts := []*logic.Formula{atLeast(k)}
		if k < n {
			parts = append(parts, logic.Not(atLeast(k+1)))
		}
		parts = append(parts, logic.Atom(DEName(false, k+1), t, v))
		cases = append(cases, logic.And(parts...))
	}
	return logic.Simplify(logic.Or(cases...)), nil
}

// subsets calls visit with every size-k subset of {0..n-1}.
func subsets(n, k int, visit func([]int)) {
	idx := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			visit(append([]int(nil), idx[:k]...))
			return
		}
		for i := start; i < n; i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}
