package traces

import (
	"math/rand"
	"testing"

	"repro/internal/turing"
)

func TestSystemValidate(t *testing.T) {
	if err := (System{{Exact: true, Count: 2, Word: "11"}}).Validate(); err != nil {
		t.Errorf("valid system rejected: %v", err)
	}
	if err := (System{{Count: 0, Word: "1"}}).Validate(); err == nil {
		t.Errorf("zero count accepted")
	}
	if err := (System{{Count: 1, Word: "1*"}}).Validate(); err == nil {
		t.Errorf("bad word accepted")
	}
}

func TestSatisfiableExamples(t *testing.T) {
	cases := []struct {
		sys  System
		want bool
	}{
		// Empty system: any machine.
		{System{}, true},
		// Pure D systems are always satisfiable (a diverging machine).
		{System{{Count: 7, Word: "1"}, {Count: 3, Word: "&&"}}, true},
		// Single E.
		{System{{Exact: true, Count: 2, Word: "11"}}, true},
		// D_3 and E_2 whose length-2 prefixes differ: satisfiable.
		{System{
			{Count: 3, Word: "11"},
			{Exact: true, Count: 2, Word: "1&"},
		}, true},
		// Paper condition 1: D_i and E_j, i > j, shared prefix of length j.
		{System{
			{Count: 3, Word: "1&1"},
			{Exact: true, Count: 2, Word: "1&"},
		}, false},
		// D_i with i ≤ j on the same prefix is fine.
		{System{
			{Count: 2, Word: "1&1"},
			{Exact: true, Count: 2, Word: "1&"},
		}, true},
		// Condition 2: two E's with different counts, shared shorter prefix.
		{System{
			{Exact: true, Count: 2, Word: "11"},
			{Exact: true, Count: 3, Word: "11&"},
		}, false},
		// Two E's, same count, different words of that length: fine.
		{System{
			{Exact: true, Count: 2, Word: "11"},
			{Exact: true, Count: 2, Word: "1&"},
		}, true},
		// Same word, different exact counts: contradiction.
		{System{
			{Exact: true, Count: 2, Word: "11"},
			{Exact: true, Count: 4, Word: "11"},
		}, false},
		// Duplicate constraints: fine.
		{System{
			{Exact: true, Count: 2, Word: "11"},
			{Exact: true, Count: 2, Word: "11"},
		}, true},
		// Effective prefixes: "1" pads to "1&", conflicting with E_2("1&").
		{System{
			{Count: 5, Word: "1"},
			{Exact: true, Count: 2, Word: "1&"},
		}, false},
	}
	for i, c := range cases {
		got, conflict := c.sys.Satisfiable()
		if got != c.want {
			t.Errorf("case %d %v: Satisfiable = %v (conflict %v), want %v", i, c.sys, got, conflict, c.want)
		}
		if !got && conflict == nil {
			t.Errorf("case %d: unsatisfiable without conflict explanation", i)
		}
	}
}

// Case 3 above is actually satisfiable ("11" vs "1&" differ at position 1),
// so assert it separately the right way around.
func TestSatisfiableDifferentPrefixes(t *testing.T) {
	sys := System{
		{Count: 3, Word: "11"},
		{Exact: true, Count: 2, Word: "1&"},
	}
	ok, _ := sys.Satisfiable()
	if !ok {
		t.Fatalf("system with distinct length-2 prefixes should be satisfiable")
	}
	m, err := sys.Witness()
	if err != nil {
		t.Fatalf("Witness: %v", err)
	}
	holds, err := sys.Check(turing.Encode(m))
	if err != nil || !holds {
		t.Errorf("witness does not satisfy system: %v %v", holds, err)
	}
}

func TestWitnessSatisfiesSystem(t *testing.T) {
	systems := []System{
		{},
		{{Count: 4, Word: "111"}},
		{{Exact: true, Count: 1, Word: ""}},
		{{Exact: true, Count: 3, Word: "1&1"}},
		{{Exact: true, Count: 2, Word: "11"}, {Exact: true, Count: 2, Word: "&&"}},
		{{Count: 2, Word: "&1"}, {Exact: true, Count: 3, Word: "111"}},
		{{Count: 3, Word: "111"}, {Exact: true, Count: 3, Word: "1&&"},
			{Exact: true, Count: 1, Word: "&"}},
	}
	for i, sys := range systems {
		m, err := sys.Witness()
		if err != nil {
			t.Errorf("system %d %v: Witness failed: %v", i, sys, err)
			continue
		}
		holds, err := sys.Check(turing.Encode(m))
		if err != nil {
			t.Errorf("system %d: Check error: %v", i, err)
			continue
		}
		if !holds {
			t.Errorf("system %d %v: witness %v does not satisfy it", i, sys, m)
		}
	}
}

func TestWitnessFailsOnConflict(t *testing.T) {
	sys := System{
		{Exact: true, Count: 2, Word: "11"},
		{Exact: true, Count: 3, Word: "11&"},
	}
	if _, err := sys.Witness(); err == nil {
		t.Errorf("Witness should fail on unsatisfiable system")
	}
	var conflict *Conflict
	ok, conflict := func() (bool, *Conflict) { return sys.Satisfiable() }()
	if ok || conflict == nil || conflict.Error() == "" {
		t.Errorf("expected explained conflict")
	}
}

// TestLemmaA2CrossValidation is the executable content of Lemma A.2: for
// random constraint systems, the syntactic criterion agrees with semantic
// satisfiability. When the criterion says yes, the constructed witness is
// simulated and checked; when it says no, a brute-force search over a family
// of candidate machines (edge-tries over all relevant prefix sets, plus the
// diverging machine) finds no satisfying machine — the criterion's proof
// shows edge-tries are exhaustive up to behavioural equivalence on the
// constrained prefixes.
func TestLemmaA2CrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	randWord := func() string {
		n := rng.Intn(4)
		b := make([]byte, n)
		for i := range b {
			if rng.Intn(2) == 0 {
				b[i] = '1'
			} else {
				b[i] = '&'
			}
		}
		return string(b)
	}
	for iter := 0; iter < 300; iter++ {
		var sys System
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			sys = append(sys, Constraint{
				Exact: rng.Intn(2) == 0,
				Count: 1 + rng.Intn(3),
				Word:  randWord(),
			})
		}
		ok, _ := sys.Satisfiable()
		if ok {
			m, err := sys.Witness()
			if err != nil {
				t.Fatalf("satisfiable system %v: witness failed: %v", sys, err)
			}
			holds, err := sys.Check(turing.Encode(m))
			if err != nil || !holds {
				t.Fatalf("satisfiable system %v: witness %v fails (err %v)", sys, m, err)
			}
			continue
		}
		// Criterion says unsatisfiable: every candidate machine must violate
		// some constraint. Candidates: all edge-tries over subsets of the
		// E-constraints' halt prefixes (skipping prefix-conflicting subsets),
		// the diverging machine, and machines halting at each small step
		// count uniformly.
		var candidates []*turing.Machine
		candidates = append(candidates, turing.LoopForever())
		for k := 0; k <= 3; k++ {
			candidates = append(candidates, turing.BusyWork(k))
		}
		var prefixes []string
		for _, c := range sys {
			if c.Exact {
				prefixes = append(prefixes, turing.EffPrefix(c.Word, c.Count))
			}
		}
		for mask := 1; mask < 1<<len(prefixes); mask++ {
			var subset []string
			for i, p := range prefixes {
				if mask&(1<<i) != 0 {
					subset = append(subset, p)
				}
			}
			if m, err := turing.EdgeTrie(subset); err == nil {
				candidates = append(candidates, m)
			}
		}
		for _, m := range candidates {
			holds, err := sys.Check(turing.Encode(m))
			if err != nil {
				t.Fatalf("check error: %v", err)
			}
			if holds {
				t.Fatalf("criterion said unsatisfiable but %v satisfies %v", m, sys)
			}
		}
	}
}

func TestEdgeTrieStepCounts(t *testing.T) {
	m, err := turing.EdgeTrie([]string{"11", "1&&", "&"})
	if err != nil {
		t.Fatalf("EdgeTrie: %v", err)
	}
	cases := []struct {
		input string
		steps int // -1 = diverges
	}{
		{"11", 1},   // halts reading second char
		{"111", 1},  // same prefix
		{"1&&", 2},  // halts reading third char
		{"1&", 2},   // pads to 1&&
		{"1", 2},    // pads to 1&&
		{"&", 0},    // halts reading first char
		{"", 0},     // pads to &
		{"&111", 0}, // prefix & matches
	}
	for _, c := range cases {
		steps, halted := turing.StepsToHalt(m, c.input, 1000)
		if c.steps < 0 {
			if halted {
				t.Errorf("EdgeTrie on %q should diverge", c.input)
			}
			continue
		}
		if !halted || steps != c.steps {
			t.Errorf("EdgeTrie on %q: steps=%d halted=%v, want %d", c.input, steps, halted, c.steps)
		}
	}
}

func TestEdgeTrieRejects(t *testing.T) {
	if _, err := turing.EdgeTrie([]string{""}); err == nil {
		t.Errorf("empty prefix accepted")
	}
	if _, err := turing.EdgeTrie([]string{"1", "11"}); err == nil {
		t.Errorf("proper-prefix conflict accepted")
	}
	if _, err := turing.EdgeTrie([]string{"1", "1"}); err != nil {
		t.Errorf("duplicates should be fine: %v", err)
	}
	if _, err := turing.EdgeTrie([]string{"x"}); err == nil {
		t.Errorf("bad alphabet accepted")
	}
}

func TestConstraintString(t *testing.T) {
	d := Constraint{Count: 2, Word: "1"}
	e := Constraint{Exact: true, Count: 3, Word: "&"}
	if d.String() != `D_2(x, "1")` || e.String() != `E_3(x, "&")` {
		t.Errorf("strings: %q %q", d.String(), e.String())
	}
}
