package traces

import (
	"fmt"
	"strconv"

	"repro/internal/domain"
	"repro/internal/logic"
	"repro/internal/turing"
)

// Signature conventions for formulas over T and its Reach enrichment:
//
//   - every word over {1,&,*,|} is a constant, named by itself;
//   - the original signature has the single ternary predicate "P";
//   - the Reach signature adds the unary sort predicates "M", "W", "T", "O",
//     the binary padded-prefix family B_s written "B"(s, x) with s a
//     constant, the trace-count families D_i and E_i written "D<i>"(m, w)
//     and "E<i>"(m, w) (index in the predicate name, e.g. D3), and the unary
//     extraction functions "w" and "m".
//
// FuncW, FuncM and the sort predicate names below are the canonical symbol
// spellings.
const (
	PredP = "P"
	PredB = "B"
	PredM = "M"
	PredW = "W"
	PredT = "T"
	PredO = "O"
	FuncW = "w"
	FuncM = "m"
)

// ParseDE recognizes the D_i/E_i predicate family: name is "D<i>" or "E<i>"
// with i a positive decimal index.
func ParseDE(name string) (exact bool, index int, ok bool) {
	if len(name) < 2 {
		return false, 0, false
	}
	switch name[0] {
	case 'D':
		exact = false
	case 'E':
		exact = true
	default:
		return false, 0, false
	}
	n, err := strconv.Atoi(name[1:])
	if err != nil || n < 1 || (name[1] == '0') {
		return false, 0, false
	}
	return exact, n, true
}

// DEName renders a D/E predicate symbol.
func DEName(exact bool, index int) string {
	letter := "D"
	if exact {
		letter = "E"
	}
	return letter + strconv.Itoa(index)
}

// ParserOptions returns the parser configuration for formulas over T:
// w and m are functions, all other identifiers are variables or predicates.
func ParserOptions() map[string]bool {
	return map[string]bool{FuncW: true, FuncM: true}
}

// Domain is the paper's domain T with the Reach Theory signature. It
// implements domain.Domain and domain.Enumerator; the Eliminator in qe.go
// and the derived Decider complete the picture.
type Domain struct{}

// Name implements domain.Domain.
func (Domain) Name() string { return "traces" }

// ConstValue implements domain.Interp: constants denote themselves.
func (Domain) ConstValue(name string) (domain.Value, error) {
	if !ValidWord(name) {
		return nil, fmt.Errorf("traces: constant %q is not a word over %q", name, Alphabet)
	}
	return domain.Word(name), nil
}

// ConstName implements domain.Domain.
func (Domain) ConstName(v domain.Value) string { return v.Key() }

// Func implements domain.Interp: the extraction functions w and m.
func (Domain) Func(name string, args []domain.Value) (domain.Value, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("traces: function %s expects 1 argument, got %d", name, len(args))
	}
	arg, ok := args[0].(domain.Word)
	if !ok {
		return nil, fmt.Errorf("traces: function %s on non-word value %v", name, args[0])
	}
	switch name {
	case FuncW:
		return domain.Word(WOf(string(arg))), nil
	case FuncM:
		return domain.Word(MOf(string(arg))), nil
	}
	return nil, fmt.Errorf("traces: unknown function %q", name)
}

// Pred implements domain.Interp for P, the sorts, B, and the D/E families.
func (Domain) Pred(name string, args []domain.Value) (bool, error) {
	words := make([]string, len(args))
	for i, a := range args {
		w, ok := a.(domain.Word)
		if !ok {
			return false, fmt.Errorf("traces: predicate %s on non-word value %v", name, a)
		}
		words[i] = string(w)
	}
	switch name {
	case PredP:
		if len(words) != 3 {
			return false, fmt.Errorf("traces: P expects 3 arguments, got %d", len(words))
		}
		return P(words[0], words[1], words[2]), nil
	case PredM, PredW, PredT, PredO:
		if len(words) != 1 {
			return false, fmt.Errorf("traces: %s expects 1 argument, got %d", name, len(words))
		}
		want := map[string]Class{PredM: ClassMachine, PredW: ClassInput, PredT: ClassTrace, PredO: ClassOther}[name]
		return Classify(words[0]) == want, nil
	case PredB:
		if len(words) != 2 {
			return false, fmt.Errorf("traces: B expects 2 arguments, got %d", len(words))
		}
		return B(words[0], words[1]), nil
	}
	if exact, idx, ok := ParseDE(name); ok {
		if len(words) != 2 {
			return false, fmt.Errorf("traces: %s expects 2 arguments, got %d", name, len(words))
		}
		if exact {
			return E(idx, words[0], words[1]), nil
		}
		return D(idx, words[0], words[1]), nil
	}
	return false, fmt.Errorf("traces: unknown predicate %q", name)
}

// Element implements domain.Enumerator: words in length-lexicographic order
// over the alphabet, Element(0) = ε.
func (Domain) Element(i int) domain.Value {
	if i == 0 {
		return domain.Word("")
	}
	// Lengths contribute 4^n words each; find the length block.
	n := 1
	block := 4
	rem := i - 1
	for rem >= block {
		rem -= block
		n++
		block *= 4
	}
	buf := make([]byte, n)
	for pos := n - 1; pos >= 0; pos-- {
		buf[pos] = Alphabet[rem%4]
		rem /= 4
	}
	return domain.Word(string(buf))
}

// TranslateP rewrites every P(a, b, c) atom into the Reach signature:
// T(c) ∧ m(c) = a ∧ w(c) = b. This realizes the appendix's claim that "the
// predicate P of the Theory of Traces is first-order expressible using the
// new signature".
func TranslateP(f *logic.Formula) *logic.Formula {
	return f.Map(func(g *logic.Formula) *logic.Formula {
		if g.Kind != logic.FAtom || g.Pred != PredP || len(g.Args) != 3 {
			return g
		}
		a, b, c := g.Args[0], g.Args[1], g.Args[2]
		return logic.And(
			logic.Atom(PredT, c),
			logic.Eq(logic.App(FuncM, c), a),
			logic.Eq(logic.App(FuncW, c), b),
		)
	})
}

// ExpressB returns the original-signature formula asserting B_s(x), per the
// appendix: a constant machine that reads s and then loops (halting if the
// read fails) has at least |s| different traces on x — rendered here with
// the machine constructed concretely and the assertion D_{|s|}(M_s, x),
// stated via P and counting distinct traces. For |s| = 0 the formula is
// W-membership of x, which B_ε means.
//
// The returned formula has one free variable, x, and uses only P and =.
// It is exercised by tests as a cross-check that B is first-order
// expressible in the original theory, completing the appendix's
// expressibility claim.
func ExpressB(s string, x string) (*logic.Formula, error) {
	mach, err := readThenLoopWord(s)
	if err != nil {
		return nil, err
	}
	// "M_s has at least |s|+1 traces in x": there exist |s|+1 pairwise
	// distinct traces of M_s on x. (With our counting, the reader machine
	// halts after j steps at the first mismatch at position j; it survives
	// |s| steps — i.e. has ≥ |s|+1 traces — iff x effectively starts
	// with s.)
	n := len(s) + 1
	vars := make([]string, n)
	var conj []*logic.Formula
	for i := 0; i < n; i++ {
		vars[i] = fmt.Sprintf("t%d", i)
		conj = append(conj, logic.Atom(PredP,
			logic.Const(mach), logic.Var(x), logic.Var(vars[i])))
		for j := 0; j < i; j++ {
			conj = append(conj, logic.Neq(logic.Var(vars[i]), logic.Var(vars[j])))
		}
	}
	return logic.ExistsAll(vars, logic.And(conj...)), nil
}

// readThenLoopWord builds and encodes the reader machine for ExpressB.
func readThenLoopWord(s string) (string, error) {
	if !turing.ValidInput(s) {
		return "", fmt.Errorf("traces: %q is not an input word", s)
	}
	m, err := turing.ReadThenLoop(s)
	if err != nil {
		return "", err
	}
	return turing.Encode(m), nil
}
