package traces

import (
	"testing"

	"repro/internal/turing"
)

func TestValidWord(t *testing.T) {
	if !ValidWord("") || !ValidWord("1&*|") {
		t.Errorf("valid words rejected")
	}
	if ValidWord("a") || ValidWord("1 1") {
		t.Errorf("invalid words accepted")
	}
}

func TestClassify(t *testing.T) {
	loop := turing.Encode(turing.LoopForever())
	trace, err := turing.Trace(turing.LoopForever(), loop, "1", 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		word string
		want Class
	}{
		{"", ClassInput},
		{"1&1", ClassInput},
		{"&&", ClassInput},
		{loop, ClassMachine},
		{"*", ClassMachine}, // zero-rule machine
		{trace, ClassTrace},
		{"111*111", ClassOther},  // delimiter but malformed machine
		{"|", ClassOther},        // separator but not a trace
		{loop + "|", ClassOther}, // machine prefix, no snapshots
		{"1*|", ClassOther},      // mixed garbage
	}
	for _, c := range cases {
		if got := Classify(c.word); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.word, got, c.want)
		}
	}
}

func TestClassifyPanicsOutsideAlphabet(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	Classify("abc")
}

func TestClassesDisjointAndCovering(t *testing.T) {
	// Enumerate all words up to length 4 plus a few real machines/traces and
	// check each lands in exactly one class (Classify is a function, so this
	// mostly documents coverage of the interesting shapes).
	words := allWordsUpTo(4)
	counts := map[Class]int{}
	for _, w := range words {
		counts[Classify(w)]++
	}
	if counts[ClassInput] == 0 || counts[ClassOther] == 0 {
		t.Errorf("expected inputs and others among short words: %v", counts)
	}
	// Machines exist at length 10+ only; "*" is the shortest.
	if Classify("*") != ClassMachine {
		t.Errorf("* should be a machine")
	}
}

func allWordsUpTo(n int) []string {
	words := []string{""}
	frontier := []string{""}
	for i := 0; i < n; i++ {
		var next []string
		for _, w := range frontier {
			for _, c := range Alphabet {
				next = append(next, w+string(c))
			}
		}
		words = append(words, next...)
		frontier = next
	}
	return words
}

func TestWOfMOf(t *testing.T) {
	m := turing.BusyWork(2)
	enc := turing.Encode(m)
	tr, err := turing.Trace(m, enc, "1&", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := WOf(tr); got != "1&" {
		t.Errorf("WOf = %q", got)
	}
	if got := MOf(tr); got != enc {
		t.Errorf("MOf = %q", got)
	}
	// Non-traces map to the empty word.
	for _, w := range []string{"", "11", enc, "|"} {
		if WOf(w) != "" || MOf(w) != "" {
			t.Errorf("w/m of non-trace %q should be empty", w)
		}
	}
}

func TestP(t *testing.T) {
	m := turing.BusyWork(3)
	enc := turing.Encode(m)
	other := turing.Encode(turing.LoopForever())
	traces := turing.Traces(m, enc, "11", 100)
	if len(traces) != 4 {
		t.Fatalf("expected 4 traces, got %d", len(traces))
	}
	for _, tr := range traces {
		if !P(enc, "11", tr) {
			t.Errorf("P should hold for genuine trace %q", tr)
		}
		if P(other, "11", tr) {
			t.Errorf("P should reject wrong machine")
		}
		if P(enc, "1", tr) {
			t.Errorf("P should reject wrong input")
		}
	}
	if P(enc, "11", "garbage|") {
		t.Errorf("P should reject non-trace")
	}
}

func TestB(t *testing.T) {
	cases := []struct {
		s, x string
		want bool
	}{
		{"", "", true},
		{"", "1&", true},
		{"1", "1&", true},
		{"1&", "1", true}, // padded prefix: "1" ~ "1&&&…"
		{"1&&", "1", true},
		{"11", "1", false},
		{"1", "&1", false},
		{"&&", "", true},
		{"1*", "1", false}, // s outside input alphabet
		{"1", "1*", false}, // x outside input alphabet
	}
	for _, c := range cases {
		if got := B(c.s, c.x); got != c.want {
			t.Errorf("B(%q,%q) = %v, want %v", c.s, c.x, got, c.want)
		}
	}
}

func TestBPartitionsByLength(t *testing.T) {
	// For each word x and length L, exactly one u ∈ {1,&}^L has B(u, x):
	// the effective prefix. This is what makes the appendix's expansion a
	// partition.
	inputs := []string{"", "1", "&", "11&", "&&&&", "1&1&1"}
	for _, x := range inputs {
		for L := 0; L <= 4; L++ {
			count := 0
			for _, u := range inputWordsOfLength(L) {
				if B(u, x) {
					count++
					if u != turing.EffPrefix(x, L) {
						t.Errorf("B(%q,%q) holds but is not the effective prefix", u, x)
					}
				}
			}
			if count != 1 {
				t.Errorf("x=%q L=%d: %d matching classes, want 1", x, L, count)
			}
		}
	}
}

func inputWordsOfLength(n int) []string {
	words := []string{""}
	for i := 0; i < n; i++ {
		var next []string
		for _, w := range words {
			next = append(next, w+"1", w+"&")
		}
		words = next
	}
	return words
}

func TestDE(t *testing.T) {
	busy := turing.Encode(turing.BusyWork(3)) // halts after 3 steps: 4 traces
	loop := turing.Encode(turing.LoopForever())
	for i := 1; i <= 4; i++ {
		if !D(i, busy, "1") {
			t.Errorf("D_%d should hold for 4-trace machine", i)
		}
	}
	if D(5, busy, "1") {
		t.Errorf("D_5 should fail for 4-trace machine")
	}
	if !E(4, busy, "1") {
		t.Errorf("E_4 should hold")
	}
	for _, i := range []int{1, 2, 3, 5, 6} {
		if E(i, busy, "1") {
			t.Errorf("E_%d should fail", i)
		}
	}
	// Diverging machine: all D hold, no E holds.
	for _, i := range []int{1, 5, 50} {
		if !D(i, loop, "&&") {
			t.Errorf("D_%d should hold for diverging machine", i)
		}
		if E(i, loop, "&&") {
			t.Errorf("E_%d should fail for diverging machine", i)
		}
	}
	// Ill-sorted arguments.
	if D(1, "not-a-machine", "1") || D(1, busy, "1*") || E(1, "11", "1") {
		t.Errorf("D/E should reject ill-sorted arguments")
	}
}

func TestDEConsistentWithTraceCount(t *testing.T) {
	// D_i ⟺ at least i traces, E_i ⟺ exactly i traces, checked against the
	// actual trace family.
	machines := []*turing.Machine{
		turing.HaltImmediately(), turing.BusyWork(1), turing.BusyWork(5),
		turing.Successor(), turing.EraseAndHalt(),
	}
	inputs := []string{"", "1", "11", "&1", "111&"}
	for _, m := range machines {
		enc := turing.Encode(m)
		for _, w := range inputs {
			all := turing.Traces(m, enc, w, 100)
			n := len(all) // machines above all halt well within 100 steps
			for i := 1; i <= n+2; i++ {
				if got := D(i, enc, w); got != (i <= n) {
					t.Errorf("D_%d(%v, %q) = %v with %d traces", i, m, w, got, n)
				}
				if got := E(i, enc, w); got != (i == n) {
					t.Errorf("E_%d(%v, %q) = %v with %d traces", i, m, w, got, n)
				}
			}
		}
	}
}

func TestDEPanicOnBadIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	D(0, "*", "")
}

func TestClassStringAndParserOptions(t *testing.T) {
	if ClassInput.String() != "W" || ClassMachine.String() != "M" ||
		ClassTrace.String() != "T" || ClassOther.String() != "O" {
		t.Errorf("class strings wrong")
	}
	if Class(99).String() == "" {
		t.Errorf("unknown class should still render")
	}
	opts := ParserOptions()
	if !opts[FuncW] || !opts[FuncM] {
		t.Errorf("parser options missing extraction functions")
	}
	if (Domain{}).Name() != "traces" {
		t.Errorf("domain name")
	}
}
