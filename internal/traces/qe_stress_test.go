package traces

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/turing"
)

// These tests drive the quantifier-elimination cases that interact in
// subtle ways: T-4 counting with variable exclusions, D/E atoms with both
// arguments depending on the quantified trace, shared machines across
// nested quantifiers, and universally quantified input words.

func TestStressVariableExclusionCounting(t *testing.T) {
	// ∀p (P(M, w, p) → ∃x (P(M, w, x) ∧ x ≠ p)) ⟺ M has ≥ 2 traces on w.
	build := func(machineWord, w string) *logic.Formula {
		p, x := logic.Var("p"), logic.Var("x")
		return logic.Forall("p", logic.Implies(
			logic.Atom(PredP, logic.Const(machineWord), logic.Const(w), p),
			logic.Exists("x", logic.And(
				logic.Atom(PredP, logic.Const(machineWord), logic.Const(w), x),
				logic.Neq(x, p)))))
	}
	busy := turing.Encode(turing.BusyWork(2))       // 3 traces on every input
	halt := turing.Encode(turing.HaltImmediately()) // exactly 1 trace
	loop := turing.Encode(turing.LoopForever())     // infinitely many
	if !decide(t, build(busy, "1")) {
		t.Errorf("3-trace machine: a second distinct trace always exists")
	}
	if decide(t, build(halt, "1")) {
		t.Errorf("1-trace machine: no second trace exists")
	}
	if !decide(t, build(loop, "1")) {
		t.Errorf("diverging machine: infinitely many traces")
	}
}

func TestStressSharedMachineAcrossQuantifiers(t *testing.T) {
	p, q := logic.Var("p"), logic.Var("q")
	// Two distinct traces of the same machine exist.
	f := logic.ExistsAll([]string{"p", "q"}, logic.And(
		logic.Atom(PredT, p), logic.Atom(PredT, q),
		logic.Eq(logic.App(FuncM, p), logic.App(FuncM, q)),
		logic.Neq(p, q)))
	if !decide(t, f) {
		t.Errorf("distinct traces of one machine exist")
	}
	// Even with the same input word (a diverging machine provides them).
	g := logic.ExistsAll([]string{"p", "q"}, logic.And(
		logic.Atom(PredT, p), logic.Atom(PredT, q),
		logic.Eq(logic.App(FuncM, p), logic.App(FuncM, q)),
		logic.Eq(logic.App(FuncW, p), logic.App(FuncW, q)),
		logic.Neq(p, q)))
	if !decide(t, g) {
		t.Errorf("distinct same-input traces exist")
	}
}

func TestStressEveryWordIsTraced(t *testing.T) {
	// ∀y (W(y) → ∃x (T(x) ∧ w(x) = y)): every input word is the input of
	// some trace — case T-3 with a variable input.
	f := logic.Forall("y", logic.Implies(
		logic.Atom(PredW, logic.Var("y")),
		logic.Exists("x", logic.And(
			logic.Atom(PredT, logic.Var("x")),
			logic.Eq(logic.App(FuncW, logic.Var("x")), logic.Var("y"))))))
	if !decide(t, f) {
		t.Errorf("every input word is traced")
	}
	// The machine version, case T-2 with a variable machine.
	g := logic.Forall("y", logic.Implies(
		logic.Atom(PredM, logic.Var("y")),
		logic.Exists("x", logic.And(
			logic.Atom(PredT, logic.Var("x")),
			logic.Eq(logic.App(FuncM, logic.Var("x")), logic.Var("y"))))))
	if !decide(t, g) {
		t.Errorf("every machine is traced")
	}
	// And the converse fails: not every word is a machine of a trace.
	h := logic.Forall("y", logic.Implies(
		logic.Atom(PredW, logic.Var("y")),
		logic.Exists("x", logic.And(
			logic.Atom(PredT, logic.Var("x")),
			logic.Eq(logic.App(FuncM, logic.Var("x")), logic.Var("y"))))))
	if decide(t, h) {
		t.Errorf("input words are not machines")
	}
}

func TestStressSelfReferentialDE(t *testing.T) {
	x := logic.Var("x")
	// ∃x (T(x) ∧ E2(m(x), w(x))): a trace whose machine halts on the
	// trace's own input in exactly one step. (Both D/E arguments depend on
	// x; the word side expands over the B classes.)
	f := logic.Exists("x", logic.And(
		logic.Atom(PredT, x),
		logic.Atom("E2", logic.App(FuncM, x), logic.App(FuncW, x))))
	if !decide(t, f) {
		t.Errorf("a one-step-halting trace exists")
	}
	// ¬D1(m(x), w(x)) is impossible for a trace: D1 means only "machine
	// and word are well-sorted", which a trace guarantees.
	g := logic.Exists("x", logic.And(
		logic.Atom(PredT, x),
		logic.Not(logic.Atom("D1", logic.App(FuncM, x), logic.App(FuncW, x)))))
	if decide(t, g) {
		t.Errorf("D1 holds for every trace's machine and input")
	}
	h := logic.Forall("x", logic.Implies(
		logic.Atom(PredT, x),
		logic.Atom("D1", logic.App(FuncM, x), logic.App(FuncW, x))))
	if !decide(t, h) {
		t.Errorf("universal D1 over traces")
	}
}

func TestStressBConstrainedTrace(t *testing.T) {
	x := logic.Var("x")
	// A trace of a machine halting in exactly two steps on an input
	// starting with "11" exists (EdgeTrie provides the machine).
	f := logic.Exists("x", logic.And(
		logic.Atom(PredT, x),
		logic.Atom(PredB, logic.Const("11"), logic.App(FuncW, x)),
		logic.Atom("E3", logic.App(FuncM, x), logic.App(FuncW, x))))
	if !decide(t, f) {
		t.Errorf("B-constrained halting trace exists")
	}
	// But not with contradictory B constraints.
	g := logic.Exists("x", logic.And(
		logic.Atom(PredT, x),
		logic.Atom(PredB, logic.Const("11"), logic.App(FuncW, x)),
		logic.Atom(PredB, logic.Const("&&"), logic.App(FuncW, x))))
	if decide(t, g) {
		t.Errorf("incompatible prefixes accepted")
	}
}

func TestStressFourQuantifiers(t *testing.T) {
	// ∀y∀z (W(y) ∧ W(z) ∧ y ≠ z → ∃p∃q (m(p) = m(q) ∧ w(p) = y ∧
	// w(q) = z ∧ T(p) ∧ T(q) ∧ p ≠ q)): one machine traces any two distinct
	// words with distinct traces.
	y, z, p, q := logic.Var("y"), logic.Var("z"), logic.Var("p"), logic.Var("q")
	f := logic.ForallAll([]string{"y", "z"}, logic.Implies(
		logic.And(logic.Atom(PredW, y), logic.Atom(PredW, z), logic.Neq(y, z)),
		logic.ExistsAll([]string{"p", "q"}, logic.And(
			logic.Atom(PredT, p), logic.Atom(PredT, q),
			logic.Eq(logic.App(FuncM, p), logic.App(FuncM, q)),
			logic.Eq(logic.App(FuncW, p), y),
			logic.Eq(logic.App(FuncW, q), z),
			logic.Neq(p, q)))))
	if !decide(t, f) {
		t.Errorf("pairwise tracing by one machine")
	}
}

func TestStressExactTraceCountSentences(t *testing.T) {
	// For each k, BusyWork(k) has exactly k+1 traces on "1": expressed
	// without D/E, purely by counting distinct witnesses.
	for _, k := range []int{0, 1, 2} {
		enc := turing.Encode(turing.BusyWork(k))
		atom := func(v string) *logic.Formula {
			return logic.Atom(PredP, logic.Const(enc), logic.Const("1"), logic.Var(v))
		}
		// At least k+1 distinct traces.
		vars := make([]string, k+1)
		var conj []*logic.Formula
		for i := range vars {
			vars[i] = logic.FreshVar("t", nil) + string(rune('a'+i))
			conj = append(conj, atom(vars[i]))
			for j := 0; j < i; j++ {
				conj = append(conj, logic.Neq(logic.Var(vars[i]), logic.Var(vars[j])))
			}
		}
		atLeast := logic.ExistsAll(vars, logic.And(conj...))
		if !decide(t, atLeast) {
			t.Errorf("BusyWork(%d) should have at least %d traces", k, k+1)
		}
		// Not k+2.
		extra := "textra"
		conj2 := append([]*logic.Formula{}, conj...)
		conj2 = append(conj2, atom(extra))
		for _, v := range vars {
			conj2 = append(conj2, logic.Neq(logic.Var(extra), logic.Var(v)))
		}
		atLeastMore := logic.ExistsAll(append(append([]string{}, vars...), extra), logic.And(conj2...))
		if decide(t, atLeastMore) {
			t.Errorf("BusyWork(%d) should not have %d traces", k, k+2)
		}
	}
}

func TestStressOtherSortInteraction(t *testing.T) {
	x, y := logic.Var("x"), logic.Var("y")
	// "Other" words exist, are not traced, and have ε extractions.
	f := logic.Exists("x", logic.And(
		logic.Atom(PredO, x),
		logic.Eq(logic.App(FuncW, x), logic.Const("")),
		logic.Eq(logic.App(FuncM, x), logic.Const(""))))
	if !decide(t, f) {
		t.Errorf("other words have empty extractions")
	}
	// No other word equals a trace.
	g := logic.ExistsAll([]string{"x", "y"}, logic.And(
		logic.Atom(PredO, x), logic.Atom(PredT, y), logic.Eq(x, y)))
	if decide(t, g) {
		t.Errorf("sorts are disjoint")
	}
}
