// Package traces implements the paper's Section 3 domain T — the "theory of
// traces" — and its Appendix: the four-letter word universe, the ternary
// predicate P, the enriched Reach Theory of Traces signature (sorts M, W, T,
// O; prefix predicates B_w; trace-count predicates D_i and E_i; extraction
// functions w and m), the Lemma A.2 satisfiability criterion with explicit
// witness machines, quantifier elimination (Theorem A.3), and the resulting
// decision procedure (Corollary A.4).
package traces

import (
	"fmt"
	"strings"

	"repro/internal/turing"
)

// Alphabet is the four-letter alphabet of the domain T. The paper's trace
// separator '⋆' is rendered '|'.
const Alphabet = "1&*|"

// ValidWord reports whether s is a word over the domain alphabet. Every
// such word, including the empty word, is an element of T's universe.
func ValidWord(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '1', '&', '*', '|':
		default:
			return false
		}
	}
	return true
}

// Class is the sort of a word: the four classes are pairwise disjoint and
// cover the universe ("the machines, the input words, and the traces, all
// being written in different alphabets, do not intersect").
type Class int

const (
	// ClassInput is W: words over {1,&}, including the empty word.
	ClassInput Class = iota
	// ClassMachine is M: well-formed machine encodings over {1,&,*}.
	ClassMachine
	// ClassTrace is T: traces of some machine on some input word.
	ClassTrace
	// ClassOther is O: everything else.
	ClassOther
)

// String implements fmt.Stringer, using the paper's letters.
func (c Class) String() string {
	switch c {
	case ClassInput:
		return "W"
	case ClassMachine:
		return "M"
	case ClassTrace:
		return "T"
	case ClassOther:
		return "O"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Classify returns the sort of a word. It panics on words outside the
// alphabet; validate with ValidWord first.
func Classify(word string) Class {
	if !ValidWord(word) {
		panic(fmt.Sprintf("traces: word %q outside alphabet", word))
	}
	hasSep := strings.IndexByte(word, turing.Separator) >= 0
	hasDelim := strings.IndexByte(word, turing.Delimiter) >= 0
	switch {
	case hasSep:
		if turing.IsTraceWord(word) {
			return ClassTrace
		}
		return ClassOther
	case hasDelim:
		if turing.IsMachineWord(word) {
			return ClassMachine
		}
		return ClassOther
	default:
		return ClassInput
	}
}

// WOf is the extraction function w: the input word of a trace, the empty
// word otherwise.
func WOf(word string) string {
	if p, err := turing.ParseTrace(word); err == nil {
		return p.Input
	}
	return ""
}

// MOf is the extraction function m: the machine word of a trace, the empty
// word otherwise.
func MOf(word string) string {
	if p, err := turing.ParseTrace(word); err == nil {
		return p.MachineWord
	}
	return ""
}

// P is the domain's only original predicate: P(m, w, p) holds iff m is a
// machine word, w an input word, p a trace, and p is a trace of m in w.
func P(m, w, p string) bool {
	parsed, err := turing.ParseTrace(p)
	if err != nil {
		return false
	}
	return parsed.MachineWord == m && parsed.Input == w
}

// B is the padded-prefix predicate family: B(s, x) holds iff s and x are
// input words and x effectively starts with s — x starts with s, or s is x
// extended by blanks. Trailing blanks never affect a computation, which is
// what makes B the right class decomposition for the appendix's expansion
// of D/E atoms with non-constant word arguments.
func B(s, x string) bool {
	if !turing.ValidInput(s) || !turing.ValidInput(x) {
		return false
	}
	return turing.EffPrefix(x, len(s)) == s
}

// D reports whether machine word m has at least i different traces in input
// word w (the predicate D_i). With traces counted as partial computations,
// D_i(m, w) ⟺ m runs at least i−1 steps on w. D is false when m is not a
// machine word or w not an input word; i must be positive.
func D(i int, m, w string) bool {
	if i < 1 {
		panic(fmt.Sprintf("traces: D index %d must be positive", i))
	}
	mach, err := turing.Decode(m)
	if err != nil || !turing.ValidInput(w) {
		return false
	}
	steps, halted := turing.StepsToHalt(mach, w, i-1)
	return !halted || steps >= i-1
}

// E reports whether machine word m has exactly i different traces in input
// word w (the predicate E_i): m halts on w after exactly i−1 steps.
func E(i int, m, w string) bool {
	if i < 1 {
		panic(fmt.Sprintf("traces: E index %d must be positive", i))
	}
	mach, err := turing.Decode(m)
	if err != nil || !turing.ValidInput(w) {
		return false
	}
	steps, halted := turing.StepsToHalt(mach, w, i)
	return halted && steps == i-1
}
