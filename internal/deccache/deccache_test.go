package deccache

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/logic"
)

// countingDecider decides by formula shape and counts inner invocations.
type countingDecider struct {
	mu    sync.Mutex
	calls int
	fail  bool
}

func (d *countingDecider) Decide(f *logic.Formula) (bool, error) {
	d.mu.Lock()
	d.calls++
	d.mu.Unlock()
	if d.fail {
		return false, fmt.Errorf("countingDecider: forced failure")
	}
	return f.Kind == logic.FTrue || f.Kind == logic.FExists, nil
}

func (d *countingDecider) callCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.calls
}

func atomSentence(name string) *logic.Formula {
	return logic.Exists("x", logic.Atom(name, logic.Var("x")))
}

func TestCacheHitOnStructurallyEqualFormula(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	inner := &countingDecider{}
	c := Wrap(inner, 16)
	f := atomSentence("P")
	v1, err := c.Decide(f)
	if err != nil {
		t.Fatal(err)
	}
	// A distinct but structurally equal formula must hit.
	v2, err := c.Decide(atomSentence("P"))
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("cached verdict %v differs from first %v", v2, v1)
	}
	if got := inner.callCount(); got != 1 {
		t.Errorf("inner decided %d times, want 1", got)
	}
	hits, misses, _, size := c.Stats()
	if hits != 1 || misses != 1 || size != 1 {
		t.Errorf("stats = %d hits, %d misses, size %d; want 1, 1, 1", hits, misses, size)
	}
}

func TestCacheDistinctFormulasDistinctEntries(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	inner := &countingDecider{}
	c := Wrap(inner, 16)
	for _, name := range []string{"P", "Q", "R"} {
		if _, err := c.Decide(atomSentence(name)); err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.callCount(); got != 3 {
		t.Errorf("inner decided %d times, want 3", got)
	}
	if _, _, _, size := c.Stats(); size != 3 {
		t.Errorf("cache size %d, want 3", size)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	inner := &countingDecider{}
	c := Wrap(inner, 2)
	p, q, r := atomSentence("P"), atomSentence("Q"), atomSentence("R")
	mustDecide := func(f *logic.Formula) {
		t.Helper()
		if _, err := c.Decide(f); err != nil {
			t.Fatal(err)
		}
	}
	mustDecide(p)
	mustDecide(q)
	mustDecide(p) // touch P so Q becomes least recently used
	mustDecide(r) // evicts Q
	_, _, evictions, size := c.Stats()
	if evictions != 1 || size != 2 {
		t.Fatalf("evictions=%d size=%d, want 1 and 2", evictions, size)
	}
	base := inner.callCount()
	mustDecide(p) // still cached
	if inner.callCount() != base {
		t.Errorf("P was evicted but should have been retained")
	}
	mustDecide(q) // was evicted: inner consulted again
	if inner.callCount() != base+1 {
		t.Errorf("Q should have been evicted and re-decided")
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	inner := &countingDecider{fail: true}
	c := Wrap(inner, 16)
	f := atomSentence("P")
	for i := 0; i < 2; i++ {
		if _, err := c.Decide(f); err == nil {
			t.Fatal("expected forced failure")
		}
	}
	if got := inner.callCount(); got != 2 {
		t.Errorf("failing sentence decided %d times, want 2 (errors must not be cached)", got)
	}
	if _, _, _, size := c.Stats(); size != 0 {
		t.Errorf("error left an entry in the cache (size %d)", size)
	}
}

func TestCacheDisabledPassesThrough(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	inner := &countingDecider{}
	c := Wrap(inner, 16)
	f := atomSentence("P")
	for i := 0; i < 3; i++ {
		if _, err := c.Decide(f); err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.callCount(); got != 3 {
		t.Errorf("disabled cache still memoized: %d inner calls, want 3", got)
	}
	if hits, misses, _, size := c.Stats(); hits != 0 || misses != 0 || size != 0 {
		t.Errorf("disabled cache recorded stats: %d/%d/%d", hits, misses, size)
	}
}

func TestCacheWrapDefaults(t *testing.T) {
	if c := Wrap(&countingDecider{}, 0); c.capacity != DefaultCapacity {
		t.Errorf("capacity %d, want DefaultCapacity", c.capacity)
	}
	if c := Wrap(&countingDecider{}, -5); c.capacity != DefaultCapacity {
		t.Errorf("negative capacity not defaulted")
	}
}

// TestCacheConcurrent exercises the lock discipline under -race: many
// goroutines deciding an overlapping working set.
func TestCacheConcurrent(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	inner := &countingDecider{}
	c := Wrap(inner, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				name := fmt.Sprintf("P%d", (g+i)%12) // 12 formulas through capacity 8
				want := true                         // countingDecider: FExists decides true
				got, err := c.Decide(atomSentence(name))
				if err != nil {
					t.Error(err)
					return
				}
				if got != want {
					t.Errorf("verdict flipped under concurrency: %v", got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses, evictions, size := c.Stats()
	if hits+misses != 8*200 {
		t.Errorf("hits+misses = %d, want %d", hits+misses, 8*200)
	}
	if size > 8 {
		t.Errorf("cache size %d exceeds capacity 8", size)
	}
	if evictions == 0 {
		t.Errorf("working set exceeds capacity but nothing was evicted")
	}
}

// TestDomainCountersAndTally: WrapDomain attributes hits and misses to the
// domain's counters, and a context Tally sees the same split per
// evaluation.
func TestDomainCountersAndTally(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	inner := &countingDecider{}
	c := WrapDomain("presburger", inner, 8)
	hits0 := domainCounters["presburger"].hits.Value()
	misses0 := domainCounters["presburger"].misses.Value()

	ctx, tally := WithTally(context.Background())
	f := atomSentence("T")
	if _, err := c.DecideCtx(ctx, f); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DecideCtx(ctx, f); err != nil {
		t.Fatal(err)
	}
	if h, m := tally.Hits.Load(), tally.Misses.Load(); h != 1 || m != 1 {
		t.Fatalf("tally: hits=%d misses=%d, want 1/1", h, m)
	}
	if got := domainCounters["presburger"].hits.Value() - hits0; got != 1 {
		t.Fatalf("domain hit counter moved by %d, want 1", got)
	}
	if got := domainCounters["presburger"].misses.Value() - misses0; got != 1 {
		t.Fatalf("domain miss counter moved by %d, want 1", got)
	}
}

// TestWrapUnknownDomainFallsBack: unknown names attribute to "other"
// rather than minting unbounded metric names.
func TestWrapUnknownDomainFallsBack(t *testing.T) {
	c := WrapDomain("not-a-domain", &countingDecider{}, 8)
	if c.counters.hits != domainCounters["other"].hits {
		t.Fatal("unknown domain must fall back to the other counters")
	}
}

// TestTallyFromNilSafe: absent or nil contexts yield a nil tally, and the
// cache paths tolerate that.
func TestTallyFromNilSafe(t *testing.T) {
	if TallyFrom(nil) != nil {
		t.Fatal("nil context")
	}
	if TallyFrom(context.Background()) != nil {
		t.Fatal("context without tally")
	}
}
