package deccache

import (
	"context"
	"sync/atomic"
)

// Tally counts cache hits and misses attributable to one evaluation: the
// per-query stats registry attaches one to the evaluation context so an
// individual query's cache behavior is visible, not just the process-wide
// aggregate. Fields are atomics because one evaluation may decide from
// several worker goroutines.
type Tally struct {
	Hits   atomic.Int64
	Misses atomic.Int64
}

type tallyKey struct{}

// WithTally returns a context carrying a fresh Tally, and the Tally
// itself. Every cache hit or miss decided under the returned context is
// counted on it, in addition to the global and per-domain counters.
func WithTally(ctx context.Context) (context.Context, *Tally) {
	t := &Tally{}
	return context.WithValue(ctx, tallyKey{}, t), t
}

// TallyFrom returns the context's Tally, or nil. A nil context is safe
// (the plain Decide path passes one).
func TallyFrom(ctx context.Context) *Tally {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tallyKey{}).(*Tally)
	return t
}
