// Package deccache memoizes domain decision procedures. The §1.1
// enumeration re-decides identical ground sentences on every row (each
// row's probe scan restarts from candidate 0), and the relative-safety
// deciders re-ask the same equivalence sub-sentences; a bounded cache in
// front of the decider turns those repeats into map lookups.
//
// The cache is keyed by logic.(*Formula).CanonicalKey, an injective
// serialization, so key equality is collision-safe; the stored sentence is
// nevertheless re-checked with Equal on every hit as defense in depth.
// Eviction is LRU with a fixed capacity. A process-wide toggle
// (Enable/Disable, wired to the CLIs' -cache flag through
// internal/cliutil) turns every wrapper into a transparent pass-through,
// so correctness never depends on the cache being on.
package deccache

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/domain"
	"repro/internal/logic"
	"repro/internal/obs"
)

// Cache behavior counters, aggregated across all caches in the process;
// exposed on /metrics and in obs snapshots like every other metric.
var (
	mHits      = obs.NewCounter("deccache.hits")
	mMisses    = obs.NewCounter("deccache.misses")
	mEvictions = obs.NewCounter("deccache.evictions")
)

// cacheDomains is the closed label set for per-domain counters: the
// registered domain names that construct caches, plus "other" for direct
// Wrap callers. Closed so metric names stay bounded regardless of input.
var cacheDomains = []string{"eq", "nless", "presburger", "zless", "nsucc", "wordlex", "traces", "other"}

// domainCounters holds the per-domain hit/miss/eviction counters, created
// eagerly over the closed set so the families appear on /metrics even
// before traffic.
type domainCounterSet struct {
	hits, misses, evictions *obs.Counter
}

var domainCounters = func() map[string]domainCounterSet {
	m := make(map[string]domainCounterSet, len(cacheDomains))
	for _, d := range cacheDomains {
		m[d] = domainCounterSet{
			hits:      obs.NewCounter("deccache." + d + ".hits"),
			misses:    obs.NewCounter("deccache." + d + ".misses"),
			evictions: obs.NewCounter("deccache." + d + ".evictions"),
		}
		obs.SetHelp("deccache."+d+".hits", "Decision-cache hits for the "+d+" domain's deciders.")
		obs.SetHelp("deccache."+d+".misses", "Decision-cache misses for the "+d+" domain's deciders.")
		obs.SetHelp("deccache."+d+".evictions", "Decision-cache evictions for the "+d+" domain's deciders.")
	}
	return m
}()

// countersFor maps a domain name onto the closed counter set.
func countersFor(name string) domainCounterSet {
	if c, ok := domainCounters[name]; ok {
		return c
	}
	return domainCounters["other"]
}

// enabled is the process-wide toggle. Caching is on by default: a memoized
// decider is observationally identical to the raw one (deciders are pure),
// so the default favors the fast path.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enable turns decision caching on (the default).
func Enable() { enabled.Store(true) }

// Disable turns decision caching off; wrapped deciders pass through.
func Disable() { enabled.Store(false) }

// SetEnabled sets the toggle and returns the previous value, for scoped
// use in tests and benchmarks.
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Enabled reports whether decision caching is on.
func Enabled() bool { return enabled.Load() }

// DefaultCapacity bounds a cache created by the domain constructors: large
// enough to hold every ground decision of a budget-sized enumeration,
// small enough that pinned formulas stay in the tens of megabytes even for
// pathological sentence sizes.
const DefaultCapacity = 4096

// Cache is a memoized domain.Decider with bounded LRU eviction. It is
// safe for concurrent use; the inner decider is invoked outside the lock.
type Cache struct {
	inner    domain.Decider
	capacity int
	counters domainCounterSet // per-domain labelled counters (closed set)

	mu    sync.Mutex
	order *list.List // front = most recently used
	byKey map[string]*list.Element

	hits, misses, evictions int64
}

type entry struct {
	key      string
	sentence *logic.Formula
	value    bool
}

// Wrap returns a caching decider in front of inner. A capacity ≤ 0 selects
// DefaultCapacity. Traffic counts under the "other" domain label; domain
// constructors should prefer WrapDomain.
func Wrap(inner domain.Decider, capacity int) *Cache {
	return WrapDomain("other", inner, capacity)
}

// WrapDomain is Wrap with the owning domain named, so the cache's traffic
// is attributed to that domain's labelled counters (deccache.<domain>.hits
// etc). Unknown names fold into "other" — the label set is closed.
func WrapDomain(domainName string, inner domain.Decider, capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		inner:    inner,
		capacity: capacity,
		counters: countersFor(domainName),
		order:    list.New(),
		byKey:    map[string]*list.Element{},
	}
}

// Decide implements domain.Decider: a hit returns the memoized verdict, a
// miss consults the inner decider and caches the result. Errors are never
// cached — a failing sentence is re-asked on every call, like an unwrapped
// decider. When the package toggle is off the call passes straight
// through (no key is built, no stats move).
func (c *Cache) Decide(sentence *logic.Formula) (bool, error) {
	return c.DecideCtx(nil, sentence)
}

// DecideCtx implements domain.CtxDecider: the hit path is a map lookup and
// ignores the context; the miss path hands the context to the inner
// decider (via domain.DecideCtx, so context-aware deciders can abandon a
// long-running elimination) and, as with errors, caches nothing when the
// decision was cut short.
func (c *Cache) DecideCtx(ctx context.Context, sentence *logic.Formula) (bool, error) {
	if !enabled.Load() {
		return domain.DecideCtx(ctx, c.inner, sentence)
	}
	ctx, sp := obs.StartSpanCtx(ctx, "deccache.decide")
	defer sp.End()
	key := sentence.CanonicalKey()

	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*entry)
		if e.sentence.Equal(sentence) {
			c.order.MoveToFront(el)
			v := e.value
			c.hits++
			c.mu.Unlock()
			mHits.Inc()
			c.counters.hits.Inc()
			if t := TallyFrom(ctx); t != nil {
				t.Hits.Add(1)
			}
			sp.Arg("hit", 1)
			return v, nil
		}
		// An injective key cannot collide; if it ever did, fall through to
		// the inner decider rather than return a wrong verdict.
		c.mu.Unlock()
		sp.Arg("hit", 0)
		return domain.DecideCtx(ctx, c.inner, sentence)
	}
	c.misses++
	c.mu.Unlock()
	mMisses.Inc()
	c.counters.misses.Inc()
	if t := TallyFrom(ctx); t != nil {
		t.Misses.Add(1)
	}
	sp.Arg("hit", 0)

	v, err := domain.DecideCtx(ctx, c.inner, sentence)
	if err != nil {
		return false, err
	}
	c.mu.Lock()
	// A concurrent miss on the same sentence may have inserted first; the
	// verdicts are identical (deciders are pure), keep the existing entry.
	if _, ok := c.byKey[key]; !ok {
		c.byKey[key] = c.order.PushFront(&entry{key: key, sentence: sentence, value: v})
		if c.order.Len() > c.capacity {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.byKey, oldest.Value.(*entry).key)
			c.evictions++
			mEvictions.Inc()
			c.counters.evictions.Inc()
		}
	}
	c.mu.Unlock()
	return v, nil
}

// Stats returns the cache's own hit/miss/eviction counts and current size
// (the package-level obs counters aggregate across all caches).
func (c *Cache) Stats() (hits, misses, evictions int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.order.Len()
}
