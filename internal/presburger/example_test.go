package presburger_test

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/presburger"
)

// Cooper's algorithm decides Presburger sentences over ℕ.
func ExampleEliminator_Decide() {
	// Every natural number is even or odd.
	x := logic.Var("x")
	f := logic.Forall("x", logic.Or(
		logic.Atom(presburger.PredDvd, logic.Const("2"), x),
		logic.Atom(presburger.PredDvd, logic.Const("2"),
			logic.App(presburger.FuncAdd, x, logic.Const("1")))))
	v, _ := presburger.Eliminator{}.Decide(f)
	fmt.Println(v)
	// Output: true
}

// Equivalent is the engine behind the Theorem 2.5 relative-safety decider.
func ExampleEliminator_Equivalent() {
	x := logic.Var("x")
	lt3 := logic.Atom(presburger.PredLt, x, logic.Const("3"))
	le2 := logic.Atom(presburger.PredLe, x, logic.Const("2"))
	eq, _ := presburger.Eliminator{}.Equivalent(lt3, le2)
	fmt.Println(eq)
	// Output: true
}
