package presburger

import (
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genLinear wraps a random linear term for testing/quick.
type genLinear struct {
	T LinearTerm
}

// Generate implements quick.Generator.
func (genLinear) Generate(rng *rand.Rand, size int) reflect.Value {
	t := NewLinear()
	for _, v := range []string{"x", "y", "z"} {
		if rng.Intn(2) == 0 {
			c := int64(rng.Intn(21) - 10)
			if c != 0 {
				t.Coeffs[v] = big.NewInt(c)
			}
		}
	}
	t.Const = big.NewInt(int64(rng.Intn(41) - 20))
	return reflect.ValueOf(genLinear{T: t})
}

var quickCfg = &quick.Config{MaxCount: 300}

func randEnv(rng *rand.Rand) map[string]*big.Int {
	return map[string]*big.Int{
		"x": big.NewInt(int64(rng.Intn(41) - 20)),
		"y": big.NewInt(int64(rng.Intn(41) - 20)),
		"z": big.NewInt(int64(rng.Intn(41) - 20)),
	}
}

// TestQuickAddCommutative: a+b = b+a, both structurally and semantically.
func TestQuickAddCommutative(t *testing.T) {
	prop := func(a, b genLinear) bool {
		return a.T.Add(b.T).Equal(b.T.Add(a.T))
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickAddAssociative: (a+b)+c = a+(b+c).
func TestQuickAddAssociative(t *testing.T) {
	prop := func(a, b, c genLinear) bool {
		return a.T.Add(b.T).Add(c.T).Equal(a.T.Add(b.T.Add(c.T)))
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickSubIsAddNeg: a−b = a+(−b) and a−a = 0.
func TestQuickSubIsAddNeg(t *testing.T) {
	prop := func(a, b genLinear) bool {
		if !a.T.Sub(b.T).Equal(a.T.Add(b.T.Neg())) {
			return false
		}
		z := a.T.Sub(a.T)
		return z.IsConst() && z.Const.Sign() == 0
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickScaleDistributes: k(a+b) = ka + kb.
func TestQuickScaleDistributes(t *testing.T) {
	prop := func(a, b genLinear, kRaw int8) bool {
		k := big.NewInt(int64(kRaw % 7))
		return a.T.Add(b.T).Scale(k).Equal(a.T.Scale(k).Add(b.T.Scale(k)))
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickEvalHomomorphism: evaluation commutes with the term algebra.
func TestQuickEvalHomomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prop := func(a, b genLinear) bool {
		env := randEnv(rng)
		va, err := a.T.Eval(env)
		if err != nil {
			return false
		}
		vb, err := b.T.Eval(env)
		if err != nil {
			return false
		}
		vsum, err := a.T.Add(b.T).Eval(env)
		if err != nil {
			return false
		}
		return vsum.Cmp(new(big.Int).Add(va, vb)) == 0
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickSubstEval: substitution then evaluation equals evaluation with
// the substituted value — Subst is semantic substitution.
func TestQuickSubstEval(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	prop := func(a, b genLinear) bool {
		env := randEnv(rng)
		// Substitute x := b, then evaluate; compare against evaluating a
		// with x bound to b's value.
		vb, err := b.T.Eval(env)
		if err != nil {
			return false
		}
		env2 := map[string]*big.Int{"x": vb, "y": env["y"], "z": env["z"]}
		va, err := a.T.Eval(env2)
		if err != nil {
			return false
		}
		vs, err := a.T.Subst("x", b.T).Eval(env)
		if err != nil {
			return false
		}
		return vs.Cmp(va) == 0
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickRenderParseRoundTrip: Render∘ParseLinear is the identity.
func TestQuickRenderParseRoundTrip(t *testing.T) {
	prop := func(a genLinear) bool {
		back, err := ParseLinear(Render(a.T))
		return err == nil && back.Equal(a.T)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickCloneIndependence: mutating a clone leaves the original alone.
func TestQuickCloneIndependence(t *testing.T) {
	prop := func(a genLinear) bool {
		before := a.T.String()
		c := a.T.Clone()
		c.Const.Add(c.Const, big.NewInt(1))
		c.addCoeff("x", big.NewInt(5))
		return a.T.String() == before
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}
