package presburger

import (
	"context"
	"fmt"
	"math/big"
	"strconv"

	"repro/internal/deccache"
	"repro/internal/domain"
	"repro/internal/logic"
	"repro/internal/obs"
)

// QE metrics for the Cooper engine, mirroring the traces eliminator's.
var (
	mCooperCalls   = obs.NewCounter("qe.presburger.eliminations")
	mCooperBlowups = obs.NewCounter("qe.presburger.blowups")
	hCooperSizeIn  = obs.NewHistogram("qe.presburger.size_in")
	hCooperSizeOut = obs.NewHistogram("qe.presburger.size_out")
)

// Eliminator performs quantifier elimination for Presburger arithmetic via
// Cooper's algorithm. With Integers false (the default) quantifiers range
// over ℕ — the paper's domains — by relativizing each quantifier to x ≥ 0;
// with Integers true they range over ℤ.
type Eliminator struct {
	Integers bool
	// NoBoundDedup disables boundary-set deduplication inside Cooper's
	// algorithm; only for the ablation benchmarks.
	NoBoundDedup bool
	// MaxNodes bounds the intermediate formula size; Cooper's algorithm is
	// worst-case super-exponential (each eliminated quantifier multiplies
	// the matrix by its divisor lcm times its boundary-set size), and the
	// guard turns a blowup into an error instead of an endless run.
	// 0 means DefaultMaxNodes.
	MaxNodes int

	// ctx, when set via EliminateCtx/DecideCtx, is polled before each
	// quantifier elimination so a request-scoped deadline can abandon a
	// Cooper run between quantifiers rather than wait for the size guard.
	ctx context.Context
}

// EliminateCtx implements domain.CtxEliminator: elimination under a
// context, aborted with the context's error at the next quantifier
// boundary after cancellation.
func (e Eliminator) EliminateCtx(ctx context.Context, f *logic.Formula) (*logic.Formula, error) {
	e.ctx = ctx
	return e.Eliminate(f)
}

// DecideCtx implements domain.CtxDecider via EliminateCtx.
func (e Eliminator) DecideCtx(ctx context.Context, sentence *logic.Formula) (bool, error) {
	e.ctx = ctx
	return e.Decide(sentence)
}

// checkCtx reports the context's error, if a context is set and cancelled.
func (e Eliminator) checkCtx() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// DefaultMaxNodes is the default intermediate-size bound.
const DefaultMaxNodes = 2_000_000

func (e Eliminator) maxNodes() int {
	if e.MaxNodes > 0 {
		return e.MaxNodes
	}
	return DefaultMaxNodes
}

// ErrTooLarge reports that elimination exceeded the size guard.
var ErrTooLarge = fmt.Errorf("presburger: intermediate formula exceeds the size bound (Cooper blowup)")

// Eliminate implements domain.Eliminator.
func (e Eliminator) Eliminate(f *logic.Formula) (*logic.Formula, error) {
	_, sp := obs.StartSpanCtx(e.ctx, "qe.presburger.eliminate")
	defer sp.End()
	mCooperCalls.Inc()
	sizeIn := int64(f.Size())
	hCooperSizeIn.Observe(sizeIn)
	sp.Arg("size_in", sizeIn)
	g, err := e.elim(f)
	if err != nil {
		return nil, err
	}
	g = logic.Simplify(g)
	sizeOut := int64(g.Size())
	hCooperSizeOut.Observe(sizeOut)
	sp.Arg("size_out", sizeOut)
	return g, nil
}

func (e Eliminator) elim(f *logic.Formula) (*logic.Formula, error) {
	switch f.Kind {
	case logic.FExists:
		body, err := e.elim(f.Sub[0])
		if err != nil {
			return nil, err
		}
		return e.elimExists(f.Var, body)
	case logic.FForall:
		body, err := e.elim(f.Sub[0])
		if err != nil {
			return nil, err
		}
		inner, err := e.elimExists(f.Var, logic.Not(body))
		if err != nil {
			return nil, err
		}
		return logic.Simplify(logic.Not(inner)), nil
	case logic.FTrue, logic.FFalse, logic.FAtom:
		return f, nil
	default:
		sub := make([]*logic.Formula, len(f.Sub))
		for i, s := range f.Sub {
			g, err := e.elim(s)
			if err != nil {
				return nil, err
			}
			sub[i] = g
		}
		return &logic.Formula{Kind: f.Kind, Sub: sub}, nil
	}
}

func (e Eliminator) elimExists(x string, body *logic.Formula) (*logic.Formula, error) {
	if err := e.checkCtx(); err != nil {
		return nil, err
	}
	if !e.Integers {
		// Relativize to ℕ: ∃x∈ℕ φ ⟺ ∃x∈ℤ (x ≥ 0 ∧ φ).
		body = logic.And(logic.Atom(PredGe, logic.Var(x), logic.Const("0")), body)
	}
	g, err := canonicalize(logic.NNF(body))
	if err != nil {
		return nil, err
	}
	out, err := cooper(x, g, !e.NoBoundDedup, e.maxNodes())
	if err != nil {
		mCooperBlowups.Inc()
		return nil, fmt.Errorf("%w: %v", ErrTooLarge, err)
	}
	return render(out), nil
}

// Decide decides a Presburger sentence (over ℕ unless Integers is set):
// quantifiers are eliminated and the ground residue evaluated.
func (e Eliminator) Decide(sentence *logic.Formula) (bool, error) {
	if fv := sentence.FreeVars(); len(fv) != 0 {
		return false, fmt.Errorf("presburger: Decide on open formula (free vars %v)", fv)
	}
	qfFormula, err := e.Eliminate(sentence)
	if err != nil {
		return false, err
	}
	g, err := canonicalize(logic.NNF(qfFormula))
	if err != nil {
		return false, err
	}
	return g.eval(map[string]*big.Int{})
}

// Equivalent decides whether two formulas with the same free variables
// agree on all assignments: ∀x̄ (f ↔ g). This is the workhorse of the
// relative-safety decision procedure (Theorem 2.5: "the equivalence problem
// for pure domain formulas is, by the condition of the theorem, decidable").
func (e Eliminator) Equivalent(f, g *logic.Formula) (bool, error) {
	vars := logic.SortedUnique(append(f.FreeVars(), g.FreeVars()...))
	return e.Decide(logic.ForallAll(vars, logic.Iff(f, g)))
}

// Domain is ℕ with the full Presburger signature, implementing
// domain.Domain and domain.Enumerator. Constants are decimal numerals.
type Domain struct{}

// Name implements domain.Domain.
func (Domain) Name() string { return "presburger" }

// ConstValue implements domain.Interp.
func (Domain) ConstValue(name string) (domain.Value, error) {
	n, err := strconv.ParseInt(name, 10, 64)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("presburger: constant %q is not a natural numeral", name)
	}
	return domain.Int(n), nil
}

// ConstName implements domain.Domain.
func (Domain) ConstName(v domain.Value) string { return v.Key() }

// Func implements domain.Interp. Subtraction is truncated (monus) to stay
// within ℕ, matching the paper's "natural numbers with <, +, and −".
func (Domain) Func(name string, args []domain.Value) (domain.Value, error) {
	get := func(i int) (int64, error) {
		n, ok := args[i].(domain.Int)
		if !ok {
			return 0, fmt.Errorf("presburger: non-integer value %v", args[i])
		}
		return int64(n), nil
	}
	binary := func() (int64, int64, error) {
		if len(args) != 2 {
			return 0, 0, fmt.Errorf("presburger: %s expects 2 arguments", name)
		}
		a, err := get(0)
		if err != nil {
			return 0, 0, err
		}
		b, err := get(1)
		return a, b, err
	}
	switch name {
	case FuncAdd:
		a, b, err := binary()
		return domain.Int(a + b), err
	case FuncSub:
		a, b, err := binary()
		if a < b {
			return domain.Int(0), err
		}
		return domain.Int(a - b), err
	case FuncMul:
		a, b, err := binary()
		return domain.Int(a * b), err
	case FuncNeg:
		return nil, fmt.Errorf("presburger: neg is not a function of ℕ")
	}
	return nil, fmt.Errorf("presburger: unknown function %q", name)
}

// Pred implements domain.Interp.
func (Domain) Pred(name string, args []domain.Value) (bool, error) {
	if len(args) != 2 {
		return false, fmt.Errorf("presburger: %s expects 2 arguments", name)
	}
	a, ok := args[0].(domain.Int)
	if !ok {
		return false, fmt.Errorf("presburger: non-integer value %v", args[0])
	}
	b, ok := args[1].(domain.Int)
	if !ok {
		return false, fmt.Errorf("presburger: non-integer value %v", args[1])
	}
	switch name {
	case PredLt:
		return a < b, nil
	case PredLe:
		return a <= b, nil
	case PredGt:
		return a > b, nil
	case PredGe:
		return a >= b, nil
	case PredDvd:
		if a <= 0 {
			return false, fmt.Errorf("presburger: dvd modulus must be positive")
		}
		return int64(b)%int64(a) == 0, nil
	}
	return false, fmt.Errorf("presburger: unknown predicate %q", name)
}

// Element implements domain.Enumerator: 0, 1, 2, …
func (Domain) Element(i int) domain.Value { return domain.Int(i) }

// Decider returns the decision procedure for ℕ with the Presburger
// signature, memoized behind a bounded decision cache (a no-op pass-through
// when caching is disabled; see internal/deccache).
func Decider() domain.Decider {
	return deccache.WrapDomain("presburger", Eliminator{}, deccache.DefaultCapacity)
}
