package presburger

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/domain"
	"repro/internal/logic"
)

// dval abbreviates domain.Value in table-driven interpretation tests.
type dval = domain.Value

func lt(a, b logic.Term) *logic.Formula { return logic.Atom(PredLt, a, b) }
func num(n int64) logic.Term            { return logic.Const(big.NewInt(n).String()) }
func add(a, b logic.Term) logic.Term    { return logic.App(FuncAdd, a, b) }
func mul(k int64, t logic.Term) logic.Term {
	return logic.App(FuncMul, num(k), t)
}

func decideNat(t *testing.T, f *logic.Formula) bool {
	t.Helper()
	v, err := Eliminator{}.Decide(f)
	if err != nil {
		t.Fatalf("Decide(%v): %v", f, err)
	}
	return v
}

func decideInt(t *testing.T, f *logic.Formula) bool {
	t.Helper()
	v, err := Eliminator{Integers: true}.Decide(f)
	if err != nil {
		t.Fatalf("Decide(%v): %v", f, err)
	}
	return v
}

func TestLinearTermOps(t *testing.T) {
	x := FromVar("x")
	y := FromVar("y")
	s := x.Scale(big.NewInt(2)).Add(y).AddInt(3)
	if got := s.String(); got != "2*x + y + 3" {
		t.Errorf("String = %q", got)
	}
	if s.Coeff("x").Int64() != 2 || s.Coeff("z").Sign() != 0 {
		t.Errorf("Coeff wrong")
	}
	d := s.Sub(s)
	if !d.IsConst() || d.Const.Sign() != 0 {
		t.Errorf("s - s should be 0, got %v", d)
	}
	// Substitution: (2x + y + 3)[x := y + 1] = 3y + 5.
	u := s.Subst("x", y.AddInt(1))
	want := y.Scale(big.NewInt(3)).AddInt(5)
	if !u.Equal(want) {
		t.Errorf("Subst = %v, want %v", u, want)
	}
	// Eval.
	env := map[string]*big.Int{"x": big.NewInt(10), "y": big.NewInt(1)}
	v, err := s.Eval(env)
	if err != nil || v.Int64() != 24 {
		t.Errorf("Eval = %v, %v", v, err)
	}
	if _, err := s.Eval(map[string]*big.Int{}); err == nil {
		t.Errorf("unbound eval should fail")
	}
}

func TestParseLinear(t *testing.T) {
	tm := add(mul(3, logic.Var("x")), logic.App(FuncSub, logic.Var("y"), num(4)))
	lin, err := ParseLinear(tm)
	if err != nil {
		t.Fatalf("ParseLinear: %v", err)
	}
	want := FromVar("x").Scale(big.NewInt(3)).Add(FromVar("y")).AddInt(-4)
	if !lin.Equal(want) {
		t.Errorf("got %v, want %v", lin, want)
	}
	// Nonlinear products are rejected.
	if _, err := ParseLinear(logic.App(FuncMul, logic.Var("x"), logic.Var("y"))); err == nil {
		t.Errorf("nonlinear product accepted")
	}
	if _, err := ParseLinear(logic.Const("abc")); err == nil {
		t.Errorf("non-numeral accepted")
	}
	if _, err := ParseLinear(logic.App("f", logic.Var("x"))); err == nil {
		t.Errorf("unknown function accepted")
	}
	// Negative numerals are fine (internal ℤ representation).
	lin, err = ParseLinear(num(-7))
	if err != nil || lin.Const.Int64() != -7 {
		t.Errorf("negative numeral: %v %v", lin, err)
	}
}

func TestRenderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vars := []string{"x", "y", "z"}
	for i := 0; i < 200; i++ {
		lin := NewLinear()
		for _, v := range vars {
			if rng.Intn(2) == 0 {
				lin.Coeffs[v] = big.NewInt(int64(rng.Intn(9) - 4))
				if lin.Coeffs[v].Sign() == 0 {
					delete(lin.Coeffs, v)
				}
			}
		}
		lin.Const = big.NewInt(int64(rng.Intn(21) - 10))
		back, err := ParseLinear(Render(lin))
		if err != nil {
			t.Fatalf("round trip of %v: %v", lin, err)
		}
		if !back.Equal(lin) {
			t.Errorf("round trip %v -> %v", lin, back)
		}
	}
}

func TestDecideNatBasics(t *testing.T) {
	x, y := logic.Var("x"), logic.Var("y")
	cases := []struct {
		f    *logic.Formula
		want bool
	}{
		// ℕ has a least element.
		{logic.Exists("x", logic.Forall("y", logic.Not(lt(y, x)))), true},
		// …but no greatest.
		{logic.Exists("x", logic.Forall("y", logic.Not(lt(x, y)))), false},
		{logic.Forall("x", logic.Exists("y", lt(x, y))), true},
		// Discreteness: nothing strictly between n and n+1.
		{logic.Exists("x", logic.And(lt(num(0), x), lt(x, num(1)))), false},
		{logic.Exists("x", logic.And(lt(num(0), x), lt(x, num(2)))), true},
		// Simple arithmetic.
		{logic.Exists("x", logic.Eq(add(x, x), num(4))), true},
		{logic.Exists("x", logic.Eq(add(x, x), num(5))), false},
		// Even or odd.
		{logic.Forall("x", logic.Or(
			logic.Atom(PredDvd, num(2), x),
			logic.Atom(PredDvd, num(2), add(x, num(1))))), true},
		// Every number is even: false.
		{logic.Forall("x", logic.Atom(PredDvd, num(2), x)), false},
		// 3x = 5 has no solution; 3x = 6 does.
		{logic.Exists("x", logic.Eq(mul(3, x), num(5))), false},
		{logic.Exists("x", logic.Eq(mul(3, x), num(6))), true},
		// Linear system: x + y = 5 ∧ x < y.
		{logic.ExistsAll([]string{"x", "y"}, logic.And(
			logic.Eq(add(x, y), num(5)), lt(x, y))), true},
		// Chinese-remainder-flavored: x ≡ 1 (mod 2) ∧ x ≡ 2 (mod 3).
		{logic.Exists("x", logic.And(
			logic.Atom(PredDvd, num(2), add(x, num(1))),
			logic.Atom(PredDvd, num(3), add(x, num(1))))), true},
		// Ground sentences.
		{lt(num(2), num(3)), true},
		{logic.Eq(num(2), num(3)), false},
		{logic.Atom(PredLe, num(3), num(3)), true},
		{logic.Atom(PredGe, num(2), num(3)), false},
		{logic.Atom(PredGt, num(4), num(3)), true},
	}
	for _, c := range cases {
		if got := decideNat(t, c.f); got != c.want {
			t.Errorf("Decide_ℕ(%v) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestDecideIntegersDiffer(t *testing.T) {
	x, y := logic.Var("x"), logic.Var("y")
	// ℤ has no least element; ℕ does.
	leastElement := logic.Exists("x", logic.Forall("y", logic.Not(lt(y, x))))
	if !decideNat(t, leastElement) {
		t.Errorf("ℕ should have a least element")
	}
	if decideInt(t, leastElement) {
		t.Errorf("ℤ should not have a least element")
	}
	// x + y = 0 with x > 0 is solvable in ℤ, not ℕ.
	f := logic.ExistsAll([]string{"x", "y"},
		logic.And(lt(num(0), x), logic.Eq(add(x, y), num(0))))
	if decideNat(t, f) {
		t.Errorf("not solvable in ℕ")
	}
	if !decideInt(t, f) {
		t.Errorf("solvable in ℤ")
	}
}

func TestEliminateQuantifierFree(t *testing.T) {
	e := Eliminator{}
	f := logic.Exists("x", logic.And(
		lt(logic.Var("y"), logic.Var("x")),
		lt(logic.Var("x"), add(logic.Var("y"), num(5)))))
	g, err := e.Eliminate(f)
	if err != nil {
		t.Fatalf("Eliminate: %v", err)
	}
	if !g.QuantifierFree() {
		t.Fatalf("quantifier left: %v", g)
	}
	if g.HasFreeVar("x") {
		t.Fatalf("eliminated variable still free: %v", g)
	}
	// y < x < y+5 has a natural solution for every natural y (x = y+1).
	for _, y := range []int64{0, 1, 7} {
		sentence := logic.Subst(g, "y", num(y))
		if !decideNat(t, sentence) {
			t.Errorf("y=%d: eliminated formula false, want true", y)
		}
	}
}

// TestCooperAgainstBruteForce cross-validates elimination of one quantifier
// against brute-force search over a bounded range. The formulas are built so
// that any existential witness, if one exists at all, lies in [0, 60]:
// coefficients, constants, and moduli are tiny.
func TestCooperAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	e := Eliminator{}
	for iter := 0; iter < 400; iter++ {
		body := randPresburgerBody(rng, 2)
		yVal := int64(rng.Intn(8))
		grounded := logic.Subst(body, "y", num(yVal))

		// Brute force over x ∈ [0, 60].
		found := false
		for xv := int64(0); xv <= 60 && !found; xv++ {
			sentence := logic.Subst(grounded, "x", num(xv))
			v, err := e.Decide(sentence)
			if err != nil {
				t.Fatalf("ground Decide: %v (%v)", err, sentence)
			}
			found = v
		}

		got, err := e.Decide(logic.Exists("x", grounded))
		if err != nil {
			t.Fatalf("Decide(∃x %v): %v", grounded, err)
		}
		if found && !got {
			t.Fatalf("witness exists for %v (y=%d) but Cooper says false", body, yVal)
		}
		if !found && got {
			// The witness may be beyond 60 only if the formula has an
			// unbounded direction; with our generator all atoms bound x by
			// |constants| ≤ 10 and moduli ≤ 4, so lcm ≤ 12 and boundary
			// shifts ≤ 10+12: re-search a wider range to be sure.
			wider := false
			for xv := int64(0); xv <= 400 && !wider; xv++ {
				sentence := logic.Subst(grounded, "x", num(xv))
				v, err := e.Decide(sentence)
				if err != nil {
					t.Fatalf("ground Decide: %v", err)
				}
				wider = v
			}
			if !wider {
				t.Fatalf("Cooper says true but no witness ≤ 400 for %v (y=%d)", body, yVal)
			}
		}
	}
}

// randPresburgerBody generates a quantifier-free formula over x and y with
// small coefficients.
func randPresburgerBody(rng *rand.Rand, depth int) *logic.Formula {
	x, y := logic.Var("x"), logic.Var("y")
	randTerm := func() logic.Term {
		t := mul(int64(1+rng.Intn(3)), x)
		if rng.Intn(2) == 0 {
			t = add(t, mul(int64(rng.Intn(3)), y))
		}
		return add(t, num(int64(rng.Intn(21)-10)))
	}
	atom := func() *logic.Formula {
		a, b := randTerm(), randTerm()
		switch rng.Intn(4) {
		case 0:
			return lt(a, b)
		case 1:
			return logic.Eq(a, b)
		case 2:
			return logic.Atom(PredLe, a, b)
		default:
			return logic.Atom(PredDvd, num(int64(2+rng.Intn(3))), a)
		}
	}
	if depth == 0 {
		return atom()
	}
	switch rng.Intn(5) {
	case 0:
		return atom()
	case 1:
		return logic.Not(randPresburgerBody(rng, depth-1))
	case 2:
		return logic.And(randPresburgerBody(rng, depth-1), randPresburgerBody(rng, depth-1))
	case 3:
		return logic.Or(randPresburgerBody(rng, depth-1), randPresburgerBody(rng, depth-1))
	default:
		return logic.Implies(randPresburgerBody(rng, depth-1), randPresburgerBody(rng, depth-1))
	}
}

func TestDecideConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	e := Eliminator{}
	for i := 0; i < 100; i++ {
		body := randPresburgerBody(rng, 2)
		var f *logic.Formula
		if rng.Intn(2) == 0 {
			f = logic.ForallAll([]string{"x", "y"}, body)
		} else {
			f = logic.Forall("x", logic.Exists("y", body))
		}
		v, err := e.Decide(f)
		if err != nil {
			t.Fatalf("Decide: %v", err)
		}
		nv, err := e.Decide(logic.Not(f))
		if err != nil {
			t.Fatalf("Decide(¬): %v", err)
		}
		if v == nv {
			t.Errorf("Decide(%v) = Decide(negation) = %v", f, v)
		}
	}
}

func TestEquivalent(t *testing.T) {
	x := logic.Var("x")
	e := Eliminator{}
	// x < 3 ⟺ x ≤ 2 over ℕ.
	a := lt(x, num(3))
	b := logic.Atom(PredLe, x, num(2))
	eq, err := e.Equivalent(a, b)
	if err != nil || !eq {
		t.Errorf("x<3 ≡ x≤2 should hold: %v %v", eq, err)
	}
	// x < 3 ≢ x < 4.
	eq, err = e.Equivalent(a, lt(x, num(4)))
	if err != nil || eq {
		t.Errorf("x<3 ≢ x<4: %v %v", eq, err)
	}
}

func TestDomainInterp(t *testing.T) {
	d := Domain{}
	if d.Name() != "presburger" {
		t.Errorf("name")
	}
	v, err := d.ConstValue("42")
	if err != nil || v.Key() != "42" {
		t.Errorf("ConstValue: %v %v", v, err)
	}
	if _, err := d.ConstValue("-1"); err == nil {
		t.Errorf("negative constant accepted in ℕ domain")
	}
	if _, err := d.ConstValue("abc"); err == nil {
		t.Errorf("non-numeral accepted")
	}
	args := []struct {
		fn   string
		a, b int64
		want string
	}{
		{FuncAdd, 2, 3, "5"},
		{FuncSub, 5, 3, "2"},
		{FuncSub, 3, 5, "0"}, // monus
		{FuncMul, 4, 3, "12"},
	}
	for _, c := range args {
		got, err := d.Func(c.fn, []dval{domain.Int(c.a), domain.Int(c.b)})
		if err != nil || got.Key() != c.want {
			t.Errorf("%s(%d,%d) = %v, %v; want %s", c.fn, c.a, c.b, got, err, c.want)
		}
	}
	preds := []struct {
		p    string
		a, b int64
		want bool
	}{
		{PredLt, 1, 2, true},
		{PredLt, 2, 2, false},
		{PredLe, 2, 2, true},
		{PredGt, 3, 2, true},
		{PredGe, 2, 3, false},
		{PredDvd, 3, 9, true},
		{PredDvd, 3, 10, false},
	}
	for _, c := range preds {
		got, err := d.Pred(c.p, []dval{domain.Int(c.a), domain.Int(c.b)})
		if err != nil || got != c.want {
			t.Errorf("%s(%d,%d) = %v, %v; want %v", c.p, c.a, c.b, got, err, c.want)
		}
	}
	if d.Element(7).Key() != "7" {
		t.Errorf("Element wrong")
	}
}
