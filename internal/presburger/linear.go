// Package presburger implements Presburger arithmetic — the first-order
// theory of the integers (and, relativized, the naturals) with addition and
// order — including Cooper's quantifier-elimination algorithm and the
// derived decision procedure.
//
// The paper's Section 2 positive results ride on this package: (ℕ, <) and
// its extension (ℕ, <, +, −) are decidable domains for which finitization
// (Theorem 2.2) yields a recursive syntax for finite queries and relative
// safety is decidable (Theorem 2.5). Both theorems become executable here
// because equivalence of pure-domain formulas is decided by Cooper's
// algorithm.
//
// Formula conventions: terms are built from variables, decimal numeral
// constants (negative numerals allowed), and the functions "add"(a,b),
// "sub"(a,b), "mul"(k,t) (one side a numeral), "neg"(t). Atoms are
// "lt"(a,b), "le"(a,b), "gt"(a,b), "ge"(a,b), equality, and divisibility
// "dvd"(k, t) with k a positive numeral constant.
package presburger

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"repro/internal/logic"
)

// Function and predicate symbol spellings.
const (
	FuncAdd = "add"
	FuncSub = "sub"
	FuncMul = "mul"
	FuncNeg = "neg"
	PredLt  = "lt"
	PredLe  = "le"
	PredGt  = "gt"
	PredGe  = "ge"
	PredDvd = "dvd"
)

// LinearTerm is a linear combination of variables plus a constant:
// Σ coeff_v · v + Const. Coefficient maps hold only nonzero entries.
type LinearTerm struct {
	Coeffs map[string]*big.Int
	Const  *big.Int
}

// NewLinear returns the zero term.
func NewLinear() LinearTerm {
	return LinearTerm{Coeffs: map[string]*big.Int{}, Const: big.NewInt(0)}
}

// FromConst returns the constant term n.
func FromConst(n *big.Int) LinearTerm {
	t := NewLinear()
	t.Const.Set(n)
	return t
}

// FromVar returns the term 1·name.
func FromVar(name string) LinearTerm {
	t := NewLinear()
	t.Coeffs[name] = big.NewInt(1)
	return t
}

// Clone deep-copies the term.
func (t LinearTerm) Clone() LinearTerm {
	out := NewLinear()
	out.Const.Set(t.Const)
	for v, c := range t.Coeffs {
		out.Coeffs[v] = new(big.Int).Set(c)
	}
	return out
}

// Coeff returns the coefficient of variable v (zero if absent). The result
// must not be mutated.
func (t LinearTerm) Coeff(v string) *big.Int {
	if c, ok := t.Coeffs[v]; ok {
		return c
	}
	return big.NewInt(0)
}

// IsConst reports whether the term has no variables.
func (t LinearTerm) IsConst() bool { return len(t.Coeffs) == 0 }

// Add returns t + u.
func (t LinearTerm) Add(u LinearTerm) LinearTerm {
	out := t.Clone()
	out.Const.Add(out.Const, u.Const)
	for v, c := range u.Coeffs {
		out.addCoeff(v, c)
	}
	return out
}

// Sub returns t − u.
func (t LinearTerm) Sub(u LinearTerm) LinearTerm {
	return t.Add(u.Scale(big.NewInt(-1)))
}

// Neg returns −t.
func (t LinearTerm) Neg() LinearTerm { return t.Scale(big.NewInt(-1)) }

// Scale returns k·t.
func (t LinearTerm) Scale(k *big.Int) LinearTerm {
	out := NewLinear()
	out.Const.Mul(t.Const, k)
	if k.Sign() == 0 {
		return out
	}
	for v, c := range t.Coeffs {
		out.Coeffs[v] = new(big.Int).Mul(c, k)
	}
	return out
}

// AddInt returns t + n.
func (t LinearTerm) AddInt(n int64) LinearTerm {
	out := t.Clone()
	out.Const.Add(out.Const, big.NewInt(n))
	return out
}

func (t *LinearTerm) addCoeff(v string, c *big.Int) {
	cur, ok := t.Coeffs[v]
	if !ok {
		cur = big.NewInt(0)
		t.Coeffs[v] = cur
	}
	cur.Add(cur, c)
	if cur.Sign() == 0 {
		delete(t.Coeffs, v)
	}
}

// Subst returns t with variable v replaced by the term u: the v-coefficient
// times u is folded in.
func (t LinearTerm) Subst(v string, u LinearTerm) LinearTerm {
	c, ok := t.Coeffs[v]
	if !ok {
		return t.Clone()
	}
	out := t.Clone()
	delete(out.Coeffs, v)
	return out.Add(u.Scale(c))
}

// Equal reports structural equality.
func (t LinearTerm) Equal(u LinearTerm) bool {
	if t.Const.Cmp(u.Const) != 0 || len(t.Coeffs) != len(u.Coeffs) {
		return false
	}
	for v, c := range t.Coeffs {
		uc, ok := u.Coeffs[v]
		if !ok || c.Cmp(uc) != 0 {
			return false
		}
	}
	return true
}

// Vars returns the variables of t in sorted order.
func (t LinearTerm) Vars() []string {
	out := make([]string, 0, len(t.Coeffs))
	for v := range t.Coeffs {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Eval evaluates the term under an integer environment; every variable must
// be bound.
func (t LinearTerm) Eval(env map[string]*big.Int) (*big.Int, error) {
	out := new(big.Int).Set(t.Const)
	for v, c := range t.Coeffs {
		val, ok := env[v]
		if !ok {
			return nil, fmt.Errorf("presburger: unbound variable %q", v)
		}
		out.Add(out, new(big.Int).Mul(c, val))
	}
	return out, nil
}

// String renders the term, e.g. "2*x + y - 3".
func (t LinearTerm) String() string {
	var b strings.Builder
	first := true
	for _, v := range t.Vars() {
		c := t.Coeffs[v]
		switch {
		case first:
			if c.Cmp(big.NewInt(1)) == 0 {
				b.WriteString(v)
			} else if c.Cmp(big.NewInt(-1)) == 0 {
				b.WriteString("-" + v)
			} else {
				fmt.Fprintf(&b, "%v*%s", c, v)
			}
			first = false
		case c.Sign() > 0:
			if c.Cmp(big.NewInt(1)) == 0 {
				b.WriteString(" + " + v)
			} else {
				fmt.Fprintf(&b, " + %v*%s", c, v)
			}
		default:
			abs := new(big.Int).Neg(c)
			if abs.Cmp(big.NewInt(1)) == 0 {
				b.WriteString(" - " + v)
			} else {
				fmt.Fprintf(&b, " - %v*%s", abs, v)
			}
		}
	}
	switch {
	case first:
		b.WriteString(t.Const.String())
	case t.Const.Sign() > 0:
		fmt.Fprintf(&b, " + %v", t.Const)
	case t.Const.Sign() < 0:
		fmt.Fprintf(&b, " - %v", new(big.Int).Neg(t.Const))
	}
	return b.String()
}

// ParseLinear interprets a logic term as a linear term.
func ParseLinear(t logic.Term) (LinearTerm, error) {
	switch t.Kind {
	case logic.TVar:
		return FromVar(t.Name), nil
	case logic.TConst:
		n, ok := new(big.Int).SetString(t.Name, 10)
		if !ok {
			return LinearTerm{}, fmt.Errorf("presburger: constant %q is not a numeral", t.Name)
		}
		return FromConst(n), nil
	case logic.TApp:
		switch t.Name {
		case FuncAdd, FuncSub:
			if len(t.Args) != 2 {
				return LinearTerm{}, fmt.Errorf("presburger: %s expects 2 arguments", t.Name)
			}
			a, err := ParseLinear(t.Args[0])
			if err != nil {
				return LinearTerm{}, err
			}
			b, err := ParseLinear(t.Args[1])
			if err != nil {
				return LinearTerm{}, err
			}
			if t.Name == FuncAdd {
				return a.Add(b), nil
			}
			return a.Sub(b), nil
		case FuncNeg:
			if len(t.Args) != 1 {
				return LinearTerm{}, fmt.Errorf("presburger: neg expects 1 argument")
			}
			a, err := ParseLinear(t.Args[0])
			if err != nil {
				return LinearTerm{}, err
			}
			return a.Neg(), nil
		case FuncMul:
			if len(t.Args) != 2 {
				return LinearTerm{}, fmt.Errorf("presburger: mul expects 2 arguments")
			}
			a, err := ParseLinear(t.Args[0])
			if err != nil {
				return LinearTerm{}, err
			}
			b, err := ParseLinear(t.Args[1])
			if err != nil {
				return LinearTerm{}, err
			}
			switch {
			case a.IsConst():
				return b.Scale(a.Const), nil
			case b.IsConst():
				return a.Scale(b.Const), nil
			default:
				return LinearTerm{}, fmt.Errorf("presburger: nonlinear product %v", t)
			}
		}
		return LinearTerm{}, fmt.Errorf("presburger: unknown function %q", t.Name)
	}
	return LinearTerm{}, fmt.Errorf("presburger: bad term kind %d", t.Kind)
}

// Render converts a linear term back to a logic term (a right-nested sum).
func Render(t LinearTerm) logic.Term {
	var parts []logic.Term
	for _, v := range t.Vars() {
		c := t.Coeffs[v]
		if c.Cmp(big.NewInt(1)) == 0 {
			parts = append(parts, logic.Var(v))
		} else {
			parts = append(parts, logic.App(FuncMul, logic.Const(c.String()), logic.Var(v)))
		}
	}
	if t.Const.Sign() != 0 || len(parts) == 0 {
		parts = append(parts, logic.Const(t.Const.String()))
	}
	out := parts[len(parts)-1]
	for i := len(parts) - 2; i >= 0; i-- {
		out = logic.App(FuncAdd, parts[i], out)
	}
	return out
}
