package presburger

import (
	"fmt"
	"math/big"

	"repro/internal/logic"
	"repro/internal/obs"
)

// Per-quantifier metrics: each cooper call eliminates one ∃, and the
// boundary-set size drives the output's growth factor.
var (
	mCooperQuantifiers = obs.NewCounter("qe.presburger.quantifiers")
	hCooperBoundSet    = obs.NewHistogram("qe.presburger.boundary_set_size")
)

// Internal quantifier-free representation: positive boolean combinations of
// three atom kinds.
type atomKind int

const (
	atomLt   atomKind = iota // t < 0
	atomDvd                  // d | t
	atomNdvd                 // d ∤ t
)

type qf struct {
	// op is 'a' for an atom, '&' and '|' for connectives, 't'/'f' for
	// constants.
	op   byte
	sub  []*qf
	kind atomKind
	t    LinearTerm
	d    *big.Int
}

func qfTrue() *qf  { return &qf{op: 't'} }
func qfFalse() *qf { return &qf{op: 'f'} }

func qfAtom(kind atomKind, t LinearTerm, d *big.Int) *qf {
	return &qf{op: 'a', kind: kind, t: t, d: d}
}

func qfAnd(sub ...*qf) *qf {
	var flat []*qf
	for _, s := range sub {
		switch s.op {
		case 'f':
			return qfFalse()
		case 't':
		case '&':
			flat = append(flat, s.sub...)
		default:
			flat = append(flat, s)
		}
	}
	switch len(flat) {
	case 0:
		return qfTrue()
	case 1:
		return flat[0]
	}
	return &qf{op: '&', sub: flat}
}

func qfOr(sub ...*qf) *qf {
	var flat []*qf
	for _, s := range sub {
		switch s.op {
		case 't':
			return qfTrue()
		case 'f':
		case '|':
			flat = append(flat, s.sub...)
		default:
			flat = append(flat, s)
		}
	}
	switch len(flat) {
	case 0:
		return qfFalse()
	case 1:
		return flat[0]
	}
	return &qf{op: '|', sub: flat}
}

// nodes counts formula nodes, for the resource guard.
func (f *qf) nodes() int {
	n := 1
	for _, s := range f.sub {
		n += s.nodes()
	}
	return n
}

// mapAtoms rebuilds the formula with each atom rewritten.
func (f *qf) mapAtoms(rw func(*qf) *qf) *qf {
	switch f.op {
	case 'a':
		return rw(f)
	case '&':
		out := make([]*qf, len(f.sub))
		for i, s := range f.sub {
			out[i] = s.mapAtoms(rw)
		}
		return qfAnd(out...)
	case '|':
		out := make([]*qf, len(f.sub))
		for i, s := range f.sub {
			out[i] = s.mapAtoms(rw)
		}
		return qfOr(out...)
	}
	return f
}

// visitAtoms calls visit on every atom.
func (f *qf) visitAtoms(visit func(*qf)) {
	switch f.op {
	case 'a':
		visit(f)
	case '&', '|':
		for _, s := range f.sub {
			s.visitAtoms(visit)
		}
	}
}

// subst substitutes variable v by the linear term u in every atom, then
// simplifies ground atoms.
func (f *qf) subst(v string, u LinearTerm) *qf {
	return f.mapAtoms(func(a *qf) *qf {
		return simplifyAtom(qfAtom(a.kind, a.t.Subst(v, u), a.d))
	})
}

// simplifyAtom evaluates ground atoms and normalizes divisibility by 1.
func simplifyAtom(a *qf) *qf {
	switch a.kind {
	case atomLt:
		if a.t.IsConst() {
			if a.t.Const.Sign() < 0 {
				return qfTrue()
			}
			return qfFalse()
		}
	case atomDvd, atomNdvd:
		if a.d.CmpAbs(big.NewInt(1)) == 0 {
			if a.kind == atomDvd {
				return qfTrue()
			}
			return qfFalse()
		}
		if a.t.IsConst() {
			m := new(big.Int).Mod(a.t.Const, new(big.Int).Abs(a.d))
			holds := m.Sign() == 0
			if a.kind == atomNdvd {
				holds = !holds
			}
			if holds {
				return qfTrue()
			}
			return qfFalse()
		}
	}
	return a
}

// cooper eliminates ∃x from a canonical quantifier-free formula using
// Cooper's algorithm (the −∞ / boundary-set version). dedupBounds controls
// boundary-set deduplication; disabling it (the ablation benchmark) keeps
// the algorithm correct but multiplies the output by the redundancy of the
// bound set.
func cooper(x string, f *qf, dedupBounds bool, maxNodes int) (*qf, error) {
	sp := obs.StartSpan("qe.presburger.cooper")
	defer sp.End()
	mCooperQuantifiers.Inc()
	// Step 1: make every x-coefficient ±1. δ is the lcm of |coefficients|;
	// each atom is scaled so its x-coefficient is ±δ, then δx is renamed to
	// a fresh unit variable constrained by δ | x.
	stage := sp.Child("unit")
	delta := big.NewInt(1)
	f.visitAtoms(func(a *qf) {
		c := a.t.Coeff(x)
		if c.Sign() != 0 {
			delta = lcm(delta, c)
		}
	})
	unit := f.mapAtoms(func(a *qf) *qf {
		c := a.t.Coeff(x)
		if c.Sign() == 0 {
			return a
		}
		// Scale so the coefficient of x becomes exactly delta (keeping
		// inequality direction: the factor is positive).
		factor := new(big.Int).Quo(delta, c)
		if factor.Sign() < 0 {
			factor.Neg(factor)
		}
		t := a.t.Scale(factor)
		d := a.d
		if d != nil {
			d = new(big.Int).Mul(d, factor)
		}
		// Rename delta·x to x with coefficient ±1.
		c2 := t.Coeff(x)
		t2 := t.Clone()
		delete(t2.Coeffs, x)
		if c2.Sign() > 0 {
			t2.addCoeff(x, big.NewInt(1))
		} else {
			t2.addCoeff(x, big.NewInt(-1))
		}
		return simplifyAtom(qfAtom(a.kind, t2, d))
	})
	if delta.Cmp(big.NewInt(1)) > 0 {
		unit = qfAnd(unit, qfAtom(atomDvd, FromVar(x), new(big.Int).Set(delta)))
	}
	if stage.Traced() {
		stage.Arg("nodes", int64(unit.nodes()))
	}
	stage.End()
	stage = sp.Child("bounds")

	// Step 2: D = lcm of divisibility moduli involving x.
	bigD := big.NewInt(1)
	unit.visitAtoms(func(a *qf) {
		if (a.kind == atomDvd || a.kind == atomNdvd) && a.t.Coeff(x).Sign() != 0 {
			bigD = lcm(bigD, a.d)
		}
	})

	// Step 3: φ_{-∞} — x + r < 0 becomes true, −x + r < 0 becomes false.
	minusInf := unit.mapAtoms(func(a *qf) *qf {
		if a.kind != atomLt {
			return a
		}
		switch a.t.Coeff(x).Sign() {
		case 1:
			return qfTrue()
		case -1:
			return qfFalse()
		}
		return a
	})

	// Step 4: boundary set B — terms r from atoms −x + r < 0 (x > r).
	var bset []LinearTerm
	unit.visitAtoms(func(a *qf) {
		if a.kind == atomLt && a.t.Coeff(x).Sign() < 0 {
			r := a.t.Clone()
			delete(r.Coeffs, x)
			bset = append(bset, r)
		}
	})
	uniq := bset
	if dedupBounds {
		uniq = uniq[:0:0]
		for _, r := range bset {
			dup := false
			for _, u := range uniq {
				if u.Equal(r) {
					dup = true
					break
				}
			}
			if !dup {
				uniq = append(uniq, r)
			}
		}
	}

	stage.Arg("bound_set", int64(len(uniq)))
	stage.Arg("bound_set_raw", int64(len(bset)))
	stage.End()
	hCooperBoundSet.Observe(int64(len(uniq)))

	if !bigD.IsInt64() || bigD.Int64() > 1<<20 {
		return nil, fmt.Errorf("presburger: divisor lcm %v too large", bigD)
	}
	n := bigD.Int64()

	// Resource guard, before constructing: the result has
	// D·(1+|B|) copies of the matrix. Floating point avoids overflow in
	// the estimate itself.
	if est := float64(n) * float64(1+len(uniq)) * float64(unit.nodes()); est > float64(maxNodes) {
		return nil, fmt.Errorf("presburger: elimination of %s would build ~%.0f nodes (Cooper blowup)", x, est)
	}

	stage = sp.Child("expand")
	defer stage.End()
	var disjuncts []*qf
	for j := int64(1); j <= n; j++ {
		disjuncts = append(disjuncts, minusInf.subst(x, FromConst(big.NewInt(j))))
		for _, r := range uniq {
			disjuncts = append(disjuncts, unit.subst(x, r.AddInt(j)))
		}
	}
	out := qfOr(disjuncts...)
	if stage.Traced() {
		stage.Arg("divisor_lcm", n)
		stage.Arg("disjuncts", int64(len(disjuncts)))
		stage.Arg("nodes", int64(out.nodes()))
	}
	return out, nil
}

func lcm(a, b *big.Int) *big.Int {
	aa := new(big.Int).Abs(a)
	bb := new(big.Int).Abs(b)
	g := new(big.Int).GCD(nil, nil, aa, bb)
	out := new(big.Int).Mul(aa, bb)
	return out.Quo(out, g)
}

// canonicalize converts an NNF quantifier-free logic formula into the
// internal representation, resolving negations into the three positive atom
// kinds.
func canonicalize(f *logic.Formula) (*qf, error) {
	switch f.Kind {
	case logic.FTrue:
		return qfTrue(), nil
	case logic.FFalse:
		return qfFalse(), nil
	case logic.FAnd:
		out := make([]*qf, len(f.Sub))
		for i, s := range f.Sub {
			g, err := canonicalize(s)
			if err != nil {
				return nil, err
			}
			out[i] = g
		}
		return qfAnd(out...), nil
	case logic.FOr:
		out := make([]*qf, len(f.Sub))
		for i, s := range f.Sub {
			g, err := canonicalize(s)
			if err != nil {
				return nil, err
			}
			out[i] = g
		}
		return qfOr(out...), nil
	case logic.FAtom:
		return canonicalAtom(f, true)
	case logic.FNot:
		if f.Sub[0].Kind != logic.FAtom {
			return nil, fmt.Errorf("presburger: canonicalize expects NNF, found %v", f)
		}
		return canonicalAtom(f.Sub[0], false)
	}
	return nil, fmt.Errorf("presburger: canonicalize on %v", f)
}

// canonicalAtom renders one (possibly negated) atom into the internal form.
//
//	a < b   ⟺  a − b < 0          ¬(a < b) ⟺ b − a − 1 < 0… i.e. b ≤ a
//	a = b   ⟺  a − b < 1 ∧ b − a < 1
//	¬(a=b)  ⟺  a − b < 0 ∨ b − a < 0
func canonicalAtom(f *logic.Formula, positive bool) (*qf, error) {
	lt := func(t LinearTerm) *qf { return simplifyAtom(qfAtom(atomLt, t, nil)) }
	switch f.Pred {
	case logic.EqPred, PredLt, PredLe, PredGt, PredGe:
		if len(f.Args) != 2 {
			return nil, fmt.Errorf("presburger: %s expects 2 arguments", f.Pred)
		}
		a, err := ParseLinear(f.Args[0])
		if err != nil {
			return nil, err
		}
		b, err := ParseLinear(f.Args[1])
		if err != nil {
			return nil, err
		}
		// Normalize to "< " or "=" with sides possibly swapped/shifted.
		switch f.Pred {
		case PredGt:
			a, b = b, a // a > b ⟺ b < a
		case PredGe:
			a, b = b, a.AddInt(1) // a ≥ b ⟺ b < a+1
		case PredLe:
			b = b.AddInt(1) // a ≤ b ⟺ a < b+1
		}
		if f.Pred == logic.EqPred {
			d1 := a.Sub(b).AddInt(-1) // a−b−1 < 0 ⟺ a ≤ b
			d2 := b.Sub(a).AddInt(-1)
			if positive {
				return qfAnd(lt(d1.AddInt(0)), lt(d2)), nil
			}
			return qfOr(lt(a.Sub(b)), lt(b.Sub(a))), nil
		}
		diff := a.Sub(b)
		if positive {
			return lt(diff), nil
		}
		// ¬(a < b) ⟺ b ≤ a ⟺ b − a − 1 < 0.
		return lt(diff.Neg().AddInt(-1)), nil
	case PredDvd:
		if len(f.Args) != 2 {
			return nil, fmt.Errorf("presburger: dvd expects 2 arguments")
		}
		k, err := ParseLinear(f.Args[0])
		if err != nil {
			return nil, err
		}
		if !k.IsConst() || k.Const.Sign() <= 0 {
			return nil, fmt.Errorf("presburger: dvd modulus must be a positive numeral, got %v", f.Args[0])
		}
		t, err := ParseLinear(f.Args[1])
		if err != nil {
			return nil, err
		}
		kind := atomDvd
		if !positive {
			kind = atomNdvd
		}
		return simplifyAtom(qfAtom(kind, t, new(big.Int).Set(k.Const))), nil
	}
	return nil, fmt.Errorf("presburger: unknown predicate %q", f.Pred)
}

// render converts the internal representation back to a logic formula.
func render(f *qf) *logic.Formula {
	switch f.op {
	case 't':
		return logic.True()
	case 'f':
		return logic.False()
	case '&':
		out := make([]*logic.Formula, len(f.sub))
		for i, s := range f.sub {
			out[i] = render(s)
		}
		return logic.And(out...)
	case '|':
		out := make([]*logic.Formula, len(f.sub))
		for i, s := range f.sub {
			out[i] = render(s)
		}
		return logic.Or(out...)
	}
	switch f.kind {
	case atomLt:
		return logic.Atom(PredLt, Render(f.t), logic.Const("0"))
	case atomDvd:
		return logic.Atom(PredDvd, logic.Const(f.d.String()), Render(f.t))
	default:
		return logic.Not(logic.Atom(PredDvd, logic.Const(f.d.String()), Render(f.t)))
	}
}

// evalQF evaluates the internal representation under an integer environment.
func (f *qf) eval(env map[string]*big.Int) (bool, error) {
	switch f.op {
	case 't':
		return true, nil
	case 'f':
		return false, nil
	case '&':
		for _, s := range f.sub {
			v, err := s.eval(env)
			if err != nil || !v {
				return false, err
			}
		}
		return true, nil
	case '|':
		for _, s := range f.sub {
			v, err := s.eval(env)
			if err != nil {
				return false, err
			}
			if v {
				return true, nil
			}
		}
		return false, nil
	}
	val, err := f.t.Eval(env)
	if err != nil {
		return false, err
	}
	switch f.kind {
	case atomLt:
		return val.Sign() < 0, nil
	case atomDvd:
		return new(big.Int).Mod(val, f.d).Sign() == 0, nil
	default:
		return new(big.Int).Mod(val, f.d).Sign() != 0, nil
	}
}
