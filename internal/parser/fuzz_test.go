package parser

import (
	"testing"

	"repro/internal/logic"
)

// FuzzParse checks that the parser never panics and that successful parses
// round-trip through printing: Parse(String(Parse(s))) must equal
// Parse(s)'s printed form.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"true",
		"P(x)",
		"exists x. (P(x) & ~Q(x, y))",
		"forall x. (x = y -> R(x) | x != z)",
		`P("1&*|") <-> Q(a, f(b))`,
		"((((P(x)))))",
		"x = y & y = z",
		"~~~P(x)",
		"exists x. exists y. exists z. (x = y & y != z)",
		`"unclosed`,
		"P(x",
		"@#$%",
		"",
		"exists . P(x)",
		"P(x)) & Q",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Parse(input)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		printed := g.String()
		h, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form %q of accepted input %q does not re-parse: %v", printed, input, err)
		}
		if h.String() != printed {
			t.Fatalf("print/parse not stable: %q vs %q", printed, h.String())
		}
	})
}

// FuzzParseTerm checks term parsing stability.
func FuzzParseTerm(f *testing.F) {
	for _, s := range []string{"x", "f(x, y)", `"1&"`, "42", "f(g(h(x)))", "f("} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		tm, err := ParseTerm(input, Options{})
		if err != nil {
			return
		}
		printed := tm.String()
		tm2, err := ParseTerm(printed, Options{})
		if err != nil {
			t.Fatalf("printed term %q does not re-parse: %v", printed, err)
		}
		if !tm2.Equal(tm) && tm2.String() != printed {
			t.Fatalf("term round trip unstable: %v vs %v", tm, tm2)
		}
	})
}

// FuzzNNF checks the normal-form pipeline never panics on parsed input and
// always yields NNF.
func FuzzNNF(f *testing.F) {
	for _, s := range []string{
		"~(P(x) & Q(x))",
		"~(exists x. (P(x) <-> Q(x)))",
		"forall x. ~(x = y -> P(x))",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Parse(input)
		if err != nil {
			return
		}
		n := logic.NNF(g)
		if !logic.IsNNF(n) {
			t.Fatalf("NNF(%v) = %v not in NNF", g, n)
		}
		prefix, matrix := logic.Prenex(g)
		if !matrix.QuantifierFree() {
			t.Fatalf("prenex matrix has quantifiers")
		}
		_ = prefix
	})
}
