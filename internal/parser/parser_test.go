package parser

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/logic"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		in   string
		want *logic.Formula
	}{
		{"true", logic.True()},
		{"false", logic.False()},
		{"P(x)", logic.Atom("P", logic.Var("x"))},
		{"R(x, y)", logic.Atom("R", logic.Var("x"), logic.Var("y"))},
		{"x = y", logic.Eq(logic.Var("x"), logic.Var("y"))},
		{"x != y", logic.Neq(logic.Var("x"), logic.Var("y"))},
		{"~P(x)", logic.Not(logic.Atom("P", logic.Var("x")))},
		{"P(x) & Q(x)", logic.And(logic.Atom("P", logic.Var("x")), logic.Atom("Q", logic.Var("x")))},
		{"P(x) | Q(x)", logic.Or(logic.Atom("P", logic.Var("x")), logic.Atom("Q", logic.Var("x")))},
		{"P(x) -> Q(x)", logic.Implies(logic.Atom("P", logic.Var("x")), logic.Atom("Q", logic.Var("x")))},
		{"P(x) <-> Q(x)", logic.Iff(logic.Atom("P", logic.Var("x")), logic.Atom("Q", logic.Var("x")))},
		{"exists x. P(x)", logic.Exists("x", logic.Atom("P", logic.Var("x")))},
		{"forall x. P(x)", logic.Forall("x", logic.Atom("P", logic.Var("x")))},
		{"P(5)", logic.Atom("P", logic.Const("5"))},
		{`P("1&*")`, logic.Atom("P", logic.Const("1&*"))},
		{"x = f(y)", logic.Eq(logic.Var("x"), logic.App("f", logic.Var("y")))},
		{"(P(x))", logic.Atom("P", logic.Var("x"))},
		{"P()", logic.Atom("P")},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPrecedence(t *testing.T) {
	// & binds tighter than |, | tighter than ->, -> tighter than <->.
	f := MustParse("P(x) & Q(x) | R(x) -> S(x) <-> T(x)")
	if f.Kind != logic.FIff {
		t.Fatalf("top should be iff: %v", f)
	}
	imp := f.Sub[0]
	if imp.Kind != logic.FImplies {
		t.Fatalf("lhs should be implies: %v", imp)
	}
	or := imp.Sub[0]
	if or.Kind != logic.FOr {
		t.Fatalf("lhs of -> should be or: %v", or)
	}
	if or.Sub[0].Kind != logic.FAnd {
		t.Fatalf("first disjunct should be and: %v", or)
	}
}

func TestImpliesRightAssociative(t *testing.T) {
	f := MustParse("P(x) -> Q(x) -> R(x)")
	if f.Kind != logic.FImplies || f.Sub[1].Kind != logic.FImplies {
		t.Fatalf("-> not right associative: %v", f)
	}
}

func TestQuantifierScope(t *testing.T) {
	// The quantifier body is a unary formula: "exists x. P(x) & Q(x)"
	// parses as (exists x. P(x)) & Q(x); parentheses extend the scope.
	f := MustParse("exists x. P(x) & Q(x)")
	if f.Kind != logic.FAnd {
		t.Fatalf("expected conjunction at top: %v", f)
	}
	g := MustParse("exists x. (P(x) & Q(x))")
	if g.Kind != logic.FExists || g.Sub[0].Kind != logic.FAnd {
		t.Fatalf("parenthesized body should be inside: %v", g)
	}
}

func TestConstantsOption(t *testing.T) {
	opts := Options{Constants: map[string]bool{"c": true}}
	f := MustParseWith("P(c) & P(x)", opts)
	if f.Sub[0].Args[0].Kind != logic.TConst {
		t.Errorf("c should be a constant: %v", f)
	}
	if f.Sub[1].Args[0].Kind != logic.TVar {
		t.Errorf("x should be a variable: %v", f)
	}
}

func TestFunctionsOptionInFormulaPosition(t *testing.T) {
	// With m declared a function, "m(x) = y" must parse m as a function
	// application, not a predicate atom.
	opts := Options{Functions: map[string]bool{"m": true}}
	f, err := ParseWith("m(x) = y", opts)
	if err != nil {
		t.Fatalf("ParseWith: %v", err)
	}
	if !f.IsEq() || f.Args[0].Kind != logic.TApp || f.Args[0].Name != "m" {
		t.Fatalf("got %v", f)
	}
	// Without the declaration it is a predicate atom and then '=' is a
	// syntax error.
	if _, err := Parse("m(x) = y"); err == nil {
		t.Errorf("expected error without function declaration")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "P(", "P(x", "(P(x)", "P(x))", "x", "x =", "= x",
		"exists . P(x)", "exists x P(x)", "P(x) &", "@", "x < y",
		`"unterminated`, "P(x) Q(x)", "~", "forall 5. P(x)",
	}
	for _, in := range bad {
		if f, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded with %v, want error", in, f)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	// Formula -> String -> Parse must reproduce the formula. Use the same
	// random generator as the logic tests.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		f := randFormula(rng, 4)
		s := f.String()
		g, err := Parse(s)
		if err != nil {
			t.Fatalf("round trip parse of %q failed: %v", s, err)
		}
		// String() flattens nested And/Or of the same kind, so compare via a
		// second print rather than structural equality.
		if g.String() != s {
			t.Fatalf("round trip mismatch:\n in: %s\nout: %s", s, g.String())
		}
	}
}

func TestRoundTripWeirdConstants(t *testing.T) {
	words := []string{"", "1&*|", "1|1&|", "&&", `a"b\c`}
	for _, w := range words {
		f := logic.Atom("P", logic.Const(w))
		g, err := Parse(f.String())
		if err != nil {
			t.Fatalf("parse %q: %v", f.String(), err)
		}
		if !g.Equal(f) {
			t.Errorf("round trip of constant %q: got %v", w, g)
		}
	}
}

func TestParseTerm(t *testing.T) {
	tm, err := ParseTerm("f(x, 3)", Options{})
	if err != nil {
		t.Fatalf("ParseTerm: %v", err)
	}
	want := logic.App("f", logic.Var("x"), logic.Const("3"))
	if !tm.Equal(want) {
		t.Errorf("got %v, want %v", tm, want)
	}
	if _, err := ParseTerm("f(x,", Options{}); err == nil {
		t.Errorf("expected error")
	}
	if _, err := ParseTerm("x y", Options{}); err == nil {
		t.Errorf("expected trailing-input error")
	}
}

func TestKeywordsNotIdentifiers(t *testing.T) {
	// "true" and "false" in formula position are the constants, not atoms.
	f := MustParse("true & P(x)")
	if f.Sub[0].Kind != logic.FTrue {
		t.Errorf("true should parse as the propositional constant: %v", f)
	}
}

func TestWhitespaceInsensitive(t *testing.T) {
	a := MustParse("exists x.(P( x )&Q(x))")
	b := MustParse("exists x . ( P(x) & Q(x) )")
	if !a.Equal(b) {
		t.Errorf("whitespace sensitivity: %v vs %v", a, b)
	}
}

// randFormula mirrors the generator in the logic package tests but only
// produces formulas whose String() round-trips (any formula does).
func randFormula(rng *rand.Rand, depth int) *logic.Formula {
	vars := []string{"x", "y", "z"}
	terms := []logic.Term{logic.Var("x"), logic.Var("y"), logic.Var("z"),
		logic.Const("a"), logic.Const("1&|")}
	randTerm := func() logic.Term { return terms[rng.Intn(len(terms))] }
	atom := func() *logic.Formula {
		switch rng.Intn(3) {
		case 0:
			return logic.Atom("P", randTerm())
		case 1:
			return logic.Atom("R", randTerm(), randTerm())
		default:
			return logic.Eq(randTerm(), randTerm())
		}
	}
	if depth == 0 {
		return atom()
	}
	switch rng.Intn(8) {
	case 0:
		return atom()
	case 1:
		return logic.Not(randFormula(rng, depth-1))
	case 2:
		return logic.And(randFormula(rng, depth-1), randFormula(rng, depth-1))
	case 3:
		return logic.Or(randFormula(rng, depth-1), randFormula(rng, depth-1))
	case 4:
		return logic.Implies(randFormula(rng, depth-1), randFormula(rng, depth-1))
	case 5:
		return logic.Iff(randFormula(rng, depth-1), randFormula(rng, depth-1))
	case 6:
		return logic.Exists(vars[rng.Intn(len(vars))], randFormula(rng, depth-1))
	default:
		return logic.Forall(vars[rng.Intn(len(vars))], randFormula(rng, depth-1))
	}
}

func TestErrorMessagesMentionOffset(t *testing.T) {
	_, err := Parse("P(x) @")
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Errorf("error should mention offset: %v", err)
	}
}
