package parser

import (
	"fmt"

	"repro/internal/logic"
)

// Options control how identifiers in term position are classified.
type Options struct {
	// Constants lists identifiers that denote constants rather than
	// variables. Numerals and quoted strings are always constants.
	Constants map[string]bool
	// Functions lists identifiers that denote functions; an identifier
	// followed by "(" in term position must be in this set (in formula
	// position it is a predicate).
	Functions map[string]bool
}

// Parse parses a formula with default options: all plain identifiers in term
// position are variables.
func Parse(input string) (*logic.Formula, error) {
	return ParseWith(input, Options{})
}

// ParseWith parses a formula under the given identifier classification.
func ParseWith(input string, opts Options) (*logic.Formula, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, opts: opts}
	f, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("trailing input starting with %v", p.peek().kind)
	}
	return f, nil
}

// MustParse is Parse panicking on error; for tests and package examples.
func MustParse(input string) *logic.Formula {
	f, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return f
}

// MustParseWith is ParseWith panicking on error.
func MustParseWith(input string, opts Options) *logic.Formula {
	f, err := ParseWith(input, opts)
	if err != nil {
		panic(err)
	}
	return f
}

// ParseTerm parses a single term.
func ParseTerm(input string, opts Options) (logic.Term, error) {
	toks, err := lex(input)
	if err != nil {
		return logic.Term{}, err
	}
	p := &parser{toks: toks, opts: opts}
	t, err := p.parseTerm()
	if err != nil {
		return logic.Term{}, err
	}
	if p.peek().kind != tokEOF {
		return logic.Term{}, p.errorf("trailing input starting with %v", p.peek().kind)
	}
	return t, nil
}

type parser struct {
	toks []token
	pos  int
	opts Options
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.peek()
	if t.kind != kind {
		return t, p.errorf("expected %v, found %v", kind, t.kind)
	}
	return p.next(), nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("parser: offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseFormula() (*logic.Formula, error) { return p.parseIff() }

func (p *parser) parseIff() (*logic.Formula, error) {
	left, err := p.parseImplies()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokIff {
		p.next()
		right, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		left = logic.Iff(left, right)
	}
	return left, nil
}

func (p *parser) parseImplies() (*logic.Formula, error) {
	left, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokImplies {
		p.next()
		right, err := p.parseImplies() // right associative
		if err != nil {
			return nil, err
		}
		return logic.Implies(left, right), nil
	}
	return left, nil
}

func (p *parser) parseOr() (*logic.Formula, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	parts := []*logic.Formula{left}
	for p.peek().kind == tokOr {
		p.next()
		f, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		parts = append(parts, f)
	}
	return logic.Or(parts...), nil
}

func (p *parser) parseAnd() (*logic.Formula, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	parts := []*logic.Formula{left}
	for p.peek().kind == tokAnd {
		p.next()
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		parts = append(parts, f)
	}
	return logic.And(parts...), nil
}

func (p *parser) parseUnary() (*logic.Formula, error) {
	switch t := p.peek(); t.kind {
	case tokNot:
		p.next()
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return logic.Not(f), nil
	case tokIdent:
		switch t.text {
		case "exists", "forall":
			p.next()
			v, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokDot); err != nil {
				return nil, err
			}
			body, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			if t.text == "exists" {
				return logic.Exists(v.text, body), nil
			}
			return logic.Forall(v.text, body), nil
		}
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (*logic.Formula, error) {
	t := p.peek()
	switch t.kind {
	case tokLParen:
		p.next()
		f, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return f, nil
	case tokIdent:
		switch t.text {
		case "true":
			p.next()
			return logic.True(), nil
		case "false":
			p.next()
			return logic.False(), nil
		}
		// Predicate atom P(args) unless followed by =/!= (then it is the
		// start of a term) or the identifier is a declared function.
		if p.lookaheadIsCall() && !p.opts.Functions[t.text] {
			p.next()
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return logic.Atom(t.text, args...), nil
		}
	}
	// term (= | !=) term
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	switch p.peek().kind {
	case tokEq:
		p.next()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		return logic.Eq(left, right), nil
	case tokNeq:
		p.next()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		return logic.Neq(left, right), nil
	}
	return nil, p.errorf("expected '=' or '!=' after term, found %v", p.peek().kind)
}

// lookaheadIsCall reports whether the current identifier is followed by "(".
func (p *parser) lookaheadIsCall() bool {
	return p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokLParen
}

func (p *parser) parseArgs() ([]logic.Term, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var args []logic.Term
	if p.peek().kind != tokRParen {
		for {
			t, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			args = append(args, t)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *parser) parseTerm() (logic.Term, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		return logic.Const(t.text), nil
	case tokString:
		p.next()
		return logic.Const(t.text), nil
	case tokIdent:
		p.next()
		if p.peek().kind == tokLParen {
			args, err := p.parseArgs()
			if err != nil {
				return logic.Term{}, err
			}
			return logic.App(t.text, args...), nil
		}
		if p.opts.Constants[t.text] {
			return logic.Const(t.text), nil
		}
		return logic.Var(t.text), nil
	}
	return logic.Term{}, p.errorf("expected term, found %v", t.kind)
}
