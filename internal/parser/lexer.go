// Package parser parses the concrete formula syntax used by the command-line
// tools and tests, and printed by logic.Formula.String:
//
//	formula  := iff
//	iff      := implies ("<->" implies)*
//	implies  := or ("->" or)*          (right associative)
//	or       := and ("|" and)*
//	and      := unary ("&" unary)*
//	unary    := "~" unary | "exists" ident "." unary | "forall" ident "." unary | atom
//	atom     := "true" | "false" | "(" formula ")"
//	          | term ("=" | "!=") term | ident "(" terms ")"
//	term     := ident | quoted-string | ident "(" terms ")"
//
// Identifiers starting with a lower- or upper-case letter can be variables,
// constants, or symbols; plain numerals and quoted strings are constants.
// An identifier in term position is a variable unless it is declared a
// constant via Options.Constants or appears in Options.Vars as false.
package parser

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokEq
	tokNeq
	tokNot
	tokAnd
	tokOr
	tokImplies
	tokIff
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokEq:
		return "'='"
	case tokNeq:
		return "'!='"
	case tokNot:
		return "'~'"
	case tokAnd:
		return "'&'"
	case tokOr:
		return "'|'"
	case tokImplies:
		return "'->'"
	case tokIff:
		return "'<->'"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes a formula string.
type lexer struct {
	input string
	pos   int
	toks  []token
}

func lex(input string) ([]token, error) {
	l := &lexer{input: input}
	for {
		l.skipSpace()
		if l.pos >= len(l.input) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		start := l.pos
		c := l.input[l.pos]
		switch {
		case c == '(':
			l.pos++
			l.emit(tokLParen, "(")
		case c == ')':
			l.pos++
			l.emit(tokRParen, ")")
		case c == ',':
			l.pos++
			l.emit(tokComma, ",")
		case c == '.':
			l.pos++
			l.emit(tokDot, ".")
		case c == '=':
			l.pos++
			l.emit(tokEq, "=")
		case c == '~':
			l.pos++
			l.emit(tokNot, "~")
		case c == '&':
			l.pos++
			l.emit(tokAnd, "&")
		case c == '|':
			l.pos++
			l.emit(tokOr, "|")
		case c == '!':
			if strings.HasPrefix(l.input[l.pos:], "!=") {
				l.pos += 2
				l.emit(tokNeq, "!=")
			} else {
				return nil, fmt.Errorf("parser: unexpected %q at offset %d", c, start)
			}
		case c == '-':
			if strings.HasPrefix(l.input[l.pos:], "->") {
				l.pos += 2
				l.emit(tokImplies, "->")
			} else {
				return nil, fmt.Errorf("parser: unexpected %q at offset %d", c, start)
			}
		case c == '<':
			if strings.HasPrefix(l.input[l.pos:], "<->") {
				l.pos += 3
				l.emit(tokIff, "<->")
			} else {
				return nil, fmt.Errorf("parser: unexpected %q at offset %d", c, start)
			}
		case c == '"':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokString, text: s, pos: start})
		case isDigit(rune(c)):
			for l.pos < len(l.input) && isDigit(rune(l.input[l.pos])) {
				l.pos++
			}
			l.emitAt(tokNumber, l.input[start:l.pos], start)
		case isIdentStart(rune(c)):
			for l.pos < len(l.input) && isIdentPart(rune(l.input[l.pos])) {
				l.pos++
			}
			l.emitAt(tokIdent, l.input[start:l.pos], start)
		default:
			return nil, fmt.Errorf("parser: unexpected %q at offset %d", c, start)
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.input) && unicode.IsSpace(rune(l.input[l.pos])) {
		l.pos++
	}
}

func (l *lexer) emit(kind tokenKind, text string) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: l.pos - len(text)})
}

func (l *lexer) emitAt(kind tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: pos})
}

func (l *lexer) lexString() (string, error) {
	start := l.pos
	// Find the closing quote, honoring backslash escapes, then let
	// strconv.Unquote decode the body.
	i := l.pos + 1
	for i < len(l.input) {
		switch l.input[i] {
		case '\\':
			i += 2
			continue
		case '"':
			raw := l.input[start : i+1]
			s, err := strconv.Unquote(raw)
			if err != nil {
				return "", fmt.Errorf("parser: bad string literal at offset %d: %v", start, err)
			}
			l.pos = i + 1
			return s, nil
		}
		i++
	}
	return "", fmt.Errorf("parser: unterminated string literal at offset %d", start)
}

func isDigit(r rune) bool { return r >= '0' && r <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || isDigit(r)
}
