package query

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/logic"
	"repro/internal/obs"
)

// EnumerationBudget bounds the §1.1 algorithm: Rows caps the number of
// answer rows produced, Probe caps how many candidate tuples are tested per
// row. The algorithm itself always terminates on finite queries; the budget
// makes it total on infinite ones too, returning an incomplete answer.
type EnumerationBudget struct {
	Rows  int
	Probe int
}

// DefaultBudget is a budget suitable for the examples and tests.
var DefaultBudget = EnumerationBudget{Rows: 1 << 10, Probe: 1 << 16}

// Enumerable is the capability bundle the §1.1 algorithm needs: "consider a
// countable domain with decidable theory [and] constants for all elements
// of the domain".
type Enumerable interface {
	domain.Domain
	domain.Enumerator
}

// RowSink receives answer rows as the enumeration finds them, before the
// final Answer is assembled — the hook streaming delivery hangs on. The
// tuple is shared with the answer under construction and must not be
// mutated. A non-nil error stops the enumeration: the rows so far come
// back as a partial answer alongside the error wrapped in SinkError, so
// callers can tell a delivery failure (client gone) from an evaluation
// failure.
type RowSink func(vars []string, row db.Tuple) error

// SinkError wraps a RowSink's error so callers can distinguish delivery
// failures from evaluation failures.
type SinkError struct{ Err error }

func (e *SinkError) Error() string { return "query: row sink: " + e.Err.Error() }

// Unwrap exposes the sink's error to errors.Is/As.
func (e *SinkError) Unwrap() error { return e.Err }

// deliverRow hands a freshly found row to the sink, if any, wrapping a
// sink failure.
func deliverRow(sink RowSink, vars []string, row db.Tuple) error {
	if sink == nil {
		return nil
	}
	if err := sink(vars, row); err != nil {
		return &SinkError{Err: err}
	}
	return nil
}

// EnumerationAnswer runs the query-answering algorithm of §1.1 of the
// paper. The query is first translated into a pure domain formula φ'(x̄)
// over the state. Then, repeatedly:
//
//   - the sentence ∃x̄ (φ'(x̄) ∧ x̄ ∉ found) is decided; if false, the answer
//     is complete;
//   - otherwise candidate tuples ā are enumerated and the ground sentences
//     φ'(ā) decided one at a time until the next row is found.
//
// "Note that, at least for safe queries, this algorithm always stops." For
// unsafe queries in unlucky states it would not, so the budget caps it and
// Complete is reported false.
//
// Two cost structures of the naive transcription are avoided: the
// exclusion conjunction ⋀ x̄ ∉ found is extended by one clause per found
// row instead of being rebuilt from φ' each iteration (the resulting
// formula is node-for-node the same, since formulas are immutable and
// share structure), and the probe scan grounds φ' itself — already-found
// rows are skipped by a membership check rather than re-asked through the
// decider — so with a memoized decider (internal/deccache) the re-scanned
// prefix of each row's probe sequence costs map lookups, not quantifier
// eliminations.
func EnumerationAnswer(dom Enumerable, dec domain.Decider, st *db.State,
	f *logic.Formula, budget EnumerationBudget) (*Answer, error) {
	return EnumerationAnswerCtx(context.Background(), dom, dec, st, f, budget)
}

// EnumerationAnswerCtx is the §1.1 algorithm under a context: the context
// is polled before every existential decision, handed to context-aware
// deciders (so a cancellation can also abandon a quantifier elimination in
// flight), and polled between probe candidates. On cancellation the rows
// found so far are returned with Complete=false alongside the context's
// error — one request's deadline yields a partial answer, not a wasted
// computation.
func EnumerationAnswerCtx(ctx context.Context, dom Enumerable, dec domain.Decider, st *db.State,
	f *logic.Formula, budget EnumerationBudget) (*Answer, error) {
	return EnumerationAnswerSinkCtx(ctx, dom, dec, st, f, budget, nil)
}

// EnumerationAnswerSinkCtx is EnumerationAnswerCtx with per-row delivery:
// a non-nil sink receives each answer row as it is found, before the next
// existential decision — the streaming endpoint flushes rows to the
// client from here. Row order, budget accounting, and partial-answer
// behavior are identical with and without a sink.
func EnumerationAnswerSinkCtx(ctx context.Context, dom Enumerable, dec domain.Decider, st *db.State,
	f *logic.Formula, budget EnumerationBudget, sink RowSink) (*Answer, error) {

	ctx, sp := obs.StartSpanCtx(ctx, "query.enumerate")
	defer sp.End()
	mEnumCalls.Inc()
	// Compiled-plan fast path: an algebra-tier plan materializes the
	// answer once and the probe loop replays against it — identical rows,
	// order, and budget accounting, no per-probe decision procedure.
	if ans, err, ok := planEnumerationAnswer(ctx, sp, dom, st, f, budget, sink); ok {
		return ans, err
	}
	pure, err := Translate(dom, st, f)
	if err != nil {
		return nil, err
	}
	vars := pure.FreeVars()
	if len(vars) == 0 {
		// Boolean query: a single decision.
		mEnumDecisions.Inc()
		v, err := domain.DecideCtx(ctx, dec, pure)
		if err != nil {
			return nil, err
		}
		return NewBoolAnswer(v), nil
	}

	ans := &Answer{Vars: vars, Rows: db.NewRelation(len(vars)), Complete: false}
	// remaining carries φ' ∧ ⋀_rows ¬(x̄ = row) across iterations, growing
	// by one conjunct per row; foundKeys mirrors the exclusion as a set so
	// the probe scan can skip found rows without a decision.
	remaining := pure
	foundKeys := map[string]bool{}
	rows := 0
	for rows < budget.Rows {
		// Each iteration (one existential decision plus the probe scan for
		// the next row) is a child span: in an exported trace the successive
		// "row" spans make the per-row cost growth of E1 directly visible.
		rsp := sp.Child("row")
		rsp.Arg("row_index", int64(rows))
		if rsp.Traced() {
			rsp.Arg("formula_size", int64(remaining.Size()))
		}
		mEnumDecisions.Inc()
		more, err := domain.DecideCtx(ctx, dec, logic.ExistsAll(vars, remaining))
		if err != nil {
			rsp.End()
			if canceledErr(err) {
				sp.Arg("rows", int64(ans.Rows.Len()))
				return ans, err
			}
			return nil, err
		}
		if !more {
			rsp.End()
			ans.Complete = true
			mEnumRows.Add(int64(ans.Rows.Len()))
			sp.Arg("rows", int64(ans.Rows.Len()))
			return ans, nil
		}
		row, probes, err := nextRow(ctx, dom, dec, pure, foundKeys, vars, budget.Probe)
		rsp.Arg("probes", int64(probes))
		rsp.End()
		if err != nil {
			if canceledErr(err) {
				sp.Arg("rows", int64(ans.Rows.Len()))
				return ans, err
			}
			return nil, err
		}
		if row == nil {
			mEnumExhausted.Inc()
			mEnumRows.Add(int64(ans.Rows.Len()))
			sp.Arg("rows", int64(ans.Rows.Len()))
			return ans, nil // probe budget exhausted
		}
		// ∃x̄ (φ' ∧ ⋀_rows ¬(x̄ = row)): one more exclusion conjunct.
		var eqs []*logic.Formula
		for i, name := range vars {
			eqs = append(eqs, logic.Eq(logic.Var(name), logic.Const(dom.ConstName(row[i]))))
		}
		remaining = logic.And(remaining, logic.Not(logic.And(eqs...)))
		foundKeys[row.Key()] = true
		rows++
		if err := ans.Rows.Add(row); err != nil {
			return nil, err
		}
		if err := deliverRow(sink, vars, row); err != nil {
			sp.Arg("rows", int64(ans.Rows.Len()))
			return ans, err
		}
	}
	mEnumExhausted.Inc()
	mEnumRows.Add(int64(ans.Rows.Len()))
	sp.Arg("rows", int64(ans.Rows.Len()))
	return ans, nil
}

// NaturalMember decides whether a tuple belongs to a query's answer under
// the natural (unrestricted) semantics: the query is translated to a pure
// formula, the tuple substituted, and the ground sentence decided. This is
// the membership question that remains answerable even for infinite
// answers — the observation behind the paper's §1.2.
func NaturalMember(dom domain.Domain, dec domain.Decider, st *db.State,
	f *logic.Formula, tuple map[string]domain.Value) (bool, error) {

	pure, err := Translate(dom, st, f)
	if err != nil {
		return false, err
	}
	for _, v := range pure.FreeVars() {
		val, ok := tuple[v]
		if !ok {
			return false, fmt.Errorf("query: tuple misses variable %q", v)
		}
		pure = logic.Subst(pure, v, logic.Const(dom.ConstName(val)))
	}
	return dec.Decide(pure)
}

// NewBoolAnswer builds the answer of a boolean (no free variables) query:
// a single marker row when true, no rows when false. It is the
// construction the evaluators use internally, exported so wire codecs
// (statejson) can rebuild boolean answers.
func NewBoolAnswer(truth bool) *Answer {
	ans := &Answer{Vars: nil, Rows: db.NewRelation(1), Complete: true}
	if truth {
		if err := ans.Rows.Add(db.Tuple{markerTrue{}}); err != nil {
			panic(err) // arity 1 by construction
		}
	}
	return ans
}

// nextRow enumerates candidate tuples ("let us order all tuples of elements
// of the domain of the size of x̄") and returns the first satisfying one
// plus the number of probes spent, or nil when the probe budget runs out.
//
// Candidates already in found consume a probe — exactly as they did when
// the exclusion conjunction was grounded and decided for them — but are
// skipped by the set lookup instead of a decision. The remaining
// candidates ground φ' itself, so the same ground sentence is asked for a
// candidate on every row that re-scans past it, which is what makes the
// decision cache effective on this path.
func nextRow(ctx context.Context, dom Enumerable, dec domain.Decider, pure *logic.Formula,
	found map[string]bool, vars []string, probe int) (db.Tuple, int, error) {

	k := len(vars)
	gen := newTupleGen(k)
	for i := 0; i < probe; i++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, i, err
			}
		}
		mEnumProbes.Inc()
		idx := gen.next()
		tuple := make(db.Tuple, k)
		for j := range idx {
			tuple[j] = dom.Element(idx[j])
		}
		if found[tuple.Key()] {
			continue
		}
		ground := pure
		for j, name := range vars {
			ground = logic.Subst(ground, name, logic.Const(dom.ConstName(tuple[j])))
		}
		ok, err := domain.DecideCtx(ctx, dec, ground)
		if err != nil {
			if canceledErr(err) {
				return nil, i + 1, err
			}
			return nil, i + 1, fmt.Errorf("query: deciding ground instance: %w", err)
		}
		if ok {
			return tuple, i + 1, nil
		}
	}
	return nil, probe, nil
}

// tupleGen yields the bijective enumeration of ℕ^k incrementally: call
// next() repeatedly to receive tupleIndices(k, 0), tupleIndices(k, 1), ….
// Where tupleIndices re-scans every block from m = 0 and linearly searches
// the final block on each call (quadratic in the probe count), the
// generator keeps the current block and code and advances in O(1)
// amortized per tuple: walking block m enumerates (m+1)^k base-(m+1)
// codes, which is also the total number of tuples yielded through that
// block.
type tupleGen struct {
	k int
	// n is the plain counter for k = 1, where the enumeration is identity.
	n int
	// m is the current block: tuples whose maximum component is exactly m.
	m int
	// digits is the current code in base m+1, most significant first.
	digits []int
	// maxCount tracks how many digits equal m, so "contains the maximum"
	// is an O(1) test instead of a scan.
	maxCount int
	started  bool
}

func newTupleGen(k int) *tupleGen {
	return &tupleGen{k: k, digits: make([]int, k)}
}

// next returns the next tuple in enumeration order. The returned slice is
// fresh and owned by the caller.
func (g *tupleGen) next() []int {
	if g.k == 1 {
		g.n++
		return []int{g.n - 1}
	}
	if !g.started {
		// Block m = 0 holds exactly the all-zero tuple.
		g.started = true
		g.maxCount = g.k
		return make([]int, g.k)
	}
	for {
		if !g.inc() {
			// Block exhausted: move to base m+2 and restart from all zeros
			// (which contains no m+1, so the loop skips forward to the
			// first code of the new block).
			g.m++
			for i := range g.digits {
				g.digits[i] = 0
			}
			g.maxCount = 0
			continue
		}
		if g.maxCount > 0 {
			out := make([]int, g.k)
			copy(out, g.digits)
			return out
		}
	}
}

// inc advances digits by one in base m+1, maintaining maxCount; it reports
// false on overflow (all digits were m).
func (g *tupleGen) inc() bool {
	i := g.k - 1
	for i >= 0 && g.digits[i] == g.m {
		g.digits[i] = 0
		g.maxCount--
		i--
	}
	if i < 0 {
		return false
	}
	g.digits[i]++
	if g.digits[i] == g.m {
		g.maxCount++
	}
	return true
}

// ErrEnumerationWidth reports that a tuple-enumeration index computation
// would exceed the int range: the block decomposition of ℕ^k needs (m+1)^k,
// which wraps for wide tuples (large k) or deep indexes (large m). Callers
// see this explicit error instead of a silently skipped block or the
// misleading "out of range" panic the wrapped arithmetic used to produce.
var ErrEnumerationWidth = errors.New("query: enumeration width exceeds int range")

// tupleIndices is a bijective enumeration of ℕ^k: tuples are ordered by
// maximum component, so every tuple has a finite index. It recomputes the
// block decomposition from scratch on every call; the enumeration loop
// uses tupleGen instead, and this function remains as the independent
// oracle the generator is tested against. All arithmetic is
// overflow-checked: an index whose block decomposition leaves int returns
// ErrEnumerationWidth.
func tupleIndices(k, n int) ([]int, error) {
	if k == 1 {
		return []int{n}, nil
	}
	// Tuples with max component exactly m: (m+1)^k − m^k of them. Find the
	// block, then the offset within it.
	m := 0
	block := 1 // (m+1)^k − m^k with m = 0
	rem := n
	for rem >= block {
		rem -= block
		m++
		hi, err := pow(m+1, k)
		if err != nil {
			return nil, err
		}
		lo, err := pow(m, k)
		if err != nil {
			return nil, err
		}
		block = hi - lo
	}
	// Enumerate the block: all tuples over [0..m] containing at least one m,
	// indexed by counting in base m+1 and skipping those without an m.
	count := -1
	total, err := pow(m+1, k)
	if err != nil {
		return nil, err
	}
	for code := 0; code < total; code++ {
		t := decode(code, k, m+1)
		hasMax := false
		for _, x := range t {
			if x == m {
				hasMax = true
				break
			}
		}
		if !hasMax {
			continue
		}
		count++
		if count == rem {
			return t, nil
		}
	}
	// Unreachable when the checked arithmetic holds: rem < block == the
	// number of max-containing codes below total.
	return nil, fmt.Errorf("query: tuple index %d not found in block m=%d k=%d", n, m, k)
}

// pow is overflow-checked integer exponentiation: b^e, or
// ErrEnumerationWidth when the product leaves the int range.
func pow(b, e int) (int, error) {
	out := 1
	for i := 0; i < e; i++ {
		next := out * b
		if b != 0 && (next/b != out || next < 0) {
			return 0, ErrEnumerationWidth
		}
		out = next
	}
	return out, nil
}

func decode(code, k, base int) []int {
	out := make([]int, k)
	for i := k - 1; i >= 0; i-- {
		out[i] = code % base
		code /= base
	}
	return out
}
