package query

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/logic"
	"repro/internal/obs"
)

// EnumerationBudget bounds the §1.1 algorithm: Rows caps the number of
// answer rows produced, Probe caps how many candidate tuples are tested per
// row. The algorithm itself always terminates on finite queries; the budget
// makes it total on infinite ones too, returning an incomplete answer.
type EnumerationBudget struct {
	Rows  int
	Probe int
}

// DefaultBudget is a budget suitable for the examples and tests.
var DefaultBudget = EnumerationBudget{Rows: 1 << 10, Probe: 1 << 16}

// Enumerable is the capability bundle the §1.1 algorithm needs: "consider a
// countable domain with decidable theory [and] constants for all elements
// of the domain".
type Enumerable interface {
	domain.Domain
	domain.Enumerator
}

// EnumerationAnswer runs the query-answering algorithm of §1.1 of the
// paper. The query is first translated into a pure domain formula φ'(x̄)
// over the state. Then, repeatedly:
//
//   - the sentence ∃x̄ (φ'(x̄) ∧ x̄ ∉ found) is decided; if false, the answer
//     is complete;
//   - otherwise candidate tuples ā are enumerated and the ground sentences
//     φ'(ā) decided one at a time until the next row is found.
//
// "Note that, at least for safe queries, this algorithm always stops." For
// unsafe queries in unlucky states it would not, so the budget caps it and
// Complete is reported false.
func EnumerationAnswer(dom Enumerable, dec domain.Decider, st *db.State,
	f *logic.Formula, budget EnumerationBudget) (*Answer, error) {

	sp := obs.StartSpan("query.enumerate")
	defer sp.End()
	mEnumCalls.Inc()
	pure, err := Translate(dom, st, f)
	if err != nil {
		return nil, err
	}
	vars := pure.FreeVars()
	if len(vars) == 0 {
		// Boolean query: a single decision.
		mEnumDecisions.Inc()
		v, err := dec.Decide(pure)
		if err != nil {
			return nil, err
		}
		ans := &Answer{Vars: nil, Rows: db.NewRelation(1), Complete: true}
		if v {
			if err := ans.Rows.Add(db.Tuple{markerTrue{}}); err != nil {
				return nil, err
			}
		}
		return ans, nil
	}

	ans := &Answer{Vars: vars, Rows: db.NewRelation(len(vars)), Complete: false}
	var found []db.Tuple
	for len(found) < budget.Rows {
		// Each iteration (one existential decision plus the probe scan for
		// the next row) is a child span: in an exported trace the successive
		// "row" spans make the per-row cost growth of E1 directly visible.
		rsp := sp.Child("row")
		rsp.Arg("row_index", int64(len(found)))
		// ∃x̄ (φ' ∧ ⋀_rows ¬(x̄ = row)).
		remaining := pure
		for _, row := range found {
			var eqs []*logic.Formula
			for i, name := range vars {
				eqs = append(eqs, logic.Eq(logic.Var(name), logic.Const(dom.ConstName(row[i]))))
			}
			remaining = logic.And(remaining, logic.Not(logic.And(eqs...)))
		}
		if rsp.Traced() {
			rsp.Arg("formula_size", int64(remaining.Size()))
		}
		mEnumDecisions.Inc()
		more, err := dec.Decide(logic.ExistsAll(vars, remaining))
		if err != nil {
			rsp.End()
			return nil, err
		}
		if !more {
			rsp.End()
			ans.Complete = true
			mEnumRows.Add(int64(ans.Rows.Len()))
			sp.Arg("rows", int64(ans.Rows.Len()))
			return ans, nil
		}
		row, probes, err := nextRow(dom, dec, remaining, vars, budget.Probe)
		rsp.Arg("probes", int64(probes))
		rsp.End()
		if err != nil {
			return nil, err
		}
		if row == nil {
			mEnumExhausted.Inc()
			mEnumRows.Add(int64(ans.Rows.Len()))
			sp.Arg("rows", int64(ans.Rows.Len()))
			return ans, nil // probe budget exhausted
		}
		found = append(found, row)
		if err := ans.Rows.Add(row); err != nil {
			return nil, err
		}
	}
	mEnumExhausted.Inc()
	mEnumRows.Add(int64(ans.Rows.Len()))
	sp.Arg("rows", int64(ans.Rows.Len()))
	return ans, nil
}

// NaturalMember decides whether a tuple belongs to a query's answer under
// the natural (unrestricted) semantics: the query is translated to a pure
// formula, the tuple substituted, and the ground sentence decided. This is
// the membership question that remains answerable even for infinite
// answers — the observation behind the paper's §1.2.
func NaturalMember(dom domain.Domain, dec domain.Decider, st *db.State,
	f *logic.Formula, tuple map[string]domain.Value) (bool, error) {

	pure, err := Translate(dom, st, f)
	if err != nil {
		return false, err
	}
	for _, v := range pure.FreeVars() {
		val, ok := tuple[v]
		if !ok {
			return false, fmt.Errorf("query: tuple misses variable %q", v)
		}
		pure = logic.Subst(pure, v, logic.Const(dom.ConstName(val)))
	}
	return dec.Decide(pure)
}

// nextRow enumerates candidate tuples ("let us order all tuples of elements
// of the domain of the size of x̄") and returns the first satisfying one
// plus the number of probes spent, or nil when the probe budget runs out.
func nextRow(dom Enumerable, dec domain.Decider, pure *logic.Formula,
	vars []string, probe int) (db.Tuple, int, error) {

	k := len(vars)
	for i := 0; i < probe; i++ {
		mEnumProbes.Inc()
		idx := tupleIndices(k, i)
		tuple := make(db.Tuple, k)
		ground := pure
		for j, name := range vars {
			v := dom.Element(idx[j])
			tuple[j] = v
			ground = logic.Subst(ground, name, logic.Const(dom.ConstName(v)))
		}
		ok, err := dec.Decide(ground)
		if err != nil {
			return nil, i + 1, fmt.Errorf("query: deciding ground instance: %w", err)
		}
		if ok {
			return tuple, i + 1, nil
		}
	}
	return nil, probe, nil
}

// tupleIndices is a bijective enumeration of ℕ^k: tuples are ordered by
// maximum component, so every tuple has a finite index.
func tupleIndices(k, n int) []int {
	if k == 1 {
		return []int{n}
	}
	// Tuples with max component exactly m: (m+1)^k − m^k of them. Find the
	// block, then the offset within it.
	m := 0
	block := 1 // (m+1)^k − m^k with m = 0
	rem := n
	for rem >= block {
		rem -= block
		m++
		block = pow(m+1, k) - pow(m, k)
	}
	// Enumerate the block: all tuples over [0..m] containing at least one m,
	// indexed by counting in base m+1 and skipping those without an m.
	count := -1
	total := pow(m+1, k)
	for code := 0; code < total; code++ {
		t := decode(code, k, m+1)
		hasMax := false
		for _, x := range t {
			if x == m {
				hasMax = true
				break
			}
		}
		if !hasMax {
			continue
		}
		count++
		if count == rem {
			return t
		}
	}
	panic("query: tuple enumeration out of range")
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

func decode(code, k, base int) []int {
	out := make([]int, k)
	for i := k - 1; i >= 0; i-- {
		out[i] = code % base
		code /= base
	}
	return out
}
