package query

import (
	"context"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/plan"
)

// The planner fast paths. Both evaluators consult the plan cache before
// interpreting: active-domain evaluation runs the compiled plan directly,
// and §1.1 enumeration materializes the answer table of an algebra-tier
// plan once and replays the probe loop against it — same rows, same
// order, same budget accounting, without a decision procedure per probe.
// Every fast path falls back to the generic interpreter rather than
// failing: plans are an optimization, never a semantic commitment.

// planActiveAnswer tries a compiled plan for active-domain evaluation.
// ok=false means the caller should interpret (planner off, interp tier,
// plan not applicable to this state, or a non-cancellation error — the
// interpreter will reproduce any genuine error with exact semantics).
func planActiveAnswer(ctx context.Context, sp *obs.Span, dom domain.Domain, st *db.State,
	f *logic.Formula, rng []domain.Value) (*Answer, error, bool) {

	if !plan.Enabled() {
		return nil, nil, false
	}
	p := plan.For(ctx, st.Scheme(), dom.Name(), "", f)
	if p.Tier() == plan.TierInterp {
		return nil, nil, false
	}
	res, err := p.EvalActive(ctx, dom, st, rng)
	if err != nil && !canceledErr(err) {
		// ErrFallback and real errors alike: let the interpreter decide.
		return nil, nil, false
	}
	sp.ArgStr("plan_tier", string(p.Tier()))
	ans := &Answer{Vars: res.Vars, Rows: res.Rows, Complete: res.Complete}
	if ans.Rows == nil {
		// Boolean query: marker-row construction, partial on cancellation.
		ans.Rows = db.NewRelation(1)
		if res.Truth {
			if addErr := ans.Rows.Add(db.Tuple{markerTrue{}}); addErr != nil {
				return nil, nil, false
			}
		}
	}
	mEvalRows.Add(int64(ans.Rows.Len()))
	sp.Arg("rows", int64(ans.Rows.Len()))
	return ans, err, true
}

// planEnumerationAnswer tries the enumeration fast path: an algebra-tier
// plan's answer table is the §1.1 answer for the compiled (safe-range)
// fragment, so the probe loop can test candidate tuples by table
// membership instead of grounding and deciding. Budget accounting, probe
// order, row order, and partial-answer behavior replicate the generic
// loop exactly.
func planEnumerationAnswer(ctx context.Context, sp *obs.Span, dom Enumerable, st *db.State,
	f *logic.Formula, budget EnumerationBudget, sink RowSink) (*Answer, error, bool) {

	if !plan.Enabled() {
		return nil, nil, false
	}
	vars := f.FreeVars()
	// A sentence's verdict comes from the domain decider; and a variable
	// occurring only in empty-relation atoms would vanish from the
	// translated formula, changing the answer shape — both go the generic
	// way.
	if len(vars) == 0 || mentionsEmptyRelation(st, f) {
		return nil, nil, false
	}
	p := plan.For(ctx, st.Scheme(), dom.Name(), "", f)
	tab, err := p.AnswerTable(dom, st)
	if err != nil {
		return nil, nil, false
	}
	sp.ArgStr("plan_tier", string(p.Tier()))

	// Answer-tuple keys in sorted-variable order, for probe membership.
	perm := make([]int, len(vars))
	for i, v := range vars {
		perm[i] = -1
		for j, c := range tab.Cols {
			if c == v {
				perm[i] = j
				break
			}
		}
		if perm[i] < 0 {
			return nil, nil, false
		}
	}
	members := make(map[string]bool, tab.Len())
	for _, row := range tab.Rows() {
		t := make(db.Tuple, len(perm))
		for i, j := range perm {
			t[i] = row[j]
		}
		members[t.Key()] = true
	}

	ans := &Answer{Vars: vars, Rows: db.NewRelation(len(vars)), Complete: false}
	foundKeys := map[string]bool{}
	rows := 0
	for rows < budget.Rows {
		rsp := sp.Child("row")
		rsp.Arg("row_index", int64(rows))
		// The "more rows?" decision is a cardinality check against the
		// materialized answer instead of an existential sentence.
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				rsp.End()
				sp.Arg("rows", int64(ans.Rows.Len()))
				return ans, err, true
			}
		}
		if rows == len(members) {
			rsp.End()
			ans.Complete = true
			mEnumRows.Add(int64(ans.Rows.Len()))
			sp.Arg("rows", int64(ans.Rows.Len()))
			return ans, nil, true
		}
		row, probes, err := nextRowFromTable(ctx, dom, members, foundKeys, len(vars), budget.Probe)
		rsp.Arg("probes", int64(probes))
		rsp.End()
		if err != nil {
			if canceledErr(err) {
				sp.Arg("rows", int64(ans.Rows.Len()))
				return ans, err, true
			}
			return nil, err, true
		}
		if row == nil {
			mEnumExhausted.Inc()
			mEnumRows.Add(int64(ans.Rows.Len()))
			sp.Arg("rows", int64(ans.Rows.Len()))
			return ans, nil, true // probe budget exhausted
		}
		foundKeys[row.Key()] = true
		rows++
		if err := ans.Rows.Add(row); err != nil {
			return nil, err, true
		}
		if err := deliverRow(sink, vars, row); err != nil {
			sp.Arg("rows", int64(ans.Rows.Len()))
			return ans, err, true
		}
	}
	mEnumExhausted.Inc()
	mEnumRows.Add(int64(ans.Rows.Len()))
	sp.Arg("rows", int64(ans.Rows.Len()))
	return ans, nil, true
}

// nextRowFromTable is nextRow with table membership in place of ground
// decisions: same candidate order, same probe accounting, same found-row
// skip behavior.
func nextRowFromTable(ctx context.Context, dom Enumerable, members, found map[string]bool,
	k, probe int) (db.Tuple, int, error) {

	gen := newTupleGen(k)
	for i := 0; i < probe; i++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, i, err
			}
		}
		mEnumProbes.Inc()
		idx := gen.next()
		tuple := make(db.Tuple, k)
		for j := range idx {
			tuple[j] = dom.Element(idx[j])
		}
		if found[tuple.Key()] {
			continue
		}
		if members[tuple.Key()] {
			return tuple, i + 1, nil
		}
	}
	return nil, probe, nil
}

// mentionsEmptyRelation reports whether any database atom of the formula
// scans an empty relation in this state.
func mentionsEmptyRelation(st *db.State, f *logic.Formula) bool {
	empty := false
	scheme := st.Scheme()
	f.Walk(func(g *logic.Formula) {
		if empty || g.Kind != logic.FAtom {
			return
		}
		if _, ok := scheme.Relations[g.Pred]; !ok {
			return
		}
		rel, err := st.Relation(g.Pred)
		if err != nil || rel.Len() == 0 {
			empty = true
		}
	})
	return empty
}
