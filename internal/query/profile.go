package query

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/logic"
	"repro/internal/obs"
)

// ProfileNode is one node of an EXPLAIN profile, mirroring the query
// formula's structure. Evals counts how many times the node was evaluated
// across all variable assignments, True how many of those evaluations came
// out true (for the root this is the answer's row cardinality), WallNS the
// inclusive wall time spent below the node, and Range the active-domain
// range size a quantifier node iterated over (0 on non-quantifier nodes).
type ProfileNode struct {
	Op       string         `json:"op"`
	Evals    int64          `json:"evals"`
	True     int64          `json:"true"`
	WallNS   int64          `json:"wall_ns"`
	Range    int            `json:"range,omitempty"`
	Children []*ProfileNode `json:"children,omitempty"`
}

// Profile is a per-query EXPLAIN report: the execution tree of one
// EvalActiveProfiled run plus run-level totals.
type Profile struct {
	Query        string   `json:"query"`
	Vars         []string `json:"vars"`
	ActiveDomain int      `json:"active_domain_size"`
	Assignments  int64    `json:"assignments"`
	Rows         int      `json:"rows"`
	Complete     bool     `json:"complete"`
	WallNS       int64    `json:"wall_ns"`
	// Plan is the compiled plan's EXPLAIN text for the query (tier,
	// lowered form, optimizations); set by the finq facade.
	Plan string       `json:"plan,omitempty"`
	Root *ProfileNode `json:"root"`
}

// JSON renders the profile as indented JSON.
func (p *Profile) JSON() []byte {
	out, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("query: marshal profile: %v", err))
	}
	return out
}

// Text renders the profile as an indented tree:
//
//	query: (F(x, y) & exists z. ...)
//	active domain 8 · free vars [x y] · assignments 64 · rows 8 · wall 1.2ms
//	∧                          evals=64    true=8     wall=1.1ms
//	├─ F(x, y)                 evals=64    true=8     wall=0.2ms
//	└─ ∃z                      evals=8     true=8     wall=0.9ms range=8
func (p *Profile) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", p.Query)
	fmt.Fprintf(&b, "active domain %d · free vars %v · assignments %d · rows %d · complete=%v · wall %s\n",
		p.ActiveDomain, p.Vars, p.Assignments, p.Rows, p.Complete, fmtNS(p.WallNS))
	if p.Plan != "" {
		b.WriteString(p.Plan)
	}
	writeNode(&b, p.Root, "", "")
	return b.String()
}

func fmtNS(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

func writeNode(b *strings.Builder, n *ProfileNode, branch, childPrefix string) {
	label := branch + n.Op
	pad := 40 - len([]rune(label)) // rune count: labels carry box-drawing and logic glyphs
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(b, "%s%s evals=%-8d true=%-8d wall=%s", label, strings.Repeat(" ", pad), n.Evals, n.True, fmtNS(n.WallNS))
	if n.Range > 0 {
		fmt.Fprintf(b, " range=%d", n.Range)
	}
	b.WriteByte('\n')
	for i, c := range n.Children {
		if i == len(n.Children)-1 {
			writeNode(b, c, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			writeNode(b, c, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}

// NodeStat is one node of a flattened profile: the node's dotted
// child-index path from the root ("0" the root, "0.1" its second child),
// its operator label, and its counts. Paths are stable across runs of the
// same formula because the profile tree mirrors the formula tree, which
// is what lets per-node statistics be merged across runs (the qstats
// registry joins on Path).
type NodeStat struct {
	Path  string
	Op    string
	Evals int64
	True  int64
	Range int
}

// Flatten renders the profile tree as a depth-first node list with dotted
// index paths. Nil-safe: a nil profile or rootless profile flattens to
// nothing.
func (p *Profile) Flatten() []NodeStat {
	if p == nil || p.Root == nil {
		return nil
	}
	var out []NodeStat
	var walk func(n *ProfileNode, path string)
	walk = func(n *ProfileNode, path string) {
		out = append(out, NodeStat{Path: path, Op: n.Op, Evals: n.Evals, True: n.True, Range: n.Range})
		for i, c := range n.Children {
			walk(c, path+"."+strconv.Itoa(i))
		}
	}
	walk(p.Root, "0")
	return out
}

// buildProfileTree mirrors the formula as a profile-node tree. Quantifier
// and connective nodes get symbolic labels; atoms keep their rendered form.
func buildProfileTree(f *logic.Formula) *ProfileNode {
	n := &ProfileNode{}
	switch f.Kind {
	case logic.FExists:
		n.Op = "∃" + f.Var
	case logic.FForall:
		n.Op = "∀" + f.Var
	case logic.FNot:
		n.Op = "¬"
	case logic.FAnd:
		n.Op = "∧"
	case logic.FOr:
		n.Op = "∨"
	case logic.FImplies:
		n.Op = "→"
	case logic.FIff:
		n.Op = "↔"
	default: // FTrue, FFalse, FAtom
		n.Op = f.String()
	}
	switch f.Kind {
	case logic.FExists, logic.FForall, logic.FNot, logic.FAnd, logic.FOr,
		logic.FImplies, logic.FIff:
		for _, s := range f.Sub {
			n.Children = append(n.Children, buildProfileTree(s))
		}
	}
	return n
}

// EvalActiveProfiled is EvalActive with per-node execution profiling: it
// returns the same answer plus a Profile tree mirroring the formula, with
// eval counts, true counts (row cardinalities), quantifier range sizes,
// and inclusive wall time per node. Short-circuiting is identical to
// EvalActive, so the counts describe exactly what the plain evaluator
// would have done; the per-node timers make profiled runs slower, which
// is why this is a separate opt-in entry point (REPL :explain, Explain).
//
// Deprecated: use EvalActiveProfiledCtx (or the finq.Eval facade with
// Profile set), which honors a request context.
func EvalActiveProfiled(dom domain.Domain, st *db.State, f *logic.Formula) (*Answer, *Profile, error) {
	return EvalActiveProfiledCtx(context.Background(), dom, st, f)
}

// EvalActiveProfiledCtx is EvalActiveProfiled under a context, polled
// between free-variable rows and (strided) inside quantifier loops like
// EvalActiveCtx. On cancellation the answer and profile cover the work
// done so far (Complete=false) and the context's error is returned.
func EvalActiveProfiledCtx(ctx context.Context, dom domain.Domain, st *db.State, f *logic.Formula) (*Answer, *Profile, error) {
	ctx, sp := obs.StartSpanCtx(ctx, "query.explain")
	defer sp.End()
	t0 := time.Now()
	rng, err := activeRange(dom, st, f)
	if err != nil {
		return nil, nil, err
	}
	vars := f.FreeVars()
	prof := &Profile{
		Query:        f.String(),
		Vars:         vars,
		ActiveDomain: len(rng),
		Complete:     true,
		Root:         buildProfileTree(f),
	}
	ans := &Answer{Vars: vars, Rows: db.NewRelation(maxInt(len(vars), 1)), Complete: true}
	si := stateInterp{dom: dom, st: st}
	env := domain.Env{}
	stop := &stopCheck{ctx: ctx}
	var assign func(i int) error
	assign = func(i int) error {
		if i == len(vars) {
			prof.Assignments++
			v, err := evalProfiled(si, env, f, prof.Root, rng, stop)
			if err != nil {
				return err
			}
			if v {
				tuple := make(db.Tuple, maxInt(len(vars), 1))
				if len(vars) == 0 {
					tuple[0] = markerTrue{}
				} else {
					for j, name := range vars {
						tuple[j] = env[name]
					}
				}
				return ans.Rows.Add(tuple)
			}
			return nil
		}
		for _, v := range rng {
			if i == 0 {
				if err := stop.hit(); err != nil {
					return err
				}
			}
			env[vars[i]] = v
			if err := assign(i + 1); err != nil {
				return err
			}
		}
		delete(env, vars[i])
		return nil
	}
	if err := assign(0); err != nil {
		prof.Rows = ans.Rows.Len()
		prof.WallNS = time.Since(t0).Nanoseconds()
		if canceledErr(err) {
			ans.Complete = false
			prof.Complete = false
			return ans, prof, err
		}
		return nil, nil, err
	}
	prof.Rows = ans.Rows.Len()
	prof.WallNS = time.Since(t0).Nanoseconds()
	sp.Arg("rows", int64(prof.Rows))
	sp.Arg("assignments", prof.Assignments)
	return ans, prof, nil
}

// Explain runs EvalActiveProfiled and returns just the profile.
func Explain(dom domain.Domain, st *db.State, f *logic.Formula) (*Profile, error) {
	_, prof, err := EvalActiveProfiled(dom, st, f)
	return prof, err
}

// evalProfiled is evalIn with per-node accounting. The recursion walks the
// formula and the profile tree in lockstep; the branching and
// short-circuit order must stay identical to evalIn's.
func evalProfiled(si stateInterp, env domain.Env, f *logic.Formula, node *ProfileNode, rng []domain.Value, stop *stopCheck) (bool, error) {
	node.Evals++
	t0 := time.Now()
	v, err := evalProfiledKind(si, env, f, node, rng, stop)
	node.WallNS += time.Since(t0).Nanoseconds()
	if err != nil {
		return false, err
	}
	if v {
		node.True++
	}
	return v, nil
}

func evalProfiledKind(si stateInterp, env domain.Env, f *logic.Formula, node *ProfileNode, rng []domain.Value, stop *stopCheck) (bool, error) {
	switch f.Kind {
	case logic.FExists, logic.FForall:
		node.Range = len(rng)
		saved, had := env[f.Var]
		defer func() {
			if had {
				env[f.Var] = saved
			} else {
				delete(env, f.Var)
			}
		}()
		for _, v := range rng {
			if err := stop.strided(); err != nil {
				return false, err
			}
			env[f.Var] = v
			r, err := evalProfiled(si, env, f.Sub[0], node.Children[0], rng, stop)
			if err != nil {
				return false, err
			}
			if f.Kind == logic.FExists && r {
				return true, nil
			}
			if f.Kind == logic.FForall && !r {
				return false, nil
			}
		}
		return f.Kind == logic.FForall, nil
	case logic.FNot:
		v, err := evalProfiled(si, env, f.Sub[0], node.Children[0], rng, stop)
		return !v, err
	case logic.FAnd:
		for i, s := range f.Sub {
			v, err := evalProfiled(si, env, s, node.Children[i], rng, stop)
			if err != nil || !v {
				return false, err
			}
		}
		return true, nil
	case logic.FOr:
		for i, s := range f.Sub {
			v, err := evalProfiled(si, env, s, node.Children[i], rng, stop)
			if err != nil {
				return false, err
			}
			if v {
				return true, nil
			}
		}
		return false, nil
	case logic.FImplies:
		a, err := evalProfiled(si, env, f.Sub[0], node.Children[0], rng, stop)
		if err != nil {
			return false, err
		}
		if !a {
			return true, nil
		}
		return evalProfiled(si, env, f.Sub[1], node.Children[1], rng, stop)
	case logic.FIff:
		a, err := evalProfiled(si, env, f.Sub[0], node.Children[0], rng, stop)
		if err != nil {
			return false, err
		}
		b, err := evalProfiled(si, env, f.Sub[1], node.Children[1], rng, stop)
		return a == b, err
	default:
		return domain.EvalQF(si, env, f)
	}
}
