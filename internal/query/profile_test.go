package query

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/domains/eqdom"
	"repro/internal/logic"
)

// familyState is the F relation used across the profile tests.
func familyState(t *testing.T) *db.State {
	t.Helper()
	st := db.NewState(db.MustScheme(map[string]int{"F": 2}))
	for _, pair := range [][2]string{{"adam", "abel"}, {"adam", "cain"}, {"eve", "abel"}, {"seth", "enos"}} {
		if err := st.Insert("F", domain.Word(pair[0]), domain.Word(pair[1])); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestProfileMatchesEvalActive: the profiled evaluator returns exactly the
// rows of EvalActive, and the profile's accounting is internally
// consistent on a nested-quantifier query: the root's True count equals
// the answer cardinality-wise (one true evaluation per emitted row), each
// node's True never exceeds its Evals, and quantifier nodes record the
// active-domain range.
func TestProfileMatchesEvalActive(t *testing.T) {
	st := familyState(t)
	dom := eqdom.Domain{}
	// ∃y F(x,y) ∧ ∀z (F(z,x) → ¬(z = x)): nested ∃/∀ with connectives.
	f := logic.And(
		logic.Exists("y", logic.Atom("F", logic.Var("x"), logic.Var("y"))),
		logic.Forall("z", logic.Implies(
			logic.Atom("F", logic.Var("z"), logic.Var("x")),
			logic.Not(logic.Eq(logic.Var("z"), logic.Var("x"))))),
	)
	plain, err := EvalActive(dom, st, f)
	if err != nil {
		t.Fatal(err)
	}
	ans, prof, err := EvalActiveProfiled(dom, st, f)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rowsKey(t, ans), rowsKey(t, plain); got != want {
		t.Fatalf("profiled rows differ from EvalActive:\n%s\n%s", got, want)
	}
	if prof.Rows != ans.Rows.Len() {
		t.Errorf("profile rows %d, answer has %d", prof.Rows, ans.Rows.Len())
	}
	// Distinct-free-variable query over a set-semantics relation: every
	// true root evaluation emits one distinct row.
	if prof.Root.True != int64(ans.Rows.Len()) {
		t.Errorf("root true count %d, want %d (one per answer row)", prof.Root.True, ans.Rows.Len())
	}
	if prof.Root.Evals != prof.Assignments {
		t.Errorf("root evals %d, want one per assignment (%d)", prof.Root.Evals, prof.Assignments)
	}
	wantAssign := int64(prof.ActiveDomain) // one free variable
	if prof.Assignments != wantAssign {
		t.Errorf("assignments %d, want |adom| = %d", prof.Assignments, wantAssign)
	}
	var walk func(n *ProfileNode)
	walk = func(n *ProfileNode) {
		if n.True > n.Evals {
			t.Errorf("node %s: true %d > evals %d", n.Op, n.True, n.Evals)
		}
		if n.WallNS < 0 {
			t.Errorf("node %s: negative wall time", n.Op)
		}
		if strings.HasPrefix(n.Op, "∃") || strings.HasPrefix(n.Op, "∀") {
			if n.Range != prof.ActiveDomain {
				t.Errorf("quantifier %s range %d, want %d", n.Op, n.Range, prof.ActiveDomain)
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(prof.Root)
	// The ∧ root has two children; short-circuiting means the second
	// conjunct is evaluated at most as often as the first comes out true.
	if len(prof.Root.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(prof.Root.Children))
	}
	first, second := prof.Root.Children[0], prof.Root.Children[1]
	if second.Evals != first.True {
		t.Errorf("second conjunct evaluated %d times, want %d (short-circuit on first's true count)", second.Evals, first.True)
	}
}

// TestProfileRenderings: Text carries the header and per-node rows; JSON
// round-trips.
func TestProfileRenderings(t *testing.T) {
	st := familyState(t)
	f := logic.Exists("y", logic.Atom("F", logic.Var("x"), logic.Var("y")))
	prof, err := Explain(eqdom.Domain{}, st, f)
	if err != nil {
		t.Fatal(err)
	}
	text := prof.Text()
	for _, want := range []string{"query:", "active domain", "∃y", "evals=", "true=", "range="} {
		if !strings.Contains(text, want) {
			t.Errorf("Text() missing %q:\n%s", want, text)
		}
	}
	var back Profile
	if err := json.Unmarshal(prof.JSON(), &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if back.Rows != prof.Rows || back.Root == nil || back.Root.Op != prof.Root.Op {
		t.Errorf("JSON round-trip lost data: %+v", back)
	}
}

// TestProfileSentence: a sentence (no free variables) profiles with one
// assignment and a root count reflecting its truth value.
func TestProfileSentence(t *testing.T) {
	st := familyState(t)
	f := logic.Exists("x", logic.Exists("y", logic.Atom("F", logic.Var("x"), logic.Var("y"))))
	ans, prof, err := EvalActiveProfiled(eqdom.Domain{}, st, f)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Assignments != 1 {
		t.Errorf("sentence assignments %d, want 1", prof.Assignments)
	}
	if ans.Rows.Len() != 1 || prof.Root.True != 1 {
		t.Errorf("true sentence: rows=%d root.True=%d, want 1 and 1", ans.Rows.Len(), prof.Root.True)
	}
}
