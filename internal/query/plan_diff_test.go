package query

// The differential plan-vs-interpreter suite: every query in the corpus is
// evaluated twice, once with the planner enabled (the default) and once
// forced through the generic interpreter, and the two answers must be
// identical — same variables, same rows, same Complete flag, and for the
// enumeration path the same row order and budget accounting. This is the
// regression net under the compiled fast paths: any divergence between a
// compiled plan and the evaluator semantics it replaces fails here first.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/domains/eqdom"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/presburger"
)

// diffCorpusActive is the active-domain corpus: formulas chosen to land in
// every plan tier (safe-range → algebra; negation/universal/equality-only →
// closure; vacuous quantification → closure via the column-set gate).
var diffCorpusActive = []string{
	// Algebra tier: safe-range shapes.
	"F(x, y)",
	"exists y. F(x, y)",
	"F(x, y) & F(y, z)",
	"F(x, y) & (F(y, z) | F(z, x))",
	`F("adam", y)`,
	// Closure tier: outside the safe-range fragment.
	"~F(x, y)",
	"x = y",
	"x != y & F(x, y)",
	"forall y. (F(x, y) -> ~(x = y))",
	"forall y. (F(x, y) -> F(x, y))",
	`forall y. (F("cain", y) -> F(x, y))`,
	"exists y. (F(y, x) & y = y)",
	"x = x & (exists x. F(x, y))",
	// Boolean queries (no free variables).
	`exists x. F("adam", x)`,
	`exists x. F("enoch", x)`,
	"forall x. (exists y. F(x, y) -> x = x)",
	// Constants outside the active domain.
	`x = "ghost"`,
	`x = "adam" | x = "ghost"`,
}

// evalBothActive evaluates f with the planner on and off and returns the
// two answers.
func evalBothActive(t *testing.T, st *db.State, f *logic.Formula) (on, off *Answer) {
	t.Helper()
	prev := plan.SetEnabled(true)
	defer plan.SetEnabled(prev)
	on, err := EvalActive(eqdom.Domain{}, st, f)
	if err != nil {
		t.Fatalf("planner on: %v", err)
	}
	plan.SetEnabled(false)
	off, err = EvalActive(eqdom.Domain{}, st, f)
	if err != nil {
		t.Fatalf("planner off: %v", err)
	}
	return on, off
}

func sameVars(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPlanDifferentialActive(t *testing.T) {
	st := fathersState(t)
	for _, src := range diffCorpusActive {
		f := parser.MustParse(src)
		on, off := evalBothActive(t, st, f)
		if !sameVars(on.Vars, off.Vars) {
			t.Errorf("%s: vars differ: plan %v, interp %v", src, on.Vars, off.Vars)
		}
		if on.Complete != off.Complete {
			t.Errorf("%s: Complete differs: plan %v, interp %v", src, on.Complete, off.Complete)
		}
		if kOn, kOff := rowsKey(t, on), rowsKey(t, off); kOn != kOff {
			t.Errorf("%s: rows differ:\nplan:   %s\ninterp: %s", src, kOn, kOff)
		}
	}
}

// TestPlanDifferentialActiveEmptyRelation: an atom over an empty relation
// makes Translate drop its variables, which changes the answer shape on
// some paths; the planner must agree with the interpreter here too.
func TestPlanDifferentialActiveEmptyRelation(t *testing.T) {
	st := db.NewState(db.MustScheme(map[string]int{"R": 1, "S": 1}))
	if err := st.Insert("S", domain.Word("a")); err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{"R(x)", "~R(x)", "R(x) & S(x)", "S(x) & ~R(x)"} {
		f := parser.MustParse(src)
		on, off := evalBothActive(t, st, f)
		if kOn, kOff := rowsKey(t, on), rowsKey(t, off); kOn != kOff {
			t.Errorf("%s: rows differ:\nplan:   %s\ninterp: %s", src, kOn, kOff)
		}
	}
}

// enumState is the arithmetic fixture of the enumeration tests: R = {3, 7}
// over Presburger arithmetic.
func enumState(t *testing.T) *db.State {
	t.Helper()
	st := db.NewState(db.MustScheme(map[string]int{"R": 1}))
	for _, n := range []int64{3, 7} {
		if err := st.Insert("R", domain.Int(n)); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// belowSomeR is ∃y (R(y) ∧ x < y): finite ({0..6}), safe-range, so the
// planner serves it from the algebra tier on the enumeration path.
func belowSomeR() *logic.Formula {
	return logic.Exists("y", logic.And(
		logic.Atom("R", logic.Var("y")),
		logic.Atom(presburger.PredLt, logic.Var("x"), logic.Var("y"))))
}

// evalBothEnum runs the §1.1 algorithm with the planner on and off.
func evalBothEnum(t *testing.T, st *db.State, f *logic.Formula, budget EnumerationBudget) (on, off *Answer) {
	t.Helper()
	prev := plan.SetEnabled(true)
	defer plan.SetEnabled(prev)
	on, err := EnumerationAnswer(presburger.Domain{}, presburger.Decider(), st, f, budget)
	if err != nil {
		t.Fatalf("planner on: %v", err)
	}
	plan.SetEnabled(false)
	off, err = EnumerationAnswer(presburger.Domain{}, presburger.Decider(), st, f, budget)
	if err != nil {
		t.Fatalf("planner off: %v", err)
	}
	return on, off
}

// sameRowSeq compares answers row for row: the enumeration path promises
// not just the same set but the same enumeration order.
func sameRowSeq(a, b *Answer) bool {
	ta, tb := a.Rows.Tuples(), b.Rows.Tuples()
	if len(ta) != len(tb) {
		return false
	}
	for i := range ta {
		if ta[i].Key() != tb[i].Key() {
			return false
		}
	}
	return true
}

func TestPlanDifferentialEnumerate(t *testing.T) {
	st := enumState(t)
	on, off := evalBothEnum(t, st, belowSomeR(), DefaultBudget)
	if on.Complete != off.Complete {
		t.Errorf("Complete differs: plan %v, interp %v", on.Complete, off.Complete)
	}
	if !sameRowSeq(on, off) {
		t.Errorf("row sequences differ:\nplan:   %v\ninterp: %v", on.Rows.Tuples(), off.Rows.Tuples())
	}
	if !on.Complete || on.Rows.Len() != 7 {
		t.Errorf("want 7 complete rows, got %d complete=%v", on.Rows.Len(), on.Complete)
	}
}

// TestPlanDifferentialEnumerateRowBudget: a row budget below the answer
// size stops both paths at the same partial prefix.
func TestPlanDifferentialEnumerateRowBudget(t *testing.T) {
	st := enumState(t)
	on, off := evalBothEnum(t, st, belowSomeR(), EnumerationBudget{Rows: 3, Probe: 1 << 12})
	if on.Complete || off.Complete {
		t.Errorf("row-budget run reported complete: plan %v, interp %v", on.Complete, off.Complete)
	}
	if !sameRowSeq(on, off) {
		t.Errorf("partial row sequences differ:\nplan:   %v\ninterp: %v", on.Rows.Tuples(), off.Rows.Tuples())
	}
	if on.Rows.Len() != 3 {
		t.Errorf("want 3 rows under the budget, got %d", on.Rows.Len())
	}
}

// TestPlanDifferentialEnumerateProbeBudget: a probe budget too small to
// reach the next row stops both paths identically.
func TestPlanDifferentialEnumerateProbeBudget(t *testing.T) {
	st := enumState(t)
	on, off := evalBothEnum(t, st, belowSomeR(), EnumerationBudget{Rows: 100, Probe: 4})
	if on.Complete != off.Complete {
		t.Errorf("Complete differs: plan %v, interp %v", on.Complete, off.Complete)
	}
	if !sameRowSeq(on, off) {
		t.Errorf("probe-budget row sequences differ:\nplan:   %v\ninterp: %v", on.Rows.Tuples(), off.Rows.Tuples())
	}
}

// TestPlanDifferentialCancelled: a context dead on arrival yields the same
// partial answer (no rows, Complete=false) and a context error both ways.
func TestPlanDifferentialCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st := fathersState(t)
	f := parser.MustParse("exists y. F(x, y)")

	prev := plan.SetEnabled(true)
	defer plan.SetEnabled(prev)
	for _, planned := range []bool{true, false} {
		plan.SetEnabled(planned)
		ans, err := EvalActiveCtx(ctx, eqdom.Domain{}, st, f)
		if err == nil || !canceledErr(err) {
			t.Fatalf("planner=%v: want context error, got %v", planned, err)
		}
		if ans == nil || ans.Complete || ans.Rows.Len() != 0 {
			t.Errorf("planner=%v: want empty partial answer, got %+v", planned, ans)
		}
	}

	est := enumState(t)
	for _, planned := range []bool{true, false} {
		plan.SetEnabled(planned)
		ans, err := EnumerationAnswerCtx(ctx, presburger.Domain{}, presburger.Decider(), est, belowSomeR(), DefaultBudget)
		if err == nil || !canceledErr(err) {
			t.Fatalf("planner=%v (enum): want context error, got %v", planned, err)
		}
		if ans == nil || ans.Complete || ans.Rows.Len() != 0 {
			t.Errorf("planner=%v (enum): want empty partial answer, got %+v", planned, ans)
		}
	}
}

// TestPlanDifferentialRandom: a random formula population (conjunction,
// disjunction, negation, both quantifiers, equality) evaluated both ways
// over the fathers fixture.
func TestPlanDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	st := fathersState(t)
	vars := []string{"x", "y", "z"}
	var rec func(d int) *logic.Formula
	rec = func(d int) *logic.Formula {
		if d == 0 {
			if rng.Intn(3) == 0 {
				return logic.Eq(logic.Var(vars[rng.Intn(3)]), logic.Var(vars[rng.Intn(3)]))
			}
			return logic.Atom("F", logic.Var(vars[rng.Intn(3)]), logic.Var(vars[rng.Intn(3)]))
		}
		switch rng.Intn(6) {
		case 0:
			return logic.And(rec(d-1), rec(d-1))
		case 1:
			return logic.Or(rec(d-1), rec(d-1))
		case 2:
			return logic.Not(rec(d - 1))
		case 3:
			return logic.Implies(rec(d-1), rec(d-1))
		case 4:
			return logic.Forall(vars[rng.Intn(3)], rec(d-1))
		default:
			return logic.Exists(vars[rng.Intn(3)], rec(d-1))
		}
	}
	for i := 0; i < 150; i++ {
		f := rec(3)
		on, off := evalBothActive(t, st, f)
		if kOn, kOff := rowsKey(t, on), rowsKey(t, off); kOn != kOff {
			t.Errorf("%v: rows differ:\nplan:   %s\ninterp: %s", f, kOn, kOff)
		}
		if on.Complete != off.Complete {
			t.Errorf("%v: Complete differs", f)
		}
	}
}
