package query

import (
	"math/rand"
	"testing"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/domains/eqdom"
	"repro/internal/logic"
	"repro/internal/parser"
)

func TestEvalActiveParallelAgreesWithSerial(t *testing.T) {
	st := fathersState(t)
	queries := []string{
		"F(x, y)",
		"exists y. F(x, y)",
		"exists y. (F(x, y) & F(y, z))",
		"F(x, y) & ~F(y, x)",
		`exists x. F("adam", x)`, // boolean
		"forall y. (F(x, y) -> y != x)",
	}
	for _, src := range queries {
		f := parser.MustParse(src)
		serial, err := EvalActive(eqdom.Domain{}, st, f)
		if err != nil {
			t.Fatalf("serial %s: %v", src, err)
		}
		for _, workers := range []int{0, 1, 4} {
			par, err := EvalActiveParallel(eqdom.Domain{}, st, f, workers)
			if err != nil {
				t.Fatalf("parallel(%d) %s: %v", workers, src, err)
			}
			if par.Rows.Len() != serial.Rows.Len() {
				t.Fatalf("%s workers=%d: %d rows vs serial %d",
					src, workers, par.Rows.Len(), serial.Rows.Len())
			}
			for _, row := range serial.Rows.Tuples() {
				if !par.Rows.Has(row) {
					t.Errorf("%s workers=%d: row %v missing", src, workers, row)
				}
			}
		}
	}
}

func TestEvalActiveParallelRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	st := db.NewState(db.MustScheme(map[string]int{"F": 2}))
	for i := 0; i < 12; i++ {
		if err := st.Insert("F",
			domain.Int(int64(rng.Intn(6))), domain.Int(int64(rng.Intn(6)))); err != nil {
			t.Fatal(err)
		}
	}
	gen := func(depth int) *logic.Formula {
		var rec func(d int) *logic.Formula
		vars := []string{"x", "y", "z"}
		rec = func(d int) *logic.Formula {
			atom := logic.Atom("F",
				logic.Var(vars[rng.Intn(3)]), logic.Var(vars[rng.Intn(3)]))
			if d == 0 {
				return atom
			}
			switch rng.Intn(4) {
			case 0:
				return logic.And(rec(d-1), rec(d-1))
			case 1:
				return logic.Or(rec(d-1), rec(d-1))
			case 2:
				return logic.Not(rec(d - 1))
			default:
				return logic.Exists(vars[rng.Intn(3)], rec(d-1))
			}
		}
		return rec(depth)
	}
	d := eqDomainOverInts{}
	for i := 0; i < 50; i++ {
		f := gen(3)
		serial, err := EvalActive(d, st, f)
		if err != nil {
			t.Fatal(err)
		}
		par, err := EvalActiveParallel(d, st, f, 3)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Rows.Len() != par.Rows.Len() {
			t.Fatalf("disagreement on %v: %d vs %d", f, serial.Rows.Len(), par.Rows.Len())
		}
	}
}

// eqDomainOverInts is the equality-only view over integer values, enough
// for random evaluation tests.
type eqDomainOverInts struct{}

func (eqDomainOverInts) Name() string { return "eqints" }
func (eqDomainOverInts) ConstValue(name string) (domain.Value, error) {
	return eqdom.Domain{}.ConstValue(name)
}
func (eqDomainOverInts) ConstName(v domain.Value) string { return v.Key() }
func (eqDomainOverInts) Func(string, []domain.Value) (domain.Value, error) {
	return nil, errNoFunc
}
func (eqDomainOverInts) Pred(string, []domain.Value) (bool, error) {
	return false, errNoFunc
}

var errNoFunc = &noFuncError{}

type noFuncError struct{}

func (*noFuncError) Error() string { return "eqints: pure equality signature" }
