// Package query implements query answering over a domain and a database
// state: the translation of database atoms into pure domain formulas
// ([AGSS86], recalled in §1.1 of the paper), active-domain evaluation, and
// the §1.1 enumeration algorithm that computes finite answers over any
// countable decidable domain with constants for all elements.
package query

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/logic"
	"repro/internal/obs"
)

// stopCheck polls a context from the evaluator's loops. The recursion is
// the evaluator's hot path and must carry no per-iteration atomic traffic,
// so quantifier iterations poll through a stride: only every 256th check
// touches the context. A nil receiver or nil context never stops.
type stopCheck struct {
	ctx context.Context
	n   uint32
}

// hit polls the context at full stride (every call); use where each
// iteration already pays for a decision procedure or a row.
func (s *stopCheck) hit() error {
	if s == nil || s.ctx == nil {
		return nil
	}
	return s.ctx.Err()
}

// strided polls the context every 256th call; use inside hot loops.
func (s *stopCheck) strided() error {
	if s == nil || s.ctx == nil {
		return nil
	}
	if s.n++; s.n&255 != 0 {
		return nil
	}
	return s.ctx.Err()
}

// canceledErr reports whether err is a context cancellation (deadline or
// explicit cancel), the case in which evaluators surface partial answers.
func canceledErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Translate rewrites a query formula into a pure domain formula relative to
// a state: every database relation atom R(t̄) becomes the disjunction over
// R's rows of the pointwise equalities ("we can replace each occurrence of
// R(x, y) with ((x=a1 ∧ y=b1) ∨ … ∨ (x=ar ∧ y=br))"), and every database
// constant becomes the domain constant naming its value.
func Translate(dom domain.Domain, st *db.State, f *logic.Formula) (*logic.Formula, error) {
	mTranslateCalls.Inc()
	scheme := st.Scheme()
	var firstErr error
	atoms := int64(0)
	g := f.Map(func(h *logic.Formula) *logic.Formula {
		if h.Kind != logic.FAtom || firstErr != nil {
			return h
		}
		arity, isDB := scheme.Relations[h.Pred]
		if !isDB {
			return h
		}
		atoms++
		if len(h.Args) != arity {
			firstErr = fmt.Errorf("query: relation %s expects %d arguments, got %d", h.Pred, arity, len(h.Args))
			return h
		}
		rel, err := st.Relation(h.Pred)
		if err != nil {
			firstErr = err
			return h
		}
		var rows []*logic.Formula
		for _, tuple := range rel.Tuples() {
			conj := make([]*logic.Formula, arity)
			for i, v := range tuple {
				conj[i] = logic.Eq(h.Args[i], logic.Const(dom.ConstName(v)))
			}
			rows = append(rows, logic.And(conj...))
		}
		return logic.Or(rows...)
	})
	mTranslateAtoms.Add(atoms)
	if firstErr != nil {
		return nil, firstErr
	}
	// Database constants become domain constants for their state values.
	for _, cname := range scheme.Constants {
		if !formulaUsesConst(g, cname) {
			continue
		}
		v, err := st.Constant(cname)
		if err != nil {
			return nil, err
		}
		g = logic.SubstConst(g, cname, logic.Const(dom.ConstName(v)))
	}
	return g, nil
}

func formulaUsesConst(f *logic.Formula, name string) bool {
	used := false
	f.Walk(func(g *logic.Formula) {
		if g.Kind != logic.FAtom || used {
			return
		}
		for _, t := range g.Args {
			var consts []string
			consts = t.Constants(consts)
			for _, c := range consts {
				if c == name {
					used = true
					return
				}
			}
		}
	})
	return used
}

// stateInterp interprets database relations (over a state) on top of a
// domain interpretation. Database constants must be translated away first
// (Translate does) or resolved via the state.
type stateInterp struct {
	dom domain.Domain
	st  *db.State
}

// ConstValue resolves database constants via the state, then domain
// constants via the domain.
func (si stateInterp) ConstValue(name string) (domain.Value, error) {
	if si.st.Scheme().HasConstant(name) {
		return si.st.Constant(name)
	}
	return si.dom.ConstValue(name)
}

func (si stateInterp) Func(name string, args []domain.Value) (domain.Value, error) {
	return si.dom.Func(name, args)
}

func (si stateInterp) Pred(name string, args []domain.Value) (bool, error) {
	if arity, ok := si.st.Scheme().Relations[name]; ok {
		if len(args) != arity {
			return false, fmt.Errorf("query: relation %s expects %d arguments, got %d", name, arity, len(args))
		}
		rel, err := si.st.Relation(name)
		if err != nil {
			return false, err
		}
		return rel.Has(db.Tuple(args)), nil
	}
	return si.dom.Pred(name, args)
}

// Answer is a computed query result: a relation over the query's free
// variables in sorted order.
type Answer struct {
	Vars     []string
	Rows     *db.Relation
	Complete bool // false when a budget stopped the computation
}

// EvalActive evaluates a query under active-domain semantics: quantifiers
// and free variables range over the state's active domain plus the query's
// constants. For domain-independent queries this agrees with the natural
// semantics; for others it is the classical engine approximation.
//
// Deprecated: use EvalActiveCtx (or the finq.Eval facade), which honors a
// request context. EvalActive is EvalActiveCtx with no cancellation.
func EvalActive(dom domain.Domain, st *db.State, f *logic.Formula) (*Answer, error) {
	return EvalActiveCtx(context.Background(), dom, st, f)
}

// EvalActiveCtx is active-domain evaluation under a context: the context
// is polled between free-variable rows and (strided) inside quantifier
// loops. On cancellation the rows found so far are returned with
// Complete=false alongside the context's error, so callers can serve a
// partial answer.
func EvalActiveCtx(ctx context.Context, dom domain.Domain, st *db.State, f *logic.Formula) (*Answer, error) {
	ctx, sp := obs.StartSpanCtx(ctx, "query.eval_active")
	defer sp.End()
	mEvalCalls.Inc()
	rng, err := activeRange(dom, st, f)
	if err != nil {
		return nil, err
	}
	hEvalDomain.Observe(int64(len(rng)))
	sp.Arg("active_domain", int64(len(rng)))
	if sp.Traced() {
		sp.Arg("formula_size", int64(f.Size()))
	}
	// Compiled-plan fast path: serve from the plan cache when the planner
	// has a non-interp tier for this query; fall through to the generic
	// interpreter otherwise.
	if ans, err, ok := planActiveAnswer(ctx, sp, dom, st, f, rng); ok {
		return ans, err
	}
	vars := f.FreeVars()
	ans := &Answer{Vars: vars, Rows: db.NewRelation(maxInt(len(vars), 1)), Complete: true}
	si := stateInterp{dom: dom, st: st}
	env := domain.Env{}
	stop := &stopCheck{ctx: ctx}
	// Leaf assignments are counted locally and flushed once: the recursion
	// is the evaluator's hot loop and must carry no atomic traffic.
	leaves := int64(0)
	var assign func(i int) error
	assign = func(i int) error {
		if i == len(vars) {
			leaves++
			v, err := evalIn(si, env, f, rng, stop)
			if err != nil {
				return err
			}
			if v {
				tuple := make(db.Tuple, maxInt(len(vars), 1))
				if len(vars) == 0 {
					// A boolean query: record a single marker row when true.
					tuple[0] = markerTrue{}
				} else {
					for j, name := range vars {
						tuple[j] = env[name]
					}
				}
				return ans.Rows.Add(tuple)
			}
			return nil
		}
		for _, v := range rng {
			if i == 0 {
				// Between outer rows the poll is unstrided: a cancelled
				// request stops within one row granule.
				if err := stop.hit(); err != nil {
					return err
				}
			}
			env[vars[i]] = v
			if err := assign(i + 1); err != nil {
				return err
			}
		}
		delete(env, vars[i])
		return nil
	}
	err = assign(0)
	mEvalAssigns.Add(leaves)
	if err != nil {
		if canceledErr(err) {
			ans.Complete = false
			sp.Arg("rows", int64(ans.Rows.Len()))
			return ans, err
		}
		return nil, err
	}
	mEvalRows.Add(int64(ans.Rows.Len()))
	sp.Arg("assignments", leaves)
	sp.Arg("rows", int64(ans.Rows.Len()))
	return ans, nil
}

// markerTrue is the single row of a true boolean query.
type markerTrue struct{}

func (markerTrue) Key() string    { return "⊤" }
func (markerTrue) String() string { return "true" }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// activeRange is the active domain of the state extended with the query's
// constant values.
func activeRange(dom domain.Domain, st *db.State, f *logic.Formula) ([]domain.Value, error) {
	rng := st.ActiveDomain()
	seen := map[string]bool{}
	for _, v := range rng {
		seen[v.Key()] = true
	}
	si := stateInterp{dom: dom, st: st}
	for _, cname := range f.Constants() {
		v, err := si.ConstValue(cname)
		if err != nil {
			return nil, err
		}
		if !seen[v.Key()] {
			seen[v.Key()] = true
			rng = append(rng, v)
		}
	}
	return rng, nil
}

// evalIn evaluates a formula with quantifiers ranging over rng, polling
// stop (strided) on each quantifier iteration.
func evalIn(si stateInterp, env domain.Env, f *logic.Formula, rng []domain.Value, stop *stopCheck) (bool, error) {
	switch f.Kind {
	case logic.FExists, logic.FForall:
		saved, had := env[f.Var]
		defer func() {
			if had {
				env[f.Var] = saved
			} else {
				delete(env, f.Var)
			}
		}()
		for _, v := range rng {
			if err := stop.strided(); err != nil {
				return false, err
			}
			env[f.Var] = v
			r, err := evalIn(si, env, f.Sub[0], rng, stop)
			if err != nil {
				return false, err
			}
			if f.Kind == logic.FExists && r {
				return true, nil
			}
			if f.Kind == logic.FForall && !r {
				return false, nil
			}
		}
		return f.Kind == logic.FForall, nil
	case logic.FNot:
		v, err := evalIn(si, env, f.Sub[0], rng, stop)
		return !v, err
	case logic.FAnd:
		for _, s := range f.Sub {
			v, err := evalIn(si, env, s, rng, stop)
			if err != nil || !v {
				return false, err
			}
		}
		return true, nil
	case logic.FOr:
		for _, s := range f.Sub {
			v, err := evalIn(si, env, s, rng, stop)
			if err != nil {
				return false, err
			}
			if v {
				return true, nil
			}
		}
		return false, nil
	case logic.FImplies:
		a, err := evalIn(si, env, f.Sub[0], rng, stop)
		if err != nil {
			return false, err
		}
		if !a {
			return true, nil
		}
		return evalIn(si, env, f.Sub[1], rng, stop)
	case logic.FIff:
		a, err := evalIn(si, env, f.Sub[0], rng, stop)
		if err != nil {
			return false, err
		}
		b, err := evalIn(si, env, f.Sub[1], rng, stop)
		return a == b, err
	default:
		return domain.EvalQF(si, env, f)
	}
}
