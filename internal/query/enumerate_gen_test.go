package query

import (
	"errors"
	"testing"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/logic"
	"repro/internal/presburger"
)

// TestTupleGenMatchesOracle checks the incremental generator against
// tupleIndices, the from-scratch enumeration it replaced, across the index
// prefix the probe budget actually visits.
func TestTupleGenMatchesOracle(t *testing.T) {
	for k := 1; k <= 3; k++ {
		gen := newTupleGen(k)
		n := 3000
		if k == 1 {
			n = 5000
		}
		for i := 0; i < n; i++ {
			got := gen.next()
			want, err := tupleIndices(k, i)
			if err != nil {
				t.Fatalf("k=%d i=%d: %v", k, i, err)
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d i=%d: length %d vs %d", k, i, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("k=%d i=%d: generator %v, oracle %v", k, i, got, want)
				}
			}
		}
	}
}

// TestPowOverflowChecked pins the overflow-checked arithmetic at its
// boundaries: results that fit an int are exact, results that wrap return
// ErrEnumerationWidth instead of a silently negative value.
func TestPowOverflowChecked(t *testing.T) {
	ok := []struct{ b, e, want int }{
		{0, 0, 1}, {0, 5, 0}, {1, 63, 1}, {2, 62, 1 << 62},
		{3, 3, 27}, {10, 18, 1_000_000_000_000_000_000},
	}
	for _, c := range ok {
		got, err := pow(c.b, c.e)
		if err != nil || got != c.want {
			t.Errorf("pow(%d, %d) = %d, %v; want %d", c.b, c.e, got, err, c.want)
		}
	}
	over := []struct{ b, e int }{
		{2, 63}, {2, 64}, {3, 41}, {10, 19}, {1 << 16, 4}, {1 << 32, 2},
	}
	for _, c := range over {
		if got, err := pow(c.b, c.e); err == nil {
			t.Errorf("pow(%d, %d) = %d, want ErrEnumerationWidth", c.b, c.e, got)
		} else if !errors.Is(err, ErrEnumerationWidth) {
			t.Errorf("pow(%d, %d): error %v, want ErrEnumerationWidth", c.b, c.e, err)
		}
	}
}

// TestTupleIndicesWidthError pins the regression the unchecked arithmetic
// allowed: a tuple wide enough that (m+1)^k leaves int must surface the
// explicit width error, not skip blocks or panic "out of range". With
// k = 64, block m = 1 already needs 2^64 − 1 codes.
func TestTupleIndicesWidthError(t *testing.T) {
	// Index 0 is the all-zero tuple and never needs the block product.
	if got, err := tupleIndices(64, 0); err != nil || len(got) != 64 {
		t.Fatalf("tupleIndices(64, 0) = %v, %v", got, err)
	}
	// Index 1 forces the m = 1 block size (2^64 − 1^64): overflow.
	if _, err := tupleIndices(64, 1); !errors.Is(err, ErrEnumerationWidth) {
		t.Fatalf("tupleIndices(64, 1): error %v, want ErrEnumerationWidth", err)
	}
	// Narrower boundary: k = 2 stays exact deep into the enumeration.
	if got, err := tupleIndices(2, 3000); err != nil || len(got) != 2 {
		t.Fatalf("tupleIndices(2, 3000) = %v, %v", got, err)
	}
}

// TestTupleGenFreshSlices pins that next() hands out independent slices —
// the enumeration loop stores components into tuples that outlive the call.
func TestTupleGenFreshSlices(t *testing.T) {
	gen := newTupleGen(2)
	a := gen.next()
	b := gen.next()
	a[0], a[1] = -1, -1
	if b[0] == -1 || b[1] == -1 {
		t.Fatalf("next() aliases earlier results: %v", b)
	}
}

// TestEnumerationProbeBudgetExhausted forces the probe cap to bite: every
// answer lies beyond the candidates a 5-probe scan reaches, so the
// enumeration must stop with zero rows and Complete = false.
func TestEnumerationProbeBudgetExhausted(t *testing.T) {
	st := db.NewState(db.MustScheme(map[string]int{}))
	// φ(x): 10 < x — satisfiable (the existential keeps succeeding) but the
	// first witness is index 11, out of reach for Probe: 5.
	f := logic.Atom(presburger.PredLt, logic.Const("10"), logic.Var("x"))
	ans, err := EnumerationAnswer(presburger.Domain{}, presburger.Decider(), st, f,
		EnumerationBudget{Rows: 10, Probe: 5})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Complete {
		t.Errorf("probe-capped run reported complete")
	}
	if ans.Rows.Len() != 0 {
		t.Errorf("probe cap 5 cannot reach x > 10, yet got %d rows", ans.Rows.Len())
	}
}

// TestEnumerationRowBudgetExhausted caps rows below the (infinite) answer:
// the run must fill exactly the cap and report incomplete.
func TestEnumerationRowBudgetExhausted(t *testing.T) {
	st := db.NewState(db.MustScheme(map[string]int{}))
	// φ(x): 0 ≤ x, true of every natural — infinitely many rows.
	f := logic.Atom(presburger.PredLe, logic.Const("0"), logic.Var("x"))
	ans, err := EnumerationAnswer(presburger.Domain{}, presburger.Decider(), st, f,
		EnumerationBudget{Rows: 4, Probe: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Complete {
		t.Errorf("row-capped run reported complete")
	}
	if ans.Rows.Len() != 4 {
		t.Errorf("row cap 4, got %d rows", ans.Rows.Len())
	}
	for i := 0; i < 4; i++ {
		if !ans.Rows.Has(db.Tuple{domain.Int(int64(i))}) {
			t.Errorf("row cap should keep the first 4 naturals; missing %d", i)
		}
	}
}
