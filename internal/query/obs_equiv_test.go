package query

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/domains/eqdom"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/plan"
)

// rowsKey renders an answer's rows as a canonical sorted string.
func rowsKey(t *testing.T, a *Answer) string {
	t.Helper()
	var keys []string
	for _, row := range a.Rows.Tuples() {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.Key()
		}
		keys = append(keys, strings.Join(parts, ","))
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// TestEvalActiveUnchangedByInstrumentation asserts the instrumented
// evaluator returns results identical to the seed evaluator: the same
// query in the same state produces the same rows with observation on,
// off, and via the parallel evaluator.
func TestEvalActiveUnchangedByInstrumentation(t *testing.T) {
	st := db.NewState(db.MustScheme(map[string]int{"F": 2}))
	for _, pair := range [][2]string{{"adam", "abel"}, {"adam", "cain"}, {"eve", "abel"}, {"seth", "enos"}} {
		if err := st.Insert("F", domain.Word(pair[0]), domain.Word(pair[1])); err != nil {
			t.Fatal(err)
		}
	}
	queries := []*logic.Formula{
		logic.Exists("y", logic.Atom("F", logic.Var("x"), logic.Var("y"))),
		logic.And(
			logic.Atom("F", logic.Var("x"), logic.Var("y")),
			logic.Not(logic.Eq(logic.Var("x"), logic.Var("y")))),
		logic.Forall("y", logic.Implies(
			logic.Atom("F", logic.Var("x"), logic.Var("y")),
			logic.Not(logic.Eq(logic.Var("x"), logic.Var("y"))))),
	}
	dom := eqdom.Domain{}
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	for i, f := range queries {
		obs.Enable()
		on, err := EvalActive(dom, st, f)
		if err != nil {
			t.Fatalf("query %d (obs on): %v", i, err)
		}
		obs.Disable()
		off, err := EvalActive(dom, st, f)
		if err != nil {
			t.Fatalf("query %d (obs off): %v", i, err)
		}
		obs.Enable()
		par, err := EvalActiveParallel(dom, st, f, 4)
		if err != nil {
			t.Fatalf("query %d (parallel): %v", i, err)
		}
		kOn, kOff, kPar := rowsKey(t, on), rowsKey(t, off), rowsKey(t, par)
		if kOn != kOff {
			t.Errorf("query %d: rows differ with observation on/off:\n%s\n%s", i, kOn, kOff)
		}
		if kOn != kPar {
			t.Errorf("query %d: serial and parallel rows differ:\n%s\n%s", i, kOn, kPar)
		}
		if on.Complete != off.Complete {
			t.Errorf("query %d: Complete differs with observation on/off", i)
		}
	}
}

// TestParallelSerialAgreementTraced: with observability enabled AND the
// flight recorder armed, the parallel evaluator agrees with the serial one
// row for row. Run under -race this also exercises the recorder's
// concurrent emit path (worker goroutines each resolve their own tid and
// share the ring).
func TestParallelSerialAgreementTraced(t *testing.T) {
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	trace.Arm(1 << 12)
	defer trace.Disarm()
	st := db.NewState(db.MustScheme(map[string]int{"F": 2}))
	words := []string{"adam", "eve", "cain", "abel", "seth", "enos"}
	for i, a := range words {
		for j, b := range words {
			if (i+j)%3 == 0 && i != j {
				if err := st.Insert("F", domain.Word(a), domain.Word(b)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	queries := []*logic.Formula{
		logic.Exists("y", logic.Atom("F", logic.Var("x"), logic.Var("y"))),
		logic.Forall("y", logic.Implies(
			logic.Atom("F", logic.Var("x"), logic.Var("y")),
			logic.Exists("z", logic.Atom("F", logic.Var("y"), logic.Var("z"))))),
		logic.And(
			logic.Atom("F", logic.Var("x"), logic.Var("y")),
			logic.Not(logic.Atom("F", logic.Var("y"), logic.Var("x")))),
	}
	dom := eqdom.Domain{}
	for i, f := range queries {
		serial, err := EvalActive(dom, st, f)
		if err != nil {
			t.Fatalf("query %d serial: %v", i, err)
		}
		for _, workers := range []int{1, 2, 8} {
			par, err := EvalActiveParallel(dom, st, f, workers)
			if err != nil {
				t.Fatalf("query %d parallel(%d): %v", i, workers, err)
			}
			if ks, kp := rowsKey(t, serial), rowsKey(t, par); ks != kp {
				t.Errorf("query %d: serial and parallel(%d) rows differ while traced:\n%s\n%s", i, workers, ks, kp)
			}
		}
	}
	if trace.Len() == 0 {
		t.Error("armed recorder captured no events from the evaluators")
	}
}

// TestEvalActiveMetrics: evaluating a query moves the query-layer
// counters in the expected directions.
func TestEvalActiveMetrics(t *testing.T) {
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	// The assignment counter is an interpreter metric; a compiled plan
	// would serve this query without assignments.
	prevPlan := plan.SetEnabled(false)
	defer plan.SetEnabled(prevPlan)
	st := db.NewState(db.MustScheme(map[string]int{"R": 1}))
	for _, w := range []string{"a", "b", "c"} {
		if err := st.Insert("R", domain.Word(w)); err != nil {
			t.Fatal(err)
		}
	}
	f := logic.Atom("R", logic.Var("x"))
	calls0, rows0, leaves0 := mEvalCalls.Value(), mEvalRows.Value(), mEvalAssigns.Value()
	ans, err := EvalActive(eqdom.Domain{}, st, f)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Rows.Len() != 3 {
		t.Fatalf("want 3 rows, got %d", ans.Rows.Len())
	}
	if mEvalCalls.Value() != calls0+1 {
		t.Errorf("eval calls: got %d, want %d", mEvalCalls.Value(), calls0+1)
	}
	if mEvalRows.Value() != rows0+3 {
		t.Errorf("eval rows: got %d, want %d", mEvalRows.Value(), rows0+3)
	}
	if mEvalAssigns.Value() != leaves0+3 {
		t.Errorf("eval assignments: got %d, want %d (|active domain|^|vars| = 3)", mEvalAssigns.Value(), leaves0+3)
	}
}
