package query

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/logic"
	"repro/internal/presburger"
)

// slowDecider delays every decision so tests can cancel a context
// mid-enumeration deterministically.
type slowDecider struct {
	inner domain.Decider
	delay time.Duration
}

func (s slowDecider) Decide(f *logic.Formula) (bool, error) {
	time.Sleep(s.delay)
	return s.inner.Decide(f)
}

// TestEnumerationCtxCancelMidRun cancels the context while the §1.1 loop
// is between rows: the partial answer found so far must come back with
// Complete=false and the context's error.
func TestEnumerationCtxCancelMidRun(t *testing.T) {
	st := db.NewState(db.MustScheme(map[string]int{"R": 1}))
	if err := st.Insert("R", domain.Int(5)); err != nil {
		t.Fatal(err)
	}
	// ¬R(x) is infinite: without a deadline the budget is the only stop.
	f := logic.Not(logic.Atom("R", logic.Var("x")))
	dec := slowDecider{inner: presburger.Decider(), delay: 2 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	ans, err := EnumerationAnswerCtx(ctx, presburger.Domain{}, dec, st, f,
		EnumerationBudget{Rows: 1 << 20, Probe: 1 << 20})
	elapsed := time.Since(t0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if ans == nil {
		t.Fatal("cancelled enumeration must return the partial answer")
	}
	if ans.Complete {
		t.Fatal("cancelled enumeration reported complete")
	}
	// Promptness: the loop checks between rows and probes, so the return
	// should come within one probe granule (a slow decision) of the
	// deadline, not after the huge budget.
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled enumeration took %v", elapsed)
	}
}

// TestEnumerationCtxAlreadyCancelled: a dead context stops the run before
// the first decision.
func TestEnumerationCtxAlreadyCancelled(t *testing.T) {
	st := db.NewState(db.MustScheme(map[string]int{"R": 1}))
	if err := st.Insert("R", domain.Int(1)); err != nil {
		t.Fatal(err)
	}
	f := logic.Not(logic.Atom("R", logic.Var("x")))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ans, err := EnumerationAnswerCtx(ctx, presburger.Domain{}, presburger.Decider(), st, f, DefaultBudget)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if ans != nil && ans.Rows.Len() != 0 {
		t.Fatalf("dead context produced %d rows", ans.Rows.Len())
	}
}

// TestEvalActiveCtxCancel cancels active-domain evaluation and checks the
// partial answer contract: rows so far, Complete=false, context error.
func TestEvalActiveCtxCancel(t *testing.T) {
	st := db.NewState(db.MustScheme(map[string]int{"F": 2}))
	for i := 0; i < 64; i++ {
		if err := st.Insert("F", domain.Int(int64(i)), domain.Int(int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	f := logic.Atom("F", logic.Var("x"), logic.Var("y"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ans, err := EvalActiveCtx(ctx, eqDomainOverInts{}, st, f)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if ans == nil || ans.Complete {
		t.Fatalf("cancelled eval: want partial answer, got %+v", ans)
	}
}

// TestEvalActiveCtxBackgroundMatchesDeprecated: with no cancellation the
// ctx evaluator and the deprecated wrapper agree exactly.
func TestEvalActiveCtxBackgroundMatchesDeprecated(t *testing.T) {
	st := db.NewState(db.MustScheme(map[string]int{"F": 2}))
	for i := 0; i < 8; i++ {
		if err := st.Insert("F", domain.Int(int64(i)), domain.Int(int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	f := logic.Exists("y", logic.Atom("F", logic.Var("x"), logic.Var("y")))
	a, err := EvalActive(eqDomainOverInts{}, st, f)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvalActiveCtx(context.Background(), eqDomainOverInts{}, st, f)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows.Len() != b.Rows.Len() || !a.Complete || !b.Complete {
		t.Fatalf("wrapper and ctx evaluator disagree: %d vs %d rows", a.Rows.Len(), b.Rows.Len())
	}
	for _, row := range a.Rows.Tuples() {
		if !b.Rows.Has(row) {
			t.Errorf("row %v missing from ctx evaluator", row)
		}
	}
}

// TestEvalActiveParallelCtxCancelNoLeak cancels parallel evaluations
// repeatedly and checks that workers and feeder always exit: the goroutine
// count must settle back to its baseline.
func TestEvalActiveParallelCtxCancelNoLeak(t *testing.T) {
	st := failingState(t)
	f := logic.Exists("y", logic.Atom("F", logic.Var("x"), logic.Var("y")))
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := EvalActiveParallelCtx(ctx, eqDomainOverInts{}, st, f, 4); !errors.Is(err, context.Canceled) {
			t.Fatalf("want Canceled, got %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d across cancelled parallel evaluations", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
