package query

import "repro/internal/obs"

// Package metrics. Counters are batched where a loop is hot: EvalActive
// counts leaf assignments locally and adds once per call, so the inner
// recursion carries no atomic traffic.
var (
	mTranslateCalls = obs.NewCounter("query.translate.calls")
	mTranslateAtoms = obs.NewCounter("query.translate.atoms")

	mEvalCalls   = obs.NewCounter("query.eval.calls")
	mEvalRows    = obs.NewCounter("query.eval.rows")
	mEvalAssigns = obs.NewCounter("query.eval.assignments")
	hEvalDomain  = obs.NewHistogram("query.eval.active_domain_size")

	mEnumCalls     = obs.NewCounter("query.enumerate.calls")
	mEnumRows      = obs.NewCounter("query.enumerate.rows")
	mEnumDecisions = obs.NewCounter("query.enumerate.decisions")
	mEnumProbes    = obs.NewCounter("query.enumerate.probes")
	mEnumExhausted = obs.NewCounter("query.enumerate.budget_exhausted")

	mParJobs    = obs.NewCounter("query.parallel.jobs")
	gParWorkers = obs.NewGauge("query.parallel.workers")
)
