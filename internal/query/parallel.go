package query

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/logic"
	"repro/internal/obs"
)

// EvalActiveParallel is EvalActive with the outermost free-variable
// assignments fanned out over a worker pool. Results are identical to the
// serial evaluator; the speedup is near-linear for queries whose cost is
// dominated by quantifier nesting (each worker runs the full inner
// evaluation for its slice of the outer variable's range).
//
// Workers ≤ 0 selects GOMAXPROCS.
//
// Deprecated: use EvalActiveParallelCtx (or the finq.Eval facade), which
// honors a request context.
func EvalActiveParallel(dom domain.Domain, st *db.State, f *logic.Formula, workers int) (*Answer, error) {
	return EvalActiveParallelCtx(context.Background(), dom, st, f, workers)
}

// EvalActiveParallelCtx is EvalActiveParallel under a context. Workers
// poll the context (strided) inside their evaluation loops and between
// jobs; a cancellation surfaces through the normal error path, so the
// feeder aborts, every worker exits before the call returns, and the
// context's error is returned. Unlike the serial evaluator no partial
// answer is reported: rows are scattered across workers when the request
// dies.
func EvalActiveParallelCtx(ctx context.Context, dom domain.Domain, st *db.State, f *logic.Formula, workers int) (*Answer, error) {
	vars := f.FreeVars()
	if len(vars) == 0 {
		// Boolean queries have nothing to fan out.
		return EvalActiveCtx(ctx, dom, st, f)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ctx, sp := obs.StartSpanCtx(ctx, "query.eval_active_parallel")
	defer sp.End()
	gParWorkers.SetMax(int64(workers))
	rng, err := activeRange(dom, st, f)
	if err != nil {
		return nil, err
	}
	mParJobs.Add(int64(len(rng)))
	hEvalDomain.Observe(int64(len(rng)))
	sp.Arg("workers", int64(workers))
	sp.Arg("jobs", int64(len(rng)))
	si := stateInterp{dom: dom, st: st}

	type result struct {
		rows []db.Tuple
		err  error
	}
	// results is buffered to one slot per worker so every worker can deliver
	// its single result and exit even if nothing is receiving anymore. stop
	// aborts the feeder when a worker fails; without it, a failing worker
	// stops draining jobs, the feeder blocks forever on the unbuffered send,
	// and the collection loop deadlocks waiting for results that never come.
	jobs := make(chan domain.Value)
	results := make(chan result, workers)
	stop := make(chan struct{})
	var stopOnce sync.Once
	for w := 0; w < workers; w++ {
		go func() {
			var out []db.Tuple
			env := domain.Env{}
			check := &stopCheck{ctx: ctx}
			for v := range jobs {
				if err := check.hit(); err != nil {
					stopOnce.Do(func() { close(stop) })
					results <- result{err: err}
					return
				}
				env[vars[0]] = v
				rows, err := assignRest(si, env, vars, rng, f, check)
				if err != nil {
					stopOnce.Do(func() { close(stop) })
					results <- result{err: err}
					return
				}
				out = append(out, rows...)
			}
			results <- result{rows: out}
		}()
	}
	// ctxAborted records that the feeder quit on the context rather than
	// delivering every job: without it, a request cancelled before any
	// worker sees a job would come back as an empty success.
	var ctxAborted atomic.Bool
	go func() {
		defer close(jobs)
		done := ctxDone(ctx)
		for _, v := range rng {
			select {
			case jobs <- v:
			case <-stop:
				return
			case <-done:
				ctxAborted.Store(true)
				return
			}
		}
	}()

	// Collect exactly one result per worker; this both gathers the rows and
	// guarantees no goroutine outlives the call, whichever mix of successes
	// and failures the workers report.
	ans := &Answer{Vars: vars, Rows: db.NewRelation(len(vars)), Complete: true}
	var firstErr error
	for w := 0; w < workers; w++ {
		r := <-results
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		if firstErr != nil {
			continue
		}
		for _, row := range r.rows {
			if err := ans.Rows.Add(row); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if firstErr == nil && ctxAborted.Load() {
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	sp.Arg("rows", int64(ans.Rows.Len()))
	return ans, nil
}

// ctxDone returns the context's done channel, or nil (blocking forever in
// a select) for a nil context.
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// assignRest enumerates assignments for vars[1:] with vars[0] already bound
// in env, returning the satisfying rows.
func assignRest(si stateInterp, env domain.Env, vars []string, rng []domain.Value, f *logic.Formula, stop *stopCheck) ([]db.Tuple, error) {
	var out []db.Tuple
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(vars) {
			v, err := evalIn(si, env, f, rng, stop)
			if err != nil {
				return err
			}
			if v {
				tuple := make(db.Tuple, len(vars))
				for j, name := range vars {
					tuple[j] = env[name]
				}
				out = append(out, tuple)
			}
			return nil
		}
		for _, v := range rng {
			env[vars[i]] = v
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		delete(env, vars[i])
		return nil
	}
	if err := rec(1); err != nil {
		return nil, err
	}
	return out, nil
}
