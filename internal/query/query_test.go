package query

import (
	"testing"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/domains/eqdom"
	"repro/internal/domains/nsucc"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/presburger"
)

// fathersState builds the introduction's father/son database over the
// equality domain: F(adam, abel), F(adam, cain), F(cain, enoch).
func fathersState(t *testing.T) *db.State {
	t.Helper()
	scheme := db.MustScheme(map[string]int{"F": 2})
	st := db.NewState(scheme)
	for _, pair := range [][2]string{{"adam", "abel"}, {"adam", "cain"}, {"cain", "enoch"}} {
		if err := st.Insert("F", domain.Word(pair[0]), domain.Word(pair[1])); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestTranslate(t *testing.T) {
	st := fathersState(t)
	f := parser.MustParse("F(x, y)")
	pure, err := Translate(eqdom.Domain{}, st, f)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if preds := pure.Predicates(); len(preds) != 0 {
		t.Errorf("pure formula still has predicates %v", preds)
	}
	// The translation must be satisfied by exactly the three rows.
	dec := eqdom.Decider()
	check := func(a, b string, want bool) {
		s := logic.Subst(logic.Subst(pure, "x", logic.Const(a)), "y", logic.Const(b))
		v, err := dec.Decide(s)
		if err != nil {
			t.Fatalf("Decide: %v", err)
		}
		if v != want {
			t.Errorf("translated F(%s,%s) = %v, want %v", a, b, v, want)
		}
	}
	check("adam", "abel", true)
	check("adam", "cain", true)
	check("cain", "enoch", true)
	check("abel", "adam", false)
	check("adam", "enoch", false)
}

func TestTranslateEmptyRelation(t *testing.T) {
	st := db.NewState(db.MustScheme(map[string]int{"R": 1}))
	pure, err := Translate(eqdom.Domain{}, st, parser.MustParse("R(x)"))
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if pure.Kind != logic.FFalse {
		t.Errorf("empty relation should translate to false, got %v", pure)
	}
}

func TestTranslateConstants(t *testing.T) {
	scheme := db.MustScheme(map[string]int{"R": 1}, "c")
	st := db.NewState(scheme)
	if err := st.SetConstant("c", domain.Word("v")); err != nil {
		t.Fatal(err)
	}
	f := logic.Eq(logic.Var("x"), logic.Const("c"))
	pure, err := Translate(eqdom.Domain{}, st, f)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	want := logic.Eq(logic.Var("x"), logic.Const("v"))
	if !pure.Equal(want) {
		t.Errorf("got %v, want %v", pure, want)
	}
	// Unset constants error only if used.
	st2 := db.NewState(scheme)
	if _, err := Translate(eqdom.Domain{}, st2, f); err == nil {
		t.Errorf("unset constant should error")
	}
	if _, err := Translate(eqdom.Domain{}, st2, parser.MustParse("R(x)")); err != nil {
		t.Errorf("unused unset constant should be fine: %v", err)
	}
}

func TestTranslateArityMismatch(t *testing.T) {
	st := fathersState(t)
	if _, err := Translate(eqdom.Domain{}, st, parser.MustParse("F(x)")); err == nil {
		t.Errorf("arity mismatch accepted")
	}
}

func TestEvalActiveFathers(t *testing.T) {
	st := fathersState(t)
	// M(x): fathers of at least two sons (the introduction's example).
	m := parser.MustParse("exists y. (exists z. (y != z & F(x, y) & F(x, z)))")
	ans, err := EvalActive(eqdom.Domain{}, st, m)
	if err != nil {
		t.Fatalf("EvalActive: %v", err)
	}
	if ans.Rows.Len() != 1 || !ans.Rows.Has(db.Tuple{domain.Word("adam")}) {
		t.Errorf("M(x) = %v, want {adam}", ans.Rows.Tuples())
	}
	// G(x, z): grandfather pairs.
	g := parser.MustParse("exists y. (F(x, y) & F(y, z))")
	ans, err = EvalActive(eqdom.Domain{}, st, g)
	if err != nil {
		t.Fatalf("EvalActive: %v", err)
	}
	if ans.Rows.Len() != 1 || !ans.Rows.Has(db.Tuple{domain.Word("adam"), domain.Word("enoch")}) {
		t.Errorf("G = %v, want {(adam, enoch)}", ans.Rows.Tuples())
	}
}

func TestEvalActiveBoolean(t *testing.T) {
	st := fathersState(t)
	ans, err := EvalActive(eqdom.Domain{}, st, parser.MustParse(`exists x. F("adam", x)`))
	if err != nil {
		t.Fatalf("EvalActive: %v", err)
	}
	if ans.Rows.Len() != 1 {
		t.Errorf("true boolean query should have one marker row")
	}
	ans, err = EvalActive(eqdom.Domain{}, st, parser.MustParse(`exists x. F("enoch", x)`))
	if err != nil {
		t.Fatalf("EvalActive: %v", err)
	}
	if ans.Rows.Len() != 0 {
		t.Errorf("false boolean query should be empty")
	}
}

func TestEvalActiveQueryConstants(t *testing.T) {
	// A constant outside the active domain extends the range.
	st := fathersState(t)
	f := parser.MustParse(`x = "seth"`)
	ans, err := EvalActive(eqdom.Domain{}, st, f)
	if err != nil {
		t.Fatalf("EvalActive: %v", err)
	}
	if ans.Rows.Len() != 1 || !ans.Rows.Has(db.Tuple{domain.Word("seth")}) {
		t.Errorf("constant row missing: %v", ans.Rows.Tuples())
	}
}

func TestTupleIndicesBijective(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		seen := map[string]bool{}
		for i := 0; i < 200; i++ {
			idx, err := tupleIndices(k, i)
			if err != nil {
				t.Fatalf("k=%d i=%d: %v", k, i, err)
			}
			if len(idx) != k {
				t.Fatalf("k=%d: wrong length %d", k, len(idx))
			}
			key := ""
			for _, x := range idx {
				if x < 0 {
					t.Fatalf("negative index")
				}
				key += string(rune('0'+x)) + ","
			}
			if seen[key] {
				t.Fatalf("k=%d: duplicate tuple %v at %d", k, idx, i)
			}
			seen[key] = true
		}
	}
	// Small tuples appear early: (0,0) must be index 0, and all tuples with
	// components ≤ 2 must appear within the first 27 indices for k=3.
	if got, err := tupleIndices(2, 0); err != nil || got[0] != 0 || got[1] != 0 {
		t.Errorf("first tuple = %v (err %v)", got, err)
	}
}

// TestEnumerationFinite runs the §1.1 algorithm over ℕ with Presburger
// arithmetic: the answer of a finite query is produced completely.
func TestEnumerationFinite(t *testing.T) {
	scheme := db.MustScheme(map[string]int{"R": 1})
	st := db.NewState(scheme)
	for _, n := range []int64{3, 7} {
		if err := st.Insert("R", domain.Int(n)); err != nil {
			t.Fatal(err)
		}
	}
	// φ(x): ∃y (R(y) ∧ x < y) — the numbers below some stored number:
	// finite ({0..6}).
	f := logic.Exists("y", logic.And(
		logic.Atom("R", logic.Var("y")),
		logic.Atom(presburger.PredLt, logic.Var("x"), logic.Var("y"))))
	ans, err := EnumerationAnswer(presburger.Domain{}, presburger.Decider(), st, f, DefaultBudget)
	if err != nil {
		t.Fatalf("EnumerationAnswer: %v", err)
	}
	if !ans.Complete {
		t.Fatalf("finite query reported incomplete")
	}
	if ans.Rows.Len() != 7 {
		t.Fatalf("want 7 rows, got %d: %v", ans.Rows.Len(), ans.Rows.Tuples())
	}
	for n := int64(0); n < 7; n++ {
		if !ans.Rows.Has(db.Tuple{domain.Int(n)}) {
			t.Errorf("missing row %d", n)
		}
	}
}

// TestEnumerationInfinite: an unsafe query exhausts the row budget and is
// reported incomplete — the algorithm "always stops" only for safe queries.
func TestEnumerationInfinite(t *testing.T) {
	st := db.NewState(db.MustScheme(map[string]int{"R": 1}))
	if err := st.Insert("R", domain.Int(5)); err != nil {
		t.Fatal(err)
	}
	// φ(x): ¬R(x) — infinite.
	f := logic.Not(logic.Atom("R", logic.Var("x")))
	ans, err := EnumerationAnswer(presburger.Domain{}, presburger.Decider(), st, f,
		EnumerationBudget{Rows: 10, Probe: 1000})
	if err != nil {
		t.Fatalf("EnumerationAnswer: %v", err)
	}
	if ans.Complete {
		t.Fatalf("infinite query reported complete")
	}
	if ans.Rows.Len() != 10 {
		t.Errorf("budget rows = %d, want 10", ans.Rows.Len())
	}
	if ans.Rows.Has(db.Tuple{domain.Int(5)}) {
		t.Errorf("5 is in R, must not satisfy ¬R")
	}
}

// TestEnumerationTwoVariables exercises the pairing enumeration: pairs
// (x, y) with x + y = 4 over ℕ.
func TestEnumerationTwoVariables(t *testing.T) {
	st := db.NewState(db.MustScheme(map[string]int{}))
	f := logic.Eq(
		logic.App(presburger.FuncAdd, logic.Var("x"), logic.Var("y")),
		logic.Const("4"))
	ans, err := EnumerationAnswer(presburger.Domain{}, presburger.Decider(), st, f, DefaultBudget)
	if err != nil {
		t.Fatalf("EnumerationAnswer: %v", err)
	}
	if !ans.Complete || ans.Rows.Len() != 5 {
		t.Fatalf("want 5 complete rows, got %d (complete %v)", ans.Rows.Len(), ans.Complete)
	}
	for x := int64(0); x <= 4; x++ {
		if !ans.Rows.Has(db.Tuple{domain.Int(x), domain.Int(4 - x)}) {
			t.Errorf("missing (%d, %d)", x, 4-x)
		}
	}
}

// TestEnumerationBoolean: zero free variables decide directly.
func TestEnumerationBoolean(t *testing.T) {
	st := db.NewState(db.MustScheme(map[string]int{"R": 1}))
	if err := st.Insert("R", domain.Int(2)); err != nil {
		t.Fatal(err)
	}
	f := logic.Exists("x", logic.Atom("R", logic.Var("x")))
	ans, err := EnumerationAnswer(presburger.Domain{}, presburger.Decider(), st, f, DefaultBudget)
	if err != nil {
		t.Fatalf("EnumerationAnswer: %v", err)
	}
	if !ans.Complete || ans.Rows.Len() != 1 {
		t.Errorf("true boolean: %v", ans.Rows.Len())
	}
}

// TestEnumerationOverNsucc uses the successor domain: answers of x' = c.
func TestEnumerationOverNsucc(t *testing.T) {
	st := db.NewState(db.MustScheme(map[string]int{}))
	f := logic.Eq(logic.App(nsucc.FuncS, logic.Var("x")), logic.Const("4"))
	ans, err := EnumerationAnswer(nsucc.Domain{}, nsucc.Decider(), st, f, DefaultBudget)
	if err != nil {
		t.Fatalf("EnumerationAnswer: %v", err)
	}
	if !ans.Complete || ans.Rows.Len() != 1 || !ans.Rows.Has(db.Tuple{domain.Int(3)}) {
		t.Errorf("x' = 4 should have answer {3}: %v", ans.Rows.Tuples())
	}
}

func TestAgreementActiveVsEnumeration(t *testing.T) {
	// For a domain-independent query both evaluation strategies agree.
	st := db.NewState(db.MustScheme(map[string]int{"R": 1, "S": 1}))
	for _, n := range []int64{1, 2, 3} {
		if err := st.Insert("R", domain.Int(n)); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []int64{2, 3, 4} {
		if err := st.Insert("S", domain.Int(n)); err != nil {
			t.Fatal(err)
		}
	}
	f := parser.MustParse("R(x) & S(x)") // intersection
	active, err := EvalActive(presburger.Domain{}, st, f)
	if err != nil {
		t.Fatal(err)
	}
	enum, err := EnumerationAnswer(presburger.Domain{}, presburger.Decider(), st, f, DefaultBudget)
	if err != nil {
		t.Fatal(err)
	}
	if active.Rows.Len() != enum.Rows.Len() || active.Rows.Len() != 2 {
		t.Fatalf("disagreement: active %d, enum %d", active.Rows.Len(), enum.Rows.Len())
	}
	for _, tp := range active.Rows.Tuples() {
		if !enum.Rows.Has(tp) {
			t.Errorf("enumeration missing %v", tp)
		}
	}
}

func TestNaturalMemberInPackage(t *testing.T) {
	st := db.NewState(db.MustScheme(map[string]int{"R": 1}))
	if err := st.Insert("R", domain.Int(4)); err != nil {
		t.Fatal(err)
	}
	inf := logic.Not(logic.Atom("R", logic.Var("x")))
	got, err := NaturalMember(presburger.Domain{}, presburger.Decider(), st, inf,
		map[string]domain.Value{"x": domain.Int(4)})
	if err != nil || got {
		t.Errorf("¬R(4): %v %v", got, err)
	}
	got, err = NaturalMember(presburger.Domain{}, presburger.Decider(), st, inf,
		map[string]domain.Value{"x": domain.Int(9)})
	if err != nil || !got {
		t.Errorf("¬R(9): %v %v", got, err)
	}
	if _, err := NaturalMember(presburger.Domain{}, presburger.Decider(), st, inf, nil); err == nil {
		t.Errorf("missing binding accepted")
	}
}

func TestEvalActiveConnectives(t *testing.T) {
	st := fathersState(t)
	cases := []struct {
		src  string
		rows int
	}{
		// Forall over the active domain.
		{`forall y. (F(x, y) -> y != "adam")`, 4}, // all AD values of x qualify except none violate
		// Implication and iff at the top level.
		{`F(x, y) -> F(y, x)`, 13},  // all pairs except the 3 non-reciprocated F rows... computed below
		{`F(x, y) <-> F(y, x)`, 10}, // neither or both
	}
	for _, c := range cases {
		f := parser.MustParse(c.src)
		ans, err := EvalActive(eqdom.Domain{}, st, f)
		if err != nil {
			t.Fatalf("EvalActive(%s): %v", c.src, err)
		}
		if ans.Rows.Len() != c.rows {
			t.Errorf("EvalActive(%s) = %d rows, want %d: %v", c.src, ans.Rows.Len(), c.rows, ans.Rows.Tuples())
		}
	}
}

func TestStateInterpFunctions(t *testing.T) {
	// Domain functions work through the state interpretation: successor
	// terms in queries over a state.
	st := db.NewState(db.MustScheme(map[string]int{"R": 1}))
	if err := st.Insert("R", domain.Int(3)); err != nil {
		t.Fatal(err)
	}
	f := logic.Atom("R", logic.App(nsucc.FuncS, logic.Var("x")))
	ans, err := EvalActive(nsucc.Domain{}, st, f)
	if err != nil {
		t.Fatalf("EvalActive: %v", err)
	}
	// Over the active domain {3}: s(3) = 4 ∉ R → empty.
	if ans.Rows.Len() != 0 {
		t.Errorf("rows = %d, want 0", ans.Rows.Len())
	}
}
