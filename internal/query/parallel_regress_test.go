package query

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/logic"
)

// failingState returns a state whose active domain has several elements, so
// the parallel evaluator fans out real jobs.
func failingState(t *testing.T) *db.State {
	t.Helper()
	st := db.NewState(db.MustScheme(map[string]int{"F": 2}))
	for i := 0; i < 16; i++ {
		if err := st.Insert("F",
			domain.Int(int64(i)), domain.Int(int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// TestEvalActiveParallelAllWorkersError is the deadlock regression test:
// P is not a database relation, so every evaluation hits the domain's Pred
// (which eqDomainOverInts rejects) and every worker errors on its first
// job. The old implementation left the feeder blocked on the jobs channel,
// the results channel unclosed, and the drain loop waiting forever. The
// watchdog turns a regression into a test failure instead of a hung run.
func TestEvalActiveParallelAllWorkersError(t *testing.T) {
	st := failingState(t)
	f := logic.Atom("P", logic.Var("x"))
	for _, workers := range []int{1, 2, 8} {
		done := make(chan error, 1)
		go func() {
			_, err := EvalActiveParallel(eqDomainOverInts{}, st, f, workers)
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Fatalf("workers=%d: all workers fail, expected an error", workers)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: EvalActiveParallel deadlocked with all workers erroring", workers)
		}
	}
}

// TestEvalActiveParallelPartialErrors drives a domain whose Pred fails only
// for some assignments, so successful and failing workers race: the call
// must still return promptly with the error.
func TestEvalActiveParallelPartialErrors(t *testing.T) {
	st := failingState(t)
	// P(x) errors via the domain; F rows evaluate fine. The conjunction
	// forces every job through the failing predicate eventually, but
	// individual workers may complete F-only work first.
	f := logic.Or(logic.Atom("F", logic.Var("x"), logic.Var("y")), logic.Atom("P", logic.Var("x")))
	done := make(chan error, 1)
	go func() {
		_, err := EvalActiveParallel(eqDomainOverInts{}, st, f, 4)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected the domain predicate error to surface")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("EvalActiveParallel deadlocked on mixed success/error workers")
	}
}

// TestEvalActiveParallelNoGoroutineLeak runs both the success and the
// all-error path repeatedly and checks the goroutine count settles back to
// its baseline: every worker and feeder must exit before the call returns
// (or immediately after, for the feeder aborted via the stop channel).
func TestEvalActiveParallelNoGoroutineLeak(t *testing.T) {
	st := failingState(t)
	ok := logic.Atom("F", logic.Var("x"), logic.Var("y"))
	bad := logic.Atom("P", logic.Var("x"))
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		if _, err := EvalActiveParallel(eqDomainOverInts{}, st, ok, 4); err != nil {
			t.Fatal(err)
		}
		if _, err := EvalActiveParallel(eqDomainOverInts{}, st, bad, 4); err == nil {
			t.Fatal("error path unexpectedly succeeded")
		}
	}
	// The aborted feeder may still be between its select and return; give
	// stragglers a moment before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d across 40 parallel evaluations", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
