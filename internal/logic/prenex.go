package logic

// Quantifier is one step of a quantifier prefix.
type Quantifier struct {
	// Universal is true for ∀, false for ∃.
	Universal bool
	// Var is the bound variable.
	Var string
}

// Prenex converts f into prenex normal form and returns the quantifier
// prefix (outermost first) and the quantifier-free matrix. The input is
// first rectified (bound variables renamed apart) and converted to NNF, so
// quantifier extraction is purely structural.
func Prenex(f *Formula) ([]Quantifier, *Formula) {
	// NNF first: expanding ↔ duplicates subformulas, so renaming bound
	// variables apart must happen afterwards or duplicated binders collide
	// in the extracted prefix.
	g := RenameBound(NNF(f))
	var prefix []Quantifier
	matrix := pullQuantifiers(g, &prefix)
	return prefix, matrix
}

// PrenexFormula reassembles a prefix and matrix into a single formula.
func PrenexFormula(prefix []Quantifier, matrix *Formula) *Formula {
	f := matrix
	for i := len(prefix) - 1; i >= 0; i-- {
		q := prefix[i]
		if q.Universal {
			f = Forall(q.Var, f)
		} else {
			f = Exists(q.Var, f)
		}
	}
	return f
}

func pullQuantifiers(f *Formula, prefix *[]Quantifier) *Formula {
	switch f.Kind {
	case FExists, FForall:
		*prefix = append(*prefix, Quantifier{Universal: f.Kind == FForall, Var: f.Var})
		return pullQuantifiers(f.Sub[0], prefix)
	case FAnd, FOr:
		sub := make([]*Formula, len(f.Sub))
		for i, s := range f.Sub {
			sub[i] = pullQuantifiers(s, prefix)
		}
		return &Formula{Kind: f.Kind, Sub: sub}
	default:
		return f
	}
}
