// Package logic implements the first-order language used throughout the
// reproduction: terms, formulas, substitution, normal forms, and printing.
//
// The language is the relational calculus of the paper: first-order logic
// with equality over a signature of constants, functions, and predicates.
// Database relations and domain relations are both rendered as predicate
// atoms; which is which is a concern of higher layers (internal/query).
package logic

import (
	"fmt"
	"sort"
	"strings"
)

// TermKind discriminates the three shapes of a term.
type TermKind int

const (
	// TVar is a variable occurrence.
	TVar TermKind = iota
	// TConst is a constant symbol. Interpretation of the name is up to the
	// domain (a numeral for arithmetic domains, a word for the trace domain).
	TConst
	// TApp is a function application.
	TApp
)

// Term is a first-order term. Terms are immutable by convention: all
// transformations in this package return fresh terms and never mutate
// arguments in place.
type Term struct {
	Kind TermKind
	// Name is the variable name (TVar), constant symbol (TConst), or
	// function symbol (TApp).
	Name string
	// Args holds the arguments of a function application; nil otherwise.
	Args []Term
}

// Var constructs a variable term.
func Var(name string) Term { return Term{Kind: TVar, Name: name} }

// Const constructs a constant term.
func Const(name string) Term { return Term{Kind: TConst, Name: name} }

// App constructs a function application term.
func App(fn string, args ...Term) Term {
	return Term{Kind: TApp, Name: fn, Args: args}
}

// IsVar reports whether the term is a variable with the given name.
func (t Term) IsVar(name string) bool { return t.Kind == TVar && t.Name == name }

// Equal reports structural equality of two terms.
func (t Term) Equal(u Term) bool {
	if t.Kind != u.Kind || t.Name != u.Name || len(t.Args) != len(u.Args) {
		return false
	}
	for i := range t.Args {
		if !t.Args[i].Equal(u.Args[i]) {
			return false
		}
	}
	return true
}

// String renders the term in the concrete syntax accepted by internal/parser.
func (t Term) String() string {
	switch t.Kind {
	case TVar:
		return t.Name
	case TConst:
		// Constants whose names are not plain identifiers or numerals are
		// quoted so that parsing round-trips.
		if isPlainName(t.Name) {
			return t.Name
		}
		return fmt.Sprintf("%q", t.Name)
	case TApp:
		parts := make([]string, len(t.Args))
		for i, a := range t.Args {
			parts[i] = a.String()
		}
		return t.Name + "(" + strings.Join(parts, ", ") + ")"
	}
	return "?"
}

// isPlainName reports whether s parses as an identifier or numeral token.
func isPlainName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			_ = i
		default:
			return false
		}
	}
	return true
}

// Vars appends the names of all variables occurring in t to dst and returns
// the extended slice. Duplicates are not removed.
func (t Term) Vars(dst []string) []string {
	switch t.Kind {
	case TVar:
		return append(dst, t.Name)
	case TApp:
		for _, a := range t.Args {
			dst = a.Vars(dst)
		}
	}
	return dst
}

// HasVar reports whether variable name occurs in t.
func (t Term) HasVar(name string) bool {
	switch t.Kind {
	case TVar:
		return t.Name == name
	case TApp:
		for _, a := range t.Args {
			if a.HasVar(name) {
				return true
			}
		}
	}
	return false
}

// Ground reports whether t contains no variables.
func (t Term) Ground() bool {
	switch t.Kind {
	case TVar:
		return false
	case TApp:
		for _, a := range t.Args {
			if !a.Ground() {
				return false
			}
		}
	}
	return true
}

// SubstTerm returns t with every occurrence of variable name replaced by
// replacement.
func (t Term) SubstTerm(name string, replacement Term) Term {
	switch t.Kind {
	case TVar:
		if t.Name == name {
			return replacement
		}
		return t
	case TApp:
		args := make([]Term, len(t.Args))
		changed := false
		for i, a := range t.Args {
			args[i] = a.SubstTerm(name, replacement)
			if !args[i].Equal(a) {
				changed = true
			}
		}
		if !changed {
			return t
		}
		return Term{Kind: TApp, Name: t.Name, Args: args}
	}
	return t
}

// Constants appends the names of all constants occurring in t to dst.
func (t Term) Constants(dst []string) []string {
	switch t.Kind {
	case TConst:
		return append(dst, t.Name)
	case TApp:
		for _, a := range t.Args {
			dst = a.Constants(dst)
		}
	}
	return dst
}

// SortedUnique sorts names and removes duplicates in place, returning the
// deduplicated slice. It is a small utility shared by free-variable and
// constant collection.
func SortedUnique(names []string) []string {
	sort.Strings(names)
	out := names[:0]
	for i, n := range names {
		if i == 0 || names[i-1] != n {
			out = append(out, n)
		}
	}
	return out
}
