package logic

import (
	"math/rand"
	"strings"
	"testing"
)

// evalFin evaluates f over a small finite model: elements is the universe,
// env binds variables, preds interprets predicate atoms (equality is
// built in), and constants denote themselves (their name must be in
// elements). It is a test oracle for the normal-form transformations.
func evalFin(t *testing.T, f *Formula, elements []string, env map[string]string,
	preds func(name string, args []string) bool) bool {
	t.Helper()
	var evalTerm func(tm Term) string
	evalTerm = func(tm Term) string {
		switch tm.Kind {
		case TVar:
			v, ok := env[tm.Name]
			if !ok {
				t.Fatalf("unbound variable %q", tm.Name)
			}
			return v
		case TConst:
			return tm.Name
		default:
			t.Fatalf("finite model has no functions (term %v)", tm)
			return ""
		}
	}
	switch f.Kind {
	case FTrue:
		return true
	case FFalse:
		return false
	case FAtom:
		args := make([]string, len(f.Args))
		for i, a := range f.Args {
			args[i] = evalTerm(a)
		}
		if f.Pred == EqPred {
			return args[0] == args[1]
		}
		return preds(f.Pred, args)
	case FNot:
		return !evalFin(t, f.Sub[0], elements, env, preds)
	case FAnd:
		for _, s := range f.Sub {
			if !evalFin(t, s, elements, env, preds) {
				return false
			}
		}
		return true
	case FOr:
		for _, s := range f.Sub {
			if evalFin(t, s, elements, env, preds) {
				return true
			}
		}
		return false
	case FImplies:
		return !evalFin(t, f.Sub[0], elements, env, preds) ||
			evalFin(t, f.Sub[1], elements, env, preds)
	case FIff:
		return evalFin(t, f.Sub[0], elements, env, preds) ==
			evalFin(t, f.Sub[1], elements, env, preds)
	case FExists, FForall:
		saved, had := env[f.Var]
		defer func() {
			if had {
				env[f.Var] = saved
			} else {
				delete(env, f.Var)
			}
		}()
		for _, e := range elements {
			env[f.Var] = e
			v := evalFin(t, f.Sub[0], elements, env, preds)
			if f.Kind == FExists && v {
				return true
			}
			if f.Kind == FForall && !v {
				return false
			}
		}
		return f.Kind == FForall
	}
	t.Fatalf("unknown kind %d", f.Kind)
	return false
}

// randFormula generates a random formula over unary predicate P, binary
// predicate R, variables x,y,z, constants a,b, with the given connective
// depth and optionally quantifiers.
func randFormula(rng *rand.Rand, depth int, quantifiers bool) *Formula {
	vars := []string{"x", "y", "z"}
	terms := []Term{Var("x"), Var("y"), Var("z"), Const("a"), Const("b")}
	randTerm := func() Term { return terms[rng.Intn(len(terms))] }
	atom := func() *Formula {
		switch rng.Intn(3) {
		case 0:
			return Atom("P", randTerm())
		case 1:
			return Atom("R", randTerm(), randTerm())
		default:
			return Eq(randTerm(), randTerm())
		}
	}
	if depth == 0 {
		return atom()
	}
	max := 6
	if quantifiers {
		max = 8
	}
	switch rng.Intn(max) {
	case 0:
		return atom()
	case 1:
		return Not(randFormula(rng, depth-1, quantifiers))
	case 2:
		return And(randFormula(rng, depth-1, quantifiers), randFormula(rng, depth-1, quantifiers))
	case 3:
		return Or(randFormula(rng, depth-1, quantifiers), randFormula(rng, depth-1, quantifiers))
	case 4:
		return Implies(randFormula(rng, depth-1, quantifiers), randFormula(rng, depth-1, quantifiers))
	case 5:
		return Iff(randFormula(rng, depth-1, quantifiers), randFormula(rng, depth-1, quantifiers))
	case 6:
		return Exists(vars[rng.Intn(len(vars))], randFormula(rng, depth-1, quantifiers))
	default:
		return Forall(vars[rng.Intn(len(vars))], randFormula(rng, depth-1, quantifiers))
	}
}

// randModel builds a random interpretation of P and R over elements.
func randModel(rng *rand.Rand, elements []string) func(string, []string) bool {
	p := map[string]bool{}
	r := map[string]bool{}
	for _, e := range elements {
		p[e] = rng.Intn(2) == 0
		for _, e2 := range elements {
			r[e+","+e2] = rng.Intn(2) == 0
		}
	}
	return func(name string, args []string) bool {
		switch name {
		case "P":
			return p[args[0]]
		case "R":
			return r[args[0]+","+args[1]]
		}
		return false
	}
}

func fullEnv(elements []string) map[string]string {
	return map[string]string{"x": elements[0], "y": elements[1], "z": elements[0]}
}

func TestTermBasics(t *testing.T) {
	x := Var("x")
	a := Const("a")
	fx := App("f", x, a)
	if got := fx.String(); got != "f(x, a)" {
		t.Errorf("String = %q", got)
	}
	if !fx.HasVar("x") || fx.HasVar("y") {
		t.Errorf("HasVar wrong")
	}
	if fx.Ground() {
		t.Errorf("f(x,a) should not be ground")
	}
	if !App("f", a).Ground() {
		t.Errorf("f(a) should be ground")
	}
	g := fx.SubstTerm("x", Const("b"))
	if got := g.String(); got != "f(b, a)" {
		t.Errorf("subst = %q", got)
	}
	// Original unchanged.
	if got := fx.String(); got != "f(x, a)" {
		t.Errorf("subst mutated original: %q", got)
	}
	if !fx.Equal(App("f", Var("x"), Const("a"))) {
		t.Errorf("Equal false negative")
	}
	if fx.Equal(App("f", Var("x"))) {
		t.Errorf("Equal false positive on arity")
	}
}

func TestConstQuoting(t *testing.T) {
	c := Const("1&*|")
	if got := c.String(); got != `"1&*|"` {
		t.Errorf("weird constant should quote, got %q", got)
	}
	if got := Const("abc9").String(); got != "abc9" {
		t.Errorf("plain constant should not quote, got %q", got)
	}
}

func TestFreeVars(t *testing.T) {
	// ∃y (R(x,y) ∧ P(z)) has free x, z.
	f := Exists("y", And(Atom("R", Var("x"), Var("y")), Atom("P", Var("z"))))
	got := f.FreeVars()
	if len(got) != 2 || got[0] != "x" || got[1] != "z" {
		t.Errorf("FreeVars = %v", got)
	}
	if f.Sentence() {
		t.Errorf("not a sentence")
	}
	if !ForallAll([]string{"x", "z"}, f).Sentence() {
		t.Errorf("closed formula should be a sentence")
	}
	if !f.HasFreeVar("x") || f.HasFreeVar("y") {
		t.Errorf("HasFreeVar wrong")
	}
}

func TestQuantifierDepth(t *testing.T) {
	f := Exists("x", And(Forall("y", Atom("P", Var("y"))), Exists("z", Exists("w", Atom("P", Var("w"))))))
	if d := f.QuantifierDepth(); d != 3 {
		t.Errorf("QuantifierDepth = %d, want 3", d)
	}
	if d := Atom("P", Var("x")).QuantifierDepth(); d != 0 {
		t.Errorf("depth of atom = %d", d)
	}
}

func TestSubstCaptureAvoidance(t *testing.T) {
	// (∃y. R(x,y))[x := y] must rename the binder, not capture.
	f := Exists("y", Atom("R", Var("x"), Var("y")))
	g := Subst(f, "x", Var("y"))
	if g.Kind != FExists {
		t.Fatalf("expected quantifier, got %v", g)
	}
	if g.Var == "y" {
		t.Fatalf("capture: binder still named y in %v", g)
	}
	atom := g.Sub[0]
	if !atom.Args[0].IsVar("y") {
		t.Errorf("substituted variable should be free y, got %v", g)
	}
	if !atom.Args[1].IsVar(g.Var) {
		t.Errorf("bound occurrence should follow the renamed binder, got %v", g)
	}
}

func TestSubstShadowing(t *testing.T) {
	// (∃x. P(x))[x := a] leaves the formula alone: x is not free.
	f := Exists("x", Atom("P", Var("x")))
	g := Subst(f, "x", Const("a"))
	if !g.Equal(f) {
		t.Errorf("shadowed substitution changed formula: %v", g)
	}
}

func TestSubstConst(t *testing.T) {
	// P(c) ∧ ∃z. R(z,c) with [z/c]: binder z must be renamed.
	f := And(Atom("P", Const("c")), Exists("z", Atom("R", Var("z"), Const("c"))))
	g := SubstConst(f, "c", Var("z"))
	free := g.FreeVars()
	if len(free) != 1 || free[0] != "z" {
		t.Fatalf("free vars after [z/c] = %v, want [z]; formula %v", free, g)
	}
	// The inner binder must no longer be z.
	inner := g.Sub[1]
	if inner.Kind != FExists || inner.Var == "z" {
		t.Errorf("binder not renamed: %v", g)
	}
}

func TestSubstConstNoOp(t *testing.T) {
	f := Atom("P", Const("d"))
	g := SubstConst(f, "c", Var("z"))
	if !g.Equal(f) {
		t.Errorf("substituting absent constant changed formula")
	}
}

func TestNNFShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		f := randFormula(rng, 4, true)
		g := NNF(f)
		if !IsNNF(g) {
			t.Fatalf("NNF(%v) = %v is not NNF", f, g)
		}
	}
}

func TestNNFPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	elements := []string{"a", "b", "c"}
	for i := 0; i < 300; i++ {
		f := randFormula(rng, 4, true)
		model := randModel(rng, elements)
		env := fullEnv(elements)
		want := evalFin(t, f, elements, env, model)
		got := evalFin(t, NNF(f), elements, fullEnv(elements), model)
		if want != got {
			t.Fatalf("NNF changed semantics of %v (nnf %v): want %v got %v",
				f, NNF(f), want, got)
		}
	}
}

func TestPrenexPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	elements := []string{"a", "b"}
	for i := 0; i < 300; i++ {
		f := randFormula(rng, 3, true)
		prefix, matrix := Prenex(f)
		if !matrix.QuantifierFree() {
			t.Fatalf("matrix not quantifier-free: %v", matrix)
		}
		g := PrenexFormula(prefix, matrix)
		model := randModel(rng, elements)
		want := evalFin(t, f, elements, fullEnv(elements), model)
		got := evalFin(t, g, elements, fullEnv(elements), model)
		if want != got {
			t.Fatalf("prenex changed semantics of %v -> %v: want %v got %v", f, g, want, got)
		}
	}
}

func TestPrenexRectified(t *testing.T) {
	// Same bound name used twice plus free occurrence; prefix must contain
	// distinct names.
	f := And(Exists("x", Atom("P", Var("x"))),
		Forall("x", Atom("R", Var("x"), Var("y"))))
	prefix, matrix := Prenex(f)
	if len(prefix) != 2 {
		t.Fatalf("prefix = %v", prefix)
	}
	if prefix[0].Var == prefix[1].Var {
		t.Errorf("bound variables not renamed apart: %v", prefix)
	}
	if !PrenexFormula(prefix, matrix).HasFreeVar("y") {
		t.Errorf("free variable y lost")
	}
}

func TestDNFCNFSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	elements := []string{"a", "b", "c"}
	for i := 0; i < 300; i++ {
		f := randFormula(rng, 4, false)
		model := randModel(rng, elements)
		want := evalFin(t, f, elements, fullEnv(elements), model)
		d := FromDNF(DNF(f))
		c := fromCNF(CNF(f))
		if got := evalFin(t, d, elements, fullEnv(elements), model); got != want {
			t.Fatalf("DNF changed semantics of %v -> %v", f, d)
		}
		if got := evalFin(t, c, elements, fullEnv(elements), model); got != want {
			t.Fatalf("CNF changed semantics of %v -> %v", f, c)
		}
	}
}

func fromCNF(clauses [][]*Formula) *Formula {
	conjs := make([]*Formula, len(clauses))
	for i, c := range clauses {
		conjs[i] = Or(c...)
	}
	return And(conjs...)
}

func TestDNFLiteralsOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		f := randFormula(rng, 4, false)
		for _, clause := range DNF(f) {
			for _, lit := range clause {
				if !IsLiteral(lit) {
					t.Fatalf("DNF clause member %v is not a literal (from %v)", lit, f)
				}
			}
		}
	}
}

func TestSimplifyPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	elements := []string{"a", "b"}
	for i := 0; i < 400; i++ {
		f := randFormula(rng, 4, true)
		g := Simplify(f)
		model := randModel(rng, elements)
		want := evalFin(t, f, elements, fullEnv(elements), model)
		got := evalFin(t, g, elements, fullEnv(elements), model)
		if want != got {
			t.Fatalf("Simplify changed semantics of %v -> %v: want %v got %v", f, g, want, got)
		}
	}
}

func TestSimplifyCases(t *testing.T) {
	x, a := Var("x"), Const("a")
	cases := []struct {
		in   *Formula
		want *Formula
	}{
		{And(True(), Atom("P", x)), Atom("P", x)},
		{And(False(), Atom("P", x)), False()},
		{Or(True(), Atom("P", x)), True()},
		{Or(False(), Atom("P", x)), Atom("P", x)},
		{Not(Not(Atom("P", x))), Atom("P", x)},
		{Eq(a, a), True()},
		{Eq(x, x), True()},
		{And(Atom("P", x), Not(Atom("P", x))), False()},
		{Or(Atom("P", x), Not(Atom("P", x))), True()},
		{Implies(False(), Atom("P", x)), True()},
		{Implies(True(), Atom("P", x)), Atom("P", x)},
		{Iff(Atom("P", x), Atom("P", x)), True()},
		{Exists("y", Atom("P", x)), Atom("P", x)},
		{Forall("y", True()), True()},
		{And(Atom("P", x), Atom("P", x)), Atom("P", x)},
		{And(And(Atom("P", x), Atom("P", a)), True()),
			And(Atom("P", x), Atom("P", a))},
	}
	for _, c := range cases {
		got := Simplify(c.in)
		if !got.Equal(c.want) {
			t.Errorf("Simplify(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	f := Forall("x", Implies(Atom("P", Var("x")), Exists("y", Neq(Var("x"), Var("y")))))
	s := f.String()
	for _, want := range []string{"forall x.", "P(x)", "exists y.", "x != y", "->"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestPredicatesAndConstants(t *testing.T) {
	f := And(Atom("R", Const("b"), App("f", Const("a"))), Eq(Var("x"), Const("a")),
		Atom("P", Var("x")))
	ps := f.Predicates()
	if len(ps) != 2 || ps[0] != "P" || ps[1] != "R" {
		t.Errorf("Predicates = %v", ps)
	}
	cs := f.Constants()
	if len(cs) != 2 || cs[0] != "a" || cs[1] != "b" {
		t.Errorf("Constants = %v", cs)
	}
}

func TestCloneIndependence(t *testing.T) {
	f := And(Atom("P", Var("x")), Exists("y", Eq(Var("x"), Var("y"))))
	g := f.Clone()
	if !f.Equal(g) {
		t.Fatalf("clone differs")
	}
	g.Sub[0].Pred = "Q"
	if f.Sub[0].Pred != "P" {
		t.Errorf("clone shares structure with original")
	}
}

func TestRenameBoundAlphaEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	elements := []string{"a", "b", "c"}
	for i := 0; i < 200; i++ {
		f := randFormula(rng, 4, true)
		g := RenameBound(f)
		model := randModel(rng, elements)
		want := evalFin(t, f, elements, fullEnv(elements), model)
		got := evalFin(t, g, elements, fullEnv(elements), model)
		if want != got {
			t.Fatalf("RenameBound changed semantics of %v -> %v", f, g)
		}
		// Rectified: no bound name repeats, none coincides with a free var.
		bound := map[string]int{}
		g.Walk(func(h *Formula) {
			if h.Kind == FExists || h.Kind == FForall {
				bound[h.Var]++
			}
		})
		for v, n := range bound {
			if n > 1 {
				t.Fatalf("bound variable %q repeats in %v", v, g)
			}
			for _, fv := range g.FreeVars() {
				if fv == v {
					t.Fatalf("variable %q both free and bound in %v", v, g)
				}
			}
		}
	}
}

func TestFreshVar(t *testing.T) {
	f := Exists("z", Atom("R", Var("z"), Var("z0")))
	v := FreshVar("z", f)
	if v == "z" || v == "z0" {
		t.Errorf("FreshVar returned used name %q", v)
	}
	if got := FreshVar("w", f); got != "w" {
		t.Errorf("FreshVar should return unused hint, got %q", got)
	}
}

func TestExistsAllOrder(t *testing.T) {
	f := ExistsAll([]string{"x", "y"}, Atom("R", Var("x"), Var("y")))
	if f.Kind != FExists || f.Var != "x" {
		t.Fatalf("outer quantifier wrong: %v", f)
	}
	if f.Sub[0].Kind != FExists || f.Sub[0].Var != "y" {
		t.Fatalf("inner quantifier wrong: %v", f)
	}
}

func TestSizeMonotone(t *testing.T) {
	f := Atom("P", Var("x"))
	g := And(f, f)
	if g.Size() <= f.Size() {
		t.Errorf("Size not monotone: %d vs %d", g.Size(), f.Size())
	}
}
