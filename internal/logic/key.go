package logic

import (
	"strconv"
	"strings"
)

// CanonicalKey returns a deterministic, injective serialization of the
// formula, suitable as a map key: two formulas have the same key exactly
// when Equal reports them structurally equal. The encoding is a prefix
// code — every node writes a kind tag, its length-prefixed Pred and Var
// fields, and the counts of its term and subformula children before the
// children themselves — so no two distinct trees can render to the same
// string (unlike String(), where e.g. quoting and operator flattening
// could collide).
//
// The decision cache (internal/deccache) keys memoized Decide calls by
// this string; keys are compared byte-for-byte, so equality of keys is
// collision-safe by construction.
//
// The key is computed once per formula node and cached (formulas are
// immutable), so hot paths that key the same formula repeatedly — the
// decision cache, qstats, a batch of queries — pay the serialization only
// the first time.
func (f *Formula) CanonicalKey() string {
	if k := f.key.Load(); k != nil {
		return *k
	}
	var b strings.Builder
	// Rough pre-size: tag + two empty name prefixes + counts per node.
	b.Grow(f.Size() * 8)
	appendFormulaKey(&b, f)
	k := b.String()
	f.key.Store(&k)
	return k
}

func appendFormulaKey(b *strings.Builder, f *Formula) {
	b.WriteByte(byte('A') + byte(f.Kind))
	appendNameKey(b, f.Pred)
	appendNameKey(b, f.Var)
	b.WriteString(strconv.Itoa(len(f.Args)))
	b.WriteByte('(')
	for _, t := range f.Args {
		appendTermKey(b, t)
	}
	b.WriteString(strconv.Itoa(len(f.Sub)))
	b.WriteByte('[')
	for _, s := range f.Sub {
		appendFormulaKey(b, s)
	}
}

func appendTermKey(b *strings.Builder, t Term) {
	switch t.Kind {
	case TVar:
		b.WriteByte('v')
	case TConst:
		b.WriteByte('c')
	default:
		b.WriteByte('f')
	}
	appendNameKey(b, t.Name)
	b.WriteString(strconv.Itoa(len(t.Args)))
	b.WriteByte('(')
	for _, a := range t.Args {
		appendTermKey(b, a)
	}
}

// appendNameKey writes a length-prefixed name, making the encoding
// unambiguous regardless of the characters a name contains.
func appendNameKey(b *strings.Builder, name string) {
	b.WriteString(strconv.Itoa(len(name)))
	b.WriteByte(':')
	b.WriteString(name)
}
