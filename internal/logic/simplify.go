package logic

// Simplify performs sound propositional simplifications on f:
//
//   - true/false absorption in ∧, ∨, →, ↔, ¬
//   - flattening of nested ∧ and ∨
//   - removal of duplicate conjuncts/disjuncts
//   - x = x rewrites to true
//   - contradictory literal pairs (φ and ¬φ) collapse a conjunction to
//     false and a disjunction to true
//   - vacuous quantifiers (bound variable not free in body) are dropped
//
// Simplification never changes the set of free variables' satisfying
// assignments; it is used to keep quantifier-elimination output readable and
// to shrink intermediate DNFs.
func Simplify(f *Formula) *Formula {
	return f.Map(simplifyNode)
}

func simplifyNode(f *Formula) *Formula {
	switch f.Kind {
	case FNot:
		switch s := f.Sub[0]; s.Kind {
		case FTrue:
			return False()
		case FFalse:
			return True()
		case FNot:
			return s.Sub[0]
		}
		return f
	case FAnd:
		return simplifyJunction(f, FAnd)
	case FOr:
		return simplifyJunction(f, FOr)
	case FImplies:
		a, b := f.Sub[0], f.Sub[1]
		switch {
		case a.Kind == FFalse || b.Kind == FTrue:
			return True()
		case a.Kind == FTrue:
			return b
		case b.Kind == FFalse:
			return simplifyNode(Not(a))
		}
		return f
	case FIff:
		a, b := f.Sub[0], f.Sub[1]
		switch {
		case a.Kind == FTrue:
			return b
		case b.Kind == FTrue:
			return a
		case a.Kind == FFalse:
			return simplifyNode(Not(b))
		case b.Kind == FFalse:
			return simplifyNode(Not(a))
		case a.Equal(b):
			return True()
		}
		return f
	case FAtom:
		if f.IsEq() && f.Args[0].Equal(f.Args[1]) {
			return True()
		}
		return f
	case FExists, FForall:
		body := f.Sub[0]
		switch body.Kind {
		case FTrue:
			return True()
		case FFalse:
			return False()
		}
		if !body.HasFreeVar(f.Var) {
			// The bound variable does not occur: over a nonempty domain the
			// quantifier is vacuous. All domains in this repository are
			// infinite, hence nonempty.
			return body
		}
		return f
	}
	return f
}

func simplifyJunction(f *Formula, kind FKind) *Formula {
	absorber, neutral := FFalse, FTrue
	if kind == FOr {
		absorber, neutral = FTrue, FFalse
	}
	var flat []*Formula
	var collect func(g *Formula) bool // returns false if absorbed
	collect = func(g *Formula) bool {
		switch {
		case g.Kind == absorber:
			return false
		case g.Kind == neutral:
			return true
		case g.Kind == kind:
			for _, s := range g.Sub {
				if !collect(s) {
					return false
				}
			}
			return true
		default:
			flat = append(flat, g)
			return true
		}
	}
	for _, s := range f.Sub {
		if !collect(s) {
			if kind == FAnd {
				return False()
			}
			return True()
		}
	}
	// Deduplicate, and detect complementary literal pairs.
	seen := make([]*Formula, 0, len(flat))
	for _, g := range flat {
		dup := false
		for _, h := range seen {
			if g.Equal(h) {
				dup = true
				break
			}
		}
		if !dup {
			seen = append(seen, g)
		}
	}
	for _, g := range seen {
		var neg *Formula
		if g.Kind == FNot {
			neg = g.Sub[0]
		} else {
			neg = Not(g)
		}
		for _, h := range seen {
			if h.Equal(neg) {
				if kind == FAnd {
					return False()
				}
				return True()
			}
		}
	}
	switch len(seen) {
	case 0:
		if kind == FAnd {
			return True()
		}
		return False()
	case 1:
		return seen[0]
	}
	return &Formula{Kind: kind, Sub: seen}
}
