package logic

// DNF converts a quantifier-free formula into disjunctive normal form,
// returned as a slice of conjuncts-of-literals. Each inner slice is one
// disjunct; an empty inner slice is the empty conjunction (true); an empty
// outer slice is the empty disjunction (false).
//
// Quantifier-elimination procedures (Cooper, Mal'cev, the Reach Theory of
// Traces) all start by distributing ∃ over a DNF of the matrix, exactly as
// the paper's Appendix does ("the existential quantifier can be distributed
// to a disjunction, [so] we may assume that ψ is a conjunction of atomic
// formulas and their negations").
func DNF(f *Formula) [][]*Formula {
	g := NNF(f)
	return dnf(g)
}

func dnf(f *Formula) [][]*Formula {
	switch f.Kind {
	case FTrue:
		return [][]*Formula{{}}
	case FFalse:
		return nil
	case FAtom, FNot:
		return [][]*Formula{{f}}
	case FOr:
		var out [][]*Formula
		for _, s := range f.Sub {
			out = append(out, dnf(s)...)
		}
		return out
	case FAnd:
		out := [][]*Formula{{}}
		for _, s := range f.Sub {
			ds := dnf(s)
			var next [][]*Formula
			for _, left := range out {
				for _, right := range ds {
					conj := make([]*Formula, 0, len(left)+len(right))
					conj = append(conj, left...)
					conj = append(conj, right...)
					next = append(next, conj)
				}
			}
			out = next
			if len(out) == 0 {
				return nil
			}
		}
		return out
	}
	panic("logic: DNF of non-quantifier-free formula " + f.String())
}

// FromDNF rebuilds a formula from DNF clause form.
func FromDNF(clauses [][]*Formula) *Formula {
	disjuncts := make([]*Formula, len(clauses))
	for i, c := range clauses {
		disjuncts[i] = And(c...)
	}
	return Or(disjuncts...)
}

// CNF converts a quantifier-free formula into conjunctive normal form,
// returned as a slice of clauses (disjunctions of literals).
func CNF(f *Formula) [][]*Formula {
	g := NNF(f)
	return cnf(g)
}

func cnf(f *Formula) [][]*Formula {
	switch f.Kind {
	case FTrue:
		return nil
	case FFalse:
		return [][]*Formula{{}}
	case FAtom, FNot:
		return [][]*Formula{{f}}
	case FAnd:
		var out [][]*Formula
		for _, s := range f.Sub {
			out = append(out, cnf(s)...)
		}
		return out
	case FOr:
		out := [][]*Formula{{}}
		for _, s := range f.Sub {
			cs := cnf(s)
			var next [][]*Formula
			for _, left := range out {
				for _, right := range cs {
					clause := make([]*Formula, 0, len(left)+len(right))
					clause = append(clause, left...)
					clause = append(clause, right...)
					next = append(next, clause)
				}
			}
			out = next
			if len(out) == 0 {
				return nil
			}
		}
		return out
	}
	panic("logic: CNF of non-quantifier-free formula " + f.String())
}
