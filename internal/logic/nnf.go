package logic

// NNF returns the negation normal form of f: implications and
// bi-implications are expanded and negations pushed to the atoms. The result
// contains only true/false, atoms, negated atoms, ∧, ∨, ∃, ∀.
func NNF(f *Formula) *Formula {
	return nnf(f, false)
}

func nnf(f *Formula, negate bool) *Formula {
	switch f.Kind {
	case FTrue:
		if negate {
			return False()
		}
		return True()
	case FFalse:
		if negate {
			return True()
		}
		return False()
	case FAtom:
		if negate {
			return Not(f)
		}
		return f
	case FNot:
		return nnf(f.Sub[0], !negate)
	case FAnd, FOr:
		kind := f.Kind
		if negate {
			if kind == FAnd {
				kind = FOr
			} else {
				kind = FAnd
			}
		}
		sub := make([]*Formula, len(f.Sub))
		for i, s := range f.Sub {
			sub[i] = nnf(s, negate)
		}
		if len(sub) == 0 {
			if kind == FAnd {
				return True()
			}
			return False()
		}
		if len(sub) == 1 {
			return sub[0]
		}
		return &Formula{Kind: kind, Sub: sub}
	case FImplies:
		// a → b ≡ ¬a ∨ b; negated: a ∧ ¬b.
		if negate {
			return And(nnf(f.Sub[0], false), nnf(f.Sub[1], true))
		}
		return Or(nnf(f.Sub[0], true), nnf(f.Sub[1], false))
	case FIff:
		// a ↔ b ≡ (a ∧ b) ∨ (¬a ∧ ¬b); negated: (a ∧ ¬b) ∨ (¬a ∧ b).
		a, b := f.Sub[0], f.Sub[1]
		if negate {
			return Or(
				And(nnf(a, false), nnf(b, true)),
				And(nnf(a, true), nnf(b, false)))
		}
		return Or(
			And(nnf(a, false), nnf(b, false)),
			And(nnf(a, true), nnf(b, true)))
	case FExists, FForall:
		kind := f.Kind
		if negate {
			if kind == FExists {
				kind = FForall
			} else {
				kind = FExists
			}
		}
		return &Formula{Kind: kind, Var: f.Var, Sub: []*Formula{nnf(f.Sub[0], negate)}}
	}
	return f
}

// IsNNF reports whether f is in negation normal form.
func IsNNF(f *Formula) bool {
	switch f.Kind {
	case FTrue, FFalse, FAtom:
		return true
	case FNot:
		return f.Sub[0].Kind == FAtom
	case FAnd, FOr, FExists, FForall:
		for _, s := range f.Sub {
			if !IsNNF(s) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// IsLiteral reports whether f is an atom or a negated atom.
func IsLiteral(f *Formula) bool {
	return f.Kind == FAtom || (f.Kind == FNot && f.Sub[0].Kind == FAtom)
}

// LiteralAtom returns the atom underlying a literal and whether the literal
// is positive. It panics if f is not a literal.
func LiteralAtom(f *Formula) (atom *Formula, positive bool) {
	switch {
	case f.Kind == FAtom:
		return f, true
	case f.Kind == FNot && f.Sub[0].Kind == FAtom:
		return f.Sub[0], false
	}
	panic("logic: LiteralAtom on non-literal")
}
