package logic

import (
	"fmt"
	"strings"
)

// FreshVar returns a variable name based on hint that does not occur (free or
// bound) in any of the given formulas.
func FreshVar(hint string, avoid ...*Formula) string {
	used := map[string]bool{}
	for _, f := range avoid {
		if f == nil {
			continue
		}
		f.Walk(func(g *Formula) {
			if g.Kind == FExists || g.Kind == FForall {
				used[g.Var] = true
			}
			if g.Kind == FAtom {
				var vs []string
				for _, t := range g.Args {
					vs = t.Vars(vs)
				}
				for _, v := range vs {
					used[v] = true
				}
			}
		})
	}
	if !used[hint] {
		return hint
	}
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s%d", hint, i)
		if !used[name] {
			return name
		}
	}
}

// Subst returns f with every free occurrence of variable name replaced by
// replacement. The substitution is capture-avoiding: bound variables that
// would capture a variable of replacement are renamed first.
func Subst(f *Formula, name string, replacement Term) *Formula {
	var repVars []string
	repVars = replacement.Vars(repVars)
	repSet := map[string]bool{}
	for _, v := range repVars {
		repSet[v] = true
	}
	return substAvoid(f, name, replacement, repSet)
}

func substAvoid(f *Formula, name string, replacement Term, repVars map[string]bool) *Formula {
	switch f.Kind {
	case FTrue, FFalse:
		return f
	case FAtom:
		args := make([]Term, len(f.Args))
		for i, t := range f.Args {
			args[i] = t.SubstTerm(name, replacement)
		}
		return &Formula{Kind: FAtom, Pred: f.Pred, Args: args}
	case FExists, FForall:
		if f.Var == name {
			return f // name is shadowed; nothing free to replace
		}
		body := f.Sub[0]
		v := f.Var
		if repVars[v] && body.HasFreeVar(name) {
			// Rename the bound variable to avoid capturing replacement.
			fresh := FreshVar(v+"_", f, Atom("", replacement))
			body = Subst(body, v, Var(fresh))
			v = fresh
		}
		return &Formula{Kind: f.Kind, Var: v,
			Sub: []*Formula{substAvoid(body, name, replacement, repVars)}}
	default:
		sub := make([]*Formula, len(f.Sub))
		for i, s := range f.Sub {
			sub[i] = substAvoid(s, name, replacement, repVars)
		}
		return &Formula{Kind: f.Kind, Sub: sub}
	}
}

// SubstConst returns f with every occurrence of the constant symbol c
// replaced by the term replacement. This is the operation [z/c] of
// Theorem 3.1 ("substituting the variable z for the constant symbol c").
// If replacement is a variable it must not be captured; the caller is
// responsible for choosing a variable not bound in f (Theorem 3.1 picks a
// variable "not used in the formulas of this list"), and this function
// renames clashing binders defensively anyway.
func SubstConst(f *Formula, c string, replacement Term) *Formula {
	var repVars []string
	repVars = replacement.Vars(repVars)
	repSet := map[string]bool{}
	for _, v := range repVars {
		repSet[v] = true
	}
	var walk func(*Formula) *Formula
	walk = func(g *Formula) *Formula {
		switch g.Kind {
		case FTrue, FFalse:
			return g
		case FAtom:
			args := make([]Term, len(g.Args))
			for i, t := range g.Args {
				args[i] = substConstTerm(t, c, replacement)
			}
			return &Formula{Kind: FAtom, Pred: g.Pred, Args: args}
		case FExists, FForall:
			body := g.Sub[0]
			v := g.Var
			if repSet[v] && formulaHasConst(body, c) {
				fresh := FreshVar(v+"_", g, Atom("", replacement))
				body = Subst(body, v, Var(fresh))
				v = fresh
			}
			return &Formula{Kind: g.Kind, Var: v, Sub: []*Formula{walk(body)}}
		default:
			sub := make([]*Formula, len(g.Sub))
			for i, s := range g.Sub {
				sub[i] = walk(s)
			}
			return &Formula{Kind: g.Kind, Sub: sub}
		}
	}
	return walk(f)
}

func substConstTerm(t Term, c string, replacement Term) Term {
	switch t.Kind {
	case TConst:
		if t.Name == c {
			return replacement
		}
		return t
	case TApp:
		args := make([]Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = substConstTerm(a, c, replacement)
		}
		return Term{Kind: TApp, Name: t.Name, Args: args}
	}
	return t
}

func formulaHasConst(f *Formula, c string) bool {
	found := false
	f.Walk(func(g *Formula) {
		if g.Kind != FAtom || found {
			return
		}
		for _, t := range g.Args {
			if termHasConst(t, c) {
				found = true
				return
			}
		}
	})
	return found
}

func termHasConst(t Term, c string) bool {
	switch t.Kind {
	case TConst:
		return t.Name == c
	case TApp:
		for _, a := range t.Args {
			if termHasConst(a, c) {
				return true
			}
		}
	}
	return false
}

// RenameBound returns f with all bound variables renamed apart from each
// other and from every free variable, using fresh names v0, v1, …. The
// result is α-equivalent to f and "rectified": no variable is bound twice
// and no variable is both free and bound. Prenex conversion requires this.
func RenameBound(f *Formula) *Formula {
	counter := 0
	used := map[string]bool{}
	for _, v := range f.FreeVars() {
		used[v] = true
	}
	f.Walk(func(g *Formula) {
		if g.Kind == FExists || g.Kind == FForall {
			used[g.Var] = true
		}
	})
	fresh := func(hint string) string {
		base := strings.TrimRight(hint, "0123456789")
		if base == "" {
			base = "v"
		}
		for {
			name := fmt.Sprintf("%s%d", base, counter)
			counter++
			if !used[name] {
				used[name] = true
				return name
			}
		}
	}
	seen := map[string]bool{}
	for _, v := range f.FreeVars() {
		seen[v] = true
	}
	var walk func(g *Formula) *Formula
	walk = func(g *Formula) *Formula {
		switch g.Kind {
		case FExists, FForall:
			v := g.Var
			body := g.Sub[0]
			if seen[v] {
				nv := fresh(v)
				body = Subst(body, v, Var(nv))
				v = nv
			}
			seen[v] = true
			return &Formula{Kind: g.Kind, Var: v, Sub: []*Formula{walk(body)}}
		case FTrue, FFalse, FAtom:
			return g
		default:
			sub := make([]*Formula, len(g.Sub))
			for i, s := range g.Sub {
				sub[i] = walk(s)
			}
			return &Formula{Kind: g.Kind, Sub: sub}
		}
	}
	return walk(f)
}
