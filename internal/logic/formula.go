package logic

import (
	"strings"
	"sync/atomic"
)

// FKind discriminates formula shapes.
type FKind int

const (
	// FTrue is the propositional constant "true".
	FTrue FKind = iota
	// FFalse is the propositional constant "false".
	FFalse
	// FAtom is a predicate atom P(t1,…,tk). Equality is the atom with
	// predicate symbol "=" and exactly two arguments.
	FAtom
	// FNot is negation.
	FNot
	// FAnd is conjunction (n-ary, n ≥ 0; empty conjunction is true).
	FAnd
	// FOr is disjunction (n-ary, n ≥ 0; empty disjunction is false).
	FOr
	// FImplies is implication with exactly two children.
	FImplies
	// FIff is bi-implication with exactly two children.
	FIff
	// FExists is existential quantification of Var over Sub[0].
	FExists
	// FForall is universal quantification of Var over Sub[0].
	FForall
)

// EqPred is the reserved predicate symbol for equality.
const EqPred = "="

// Formula is a first-order formula. Like terms, formulas are treated as
// immutable: transformations return fresh structures.
type Formula struct {
	Kind FKind
	// Pred is the predicate symbol of an FAtom.
	Pred string
	// Args are the argument terms of an FAtom.
	Args []Term
	// Sub holds subformulas: 1 for FNot/FExists/FForall, 2 for
	// FImplies/FIff, any number for FAnd/FOr.
	Sub []*Formula
	// Var is the bound variable of FExists/FForall.
	Var string

	// key caches CanonicalKey. Formulas are immutable once built, so the
	// cache can never go stale; the atomic makes a concurrent first
	// computation safe (both writers store equal strings).
	key atomic.Pointer[string]
}

// True returns the formula "true".
func True() *Formula { return &Formula{Kind: FTrue} }

// False returns the formula "false".
func False() *Formula { return &Formula{Kind: FFalse} }

// Atom constructs a predicate atom.
func Atom(pred string, args ...Term) *Formula {
	return &Formula{Kind: FAtom, Pred: pred, Args: args}
}

// Eq constructs the equality atom a = b.
func Eq(a, b Term) *Formula { return Atom(EqPred, a, b) }

// Neq constructs the literal a ≠ b.
func Neq(a, b Term) *Formula { return Not(Eq(a, b)) }

// Not constructs the negation of f.
func Not(f *Formula) *Formula { return &Formula{Kind: FNot, Sub: []*Formula{f}} }

// And constructs the conjunction of fs. And() is true; And(f) is f.
func And(fs ...*Formula) *Formula {
	switch len(fs) {
	case 0:
		return True()
	case 1:
		return fs[0]
	}
	return &Formula{Kind: FAnd, Sub: append([]*Formula(nil), fs...)}
}

// Or constructs the disjunction of fs. Or() is false; Or(f) is f.
func Or(fs ...*Formula) *Formula {
	switch len(fs) {
	case 0:
		return False()
	case 1:
		return fs[0]
	}
	return &Formula{Kind: FOr, Sub: append([]*Formula(nil), fs...)}
}

// Implies constructs the implication a → b.
func Implies(a, b *Formula) *Formula {
	return &Formula{Kind: FImplies, Sub: []*Formula{a, b}}
}

// Iff constructs the bi-implication a ↔ b.
func Iff(a, b *Formula) *Formula {
	return &Formula{Kind: FIff, Sub: []*Formula{a, b}}
}

// Exists constructs ∃v. f.
func Exists(v string, f *Formula) *Formula {
	return &Formula{Kind: FExists, Var: v, Sub: []*Formula{f}}
}

// Forall constructs ∀v. f.
func Forall(v string, f *Formula) *Formula {
	return &Formula{Kind: FForall, Var: v, Sub: []*Formula{f}}
}

// ExistsAll quantifies f existentially over each variable in vs, innermost
// last: ExistsAll([x,y], f) = ∃x ∃y f.
func ExistsAll(vs []string, f *Formula) *Formula {
	for i := len(vs) - 1; i >= 0; i-- {
		f = Exists(vs[i], f)
	}
	return f
}

// ForallAll quantifies f universally over each variable in vs.
func ForallAll(vs []string, f *Formula) *Formula {
	for i := len(vs) - 1; i >= 0; i-- {
		f = Forall(vs[i], f)
	}
	return f
}

// IsEq reports whether f is an equality atom.
func (f *Formula) IsEq() bool { return f.Kind == FAtom && f.Pred == EqPred }

// Equal reports structural equality of formulas (no renaming of bound
// variables: α-equivalent formulas with different bound names compare
// unequal).
func (f *Formula) Equal(g *Formula) bool {
	if f == g {
		return true
	}
	if f == nil || g == nil {
		return false
	}
	if f.Kind != g.Kind || f.Pred != g.Pred || f.Var != g.Var ||
		len(f.Args) != len(g.Args) || len(f.Sub) != len(g.Sub) {
		return false
	}
	for i := range f.Args {
		if !f.Args[i].Equal(g.Args[i]) {
			return false
		}
	}
	for i := range f.Sub {
		if !f.Sub[i].Equal(g.Sub[i]) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of f.
func (f *Formula) Clone() *Formula {
	if f == nil {
		return nil
	}
	g := &Formula{Kind: f.Kind, Pred: f.Pred, Var: f.Var}
	if f.Args != nil {
		g.Args = append([]Term(nil), f.Args...)
	}
	if f.Sub != nil {
		g.Sub = make([]*Formula, len(f.Sub))
		for i, s := range f.Sub {
			g.Sub[i] = s.Clone()
		}
	}
	return g
}

// FreeVars returns the sorted, deduplicated free variables of f.
func (f *Formula) FreeVars() []string {
	var names []string
	bound := map[string]int{}
	var walk func(*Formula)
	walk = func(g *Formula) {
		switch g.Kind {
		case FAtom:
			var vs []string
			for _, t := range g.Args {
				vs = t.Vars(vs)
			}
			for _, v := range vs {
				if bound[v] == 0 {
					names = append(names, v)
				}
			}
		case FExists, FForall:
			bound[g.Var]++
			walk(g.Sub[0])
			bound[g.Var]--
		default:
			for _, s := range g.Sub {
				walk(s)
			}
		}
	}
	walk(f)
	return SortedUnique(names)
}

// HasFreeVar reports whether name occurs free in f.
func (f *Formula) HasFreeVar(name string) bool {
	switch f.Kind {
	case FAtom:
		for _, t := range f.Args {
			if t.HasVar(name) {
				return true
			}
		}
		return false
	case FExists, FForall:
		if f.Var == name {
			return false
		}
		return f.Sub[0].HasFreeVar(name)
	default:
		for _, s := range f.Sub {
			if s.HasFreeVar(name) {
				return true
			}
		}
		return false
	}
}

// Sentence reports whether f has no free variables.
func (f *Formula) Sentence() bool { return len(f.FreeVars()) == 0 }

// QuantifierFree reports whether f contains no quantifiers.
func (f *Formula) QuantifierFree() bool {
	switch f.Kind {
	case FExists, FForall:
		return false
	default:
		for _, s := range f.Sub {
			if !s.QuantifierFree() {
				return false
			}
		}
		return true
	}
}

// QuantifierDepth returns the maximum nesting depth of quantifiers in f.
// Section 2.2 of the paper uses this to size the extended active domain.
func (f *Formula) QuantifierDepth() int {
	depth := 0
	for _, s := range f.Sub {
		if d := s.QuantifierDepth(); d > depth {
			depth = d
		}
	}
	if f.Kind == FExists || f.Kind == FForall {
		depth++
	}
	return depth
}

// Size returns the number of formula and term nodes, a rough complexity
// measure used in benchmarks.
func (f *Formula) Size() int {
	n := 1
	for _, t := range f.Args {
		n += termSize(t)
	}
	for _, s := range f.Sub {
		n += s.Size()
	}
	return n
}

func termSize(t Term) int {
	n := 1
	for _, a := range t.Args {
		n += termSize(a)
	}
	return n
}

// Predicates returns the sorted, deduplicated predicate symbols of f,
// excluding equality.
func (f *Formula) Predicates() []string {
	var names []string
	f.Walk(func(g *Formula) {
		if g.Kind == FAtom && g.Pred != EqPred {
			names = append(names, g.Pred)
		}
	})
	return SortedUnique(names)
}

// Constants returns the sorted, deduplicated constant symbols of f.
func (f *Formula) Constants() []string {
	var names []string
	f.Walk(func(g *Formula) {
		if g.Kind == FAtom {
			for _, t := range g.Args {
				names = t.Constants(names)
			}
		}
	})
	return SortedUnique(names)
}

// Walk calls visit on f and every subformula, parents before children.
func (f *Formula) Walk(visit func(*Formula)) {
	visit(f)
	for _, s := range f.Sub {
		s.Walk(visit)
	}
}

// Map rebuilds f bottom-up, replacing every node g by rewrite(g'), where g'
// is g with already-rewritten children. rewrite must not mutate its argument;
// it may return the argument unchanged.
func (f *Formula) Map(rewrite func(*Formula) *Formula) *Formula {
	g := &Formula{Kind: f.Kind, Pred: f.Pred, Var: f.Var, Args: f.Args}
	if f.Sub != nil {
		g.Sub = make([]*Formula, len(f.Sub))
		for i, s := range f.Sub {
			g.Sub[i] = s.Map(rewrite)
		}
	}
	return rewrite(g)
}

// String renders f in the concrete syntax accepted by internal/parser:
//
//	true false P(t,…) s = t ~f (f & g & …) (f | g | …)
//	(f -> g) (f <-> g) exists x. f forall x. f
func (f *Formula) String() string {
	var b strings.Builder
	f.write(&b)
	return b.String()
}

func (f *Formula) write(b *strings.Builder) {
	switch f.Kind {
	case FTrue:
		b.WriteString("true")
	case FFalse:
		b.WriteString("false")
	case FAtom:
		if f.IsEq() {
			b.WriteString(f.Args[0].String())
			b.WriteString(" = ")
			b.WriteString(f.Args[1].String())
			return
		}
		b.WriteString(f.Pred)
		b.WriteByte('(')
		for i, t := range f.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(t.String())
		}
		b.WriteByte(')')
	case FNot:
		// Render ≠ compactly.
		if f.Sub[0].IsEq() {
			b.WriteString(f.Sub[0].Args[0].String())
			b.WriteString(" != ")
			b.WriteString(f.Sub[0].Args[1].String())
			return
		}
		b.WriteByte('~')
		f.Sub[0].writeParen(b)
	case FAnd, FOr, FImplies, FIff:
		op := map[FKind]string{FAnd: " & ", FOr: " | ", FImplies: " -> ", FIff: " <-> "}[f.Kind]
		b.WriteByte('(')
		for i, s := range f.Sub {
			if i > 0 {
				b.WriteString(op)
			}
			s.write(b)
		}
		b.WriteByte(')')
	case FExists, FForall:
		if f.Kind == FExists {
			b.WriteString("exists ")
		} else {
			b.WriteString("forall ")
		}
		b.WriteString(f.Var)
		b.WriteString(". ")
		f.Sub[0].writeParen(b)
	}
}

// writeParen writes f, parenthesizing quantified bodies that would otherwise
// extend too greedily. Atoms and already-parenthesized connectives need no
// extra parentheses.
func (f *Formula) writeParen(b *strings.Builder) {
	switch f.Kind {
	case FExists, FForall, FNot:
		b.WriteByte('(')
		f.write(b)
		b.WriteByte(')')
	case FAtom:
		if f.IsEq() {
			b.WriteByte('(')
			f.write(b)
			b.WriteByte(')')
			return
		}
		f.write(b)
	default:
		f.write(b)
	}
}
