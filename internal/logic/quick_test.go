package logic

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genFormula wraps a random formula for testing/quick.
type genFormula struct {
	F *Formula
}

// Generate implements quick.Generator.
func (genFormula) Generate(rng *rand.Rand, size int) reflect.Value {
	depth := 2 + rng.Intn(3)
	return reflect.ValueOf(genFormula{F: randFormula(rng, depth, true)})
}

// genQFFormula generates quantifier-free formulas.
type genQFFormula struct {
	F *Formula
}

// Generate implements quick.Generator.
func (genQFFormula) Generate(rng *rand.Rand, size int) reflect.Value {
	depth := 2 + rng.Intn(3)
	return reflect.ValueOf(genQFFormula{F: randFormula(rng, depth, false)})
}

var quickCfg = &quick.Config{MaxCount: 200}

// TestQuickNNFInvolution: NNF is idempotent and always lands in NNF.
func TestQuickNNFInvolution(t *testing.T) {
	prop := func(g genFormula) bool {
		n := NNF(g.F)
		return IsNNF(n) && n.Equal(NNF(n))
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickSimplifyIdempotent: Simplify(Simplify(f)) = Simplify(f).
func TestQuickSimplifyIdempotent(t *testing.T) {
	prop := func(g genFormula) bool {
		s := Simplify(g.F)
		return s.Equal(Simplify(s))
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickSimplifyShrinks: simplification never grows the formula (by the
// node-count measure).
func TestQuickSimplifyShrinks(t *testing.T) {
	prop := func(g genFormula) bool {
		return Simplify(g.F).Size() <= g.F.Size()
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickCloneEqual: clones are structurally equal and independent.
func TestQuickCloneEqual(t *testing.T) {
	prop := func(g genFormula) bool {
		c := g.F.Clone()
		return c.Equal(g.F)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickFreeVarsSubset: substituting a constant for a variable removes
// it from the free variables and introduces none.
func TestQuickFreeVarsSubset(t *testing.T) {
	prop := func(g genFormula) bool {
		before := map[string]bool{}
		for _, v := range g.F.FreeVars() {
			before[v] = true
		}
		sub := Subst(g.F, "x", Const("a"))
		for _, v := range sub.FreeVars() {
			if v == "x" || !before[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickDNFClausesAreLiterals: every DNF clause member is a literal.
func TestQuickDNFClausesAreLiterals(t *testing.T) {
	prop := func(g genQFFormula) bool {
		for _, clause := range DNF(g.F) {
			for _, lit := range clause {
				if !IsLiteral(lit) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickPrenexMatrixQF: the prenex matrix is quantifier-free and the
// prefix length equals the quantifier count of the NNF.
func TestQuickPrenexMatrixQF(t *testing.T) {
	prop := func(g genFormula) bool {
		prefix, matrix := Prenex(g.F)
		if !matrix.QuantifierFree() {
			return false
		}
		count := 0
		RenameBound(NNF(g.F)).Walk(func(h *Formula) {
			if h.Kind == FExists || h.Kind == FForall {
				count++
			}
		})
		return len(prefix) == count
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}

// TestQuickWalkVisitsSize: Walk visits one node per formula node.
func TestQuickWalkVisitsSize(t *testing.T) {
	prop := func(g genFormula) bool {
		visited := 0
		g.F.Walk(func(*Formula) { visited++ })
		// Size also counts term nodes; formula nodes alone are visited.
		return visited <= g.F.Size()
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Error(err)
	}
}
