package logic

import (
	"math/rand"
	"testing"
)

// TestCanonicalKeyAdversarialPairs pins the injectivity of the encoding on
// pairs a naive serialization would conflate.
func TestCanonicalKeyAdversarialPairs(t *testing.T) {
	pairs := [][2]*Formula{
		// Name-boundary ambiguity: P(ab, c) vs P(a, bc).
		{Atom("P", Var("ab"), Var("c")), Atom("P", Var("a"), Var("bc"))},
		// Predicate/argument boundary: Pa(b) vs P(ab).
		{Atom("Pa", Var("b")), Atom("P", Var("ab"))},
		// Variable vs constant of the same name.
		{Atom("P", Var("x")), Atom("P", Const("x"))},
		// Nullary function application vs constant.
		{Atom("P", App("x")), Atom("P", Const("x"))},
		// Connective flattening: (a & b) & c vs a & (b & c).
		{&Formula{Kind: FAnd, Sub: []*Formula{And(Atom("a"), Atom("b")), Atom("c")}},
			&Formula{Kind: FAnd, Sub: []*Formula{Atom("a"), And(Atom("b"), Atom("c"))}}},
		// Binary vs ternary conjunction over the same leaves.
		{&Formula{Kind: FAnd, Sub: []*Formula{Atom("a"), Atom("b"), Atom("c")}},
			&Formula{Kind: FAnd, Sub: []*Formula{And(Atom("a"), Atom("b")), Atom("c")}}},
		// Quantifier variable matters.
		{Exists("x", Atom("P", Var("x"))), Exists("y", Atom("P", Var("x")))},
		// Kind matters with identical children.
		{Exists("x", Atom("P", Var("x"))), Forall("x", Atom("P", Var("x")))},
		{Implies(Atom("a"), Atom("b")), Iff(Atom("a"), Atom("b"))},
		// Nesting shape: f(g(x), y) vs f(g(x, y)).
		{Atom("P", App("f", App("g", Var("x")), Var("y"))),
			Atom("P", App("f", App("g", Var("x"), Var("y"))))},
	}
	for i, p := range pairs {
		if p[0].Equal(p[1]) {
			t.Fatalf("pair %d: test formulas unexpectedly Equal", i)
		}
		if p[0].CanonicalKey() == p[1].CanonicalKey() {
			t.Errorf("pair %d: distinct formulas share key %q", i, p[0].CanonicalKey())
		}
	}
}

// TestCanonicalKeyMatchesEqual checks, on random formula pairs, that key
// equality coincides with structural equality in both directions.
func TestCanonicalKeyMatchesEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	gen := func(depth int) *Formula {
		var rec func(d int) *Formula
		names := []string{"P", "Q", "="}
		vars := []string{"x", "y", "xy"}
		rec = func(d int) *Formula {
			if d == 0 {
				args := []Term{Var(vars[rng.Intn(3)]), Const(vars[rng.Intn(3)])}
				return Atom(names[rng.Intn(3)], args[:1+rng.Intn(2)]...)
			}
			switch rng.Intn(5) {
			case 0:
				return Not(rec(d - 1))
			case 1:
				return And(rec(d-1), rec(d-1))
			case 2:
				return Or(rec(d-1), rec(d-1))
			case 3:
				return Exists(vars[rng.Intn(3)], rec(d-1))
			default:
				return Implies(rec(d-1), rec(d-1))
			}
		}
		return rec(depth)
	}
	for i := 0; i < 500; i++ {
		f, g := gen(3), gen(3)
		eq, keyEq := f.Equal(g), f.CanonicalKey() == g.CanonicalKey()
		if eq != keyEq {
			t.Fatalf("iter %d: Equal=%v but key equality=%v for\n%v\n%v", i, eq, keyEq, f, g)
		}
		// A formula always agrees with its own clone.
		if f.CanonicalKey() != f.Clone().CanonicalKey() {
			t.Fatalf("iter %d: clone changed the key of %v", i, f)
		}
	}
}
