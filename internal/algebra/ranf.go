package algebra

import (
	"repro/internal/db"
	"repro/internal/logic"
)

// ToRANF rewrites a formula toward relational-algebra normal form, widening
// the fragment Compile accepts (Van Gelder & Topor's concern: making more
// of the safe-range class mechanically evaluable):
//
//   - ∃x distributes over ∨;
//   - a conjunction containing a disjunction whose disjuncts do not all
//     share the conjunction's free variables is distributed:
//     f ∧ (g₁ ∨ g₂) becomes (f ∧ g₁) ∨ (f ∧ g₂);
//   - double negations and negated disjunctions/conjunctions are unfolded
//     (NNF), so negation only guards atoms or conjunction members.
//
// The rewriting preserves logical equivalence; CompileRANF applies it before
// compiling.
func ToRANF(f *logic.Formula) *logic.Formula {
	g := logic.NNF(f)
	for i := 0; i < 16; i++ { // fixpoint with a safety cap
		next := ranfStep(g)
		if next.Equal(g) {
			return g
		}
		g = next
	}
	return g
}

func ranfStep(f *logic.Formula) *logic.Formula {
	switch f.Kind {
	case logic.FExists:
		body := ranfStep(f.Sub[0])
		// ∃x (g₁ ∨ g₂) → ∃x g₁ ∨ ∃x g₂.
		if body.Kind == logic.FOr {
			out := make([]*logic.Formula, len(body.Sub))
			for i, s := range body.Sub {
				out[i] = logic.Exists(f.Var, s)
			}
			return logic.Or(out...)
		}
		return logic.Exists(f.Var, body)
	case logic.FForall:
		return logic.Forall(f.Var, ranfStep(f.Sub[0]))
	case logic.FAnd:
		sub := make([]*logic.Formula, len(f.Sub))
		for i, s := range f.Sub {
			sub[i] = ranfStep(s)
		}
		// Find a disjunction worth distributing: one whose disjuncts have
		// differing free-variable sets (a same-variables union compiles
		// directly and is better left alone).
		for i, s := range sub {
			if s.Kind != logic.FOr || len(s.Sub) == 0 {
				continue
			}
			uniform := true
			first := s.Sub[0].FreeVars()
			for _, d := range s.Sub[1:] {
				if !equalStringSets(first, d.FreeVars()) {
					uniform = false
					break
				}
			}
			if uniform {
				continue
			}
			rest := make([]*logic.Formula, 0, len(sub)-1)
			rest = append(rest, sub[:i]...)
			rest = append(rest, sub[i+1:]...)
			out := make([]*logic.Formula, len(s.Sub))
			for j, d := range s.Sub {
				out[j] = logic.And(append([]*logic.Formula{d}, rest...)...)
			}
			return ranfStep(logic.Or(out...))
		}
		return logic.And(sub...)
	case logic.FOr:
		sub := make([]*logic.Formula, len(f.Sub))
		for i, s := range f.Sub {
			sub[i] = ranfStep(s)
		}
		return logic.Or(sub...)
	case logic.FNot:
		return logic.Not(ranfStep(f.Sub[0]))
	default:
		return f
	}
}

func equalStringSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := map[string]bool{}
	for _, s := range a {
		set[s] = true
	}
	for _, s := range b {
		if !set[s] {
			return false
		}
	}
	return true
}

// CompileRANF is Compile with the RANF rewriting applied first; it accepts
// strictly more formulas (e.g. conjunctions with mixed-variable
// disjunctions, which plain Compile rejects as non-uniform unions).
func CompileRANF(scheme *db.Scheme, f *logic.Formula) (Expr, error) {
	return Compile(scheme, ToRANF(f))
}
