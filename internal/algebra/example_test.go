package algebra_test

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/domains/eqdom"
	"repro/internal/parser"
)

// Compile turns a safe-range calculus query into an algebra plan; guarded
// negation becomes set difference.
func ExampleCompile() {
	scheme := db.MustScheme(map[string]int{"F": 2})
	st := db.NewState(scheme)
	_ = st.Insert("F", domain.Word("a"), domain.Word("b"))
	_ = st.Insert("F", domain.Word("b"), domain.Word("a"))
	_ = st.Insert("F", domain.Word("a"), domain.Word("c"))

	// Children x of a whose link is not reciprocated.
	f := parser.MustParse(`exists y. (F(y, x) & ~F(x, y))`)
	plan, _ := algebra.Compile(scheme, f)
	table, _ := plan.Eval(&algebra.Ctx{St: st, Dom: eqdom.Domain{}})
	fmt.Println(table)
	// Output: (x) (c)
}

// ToRANF widens the compilable fragment by distributing mixed unions.
func ExampleToRANF() {
	f := parser.MustParse("exists x. (F(x, y) | F(y, x))")
	fmt.Println(algebra.ToRANF(f))
	// Output: (exists x. F(x, y) | exists x. F(y, x))
}
