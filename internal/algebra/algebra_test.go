package algebra_test

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/db"
	"repro/internal/domain"
	"repro/internal/domains/eqdom"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/presburger"
	"repro/internal/query"
)

// sameColSet reports set equality of column name lists.
func sameColSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]bool, len(a))
	for _, c := range a {
		set[c] = true
	}
	for _, c := range b {
		if !set[c] {
			return false
		}
	}
	return true
}

func fathersCtx(t *testing.T) *algebra.Ctx {
	t.Helper()
	st := db.NewState(db.MustScheme(map[string]int{"F": 2}))
	for _, p := range [][2]string{{"adam", "abel"}, {"adam", "cain"}, {"cain", "enoch"}} {
		if err := st.Insert("F", domain.Word(p[0]), domain.Word(p[1])); err != nil {
			t.Fatal(err)
		}
	}
	return &algebra.Ctx{St: st, Dom: eqdom.Domain{}}
}

func mustEval(t *testing.T, ctx *algebra.Ctx, e algebra.Expr) *algebra.Table {
	t.Helper()
	tab, err := e.Eval(ctx)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e.String(), err)
	}
	return tab
}

func TestBaseAndProject(t *testing.T) {
	ctx := fathersCtx(t)
	base := &algebra.Base{Rel: "F", Cols: []string{"f", "s"}}
	tab := mustEval(t, ctx, base)
	if tab.Len() != 3 {
		t.Fatalf("base rows = %d", tab.Len())
	}
	proj := mustEval(t, ctx, &algebra.Project{In: base, Cols: []string{"f"}})
	if proj.Len() != 2 { // adam, cain
		t.Errorf("projection rows = %d, want 2", proj.Len())
	}
	if _, err := (&algebra.Project{In: base, Cols: []string{"zzz"}}).Eval(ctx); err == nil {
		t.Errorf("projection on missing column accepted")
	}
	if _, err := (&algebra.Base{Rel: "F", Cols: []string{"a"}}).Eval(ctx); err == nil {
		t.Errorf("arity mismatch accepted")
	}
	if _, err := (&algebra.Base{Rel: "F", Cols: []string{"a", "a"}}).Eval(ctx); err == nil {
		t.Errorf("duplicate columns accepted")
	}
}

func TestSelectConditions(t *testing.T) {
	ctx := fathersCtx(t)
	base := &algebra.Base{Rel: "F", Cols: []string{"f", "s"}}
	sel := mustEval(t, ctx, &algebra.Select{In: base,
		Cond: algebra.CondEq{A: algebra.ColArg("f"), B: algebra.ConstArg("adam")}})
	if sel.Len() != 2 {
		t.Errorf("select f=adam rows = %d", sel.Len())
	}
	neg := mustEval(t, ctx, &algebra.Select{In: base,
		Cond: algebra.CondNot{C: algebra.CondEq{A: algebra.ColArg("f"), B: algebra.ConstArg("adam")}}})
	if neg.Len() != 1 {
		t.Errorf("negated select rows = %d", neg.Len())
	}
	both := mustEval(t, ctx, &algebra.Select{In: base, Cond: algebra.CondAnd{Cs: []algebra.Cond{
		algebra.CondEq{A: algebra.ColArg("f"), B: algebra.ConstArg("adam")},
		algebra.CondEq{A: algebra.ColArg("s"), B: algebra.ConstArg("abel")},
	}}})
	if both.Len() != 1 {
		t.Errorf("conjunctive select rows = %d", both.Len())
	}
}

func TestJoinNatural(t *testing.T) {
	ctx := fathersCtx(t)
	// Grandfather: F(f, m) ⋈ F(m, s) via renaming.
	l := &algebra.Base{Rel: "F", Cols: []string{"f", "m"}}
	r := &algebra.Base{Rel: "F", Cols: []string{"m", "s"}}
	g := mustEval(t, ctx, &algebra.Project{In: &algebra.Join{L: l, R: r}, Cols: []string{"f", "s"}})
	if g.Len() != 1 {
		t.Fatalf("grandfather rows = %d", g.Len())
	}
	row := g.Rows()[0]
	if row[0].Key() != "adam" || row[1].Key() != "enoch" {
		t.Errorf("grandfather = %v", row)
	}
	// Cross product when no shared columns.
	cross := mustEval(t, ctx, &algebra.Join{
		L: &algebra.Base{Rel: "F", Cols: []string{"a", "b"}},
		R: &algebra.Base{Rel: "F", Cols: []string{"c", "d"}}})
	if cross.Len() != 9 {
		t.Errorf("cross product rows = %d, want 9", cross.Len())
	}
}

func TestUnionDiff(t *testing.T) {
	ctx := fathersCtx(t)
	fathers := &algebra.Project{In: &algebra.Base{Rel: "F", Cols: []string{"x", "s"}}, Cols: []string{"x"}}
	sons := &algebra.Project{In: &algebra.Base{Rel: "F", Cols: []string{"f", "x"}}, Cols: []string{"x"}}
	u := mustEval(t, ctx, &algebra.Union{L: fathers, R: sons})
	if u.Len() != 4 { // adam, cain, abel, enoch
		t.Errorf("union rows = %d, want 4", u.Len())
	}
	d := mustEval(t, ctx, &algebra.Diff{L: sons, R: fathers})
	if d.Len() != 2 { // abel, enoch (cain is both)
		t.Errorf("diff rows = %d, want 2", d.Len())
	}
	// Column mismatch errors.
	if _, err := (&algebra.Union{L: fathers, R: &algebra.Base{Rel: "F", Cols: []string{"a", "b"}}}).Eval(ctx); err == nil {
		t.Errorf("union with mismatched columns accepted")
	}
}

func TestUnionAlignsColumns(t *testing.T) {
	ctx := fathersCtx(t)
	// Same column set in different order must align by name.
	l := &algebra.Base{Rel: "F", Cols: []string{"a", "b"}}
	r := &algebra.Project{In: &algebra.Base{Rel: "F", Cols: []string{"b", "a"}}, Cols: []string{"a", "b"}}
	u := mustEval(t, ctx, &algebra.Union{L: l, R: r})
	// r is F with swapped roles: (abel,adam) etc. algebra.Union has 6 distinct rows.
	if u.Len() != 6 {
		t.Errorf("aligned union rows = %d, want 6", u.Len())
	}
}

func TestRenameExtend(t *testing.T) {
	ctx := fathersCtx(t)
	base := &algebra.Base{Rel: "F", Cols: []string{"f", "s"}}
	ren := mustEval(t, ctx, &algebra.Rename{In: base, From: "f", To: "parent"})
	if ren.Cols[0] != "parent" {
		t.Errorf("rename failed: %v", ren.Cols)
	}
	ext := mustEval(t, ctx, &algebra.Extend{In: base, NewCol: "f2", FromCol: "f"})
	for _, row := range ext.Rows() {
		if row[0].Key() != row[2].Key() {
			t.Errorf("extend copied wrong values: %v", row)
		}
	}
	if _, err := (&algebra.Rename{In: base, From: "zz", To: "w"}).Eval(ctx); err == nil {
		t.Errorf("rename of missing column accepted")
	}
	if _, err := (&algebra.Extend{In: base, NewCol: "f", FromCol: "s"}).Eval(ctx); err == nil {
		t.Errorf("extend to duplicate column accepted")
	}
}

func TestCondPredDomain(t *testing.T) {
	st := db.NewState(db.MustScheme(map[string]int{"R": 2}))
	if err := st.Insert("R", domain.Int(1), domain.Int(5)); err != nil {
		t.Fatal(err)
	}
	if err := st.Insert("R", domain.Int(7), domain.Int(2)); err != nil {
		t.Fatal(err)
	}
	ctx := &algebra.Ctx{St: st, Dom: presburger.Domain{}}
	sel := mustEval(t, ctx, &algebra.Select{
		In:   &algebra.Base{Rel: "R", Cols: []string{"a", "b"}},
		Cond: algebra.CondPred{Pred: presburger.PredLt, Args: []algebra.Arg{algebra.ColArg("a"), algebra.ColArg("b")}},
	})
	if sel.Len() != 1 || sel.Rows()[0][0].Key() != "1" {
		t.Errorf("lt selection wrong: %v", sel)
	}
}

func TestLitAndDatabaseConstants(t *testing.T) {
	scheme := db.MustScheme(map[string]int{"R": 1}, "c")
	st := db.NewState(scheme)
	if err := st.SetConstant("c", domain.Word("v")); err != nil {
		t.Fatal(err)
	}
	ctx := &algebra.Ctx{St: st, Dom: eqdom.Domain{}}
	lit := mustEval(t, ctx, &algebra.Lit{Cols: []string{"x"}, Rows: [][]string{{"c"}, {"w"}}})
	if lit.Len() != 2 || !lit.Has([]domain.Value{domain.Word("v")}) {
		t.Errorf("database constant not resolved: %v", lit)
	}
}

// compileAndCompare compiles a safe-range formula and compares the plan's
// answer with active-domain evaluation (which agrees with the natural
// semantics on safe-range queries).
func compileAndCompare(t *testing.T, ctx *algebra.Ctx, src string) {
	t.Helper()
	f := parser.MustParse(src)
	plan, err := algebra.Compile(ctx.St.Scheme(), f)
	if err != nil {
		t.Fatalf("algebra.Compile(%s): %v", src, err)
	}
	got, err := plan.Eval(ctx)
	if err != nil {
		t.Fatalf("Eval(%s): %v", src, err)
	}
	want, err := query.EvalActive(ctx.Dom, ctx.St, f)
	if err != nil {
		t.Fatalf("EvalActive(%s): %v", src, err)
	}
	freeVars := f.FreeVars()
	if !sameColSet(got.Cols, freeVars) {
		t.Fatalf("%s: columns %v, free vars %v", src, got.Cols, freeVars)
	}
	if got.Len() != want.Rows.Len() {
		t.Fatalf("%s: algebra %d rows, calculus %d rows\nplan: %s\nalgebra: %v\ncalculus: %v",
			src, got.Len(), want.Rows.Len(), plan.String(), got, want.Rows.Tuples())
	}
	idx := map[string]int{}
	for i, c := range got.Cols {
		idx[c] = i
	}
	for _, row := range want.Rows.Tuples() {
		ordered := make([]domain.Value, len(freeVars))
		for i, v := range want.Vars {
			ordered[idx[v]] = row[i]
		}
		if !got.Has(ordered) {
			t.Errorf("%s: calculus row %v missing from plan output", src, row)
		}
	}
}

func TestCompileBasics(t *testing.T) {
	ctx := fathersCtx(t)
	for _, src := range []string{
		"F(x, y)",
		"F(x, x)",
		`F("adam", y)`,
		"exists y. F(x, y)",
		"F(x, y) & F(y, z)",
		"F(x, y) & x != y",
		"F(x, y) | F(y, x)",
		"F(x, y) & ~F(y, x)",
		"exists y. (F(x, y) & ~F(y, x))",
		"F(x, y) & y = z",
		`F(x, y) & z = "seth"`,
		"exists y. (exists z. (F(x, y) & F(y, z)))",
		"F(x, y) & (F(y, z) | F(z, y))",
		"true & F(x, y)",
	} {
		compileAndCompare(t, ctx, src)
	}
}

func TestCompileDomainPredicates(t *testing.T) {
	st := db.NewState(db.MustScheme(map[string]int{"R": 2}))
	for _, p := range [][2]int64{{1, 5}, {7, 2}, {3, 3}} {
		if err := st.Insert("R", domain.Int(p[0]), domain.Int(p[1])); err != nil {
			t.Fatal(err)
		}
	}
	ctx := &algebra.Ctx{St: st, Dom: presburger.Domain{}}
	for _, src := range []string{
		"R(x, y) & lt(x, y)",
		"R(x, y) & ~lt(x, y)",
		"R(x, y) & lt(x, 4)",
	} {
		compileAndCompare(t, ctx, src)
	}
}

// TestCompileForall: universal conjuncts compile through the internal
// ¬∃¬ rewrite — including correlated bodies whose free variables are
// ranged by the surrounding conjunction — and agree with the calculus
// evaluator.
func TestCompileForall(t *testing.T) {
	ctx := fathersCtx(t)
	for _, src := range []string{
		// Fathers x all of whose children are fathers themselves.
		"F(x, y) & (forall z. (~F(x, z) | (exists w. F(z, w))))",
		// Correlated: every child of y is also a child of x.
		"F(x, y) & (forall z. (~F(y, z) | F(x, z)))",
		// Bound variable shadowing a ranged one must not correlate.
		"F(x, y) & (forall x. (~F(y, x) | F(x, x) | (exists w. F(x, w))))",
		// Equality inside the universal body.
		"F(x, y) & (forall z. (~F(x, z) | z = y))",
	} {
		compileAndCompare(t, ctx, src)
	}
}

// TestCompileForallSentence: closed universals compile to nullary plans —
// the guarded difference against the unit row — with the right truth
// values.
func TestCompileForallSentence(t *testing.T) {
	ctx := fathersCtx(t)
	for _, tc := range []struct {
		src  string
		want bool
	}{
		{"forall x. (forall y. (~F(x, y) | F(x, y)))", true},
		// Every father is somebody's son — false: adam has no father.
		{"forall x. (~(exists y. F(x, y)) | (exists z. F(z, x)))", false},
	} {
		f := parser.MustParse(tc.src)
		plan, err := algebra.Compile(ctx.St.Scheme(), f)
		if err != nil {
			t.Fatalf("algebra.Compile(%s): %v", tc.src, err)
		}
		tab := mustEval(t, ctx, plan)
		if got := tab.Len() > 0; got != tc.want {
			t.Errorf("%s = %v, want %v\nplan: %s", tc.src, got, tc.want, plan.String())
		}
		ans, err := query.EvalActive(ctx.Dom, ctx.St, f)
		if err != nil {
			t.Fatalf("EvalActive(%s): %v", tc.src, err)
		}
		if calc := ans.Rows.Len() > 0; calc != tc.want {
			t.Errorf("calculus disagrees on %s: %v", tc.src, calc)
		}
	}
}

func TestCompileRejectsUnsafe(t *testing.T) {
	scheme := db.MustScheme(map[string]int{"F": 2})
	for _, src := range []string{
		"~F(x, y)",
		"x = y",
		"forall y. F(x, y)",
		"F(x, y) | x = z",
		"lt(x, y)",
	} {
		f := parser.MustParse(src)
		if plan, err := algebra.Compile(scheme, f); err == nil {
			t.Errorf("algebra.Compile(%s) accepted: %s", src, plan.String())
		}
	}
}

// TestCompileAgainstCalculusRandom cross-validates the compiler on random
// safe-range formulas.
func TestCompileAgainstCalculusRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ctx := fathersCtx(t)
	scheme := ctx.St.Scheme()
	kept := 0
	for i := 0; i < 800 && kept < 150; i++ {
		f := randSafeCandidate(rng, 3)
		plan, err := algebra.Compile(scheme, f)
		if err != nil {
			continue // outside the fragment; fine
		}
		kept++
		got, err := plan.Eval(ctx)
		if err != nil {
			t.Fatalf("Eval of compiled %v: %v", f, err)
		}
		want, err := query.EvalActive(ctx.Dom, ctx.St, f)
		if err != nil {
			t.Fatalf("EvalActive(%v): %v", f, err)
		}
		if got.Len() != want.Rows.Len() {
			t.Fatalf("row count mismatch on %v: algebra %d, calculus %d (plan %s)",
				f, got.Len(), want.Rows.Len(), plan.String())
		}
	}
	if kept < 50 {
		t.Fatalf("generator produced too few compilable formulas: %d", kept)
	}
}

func randSafeCandidate(rng *rand.Rand, depth int) *logic.Formula {
	vars := []string{"x", "y", "z"}
	v := func() logic.Term { return logic.Var(vars[rng.Intn(len(vars))]) }
	atom := func() *logic.Formula {
		return logic.Atom("F", v(), v())
	}
	if depth == 0 {
		return atom()
	}
	switch rng.Intn(6) {
	case 0:
		return atom()
	case 1:
		return logic.And(randSafeCandidate(rng, depth-1), randSafeCandidate(rng, depth-1))
	case 2:
		return logic.Or(randSafeCandidate(rng, depth-1), randSafeCandidate(rng, depth-1))
	case 3:
		return logic.And(randSafeCandidate(rng, depth-1), logic.Not(randSafeCandidate(rng, depth-1)))
	case 4:
		return logic.Exists(vars[rng.Intn(len(vars))], randSafeCandidate(rng, depth-1))
	default:
		return logic.And(randSafeCandidate(rng, depth-1),
			logic.Neq(v(), v()))
	}
}
