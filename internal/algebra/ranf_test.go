package algebra_test

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/query"
)

func TestToRANFDistributesExists(t *testing.T) {
	f := parser.MustParse("exists x. (F(x, y) | F(y, x))")
	g := algebra.ToRANF(f)
	if g.Kind != logic.FOr {
		t.Fatalf("∃ should distribute over ∨: %v", g)
	}
	for _, s := range g.Sub {
		if s.Kind != logic.FExists {
			t.Errorf("disjunct should be existential: %v", s)
		}
	}
}

func TestToRANFDistributesMixedOr(t *testing.T) {
	// F(x,y) ∧ (F(y,z) ∨ F(x,x)): the disjuncts bind different variables,
	// so the conjunction distributes.
	f := parser.MustParse("F(x, y) & (F(y, z) | F(x, x))")
	g := algebra.ToRANF(f)
	if g.Kind != logic.FOr {
		t.Fatalf("mixed disjunction should distribute: %v", g)
	}
}

func TestToRANFLeavesUniformUnions(t *testing.T) {
	f := parser.MustParse("F(x, y) & (F(y, x) | F(x, y))")
	g := algebra.ToRANF(f)
	if g.Kind != logic.FAnd {
		t.Errorf("uniform union should stay put: %v", g)
	}
}

// TestCompileRANFWidensFragment: formulas plain algebra.Compile rejects become
// compilable after RANF rewriting, with answers matching the calculus.
func TestCompileRANFWidensFragment(t *testing.T) {
	ctx := fathersCtx(t)
	scheme := ctx.St.Scheme()
	widened := []string{
		// Mixed-variable disjunction under a conjunction.
		"F(x, y) & (F(y, z) | F(z, x))",
		// Existential over a mixed union.
		"exists y. (F(x, y) & (F(y, z) | F(z, y)))",
	}
	for _, src := range widened {
		f := parser.MustParse(src)
		if _, err := algebra.Compile(scheme, f); err == nil {
			t.Logf("note: plain algebra.Compile already accepts %s", src)
		}
		plan, err := algebra.CompileRANF(scheme, f)
		if err != nil {
			t.Fatalf("algebra.CompileRANF(%s): %v", src, err)
		}
		got, err := plan.Eval(ctx)
		if err != nil {
			t.Fatalf("Eval(%s): %v", src, err)
		}
		want, err := query.EvalActive(ctx.Dom, ctx.St, f)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != want.Rows.Len() {
			t.Errorf("%s: algebra %d rows, calculus %d", src, got.Len(), want.Rows.Len())
		}
	}
}

// TestToRANFPreservesSemantics on random formulas, via active evaluation.
func TestToRANFPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ctx := fathersCtx(t)
	for i := 0; i < 200; i++ {
		f := randSafeCandidate(rng, 3)
		g := algebra.ToRANF(f)
		a, err := query.EvalActive(ctx.Dom, ctx.St, f)
		if err != nil {
			t.Fatal(err)
		}
		b, err := query.EvalActive(ctx.Dom, ctx.St, g)
		if err != nil {
			t.Fatal(err)
		}
		if a.Rows.Len() != b.Rows.Len() {
			t.Fatalf("RANF changed semantics of %v -> %v: %d vs %d rows",
				f, g, a.Rows.Len(), b.Rows.Len())
		}
		for _, row := range a.Rows.Tuples() {
			if !b.Rows.Has(row) {
				t.Fatalf("row %v lost by RANF rewriting of %v", row, f)
			}
		}
	}
}

// TestCompileRANFCoverage: the widened compiler accepts more of the random
// population than the plain one.
func TestCompileRANFCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	ctx := fathersCtx(t)
	scheme := ctx.St.Scheme()
	plain, widened := 0, 0
	for i := 0; i < 500; i++ {
		f := randSafeCandidate(rng, 3)
		if _, err := algebra.Compile(scheme, f); err == nil {
			plain++
		}
		if plan, err := algebra.CompileRANF(scheme, f); err == nil {
			widened++
			// And the widened plans still agree with the calculus.
			got, err := plan.Eval(ctx)
			if err != nil {
				t.Fatalf("eval of widened plan for %v: %v", f, err)
			}
			want, err := query.EvalActive(ctx.Dom, ctx.St, f)
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != want.Rows.Len() {
				t.Fatalf("widened plan wrong on %v: %d vs %d", f, got.Len(), want.Rows.Len())
			}
		}
	}
	if widened < plain {
		t.Fatalf("RANF narrowed the fragment: %d < %d", widened, plain)
	}
	if widened == plain {
		t.Logf("note: population produced no separating formulas (plain=%d)", plain)
	}
	t.Logf("compilable: plain %d, widened %d of 500", plain, widened)
}
